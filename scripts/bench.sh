#!/usr/bin/env sh
# bench.sh — parallel-backend benchmark harness.
#
# Default mode runs the full Stencil2D benchmark (256 virtual PEs) on both
# backends, verifies the digests are bit-identical, and writes the committed
# BENCH_parsim.json (ns/op per backend, speedup, GOMAXPROCS, host CPU count,
# and the engine's parallelism counters — see DESIGN.md "Parallel backend").
#
#   scripts/bench.sh            # full run, rewrites BENCH_parsim.json
#   scripts/bench.sh --smoke    # small config, no file written; CI gate
#   scripts/bench.sh --workers 4
#   scripts/bench.sh --scale    # 1k/8k/64k virtual PEs, rewrites BENCH_scale.json
#   scripts/bench.sh --gate     # re-run scale configs, fail on >20% regression
#                               # against the committed BENCH_scale.json budgets
#                               # (memory metrics gate hard; events/sec warns),
#                               # then re-run the optimistic PHOLD benchmark and
#                               # fail on snapshot-churn regression against the
#                               # committed BENCH_optsim.json (snapshots taken
#                               # and snapshot bytes gate hard — both are
#                               # deterministic counters, not wall-clock)
#   scripts/bench.sh --optsim   # three-backend PHOLD at low lookahead,
#                               # rewrites BENCH_optsim.json (speculation
#                               # stats, rollback ratio, wasted work, and
#                               # state-saving counters: snapshot_bytes,
#                               # snapshots_avoided, replays, adaptive K)
#   scripts/bench.sh --optsim --smoke  # small config, no file written
#   scripts/bench.sh --optsim --sweep  # fixed K=1/4/16 vs adaptive sweep,
#                                      # no file written (EXPERIMENTS.md table)
#   scripts/bench.sh --telemetry       # telemetry-layer overhead (attached vs
#                                      # detached on all three backends),
#                                      # rewrites BENCH_telemetry.json; exits
#                                      # nonzero if telemetry perturbs a digest
#   scripts/bench.sh --telemetry --smoke  # small config, no file written
#   scripts/bench.sh --ft       # fault-tolerance bench: replication-degree
#                               # sweep (R=1..3) plus evacuation-vs-rollback
#                               # cost per app, rewrites BENCH_ft.json; exits
#                               # nonzero if any cell's digests diverge
set -eu

cd "$(dirname "$0")/.."

smoke=0
scale=0
gate=0
optsim=0
sweep=0
telemetry=0
ft=0
workers=8
while [ $# -gt 0 ]; do
	case "$1" in
	--smoke) smoke=1 ;;
	--scale) scale=1 ;;
	--gate) gate=1 ;;
	--optsim) optsim=1 ;;
	--sweep) sweep=1 ;;
	--telemetry) telemetry=1 ;;
	--ft) ft=1 ;;
	--workers)
		shift
		workers="$1"
		;;
	*)
		echo "usage: scripts/bench.sh [--smoke] [--scale] [--gate] [--optsim [--sweep]] [--telemetry] [--ft] [--workers N]" >&2
		exit 2
		;;
	esac
	shift
done

if [ "$ft" = 1 ]; then
	exec go run ./cmd/chaos -ft -out BENCH_ft.json
fi

if [ "$telemetry" = 1 ]; then
	if [ "$smoke" = 1 ]; then
		exec go run ./cmd/parsimbench -telbench -smoke -workers "$workers"
	fi
	exec go run ./cmd/parsimbench -telbench -out BENCH_telemetry.json -workers "$workers"
fi

if [ "$optsim" = 1 ]; then
	if [ "$sweep" = 1 ]; then
		if [ "$smoke" = 1 ]; then
			exec go run ./cmd/parsimbench -backend optimistic -snap-sweep -smoke -workers "$workers"
		fi
		exec go run ./cmd/parsimbench -backend optimistic -snap-sweep -workers "$workers"
	fi
	if [ "$smoke" = 1 ]; then
		exec go run ./cmd/parsimbench -backend optimistic -smoke -workers "$workers"
	fi
	exec go run ./cmd/parsimbench -backend optimistic -out BENCH_optsim.json -workers "$workers"
fi
if [ "$gate" = 1 ]; then
	go run ./cmd/parsimbench -gate BENCH_scale.json
	exec go run ./cmd/parsimbench -gate-optsim BENCH_optsim.json -workers "$workers"
fi
if [ "$scale" = 1 ]; then
	exec go run ./cmd/parsimbench -scale -out BENCH_scale.json
fi
if [ "$smoke" = 1 ]; then
	exec go run ./cmd/parsimbench -smoke -workers "$workers"
fi
exec go run ./cmd/parsimbench -out BENCH_parsim.json -workers "$workers"
