#!/usr/bin/env sh
# bench.sh — parallel-backend benchmark harness.
#
# Default mode runs the full Stencil2D benchmark (256 virtual PEs) on both
# backends, verifies the digests are bit-identical, and writes the committed
# BENCH_parsim.json (ns/op per backend, speedup, GOMAXPROCS, host CPU count,
# and the engine's parallelism counters — see DESIGN.md "Parallel backend").
#
#   scripts/bench.sh            # full run, rewrites BENCH_parsim.json
#   scripts/bench.sh --smoke    # small config, no file written; CI gate
#   scripts/bench.sh --workers 4
set -eu

cd "$(dirname "$0")/.."

smoke=0
workers=8
while [ $# -gt 0 ]; do
	case "$1" in
	--smoke) smoke=1 ;;
	--workers)
		shift
		workers="$1"
		;;
	*)
		echo "usage: scripts/bench.sh [--smoke] [--workers N]" >&2
		exit 2
		;;
	esac
	shift
done

if [ "$smoke" = 1 ]; then
	exec go run ./cmd/parsimbench -smoke -workers "$workers"
fi
exec go run ./cmd/parsimbench -out BENCH_parsim.json -workers "$workers"
