#!/usr/bin/env sh
# check.sh — the full local gate: build, go vet, charmvet (determinism &
# PUP-completeness rules, see DESIGN.md "Determinism rules"), the test
# suite under the race detector, the cross-backend equivalence tests at
# several GOMAXPROCS values, a smoke run of the parallel benchmark, and
# the chaos fault-injection soak. CI runs exactly this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# The committed baseline is empty; the flag is exercised here so the
# suppression path cannot rot. The -json run smokes the machine output.
go run ./cmd/charmvet -baseline charmvet.baseline ./...
go run ./cmd/charmvet -json ./... > /dev/null
go test -race ./...

# All three backends (sequential, conservative-parallel, optimistic) must
# produce bit-identical digests no matter how many host threads the phase
# workers are spread over — for the optimistic engine that covers
# speculation, rollback, and the commit pipeline. The projections suite
# holds the event-log flavor of the same guarantee: byte-identical traces
# across backends.
for procs in 1 2 8; do
	GOMAXPROCS=$procs go test -race -count=1 -run 'CrossBackend' ./internal/apps/determinism/ ./internal/projections/
done

# Telemetry gate: LeanMD/PDES/Stencil2D digests must be byte-identical with
# the telemetry probe attached vs detached on all three backends — the
# observability layer is strictly side-band, enforced under the race
# detector at both thread counts.
for procs in 1 8; do
	GOMAXPROCS=$procs go test -race -count=1 -run 'TelemetryNeutral' ./internal/telemetry/
done

# Telemetry overhead, for the PR record: attached vs detached wall time and
# the same digest-identity claim from the bench side.
scripts/bench.sh --telemetry --smoke

scripts/bench.sh --smoke
# Time Warp smoke: three-backend PHOLD at low lookahead; exits nonzero if
# the backends' digests diverge.
scripts/bench.sh --optsim --smoke
# Replay smoke: the same run with sparse state saving (image every 4th
# speculated execution), so rollbacks take the restore + coast-forward
# path; exits nonzero on digest divergence. The deeper torture matrix
# (K=1/4/16/adaptive on three apps, forced cascades) runs under -race in
# the test suite above (internal/apps/determinism ReplayTorture).
go run ./cmd/parsimbench -backend optimistic -smoke -snap-interval 4

# Full-registry cross-backend identity: every figure's table byte-identical
# on the sequential and parallel engines (SeqOnly figures 7/14 and the
# paper-scale Figure S skip with a recorded reason). Runs without -race —
# the sweep is minutes of simulation, and the race-flavored coverage of the
# same property is the CrossBackend loop above.
CHARMGO_FIGS_FULL=1 go test -count=1 -timeout 40m -run TestFigureCrossBackend ./internal/figures/

# Memory-budget gate: re-run the 1k/8k/64k virtual-PE scale benchmark and
# compare allocs/event, bytes/event, steady-state allocs, live heap, and
# the nil-payload runtime allocs/event against the committed
# BENCH_scale.json. Memory metrics are host-independent and fail the gate
# at >20% over budget; events/sec only warns (it depends on the host).
scripts/bench.sh --gate

# Tracing overhead: the same LeanMD run untraced vs fully traced, recorded
# for the PR record. The untraced path must stay a nil check.
go run ./cmd/projections -selfbench -smoke -out BENCH_projections.json

# Chaos soak: every campaign app survives its injected crashes with final
# values and state digests byte-identical to the failure-free run, on all
# three backends. The driver exits nonzero on any mismatch, unsurvived
# crash, or cross-backend divergence; the report is byte-deterministic.
go run ./cmd/chaos -out BENCH_chaos.json

# Multi-failure soak: seeded fuzz plans (correlated crash pairs, predicted
# failures, crashes landing mid-recovery) at replication degree R=2 — every
# plan must either converge byte-identically or fail with a typed
# unrecoverable error. 60 seeds here; the -fuzz harness in
# internal/chaos/ft_multi_test.go explores unseeded.
CHARMGO_CHAOS_SOAK=60 go test -count=1 -run TestFuzzCampaignSoak ./internal/chaos/

# Fault-tolerance bench: the replication-degree sweep and the
# evacuation-vs-rollback comparison; exits nonzero if any sweep cell's
# digests diverge from the failure-free run on any backend.
scripts/bench.sh --ft
