#!/usr/bin/env sh
# check.sh — the full local gate: build, go vet, charmvet (determinism &
# PUP-completeness rules, see DESIGN.md "Determinism rules"), the test
# suite under the race detector, the cross-backend equivalence tests at
# several GOMAXPROCS values, a smoke run of the parallel benchmark, and
# the chaos fault-injection soak. CI runs exactly this.
set -eux

cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go run ./cmd/charmvet ./...
go test -race ./...

# Sequential vs parallel backend must produce bit-identical digests no
# matter how many host threads the phase workers are spread over. The
# projections suite holds the event-log flavor of the same guarantee:
# byte-identical traces across backends.
for procs in 1 2 8; do
	GOMAXPROCS=$procs go test -race -count=1 -run 'CrossBackend' ./internal/apps/determinism/ ./internal/projections/
done

scripts/bench.sh --smoke

# Tracing overhead: the same LeanMD run untraced vs fully traced, recorded
# for the PR record. The untraced path must stay a nil check.
go run ./cmd/projections -selfbench -smoke -out BENCH_projections.json

# Chaos soak: every campaign app survives its injected crashes with final
# values and state digests byte-identical to the failure-free run, on both
# backends. The driver exits nonzero on any mismatch, unsurvived crash, or
# cross-backend divergence; the report itself is byte-deterministic.
go run ./cmd/chaos -out BENCH_chaos.json
