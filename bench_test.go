// Benchmarks regenerating every figure of the paper's evaluation section
// (one benchmark per figure; the paper has no numbered tables), plus
// ablation benchmarks for the design choices DESIGN.md calls out.
//
// Run everything with
//
//	go test -bench=. -benchmem
//
// Each figure benchmark executes the same experiment as `go run
// ./cmd/figures -fig N` and reports the series through -v output on the
// first iteration; the benchmark timing itself measures the harness cost
// of the full experiment.
package charmgo

import (
	"fmt"
	"io"
	"os"
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/figures"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/pup"

	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/pdes"
	"charmgo/internal/apps/stencil"
)

// benchFig runs one figure experiment per benchmark iteration, printing
// the regenerated series once.
func benchFig(b *testing.B, id string) {
	f, ok := figures.ByID(id)
	if !ok {
		b.Fatalf("unknown figure %s", id)
	}
	for i := 0; i < b.N; i++ {
		var out io.Writer = io.Discard
		if i == 0 {
			// The first iteration prints the regenerated series, so a
			// plain `go test -bench=.` run is self-documenting.
			fmt.Fprintf(os.Stdout, "\n== Figure %s: %s ==\n", f.ID, f.Title)
			out = os.Stdout
		}
		if err := f.Run(out); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig04Thermal(b *testing.B)          { benchFig(b, "4") }
func BenchmarkFig05ShrinkExpand(b *testing.B)     { benchFig(b, "5") }
func BenchmarkFig06ControlPoint(b *testing.B)     { benchFig(b, "6") }
func BenchmarkFig07Interop(b *testing.B)          { benchFig(b, "7") }
func BenchmarkFig08AMRScaling(b *testing.B)       { benchFig(b, "8L") }
func BenchmarkFig08AMRCheckpoint(b *testing.B)    { benchFig(b, "8R") }
func BenchmarkFig09LeanMDScaling(b *testing.B)    { benchFig(b, "9") }
func BenchmarkFig10LeanMDCheckpoint(b *testing.B) { benchFig(b, "10") }
func BenchmarkFig11NAMDScaling(b *testing.B)      { benchFig(b, "11") }
func BenchmarkFig12BarnesHut(b *testing.B)        { benchFig(b, "12") }
func BenchmarkFig13ChaNGaPhases(b *testing.B)     { benchFig(b, "13") }
func BenchmarkFig14Lulesh(b *testing.B)           { benchFig(b, "14") }
func BenchmarkFig15aPholdLPs(b *testing.B)        { benchFig(b, "15a") }
func BenchmarkFig15bPholdTram(b *testing.B)       { benchFig(b, "15b") }
func BenchmarkFig16CloudStencil(b *testing.B)     { benchFig(b, "16") }
func BenchmarkFig17CloudLeanMD(b *testing.B)      { benchFig(b, "17") }

// ---- Ablations (design-choice benchmarks from DESIGN.md §4) ----

// BenchmarkAblationOverdecomp sweeps chares per PE on the cloud stencil,
// quantifying the latency-hiding benefit of over-decomposition alone.
func BenchmarkAblationOverdecomp(b *testing.B) {
	for _, chares := range []int{6, 12, 24, 48} {
		perPE := chares * chares / 32
		b.Run(fmt.Sprintf("chares_per_pe_%d", perPE), func(b *testing.B) {
			var virt float64
			for i := 0; i < b.N; i++ {
				rt := charm.New(machine.New(machine.Cloud(32)))
				res, err := stencil.Run(rt, stencil.Config{
					GridN: 576, Chares: chares, Iters: 10, PerPointWork: 60e-9,
				})
				if err != nil {
					b.Fatal(err)
				}
				virt = float64(res.Elapsed)
			}
			b.ReportMetric(virt*1e3, "virtual_ms")
		})
	}
}

// BenchmarkAblationLBStrategies compares every strategy on the same
// imbalanced LeanMD run, isolating the strategy choice.
func BenchmarkAblationLBStrategies(b *testing.B) {
	strategies := []struct {
		name string
		s    charm.Strategy
	}{
		{"NoLB", nil},
		{"Greedy", lb.Greedy{}},
		{"Refine", lb.Refine{}},
		{"Hybrid", lb.Hybrid{}},
		{"Distributed", lb.Distributed{Seed: 3}},
	}
	for _, st := range strategies {
		b.Run(st.name, func(b *testing.B) {
			var virt float64
			for i := 0; i < b.N; i++ {
				rt := charm.New(machine.New(machine.Vesta(128)))
				cfg := leanmd.Config{
					CellsX: 6, CellsY: 6, CellsZ: 6, AtomsPerCell: 27,
					Gaussian: 6, Steps: 10, Seed: 5, MigratePeriod: 100,
					PerInteractionWork: 300e-9,
				}
				if st.s != nil {
					rt.SetBalancer(st.s)
					cfg.LBPeriod = 5
				}
				res, err := leanmd.Run(rt, cfg)
				if err != nil {
					b.Fatal(err)
				}
				virt = float64(res.Elapsed)
			}
			b.ReportMetric(virt*1e3, "virtual_ms")
		})
	}
}

// BenchmarkAblationLocationCache measures the location-manager design:
// cold caches force home-PE forwarding; warm caches deliver direct.
func BenchmarkAblationLocationCache(b *testing.B) {
	b.Run("after_migration_forwarded", func(b *testing.B) {
		var forwarded uint64
		for i := 0; i < b.N; i++ {
			rt, arr := benchCacheSetup()
			// Scatter all elements, then send one round from stale caches.
			objs, pes := rt.LBView()
			migs := lb.Rotate{}.Balance(objs, pes)
			for _, m := range migs {
				arr.Replace(m.Idx, arr.Get(m.Idx), m.ToPE)
			}
			rt.Boot(func(ctx *charm.Ctx) {
				for k := 0; k < 64; k++ {
					ctx.Send(arr, charm.Idx1(k), 0, nil)
				}
			})
			rt.Run()
			forwarded = rt.Stats.MsgsForwarded
		}
		b.ReportMetric(float64(forwarded), "forwards")
	})
	b.Run("warm_cache_direct", func(b *testing.B) {
		var forwarded uint64
		for i := 0; i < b.N; i++ {
			rt, arr := benchCacheSetup()
			rt.Boot(func(ctx *charm.Ctx) {
				for k := 0; k < 64; k++ {
					ctx.Send(arr, charm.Idx1(k), 0, nil)
				}
			})
			rt.Run()
			forwarded = rt.Stats.MsgsForwarded
		}
		b.ReportMetric(float64(forwarded), "forwards")
	})
}

type benchBlob struct{ N int64 }

func (x *benchBlob) Pup(p *pup.Pup) { p.Int64(&x.N) }

func benchCacheSetup() (*charm.Runtime, *charm.Array) {
	rt := charm.New(machine.New(machine.Testbed(16)))
	arr := rt.DeclareArray("b", func() charm.Chare { return &benchBlob{} },
		[]charm.Handler{func(obj charm.Chare, ctx *charm.Ctx, msg any) {}},
		charm.ArrayOpts{Migratable: true})
	for i := 0; i < 64; i++ {
		arr.Insert(charm.Idx1(i), &benchBlob{})
	}
	return rt, arr
}

// BenchmarkRuntimeMessageThroughput measures raw simulated messages per
// wall second — the engine's own overhead (not virtual time).
func BenchmarkRuntimeMessageThroughput(b *testing.B) {
	rt := charm.New(machine.New(machine.Testbed(64)))
	var arr *charm.Array
	count := 0
	handlers := []charm.Handler{func(obj charm.Chare, ctx *charm.Ctx, msg any) {
		n := msg.(int)
		count++
		if n > 0 {
			ctx.Send(arr, charm.Idx1((ctx.Index().I()+1)%256), 0, n-1)
		}
	}}
	arr = rt.DeclareArray("m", func() charm.Chare { return &benchBlob{} }, handlers, charm.ArrayOpts{})
	for i := 0; i < 256; i++ {
		arr.Insert(charm.Idx1(i), &benchBlob{})
	}
	b.ResetTimer()
	for i := 0; i < 256; i++ {
		arr.Send(charm.Idx1(i), 0, b.N/256)
	}
	rt.Run()
	b.ReportMetric(float64(count)/b.Elapsed().Seconds(), "msgs/s")
}

// BenchmarkAblationNICContention enables the NIC egress-serialization
// model and measures PHOLD with and without TRAM: aggregation reclaims
// the per-packet wire overhead that fine-grained events waste, so its
// advantage widens under contention.
func BenchmarkAblationNICContention(b *testing.B) {
	run := func(nic bool, useTram bool) float64 {
		cfg := machine.Stampede(32)
		if nic {
			cfg.NICBandwidth = 0.15e9
			cfg.PacketOverheadBytes = 128
		}
		rt := charm.New(machine.New(cfg))
		res, err := pdes.Run(rt, pdes.Config{
			LPs: 32 * 64, EventsPerLP: 24,
			TargetEvents: 32 * 64 * 24 * 2, UseTram: useTram, Seed: 12,
		})
		if err != nil {
			b.Fatal(err)
		}
		return res.EventRate
	}
	for _, nic := range []bool{false, true} {
		name := "infinite_wire"
		if nic {
			name = "nic_serialized"
		}
		b.Run(name, func(b *testing.B) {
			var direct, tram float64
			for i := 0; i < b.N; i++ {
				direct = run(nic, false)
				tram = run(nic, true)
			}
			b.ReportMetric(direct, "direct_ev_per_s")
			b.ReportMetric(tram, "tram_ev_per_s")
			b.ReportMetric(tram/direct, "tram_speedup")
		})
	}
}

// BenchmarkAblationMulticast compares LeanMD's cell→computes position
// traffic as individual sends vs one section multicast per cell (the
// CkMulticast pattern): fewer wire messages, less sender overhead.
func BenchmarkAblationMulticast(b *testing.B) {
	run := func(mcast bool) (float64, uint64) {
		rt := charm.New(machine.New(machine.Vesta(64)))
		res, err := leanmd.Run(rt, leanmd.Config{
			CellsX: 5, CellsY: 5, CellsZ: 5, AtomsPerCell: 27,
			Steps: 8, Seed: 4, MigratePeriod: 100, UseMulticast: mcast,
		})
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.Elapsed), rt.Stats.MsgsSent
	}
	for _, mcast := range []bool{false, true} {
		name := "individual_sends"
		if mcast {
			name = "section_multicast"
		}
		b.Run(name, func(b *testing.B) {
			var virt float64
			var msgs uint64
			for i := 0; i < b.N; i++ {
				virt, msgs = run(mcast)
			}
			b.ReportMetric(virt*1e3, "virtual_ms")
			b.ReportMetric(float64(msgs), "wire_msgs")
		})
	}
}

// BenchmarkAblationTopoMapping compares hash placement against the
// topology-aware mapper on a multi-node BG/Q model: neighbour traffic
// stays within few torus hops.
func BenchmarkAblationTopoMapping(b *testing.B) {
	run := func(topo bool) float64 {
		rt := charm.New(machine.New(machine.Vesta(128)))
		res, err := leanmd.Run(rt, leanmd.Config{
			CellsX: 6, CellsY: 6, CellsZ: 6, AtomsPerCell: 27,
			Steps: 8, Seed: 6, MigratePeriod: 100, TopoAware: topo,
		})
		if err != nil {
			b.Fatal(err)
		}
		return float64(res.Elapsed)
	}
	for _, topo := range []bool{false, true} {
		name := "hash_map"
		if topo {
			name = "topo_map"
		}
		b.Run(name, func(b *testing.B) {
			var virt float64
			for i := 0; i < b.N; i++ {
				virt = run(topo)
			}
			b.ReportMetric(virt*1e3, "virtual_ms")
		})
	}
}
