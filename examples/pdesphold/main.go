// PDES example: the PHOLD benchmark under YAWNS, showing how
// over-decomposition raises the event rate and how TRAM trades latency for
// throughput on fine-grained event traffic.
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/machine"

	"charmgo/internal/apps/pdes"
)

func rate(lpsPerPE, eventsPerLP int, tram bool) float64 {
	rt := charmgo.NewRuntime(charmgo.NewMachine(machine.Stampede(32)))
	lps := 32 * lpsPerPE
	res, err := pdes.Run(rt, pdes.Config{
		LPs: lps, EventsPerLP: eventsPerLP,
		TargetEvents: lps * eventsPerLP * 2,
		UseTram:      tram, Seed: 5,
	})
	if err != nil {
		panic(err)
	}
	return res.EventRate
}

func main() {
	fmt.Println("over-decomposition (8 events/LP, direct sends):")
	for _, lpp := range []int{16, 64, 256} {
		fmt.Printf("  %3d LPs/PE: %8.0f events/s\n", lpp, rate(lpp, 8, false))
	}
	fmt.Println("TRAM (64 LPs/PE):")
	for _, epl := range []int{2, 24} {
		d := rate(64, epl, false)
		t := rate(64, epl, true)
		verdict := "TRAM wins"
		if t < d {
			verdict = "direct wins (aggregation latency)"
		}
		fmt.Printf("  %2d events/LP: direct %8.0f ev/s, TRAM %8.0f ev/s — %s\n",
			epl, d, t, verdict)
	}
}
