// Introspection example: the runtime continuously observes itself — the
// §III-E story. A Projections-style tracer samples per-PE utilization
// while an imbalanced LeanMD runs; the load database names the heaviest
// objects; and after an RTS-triggered rebalance the same instruments show
// the machine leveled out.
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/trace"

	"charmgo/internal/apps/leanmd"
)

func main() {
	rt := charmgo.NewRuntime(charmgo.NewMachine(machine.Testbed(8)))
	tr := trace.New(rt, 0.0005)
	tr.Start()

	cfg := leanmd.Config{
		CellsX: 4, CellsY: 4, CellsZ: 4, AtomsPerCell: 27,
		Gaussian: 8, // pile the atoms up: severe imbalance
		Steps:    24, Seed: 7, MigratePeriod: 100,
		PerInteractionWork: 400e-9,
	}
	// Mid-run, the RTS notices the imbalance and rebalances itself.
	rebalanced := false
	cfg.StepHook = func(step int) {
		if step == 12 && !rebalanced {
			rebalanced = true
			rt.SetBalancer(lb.Greedy{})
			objs, pes := rt.LBView()
			maxE, avgE := lb.Imbalance(objs, pes)
			fmt.Printf("step %d: measured imbalance max/avg = %.2f — triggering LB\n",
				step, maxE/avgE)
			top := trace.LoadProfile(rt, 3)
			for _, o := range top {
				fmt.Printf("  heaviest object %s%v on PE %d: %.3f ms of load\n",
					o.Array.Name(), o.Idx, o.PE, o.Load*1e3)
			}
			rep := rt.Rebalance()
			fmt.Printf("  moved %d of %d objects; predicted max load %.3f -> %.3f ms\n",
				rep.NumMoved, rep.NumObjs, rep.MaxLoad*1e3, rep.MaxLoadPost*1e3)
		}
	}

	res, err := leanmd.Run(rt, cfg)
	if err != nil {
		panic(err)
	}
	ts := res.StepTimes()
	before, after := 0.0, 0.0
	for _, v := range ts[6:12] {
		before += v / 6
	}
	for _, v := range ts[18:24] {
		after += v / 6
	}
	fmt.Printf("\nstep time before LB: %.3f ms, after: %.3f ms\n", before*1e3, after*1e3)

	fmt.Println("\nper-PE utilization timeline (one column per 0.5 ms):")
	fmt.Print(tr.Timeline(8))
	pe, util := tr.HottestPE()
	fmt.Printf("hottest PE: %d at %.0f%% mean utilization\n", pe, util*100)
}
