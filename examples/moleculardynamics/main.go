// Molecular dynamics example: LeanMD with a skewed atom distribution on a
// BG/Q-class machine, comparing a run without load balancing against the
// same run with the hierarchical balancer, then taking a double in-memory
// checkpoint and surviving a simulated PE failure.
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/ckpt"
	"charmgo/internal/lb"
	"charmgo/internal/machine"

	"charmgo/internal/apps/leanmd"
)

func run(balance bool) (float64, *charmgo.Runtime) {
	rt := charmgo.NewRuntime(charmgo.NewMachine(machine.Vesta(64)))
	cfg := leanmd.Config{
		CellsX: 5, CellsY: 5, CellsZ: 5,
		AtomsPerCell: 27, Gaussian: 6, // atoms piled up in the box centre
		Steps: 12, Seed: 42,
	}
	if balance {
		rt.SetBalancer(lb.Hybrid{})
		cfg.LBPeriod = 4
	}
	res, err := leanmd.Run(rt, cfg)
	if err != nil {
		panic(err)
	}
	ts := res.StepTimes()
	tail := 0.0
	for _, t := range ts[len(ts)-4:] {
		tail += t
	}
	return tail / 4, rt
}

func main() {
	noLB, _ := run(false)
	withLB, rt := run(true)
	fmt.Printf("steady step time without LB: %.3f ms (virtual)\n", noLB*1e3)
	fmt.Printf("steady step time with HybridLB: %.3f ms (%.0f%% faster)\n",
		withLB*1e3, (1-withLB/noLB)*100)

	// Fault tolerance on the balanced run's final state: checkpoint, lose
	// a PE, recover from the buddy copies.
	mem := ckpt.NewMem(rt)
	ckptTime := mem.Checkpoint()
	restartTime, err := mem.FailAndRecover(3)
	if err != nil {
		panic(err)
	}
	fmt.Printf("in-memory checkpoint: %.1f ms; PE 3 failed, recovery: %.1f ms (virtual)\n",
		float64(ckptTime)*1e3, float64(restartTime)*1e3)
	fmt.Printf("migrations performed by the RTS: %d\n", rt.Stats.Migrations)
}
