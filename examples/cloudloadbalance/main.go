// Cloud load-balancing example: a Jacobi stencil on 32 cloud VMs where an
// interfering tenant lands on one node mid-run. The RTS's speed-aware
// balancer detects the slowdown through its instrumented load database and
// migrates blocks off the interfered node.
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/cloud"
	"charmgo/internal/des"
	"charmgo/internal/lb"
	"charmgo/internal/machine"

	"charmgo/internal/apps/stencil"
)

func run(withLB bool) []float64 {
	rt := charmgo.NewRuntime(charmgo.NewMachine(machine.Cloud(32)))
	lbPeriod := 0
	if withLB {
		rt.SetBalancer(lb.Refine{Tolerance: 1.1})
		lbPeriod = 20
	}
	// An interfering VM arrives on node 0 at t=30ms and stays.
	cloud.InterfereNode(rt, 0, des.Time(0.03), -1, 0.6)
	res, err := stencil.Run(rt, stencil.Config{
		GridN: 576, Chares: 16, Iters: 120,
		LBPeriod: lbPeriod, PerPointWork: 60e-9,
	})
	if err != nil {
		panic(err)
	}
	return res.IterTimes()
}

func main() {
	noLB := run(false)
	withLB := run(true)
	fmt.Println("iter   NoLB(ms)   LB(ms)")
	for i := 0; i < len(noLB); i += 10 {
		fmt.Printf("%4d   %8.3f   %7.3f\n", i, noLB[i]*1e3, withLB[i]*1e3)
	}
	tail := func(v []float64) float64 {
		s := 0.0
		for _, x := range v[len(v)-20:] {
			s += x
		}
		return s / 20
	}
	fmt.Printf("\nsteady-state after interference: NoLB %.3f ms/iter, LB %.3f ms/iter\n",
		tail(noLB)*1e3, tail(withLB)*1e3)
}
