// Quickstart: a complete migratable-objects program built directly on the
// public charmgo API — a ring of chares passing a counter, a broadcast, a
// reduction, and one runtime-directed migration, all on a simulated
// 16-PE machine.
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

// hello is our chare type. Any struct with a Pup method is migratable:
// the runtime can serialize it, move it between PEs, checkpoint it.
type hello struct {
	Visits int64
}

func (h *hello) Pup(p *pup.Pup) { p.Int64(&h.Visits) }

// Entry points of the chare array.
const (
	epToken charmgo.EP = iota
	epStats
)

func main() {
	// A 16-PE InfiniBand-class machine (virtual: times below are the
	// simulated machine's clock, not wall time).
	rt := charmgo.NewRuntime(charmgo.NewMachine(machine.Stampede(16)))

	const ringSize = 32
	var ring *charmgo.Array

	handlers := []charmgo.Handler{
		// epToken: receive the token, do some work, pass it on.
		epToken: func(obj charmgo.Chare, ctx *charmgo.Ctx, msg any) {
			h := obj.(*hello)
			h.Visits++
			hops := msg.(int)
			ctx.Charge(2e-6) // 2 µs of modeled computation
			if hops > 0 {
				next := (ctx.Index().I() + 1) % ringSize
				ctx.Send(ring, charmgo.Idx1(next), epToken, hops-1)
				return
			}
			fmt.Printf("token retired on PE %d at t=%.6fs (virtual)\n", ctx.MyPE(), float64(ctx.Now()))
		},
		// epStats: every chare contributes its visit count to a sum
		// reduction delivered to a function on PE 0.
		epStats: func(obj charmgo.Chare, ctx *charmgo.Ctx, msg any) {
			h := obj.(*hello)
			ctx.Contribute(h.Visits, charmgo.SumI64,
				charmgo.CallbackFunc(0, func(ctx *charmgo.Ctx, result any) {
					fmt.Printf("total visits across the ring: %d\n", result.(int64))
					ctx.Exit()
				}))
		},
	}

	ring = rt.DeclareArray("ring", func() charmgo.Chare { return &hello{} },
		handlers, charmgo.ArrayOpts{Migratable: true})
	for i := 0; i < ringSize; i++ {
		ring.Insert(charmgo.Idx1(i), &hello{})
	}

	// Kick the token around the ring three times, then gather stats.
	ring.Send(charmgo.Idx1(0), epToken, 3*ringSize)
	rt.Engine().After(1.0, func() {
		ring.Broadcast(epStats, nil)
	})

	end := rt.Run()
	fmt.Printf("simulation finished at t=%.6fs after %d messages\n",
		float64(end), rt.Stats.MsgsDelivered)
}
