// AMR advection example: an oct-tree mesh tracks a Gaussian pulse moving
// through a periodic box, refining ahead of it and coarsening behind it,
// with quiescence-detected restructuring and distributed load balancing.
// The run finishes with a disk checkpoint restarted on a different PE
// count — the §III-B split-execution feature.
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/ckpt"
	"charmgo/internal/lb"
	"charmgo/internal/machine"

	"charmgo/internal/apps/amr"
)

func main() {
	rt := charmgo.NewRuntime(charmgo.NewMachine(machine.Vesta(64)))
	rt.SetBalancer(lb.Distributed{Seed: 7})
	cfg := amr.Config{
		MinDepth: 2, MaxDepth: 4, StartDepth: 3,
		BlockSize: 8, Steps: 16, RemeshPeriod: 4, Rebalance: true,
	}
	app, err := amr.New(rt, cfg)
	if err != nil {
		panic(err)
	}
	res, err := app.Run()
	if err != nil {
		panic(err)
	}
	for i, t := range res.StepTimes() {
		fmt.Printf("step %2d  %.5f s  %4d blocks  mass %.6f\n", i, t, res.Blocks[i], res.Mass[i])
	}
	fmt.Printf("%d remeshes; mass drift %.3g (flux-form upwind)\n",
		res.Remeshes, res.Mass[len(res.Mass)-1]-res.Mass[0])

	// Chare-based checkpointing: the same snapshot restarts on any PE
	// count, because elements are re-homed by the location manager.
	snap := ckpt.Capture(rt)
	for _, newPEs := range []int{16, 256} {
		rt2 := charmgo.NewRuntime(charmgo.NewMachine(machine.Vesta(newPEs)))
		app2, err := amr.New(rt2, cfg)
		if err != nil {
			panic(err)
		}
		// Restart into an empty mesh: drop the fresh blocks first.
		for _, idx := range app2.Blocks().Keys() {
			app2.Blocks().Remove(idx)
		}
		if err := ckpt.Restore(rt2, snap); err != nil {
			panic(err)
		}
		fmt.Printf("restarted %d blocks from the 64-PE checkpoint on %d PEs\n",
			app2.Blocks().Len(), newPEs)
	}
}
