// Interoperation example (§III-G): an MPI application whose global sort is
// its scaling bottleneck offloads that one phase to a Charm-side sorting
// library module — the CHARM cosmology study. The same step runs with the
// MPI multiway merge sort and with the library called across the
// interoperation interface, on the same machine.
package main

import (
	"fmt"

	"charmgo"
	"charmgo/internal/machine"

	"charmgo/internal/apps/sorting"
)

func run(algo sorting.Algo, pes int) *sorting.Result {
	rt := charmgo.NewRuntime(charmgo.NewMachine(machine.Testbed(pes)))
	res, err := sorting.Run(rt, sorting.Config{
		Ranks:         pes,
		KeysPerRank:   1 << 18 / pes, // strong scaling: 256k particles total
		Algo:          algo,
		ComputePerKey: 2e-6,
		Seed:          7,
	})
	if err != nil {
		panic(err)
	}
	return res
}

func main() {
	fmt.Println("per-step time: useful computation vs the sorting phase")
	fmt.Println("PEs   useful(s)  MPI-merge(s)  interop-HistSort(s)  merge%  interop%")
	for _, pes := range []int{8, 32, 128} {
		ms := run(sorting.MergeTree, pes)
		cs := run(sorting.HistSortCharm, pes)
		fmt.Printf("%-5d %-10.4f %-13.4f %-20.4f %-7.1f %.1f\n",
			pes, ms.ComputeTime, ms.SortTime, cs.SortTime,
			ms.SortFraction*100, cs.SortFraction*100)
	}
	fmt.Println("\nthe merge sort serializes at its tree root and grows into the")
	fmt.Println("bottleneck; the Charm library, called from the MPI ranks through")
	fmt.Println("the interop interface, keeps sorting a small fraction of the step.")
}
