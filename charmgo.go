// Package charmgo is a Go reproduction of the migratable-objects parallel
// programming model described in "Parallel Programming with Migratable
// Objects: Charm++ in Practice" (Acun et al., SC 2014).
//
// Programs are written as collections of chares — migratable C++-style
// objects, here ordinary Go structs with a Pup serialization method —
// grouped into indexed chare arrays. Chares communicate through
// asynchronous entry-method invocations and are scheduled message-driven:
// a chare runs only when a message arrives for it, and the runtime is free
// to migrate chares between processing elements at any load-balancing
// point. On these three attributes (over-decomposition, asynchronous
// message-driven execution, migratability) the runtime provides the
// adaptive features the paper evaluates: a load-balancing strategy suite,
// checkpoint/restart and double in-memory fault tolerance, thermal-aware
// DVFS, malleable shrink/expand, an introspective control system, the
// TRAM fine-grained message aggregator, and Adaptive MPI.
//
// Execution happens on a virtual machine: a deterministic discrete-event
// simulation of a parallel computer (nodes, PEs, an α-β-hop network,
// caches, DVFS and a thermal model), so cluster-scale behaviour is
// reproducible on one host while application code performs its real
// computation. See DESIGN.md for the system inventory and EXPERIMENTS.md
// for the paper-figure reproductions.
//
// # Quick start
//
//	m := charmgo.NewMachine(machine.Stampede(64))
//	rt := charmgo.NewRuntime(m)
//	arr := rt.DeclareArray("hello", factory, handlers, charmgo.ArrayOpts{})
//	arr.Insert(charmgo.Idx1(0), &myChare{})
//	arr.Send(charmgo.Idx1(0), epGreet, "world")
//	rt.Run()
//
// The subpackages under internal/apps contain full mini-applications
// (LeanMD, AMR3D, Barnes-Hut, LULESH-on-AMPI, PDES/PHOLD, Stencil2D,
// HistSort) built on this API; the examples directory shows runnable
// programs.
package charmgo

import (
	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/machine"
)

// Core type aliases: the stable public façade over the runtime packages.
type (
	// Runtime is the adaptive runtime system.
	Runtime = charm.Runtime
	// Array is a chare array: an indexed collection of migratable
	// objects.
	Array = charm.Array
	// ArrayOpts configures a chare array at declaration.
	ArrayOpts = charm.ArrayOpts
	// Chare is the interface chare state implements (PUP serializable).
	Chare = charm.Chare
	// Ctx is the execution context passed to entry methods.
	Ctx = charm.Ctx
	// EP identifies an entry method.
	EP = charm.EP
	// Handler is an entry-method body.
	Handler = charm.Handler
	// Index identifies an element within a chare array.
	Index = charm.Index
	// SendOpts tunes one send (payload size, priority).
	SendOpts = charm.SendOpts
	// Callback names a continuation for collective operations.
	Callback = charm.Callback
	// Reducer combines reduction contributions.
	Reducer = charm.Reducer
	// Strategy is a load-balancing strategy.
	Strategy = charm.Strategy
	// LBObject and LBPE form the instrumented view strategies receive.
	LBObject = charm.LBObject
	LBPE     = charm.LBPE
	// Migration is one strategy decision.
	Migration = charm.Migration
	// Group is a chare collection with one member per PE.
	Group = charm.Group
	// Machine is the virtual parallel machine.
	Machine = machine.Machine
	// MachineConfig describes a machine.
	MachineConfig = machine.Config
	// Time is virtual time in seconds.
	Time = des.Time
)

// NewMachine instantiates a virtual machine from a configuration; the
// machine package provides named configurations (Stampede, Vesta,
// BlueWaters, Hopper, Cloud, ...).
func NewMachine(cfg machine.Config) *Machine { return machine.New(cfg) }

// NewRuntime creates a runtime over a machine.
func NewRuntime(m *Machine) *Runtime { return charm.New(m) }

// Index constructors.
var (
	Idx1             = charm.Idx1
	Idx2             = charm.Idx2
	Idx3             = charm.Idx3
	Idx6             = charm.Idx6
	BitVec           = charm.BitVec
	BitVecFromCoords = charm.BitVecFromCoords
)

// Callback constructors.
var (
	CallbackSend  = charm.CallbackSend
	CallbackBcast = charm.CallbackBcast
	CallbackFunc  = charm.CallbackFunc
)

// Built-in reducers.
var (
	SumF64    = charm.SumF64
	MinF64    = charm.MinF64
	MaxF64    = charm.MaxF64
	SumI64    = charm.SumI64
	MinI64    = charm.MinI64
	MaxI64    = charm.MaxI64
	AndB      = charm.AndB
	OrB       = charm.OrB
	SumVecF64 = charm.SumVecF64
)
