package lb

import "charmgo/internal/charm"

// Meta is the MetaLB / RTS-triggered adaptive wrapper (§III-A, §III-C, and
// the cloud experiments of §IV-F): the application reaches the AtSync
// barrier frequently, but the inner strategy only runs when the measured
// imbalance makes rebalancing worth its cost. Otherwise Balance returns no
// migrations and the barrier is nearly free.
type Meta struct {
	// Inner is the strategy to run when triggered.
	Inner charm.Strategy
	// Threshold is the max/avg effective-load ratio that triggers
	// balancing; 1.10 by default.
	Threshold float64
	// MinGain is the minimum predicted per-interval saving (seconds)
	// that justifies a rebalance; defaults to the inner strategy's
	// decision cost.
	MinGain float64

	triggers       int
	skips          int
	lastWasTrigger bool
}

// Name implements charm.Strategy.
func (m *Meta) Name() string { return "MetaLB(" + m.Inner.Name() + ")" }

// Triggers returns how many barriers actually rebalanced.
func (m *Meta) Triggers() int { return m.triggers }

// Skips returns how many barriers were cheap no-ops.
func (m *Meta) Skips() int { return m.skips }

// Balance implements charm.Strategy.
func (m *Meta) Balance(objs []charm.LBObject, pes []charm.LBPE) []charm.Migration {
	maxEff, avgEff := Imbalance(objs, pes)
	thr := m.Threshold
	if thr <= 0 {
		thr = 1.10
	}
	gainNeeded := m.MinGain
	if gainNeeded <= 0 {
		if cm, ok := m.Inner.(charm.StrategyCostModeler); ok {
			gainNeeded = cm.DecisionCost(len(objs), len(pes))
		} else {
			gainNeeded = 1e-3
		}
	}
	if avgEff <= 0 || maxEff/avgEff < thr || (maxEff-avgEff) < gainNeeded {
		m.skips++
		m.lastWasTrigger = false
		return nil
	}
	m.triggers++
	m.lastWasTrigger = true
	return m.Inner.Balance(objs, pes)
}

// DecisionCost models the trigger check plus, conservatively, the inner
// cost amortized over the trigger rate; the runtime charges per call, so we
// report the trigger-path cost only when we actually balanced last.
func (m *Meta) DecisionCost(nObjs, nPEs int) float64 {
	base := 2e-5 // imbalance statistics are already in the LB database
	if m.lastWasTrigger {
		if cm, ok := m.Inner.(charm.StrategyCostModeler); ok {
			return base + cm.DecisionCost(nObjs, nPEs)
		}
		return base + 1e-3
	}
	return base
}

// Imbalance returns the maximum and average effective (speed-adjusted)
// PE load implied by the object view.
func Imbalance(objs []charm.LBObject, pes []charm.LBPE) (maxEff, avgEff float64) {
	maxID := 0
	for _, p := range pes {
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	load := make([]float64, maxID+1)
	for _, o := range objs {
		if o.PE <= maxID {
			load[o.PE] += o.Load
		}
	}
	n := 0
	for _, p := range pes {
		eff := load[p.ID] / maxf(p.Speed, 1e-9)
		if eff > maxEff {
			maxEff = eff
		}
		avgEff += eff
		n++
	}
	if n > 0 {
		avgEff /= float64(n)
	}
	return maxEff, avgEff
}
