// Package lb provides the load-balancing strategy suite of §III-A: a
// mature framework with centralized (Greedy, Refine, ORB), hierarchical
// (Hybrid), and distributed (gossip-based) schemes, plus the MetaLB
// adaptive trigger that invokes balancing only when the benefit outweighs
// the cost.
//
// Every strategy is speed-aware: PE capacity is proportional to the
// measured relative speed reported by the runtime (which folds in DVFS
// levels and cloud interference), so the same strategies serve the thermal
// (Fig 4), cloud (Figs 16, 17), and homogeneous (Figs 8, 9, 12) scenarios.
package lb

import (
	"container/heap"
	"math/rand"
	"sort"

	"charmgo/internal/charm"
)

// objRef pairs an object with its index in the strategy's working slices.
type objRef struct {
	obj  charm.LBObject
	dest int
}

// peHeap orders PEs by effective load ascending (load divided by speed).
type peHeap struct {
	ids   []int
	load  []float64 // assigned raw load per PE id
	speed []float64
}

func (h *peHeap) eff(id int) float64 {
	s := h.speed[id]
	if s <= 0 {
		s = 1e-9
	}
	return h.load[id] / s
}
func (h *peHeap) Len() int { return len(h.ids) }
func (h *peHeap) Less(i, j int) bool {
	ei, ej := h.eff(h.ids[i]), h.eff(h.ids[j])
	if ei != ej {
		return ei < ej
	}
	return h.ids[i] < h.ids[j]
}
func (h *peHeap) Swap(i, j int) { h.ids[i], h.ids[j] = h.ids[j], h.ids[i] }
func (h *peHeap) Push(x any)    { h.ids = append(h.ids, x.(int)) }
func (h *peHeap) Pop() any {
	old := h.ids
	n := len(old)
	v := old[n-1]
	h.ids = old[:n-1]
	return v
}

// assignGreedy maps objects (largest first) onto the PE with the lowest
// effective load, returning the destination PE per object. base carries
// pre-existing load per PE (e.g. from objects pinned elsewhere).
func assignGreedy(objs []charm.LBObject, pes []charm.LBPE, base []float64) []int {
	order := make([]int, len(objs))
	for i := range order {
		order[i] = i
	}
	// Ties break on object identity, not enumeration order, so the
	// resulting placement is a pure function of the (load, identity) set:
	// two runs whose objects arrive in different per-PE orders — e.g. a
	// run perturbed by a proactive evacuation — still converge to the
	// same mapping at the next greedy round.
	sort.Slice(order, func(a, b int) bool {
		oa, ob := objs[order[a]], objs[order[b]]
		if oa.Load != ob.Load {
			return oa.Load > ob.Load
		}
		var na, nb string
		if oa.Array != nil {
			na = oa.Array.Name()
		}
		if ob.Array != nil {
			nb = ob.Array.Name()
		}
		if na != nb {
			return na < nb
		}
		return oa.Idx.Less(ob.Idx)
	})
	h := &peHeap{load: make([]float64, 0), speed: make([]float64, 0)}
	maxID := 0
	for _, p := range pes {
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	h.load = make([]float64, maxID+1)
	h.speed = make([]float64, maxID+1)
	for _, p := range pes {
		if base != nil {
			h.load[p.ID] = base[p.ID]
		}
		h.speed[p.ID] = p.Speed
		h.ids = append(h.ids, p.ID)
	}
	heap.Init(h)
	dest := make([]int, len(objs))
	for _, oi := range order {
		id := h.ids[0]
		dest[oi] = id
		h.load[id] += objs[oi].Load
		heap.Fix(h, 0)
	}
	return dest
}

// Greedy is the centralized GreedyLB: objects sorted by load descending are
// assigned to the least-loaded PE.
type Greedy struct{}

// Name implements charm.Strategy.
func (Greedy) Name() string { return "GreedyLB" }

// Balance implements charm.Strategy.
func (Greedy) Balance(objs []charm.LBObject, pes []charm.LBPE) []charm.Migration {
	dest := assignGreedy(objs, pes, nil)
	return diff(objs, dest)
}

// DecisionCost models a centralized O(n log n) decision plus a gather of
// all object stats.
func (Greedy) DecisionCost(nObjs, nPEs int) float64 {
	return 2e-4 + 8e-8*float64(nObjs)*log2f(nObjs) + 1e-6*float64(nPEs)
}

// Refine moves objects off overloaded PEs until the maximum effective load
// is within Tolerance of the average, minimizing migrations — RefineLB.
type Refine struct {
	// Tolerance is the acceptable max/avg ratio; 1.05 by default.
	Tolerance float64
}

// Name implements charm.Strategy.
func (Refine) Name() string { return "RefineLB" }

// Balance implements charm.Strategy.
func (r Refine) Balance(objs []charm.LBObject, pes []charm.LBPE) []charm.Migration {
	tol := r.Tolerance
	if tol <= 0 {
		tol = 1.05
	}
	dest := refine(objs, pes, tol)
	return diff(objs, dest)
}

// DecisionCost models the cheaper refinement pass.
func (Refine) DecisionCost(nObjs, nPEs int) float64 {
	return 1e-4 + 4e-8*float64(nObjs)*log2f(nObjs)
}

func refine(objs []charm.LBObject, pes []charm.LBPE, tol float64) []int {
	maxID := 0
	for _, p := range pes {
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	load := make([]float64, maxID+1)
	speed := make([]float64, maxID+1)
	present := make([]bool, maxID+1)
	for _, p := range pes {
		speed[p.ID] = p.Speed
		present[p.ID] = true
	}
	dest := make([]int, len(objs))
	perPE := make([][]int, maxID+1)
	totalCap := 0.0
	totalLoad := 0.0
	for i, o := range objs {
		pe := o.PE
		if pe > maxID || !present[pe] {
			pe = pes[0].ID // owner PE left the active set; re-place
		}
		dest[i] = pe
		load[pe] += o.Load
		perPE[pe] = append(perPE[pe], i)
		totalLoad += o.Load
	}
	for _, p := range pes {
		totalCap += p.Speed
	}
	if totalCap <= 0 || totalLoad <= 0 {
		return dest
	}
	// Target effective load per PE.
	target := totalLoad / totalCap
	eff := func(pe int) float64 {
		s := speed[pe]
		if s <= 0 {
			s = 1e-9
		}
		return load[pe] / s
	}
	// Donors: PEs above tol*target.
	donors := make([]int, 0)
	for _, p := range pes {
		if eff(p.ID) > tol*target {
			donors = append(donors, p.ID)
		}
	}
	sort.Slice(donors, func(i, j int) bool { return eff(donors[i]) > eff(donors[j]) })
	for _, d := range donors {
		// Move smallest-first so we overshoot as little as possible.
		objsHere := append([]int(nil), perPE[d]...)
		sort.Slice(objsHere, func(a, b int) bool {
			if objs[objsHere[a]].Load != objs[objsHere[b]].Load {
				return objs[objsHere[a]].Load < objs[objsHere[b]].Load
			}
			return objsHere[a] < objsHere[b]
		})
		for _, oi := range objsHere {
			if eff(d) <= tol*target {
				break
			}
			// Best receiver for THIS object: the PE whose effective load
			// after adding it is lowest. On heterogeneous-speed machines
			// that is not the PE with the lowest current effective load —
			// a slowed PE can read as underloaded yet be the worst place
			// to add work — so rank by post-add load, not current load.
			rcv, best := -1, 0.0
			for _, p := range pes {
				if p.ID == d {
					continue
				}
				after := eff(p.ID) + objs[oi].Load/maxf(speed[p.ID], 1e-9)
				if rcv < 0 || after < best || (after == best && p.ID < rcv) {
					rcv, best = p.ID, after
				}
			}
			if rcv < 0 || best >= eff(d) {
				break // no improvement possible
			}
			load[d] -= objs[oi].Load
			load[rcv] += objs[oi].Load
			dest[oi] = rcv
		}
	}
	return dest
}

// Rotate moves every object to the next PE — a degenerate strategy used by
// tests and as a worst-case migration-volume baseline.
type Rotate struct{}

// Name implements charm.Strategy.
func (Rotate) Name() string { return "RotateLB" }

// Balance implements charm.Strategy.
func (Rotate) Balance(objs []charm.LBObject, pes []charm.LBPE) []charm.Migration {
	n := len(pes)
	migs := make([]charm.Migration, 0, len(objs))
	for _, o := range objs {
		migs = append(migs, charm.Migration{Array: o.Array, Idx: o.Idx, ToPE: pes[(indexOf(pes, o.PE)+1)%n].ID})
	}
	return migs
}

func indexOf(pes []charm.LBPE, id int) int {
	for i, p := range pes {
		if p.ID == id {
			return i
		}
	}
	return 0
}

// diff converts an assignment vector into the minimal migration list.
func diff(objs []charm.LBObject, dest []int) []charm.Migration {
	var migs []charm.Migration
	for i, o := range objs {
		if dest[i] != o.PE {
			migs = append(migs, charm.Migration{Array: o.Array, Idx: o.Idx, ToPE: dest[i]})
		}
	}
	return migs
}

// Hybrid is the hierarchical HybridLB of §IV-B: PEs form groups of
// GroupSize; a greedy pass balances within each group, then whole-group
// imbalances are corrected by moving objects from the hottest groups to the
// coldest. This bounds the decision cost at scale, which is why LeanMD
// needs it at 32k PEs (Fig 9).
type Hybrid struct {
	// GroupSize is the PEs per group; 0 picks ~sqrt(P).
	GroupSize int
}

// Name implements charm.Strategy.
func (Hybrid) Name() string { return "HybridLB" }

// Balance implements charm.Strategy.
func (hb Hybrid) Balance(objs []charm.LBObject, pes []charm.LBPE) []charm.Migration {
	g := hb.GroupSize
	if g <= 0 {
		g = 1
		for g*g < len(pes) {
			g++
		}
		if g < 8 {
			g = 8
		}
	}
	nGroups := (len(pes) + g - 1) / g
	groupOf := func(peIdx int) int { return peIdx / g }
	movedTo := map[int]int{} // object -> receiving group for cross-group donations

	// Index PEs by position in the pes slice.
	pos := map[int]int{}
	for i, p := range pes {
		pos[p.ID] = i
	}

	// Group-level totals, then cross-group donations via greedy matching.
	groupLoad := make([]float64, nGroups)
	groupCap := make([]float64, nGroups)
	for i, p := range pes {
		groupCap[groupOf(i)] += p.Speed
	}
	objGroups := make([][]int, nGroups)
	for i, o := range objs {
		gi := 0
		if pi, ok := pos[o.PE]; ok {
			gi = groupOf(pi)
		}
		groupLoad[gi] += o.Load
		objGroups[gi] = append(objGroups[gi], i)
	}
	totalLoad, totalCap := 0.0, 0.0
	for gi := 0; gi < nGroups; gi++ {
		totalLoad += groupLoad[gi]
		totalCap += groupCap[gi]
	}
	dest := make([]int, len(objs))
	if totalCap <= 0 {
		for i, o := range objs {
			dest[i] = o.PE
		}
		return diff(objs, dest)
	}
	// Cross-group refinement: donate smallest objects from over-target
	// groups to the most under-target groups.
	over := make([]int, 0)
	for gi := 0; gi < nGroups; gi++ {
		if groupCap[gi] > 0 && groupLoad[gi]/groupCap[gi] > 1.05*totalLoad/totalCap {
			over = append(over, gi)
		}
	}
	for _, gi := range over {
		target := totalLoad / totalCap * groupCap[gi]
		cand := append([]int(nil), objGroups[gi]...)
		sort.Slice(cand, func(a, b int) bool {
			if objs[cand[a]].Load != objs[cand[b]].Load {
				return objs[cand[a]].Load < objs[cand[b]].Load
			}
			return cand[a] < cand[b]
		})
		for _, oi := range cand {
			if groupLoad[gi] <= target {
				break
			}
			// Coldest group.
			best, bestEff := -1, 0.0
			for gj := 0; gj < nGroups; gj++ {
				if gj == gi || groupCap[gj] <= 0 {
					continue
				}
				e := groupLoad[gj] / groupCap[gj]
				if best < 0 || e < bestEff {
					best, bestEff = gj, e
				}
			}
			if best < 0 || bestEff >= groupLoad[gi]/groupCap[gi] {
				break
			}
			groupLoad[gi] -= objs[oi].Load
			groupLoad[best] += objs[oi].Load
			objGroups[best] = append(objGroups[best], oi)
			// Remove from gi's list lazily: mark via dest later; simplest
			// is to track membership in objGroups[best] and skip in gi's
			// greedy pass using a moved set.
			movedTo[oi] = best
		}
	}
	// Within-group greedy.
	for gi := 0; gi < nGroups; gi++ {
		lo, hi := gi*g, (gi+1)*g
		if hi > len(pes) {
			hi = len(pes)
		}
		groupPEs := pes[lo:hi]
		var local []charm.LBObject
		var localIdx []int
		for _, oi := range objGroups[gi] {
			if to, ok := movedTo[oi]; ok && to != gi {
				continue
			}
			local = append(local, objs[oi])
			localIdx = append(localIdx, oi)
		}
		d := assignGreedy(local, groupPEs, nil)
		for k, oi := range localIdx {
			dest[oi] = d[k]
		}
	}
	return diff(objs, dest)
}

// DecisionCost models the hierarchical decision: each group solves a
// problem of size n/groups concurrently.
func (hb Hybrid) DecisionCost(nObjs, nPEs int) float64 {
	g := hb.GroupSize
	if g <= 0 {
		g = 1
		for g*g < nPEs {
			g++
		}
		if g < 8 {
			g = 8
		}
	}
	groups := (nPEs + g - 1) / g
	per := float64(nObjs)/float64(groups) + 1
	return 1.5e-4 + 8e-8*per*log2f(int(per)) + 5e-7*float64(groups)
}

// Distributed is the gossip-based distributed strategy of Menon & Kalé
// (SC'13) used by AMR3D (Fig 8): PEs learn the global average through a few
// gossip rounds, and overloaded PEs push objects to probabilistically
// chosen underloaded PEs. No central bottleneck, so its decision cost is
// O(objects/PE + gossip rounds).
type Distributed struct {
	// Seed makes the probabilistic transfer deterministic.
	Seed int64
	// Hops is the number of gossip rounds (default 8).
	Hops int
}

// Name implements charm.Strategy.
func (Distributed) Name() string { return "DistributedLB" }

// Balance implements charm.Strategy.
func (d Distributed) Balance(objs []charm.LBObject, pes []charm.LBPE) []charm.Migration {
	rng := rand.New(rand.NewSource(d.Seed ^ 0x5eed))
	maxID := 0
	for _, p := range pes {
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	load := make([]float64, maxID+1)
	speed := make([]float64, maxID+1)
	for _, p := range pes {
		speed[p.ID] = p.Speed
	}
	perPE := make([][]int, maxID+1)
	totalLoad, totalCap := 0.0, 0.0
	for i, o := range objs {
		load[o.PE] += o.Load
		perPE[o.PE] = append(perPE[o.PE], i)
		totalLoad += o.Load
	}
	for _, p := range pes {
		totalCap += p.Speed
	}
	if totalCap <= 0 {
		return nil
	}
	target := totalLoad / totalCap
	dest := make([]int, len(objs))
	for i, o := range objs {
		dest[i] = o.PE
	}
	// Underloaded PEs advertise themselves with probability proportional
	// to their headroom (the gossip phase's outcome).
	var under []int
	var headroom []float64
	for _, p := range pes {
		have := load[p.ID] / maxf(speed[p.ID], 1e-9)
		if have < target {
			under = append(under, p.ID)
			headroom = append(headroom, (target-have)*speed[p.ID])
		}
	}
	if len(under) == 0 {
		return nil
	}
	cum := make([]float64, len(headroom))
	s := 0.0
	for i, h := range headroom {
		s += h
		cum[i] = s
	}
	pick := func() int {
		r := rng.Float64() * s
		i := sort.SearchFloat64s(cum, r)
		if i >= len(under) {
			i = len(under) - 1
		}
		return i
	}
	for _, p := range pes {
		if load[p.ID]/maxf(speed[p.ID], 1e-9) <= 1.02*target {
			continue
		}
		cand := append([]int(nil), perPE[p.ID]...)
		sort.Slice(cand, func(a, b int) bool {
			if objs[cand[a]].Load != objs[cand[b]].Load {
				return objs[cand[a]].Load < objs[cand[b]].Load
			}
			return cand[a] < cand[b]
		})
		for _, oi := range cand {
			if load[p.ID]/maxf(speed[p.ID], 1e-9) <= 1.02*target {
				break
			}
			// Probe up to 2 random underloaded PEs (Grapevine's
			// randomized probes) and take the first with room.
			for probe := 0; probe < 2; probe++ {
				ui := pick()
				u := under[ui]
				if headroom[ui] >= objs[oi].Load*0.5 {
					load[p.ID] -= objs[oi].Load
					load[u] += objs[oi].Load
					headroom[ui] -= objs[oi].Load
					if headroom[ui] < 0 {
						headroom[ui] = 0
					}
					dest[oi] = u
					break
				}
			}
		}
	}
	return diff(objs, dest)
}

// DecisionCost models the fully distributed decision: a handful of gossip
// rounds plus per-PE local work, independent of total object count.
func (d Distributed) DecisionCost(nObjs, nPEs int) float64 {
	hops := d.Hops
	if hops <= 0 {
		hops = 8
	}
	perPE := float64(nObjs)/float64(nPEs) + 1
	return 5e-5 + float64(hops)*1.5e-5 + 2e-7*perPE
}

// ORB performs Orthogonal Recursive Bisection over the objects' spatial
// coordinates, weighting splits by load — the strategy Barnes-Hut uses
// (§IV-C). Objects without coordinates fall back to greedy placement.
type ORB struct{}

// Name implements charm.Strategy.
func (ORB) Name() string { return "OrbLB" }

// Balance implements charm.Strategy.
func (ORB) Balance(objs []charm.LBObject, pes []charm.LBPE) []charm.Migration {
	dest := make([]int, len(objs))
	var spatial, rest []int
	for i, o := range objs {
		if o.HasPos {
			spatial = append(spatial, i)
		} else {
			rest = append(rest, i)
		}
	}
	if len(spatial) > 0 {
		orbSplit(objs, spatial, pes, dest)
	}
	if len(rest) > 0 {
		restObjs := make([]charm.LBObject, len(rest))
		for k, i := range rest {
			restObjs[k] = objs[i]
		}
		d := assignGreedy(restObjs, pes, nil)
		for k, i := range rest {
			dest[i] = d[k]
		}
	}
	return diff(objs, dest)
}

// DecisionCost models the central bisection.
func (ORB) DecisionCost(nObjs, nPEs int) float64 {
	return 2e-4 + 6e-8*float64(nObjs)*log2f(nObjs)
}

func orbSplit(objs []charm.LBObject, ids []int, pes []charm.LBPE, dest []int) {
	if len(ids) == 0 {
		return
	}
	if len(pes) == 1 {
		for _, i := range ids {
			dest[i] = pes[0].ID
		}
		return
	}
	// Split the PE set by capacity.
	half := len(pes) / 2
	capL := 0.0
	capT := 0.0
	for i, p := range pes {
		capT += p.Speed
		if i < half {
			capL += p.Speed
		}
	}
	frac := 0.5
	if capT > 0 {
		frac = capL / capT
	}
	// Longest spatial extent among the objects.
	lo := [3]float64{1e300, 1e300, 1e300}
	hi := [3]float64{-1e300, -1e300, -1e300}
	for _, i := range ids {
		for d := 0; d < 3; d++ {
			if objs[i].Pos[d] < lo[d] {
				lo[d] = objs[i].Pos[d]
			}
			if objs[i].Pos[d] > hi[d] {
				hi[d] = objs[i].Pos[d]
			}
		}
	}
	axis := 0
	for d := 1; d < 3; d++ {
		if hi[d]-lo[d] > hi[axis]-lo[axis] {
			axis = d
		}
	}
	sort.SliceStable(ids, func(a, b int) bool {
		if objs[ids[a]].Pos[axis] != objs[ids[b]].Pos[axis] {
			return objs[ids[a]].Pos[axis] < objs[ids[b]].Pos[axis]
		}
		return ids[a] < ids[b]
	})
	total := 0.0
	for _, i := range ids {
		total += objs[i].Load
	}
	// Find the load-weighted split point.
	acc := 0.0
	cut := 0
	for k, i := range ids {
		acc += objs[i].Load
		cut = k + 1
		if acc >= frac*total {
			break
		}
	}
	if cut <= 0 {
		cut = 1
	}
	if cut >= len(ids) && len(ids) > 1 {
		cut = len(ids) - 1
	}
	orbSplit(objs, ids[:cut], pes[:half], dest)
	orbSplit(objs, ids[cut:], pes[half:], dest)
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

func log2f(n int) float64 {
	if n < 2 {
		return 1
	}
	l := 0.0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	return l
}
