package lb

import (
	"sort"

	"charmgo/internal/charm"
)

// CommAware is a communication-aware greedy strategy (the GreedyCommLB
// family of §III-A): objects are placed heaviest-first onto the PE that
// minimizes effective compute load *minus* an affinity credit for
// communication with objects already placed there. It needs arrays
// declared with TrackComm so the runtime's LB database carries the
// communication graph.
type CommAware struct {
	// CommWeight converts bytes of co-located communication into seconds
	// of credited load; 0 picks a weight that makes the average object's
	// total communication worth ~1.5× the average object load, enough to
	// overcome the marginal imbalance of stacking one partner.
	CommWeight float64
}

// Name implements charm.Strategy.
func (CommAware) Name() string { return "GreedyCommLB" }

type objID struct {
	arr *charm.Array
	idx charm.Index
}

// Balance implements charm.Strategy.
func (ca CommAware) Balance(objs []charm.LBObject, pes []charm.LBPE) []charm.Migration {
	if len(objs) == 0 || len(pes) == 0 {
		return nil
	}
	w := ca.CommWeight
	if w == 0 {
		var totalLoad, totalComm float64
		for _, o := range objs {
			totalLoad += o.Load
			for _, e := range o.Comm {
				totalComm += float64(e.Bytes)
			}
		}
		if totalComm > 0 {
			w = 1.5 * totalLoad / totalComm
		}
	}

	// Build a symmetric affinity graph between migratable objects.
	key := func(arr *charm.Array, idx charm.Index) objID {
		return objID{arr: arr, idx: idx}
	}
	pos := make(map[objID]int, len(objs))
	for i, o := range objs {
		pos[key(o.Array, o.Idx)] = i
	}
	affinity := make([]map[int]float64, len(objs))
	addEdge := func(a, b int, bytes float64) {
		if affinity[a] == nil {
			affinity[a] = map[int]float64{}
		}
		affinity[a][b] += bytes
	}
	for i, o := range objs {
		for _, e := range o.Comm {
			j, ok := pos[key(e.ToArray, e.ToIdx)]
			if !ok || j == i {
				continue
			}
			addEdge(i, j, float64(e.Bytes))
			addEdge(j, i, float64(e.Bytes))
		}
	}
	// Flatten to neighbour lists in ascending-index order: the scoring
	// loops below accumulate floats, and map-order summation would let
	// last-bit rounding differences flip placement decisions between
	// otherwise identical runs.
	type edge struct {
		j     int
		bytes float64
	}
	edges := make([][]edge, len(objs))
	for i, adj := range affinity {
		for j, b := range adj {
			edges[i] = append(edges[i], edge{j, b})
		}
		sort.Slice(edges[i], func(a, b int) bool { return edges[i][a].j < edges[i][b].j })
	}

	// Greedy placement, heaviest (load + comm degree) first.
	order := make([]int, len(objs))
	for i := range order {
		order[i] = i
	}
	weight := func(i int) float64 {
		s := objs[i].Load
		for _, e := range edges[i] {
			s += w * e.bytes / 2
		}
		return s
	}
	sort.SliceStable(order, func(a, b int) bool { return weight(order[a]) > weight(order[b]) })

	maxID := 0
	for _, p := range pes {
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	load := make([]float64, maxID+1)
	speed := make([]float64, maxID+1)
	for _, p := range pes {
		speed[p.ID] = p.Speed
	}
	dest := make([]int, len(objs))
	for i := range dest {
		dest[i] = -1
	}
	for _, oi := range order {
		bestPE, bestScore := -1, 0.0
		for _, p := range pes {
			s := speed[p.ID]
			if s <= 0 {
				s = 1e-9
			}
			score := (load[p.ID] + objs[oi].Load) / s
			// Credit communication with objects already on p.
			for _, e := range edges[oi] {
				if dest[e.j] == p.ID {
					score -= w * e.bytes
				}
			}
			if bestPE < 0 || score < bestScore {
				bestPE, bestScore = p.ID, score
			}
		}
		dest[oi] = bestPE
		load[bestPE] += objs[oi].Load
	}
	return diff(objs, dest)
}

// DecisionCost models the centralized graph-aware decision.
func (CommAware) DecisionCost(nObjs, nPEs int) float64 {
	return 3e-4 + 1.5e-7*float64(nObjs)*float64(nPEs)/8
}
