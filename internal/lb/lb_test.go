package lb

import (
	"math/rand"
	"testing"
	"testing/quick"

	"charmgo/internal/charm"
)

// mkObjs builds a synthetic object view: loads[i] on PE pesOf[i].
func mkObjs(loads []float64, pesOf []int) []charm.LBObject {
	objs := make([]charm.LBObject, len(loads))
	for i := range loads {
		objs[i] = charm.LBObject{Idx: charm.Idx1(i), PE: pesOf[i], Load: loads[i]}
	}
	return objs
}

func mkPEs(n int, speeds ...float64) []charm.LBPE {
	pes := make([]charm.LBPE, n)
	for i := range pes {
		s := 1.0
		if i < len(speeds) {
			s = speeds[i]
		}
		pes[i] = charm.LBPE{ID: i, Speed: s}
	}
	return pes
}

// apply returns the post-balance effective max/avg ratio.
func apply(objs []charm.LBObject, pes []charm.LBPE, migs []charm.Migration) (maxEff, avgEff float64) {
	dest := map[int]int{}
	for i, o := range objs {
		dest[i] = o.PE
	}
	for _, m := range migs {
		for i, o := range objs {
			if o.Idx == m.Idx {
				dest[i] = m.ToPE
			}
		}
	}
	load := map[int]float64{}
	for i := range objs {
		load[dest[i]] += objs[i].Load
	}
	for _, p := range pes {
		eff := load[p.ID] / p.Speed
		if eff > maxEff {
			maxEff = eff
		}
		avgEff += eff
	}
	avgEff /= float64(len(pes))
	return maxEff, avgEff
}

func skewed(n, pes int, seed int64) ([]charm.LBObject, []charm.LBPE) {
	rng := rand.New(rand.NewSource(seed))
	loads := make([]float64, n)
	on := make([]int, n)
	for i := range loads {
		loads[i] = 0.001 + rng.Float64()*0.01
		on[i] = rng.Intn(pes / 4) // everything crowded onto the first quarter
	}
	return mkObjs(loads, on), mkPEs(pes)
}

func strategies() map[string]charm.Strategy {
	return map[string]charm.Strategy{
		"greedy":      Greedy{},
		"refine":      Refine{},
		"hybrid":      Hybrid{GroupSize: 4},
		"distributed": Distributed{Seed: 1},
	}
}

func TestStrategiesReduceImbalance(t *testing.T) {
	for name, s := range strategies() {
		objs, pes := skewed(200, 16, 42)
		before, avg := Imbalance(objs, pes)
		migs := s.Balance(objs, pes)
		after, _ := apply(objs, pes, migs)
		if after > before*0.7 {
			t.Errorf("%s: imbalance barely improved: %.4f -> %.4f (avg %.4f)", name, before, after, avg)
		}
		if after < avg*0.99 {
			t.Errorf("%s: post-balance max %.4f below average %.4f — accounting bug", name, after, avg)
		}
	}
}

func TestStrategiesConserveObjects(t *testing.T) {
	// Every migration must reference a real object and an in-range PE,
	// and no object may appear twice.
	for name, s := range strategies() {
		objs, pes := skewed(150, 12, 7)
		migs := s.Balance(objs, pes)
		seen := map[charm.Index]bool{}
		for _, m := range migs {
			if seen[m.Idx] {
				t.Errorf("%s: duplicate migration for %v", name, m.Idx)
			}
			seen[m.Idx] = true
			if m.ToPE < 0 || m.ToPE >= len(pes) {
				t.Errorf("%s: migration to out-of-range PE %d", name, m.ToPE)
			}
		}
	}
}

func TestStrategiesNoopWhenBalanced(t *testing.T) {
	// A perfectly balanced uniform assignment should trigger few moves.
	loads := make([]float64, 64)
	on := make([]int, 64)
	for i := range loads {
		loads[i] = 0.01
		on[i] = i % 8
	}
	objs := mkObjs(loads, on)
	pes := mkPEs(8)
	for name, s := range map[string]charm.Strategy{
		"refine":      Refine{},
		"distributed": Distributed{Seed: 3},
	} {
		if migs := s.Balance(objs, pes); len(migs) > 4 {
			t.Errorf("%s: moved %d objects on a balanced system", name, len(migs))
		}
	}
}

func TestGreedySpeedAware(t *testing.T) {
	// One PE at half speed should end with about half the raw load.
	loads := make([]float64, 100)
	on := make([]int, 100)
	for i := range loads {
		loads[i] = 0.01
	}
	objs := mkObjs(loads, on)
	pes := mkPEs(4, 1, 1, 1, 0.5)
	migs := Greedy{}.Balance(objs, pes)
	raw := map[int]float64{}
	dest := map[int]int{}
	for i, o := range objs {
		dest[i] = o.PE
	}
	for _, m := range migs {
		dest[int(int64(m.Idx.A))] = m.ToPE
	}
	for i := range objs {
		raw[dest[i]] += objs[i].Load
	}
	slowShare := raw[3] / 1.0
	fastShare := raw[0]
	if slowShare > 0.75*fastShare {
		t.Fatalf("slow PE got %.4f, fast PE %.4f — not speed-aware", raw[3], raw[0])
	}
}

func TestRefineMovesLittle(t *testing.T) {
	// Mild imbalance: refine should fix it with far fewer moves than
	// greedy's full remap.
	loads := make([]float64, 80)
	on := make([]int, 80)
	for i := range loads {
		loads[i] = 0.01
		on[i] = i % 8
	}
	// Pile 8 extra objects onto PE 0.
	for i := 0; i < 8; i++ {
		loads = append(loads, 0.01)
		on = append(on, 0)
	}
	objs := mkObjs(loads, on)
	pes := mkPEs(8)
	rMigs := Refine{}.Balance(objs, pes)
	if len(rMigs) == 0 {
		t.Fatal("refine did nothing about the hot PE")
	}
	// Only ~8 excess objects sit on PE 0; refine must not remap the world.
	if len(rMigs) > 12 {
		t.Fatalf("refine moved %d objects to fix an 8-object excess", len(rMigs))
	}
	after, avg := apply(objs, pes, rMigs)
	if after > 1.25*avg {
		t.Fatalf("refine left max/avg at %.3f", after/avg)
	}
}

func TestORBRespectsGeometry(t *testing.T) {
	// Objects on a line; ORB over 4 PEs should produce 4 contiguous
	// spatial runs.
	n := 64
	objs := make([]charm.LBObject, n)
	for i := range objs {
		objs[i] = charm.LBObject{
			Idx: charm.Idx1(i), PE: 0, Load: 0.01,
			Pos: [3]float64{float64(i), 0, 0}, HasPos: true,
		}
	}
	pes := mkPEs(4)
	migs := ORB{}.Balance(objs, pes)
	dest := make([]int, n)
	for _, m := range migs {
		dest[int(int64(m.Idx.A))] = m.ToPE
	}
	// Count PE changes along the line: contiguous decomposition has 3.
	changes := 0
	for i := 1; i < n; i++ {
		if dest[i] != dest[i-1] {
			changes++
		}
	}
	if changes != 3 {
		t.Fatalf("ORB produced %d boundary changes along a line, want 3 (dest=%v)", changes, dest)
	}
	counts := map[int]int{}
	for _, d := range dest {
		counts[d]++
	}
	for pe, c := range counts {
		if c < n/8 {
			t.Fatalf("ORB starved PE %d with %d objects", pe, c)
		}
	}
}

func TestORBFallsBackWithoutPositions(t *testing.T) {
	objs, pes := skewed(100, 8, 5)
	migs := ORB{}.Balance(objs, pes)
	after, _ := apply(objs, pes, migs)
	before, _ := Imbalance(objs, pes)
	if after > before {
		t.Fatalf("ORB fallback worsened imbalance: %.4f -> %.4f", before, after)
	}
}

func TestDistributedDeterministic(t *testing.T) {
	objs, pes := skewed(300, 32, 9)
	a := Distributed{Seed: 5}.Balance(objs, pes)
	objs2, pes2 := skewed(300, 32, 9)
	b := Distributed{Seed: 5}.Balance(objs2, pes2)
	if len(a) != len(b) {
		t.Fatalf("nondeterministic: %d vs %d migrations", len(a), len(b))
	}
	for i := range a {
		if a[i].Idx != b[i].Idx || a[i].ToPE != b[i].ToPE {
			t.Fatalf("nondeterministic at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestHybridScalesGroups(t *testing.T) {
	objs, pes := skewed(400, 64, 11)
	before, avg := Imbalance(objs, pes)
	migs := Hybrid{GroupSize: 8}.Balance(objs, pes)
	after, _ := apply(objs, pes, migs)
	if after > before*0.5 {
		t.Fatalf("hybrid: %.4f -> %.4f (avg %.4f)", before, after, avg)
	}
	// Hierarchical decision must be cheaper than centralized at scale.
	h := Hybrid{}.DecisionCost(1<<17, 1<<15)
	g := Greedy{}.DecisionCost(1<<17, 1<<15)
	if h >= g {
		t.Fatalf("hybrid decision cost %.6f not below greedy %.6f at scale", h, g)
	}
}

func TestDistributedCostIndependentOfScale(t *testing.T) {
	small := Distributed{}.DecisionCost(1<<10, 1<<7)
	big := Distributed{}.DecisionCost(1<<20, 1<<17)
	if big > 3*small {
		t.Fatalf("distributed decision cost grew with scale: %.6f -> %.6f", small, big)
	}
}

func TestMetaSkipsWhenBalanced(t *testing.T) {
	loads := make([]float64, 64)
	on := make([]int, 64)
	for i := range loads {
		loads[i] = 0.01
		on[i] = i % 8
	}
	objs := mkObjs(loads, on)
	pes := mkPEs(8)
	m := &Meta{Inner: Greedy{}}
	if migs := m.Balance(objs, pes); len(migs) != 0 {
		t.Fatalf("meta balanced a balanced system: %d moves", len(migs))
	}
	if m.Skips() != 1 || m.Triggers() != 0 {
		t.Fatalf("skips=%d triggers=%d", m.Skips(), m.Triggers())
	}
}

func TestMetaTriggersOnImbalance(t *testing.T) {
	objs, pes := skewed(200, 16, 13)
	m := &Meta{Inner: Greedy{}, Threshold: 1.1}
	migs := m.Balance(objs, pes)
	if len(migs) == 0 || m.Triggers() != 1 {
		t.Fatalf("meta failed to trigger: %d moves, %d triggers", len(migs), m.Triggers())
	}
	// Cheap when skipping, expensive when triggering.
	costAfterTrigger := m.DecisionCost(200, 16)
	m.Balance(mkObjs([]float64{0.01, 0.01}, []int{0, 1}), mkPEs(2))
	costAfterSkip := m.DecisionCost(200, 16)
	if costAfterSkip >= costAfterTrigger {
		t.Fatalf("meta cost model: skip %.6f >= trigger %.6f", costAfterSkip, costAfterTrigger)
	}
}

// Property: for any workload, greedy never leaves a PE with more than the
// largest object above the optimal effective bound.
func TestPropertyGreedyBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(200)
		p := 2 + rng.Intn(30)
		loads := make([]float64, n)
		on := make([]int, n)
		maxL, total := 0.0, 0.0
		for i := range loads {
			loads[i] = rng.Float64() * 0.01
			on[i] = rng.Intn(p)
			total += loads[i]
			if loads[i] > maxL {
				maxL = loads[i]
			}
		}
		objs := mkObjs(loads, on)
		pes := mkPEs(p)
		migs := Greedy{}.Balance(objs, pes)
		after, _ := apply(objs, pes, migs)
		opt := total / float64(p)
		return after <= opt+maxL+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: no strategy ever increases the effective maximum load.
func TestPropertyNeverWorse(t *testing.T) {
	f := func(seed int64) bool {
		objs, pes := skewed(100, 8, seed)
		before, _ := Imbalance(objs, pes)
		for _, s := range strategies() {
			migs := s.Balance(objs, pes)
			after, _ := apply(objs, pes, migs)
			if after > before*1.001 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkGreedy4k(b *testing.B) {
	objs, pes := skewed(4096, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Greedy{}.Balance(objs, pes)
	}
}

func BenchmarkDistributed4k(b *testing.B) {
	objs, pes := skewed(4096, 256, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Distributed{Seed: 1}.Balance(objs, pes)
	}
}

func TestCommAwareColocatesPartners(t *testing.T) {
	// 8 pairs of heavily communicating objects scattered across 4 PEs:
	// the comm-aware strategy should put each pair on one PE.
	arr := &charm.Array{}
	var objs []charm.LBObject
	for pair := 0; pair < 8; pair++ {
		a, b := charm.Idx1(pair*2), charm.Idx1(pair*2+1)
		objs = append(objs,
			charm.LBObject{Array: arr, Idx: a, PE: pair % 4, Load: 0.01,
				Comm: []charm.CommEdge{{ToArray: arr, ToIdx: b, Bytes: 1 << 20}}},
			charm.LBObject{Array: arr, Idx: b, PE: (pair + 1) % 4, Load: 0.01,
				Comm: []charm.CommEdge{{ToArray: arr, ToIdx: a, Bytes: 1 << 20}}},
		)
	}
	pes := mkPEs(4)
	migs := CommAware{}.Balance(objs, pes)
	dest := map[charm.Index]int{}
	for _, o := range objs {
		dest[o.Idx] = o.PE
	}
	for _, m := range migs {
		dest[m.Idx] = m.ToPE
	}
	together := 0
	for pair := 0; pair < 8; pair++ {
		if dest[charm.Idx1(pair*2)] == dest[charm.Idx1(pair*2+1)] {
			together++
		}
	}
	if together < 7 {
		t.Fatalf("only %d of 8 pairs co-located: %v", together, dest)
	}
	// Load still balanced: 4 pairs per... 8 pairs over 4 PEs = 2 pairs each.
	count := map[int]int{}
	for _, pe := range dest {
		count[pe]++
	}
	for pe, c := range count {
		if c > 6 {
			t.Fatalf("PE %d overloaded with %d objects", pe, c)
		}
	}
}

func TestCommAwareWithoutCommBehavesLikeGreedy(t *testing.T) {
	objs, pes := skewed(100, 8, 21)
	migs := CommAware{}.Balance(objs, pes)
	after, _ := apply(objs, pes, migs)
	before, _ := Imbalance(objs, pes)
	if after > before*0.6 {
		t.Fatalf("comm-aware without comm data failed to balance: %.4f -> %.4f", before, after)
	}
}
