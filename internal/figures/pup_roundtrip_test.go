package figures

import (
	"testing"

	"charmgo/internal/pup/puptest"
)

func TestPupRoundTrip(t *testing.T) {
	puptest.CheckEqual(t, &thermalWorker{Steps: 120, Work: 4.5e-3})
}
