package figures

import (
	"errors"
	"fmt"
	"sync"
)

// sweepWorkers is the number of sweep points a figure may run concurrently.
// Each sweep point builds its own machine and runtime, so points share no
// simulation state; 1 (the default) reproduces the historical fully
// sequential behaviour.
var sweepWorkers = 1

// SetWorkers sets the per-figure sweep parallelism: how many independent
// sweep points (PE counts, policies, configurations) run concurrently on
// host threads. Figure tables are assembled from sweep results in index
// order after all points complete, so output is byte-identical for every
// worker count. n < 1 is treated as 1.
func SetWorkers(n int) {
	if n < 1 {
		n = 1
	}
	sweepWorkers = n
}

// Workers returns the current sweep parallelism.
func Workers() int { return sweepWorkers }

// sweep evaluates fn for every point 0..n-1, up to sweepWorkers at a time,
// and returns the results in point order. A point that fails or panics does
// not abort the others: every point runs to completion, and the error (if
// any) joins one labeled entry per failed point, so a sweep over many PE
// counts reports exactly which configurations broke.
func sweep[T any](n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	if sweepWorkers <= 1 || n <= 1 {
		for i := 0; i < n; i++ {
			out[i], errs[i] = runPoint(i, fn)
		}
	} else {
		sem := make(chan struct{}, sweepWorkers)
		var wg sync.WaitGroup
		for i := 0; i < n; i++ {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				out[i], errs[i] = runPoint(i, fn)
			}(i)
		}
		wg.Wait()
	}
	return out, errors.Join(errs...)
}

// runPoint evaluates one sweep point, converting a panic (figure run
// helpers panic on app errors) into a labeled error.
func runPoint[T any](i int, fn func(i int) (T, error)) (out T, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("sweep point %d: panic: %v", i, r)
		}
	}()
	out, err = fn(i)
	if err != nil {
		err = fmt.Errorf("sweep point %d: %w", i, err)
	}
	return out, err
}
