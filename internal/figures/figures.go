// Package figures regenerates every figure of the paper's evaluation
// (Figs 4–17; Figs 1–3 are schematics and the paper has no numbered
// tables). Each FigNN function runs the corresponding experiment on the
// virtual machine at a laptop-tractable scale — problem sizes and PE
// counts are scaled down from the paper's 1k–128k-core runs, preserving
// the shapes: who wins, by roughly what factor, and where crossovers
// fall. EXPERIMENTS.md records paper-vs-measured for each.
package figures

import (
	"fmt"
	"io"
	"sort"
	"text/tabwriter"

	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/cloud"
	"charmgo/internal/des"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/malleable"
	"charmgo/internal/power"
	"charmgo/internal/pup"

	"charmgo/internal/apps/amr"
	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/pingpong"
	"charmgo/internal/apps/sorting"
	"charmgo/internal/apps/stencil"
)

// Fig is one reproducible figure.
type Fig struct {
	ID    string
	Title string
	Run   func(w io.Writer) error
	// SeqOnly marks figures whose apps drive AMPI rank goroutines, which
	// park inside handlers and so only run on the sequential engine.
	SeqOnly bool
}

// backend overrides the engine every figure runtime uses; see SetBackend.
var backend string

// SetBackend routes subsequent figure runs onto the chosen engine
// ("sequential" or "parallel"); the empty string keeps each machine
// config's default. Figure output is virtual-time only, so a figure's
// table is byte-identical across backends.
func SetBackend(b string) { backend = b }

// newMachine applies the backend selection to a machine config.
func newMachine(cfg machine.Config) *machine.Machine {
	if backend != "" {
		cfg.Backend = backend
	}
	return machine.New(cfg)
}

// newRuntime is the common construction path for figure runtimes.
func newRuntime(cfg machine.Config) *charm.Runtime {
	return charm.New(newMachine(cfg))
}

// All returns every figure in order.
func All() []Fig {
	return []Fig{
		{ID: "4", Title: "Temperature-aware DVFS: exec time and max temp per policy", Run: Fig04Thermal},
		{ID: "5", Title: "LeanMD shrink/expand: per-step times across reconfigurations", Run: Fig05ShrinkExpand},
		{ID: "6", Title: "Control system tunes pipelined-ping message count", Run: Fig06ControlPoint},
		{ID: "7", Title: "CHARM interop: MPI multiway-merge sort vs Charm++ HistSort", Run: Fig07Interop, SeqOnly: true},
		{ID: "8L", Title: "AMR3D strong scaling: NoLB vs DistributedLB", Run: Fig08AMRScaling},
		{ID: "8R", Title: "AMR3D checkpoint/restart time vs PEs", Run: Fig08AMRCheckpoint},
		{ID: "9", Title: "LeanMD strong scaling: with vs without HybridLB", Run: Fig09LeanMDScaling},
		{ID: "10", Title: "LeanMD in-memory checkpoint/restart vs PEs", Run: Fig10LeanMDCheckpoint},
		{ID: "11", Title: "NAMD-style strong scaling on Titan and Jaguar models", Run: Fig11NAMDScaling},
		{ID: "12", Title: "Barnes-Hut: over-decomposition and ORB LB", Run: Fig12BarnesHut},
		{ID: "13", Title: "ChaNGa-style phase breakdown vs PEs", Run: Fig13ChaNGaPhases},
		{ID: "14", Title: "LULESH: MPI vs AMPI virtualization, cache and LB", Run: Fig14Lulesh, SeqOnly: true},
		{ID: "15a", Title: "PHOLD event rate vs LPs per PE", Run: Fig15aPholdLPs},
		{ID: "15b", Title: "PHOLD with and without TRAM", Run: Fig15bPholdTram},
		{ID: "16", Title: "Stencil2D under cloud interference, with and without LB", Run: Fig16CloudStencil},
		{ID: "17", Title: "LeanMD in a heterogeneous cloud", Run: Fig17CloudLeanMD},
		{ID: "S", Title: "Paper-scale Stencil2D: 8192 PEs, 262144 chares", Run: FigScale},
	}
}

// ByID returns a figure by its identifier.
func ByID(id string) (Fig, bool) {
	for _, f := range All() {
		if f.ID == id {
			return f, true
		}
	}
	return Fig{}, false
}

func table(w io.Writer) *tabwriter.Writer {
	return tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
}

// ---- Fig 4 ----

// thermalWorker is the iterative compute chare for the DVFS study.
type thermalWorker struct {
	Steps int
	Work  float64
}

func (t *thermalWorker) Pup(p *pup.Pup) {
	p.Int(&t.Steps)
	p.Float64(&t.Work)
}

// Fig04Thermal reproduces Fig 4: total execution time and hottest observed
// chip temperature for Base, NaiveDVFS, periodic DVFS+LB, and MetaTemp,
// with the thermal threshold at 50°C and CRAC at 74°F.
func Fig04Thermal(w io.Writer) error {
	type row struct {
		name   string
		time   float64
		temp   float64
		energy float64
	}
	runPolicy := func(pol power.Policy, lbPeriod float64) row {
		m := newMachine(machine.ThermalTestbed(8)) // 32 PEs
		m.SpreadCooling(0.8, 1.35)                 // rack-position variation
		rt := charm.New(m)
		var arr *charm.Array
		handlers := []charm.Handler{
			func(obj charm.Chare, ctx *charm.Ctx, msg any) {
				tw := obj.(*thermalWorker)
				ctx.Charge(tw.Work)
				tw.Steps--
				if tw.Steps > 0 {
					ctx.Send(arr, ctx.Index(), 0, nil)
					return
				}
				// Completion via reduction: handlers run concurrently on
				// the parallel backend, so a shared done-counter would
				// race; the reduction's commit half is serialized.
				ctx.Contribute(int64(1), charm.SumI64,
					charm.CallbackFunc(0, func(c *charm.Ctx, _ any) { c.Exit() }))
			},
		}
		arr = rt.DeclareArray("w", func() charm.Chare { return &thermalWorker{} },
			handlers, charm.ArrayOpts{Migratable: true})
		const objs = 128
		for i := 0; i < objs; i++ {
			// Round-robin placement: the Base configuration starts
			// perfectly balanced, as a tuned application would.
			arr.InsertOn(charm.Idx1(i), &thermalWorker{Steps: 216, Work: 0.1}, i%rt.NumPEs())
		}
		ctl := power.NewController(rt, pol)
		if lbPeriod > 0 {
			ctl.LBPeriod = des.Time(lbPeriod)
		}
		ctl.Start()
		arr.Broadcast(0, nil)
		end := rt.Run()
		name := pol.String()
		if pol == power.DVFSWithLB {
			name = fmt.Sprintf("LB_%.0fs", lbPeriod)
		}
		return row{name: name, time: float64(end), temp: m.HottestEver(),
			energy: m.TotalEnergyJ() / 1e3}
	}
	policies := []struct {
		pol power.Policy
		lbp float64
	}{
		{power.Base, 0},
		{power.NaiveDVFS, 0},
		{power.DVFSWithLB, 10},
		{power.DVFSWithLB, 5},
		{power.MetaTemp, 0},
	}
	rows, err := sweep(len(policies), func(i int) (row, error) {
		return runPolicy(policies[i].pol, policies[i].lbp), nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "config\texec_time_s\tmax_temp_C\tenergy_kJ")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%.1f\t%.1f\t%.1f\n", r.name, r.time, r.temp, r.energy)
	}
	return tw.Flush()
}

// ---- Fig 5 ----

// Fig05ShrinkExpand reproduces Fig 5: LeanMD per-step times across a
// shrink (256→128 PEs) and a later expand (128→256), with the
// reconfiguration spikes visible.
func Fig05ShrinkExpand(w io.Writer) error {
	rt := newRuntime(machine.Stampede(256))
	rt.SetBalancer(lb.Greedy{})
	mgr := malleable.NewManager(rt)
	cfg := leanmd.Config{
		CellsX: 8, CellsY: 8, CellsZ: 4, AtomsPerCell: 25,
		Steps: 120, Seed: 3, MigratePeriod: 200,
		// Full non-bonded electrostatics per pair: compute dominates the
		// step, as in the real application.
		PerInteractionWork: 500e-9,
		// Periodic AtSync LB keeps the baseline balanced (offset so LB
		// steps never coincide with the reconfiguration steps).
		LBPeriod: 6,
	}
	cfg.StepHook = func(step int) {
		switch step {
		case 40:
			if err := mgr.Reconfigure(128); err != nil {
				panic(err)
			}
		case 80:
			if err := mgr.Reconfigure(256); err != nil {
				panic(err)
			}
		}
	}
	res, err := leanmd.Run(rt, cfg)
	if err != nil {
		return err
	}
	ts := res.StepTimes()
	tw := table(w)
	fmt.Fprintln(tw, "step\ttime_per_step_s\tPEs")
	pes := 256
	for i, t := range ts {
		if i == 40 {
			pes = 128
		}
		if i == 80 {
			pes = 256
		}
		if i%4 == 0 || i == 40 || i == 80 {
			fmt.Fprintf(tw, "%d\t%.4f\t%d\n", i, t, pes)
		}
	}
	for _, ev := range mgr.Events {
		fmt.Fprintf(tw, "# reconfigure %d->%d PEs took %.2fs\t\t\n", ev.FromPEs, ev.ToPEs, float64(ev.Duration))
	}
	return tw.Flush()
}

// ---- Fig 6 ----

// Fig06ControlPoint reproduces Fig 6: the underlying time-vs-pipelining
// curve and the control system's tuning trajectory converging onto it.
func Fig06ControlPoint(w io.Writer) error {
	mk := func() *charm.Runtime { return newRuntime(machine.Stampede(32)) }
	counts := []int{1, 2, 4, 6, 8, 12, 16, 24, 32, 40}
	curve, err := pingpong.Sweep(mk, pingpong.Config{}, counts)
	if err != nil {
		return err
	}
	res, err := pingpong.Run(mk(), pingpong.Config{Steps: 40})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "pipeline_msgs\tfixed_time_per_step_s")
	ks := make([]int, 0, len(curve))
	for k := range curve {
		ks = append(ks, k)
	}
	sort.Ints(ks)
	for _, k := range ks {
		fmt.Fprintf(tw, "%d\t%.6f\n", k, curve[k])
	}
	fmt.Fprintln(tw, "\nstep\ttuned_pipeline\ttuned_time_s")
	for i := range res.StepTimes {
		fmt.Fprintf(tw, "%d\t%d\t%.6f\n", i, res.PipeValues[i], res.StepTimes[i])
	}
	fmt.Fprintf(tw, "# converged to %d pipeline messages\t\t\n", res.FinalPipe)
	return tw.Flush()
}

// ---- Fig 7 ----

// Fig07Interop reproduces Fig 7: strong scaling of the per-step useful
// computation against the two sorting libraries; the MPI multiway merge
// becomes the bottleneck while HistSort stays a small fraction.
func Fig07Interop(w io.Writer) error {
	const totalKeys = 1 << 20
	pesList := []int{8, 32, 128, 512}
	type point struct{ ms, hs *sorting.Result }
	pts, err := sweep(len(pesList), func(i int) (point, error) {
		p := pesList[i]
		keys := totalKeys / p
		run := func(algo sorting.Algo) *sorting.Result {
			rt := newRuntime(machine.Testbed(p))
			res, err := sorting.Run(rt, sorting.Config{
				Ranks: p, KeysPerRank: keys, Algo: algo, Seed: 7,
				ComputePerKey: 2e-6,
			})
			if err != nil {
				panic(err)
			}
			return res
		}
		// HistSort goes via the §III-G interop interface.
		return point{ms: run(sorting.MergeTree), hs: run(sorting.HistSortCharm)}, nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tuseful_s\tmerge_sort_s\thistsort_s\tmerge_frac\thist_frac")
	for i, p := range pesList {
		ms, hs := pts[i].ms, pts[i].hs
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\t%.1f%%\t%.1f%%\n",
			p, ms.ComputeTime, ms.SortTime, hs.SortTime,
			ms.SortFraction*100, hs.SortFraction*100)
	}
	return tw.Flush()
}

// ---- Fig 8 ----

// Fig08AMRScaling reproduces the left panel of Fig 8: AMR3D strong
// scaling with and without the distributed load balancer.
func Fig08AMRScaling(w io.Writer) error {
	run := func(pes int, balance bool) float64 {
		rt := newRuntime(machine.Vesta(pes))
		if balance {
			rt.SetBalancer(lb.Distributed{Seed: 11})
		}
		res, err := amr.Run(rt, amr.Config{
			MinDepth: 2, MaxDepth: 5, StartDepth: 3, BlockSize: 8,
			Steps: 12, RemeshPeriod: 4, Rebalance: balance,
			PerCellWork: 200e-9,
		})
		if err != nil {
			panic(err)
		}
		ts := res.StepTimes()
		sum := 0.0
		for _, v := range ts[len(ts)-4:] {
			sum += v
		}
		return sum / 4
	}
	pesList := []int{16, 32, 64, 128, 256}
	type point struct{ no, with float64 }
	pts, err := sweep(len(pesList), func(i int) (point, error) {
		return point{no: run(pesList[i], false), with: run(pesList[i], true)}, nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tNoLB_s_per_step\tDistributedLB_s_per_step\tideal_s_per_step")
	base := pts[0].with * float64(pesList[0])
	for i, pes := range pesList {
		fmt.Fprintf(tw, "%d\t%.5f\t%.5f\t%.5f\n", pes, pts[i].no, pts[i].with, base/float64(pes))
	}
	return tw.Flush()
}

// Fig08AMRCheckpoint reproduces the right panel of Fig 8: disk checkpoint
// and restart times falling (checkpoint) and flattening/ rising (restart)
// with PE count for a fixed mesh.
func Fig08AMRCheckpoint(w io.Writer) error {
	pesList := []int{256, 512, 1024, 2048, 4096}
	type point struct{ ck, rs float64 }
	pts, err := sweep(len(pesList), func(i int) (point, error) {
		pes := pesList[i]
		rt := newRuntime(machine.Vesta(pes))
		app, err := amr.New(rt, amr.Config{
			MinDepth: 4, MaxDepth: 4, StartDepth: 4, BlockSize: 8,
			Steps: 1, RemeshPeriod: 0,
		})
		if err != nil {
			return point{}, err
		}
		if _, err := app.Run(); err != nil {
			return point{}, err
		}
		snap := ckpt.Capture(rt)
		tm := ckpt.DefaultModel(pes)
		return point{
			ck: float64(ckpt.DiskCheckpointTime(snap, pes, tm)),
			rs: float64(ckpt.DiskRestartTime(snap, pes, tm)),
		}, nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tcheckpoint_s\trestart_s")
	for i, pes := range pesList {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\n", pes, pts[i].ck, pts[i].rs)
	}
	return tw.Flush()
}

// ---- Fig 16 ----

// Fig16CloudStencil reproduces Fig 16 plus the in-text over-decomposition
// numbers of §IV-F.1: Stencil2D on 32 cloud VMs, an interfering VM
// arriving mid-run, with and without heterogeneity-aware LB.
func Fig16CloudStencil(w io.Writer) error {
	const iters = 200
	run := func(withLB bool) *stencil.Result {
		rt := newRuntime(machine.Cloud(32))
		lbPeriod := 0
		if withLB {
			rt.SetBalancer(lb.Refine{Tolerance: 1.1})
			lbPeriod = 20 // "load balancing happens every 20 steps"
		}
		// The interfering VM starts one-quarter into the run.
		app, err := stencil.New(rt, stencil.Config{
			GridN: 576, Chares: 16, Iters: iters, LBPeriod: lbPeriod,
			PerPointWork: 60e-9,
		})
		if err != nil {
			panic(err)
		}
		// Estimate the iteration-100 time from a few warm iterations is
		// unnecessary: inject at a fixed virtual time chosen inside the
		// run (≈ iteration 100 of the unperturbed run).
		probe := func() float64 {
			rt2 := newRuntime(machine.Cloud(32))
			r, err := stencil.Run(rt2, stencil.Config{GridN: 576, Chares: 16,
				Iters: 10, PerPointWork: 60e-9})
			if err != nil {
				panic(err)
			}
			return float64(r.Elapsed) / 10
		}
		at := probe() * 100
		cloud.InterfereNode(rt, 0, des.Time(at), -1, 0.6)
		res, err := app.Run()
		if err != nil {
			panic(err)
		}
		return res
	}
	mainRuns, err := sweep(2, func(i int) (*stencil.Result, error) {
		return run(i == 1), nil
	})
	if err != nil {
		return err
	}
	noLB, withLB := mainRuns[0], mainRuns[1]
	tw := table(w)
	fmt.Fprintln(tw, "iter\tNoLB_iter_s\tLB_iter_s")
	nt, lt := noLB.IterTimes(), withLB.IterTimes()
	for i := 0; i < iters; i += 10 {
		fmt.Fprintf(tw, "%d\t%.5f\t%.5f\n", i, nt[i], lt[i])
	}

	// §IV-F.1: 1 chare/process vs 8 chares/process on 32 VMs.
	over := func(chares int) float64 {
		rt := newRuntime(machine.Cloud(32))
		res, err := stencil.Run(rt, stencil.Config{GridN: 576, Chares: chares,
			Iters: 10, PerPointWork: 60e-9})
		if err != nil {
			panic(err)
		}
		ts := res.IterTimes()
		sum := 0.0
		for _, v := range ts[2:] {
			sum += v
		}
		return sum / float64(len(ts)-2)
	}
	// 36 blocks ≈ 1 per VM (32 VMs); 256 blocks = 8 per VM.
	overRuns, err := sweep(2, func(i int) (float64, error) {
		return over([]int{6, 16}[i]), nil
	})
	if err != nil {
		return err
	}
	one, eight := overRuns[0], overRuns[1]
	fmt.Fprintf(tw, "# over-decomposition: 1 chare/VM %.2fms/iter -> 8 chares/VM %.2fms/iter (%.1fx)\t\t\n",
		one*1e3, eight*1e3, one/eight)
	return tw.Flush()
}
