package figures

import (
	"fmt"
	"io"

	"charmgo/internal/ckpt"
	"charmgo/internal/cloud"
	"charmgo/internal/lb"
	"charmgo/internal/machine"

	"charmgo/internal/apps/barnes"
	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/lulesh"
	"charmgo/internal/apps/pdes"
)

// leanmdSteady returns the mean of the last k per-step times.
func leanmdSteady(res *leanmd.Result, k int) float64 {
	ts := res.StepTimes()
	if len(ts) < k {
		k = len(ts)
	}
	sum := 0.0
	for _, v := range ts[len(ts)-k:] {
		sum += v
	}
	return sum / float64(k)
}

// ---- Fig 9 ----

// Fig09LeanMDScaling reproduces Fig 9: LeanMD strong scaling with and
// without the hierarchical load balancer on a BG/Q model (the paper's
// 2.8M-atom system scaled down ~100×, Gaussian-skewed for imbalance).
func Fig09LeanMDScaling(w io.Writer) error {
	run := func(pes int, balance bool) float64 {
		rt := newRuntime(machine.Vesta(pes))
		cfg := leanmd.Config{
			CellsX: 6, CellsY: 6, CellsZ: 6,
			AtomsPerCell: 27, Gaussian: 6, Steps: 10, Seed: 5,
			MigratePeriod: 100, PerInteractionWork: 300e-9,
		}
		if balance {
			rt.SetBalancer(lb.Hybrid{})
			cfg.LBPeriod = 5
		}
		res, err := leanmd.Run(rt, cfg)
		if err != nil {
			panic(err)
		}
		return leanmdSteady(res, 3)
	}
	pesList := []int{32, 64, 128, 256, 512, 1024}
	type point struct{ no, with float64 }
	pts, err := sweep(len(pesList), func(i int) (point, error) {
		return point{no: run(pesList[i], false), with: run(pesList[i], true)}, nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tNoLB_s_per_step\tHybridLB_s_per_step\tspeedup_LB\tideal")
	base, basePE := pts[0].with, pesList[0]
	for i, pes := range pesList {
		fmt.Fprintf(tw, "%d\t%.5f\t%.5f\t%.2f\t%.2f\n",
			pes, pts[i].no, pts[i].with, base/pts[i].with*float64(basePE), float64(pes))
	}
	return tw.Flush()
}

// ---- Fig 10 ----

// Fig10LeanMDCheckpoint reproduces Fig 10: double in-memory checkpoint and
// restart times vs PE count for two system sizes (the paper's 2.8M / 1.6M
// atom systems scaled down).
func Fig10LeanMDCheckpoint(w io.Writer) error {
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tbig_ckpt_s\tbig_restart_s\tsmall_ckpt_s\tsmall_restart_s")
	measure := func(pes, cellSide int) (float64, float64) {
		rt := newRuntime(machine.Vesta(pes))
		app, err := leanmd.New(rt, leanmd.Config{
			CellsX: cellSide, CellsY: cellSide, CellsZ: cellSide,
			AtomsPerCell: 27, Steps: 1, Seed: 6,
		})
		if err != nil {
			panic(err)
		}
		_ = app
		m := ckpt.NewMem(rt)
		tm := ckpt.DefaultModel(pes)
		tm.Base = 3e-4
		m.SetModel(tm)
		ck := float64(m.Checkpoint())
		rs, err := m.FailAndRecover(1)
		if err != nil {
			panic(err)
		}
		return ck, float64(rs)
	}
	pesList := []int{256, 512, 1024, 2048, 4096}
	type point struct{ bc, br, sc, sr float64 }
	pts, err := sweep(len(pesList), func(i int) (point, error) {
		var p point
		p.bc, p.br = measure(pesList[i], 20) // "2.8M-atom" stand-in: 216k atoms
		p.sc, p.sr = measure(pesList[i], 16) // "1.6M-atom" stand-in: 110k atoms
		return p, nil
	})
	if err != nil {
		return err
	}
	for i, pes := range pesList {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\t%.4f\n", pes, pts[i].bc, pts[i].br, pts[i].sc, pts[i].sr)
	}
	return tw.Flush()
}

// ---- Fig 11 ----

// Fig11NAMDScaling reproduces Fig 11: strong scaling of the molecular
// dynamics engine on the Titan XK7 and Jaguar XT5 machine models (the
// 100M-atom benchmark scaled down ~7000×).
func Fig11NAMDScaling(w io.Writer) error {
	run := func(cfgMachine machine.Config) float64 {
		rt := newRuntime(cfgMachine)
		rt.SetBalancer(lb.Hybrid{})
		res, err := leanmd.Run(rt, leanmd.Config{
			CellsX: 8, CellsY: 8, CellsZ: 8, AtomsPerCell: 27,
			Gaussian: 3, Steps: 6, LBPeriod: 3, Seed: 7, MigratePeriod: 100,
		})
		if err != nil {
			panic(err)
		}
		return leanmdSteady(res, 3)
	}
	pesList := []int{32, 64, 128, 256, 512}
	type point struct{ t, j float64 }
	pts, err := sweep(len(pesList), func(i int) (point, error) {
		return point{t: run(machine.Titan(pesList[i])), j: run(machine.Jaguar(pesList[i]))}, nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tTitan_ms_per_step\tJaguar_ms_per_step")
	for i, pes := range pesList {
		fmt.Fprintf(tw, "%d\t%.3f\t%.3f\n", pes, pts[i].t*1e3, pts[i].j*1e3)
	}
	return tw.Flush()
}

// ---- Fig 12 ----

// Fig12BarnesHut reproduces Fig 12: time per step for the plain
// over-decomposed run ("500m"), with ORB load balancing ("500m_LB"), and
// with one piece per PE ("500m_NO"), on a Cray XE6 model.
func Fig12BarnesHut(w io.Writer) error {
	center := [3]float64{0.30, 0.34, 0.62}
	run := func(pes, depth int, balance bool) float64 {
		rt := newRuntime(machine.BlueWaters(pes))
		cfg := barnes.Config{
			Particles: 48000, Depth: depth, Steps: 3, Seed: 8, Center: center,
		}
		if balance {
			rt.SetBalancer(lb.ORB{})
			cfg.LBPeriod = 2
		}
		res, err := barnes.Run(rt, cfg)
		if err != nil {
			panic(err)
		}
		m := res.MeanPhases()
		return m.Total
	}
	// Depth for ~1 piece/PE vs 8 pieces/PE.
	noDepth := func(pes int) int {
		d := 0
		for (1 << (3 * d)) < pes {
			d++
		}
		if d < 1 {
			d = 1
		}
		return d
	}
	pesList := []int{8, 64, 512}
	type point struct{ no, plain, balanced float64 }
	pts, err := sweep(len(pesList), func(i int) (point, error) {
		pes := pesList[i]
		nd := noDepth(pes)
		return point{
			no:       run(pes, nd, false),
			plain:    run(pes, nd+1, false),
			balanced: run(pes, nd+1, true),
		}, nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\t500m_NO_s\t500m_s\t500m_LB_s")
	for i, pes := range pesList {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\n", pes, pts[i].no, pts[i].plain, pts[i].balanced)
	}
	return tw.Flush()
}

// ---- Fig 13 ----

// Fig13ChaNGaPhases reproduces Fig 13: the per-phase breakdown (DD, tree
// build, gravity, LB, total) of the cosmology-style run across PE counts.
func Fig13ChaNGaPhases(w io.Writer) error {
	pesList := []int{64, 128, 256, 512}
	pts, err := sweep(len(pesList), func(i int) (barnes.PhaseTimes, error) {
		rt := newRuntime(machine.BlueWaters(pesList[i]))
		rt.SetBalancer(lb.ORB{})
		res, err := barnes.Run(rt, barnes.Config{
			Particles: 50000, Depth: 3, Steps: 4, Seed: 9,
			Uniform: true, LBPeriod: 2,
		})
		if err != nil {
			return barnes.PhaseTimes{}, err
		}
		return res.MeanPhases(), nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tGravity_s\tDD_s\tTB_s\tLB_s\tTotal_s")
	for i, pes := range pesList {
		m := pts[i]
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\t%.4f\t%.4f\n",
			pes, m.Gravity, m.DD, m.TB, m.LB, m.Total)
	}
	return tw.Flush()
}

// ---- Fig 14 ----

// Fig14Lulesh reproduces Fig 14: LULESH weak scaling under native MPI,
// AMPI v=1, AMPI v=8 (cache blocking), and AMPI v=8 with load balancing,
// plus the non-cubic PE counts virtualization unlocks.
func Fig14Lulesh(w io.Writer) error {
	iters := 4
	// Hopper-like nodes with 8 PEs sharing 12 MB of cache: the same
	// 1.5 MB per-PE share as the real 24-core/36 MB Hopper node, but PE
	// counts that divide into cubic rank grids.
	hopper8 := func(pes int) machine.Config {
		c := machine.Hopper(pes)
		c.NumNodes = (pes + 7) / 8
		c.PEsPerNode = 8
		c.CachePerNodeBytes = 12 << 20
		c.TorusDims = nil
		return c
	}
	run := func(pes, rankSide, elemSide int, native bool, lbPeriod int) float64 {
		rt := newRuntime(hopper8(pes))
		res, err := lulesh.Run(rt, lulesh.Config{
			RankSide: rankSide, ElemSide: elemSide, Iters: iters,
			Native: native, LBPeriod: lbPeriod, Seed: 10,
			Regions: 4, RegionSpread: 0.3,
		})
		if err != nil {
			panic(err)
		}
		return res.Elapsed
	}
	cubic := []int{2, 3, 4} // cubic PE counts: 8, 27, 64
	type point struct{ mpi, v1, v8, v8lb float64 }
	cubicPts, err := sweep(len(cubic), func(i int) (point, error) {
		c := cubic[i]
		pes := c * c * c
		return point{
			mpi:  run(pes, c, 24, true, 0),
			v1:   run(pes, c, 24, false, 0),
			v8:   run(pes, 2*c, 12, false, 0),
			v8lb: run(pes, 2*c, 12, false, 2),
		}, nil
	})
	if err != nil {
		return err
	}
	// Non-cubic PE counts (the paper's 3000/6000): cubic virtual ranks
	// virtualized over awkward PE counts; MPI has no entry — it cannot
	// run there at all.
	nonCubic := []int{12, 48}
	nonCubicPts, err := sweep(len(nonCubic), func(i int) (float64, error) {
		return run(nonCubic[i], 6, 12, false, 0), nil // 216 ranks
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tMPI_s\tAMPI_v1_s\tAMPI_v8_s\tAMPI_v8_LB_s")
	for i, c := range cubic {
		p := cubicPts[i]
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\t%.4f\n", c*c*c, p.mpi, p.v1, p.v8, p.v8lb)
	}
	for i, pes := range nonCubic {
		fmt.Fprintf(tw, "%d\t-\t-\t%.4f\t-\n", pes, nonCubicPts[i])
	}
	return tw.Flush()
}

// ---- Fig 15 ----

// Fig15aPholdLPs reproduces Fig 15a: PHOLD event rate as LPs per PE grows
// (32 initial events per LP).
func Fig15aPholdLPs(w io.Writer) error {
	type cfg struct{ pes, lpsPerPE int }
	var cfgs []cfg
	for _, pes := range []int{16, 32, 64} {
		for _, lpsPerPE := range []int{16, 64, 256} {
			cfgs = append(cfgs, cfg{pes, lpsPerPE})
		}
	}
	rates, err := sweep(len(cfgs), func(i int) (float64, error) {
		rt := newRuntime(machine.Stampede(cfgs[i].pes))
		lps := cfgs[i].pes * cfgs[i].lpsPerPE
		res, err := pdes.Run(rt, pdes.Config{
			LPs: lps, EventsPerLP: 8, TargetEvents: lps * 16, Seed: 11,
		})
		if err != nil {
			return 0, err
		}
		return res.EventRate, nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tLPs_per_PE\tevents_per_sec")
	for i, c := range cfgs {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\n", c.pes, c.lpsPerPE, rates[i])
	}
	return tw.Flush()
}

// Fig15bPholdTram reproduces Fig 15b: event rates with and without TRAM at
// low and high event densities (the paper's 64 vs 1024 events/LP scaled).
func Fig15bPholdTram(w io.Writer) error {
	type cfg struct{ pes, epl int }
	var cfgs []cfg
	for _, pes := range []int{16, 32, 64} {
		for _, epl := range []int{2, 24} {
			cfgs = append(cfgs, cfg{pes, epl})
		}
	}
	type point struct{ direct, tram float64 }
	pts, err := sweep(len(cfgs), func(i int) (point, error) {
		pes, epl := cfgs[i].pes, cfgs[i].epl
		lps := pes * 64
		rate := func(useTram bool) float64 {
			rt := newRuntime(machine.Stampede(pes))
			res, err := pdes.Run(rt, pdes.Config{
				LPs: lps, EventsPerLP: epl, TargetEvents: lps * epl * 2,
				UseTram: useTram, Seed: 12,
			})
			if err != nil {
				panic(err)
			}
			return res.EventRate
		}
		return point{direct: rate(false), tram: rate(true)}, nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tevents_per_LP\tdirect_ev_per_s\ttram_ev_per_s")
	for i, c := range cfgs {
		fmt.Fprintf(tw, "%d\t%d\t%.0f\t%.0f\n", c.pes, c.epl, pts[i].direct, pts[i].tram)
	}
	return tw.Flush()
}

// ---- Fig 17 ----

// Fig17CloudLeanMD reproduces Fig 17: LeanMD time per step in a cloud
// where one node runs at 0.7× — without LB, with heterogeneity-aware LB,
// and on the homogeneous cluster for reference.
func Fig17CloudLeanMD(w io.Writer) error {
	run := func(pes int, hetero, balance bool) float64 {
		rt := newRuntime(machine.Cloud(pes))
		if hetero {
			cloud.SlowNode(rt, 0, 0.7)
		}
		cfg := leanmd.Config{
			CellsX: 6, CellsY: 6, CellsZ: 6, AtomsPerCell: 27,
			Steps: 21, Seed: 13, MigratePeriod: 100,
			PerInteractionWork: 900e-9,
		}
		if balance {
			rt.SetBalancer(lb.Refine{Tolerance: 1.05})
			cfg.LBPeriod = 10
		}
		res, err := leanmd.Run(rt, cfg)
		if err != nil {
			panic(err)
		}
		return leanmdSteady(res, 8)
	}
	pesList := []int{32, 64, 128, 256}
	type point struct{ heteroNo, heteroLB, homoLB float64 }
	pts, err := sweep(len(pesList), func(i int) (point, error) {
		pes := pesList[i]
		return point{
			heteroNo: run(pes, true, false),
			heteroLB: run(pes, true, true),
			homoLB:   run(pes, false, true),
		}, nil
	})
	if err != nil {
		return err
	}
	tw := table(w)
	fmt.Fprintln(tw, "PEs\tHeteroNoLB_s\tHeteroLB_s\tHomoLB_s")
	for i, pes := range pesList {
		fmt.Fprintf(tw, "%d\t%.4f\t%.4f\t%.4f\n", pes,
			pts[i].heteroNo, pts[i].heteroLB, pts[i].homoLB)
	}
	return tw.Flush()
}
