package figures

import (
	"bytes"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"4", "5", "6", "7", "8L", "8R", "9", "10", "11", "12", "13", "14", "15a", "15b", "16", "17"}
	figs := All()
	if len(figs) != len(want) {
		t.Fatalf("%d figures registered, want %d", len(figs), len(want))
	}
	for i, id := range want {
		if figs[i].ID != id {
			t.Fatalf("figure %d is %q, want %q", i, figs[i].ID, id)
		}
		if figs[i].Title == "" || figs[i].Run == nil {
			t.Fatalf("figure %s incomplete", id)
		}
	}
	if _, ok := ByID("8L"); !ok {
		t.Fatal("ByID lookup failed")
	}
	if _, ok := ByID("99"); ok {
		t.Fatal("ByID accepted a bogus id")
	}
}

// The fastest figures run end-to-end as a smoke test; the full set is
// exercised by the benchmarks and cmd/figures.
func TestFastFiguresProduceTables(t *testing.T) {
	for _, id := range []string{"4", "6", "8R"} {
		f, _ := ByID(id)
		var buf bytes.Buffer
		if err := f.Run(&buf); err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(strings.Split(buf.String(), "\n")) < 4 {
			t.Fatalf("figure %s produced a trivial table:\n%s", id, buf.String())
		}
	}
}

// A figure's table is a pure function of virtual time, so it must be
// byte-identical whichever engine computed it. Fig 8R is the fastest
// figure that still exercises arrays, checkpointing, and reductions.
func TestFigureCrossBackend(t *testing.T) {
	f, _ := ByID("8R")
	render := func(be string) string {
		SetBackend(be)
		defer SetBackend("")
		var buf bytes.Buffer
		if err := f.Run(&buf); err != nil {
			t.Fatalf("%s backend: %v", be, err)
		}
		return buf.String()
	}
	seq := render("sequential")
	par := render("parallel")
	if seq != par {
		t.Fatalf("figure %s output diverged across backends:\nsequential:\n%s\nparallel:\n%s", f.ID, seq, par)
	}
	if len(strings.Split(seq, "\n")) < 4 {
		t.Fatalf("figure %s produced a trivial table:\n%s", f.ID, seq)
	}
}

func TestFig04Ordering(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig04Thermal(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	temps := map[string]float64{}
	times := map[string]float64{}
	energy := map[string]float64{}
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		fields := strings.Fields(ln)
		if len(fields) != 4 {
			continue
		}
		tm, err1 := strconv.ParseFloat(fields[1], 64)
		temp, err2 := strconv.ParseFloat(fields[2], 64)
		kj, err3 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		times[fields[0]] = tm
		temps[fields[0]] = temp
		energy[fields[0]] = kj
	}
	// The paper's Fig 4 claims: Base runs hot; every DVFS policy holds
	// the 50°C threshold; LB reduces the DVFS timing penalty.
	if temps["Base"] <= 55 {
		t.Fatalf("Base should exceed the threshold:\n%s", out)
	}
	for _, cfg := range []string{"Naive_DVFS", "LB_10s", "LB_5s", "MetaTemp"} {
		if temps[cfg] > 55 {
			t.Fatalf("%s exceeded the threshold (%v°C):\n%s", cfg, temps[cfg], out)
		}
	}
	if times["Base"] >= times["Naive_DVFS"] {
		t.Fatalf("Base should be fastest:\n%s", out)
	}
	if times["LB_10s"] >= times["Naive_DVFS"] {
		t.Fatalf("LB should beat naive DVFS:\n%s", out)
	}
	// §III-C's point: the controlled policies save machine energy.
	if energy["LB_10s"] >= energy["Base"] {
		t.Fatalf("DVFS+LB should save energy vs Base:\n%s", out)
	}
}
