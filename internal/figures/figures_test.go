package figures

import (
	"bytes"
	"os"
	"strconv"
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{"4", "5", "6", "7", "8L", "8R", "9", "10", "11", "12", "13", "14", "15a", "15b", "16", "17", "S"}
	figs := All()
	if len(figs) != len(want) {
		t.Fatalf("%d figures registered, want %d", len(figs), len(want))
	}
	for i, id := range want {
		if figs[i].ID != id {
			t.Fatalf("figure %d is %q, want %q", i, figs[i].ID, id)
		}
		if figs[i].Title == "" || figs[i].Run == nil {
			t.Fatalf("figure %s incomplete", id)
		}
	}
	if _, ok := ByID("8L"); !ok {
		t.Fatal("ByID lookup failed")
	}
	if _, ok := ByID("99"); ok {
		t.Fatal("ByID accepted a bogus id")
	}
}

// The fastest figures run end-to-end as a smoke test; the full set is
// exercised by the benchmarks and cmd/figures.
func TestFastFiguresProduceTables(t *testing.T) {
	for _, id := range []string{"4", "6", "8R"} {
		f, _ := ByID(id)
		var buf bytes.Buffer
		if err := f.Run(&buf); err != nil {
			t.Fatalf("figure %s: %v", id, err)
		}
		if len(strings.Split(buf.String(), "\n")) < 4 {
			t.Fatalf("figure %s produced a trivial table:\n%s", id, buf.String())
		}
	}
}

// stripHostMetrics drops `#~` comment lines (wall-clock and heap
// measurements of the generating host) so comparisons see only the
// deterministic virtual-time table.
func stripHostMetrics(s string) string {
	lines := strings.Split(s, "\n")
	kept := lines[:0]
	for _, ln := range lines {
		if strings.HasPrefix(ln, "#~") {
			continue
		}
		kept = append(kept, ln)
	}
	return strings.Join(kept, "\n")
}

// A figure's table is a pure function of virtual time, so it must be
// byte-identical whichever engine computed it. Three tiers keep the gate
// proportionate: -short runs Fig 8R only (the fastest figure that still
// exercises arrays, checkpointing, and reductions); the default adds the
// other fast figures, staying inside the tier-1 race-detector budget; and
// CHARMGO_FIGS_FULL=1 sweeps the entire registry (several minutes — run
// without -race, as scripts/check.sh does in a dedicated step).
//
// SeqOnly figures (7, 14) drive AMPI rank goroutines that park inside
// handlers, which the parallel engine's phase/commit split cannot host —
// they are skipped with that reason, matching cmd/figures' behaviour
// under -backend parallel. Figure S is skipped even in the full sweep:
// at 8192 virtual PEs the parallel engine's run takes tens of minutes on
// small hosts, and S's determinism is pinned the same way as everyone
// else's where it matters — its table is byte-compared across sweep
// worker counts.
func TestFigureCrossBackend(t *testing.T) {
	ids := []string{"8R"}
	if os.Getenv("CHARMGO_FIGS_FULL") != "" {
		ids = nil
		for _, f := range All() {
			if f.ID != "S" {
				ids = append(ids, f.ID)
			}
		}
	} else if !testing.Short() {
		ids = []string{"4", "6", "8R"}
	}
	for _, id := range ids {
		f, ok := ByID(id)
		if !ok {
			t.Fatalf("figure %s missing from registry", id)
		}
		t.Run(id, func(t *testing.T) {
			if f.SeqOnly {
				t.Skipf("figure %s is SeqOnly: AMPI rank goroutines park inside handlers, so it only runs on the sequential engine", f.ID)
			}
			render := func(be string) string {
				SetBackend(be)
				defer SetBackend("")
				var buf bytes.Buffer
				if err := f.Run(&buf); err != nil {
					t.Fatalf("%s backend: %v", be, err)
				}
				return buf.String()
			}
			seq := stripHostMetrics(render("sequential"))
			par := stripHostMetrics(render("parallel"))
			if seq != par {
				t.Fatalf("figure %s output diverged across backends:\nsequential:\n%s\nparallel:\n%s", f.ID, seq, par)
			}
			if len(strings.Split(seq, "\n")) < 4 {
				t.Fatalf("figure %s produced a trivial table:\n%s", f.ID, seq)
			}
		})
	}
}

func TestFig04Ordering(t *testing.T) {
	var buf bytes.Buffer
	if err := Fig04Thermal(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	temps := map[string]float64{}
	times := map[string]float64{}
	energy := map[string]float64{}
	for _, ln := range strings.Split(strings.TrimSpace(out), "\n")[1:] {
		fields := strings.Fields(ln)
		if len(fields) != 4 {
			continue
		}
		tm, err1 := strconv.ParseFloat(fields[1], 64)
		temp, err2 := strconv.ParseFloat(fields[2], 64)
		kj, err3 := strconv.ParseFloat(fields[3], 64)
		if err1 != nil || err2 != nil || err3 != nil {
			continue
		}
		times[fields[0]] = tm
		temps[fields[0]] = temp
		energy[fields[0]] = kj
	}
	// The paper's Fig 4 claims: Base runs hot; every DVFS policy holds
	// the 50°C threshold; LB reduces the DVFS timing penalty.
	if temps["Base"] <= 55 {
		t.Fatalf("Base should exceed the threshold:\n%s", out)
	}
	for _, cfg := range []string{"Naive_DVFS", "LB_10s", "LB_5s", "MetaTemp"} {
		if temps[cfg] > 55 {
			t.Fatalf("%s exceeded the threshold (%v°C):\n%s", cfg, temps[cfg], out)
		}
	}
	if times["Base"] >= times["Naive_DVFS"] {
		t.Fatalf("Base should be fastest:\n%s", out)
	}
	if times["LB_10s"] >= times["Naive_DVFS"] {
		t.Fatalf("LB should beat naive DVFS:\n%s", out)
	}
	// §III-C's point: the controlled policies save machine energy.
	if energy["LB_10s"] >= energy["Base"] {
		t.Fatalf("DVFS+LB should save energy vs Base:\n%s", out)
	}
}
