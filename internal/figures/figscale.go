package figures

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"charmgo/internal/machine"

	"charmgo/internal/apps/stencil"
)

// FigScale exercises the virtual machine at paper scale: Stencil2D on an
// 8192-PE BG/Q model over-decomposed into 512×512 = 262,144 chares
// (32 per PE). The table — virtual times and residuals — is deterministic
// and byte-identical across backends and worker counts like every other
// figure. Host-dependent throughput and heap numbers are emitted on "#~"
// lines, which the identity checks strip.
func FigScale(w io.Writer) error {
	const (
		pes    = 8192
		chares = 512 // 512×512 blocks, 4×4 grid points each
		gridN  = 2048
		iters  = 2
	)
	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now() //charmvet:wallclock host-metric `#~` line, stripped by identity checks

	rt := newRuntime(machine.Vesta(pes))
	res, err := stencil.Run(rt, stencil.Config{
		GridN: gridN, Chares: chares, Iters: iters,
	})
	if err != nil {
		return err
	}

	wall := time.Since(start).Seconds() //charmvet:wallclock host-metric `#~` line, stripped by identity checks
	events := rt.Engine().Executed()
	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	tw := table(w)
	fmt.Fprintln(tw, "PEs\tchares\tgrid\titer\tvirtual_t_s\tresidual")
	for i, t := range res.IterDone {
		fmt.Fprintf(tw, "%d\t%d\t%d\t%d\t%.6f\t%.6g\n",
			pes, chares*chares, gridN, i, float64(t), res.Residuals[i])
	}
	if err := tw.Flush(); err != nil {
		return err
	}
	// Host metrics: live heap still holds the full element table and
	// location slabs, so post-GC HeapAlloc is the footprint of the 262k-chare
	// machine state itself.
	fmt.Fprintf(w, "#~ %d events in %.1fs wall: %.0f events/sec\n",
		events, wall, float64(events)/wall)
	fmt.Fprintf(w, "#~ live heap after run: %.1f MB (%.0f B/chare); total allocated: %.1f MB\n",
		float64(after.HeapAlloc)/(1<<20),
		float64(after.HeapAlloc-before.HeapAlloc)/float64(chares*chares),
		float64(after.TotalAlloc-before.TotalAlloc)/(1<<20))
	return nil
}
