package analysis

import (
	"go/ast"
	"go/types"
)

// PupCheck verifies PUP completeness: for every type with a
// `Pup(*pup.Pup)` method, each field of the receiver's struct must be
// referenced somewhere in the method body (directly or through a helper in
// the same body) or carry a //pup:skip waiver on its declaration. A field
// missing from Pup is silently zeroed on migration or checkpoint restore —
// the classic silent-state-loss bug of migratable objects, invisible until
// a load balancer happens to move the chare.
var PupCheck = &Analyzer{
	Name: "pupcheck",
	Doc:  "flags struct fields not covered by the type's Pup method",
	Run:  runPupCheck,
}

func runPupCheck(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			pass.checkPupMethod(fn)
		}
	}
}

func (p *Pass) checkPupMethod(fn *ast.FuncDecl) {
	if fn.Name.Name != "Pup" || fn.Recv == nil || len(fn.Recv.List) != 1 {
		return
	}
	if fn.Type.Params == nil || len(fn.Type.Params.List) != 1 || !isPupPtr(p, fn.Type.Params.List[0].Type) {
		return
	}
	st := receiverStruct(p, fn.Recv.List[0].Type)
	if st == nil {
		return
	}

	// Mark every field of the receiver struct that the body selects,
	// whatever the base expression: the common `c.Field`, pointer forms,
	// and selections made on a local alias all resolve to the same field
	// object through the type checker.
	covered := map[*types.Var]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		if f, ok := s.Obj().(*types.Var); ok {
			covered[f] = true
		}
		return true
	})

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" || covered[f] {
			continue
		}
		if p.Waived(WaiverPupSkip, f.Pos()) {
			continue
		}
		p.Reportf(fn.Name.Pos(), "field %s is not referenced in Pup; migration would silently drop it — pup it or annotate //pup:skip on the field",
			f.Name())
	}
}

// isPupPtr reports whether t denotes *pup.Pup (a pointer to a type named
// Pup declared in a package named pup — the real framework in the runtime,
// a stub in fixtures).
func isPupPtr(p *Pass, t ast.Expr) bool {
	ptr, ok := p.TypeOf(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pup" && obj.Pkg() != nil && obj.Pkg().Name() == "pup"
}

// receiverStruct resolves the receiver type expression to its struct
// definition, or nil when the receiver is not a (pointer to a) struct.
func receiverStruct(p *Pass, t ast.Expr) *types.Struct {
	typ := p.TypeOf(t)
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	if typ == nil {
		return nil
	}
	st, _ := typ.Underlying().(*types.Struct)
	return st
}
