package analysis

import (
	"go/ast"
	"go/types"
)

// PupCheck verifies PUP completeness: for every type with a
// `Pup(*pup.Pup)` method, each field of the receiver's struct must be
// referenced somewhere in the method body (directly or through a helper in
// the same body) or carry a //pup:skip waiver on its declaration. A field
// missing from Pup is silently zeroed on migration or checkpoint restore —
// the classic silent-state-loss bug of migratable objects, invisible until
// a load balancer happens to move the chare.
//
// For fields that are themselves structs declared in the same package —
// embedded state structs and named sub-state fields — the check descends
// one level: a *terminal* use of the field (`c.Sub.Pup(p)`, or `&c.Sub`
// handed to a helper) delegates coverage wholesale, but a field that is
// only pup'd field-by-field (`p.Int(&c.Sub.N)`, or promoted `p.Int(&c.N)`
// through an embedding) must cover every sub-field. Before this descent, a
// chare embedding its state struct got no field coverage at all: one
// promoted reference marked the leaf covered and the embedding was never
// expanded, so a forgotten sibling sub-field was invisible.
var PupCheck = &Analyzer{
	Name: "pupcheck",
	Doc:  "flags struct fields not covered by the type's Pup method",
	Run:  runPupCheck,
}

func runPupCheck(pass *Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			pass.checkPupMethod(fn)
		}
	}
}

func (p *Pass) checkPupMethod(fn *ast.FuncDecl) {
	if fn.Name.Name != "Pup" || fn.Recv == nil || len(fn.Recv.List) != 1 {
		return
	}
	if fn.Type.Params == nil || len(fn.Type.Params.List) != 1 || !isPupPtr(p, fn.Type.Params.List[0].Type) {
		return
	}
	st := receiverStruct(p, fn.Recv.List[0].Type)
	if st == nil {
		return
	}

	// Parent links, for classifying how a field selection is used.
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	// Mark every field the body selects, whatever the base expression: the
	// common `c.Field`, pointer forms, and selections made on a local alias
	// all resolve to the same field object through the type checker.
	// covered holds leaf field objects; topCovered attributes promoted and
	// chained selections back to the receiver's own field; delegated marks
	// receiver fields used terminally (whole-value or method call), whose
	// coverage is someone else's responsibility.
	covered := map[*types.Var]bool{}
	topCovered := map[*types.Var]bool{}
	delegated := map[*types.Var]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		s := p.Info.Selections[sel]
		if s == nil || s.Kind() != types.FieldVal {
			return true
		}
		f, ok := s.Obj().(*types.Var)
		if !ok {
			return true
		}
		covered[f] = true
		if recvStructOf(s.Recv()) == st && len(s.Index()) >= 1 {
			top := st.Field(s.Index()[0])
			topCovered[top] = true
			if len(s.Index()) == 1 && f == top && terminalUse(p, parents, sel) {
				delegated[top] = true
			}
		}
		return true
	})

	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Name() == "_" {
			continue
		}
		sub := localSubStruct(p, f)
		referenced := covered[f] || topCovered[f]
		if sub == nil || delegated[f] {
			if referenced || p.Waived(WaiverPupSkip, f.Pos()) {
				continue
			}
			p.Reportf(fn.Name.Pos(), "field %s is not referenced in Pup; migration would silently drop it — pup it or annotate //pup:skip on the field",
				f.Name())
			continue
		}
		if !referenced {
			if !p.Waived(WaiverPupSkip, f.Pos()) {
				p.Reportf(fn.Name.Pos(), "field %s is not referenced in Pup; migration would silently drop it — pup it or annotate //pup:skip on the field",
					f.Name())
			}
			continue
		}
		// The struct-typed field is pup'd field-by-field rather than
		// delegated: every one of its fields must be covered too.
		for j := 0; j < sub.NumFields(); j++ {
			sf := sub.Field(j)
			if sf.Name() == "_" || covered[sf] {
				continue
			}
			if p.Waived(WaiverPupSkip, sf.Pos()) {
				continue
			}
			p.Reportf(fn.Name.Pos(), "field %s.%s is not referenced in Pup; migration would silently drop it — pup it, delegate %s wholesale, or annotate //pup:skip on the field",
				f.Name(), sf.Name(), f.Name())
		}
	}
}

// terminalUse reports whether sel (a direct receiver-field selection like
// c.Sub) is used as a whole value: taken by address, assigned, passed to a
// call, or the receiver of a method call (`c.Sub.Pup(p)`). A further field
// selection on it (`c.Sub.N`) is the one non-terminal shape — that is
// field-by-field pupping, which the caller checks for completeness.
func terminalUse(p *Pass, parents map[ast.Node]ast.Node, sel *ast.SelectorExpr) bool {
	parent := parents[sel]
	if outer, ok := parent.(*ast.SelectorExpr); ok && outer.X == sel {
		if s := p.Info.Selections[outer]; s != nil && s.Kind() == types.FieldVal {
			return false
		}
		return true // method call or expansion the checker cannot follow
	}
	return true
}

// localSubStruct returns the struct definition of f's (possibly pointer)
// named struct type when that type is declared in the package under
// analysis, or nil. The one-level descent stops at package boundaries:
// a field of an imported type is the importer's opaque value.
func localSubStruct(p *Pass, f *types.Var) *types.Struct {
	t := f.Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() != p.Pkg {
		return nil
	}
	st, _ := named.Underlying().(*types.Struct)
	return st
}

// recvStructOf resolves a selection's receiver type to its struct
// definition (through a pointer when present).
func recvStructOf(t types.Type) *types.Struct {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	if t == nil {
		return nil
	}
	st, _ := t.Underlying().(*types.Struct)
	return st
}

// isPupPtr reports whether t denotes *pup.Pup (a pointer to a type named
// Pup declared in a package named pup — the real framework in the runtime,
// a stub in fixtures).
func isPupPtr(p *Pass, t ast.Expr) bool {
	ptr, ok := p.TypeOf(t).(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pup" && obj.Pkg() != nil && obj.Pkg().Name() == "pup"
}

// receiverStruct resolves the receiver type expression to its struct
// definition, or nil when the receiver is not a (pointer to a) struct.
func receiverStruct(p *Pass, t ast.Expr) *types.Struct {
	typ := p.TypeOf(t)
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	if typ == nil {
		return nil
	}
	st, _ := typ.Underlying().(*types.Struct)
	return st
}
