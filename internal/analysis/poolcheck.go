package analysis

import (
	"go/ast"
	"go/types"
)

// PoolCheck flags uses of a pooled object after it has been released back
// to its pool. The runtime leans hard on recycling — messages, Pup cursors,
// pack buffers, delivery contexts — and the pools zero and reuse a released
// object on the next acquire, so a read after release observes another
// event's state and a write corrupts it. The bug is silent: nothing
// crashes, the simulation just stops being deterministic.
//
// A release is a plain call statement whose callee name starts with put,
// release, free, or recycle (any case) — covering sync.Pool.Put and the
// repo's putMsg/PutBuffer/releaseCtx conventions — with an identifier as
// its first argument. Any later use of that identifier in the statements
// that follow in the same block is flagged, until the variable is
// reassigned. Deferred releases are exempt (they run at function exit), and
// a deliberate post-release use can carry a //charmvet:pooled waiver.
var PoolCheck = &Analyzer{
	Name: "poolcheck",
	Doc:  "flags uses of a pooled object after it was released to its pool",
	Run:  runPoolCheck,
}

var releasePrefixes = []string{"put", "release", "free", "recycle"}

// releasedArg returns the identifier released by stmt, or nil when stmt is
// not a release call. Only direct `put(x)` / `pool.Put(x)` statement forms
// count: a release nested in another expression keeps its result live.
func releasedArg(stmt ast.Stmt) *ast.Ident {
	es, ok := stmt.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil
	}
	var name string
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		name = fn.Name
	case *ast.SelectorExpr:
		name = fn.Sel.Name
	default:
		return nil
	}
	if !hasReleasePrefix(name) {
		return nil
	}
	arg, ok := call.Args[0].(*ast.Ident)
	if !ok || arg.Name == "_" {
		return nil
	}
	return arg
}

func hasReleasePrefix(name string) bool {
	for _, pre := range releasePrefixes {
		if len(name) >= len(pre) && equalFold(name[:len(pre)], pre) {
			return true
		}
	}
	return false
}

// equalFold compares ASCII strings case-insensitively (avoids importing
// strings for two call sites).
func equalFold(a, b string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := 0; i < len(a); i++ {
		ca, cb := a[i], b[i]
		if 'A' <= ca && ca <= 'Z' {
			ca += 'a' - 'A'
		}
		if 'A' <= cb && cb <= 'Z' {
			cb += 'a' - 'A'
		}
		if ca != cb {
			return false
		}
	}
	return true
}

func runPoolCheck(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			block, ok := n.(*ast.BlockStmt)
			if !ok {
				return true
			}
			checkBlock(pass, block)
			return true
		})
	}
}

// checkBlock scans one statement list: after a release of x, later
// statements may not use x until it is reassigned.
func checkBlock(pass *Pass, block *ast.BlockStmt) {
	for i, stmt := range block.List {
		arg := releasedArg(stmt)
		if arg == nil {
			continue
		}
		obj := pass.Info.ObjectOf(arg)
		if obj == nil {
			continue
		}
		// Pointer-shaped objects only: releasing an int or a plain struct
		// copy cannot alias pool state.
		if !poolable(obj.Type()) {
			continue
		}
		for _, later := range block.List[i+1:] {
			if reassigns(later, obj, pass.Info) {
				break
			}
			if use := findUse(later, obj, pass.Info); use != nil {
				if pass.Waived(WaiverPooled, use.Pos()) {
					continue
				}
				pass.Reportf(use.Pos(), "%s is used after being released to its pool at line %d; the pool may already have recycled it",
					arg.Name, pass.Fset.Position(stmt.Pos()).Line)
			}
		}
	}
}

// poolable reports whether a released value of type t can alias recycled
// pool storage: pointers, slices, maps, and interfaces qualify.
func poolable(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map, *types.Interface, *types.Chan:
		return true
	}
	return false
}

// reassigns reports whether stmt (at its top level) rebinds obj, which ends
// the released window.
func reassigns(stmt ast.Stmt, obj types.Object, info *types.Info) bool {
	as, ok := stmt.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := lhs.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			return true
		}
	}
	return false
}

// findUse returns the first reference to obj inside stmt, skipping
// assignment left-hand sides (a plain rebind is handled by reassigns; a
// nested one still counts as suspicious only on the read side).
func findUse(stmt ast.Stmt, obj types.Object, info *types.Info) *ast.Ident {
	var found *ast.Ident
	ast.Inspect(stmt, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && info.Uses[id] == obj {
			found = id
			return false
		}
		return true
	})
	return found
}
