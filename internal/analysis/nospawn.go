package analysis

import (
	"go/ast"
	"strings"
)

// NoSpawn flags `go` statements and `select` statements inside DES-driven
// packages. The engine is single-threaded by design: every state change
// happens inside an event executed at a virtual timestamp. A goroutine (or
// a channel select racing several goroutines) reintroduces the host
// scheduler as a hidden source of ordering, which breaks virtual-time
// determinism and the load database's accounting. Subsystems that bridge
// real I/O into the simulation (CCS's network server, AMPI's rank threads)
// live outside these packages; a deliberate exception inside them needs a
// //charmvet:spawn waiver.
//
// The parallel engine is the one sanctioned exception to the
// single-threaded rule: its phase workers execute events the conservative
// window has proven independent, and its commits stay in sequential order
// (see internal/parsim). Its spawns carry the //charmvet:parsim waiver,
// which is honored only inside parsim packages — anywhere else it is
// ignored, so the engine's license cannot be borrowed by runtime or app
// code.
var NoSpawn = &Analyzer{
	Name:   "nospawn",
	Doc:    "flags goroutine spawns and selects in DES-driven packages",
	Scoped: true,
	Run:    runNoSpawn,
}

func runNoSpawn(pass *Pass) {
	parsimPkg := pass.Path == "charmgo/internal/parsim" ||
		strings.HasPrefix(pass.Path, "charmgo/internal/parsim/") ||
		strings.HasSuffix(pass.Path, "/parsim") // fixture package for the waiver tests
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if pass.Waived(WaiverSpawn, n.Pos()) {
					break
				}
				if pass.Waived(WaiverParsim, n.Pos()) {
					if parsimPkg {
						break
					}
					pass.Reportf(n.Pos(), "charmvet:parsim waiver is only honored inside the parsim engine; go statement spawns a goroutine inside a DES-driven package")
					break
				}
				pass.Reportf(n.Pos(), "go statement spawns a goroutine inside a DES-driven package; schedule an event instead or annotate //charmvet:spawn")
			case *ast.SelectStmt:
				if !pass.Waived(WaiverSpawn, n.Pos()) {
					pass.Reportf(n.Pos(), "select depends on goroutine scheduling inside a DES-driven package; use the event engine or annotate //charmvet:spawn")
				}
			}
			return true
		})
	}
}
