package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SpecState checks chare state against the optimistic backend's rollback
// contract (see internal/charm/speculation.go): before a speculated
// handler mutates a chare, the runtime snapshots it by PUP-packing the
// object, and a rollback unpacks that image into a *factory-fresh*
// element. Fields waived with //pup:skip are therefore not restored — they
// come back holding whatever the factory gives them, exactly as after a
// migration. A speculative-phase write to such a field is invisible to the
// rollback machinery: if the field carries state across handler
// executions (a counter of outstanding replies, a partially filled
// scratch buffer), a rollback resets it while the pup'd state rewinds,
// and the re-executed handlers observe a chare that never existed — the
// bit-identical commit order the backend guarantees is gone.
//
// The rule: code reachable in phase context from an entry method or PE
// handler must not write a //pup:skip field of a type that has a Pup
// method. Two waiver placements exist:
//
//   - //charmvet:specstate on (or above) the write site — this one write
//     is rollback-safe (e.g. an idempotent reset a re-execution repeats).
//
//   - //charmvet:specstate at the field declaration — in the trailing
//     comment alongside //pup:skip, or on its own line above — the field
//     is exempt everywhere: a rebuild-on-demand cache whose factory reset
//     merely forces a recompute, an idempotent rebind every handler
//     repeats, or the chare belongs to an app pinned to the
//     sequential/conservative backends. The declaration placement keeps a
//     per-field decision in one documented spot instead of scattered over
//     every write.
//
// Known conservatisms: mutation through a call (`copy(c.buf, x)`, passing
// `&c.buf` to a helper) is not tracked, matching phasepure's Rule A
// (DESIGN.md §11); only the direct write shapes `c.f = v`, `c.f.g = v`,
// `c.f[i] = v`, and `c.f++` are.
var SpecState = &Analyzer{
	Name: "specstate",
	Doc:  "flags speculative-phase writes to //pup:skip chare fields, which a Time Warp rollback resets instead of restoring",
	Run:  runSpecState,
}

func runSpecState(pass *Pass) {
	skip := pass.Graph.specSkipFields()
	if len(skip) == 0 {
		return
	}
	reach := pass.Graph.PhaseReach()
	for _, n := range pass.pkgNodes() {
		if _, ok := reach[n]; !ok {
			continue
		}
		chain := pass.Graph.Chain(reach, n)
		inspectShallow(n.body(), func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				for _, lhs := range x.Lhs {
					pass.flagSkipWrite(lhs, skip, chain)
				}
			case *ast.IncDecStmt:
				pass.flagSkipWrite(x.X, skip, chain)
			}
			return true
		})
	}
}

// flagSkipWrite reports lhs when its selection path crosses a //pup:skip
// field of a Pup-bearing type: the direct write `c.f = v` and writes into
// the field's interior (`c.f.g = v`, `c.f[i] = v`) both mutate state the
// rollback snapshot never captured.
func (p *Pass) flagSkipWrite(lhs ast.Expr, skip map[*types.Var]bool, chain []string) {
	for e := unparen(lhs); ; {
		switch b := e.(type) {
		case *ast.SelectorExpr:
			if s := p.Info.Selections[b]; s != nil && s.Kind() == types.FieldVal {
				if f, ok := s.Obj().(*types.Var); ok && skip[f] {
					if p.Waived(WaiverSpecState, lhs.Pos()) {
						return
					}
					p.ReportChainf(lhs.Pos(), chain, "speculative-phase write to non-pup'd field %s; a Time Warp rollback rebuilds the chare factory-fresh, so this write is reset rather than restored — pup the field, defer the write through ctx.Defer, or annotate //charmvet:specstate%s",
						f.Name(), chainSuffix(chain))
					return
				}
			}
			e = unparen(b.X)
		case *ast.IndexExpr:
			e = unparen(b.X)
		case *ast.StarExpr:
			e = unparen(b.X)
		default:
			return
		}
	}
}

// specSkipFields collects, module-wide, the //pup:skip fields of every
// type with a Pup method, minus fields exempted by //charmvet:specstate at
// their declaration. Built once per graph: writes and declarations can sit
// in different packages, so a per-pass waiver map would miss the
// declaration-side directives. Directive attachment is stricter than the
// generic waiver map's line/line+1 rule: a trailing //pup:skip must not
// bleed onto the *next* field of the struct (which may be fully pupped),
// so a directive on the line above a field counts only when that line is
// not itself a field of the same struct. The exemption is matched anywhere
// in a comment, so it can share the field's trailing comment with the
// //pup:skip directive (`f T //pup:skip //charmvet:specstate (why)`).
func (g *Graph) specSkipFields() map[*types.Var]bool {
	if g.skipFields != nil {
		return g.skipFields
	}
	g.skipFields = map[*types.Var]bool{}
	type dirSet struct{ skip, exempt map[fileLine]bool }
	dirsByPkg := map[*Package]dirSet{}
	collect := func(pkg *Package) dirSet {
		if d, ok := dirsByPkg[pkg]; ok {
			return d
		}
		d := dirSet{skip: map[fileLine]bool{}, exempt: map[fileLine]bool{}}
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
					pos := pkg.Fset.Position(c.Pos())
					fl := fileLine{pos.Filename, pos.Line}
					if text == WaiverPupSkip || strings.HasPrefix(text, WaiverPupSkip+" ") {
						d.skip[fl] = true
					}
					if strings.Contains(text, WaiverSpecState) {
						d.exempt[fl] = true
					}
				}
			}
		}
		dirsByPkg[pkg] = d
		return d
	}
	for _, n := range g.Nodes {
		if n.Fn == nil || !isPupMethod(n.Fn) {
			continue
		}
		st := recvStructOf(n.Fn.Type().(*types.Signature).Recv().Type())
		if st == nil {
			continue
		}
		d := collect(n.Pkg)
		fieldLines := map[fileLine]bool{}
		for i := 0; i < st.NumFields(); i++ {
			pos := n.Pkg.Fset.Position(st.Field(i).Pos())
			fieldLines[fileLine{pos.Filename, pos.Line}] = true
		}
		at := func(m map[fileLine]bool, fl fileLine) bool {
			if m[fl] {
				return true
			}
			above := fileLine{fl.file, fl.line - 1}
			return m[above] && !fieldLines[above]
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			pos := n.Pkg.Fset.Position(f.Pos())
			fl := fileLine{pos.Filename, pos.Line}
			if at(d.skip, fl) && !at(d.exempt, fl) {
				g.skipFields[f] = true
			}
		}
	}
	return g.skipFields
}
