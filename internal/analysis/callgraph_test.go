package analysis_test

import (
	"strings"
	"testing"

	"charmgo/internal/analysis"
)

// nodeByKeySuffix finds the unique graph node whose key ends in suffix.
func nodeByKeySuffix(t *testing.T, g *analysis.Graph, suffix string) *analysis.Node {
	t.Helper()
	var found *analysis.Node
	for _, n := range g.Nodes {
		if strings.HasSuffix(n.Key, suffix) {
			if found != nil {
				t.Fatalf("key suffix %q is ambiguous: %s and %s", suffix, found.Key, n.Key)
			}
			found = n
		}
	}
	if found == nil {
		t.Fatalf("no graph node with key suffix %q", suffix)
	}
	return found
}

func edgeTo(n *analysis.Node, callee *analysis.Node) (analysis.Edge, bool) {
	for _, e := range n.Edges {
		if e.Callee == callee {
			return e, true
		}
	}
	return analysis.Edge{}, false
}

// TestCallGraphRoots checks the shape- and site-based root marking over
// the fixture packages.
func TestCallGraphRoots(t *testing.T) {
	w, err := loadFixtures()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	g := w.graph

	for _, name := range []string{"dettaint.onTick", "dettaint.onMerge", "dettaint.onSpawn"} {
		if n := nodeByKeySuffix(t, g, name); n.Root != analysis.RootEntry {
			t.Errorf("%s: root = %q, want %q", name, n.Root, analysis.RootEntry)
		}
	}
	if n := nodeByKeySuffix(t, g, "(*charmgo/internal/analysis/fixtures/dettaint.snap).Pup"); n.Root != analysis.RootPup {
		t.Errorf("snap.Pup: root = %q, want %q", n.Root, analysis.RootPup)
	}
	if n := nodeByKeySuffix(t, g, "dettaint.orphan"); n.Root != "" {
		t.Errorf("orphan: root = %q, want none (never address-taken, never scheduled)", n.Root)
	}
	if n := nodeByKeySuffix(t, g, "dettaint.init"); n.Root != analysis.RootInit {
		t.Errorf("init: root = %q, want %q", n.Root, analysis.RootInit)
	}

	// The closure handed to ctx.Defer roots itself even though its
	// enclosing function is unreachable.
	dh := nodeByKeySuffix(t, g, "dettaint.deferHelper")
	if dh.Root != "" {
		t.Errorf("deferHelper: root = %q, want none", dh.Root)
	}
	var lit *analysis.Node
	for _, e := range dh.Edges {
		if e.Kind == "closure" {
			lit = e.Callee
		}
	}
	if lit == nil {
		t.Fatalf("deferHelper has no closure edge to its Defer literal")
	}
	if lit.Root != analysis.RootCommit {
		t.Errorf("deferHelper's literal: root = %q, want %q", lit.Root, analysis.RootCommit)
	}
}

// TestCallGraphReachability checks cross-package static edges and the
// chain rendering the analyzers attach to findings.
func TestCallGraphReachability(t *testing.T) {
	w, err := loadFixtures()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	g := w.graph

	onTick := nodeByKeySuffix(t, g, "dettaint.onTick")
	stepA := nodeByKeySuffix(t, g, "util.StepA")
	stepB := nodeByKeySuffix(t, g, "util.stepB")

	if e, ok := edgeTo(onTick, stepA); !ok {
		t.Errorf("missing edge onTick -> StepA (cross-package static call)")
	} else if e.Kind != "static" {
		t.Errorf("onTick -> StepA edge kind = %q, want static", e.Kind)
	}
	// stepB is declared *after* its caller in util.go; resolution of static
	// edges is deferred to pass 2 exactly so this edge exists.
	if _, ok := edgeTo(stepA, stepB); !ok {
		t.Errorf("missing edge StepA -> stepB (callee declared after caller)")
	}

	reach := g.Reach()
	if _, ok := reach[stepB]; !ok {
		t.Errorf("stepB not reachable; entry root should taint two calls down")
	}
	if orphan := nodeByKeySuffix(t, g, "dettaint.orphan"); g.Reachable(orphan) {
		t.Errorf("orphan is reachable; nothing calls or schedules it")
	}

	chain := g.Chain(reach, stepB)
	if len(chain) != 3 {
		t.Fatalf("chain to stepB = %v, want 3 hops", chain)
	}
	if !strings.Contains(chain[0], "onTick") || !strings.Contains(chain[0], "[entry method]") {
		t.Errorf("chain root %q should name onTick and its root kind", chain[0])
	}
	if !strings.Contains(chain[2], "stepB") {
		t.Errorf("chain leaf %q should name stepB", chain[2])
	}
}

// indirectEdges returns n's non-closure indirect edges.
func indirectEdges(n *analysis.Node) []analysis.Edge {
	var out []analysis.Edge
	for _, e := range n.Edges {
		if e.Kind == "indirect" {
			out = append(out, e)
		}
	}
	return out
}

// TestIndirectPruning pins def-use pruning of signature-indirect edges:
// the cmd/ driver idiom `run := func(){...}; run()` must produce a single
// edge to that literal instead of aliasing every same-signature function
// in the module, while every disqualifier — reassignment (including from
// inside a nested literal), address-taking, parameters, call results —
// keeps the conservative fan-out.
func TestIndirectPruning(t *testing.T) {
	w, err := loadFixtures()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	g := w.graph

	targetA := nodeByKeySuffix(t, g, "indirect.targetA")
	targetB := nodeByKeySuffix(t, g, "indirect.targetB")

	// Pruned: local bound once to a literal — one edge, to that literal.
	lit := nodeByKeySuffix(t, g, "indirect.prunedLocalLit")
	ind := indirectEdges(lit)
	if len(ind) != 1 {
		t.Fatalf("prunedLocalLit: %d indirect edges, want 1 (pruning off?)", len(ind))
	}
	var litChild *analysis.Node
	for _, e := range lit.Edges {
		if e.Kind == "closure" {
			litChild = e.Callee
		}
	}
	if litChild == nil || ind[0].Callee != litChild {
		t.Errorf("prunedLocalLit: indirect edge goes to %v, want its own literal %v", ind[0].Callee, litChild)
	}

	// Pruned: local bound once to a declared function.
	ref := nodeByKeySuffix(t, g, "indirect.prunedLocalRef")
	if ind := indirectEdges(ref); len(ind) != 1 || ind[0].Callee != targetA {
		t.Errorf("prunedLocalRef: indirect edges %v, want exactly [targetA]", ind)
	}
	if _, ok := edgeTo(ref, targetB); ok {
		t.Errorf("prunedLocalRef: spurious edge to targetB survived pruning")
	}

	// Pruned through capture: binding in the outer function, call in the
	// returned literal.
	capOuter := nodeByKeySuffix(t, g, "indirect.prunedCaptured")
	var capLit *analysis.Node
	for _, e := range capOuter.Edges {
		if e.Kind == "closure" {
			capLit = e.Callee
		}
	}
	if capLit == nil {
		t.Fatalf("prunedCaptured has no closure child")
	}
	if ind := indirectEdges(capLit); len(ind) != 1 || ind[0].Callee != targetA {
		t.Errorf("prunedCaptured literal: indirect edges %v, want exactly [targetA]", ind)
	}

	// Every disqualifier keeps the fan-out to both targets.
	for _, name := range []string{
		"indirect.reassigned",
		"indirect.nestedReassign",
		"indirect.addressTaken",
		"indirect.viaParam",
		"indirect.fromCall",
	} {
		n := nodeByKeySuffix(t, g, name)
		if _, ok := edgeTo(n, targetA); !ok {
			t.Errorf("%s: missing fan-out edge to targetA", name)
		}
		if _, ok := edgeTo(n, targetB); !ok {
			t.Errorf("%s: missing fan-out edge to targetB", name)
		}
	}
}

// TestCallGraphDeterminism rebuilds the graph and checks node order and
// edge counts are identical: analyzers iterate Nodes directly, so any map
// nondeterminism here would shuffle finding order run to run.
func TestCallGraphDeterminism(t *testing.T) {
	w, err := loadFixtures()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	rebuilt := analysis.NewGraph(w.all, nil)
	if len(rebuilt.Nodes) != len(w.graph.Nodes) {
		t.Fatalf("rebuild changed node count: %d vs %d", len(rebuilt.Nodes), len(w.graph.Nodes))
	}
	for i, n := range w.graph.Nodes {
		r := rebuilt.Nodes[i]
		if n.Key != r.Key {
			t.Fatalf("node %d: key %q vs %q", i, n.Key, r.Key)
		}
		if len(n.Edges) != len(r.Edges) {
			t.Errorf("node %s: edge count %d vs %d", n.Key, len(n.Edges), len(r.Edges))
		}
		for j := range n.Edges {
			if j < len(r.Edges) && n.Edges[j].Callee.Key != r.Edges[j].Callee.Key {
				t.Errorf("node %s edge %d: callee %q vs %q", n.Key, j, n.Edges[j].Callee.Key, r.Edges[j].Callee.Key)
			}
		}
	}
}
