package analysis

import (
	"bufio"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"strings"
)

// Baseline support for incremental adoption: a committed file of known
// findings that CI tolerates, so a new analyzer can land before every
// legacy finding is triaged, while any *new* finding still fails the
// build.
//
// A baseline entry keys a finding by analyzer, file base name, and message
// — deliberately not by line number, so unrelated edits above a known
// finding do not churn the baseline. The message includes the call chain
// suffix for interprocedural findings, so a finding that becomes reachable
// through a new path counts as new.

// FindingKey returns the baseline key of f.
func FindingKey(f Finding) string {
	return fmt.Sprintf("%s\t%s\t%s", f.Analyzer, filepath.Base(f.Pos.Filename), f.Message)
}

// ParseBaseline reads a baseline: one key per line, '#' comments and blank
// lines ignored.
func ParseBaseline(r io.Reader) (map[string]bool, error) {
	base := map[string]bool{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		base[line] = true
	}
	return base, sc.Err()
}

// FilterBaseline drops findings whose key appears in base, returning the
// new findings and the count suppressed.
func FilterBaseline(findings []Finding, base map[string]bool) (fresh []Finding, suppressed int) {
	for _, f := range findings {
		if base[FindingKey(f)] {
			suppressed++
			continue
		}
		fresh = append(fresh, f)
	}
	return fresh, suppressed
}

// FormatBaseline renders findings as a baseline file: sorted, deduplicated,
// with a header comment.
func FormatBaseline(findings []Finding) string {
	seen := map[string]bool{}
	var keys []string
	for _, f := range findings {
		k := FindingKey(f)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString("# charmvet baseline: known findings tolerated during incremental adoption.\n")
	b.WriteString("# One finding per line: analyzer<TAB>file<TAB>message. Regenerate with\n")
	b.WriteString("# `go run ./cmd/charmvet -update-baseline ./...`; shrink it, never grow it.\n")
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('\n')
	}
	return b.String()
}
