package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
)

// RetainCheck flags pooled runtime objects stored into state that outlives
// the handler invocation. The zero-alloc delivery path (PR 5) recycles
// *charm.Ctx and *charm.message aggressively: a Ctx is valid only for the
// duration of the entry-method invocation it was issued for, and a message
// is reused as soon as its delivery commits. A reference squirreled away in
// a chare field, a global, a slice, or a closure that runs later therefore
// observes — or corrupts — another event's state. Nothing crashes; the
// simulation just stops being deterministic. This generalizes poolcheck
// (use-after-release inside one block) to escape: release-then-use across
// events.
//
// A store is flagged when a bare identifier of pooled type appears
//
//   - on the right of an assignment whose left side escapes the function:
//     a field selector, an index or dereference expression, or a
//     package-level variable;
//
//   - as an argument to append, or as an element of a composite literal
//     (both build longer-lived structures);
//
//   - captured by a function literal that itself escapes: passed to any
//     call other than Ctx.Defer / Ctx.emit (whose closures the runtime
//     runs and drops within the same delivery), or stored as above.
//
// Method calls *on* a pooled object (ctx.Send(...)) and plain argument
// passing (helper(ctx, ...)) are not stores; passing the value on keeps it
// within the invocation. Aliasing through intermediate locals is not
// tracked (a conservatism documented in DESIGN.md §11). Deliberate
// retention — the pools themselves, runtime structures whose lifecycle
// provably returns the object before reuse — carries //charmvet:retain.
var RetainCheck = &Analyzer{
	Name: "retaincheck",
	Doc:  "flags pooled objects (Ctx, messages) stored into state that outlives the handler",
	Run:  runRetainCheck,
}

// pooledType reports whether t is one of the runtime's pooled reference
// types: *charm.Ctx or *charm.message (name-based, so fixtures using a
// stub charm package qualify).
func pooledType(t types.Type) bool {
	return isCtxPtr(t) || isPtrToNamed(t, "charm", "message")
}

func runRetainCheck(pass *Pass) {
	for _, n := range pass.pkgNodes() {
		pass.checkRetainNode(n)
	}
}

func (p *Pass) checkRetainNode(n *Node) {
	inspectShallow(n.body(), func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for i, rhs := range x.Rhs {
				var lhs ast.Expr
				if len(x.Lhs) == len(x.Rhs) {
					lhs = x.Lhs[i]
				} else {
					lhs = x.Lhs[0] // multi-value RHS: be conservative
				}
				if !escapingLHS(p, lhs) {
					continue
				}
				// Only a bare pooled identifier on the right is a store of
				// the object itself; nested occurrences are the append /
				// composite-literal / closure cases, each handled once
				// below.
				p.flagPooledIdent(rhs, "stored into %s, which outlives the handler invocation", types.ExprString(lhs))
			}
		case *ast.CallExpr:
			if id, ok := unparen(x.Fun).(*ast.Ident); ok && id.Name == "append" && p.Info.Uses[id] != nil {
				if _, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
					for _, arg := range x.Args[min(1, len(x.Args)):] {
						p.flagPooledIdent(arg, "appended to a slice, which outlives the handler invocation")
					}
				}
			}
			p.checkClosureArgs(n, x)
		case *ast.CompositeLit:
			for _, elt := range x.Elts {
				if kv, ok := elt.(*ast.KeyValueExpr); ok {
					elt = kv.Value
				}
				p.flagPooledIdent(elt, "placed in a composite literal, which outlives the handler invocation")
			}
		case *ast.ReturnStmt:
			// Returning a pooled value is passing it up the same
			// invocation; not a store.
		}
		return true
	})
}

// flagPooledIdent flags e when it is a bare identifier of pooled type.
func (p *Pass) flagPooledIdent(e ast.Expr, format string, args ...any) {
	id, ok := unparen(e).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok || !pooledType(v.Type()) {
		return
	}
	if p.Waived(WaiverRetain, id.Pos()) {
		return
	}
	p.Reportf(id.Pos(), "pooled %s %s %s; the runtime recycles it after this delivery — copy what you need or annotate //charmvet:retain",
		typeShort(v.Type()), id.Name, applyFormat(format, args))
}

// checkClosureArgs flags function-literal call arguments that capture a
// pooled variable, unless the callee is Ctx.Defer / Ctx.emit.
func (p *Pass) checkClosureArgs(n *Node, call *ast.CallExpr) {
	if kind, ok := scheduleCallKind(p.Info, call); ok && kind == RootCommit {
		return // Defer/emit closures run and are dropped within the delivery
	}
	for _, arg := range call.Args {
		lit, ok := unparen(arg).(*ast.FuncLit)
		if !ok {
			continue
		}
		p.flagPooledCaptures(lit, "captured by a closure passed to "+types.ExprString(call.Fun))
	}
}

// flagPooledCaptures flags pooled variables declared outside lit that its
// body (including nested literals) references.
func (p *Pass) flagPooledCaptures(lit *ast.FuncLit, how string) {
	ast.Inspect(lit.Body, func(x ast.Node) bool {
		id, ok := x.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || !pooledType(v.Type()) {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() < lit.End() {
			return true // declared inside the literal (e.g. its own param)
		}
		if p.Waived(WaiverRetain, id.Pos()) {
			return true
		}
		p.Reportf(id.Pos(), "pooled %s %s %s, which may run after the handler returns; the runtime recycles it after this delivery — copy what you need or annotate //charmvet:retain",
			typeShort(v.Type()), id.Name, how)
		return true
	})
}

// escapingLHS reports whether storing through lhs makes the value outlive
// the enclosing function: a field of any object, an element behind an
// index or dereference, or a package-level variable.
func escapingLHS(p *Pass, lhs ast.Expr) bool {
	switch lhs := unparen(lhs).(type) {
	case *ast.SelectorExpr:
		// Selecting a field (on anything — receiver, global, local struct
		// pointer) stores beyond the local frame in every case that
		// matters; a local struct *value* is the one false-positive shape,
		// accepted for simplicity.
		return true
	case *ast.IndexExpr, *ast.StarExpr:
		return true
	case *ast.Ident:
		v, ok := p.Info.Uses[lhs].(*types.Var)
		if !ok {
			if d, okd := p.Info.Defs[lhs].(*types.Var); okd {
				v = d
				ok = true
			}
		}
		return ok && v.Parent() == v.Pkg().Scope()
	}
	return false
}

func typeShort(t types.Type) string {
	return types.TypeString(t, func(pkg *types.Package) string { return pkg.Name() })
}

func applyFormat(format string, args []any) string {
	if len(args) == 0 {
		return format
	}
	return fmt.Sprintf(format, args...)
}
