package analysis

import (
	"go/ast"
	"go/types"
)

// wallClockFuncs are the package-level time functions that read or depend
// on the machine's real clock. Simulation code must use virtual time
// (des.Engine.Now / After); a wall-clock read anywhere in an event handler
// makes results depend on host speed and scheduling.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandExempt are the math/rand package-level functions that only
// construct explicitly-seeded generators — the idiom determinism requires
// (e.g. rand.New(rand.NewSource(seed)) as in lb.go's WorkStealing).
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

// WallTime flags wall-clock reads (time.Now, time.Since, timers) and draws
// from the global math/rand source in simulation code. The global rand
// functions share an unseeded process-wide state, so two runs with the
// same Config.Seed would diverge; methods on an explicitly seeded
// *rand.Rand are fine and are not flagged.
var WallTime = &Analyzer{
	Name:   "walltime",
	Doc:    "flags wall-clock and global math/rand use in simulation code",
	Scoped: true,
	Run:    runWallTime,
}

func runWallTime(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			pkgPath, ok := pass.packageOf(sel.X)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch {
			case pkgPath == "time" && wallClockFuncs[name]:
				if !pass.Waived(WaiverWallclock, call.Pos()) {
					pass.Reportf(call.Pos(), "time.%s reads the wall clock; simulation code must use virtual time (des.Engine) or annotate //charmvet:wallclock", name)
				}
			case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !globalRandExempt[name]:
				if !pass.Waived(WaiverWallclock, call.Pos()) {
					pass.Reportf(call.Pos(), "rand.%s draws from the global math/rand source; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) or annotate //charmvet:wallclock", name)
				}
			}
			return true
		})
	}
}

// packageOf resolves e to an imported package's path when e names a
// package (handling import renames via the type checker).
func (p *Pass) packageOf(e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
