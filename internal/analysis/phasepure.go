package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// PhasePure checks the two-phase commit discipline the parsim backend
// depends on (see internal/parsim): during the *phase*, entry methods from
// the same conservative window run concurrently, each touching only its own
// chare's state and buffering global effects through Ctx (Send, Defer);
// at *commit*, the buffered effects replay sequentially in virtual-time
// order. Two statically checkable rules follow:
//
//   - Rule A — phase-side code must not write package-level variables.
//     A direct global write from an entry method (or any helper it calls)
//     races with the other phase workers and, even when "benign", makes
//     the parallel backend diverge from the sequential one. Route the
//     write through ctx.Defer.
//
//   - Rule B — commit closures must not read the chare. A closure handed
//     to ctx.Defer from an entry method runs at commit time, after other
//     events of the window may have advanced the chare's state; reading
//     `obj` (or an alias like `l := obj.(*LP)`) from inside it observes a
//     different state than the sequential engine would. Capture the
//     needed values into locals before deferring.
//
// Phase-side code is computed from the call graph: every function
// reachable from an entry-method or PE-handler root without crossing into
// a commit/scheduled closure or into the runtime's own packages
// (charm/des/parsim — they are the mechanism this discipline protects, and
// their internals run under the engine's own locks and orderings).
// Deliberate exceptions — state that is PE-local by construction, or
// sequential-backend-only paths — carry //charmvet:phase.
var PhasePure = &Analyzer{
	Name: "phasepure",
	Doc:  "checks parsim's two-phase discipline: no phase-side global writes, no chare reads in commit closures",
	Run:  runPhasePure,
}

func runPhasePure(pass *Pass) {
	g := pass.Graph
	reach := g.PhaseReach()
	for _, n := range pass.pkgNodes() {
		if _, ok := reach[n]; ok {
			chain := g.Chain(reach, n)
			pass.checkPhaseWrites(n, chain)
		}
		if n.Root == RootEntry {
			pass.checkCommitClosures(n)
		}
	}
}

// checkPhaseWrites enforces Rule A on one phase-side function body.
func (p *Pass) checkPhaseWrites(n *Node, chain []string) {
	inspectShallow(n.body(), func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				p.flagGlobalWrite(lhs, chain)
			}
		case *ast.IncDecStmt:
			p.flagGlobalWrite(x.X, chain)
		}
		return true
	})
}

// flagGlobalWrite reports lhs when it resolves to (a path rooted at) a
// package-level variable. Writes through pointers held in globals are not
// tracked (conservatism, DESIGN.md §11); the bare `global = v`,
// `global.field = v`, `global[i] = v`, and `global++` shapes are.
func (p *Pass) flagGlobalWrite(lhs ast.Expr, chain []string) {
	base := lhs
	for {
		switch b := unparen(base).(type) {
		case *ast.SelectorExpr:
			// pkg.Var: the selector's X names a package, not a value.
			if _, isPkg := p.packageOf(b.X); isPkg {
				base = b.Sel
				continue
			}
			base = b.X
			continue
		case *ast.IndexExpr:
			base = b.X
			continue
		case *ast.StarExpr:
			base = b.X
			continue
		}
		break
	}
	id, ok := unparen(base).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := p.Info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return
	}
	if p.Waived(WaiverPhase, lhs.Pos()) {
		return
	}
	p.ReportChainf(lhs.Pos(), chain, "phase-side write to package-level variable %s; concurrent phase workers race on it — defer the write through ctx.Defer or annotate //charmvet:phase%s",
		id.Name, chainSuffix(chain))
}

// checkCommitClosures enforces Rule B on one entry-method root: find the
// chare parameter (and its type-asserted aliases), then flag Defer/emit
// closures that reference any of them.
func (p *Pass) checkCommitClosures(n *Node) {
	objVars := p.chareParamAliases(n)
	if len(objVars) == 0 {
		return
	}
	inspectShallow(n.body(), func(x ast.Node) bool {
		call, ok := x.(*ast.CallExpr)
		if !ok {
			return true
		}
		if kind, ok := scheduleCallKind(p.Info, call); !ok || kind != RootCommit {
			return true
		}
		for _, arg := range call.Args {
			lit, ok := unparen(arg).(*ast.FuncLit)
			if !ok {
				continue
			}
			ast.Inspect(lit.Body, func(y ast.Node) bool {
				id, ok := y.(*ast.Ident)
				if !ok {
					return true
				}
				v, ok := p.Info.Uses[id].(*types.Var)
				if !ok || !objVars[v] {
					return true
				}
				if p.Waived(WaiverPhase, id.Pos()) {
					return true
				}
				p.Reportf(id.Pos(), "commit closure reads chare state %s; at commit time other events may have advanced it — capture the needed values into locals before deferring, or annotate //charmvet:phase", id.Name)
				return true
			})
		}
		return true
	})
}

// chareParamAliases returns the entry method's chare parameter plus every
// local derived from it by assignment or type assertion (`l := obj.(*LP)`),
// iterated to a fixpoint.
func (p *Pass) chareParamAliases(n *Node) map[*types.Var]bool {
	sig := p.Graph.nodeSig(n)
	if sig == nil || sig.Params().Len() != 3 {
		return nil
	}
	objVars := map[*types.Var]bool{sig.Params().At(0): true}
	for {
		grew := false
		inspectShallow(n.body(), func(x ast.Node) bool {
			as, ok := x.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				return true
			}
			for i, rhs := range as.Rhs {
				if !p.aliasExpr(rhs, objVars) {
					continue
				}
				lid, ok := as.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				v, _ := p.Info.Defs[lid].(*types.Var)
				if v == nil {
					v, _ = p.Info.Uses[lid].(*types.Var)
				}
				// Only reference-shaped derivations alias the chare: a
				// pointer (`l := obj.(*LP)`) or interface copy still
				// points at live state, while a plain value copy
				// (`n := l.n`) is the sanctioned capture idiom.
				if v != nil && !objVars[v] && refShaped(v.Type()) {
					objVars[v] = true
					grew = true
				}
			}
			return true
		})
		if !grew {
			return objVars
		}
	}
}

// refShaped reports whether t still references the original object after
// an assignment copy: pointers and interfaces do, plain values do not.
func refShaped(t types.Type) bool {
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Interface:
		return true
	}
	return false
}

// aliasExpr reports whether e evaluates to a view of one of vars: the
// variable itself, a type assertion on it, a field/element path from it,
// or the address of such a path. A function call is not an alias even
// when an aliased variable is an argument — `err := fmt.Errorf(..., l.n)`
// builds a fresh value (a callee returning an interior pointer is the
// conservatism documented in DESIGN.md §11).
func (p *Pass) aliasExpr(e ast.Expr, vars map[*types.Var]bool) bool {
	switch e := unparen(e).(type) {
	case *ast.Ident:
		v, ok := p.Info.Uses[e].(*types.Var)
		return ok && vars[v]
	case *ast.TypeAssertExpr:
		return p.aliasExpr(e.X, vars)
	case *ast.SelectorExpr:
		return p.aliasExpr(e.X, vars)
	case *ast.IndexExpr:
		return p.aliasExpr(e.X, vars)
	case *ast.StarExpr:
		return p.aliasExpr(e.X, vars)
	case *ast.UnaryExpr:
		return e.Op == token.AND && p.aliasExpr(e.X, vars)
	}
	return false
}
