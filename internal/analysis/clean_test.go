package analysis_test

import (
	"testing"

	"charmgo/internal/analysis"
)

// TestCharmvetClean enforces the determinism and PUP-completeness rules on
// the whole module: reintroducing a violation anywhere fails tier-1
// `go test ./...`, not just a manual charmvet run.
func TestCharmvetClean(t *testing.T) {
	pkgs, err := analysis.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loader returned no packages")
	}
	suite := analysis.DefaultSuite()
	want := map[string]bool{
		"dettaint": true, "retaincheck": true, "phasepure": true,
		"pupcheck": true, "poolcheck": true, "specstate": true,
	}
	for _, a := range suite.Analyzers {
		delete(want, a.Name)
	}
	for name := range want {
		t.Errorf("analyzer %s missing from the default suite; the module-wide gate no longer covers it", name)
	}
	findings := suite.Run(pkgs)
	for _, f := range findings {
		t.Errorf("%s", f)
	}
	if len(findings) > 0 {
		t.Logf("run `go run ./cmd/charmvet ./...` locally; see the Determinism rules section of DESIGN.md for the waiver comments")
	}
}
