// Package analysis implements charmvet, a vet-style static-analysis suite
// that enforces the invariants the runtime's determinism and migratability
// guarantees rest on. The v2 suite reasons about the module the way the
// runtime executes it: a whole-module call graph (callgraph.go) identifies
// the functions the engine invokes as events — entry methods, PE handlers,
// commit closures, Pup methods — and the analyzers check what those events
// can reach, not what package a file happens to sit in:
//
//   - dettaint: no nondeterminism source (wall clock, global math/rand,
//     map-order iteration, select, goroutine spawn) reachable from an
//     entry method, commit closure, or Pup method — reported with the
//     full call chain
//
//   - retaincheck: no pooled object (*charm.Ctx, runtime messages) stored
//     into state that outlives the handler invocation
//
//   - phasepure: parsim's two-phase discipline — phase-side handler code
//     must route global effects through Ctx.Defer, and commit closures
//     must not read phase-side chare state
//
//   - pupcheck: every field of a chare struct is covered by its Pup
//     method, descending one level into embedded and named struct fields
//
//   - poolcheck: no use of a pooled object after it is released to its
//     pool (intra-procedural, runs everywhere)
//
//   - specstate: phase-side code must not write //pup:skip fields of
//     Pup-bearing types — a Time Warp rollback rebuilds the chare
//     factory-fresh, so such writes are reset instead of restored
//
// The suite is stdlib-only (go/parser, go/ast, go/types); imports are
// resolved from compiler export data via `go list -export`, with module
// packages type-checked from source in one shared type universe so the
// call graph can resolve cross-package calls exactly. It runs as a CLI
// (cmd/charmvet, with -json/-why/-baseline) and as a tier-1 test
// (TestCharmvetClean), so a violation reintroduced anywhere fails
// `go test ./...`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
	// Chain is the call path from the analysis root to the finding,
	// outermost first, for analyzers that reason interprocedurally.
	Chain []string `json:"chain,omitempty"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one checker of the suite.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one analyzer's view of one package, plus the module-wide
// call graph shared by every pass of a suite run.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Path     string
	Graph    *Graph

	waivers  map[string]map[fileLine]bool // waiver name -> waived file:line
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportChainf(pos, nil, format, args...)
}

// ReportChainf records a finding at pos carrying a root→sink call chain.
func (p *Pass) ReportChainf(pos token.Pos, chain []string, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// pkgNodes returns the call-graph nodes whose bodies live in this pass's
// package, in deterministic graph order.
func (p *Pass) pkgNodes() []*Node {
	var nodes []*Node
	for _, n := range p.Graph.Nodes {
		if n.Pkg.Path == p.Path {
			nodes = append(nodes, n)
		}
	}
	return nodes
}

// Waiver directives. A directive comment waives the statement on its own
// line or on the line directly below, mirroring //nolint and //go:
// placement conventions.
const (
	// WaiverOrdered marks a map iteration whose order the author has made
	// harmless (sorted afterwards, or provably order-insensitive).
	WaiverOrdered = "charmvet:ordered"
	// WaiverWallclock marks deliberate wall-clock or global-rand use
	// (CLI progress reporting, real network servers).
	WaiverWallclock = "charmvet:wallclock"
	// WaiverSpawn marks a deliberate goroutine or select (real-I/O
	// subsystems that bridge into the simulation).
	WaiverSpawn = "charmvet:spawn"
	// WaiverParsim marks the parallel engine's phase-worker spawns. It is
	// honored only inside parsim packages: the conservative scheduler is
	// the one place where goroutines provably cannot reorder events (see
	// internal/parsim's package comment), so the waiver must not leak into
	// runtime or app code.
	WaiverParsim = "charmvet:parsim"
	// WaiverTelemetry marks the observability layer's wall-clock reads. It
	// is honored only inside telemetry packages, and even there only for
	// values that stay side-band: a waived read whose result flows into
	// simulated time (des.Time) is still a finding, because a wall stamp
	// entering simulation state breaks cross-backend digest identity no
	// matter which package it came from.
	WaiverTelemetry = "charmvet:telemetry"
	// WaiverPupSkip marks a struct field deliberately absent from the
	// type's Pup method (caches, runtime wiring rebuilt after migration).
	WaiverPupSkip = "pup:skip"
	// WaiverPooled marks a deliberate use of a pooled object after its
	// release call (for example re-releasing under a different name, or a
	// release helper that the caller knows is a no-op on this path).
	WaiverPooled = "charmvet:pooled"
	// WaiverRetain marks a deliberate store of a pooled object into
	// longer-lived state — the pool implementations themselves, and
	// runtime structures whose lifecycle provably returns the object
	// before reuse.
	WaiverRetain = "charmvet:retain"
	// WaiverPhase marks a deliberate phase-side write to shared state —
	// state that is PE-local by construction, or sequential-backend-only
	// paths.
	WaiverPhase = "charmvet:phase"
	// WaiverSpecState marks a //pup:skip field (declaration placement) or a
	// single write to one (write-site placement) as safe under Time Warp
	// rollback: the factory reset is equivalent to restoring it, or the
	// owning app is pinned to the non-speculative backends.
	WaiverSpecState = "charmvet:specstate"
)

// Waived reports whether a directive comment covers the line of pos: on
// that same line, or on the line immediately above.
func (p *Pass) Waived(name string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.waivers[name][fileLine{position.Filename, position.Line}]
}

type fileLine = struct {
	file string
	line int
}

func buildWaivers(fset *token.FileSet, files []*ast.File) map[string]map[fileLine]bool {
	w := map[string]map[fileLine]bool{}
	add := func(name, file string, line int) {
		if w[name] == nil {
			w[name] = map[fileLine]bool{}
		}
		w[name][fileLine{file, line}] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				for _, name := range []string{
					WaiverOrdered, WaiverWallclock, WaiverSpawn, WaiverParsim,
					WaiverTelemetry, WaiverPupSkip, WaiverPooled, WaiverRetain,
					WaiverPhase, WaiverSpecState,
				} {
					if text == name || strings.HasPrefix(text, name+" ") {
						pos := fset.Position(c.Pos())
						// Waive the directive's own line and the next one,
						// so both trailing and preceding placement work.
						add(name, pos.Filename, pos.Line)
						add(name, pos.Filename, pos.Line+1)
					}
				}
			}
		}
	}
	return w
}

// Suite is a set of analyzers run over the whole module at once.
type Suite struct {
	Analyzers []*Analyzer
	// Exclude lists import-path prefixes whose findings are dropped and
	// whose functions never act as call-graph roots (test fixtures
	// containing deliberate violations).
	Exclude []string
}

// DefaultSuite is the charmgo policy. Scoping is by reachability, not by
// package list: dettaint and phasepure follow the call graph from the
// functions the runtime invokes as events, and retaincheck/poolcheck/
// pupcheck run everywhere their trigger shapes appear.
func DefaultSuite() *Suite {
	return &Suite{
		Analyzers: []*Analyzer{DetTaint, RetainCheck, PhasePure, PupCheck, PoolCheck, SpecState},
		Exclude:   []string{"charmgo/internal/analysis/fixtures"},
	}
}

func hasPrefix(path string, prefixes []string) bool {
	for _, pre := range prefixes {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}

// Run builds the call graph over pkgs once, applies every analyzer to
// every non-excluded package, and returns all findings in file order.
func (s *Suite) Run(pkgs []*Package) []Finding {
	graph := NewGraph(pkgs, s.Exclude)
	var findings []Finding
	for _, pkg := range pkgs {
		if hasPrefix(pkg.Path, s.Exclude) {
			continue
		}
		for _, a := range s.Analyzers {
			RunAnalyzer(a, pkg, graph, &findings)
		}
	}
	SortFindings(findings)
	return findings
}

// SortFindings orders findings by file, line, then analyzer.
func SortFindings(findings []Finding) {
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
}

// RunAnalyzer applies a single analyzer to one package, appending to
// findings. graph must cover at least pkg (tests build one over a fixture
// package alone). Tests use it to drive an analyzer over a fixture
// regardless of suite composition.
func RunAnalyzer(a *Analyzer, pkg *Package, graph *Graph, findings *[]Finding) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Path:     pkg.Path,
		Graph:    graph,
		waivers:  buildWaivers(pkg.Fset, pkg.Files),
		findings: findings,
	}
	a.Run(pass)
}
