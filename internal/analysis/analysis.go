// Package analysis implements charmvet, a vet-style static-analysis suite
// that enforces the invariants the runtime's determinism and migratability
// guarantees rest on. Five analyzers cover the classic bug classes of a
// migratable-objects runtime built on a deterministic DES core:
//
//   - detmap: no map-order-dependent iteration in event-producing packages
//
//   - walltime: no wall clock or global math/rand in simulation code
//
//   - pupcheck: every field of a chare struct is covered by its Pup method
//
//   - nospawn: no goroutines or selects inside DES-driven packages
//
//   - poolcheck: no use of a pooled object after it is released to its pool
//
// The suite is stdlib-only (go/parser, go/ast, go/types); imports are
// resolved from compiler export data via `go list -export`. It runs as a
// CLI (cmd/charmvet) and as a tier-1 test (TestCharmvetClean), so a
// violation reintroduced anywhere fails `go test ./...`.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one rule violation.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one checker of the suite.
type Analyzer struct {
	Name string
	Doc  string
	// Scoped analyzers run only on packages the suite marks critical for
	// them; unscoped analyzers run everywhere.
	Scoped bool
	Run    func(*Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	Path     string

	waivers  map[string]map[fileLine]bool // waiver name -> waived file:line
	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.findings = append(*p.findings, Finding{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf returns the type of e, or nil when unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	return p.Info.TypeOf(e)
}

// Waiver directives. A directive comment waives the statement on its own
// line or on the line directly below, mirroring //nolint and //go:
// placement conventions.
const (
	// WaiverOrdered marks a map iteration whose order the author has made
	// harmless (sorted afterwards, or provably order-insensitive).
	WaiverOrdered = "charmvet:ordered"
	// WaiverWallclock marks deliberate wall-clock or global-rand use
	// (CLI progress reporting, real network servers).
	WaiverWallclock = "charmvet:wallclock"
	// WaiverSpawn marks a deliberate goroutine or select (real-I/O
	// subsystems that bridge into the simulation).
	WaiverSpawn = "charmvet:spawn"
	// WaiverParsim marks the parallel engine's phase-worker spawns. It is
	// honored only inside parsim packages: the conservative scheduler is
	// the one place where goroutines provably cannot reorder events (see
	// internal/parsim's package comment), so the waiver must not leak into
	// runtime or app code.
	WaiverParsim = "charmvet:parsim"
	// WaiverPupSkip marks a struct field deliberately absent from the
	// type's Pup method (caches, runtime wiring rebuilt after migration).
	WaiverPupSkip = "pup:skip"
	// WaiverPooled marks a deliberate use of a pooled object after its
	// release call (for example re-releasing under a different name, or a
	// release helper that the caller knows is a no-op on this path).
	WaiverPooled = "charmvet:pooled"
)

// Waived reports whether a directive comment covers the line of pos: on
// that same line, or on the line immediately above.
func (p *Pass) Waived(name string, pos token.Pos) bool {
	position := p.Fset.Position(pos)
	return p.waivers[name][fileLine{position.Filename, position.Line}]
}

type fileLine = struct {
	file string
	line int
}

func buildWaivers(fset *token.FileSet, files []*ast.File) map[string]map[fileLine]bool {
	w := map[string]map[fileLine]bool{}
	add := func(name, file string, line int) {
		if w[name] == nil {
			w[name] = map[fileLine]bool{}
		}
		w[name][fileLine{file, line}] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				for _, name := range []string{WaiverOrdered, WaiverWallclock, WaiverSpawn, WaiverParsim, WaiverPupSkip, WaiverPooled} {
					if text == name || strings.HasPrefix(text, name+" ") {
						pos := fset.Position(c.Pos())
						// Waive the directive's own line and the next one,
						// so both trailing and preceding placement work.
						add(name, pos.Filename, pos.Line)
						add(name, pos.Filename, pos.Line+1)
					}
				}
			}
		}
	}
	return w
}

// Suite binds analyzers to the package sets they police.
type Suite struct {
	Analyzers []*Analyzer
	// Critical maps analyzer name -> import-path prefixes the analyzer is
	// scoped to. Ignored for unscoped analyzers.
	Critical map[string][]string
	// Exclude lists import-path prefixes no analyzer visits (test
	// fixtures containing deliberate violations).
	Exclude []string
}

// DefaultSuite is the charmgo policy: detmap and nospawn guard the
// packages that produce or order simulation events; walltime guards every
// internal package (virtual time is the only clock of the simulated
// machine); pupcheck guards every package that defines a Pup method.
func DefaultSuite() *Suite {
	return &Suite{
		Analyzers: []*Analyzer{DetMap, WallTime, PupCheck, NoSpawn, PoolCheck},
		Critical: map[string][]string{
			PoolCheck.Name: {
				"charmgo/internal/des",
				"charmgo/internal/parsim",
				"charmgo/internal/charm",
				"charmgo/internal/pup",
				"charmgo/internal/tram",
				"charmgo/internal/ckpt",
			},
			DetMap.Name: {
				"charmgo/internal/des",
				"charmgo/internal/parsim",
				"charmgo/internal/charm",
				"charmgo/internal/machine",
				"charmgo/internal/lb",
				"charmgo/internal/tram",
				"charmgo/internal/ckpt",
				"charmgo/internal/projections",
				"charmgo/internal/chaos",
			},
			NoSpawn.Name: {
				"charmgo/internal/des",
				"charmgo/internal/parsim",
				"charmgo/internal/charm",
				"charmgo/internal/machine",
				"charmgo/internal/lb",
				"charmgo/internal/tram",
				"charmgo/internal/ckpt",
				"charmgo/internal/projections",
				"charmgo/internal/chaos",
			},
			WallTime.Name: {
				"charmgo/internal",
			},
		},
		Exclude: []string{"charmgo/internal/analysis/fixtures"},
	}
}

func hasPrefix(path string, prefixes []string) bool {
	for _, pre := range prefixes {
		if path == pre || strings.HasPrefix(path, pre+"/") {
			return true
		}
	}
	return false
}

// Run applies the suite to pkgs and returns all findings in file order.
func (s *Suite) Run(pkgs []*Package) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		if hasPrefix(pkg.Path, s.Exclude) {
			continue
		}
		for _, a := range s.Analyzers {
			if a.Scoped && !hasPrefix(pkg.Path, s.Critical[a.Name]) {
				continue
			}
			RunAnalyzer(a, pkg, &findings)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return findings
}

// RunAnalyzer applies a single analyzer to one package, appending to
// findings. Tests use it to drive an analyzer over a fixture regardless of
// suite scoping.
func RunAnalyzer(a *Analyzer, pkg *Package, findings *[]Finding) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Path:     pkg.Path,
		waivers:  buildWaivers(pkg.Fset, pkg.Files),
		findings: findings,
	}
	a.Run(pass)
}
