package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module-wide call graph the interprocedural analyzers
// (dettaint, phasepure) reason over. Nodes are function bodies — declared
// functions and methods, plus every function literal as its own node —
// across all loaded packages at once; the loader's shared type universe
// makes cross-package call resolution exact for module code.
//
// Call edges:
//
//   - static: the callee is a declared function or a concrete method.
//   - iface: a method call through an interface value resolves, CHA-style,
//     to every module method with that name and signature whose receiver
//     type implements the interface.
//   - indirect: a call through a function value resolves to every
//     address-taken module function (and every function literal) with an
//     identical signature — unless the value is a local variable bound
//     exactly once to a known function, in which case the site resolves to
//     that one callee (def-use pruning, below).
//   - closure: creating a function literal edges the enclosing function to
//     it. Creation is not invocation, but the conservative edge keeps a
//     source hidden inside a stored-then-invoked closure reachable.
//
// Known conservatisms (see DESIGN.md §11): reflection and cgo are invisible;
// indirect resolution is signature-keyed, so distinct callbacks that share a
// signature alias each other; closure edges over-approximate literals that
// are created but never called.
//
// Def-use pruning. Signature-keyed resolution is brutal on the common
// cmd/ driver idiom
//
//	run := func() { ... }
//	...
//	run()
//
// where every same-signature closure in the module becomes a callee and
// chains alias across drivers. When the called expression is a simple
// local identifier whose variable has exactly one function-valued binding
// in the whole module — a function literal or a direct reference to a
// declared function — and is never address-taken, the call can only reach
// that binding, so the site gets that single edge instead of the fan-out.
// Any second assignment, a binding the graph cannot name (a call result, a
// conversion, a range element, a mismatched multi-assign), or an &v
// anywhere (including inside nested literals — bindings are collected
// module-wide, so a closure reassigning a captured variable disqualifies
// it) falls back to the signature fan-out.

// RootKind classifies why a node is an analysis entry point.
type RootKind string

const (
	RootEntry    RootKind = "entry method"      // charm.Handler shape, address-taken
	RootPEH      RootKind = "PE handler"        // charm.PEHandler shape, address-taken
	RootBoot     RootKind = "boot/driver func"  // func(*charm.Ctx) shape, address-taken
	RootEventFn  RootKind = "engine event body" // des.PhaseFn / des.CommitFn shape
	RootPup      RootKind = "Pup method"
	RootCommit   RootKind = "commit closure"    // argument to Ctx.Defer / Ctx.emit
	RootSchedule RootKind = "scheduled closure" // argument to an engine At/After call
	RootInit     RootKind = "package init"      // init func: runs at program start, taints every run
)

// Node is one function body in the call graph.
type Node struct {
	Key  string      // stable unique id (types.Func FullName, or parent key + literal position)
	Fn   *types.Func // nil for function literals
	Lit  *ast.FuncLit
	Pkg  *Package
	Body *ast.BlockStmt
	Name string // display name, module prefix trimmed
	Pos  token.Pos
	Root RootKind // empty when not a root

	Edges []Edge

	index int // position in Graph.Nodes, for deterministic worklists
}

// Edge is one call (or closure-creation) edge.
type Edge struct {
	Callee *Node
	Site   token.Pos
	Kind   string // "static", "iface", "indirect", "closure"
}

func (n *Node) String() string { return n.Name }

// Graph is the module-wide call graph.
type Graph struct {
	Pkgs  []*Package
	Nodes []*Node // deterministic order: package path, then source position

	byFn  map[*types.Func]*Node
	byLit map[*ast.FuncLit]*Node

	addrTaken map[*types.Func]bool

	// Deferred resolution sites collected during the body walks: every
	// kind resolves after pass 1, when all nodes exist (a call to a
	// function declared later in the file would otherwise find no node).
	staticSites   []staticSite
	indirectSites []indirectSite
	ifaceSites    []ifaceSite

	// Named types of the module, for interface dispatch.
	namedTypes []*types.Named

	reach      map[*Node]reachEdge // lazy: full reachability from all roots
	phaseReach map[*Node]reachEdge // lazy: phase-context reachability
	skipFields map[*types.Var]bool // lazy: //pup:skip fields (specstate)
}

type staticSite struct {
	caller *Node
	site   token.Pos
	fn     *types.Func
}

type indirectSite struct {
	caller *Node
	site   token.Pos
	sig    *types.Signature
	local  *types.Var // set when the call is through a simple local identifier
}

type ifaceSite struct {
	caller *Node
	site   token.Pos
	iface  *types.Interface
	name   string
	sig    *types.Signature
}

// NodeOf returns the graph node of a declared function, or nil.
func (g *Graph) NodeOf(fn *types.Func) *Node { return g.byFn[fn] }

// LitNode returns the graph node of a function literal, or nil.
func (g *Graph) LitNode(lit *ast.FuncLit) *Node { return g.byLit[lit] }

// NewGraph builds the call graph over pkgs. excludeRoots lists import-path
// prefixes whose functions are never marked as roots (test fixtures full of
// deliberate violations must not anchor chains into real code).
func NewGraph(pkgs []*Package, excludeRoots []string) *Graph {
	g := &Graph{
		Pkgs:      pkgs,
		byFn:      map[*types.Func]*Node{},
		byLit:     map[*ast.FuncLit]*Node{},
		addrTaken: map[*types.Func]bool{},
	}
	// Pass 1: nodes for every declared function and literal, plus static
	// edges, address-taken sets, and deferred indirect/iface sites.
	for _, pkg := range pkgs {
		g.collectNamed(pkg)
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				if gd, ok := decl.(*ast.GenDecl); ok {
					for _, spec := range gd.Specs {
						if vs, ok := spec.(*ast.ValueSpec); ok {
							for _, v := range vs.Values {
								g.scanInitExpr(pkg, v)
							}
						}
					}
					continue
				}
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
				if fn == nil {
					continue
				}
				n := &Node{
					Key:  fn.FullName(),
					Fn:   fn,
					Pkg:  pkg,
					Body: fd.Body,
					Name: shortFuncName(fn),
					Pos:  fd.Name.Pos(),
				}
				g.addNode(n)
				g.walkBody(n)
			}
		}
	}
	// Pass 2: resolve deferred sites now that the address-taken set and the
	// node table are complete.
	g.resolveIndirect()
	g.resolveIface()
	g.resolveStatic() // last: resolveIface records its targets via staticEdge
	// Pass 3: roots.
	g.markRoots(excludeRoots)
	return g
}

func (g *Graph) addNode(n *Node) {
	n.index = len(g.Nodes)
	g.Nodes = append(g.Nodes, n)
	if n.Fn != nil {
		g.byFn[n.Fn] = n
	}
	if n.Lit != nil {
		g.byLit[n.Lit] = n
	}
}

// collectNamed records the package's named types for interface dispatch.
func (g *Graph) collectNamed(pkg *Package) {
	scope := pkg.Types.Scope()
	names := scope.Names()
	sort.Strings(names)
	for _, name := range names {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			g.namedTypes = append(g.namedTypes, named)
		}
	}
}

// scanInitExpr handles a package-level initializer expression: function
// values referenced there are address-taken (handler tables are often
// package-level composite literals), and function literals become their
// own nodes so their bodies are analyzed.
func (g *Graph) scanInitExpr(pkg *Package, e ast.Expr) {
	ast.Inspect(e, func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			n := &Node{
				Key:  fmt.Sprintf("%s.init@%s", pkg.Path, shortPos(pkg.Fset, x.Pos())),
				Lit:  x,
				Pkg:  pkg,
				Body: x.Body,
				Name: fmt.Sprintf("%s.init.func@%s", pkg.Types.Name(), shortPos(pkg.Fset, x.Pos())),
				Pos:  x.Pos(),
			}
			g.addNode(n)
			g.walkBody(n)
			return false
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[x].(*types.Func); ok {
				g.addrTaken[fn] = true
			}
		}
		return true
	})
}

// walkBody scans n's body: static call edges, literal child nodes, deferred
// indirect/iface sites, and address-taken functions. Nested literals are
// walked as their own nodes, not as part of n.
func (g *Graph) walkBody(n *Node) {
	// Call positions: expressions that are the Fun of a call, so a
	// reference there is an invocation rather than a taken address; and
	// selector-owned idents, so a method call's Sel ident is not misread
	// as a bare function value.
	callPos := map[ast.Expr]bool{}
	selOwned := map[*ast.Ident]bool{}
	inspectShallow(n.body(), func(x ast.Node) bool {
		if c, ok := x.(*ast.CallExpr); ok {
			callPos[unparen(c.Fun)] = true
		}
		if s, ok := x.(*ast.SelectorExpr); ok {
			selOwned[s.Sel] = true
		}
		return true
	})

	inspectShallow(n.body(), func(x ast.Node) bool {
		switch x := x.(type) {
		case *ast.FuncLit:
			child := &Node{
				Key:  fmt.Sprintf("%s$%d", n.Key, g.litOrdinal(n)),
				Lit:  x,
				Pkg:  n.Pkg,
				Body: x.Body,
				Name: fmt.Sprintf("%s.func@%s", n.Name, shortPos(n.Pkg.Fset, x.Pos())),
				Pos:  x.Pos(),
			}
			g.addNode(child)
			n.Edges = append(n.Edges, Edge{Callee: child, Site: x.Pos(), Kind: "closure"})
			g.walkBody(child)
			return false // the child walk owns the literal's body
		case *ast.CallExpr:
			g.resolveCall(n, x)
		case *ast.Ident:
			if fn, ok := n.Pkg.Info.Uses[x].(*types.Func); ok && !callPos[x] && !selOwned[x] {
				g.addrTaken[fn] = true
			}
		case *ast.SelectorExpr:
			if fn, ok := n.Pkg.Info.Uses[x.Sel].(*types.Func); ok && !callPos[x] {
				g.addrTaken[fn] = true
			}
		}
		return true
	})
}

// litOrdinal numbers n's literal children for stable keys.
func (g *Graph) litOrdinal(n *Node) int {
	count := 0
	for _, e := range n.Edges {
		if e.Kind == "closure" {
			count++
		}
	}
	return count
}

// body returns the AST subtree the node owns.
func (n *Node) body() ast.Node {
	if n.Body == nil {
		return &ast.BlockStmt{}
	}
	return n.Body
}

// inspectShallow walks tree but does not descend into nested function
// literals (each literal is its own graph node). The root itself may be a
// literal's body.
func inspectShallow(tree ast.Node, f func(ast.Node) bool) {
	ast.Inspect(tree, func(x ast.Node) bool {
		if lit, ok := x.(*ast.FuncLit); ok && lit.Body != tree {
			if !f(x) {
				return false
			}
			return false // handled by the literal's own node
		}
		if x == nil {
			return true
		}
		return f(x)
	})
}

// resolveCall classifies one call site and records the edge (or defers it).
func (g *Graph) resolveCall(n *Node, call *ast.CallExpr) {
	info := n.Pkg.Info
	fun := unparen(call.Fun)
	switch fun := fun.(type) {
	case *ast.Ident:
		switch obj := info.Uses[fun].(type) {
		case *types.Func:
			g.staticEdge(n, call.Pos(), obj)
			return
		case *types.TypeName, *types.Builtin, nil:
			return // conversion or builtin
		case *types.Var:
			// A call through a bare variable: record the variable so
			// pass 2 can try def-use pruning. Package-level variables
			// are excluded — any package may reassign them — as are
			// struct fields (those arrive as selectors anyway).
			if sig, ok := obj.Type().Underlying().(*types.Signature); ok &&
				!obj.IsField() && obj.Parent() != n.Pkg.Types.Scope() {
				g.indirectSites = append(g.indirectSites,
					indirectSite{caller: n, site: call.Pos(), sig: sig, local: obj})
				return
			}
		}
	case *ast.SelectorExpr:
		if sel := info.Selections[fun]; sel != nil {
			fn, ok := sel.Obj().(*types.Func)
			if !ok {
				break // calling a func-typed field: indirect
			}
			switch sel.Kind() {
			case types.MethodVal:
				if types.IsInterface(sel.Recv()) {
					if iface, ok := sel.Recv().Underlying().(*types.Interface); ok {
						g.ifaceSites = append(g.ifaceSites, ifaceSite{
							caller: n, site: call.Pos(), iface: iface,
							name: fn.Name(), sig: fn.Type().(*types.Signature),
						})
						return
					}
				}
				g.staticEdge(n, call.Pos(), fn)
				return
			case types.MethodExpr:
				g.staticEdge(n, call.Pos(), fn)
				return
			}
		} else if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			g.staticEdge(n, call.Pos(), fn) // qualified ident pkg.Func
			return
		} else if _, ok := info.Uses[fun.Sel].(*types.TypeName); ok {
			return // qualified conversion pkg.Type(x)
		}
	}
	// Anything else with a function type is an indirect call.
	if t := info.TypeOf(fun); t != nil {
		if sig, ok := t.Underlying().(*types.Signature); ok {
			g.indirectSites = append(g.indirectSites, indirectSite{caller: n, site: call.Pos(), sig: sig})
		}
	}
}

// staticEdge records a direct call for pass-2 resolution.
func (g *Graph) staticEdge(n *Node, site token.Pos, fn *types.Func) {
	g.staticSites = append(g.staticSites, staticSite{caller: n, site: site, fn: fn})
}

// resolveStatic links direct calls whose callee has a body in the module.
func (g *Graph) resolveStatic() {
	for _, s := range g.staticSites {
		if callee := g.byFn[s.fn]; callee != nil {
			s.caller.Edges = append(s.caller.Edges, Edge{Callee: callee, Site: s.site, Kind: "static"})
		}
	}
}

// funcBinding summarizes every assignment to one function-typed variable
// across the whole module.
type funcBinding struct {
	count  int   // assignments seen (declarations with values included)
	target *Node // callee of the sole binding, when resolvable
	bad    bool  // address-taken, unresolvable RHS, or unpairable assign
}

// scanFuncBindings walks every node body once and records, for each
// function-typed variable, how many times it is assigned and what the
// assignment binds it to. The map is module-wide: a variable captured and
// reassigned inside a nested literal is charged its second binding even
// though the literal is a different graph node.
func (g *Graph) scanFuncBindings() map[*types.Var]*funcBinding {
	bindings := map[*types.Var]*funcBinding{}
	get := func(v *types.Var) *funcBinding {
		b := bindings[v]
		if b == nil {
			b = &funcBinding{}
			bindings[v] = b
		}
		return b
	}
	// lhsVar returns the function-typed variable an assignment target
	// names, or nil for blank, non-ident, or non-function targets.
	lhsVar := func(info *types.Info, e ast.Expr) *types.Var {
		id, ok := unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return nil
		}
		var v *types.Var
		if d, ok := info.Defs[id].(*types.Var); ok {
			v = d
		} else if u, ok := info.Uses[id].(*types.Var); ok {
			v = u
		}
		if v == nil {
			return nil
		}
		if _, ok := v.Type().Underlying().(*types.Signature); !ok {
			return nil
		}
		return v
	}
	for _, n := range g.Nodes {
		info := n.Pkg.Info
		// bindTarget resolves an assignment RHS to the single node it can
		// invoke as, or nil when the value's origin is not a direct
		// function reference (call results, conversions, other variables).
		bindTarget := func(rhs ast.Expr) *Node {
			switch rhs := unparen(rhs).(type) {
			case *ast.FuncLit:
				return g.byLit[rhs]
			case *ast.Ident:
				if fn, ok := info.Uses[rhs].(*types.Func); ok {
					return g.byFn[fn]
				}
			case *ast.SelectorExpr:
				if fn, ok := info.Uses[rhs.Sel].(*types.Func); ok {
					return g.byFn[fn] // pkg.Func or a bound method value
				}
			}
			return nil
		}
		record := func(lhs ast.Expr, rhs ast.Expr) {
			v := lhsVar(info, lhs)
			if v == nil {
				return
			}
			b := get(v)
			b.count++
			if rhs == nil {
				b.bad = true
				return
			}
			if t := bindTarget(rhs); t != nil {
				b.target = t
			} else {
				b.bad = true
			}
		}
		inspectShallow(n.body(), func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.AssignStmt:
				if len(x.Lhs) == len(x.Rhs) {
					for i := range x.Lhs {
						record(x.Lhs[i], x.Rhs[i])
					}
				} else { // f, err := mk(): origin is a call, not a reference
					for _, l := range x.Lhs {
						record(l, nil)
					}
				}
			case *ast.ValueSpec:
				if len(x.Names) == len(x.Values) {
					for i := range x.Names {
						record(x.Names[i], x.Values[i])
					}
				} else if len(x.Values) > 0 {
					for _, nm := range x.Names {
						record(nm, nil)
					}
				} // var f func() with no value binds nothing yet
			case *ast.RangeStmt:
				if x.Key != nil {
					record(x.Key, nil)
				}
				if x.Value != nil {
					record(x.Value, nil)
				}
			case *ast.UnaryExpr:
				if x.Op == token.AND {
					if v := lhsVar(info, x.X); v != nil {
						get(v).bad = true // writable through the pointer
					}
				}
			}
			return true
		})
	}
	return bindings
}

// resolveIndirect links every indirect call site to the address-taken
// functions and all literals whose signature matches, except sites pruned
// to a single callee by def-use analysis of their local variable.
func (g *Graph) resolveIndirect() {
	bindings := g.scanFuncBindings()
	// Index candidates by a canonical signature string; confirm with
	// types.Identical before linking.
	type cand struct {
		node *Node
		sig  *types.Signature
	}
	bySig := map[string][]cand{}
	add := func(node *Node, sig *types.Signature) {
		key := sigKey(sig)
		bySig[key] = append(bySig[key], cand{node, sig})
	}
	for _, n := range g.Nodes {
		if n.Lit != nil {
			if sig, ok := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature); ok {
				add(n, sig)
			}
			continue
		}
		if g.addrTaken[n.Fn] {
			add(n, n.Fn.Type().(*types.Signature))
		}
	}
	for _, site := range g.indirectSites {
		if site.local != nil {
			if b := bindings[site.local]; b != nil && b.count == 1 && !b.bad && b.target != nil {
				site.caller.Edges = append(site.caller.Edges,
					Edge{Callee: b.target, Site: site.site, Kind: "indirect"})
				continue
			}
		}
		for _, c := range bySig[sigKey(site.sig)] {
			if identicalSig(site.sig, c.sig) {
				site.caller.Edges = append(site.caller.Edges,
					Edge{Callee: c.node, Site: site.site, Kind: "indirect"})
			}
		}
	}
}

// resolveIface links interface method calls to every module method with the
// name and signature whose receiver type implements the interface.
func (g *Graph) resolveIface() {
	for _, site := range g.ifaceSites {
		for _, named := range g.namedTypes {
			var recv types.Type = named
			if !types.Implements(recv, site.iface) {
				recv = types.NewPointer(named)
				if !types.Implements(recv, site.iface) {
					continue
				}
			}
			obj, _, _ := types.LookupFieldOrMethod(recv, true, named.Obj().Pkg(), site.name)
			m, ok := obj.(*types.Func)
			if !ok {
				continue
			}
			if !identicalSig(m.Type().(*types.Signature), site.sig) {
				continue
			}
			g.staticEdge(site.caller, site.site, m)
		}
	}
}

// sigKey is a cheap canonical hash of a signature ignoring the receiver
// and all parameter/result names (types.TypeString prints names, and
// types.Identical ignores them — an indirect call through a bare
// `func(int) int` variable must land in the same bucket as a callee
// declared `func(x int) int`); collisions are resolved by identicalSig.
func sigKey(sig *types.Signature) string {
	clean := types.NewSignatureType(nil, nil, nil,
		unnamedTuple(sig.Params()), unnamedTuple(sig.Results()), sig.Variadic())
	return types.TypeString(clean, func(p *types.Package) string { return p.Path() })
}

func unnamedTuple(t *types.Tuple) *types.Tuple {
	vars := make([]*types.Var, t.Len())
	for i := 0; i < t.Len(); i++ {
		vars[i] = types.NewVar(token.NoPos, nil, "", t.At(i).Type())
	}
	return types.NewTuple(vars...)
}

func identicalSig(a, b *types.Signature) bool {
	ac := types.NewSignatureType(nil, nil, nil, a.Params(), a.Results(), a.Variadic())
	bc := types.NewSignatureType(nil, nil, nil, b.Params(), b.Results(), b.Variadic())
	return types.Identical(ac, bc)
}

// ---- roots ----

// markRoots identifies the analysis entry points: the functions the runtime
// invokes as events rather than through ordinary calls.
func (g *Graph) markRoots(excludeRoots []string) {
	for _, n := range g.Nodes {
		if hasPrefix(n.Pkg.Path, excludeRoots) {
			continue
		}
		switch {
		case n.Fn != nil && isPupMethod(n.Fn):
			n.Root = RootPup
		case n.Fn != nil && isInitFunc(n.Fn):
			// Like a package-level var initializer, an init body runs
			// before any event and taints every run of the program.
			n.Root = RootInit
		case g.takenOrLit(n):
			sig := g.nodeSig(n)
			if sig == nil {
				continue
			}
			switch {
			case isHandlerSig(sig):
				n.Root = RootEntry
			case isPEHandlerSig(sig):
				n.Root = RootPEH
			case isBootSig(sig):
				n.Root = RootBoot
			case isPhaseFnSig(sig) || isCommitFnSig(sig):
				n.Root = RootEventFn
			}
		}
	}
	// Call-site roots: closures handed to Ctx.Defer (commit closures) and
	// to the engine's scheduling calls run as events later; mark them even
	// when their shapes match nothing above.
	for _, n := range g.Nodes {
		if hasPrefix(n.Pkg.Path, excludeRoots) {
			continue
		}
		inspectShallow(n.body(), func(x ast.Node) bool {
			call, ok := x.(*ast.CallExpr)
			if !ok {
				return true
			}
			kind, ok := scheduleCallKind(n.Pkg.Info, call)
			if !ok {
				return true
			}
			for _, arg := range call.Args {
				g.markFuncArg(n, arg, kind)
			}
			return true
		})
	}
}

func (g *Graph) markFuncArg(n *Node, arg ast.Expr, kind RootKind) {
	switch arg := unparen(arg).(type) {
	case *ast.FuncLit:
		if child := g.byLit[arg]; child != nil && child.Root == "" {
			child.Root = kind
		}
	case *ast.Ident:
		if fn, ok := n.Pkg.Info.Uses[arg].(*types.Func); ok {
			if t := g.byFn[fn]; t != nil && t.Root == "" {
				t.Root = kind
			}
		}
	case *ast.SelectorExpr:
		if fn, ok := n.Pkg.Info.Uses[arg.Sel].(*types.Func); ok {
			if t := g.byFn[fn]; t != nil && t.Root == "" {
				t.Root = kind
			}
		}
	}
}

// scheduleCallKind reports whether call schedules its function-valued
// arguments to run later as events: Ctx.Defer/emit (commit closures) and
// the engine's At/After family (timer and event bodies).
func scheduleCallKind(info *types.Info, call *ast.CallExpr) (RootKind, bool) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	recv := info.TypeOf(sel.X)
	if recv == nil {
		return "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Defer", "emit":
		if isCtxPtr(recv) {
			return RootCommit, true
		}
	case "At", "After", "AtShard", "AtShardFn", "AtShardCommit", "RunAt":
		if typeInPkgNamed(recv, "des", "parsim") {
			return RootSchedule, true
		}
	case "ExecuteOnPE", "atEpoch", "AtEpoch":
		if typeInPkgNamed(recv, "charm") {
			return RootSchedule, true
		}
	}
	return "", false
}

func (g *Graph) takenOrLit(n *Node) bool {
	return n.Lit != nil || g.addrTaken[n.Fn]
}

func (g *Graph) nodeSig(n *Node) *types.Signature {
	if n.Fn != nil {
		return n.Fn.Type().(*types.Signature)
	}
	sig, _ := n.Pkg.Info.TypeOf(n.Lit).(*types.Signature)
	return sig
}

// Roots returns the graph's roots in deterministic order.
func (g *Graph) Roots() []*Node {
	var roots []*Node
	for _, n := range g.Nodes {
		if n.Root != "" {
			roots = append(roots, n)
		}
	}
	return roots
}

// ---- shape predicates ----

// isCtxPtr reports whether t is *Ctx for a type named Ctx declared in a
// package named charm (name-based like pupcheck's *pup.Pup test, so both
// the real runtime and analyzer fixtures qualify).
func isCtxPtr(t types.Type) bool { return isPtrToNamed(t, "charm", "Ctx") }

func isPtrToNamed(t types.Type, pkgName, typeName string) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == typeName && obj.Pkg() != nil && obj.Pkg().Name() == pkgName
}

// typeInPkgNamed reports whether t (or its pointee) is a named type (or
// interface) declared in a package with one of the given names.
func typeInPkgNamed(t types.Type, pkgNames ...string) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	for _, n := range pkgNames {
		if pkg.Name() == n {
			return true
		}
	}
	return false
}

func isEmptyIface(t types.Type) bool {
	iface, ok := t.Underlying().(*types.Interface)
	return ok && iface.Empty()
}

// isHandlerSig matches charm.Handler: func(obj Chare, ctx *Ctx, msg any).
func isHandlerSig(sig *types.Signature) bool {
	p := sig.Params()
	return p.Len() == 3 && sig.Results().Len() == 0 &&
		isCtxPtr(p.At(1).Type()) && isEmptyIface(p.At(2).Type())
}

// isPEHandlerSig matches charm.PEHandler: func(ctx *Ctx, msg any).
func isPEHandlerSig(sig *types.Signature) bool {
	p := sig.Params()
	return p.Len() == 2 && sig.Results().Len() == 0 &&
		isCtxPtr(p.At(0).Type()) && isEmptyIface(p.At(1).Type())
}

// isBootSig matches the Boot / ExecuteOnPE callback: func(ctx *Ctx).
func isBootSig(sig *types.Signature) bool {
	p := sig.Params()
	return p.Len() == 1 && sig.Results().Len() == 0 && isCtxPtr(p.At(0).Type())
}

func isDesTime(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil && obj.Pkg().Name() == "des"
}

// desFnParams matches the shared prefix of des.PhaseFn and des.CommitFn:
// (a any, b int64, at des.Time).
func desFnParams(sig *types.Signature) bool {
	p := sig.Params()
	if p.Len() != 3 || !isEmptyIface(p.At(0).Type()) || !isDesTime(p.At(2).Type()) {
		return false
	}
	basic, ok := p.At(1).Type().(*types.Basic)
	return ok && basic.Kind() == types.Int64
}

// isPhaseFnSig matches des.PhaseFn: func(any, int64, des.Time) func().
func isPhaseFnSig(sig *types.Signature) bool {
	if !desFnParams(sig) || sig.Results().Len() != 1 {
		return false
	}
	rsig, ok := sig.Results().At(0).Type().Underlying().(*types.Signature)
	return ok && rsig.Params().Len() == 0 && rsig.Results().Len() == 0
}

// isCommitFnSig matches des.CommitFn: func(any, int64, des.Time).
func isCommitFnSig(sig *types.Signature) bool {
	return desFnParams(sig) && sig.Results().Len() == 0
}

// isPupMethod matches the PupCheck shape: method Pup(*pup.Pup).
// isInitFunc reports whether fn is a package init function (no receiver,
// niladic, named init — unreferenceable by user code, run at load).
func isInitFunc(fn *types.Func) bool {
	if fn.Name() != "init" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() == nil && sig.Params().Len() == 0 && sig.Results().Len() == 0
}

func isPupMethod(fn *types.Func) bool {
	sig := fn.Type().(*types.Signature)
	if sig.Recv() == nil || fn.Name() != "Pup" {
		return false
	}
	return sig.Params().Len() == 1 && isPtrToNamed(sig.Params().At(0).Type(), "pup", "Pup")
}

// ---- helpers ----

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// shortFuncName trims the module prefix from a function's full name:
// "(charmgo/internal/apps/pdes.*App).onEvent" -> "(pdes.*App).onEvent".
func shortFuncName(fn *types.Func) string {
	name := fn.FullName()
	return strings.NewReplacer("charmgo/internal/apps/", "", "charmgo/internal/", "", "charmgo/", "").Replace(name)
}

func shortPos(fset *token.FileSet, pos token.Pos) string {
	p := fset.Position(pos)
	return fmt.Sprintf("%d:%d", p.Line, p.Column)
}
