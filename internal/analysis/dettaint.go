package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DetTaint flags nondeterminism sources on call paths the runtime actually
// executes as events. A source is one of:
//
//   - a wall-clock read (time.Now, time.Since, timers): results would
//     depend on host speed and scheduling instead of virtual time
//
//   - a draw from the global math/rand source: process-wide unseeded
//     state, so two runs with the same Config.Seed diverge
//
//   - a keyed range over a map: iteration order is randomized by the Go
//     runtime, so event order inherits the iteration seed
//
//   - a select statement: resolves races between goroutines, importing
//     the host scheduler as an ordering source
//
//   - a go statement: spawns work the virtual clock does not order
//
// Unlike the v1 walltime/detmap/nospawn analyzers, which checked
// hand-curated "critical package" lists intra-procedurally, dettaint walks
// the module call graph: a source is reported iff its enclosing function
// is reachable from an entry method, PE handler, boot function, commit
// closure, engine event body, or Pup method — however many helper calls
// deep — and every finding carries the root→sink call chain. Code only
// ever run from main() setup or test harnesses is exempt by construction.
//
// Two map-range shapes pass without a waiver, as before: a range with no
// iteration variables (only the count is observed) and the collect-then-
// sort idiom (a body of `x = append(x, ...)` statements where every x is
// later passed to a sort or slices call in the same function).
//
// Waivers: //charmvet:wallclock (clock/rand), //charmvet:ordered (map
// range), //charmvet:spawn (go/select). The parallel engine's worker
// spawns carry //charmvet:parsim, honored only inside parsim packages so
// the engine's license cannot be borrowed by runtime or app code. The
// observability layer's wall-clock reads carry //charmvet:telemetry,
// honored only inside telemetry packages — and even there a waived read
// whose value flows into simulated time (a des.Time-typed expression) is
// still reported: wall stamps must stay side-band.
var DetTaint = &Analyzer{
	Name: "dettaint",
	Doc:  "flags nondeterminism sources reachable from runtime event entry points",
	Run:  runDetTaint,
}

// wallClockFuncs are the package-level time functions that read or depend
// on the machine's real clock.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// globalRandExempt are the math/rand package-level functions that only
// construct explicitly-seeded generators — the idiom determinism requires
// (e.g. rand.New(rand.NewSource(seed)) as in lb.go's WorkStealing).
var globalRandExempt = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
}

func runDetTaint(pass *Pass) {
	g := pass.Graph
	reach := g.Reach()
	parsimPkg := pass.Path == "charmgo/internal/parsim" ||
		strings.HasPrefix(pass.Path, "charmgo/internal/parsim/") ||
		strings.HasSuffix(pass.Path, "/parsim") // fixture package for the waiver tests
	telemetryPkg := pass.Path == "charmgo/internal/telemetry" ||
		strings.HasPrefix(pass.Path, "charmgo/internal/telemetry/") ||
		strings.HasSuffix(pass.Path, "/telemetry") // fixture package for the waiver tests

	for _, n := range pass.pkgNodes() {
		if _, ok := reach[n]; !ok {
			continue
		}
		chain := g.Chain(reach, n)
		inspectShallow(n.body(), func(x ast.Node) bool {
			switch x := x.(type) {
			case *ast.CallExpr:
				pass.checkSourceCall(x, chain, telemetryPkg, n.Body)
			case *ast.RangeStmt:
				pass.checkMapRange(x, n.enclosingBlock(), chain)
			case *ast.GoStmt:
				pass.checkGo(x, chain, parsimPkg)
			case *ast.SelectStmt:
				if !pass.Waived(WaiverSpawn, x.Pos()) {
					pass.ReportChainf(x.Pos(), chain, "select depends on goroutine scheduling on an event path; use the event engine or annotate //charmvet:spawn%s", chainSuffix(chain))
				}
			}
			return true
		})
	}

	// Package-level variable initializers run unconditionally at program
	// start, before any event; a nondeterminism source there taints every
	// run regardless of reachability.
	initChain := []string{"package " + pass.Path + " [var initializer]"}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					ast.Inspect(v, func(x ast.Node) bool {
						if _, isLit := x.(*ast.FuncLit); isLit {
							return false // literal bodies are graph nodes
						}
						if call, ok := x.(*ast.CallExpr); ok {
							pass.checkSourceCall(call, initChain, telemetryPkg, nil)
						}
						return true
					})
				}
			}
		}
	}
}

// enclosingBlock returns the block the collect-then-sort idiom searches
// for the later sort call: the node's own body.
func (n *Node) enclosingBlock() *ast.BlockStmt { return n.Body }

// checkSourceCall flags wall-clock and global-rand calls. telemetryPkg and
// body scope the //charmvet:telemetry waiver: the waiver is honored only
// inside telemetry packages, and only when the read's value stays out of
// des.Time-typed expressions in the enclosing function (body is nil for
// package-level initializers, where no flow check applies).
func (p *Pass) checkSourceCall(call *ast.CallExpr, chain []string, telemetryPkg bool, body *ast.BlockStmt) {
	sel, ok := unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return
	}
	pkgPath, ok := p.packageOf(sel.X)
	if !ok {
		return
	}
	name := sel.Sel.Name
	switch {
	case pkgPath == "time" && wallClockFuncs[name]:
		if p.Waived(WaiverWallclock, call.Pos()) {
			return
		}
		if p.Waived(WaiverTelemetry, call.Pos()) {
			switch {
			case !telemetryPkg:
				p.ReportChainf(call.Pos(), chain, "charmvet:telemetry waiver is only honored inside the telemetry layer; time.%s reads the wall clock on an event path%s", name, chainSuffix(chain))
			case body != nil && p.flowsIntoSimTime(body, call):
				p.ReportChainf(call.Pos(), chain, "time.%s is waived by charmvet:telemetry but its value flows into simulated time (des.Time); wall stamps must stay side-band%s", name, chainSuffix(chain))
			}
			return
		}
		p.ReportChainf(call.Pos(), chain, "time.%s reads the wall clock on an event path; use virtual time (des.Engine) or annotate //charmvet:wallclock%s", name, chainSuffix(chain))
	case (pkgPath == "math/rand" || pkgPath == "math/rand/v2") && !globalRandExempt[name]:
		if !p.Waived(WaiverWallclock, call.Pos()) {
			p.ReportChainf(call.Pos(), chain, "rand.%s draws from the global math/rand source on an event path; use a seeded *rand.Rand (rand.New(rand.NewSource(seed))) or annotate //charmvet:wallclock%s", name, chainSuffix(chain))
		}
	}
}

func (p *Pass) checkGo(stmt *ast.GoStmt, chain []string, parsimPkg bool) {
	if p.Waived(WaiverSpawn, stmt.Pos()) {
		return
	}
	if p.Waived(WaiverParsim, stmt.Pos()) {
		if parsimPkg {
			return
		}
		p.ReportChainf(stmt.Pos(), chain, "charmvet:parsim waiver is only honored inside the parsim engine; go statement spawns a goroutine on an event path%s", chainSuffix(chain))
		return
	}
	p.ReportChainf(stmt.Pos(), chain, "go statement spawns a goroutine on an event path; schedule an event instead or annotate //charmvet:spawn%s", chainSuffix(chain))
}

func (p *Pass) checkMapRange(rng *ast.RangeStmt, enclosing *ast.BlockStmt, chain []string) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if rng.Key == nil && rng.Value == nil {
		return // only the iteration count is observed
	}
	if p.Waived(WaiverOrdered, rng.Pos()) {
		return
	}
	if collected := appendTargets(rng.Body); len(collected) > 0 {
		if allSortedLater(enclosing, rng, collected) {
			return
		}
	}
	p.ReportChainf(rng.Pos(), chain, "iteration over map %s has nondeterministic order on an event path; sort the keys first or annotate //charmvet:ordered%s",
		types.ExprString(rng.X), chainSuffix(chain))
}

// appendTargets returns the printed left-hand sides when every statement in
// body is an append of the form `x = append(x, ...)`; otherwise nil.
func appendTargets(body *ast.BlockStmt) []string {
	if len(body.List) == 0 {
		return nil
	}
	var targets []string
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return nil
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			return nil
		}
		lhs := types.ExprString(as.Lhs[0])
		if types.ExprString(call.Args[0]) != lhs {
			return nil
		}
		targets = append(targets, lhs)
	}
	return targets
}

// allSortedLater reports whether every target is the first argument of a
// sort.* or slices.* call after the range statement within body.
func allSortedLater(body *ast.BlockStmt, rng *ast.RangeStmt, targets []string) bool {
	if body == nil {
		return false
	}
	sorted := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		sorted[types.ExprString(call.Args[0])] = true
		return true
	})
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}

// flowsIntoSimTime reports whether call's result is used inside an
// expression of simulated-time type: any enclosing expression typed
// des.Time means the wall value reached simulation state (Go requires an
// explicit conversion to cross into des.Time, so every such flow surfaces
// as a des.Time-typed ancestor — a conversion, an arithmetic expression
// over one, or a des.Time-taking call's argument conversion).
func (p *Pass) flowsIntoSimTime(body *ast.BlockStmt, call *ast.CallExpr) bool {
	var stack []ast.Node
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		if n == ast.Node(call) {
			for _, anc := range stack {
				if e, ok := anc.(ast.Expr); ok && isSimTime(p.TypeOf(e)) {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isSimTime reports whether t is des.Time (matched by name and package
// suffix so the check holds for the module's des package wherever the
// module root sits).
func isSimTime(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Time" && obj.Pkg() != nil &&
		strings.HasSuffix(obj.Pkg().Path(), "internal/des")
}

// packageOf resolves e to an imported package's path when e names a
// package (handling import renames via the type checker).
func (p *Pass) packageOf(e ast.Expr) (string, bool) {
	id, ok := e.(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := p.Info.Uses[id]
	pn, ok := obj.(*types.PkgName)
	if !ok {
		return "", false
	}
	return pn.Imported().Path(), true
}
