// Package poolcheck is a charmvet test fixture. Each `// want` comment
// marks an expected poolcheck finding on its line; the package is excluded
// from the real suite and exists only for the analyzer unit tests.
package poolcheck

import "sync"

type msg struct {
	payload any
	seq     uint64
}

var pool = sync.Pool{New: func() any { return new(msg) }}

func getMsg() *msg { return pool.Get().(*msg) }

func putMsg(m *msg) {
	*m = msg{}
	pool.Put(m)
}

// UseAfterPut reads a message after releasing it: the pool may already
// have handed it to another acquire.
func UseAfterPut() uint64 {
	m := getMsg()
	m.seq = 7
	putMsg(m)
	return m.seq // want `used after being released`
}

// UseAfterPoolPut releases through sync.Pool.Put directly.
func UseAfterPoolPut() any {
	m := getMsg()
	pool.Put(m)
	return m.payload // want `used after being released`
}

// WriteAfterPut corrupts whatever execution holds the recycled object.
func WriteAfterPut() {
	m := getMsg()
	putMsg(m)
	m.payload = "stale" // want `used after being released`
}

// RetainedInClosure captures the released message in a function that runs
// later, which is the long-lived form of the same bug.
func RetainedInClosure() func() uint64 {
	m := getMsg()
	putMsg(m)
	return func() uint64 { return m.seq } // want `used after being released`
}

// Reassigned rebinds the variable to a fresh acquire after the release:
// the new object is live, so no finding.
func Reassigned() uint64 {
	m := getMsg()
	putMsg(m)
	m = getMsg()
	defer putMsg(m)
	return m.seq
}

// DeferredPut releases at function exit; uses before then are fine.
func DeferredPut() uint64 {
	m := getMsg()
	defer putMsg(m)
	m.seq = 3
	return m.seq
}

// BranchRelease releases inside an if body; statements after the branch in
// the outer block are not flagged (the analyzer is per-block on purpose —
// the release may not have run).
func BranchRelease(drop bool) uint64 {
	m := getMsg()
	if drop {
		putMsg(m)
		return 0
	}
	s := m.seq
	putMsg(m)
	return s
}

// Waived documents a deliberate post-release read.
func Waived() uint64 {
	m := getMsg()
	putMsg(m)
	//charmvet:pooled
	return m.seq
}

// ValueRelease releases a non-pointer: it cannot alias pool storage, so
// later use is fine.
func ValueRelease() int {
	n := 4
	freeSlot(n)
	return n
}

func freeSlot(int) {}
