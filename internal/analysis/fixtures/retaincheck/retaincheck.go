// Package retaincheck is a charmvet test fixture. Each `// want` comment
// marks an expected retaincheck finding on its line; the package is
// excluded from the real suite and exists only for the analyzer unit
// tests. The pooled type under test is the real *charm.Ctx — valid only
// for the delivery it was issued for, recycled immediately after.
package retaincheck

import "charmgo/internal/charm"

type keeper struct {
	ctx *charm.Ctx
	n   int
}

var leakedCtx *charm.Ctx

var allCtx []*charm.Ctx

type pair struct {
	c *charm.Ctx
}

func use(fns ...any) {}

func register() { use(onKeep, onOK) }

func onKeep(obj any, ctx *charm.Ctx, msg any) {
	k := obj.(*keeper)
	k.ctx = ctx // want `ctx stored into k.ctx`

	leakedCtx = ctx // want `stored into leakedCtx`

	allCtx = append(allCtx, ctx) // want `appended to a slice`

	_ = pair{c: ctx} // want `placed in a composite literal`

	later(func() { touch(ctx) }) // want `captured by a closure passed to later`
}

func later(f func()) {}

func touch(ctx *charm.Ctx) {}

func onOK(obj any, ctx *charm.Ctx, msg any) {
	// Passing the Ctx on keeps it within the delivery; method calls on it
	// are its whole point.
	touch(ctx)
	_ = ctx.MyPE()

	// Defer closures run and are dropped before the runtime recycles the
	// Ctx, so capturing it there is sanctioned.
	ctx.Defer(func() { touch(ctx) })

	// A deliberate retention site carries the waiver.
	//charmvet:retain (fixture: deliberate)
	leakedCtx = ctx
}
