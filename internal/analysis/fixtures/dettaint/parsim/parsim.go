// Package parsim is a charmvet test fixture for the //charmvet:parsim
// waiver: its import path ends in /parsim, so the waiver is honored here
// exactly as it is in the real engine package. The unwaived spawn still
// gets a finding, proving the waiver covers only annotated lines.
package parsim

import "charmgo/internal/charm"

func use(fns ...any) {}

func register() { use(onWork) }

func onWork(obj any, ctx *charm.Ctx, msg any) {
	launchWorkers()
}

// launchWorkers mirrors the engine's phase-worker launch: the waiver is
// honored because this is a parsim package.
func launchWorkers() {
	//charmvet:parsim (phase workers execute provably independent events)
	go func() {}()

	go func() {}() // want `go statement`
}
