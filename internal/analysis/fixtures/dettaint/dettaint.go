// Package dettaint is a charmvet test fixture. Each `// want` comment
// marks an expected dettaint finding on its line; the package is excluded
// from the real suite (see analysis.DefaultSuite) and exists only for the
// analyzer unit tests.
//
// Unlike the v1 fixtures, every positive case here must be *reachable*
// from a runtime entry point — dettaint follows the call graph, so a
// nondeterminism source in a function nobody schedules is deliberately not
// flagged (see orphan below). The import rename on time checks that the
// analyzer resolves packages through the type checker rather than by
// identifier spelling.
package dettaint

import (
	"math/rand"
	"sort"
	stdtime "time"

	"charmgo/internal/analysis/fixtures/dettaint/util"
	"charmgo/internal/charm"
	"charmgo/internal/pup"
)

// bootClock runs at program start, before any event: initializer sources
// taint every run regardless of reachability.
var bootClock = stdtime.Now() // want `time.Now`

// use stands in for the apps' []charm.Handler composite literals: any use
// of a function as a value makes it address-taken, which is what marks a
// handler-shaped function as an entry-method root.
func use(fns ...any) {}

func register() {
	use(onTick, onMerge, onSpawn, onRecover)
}

// onTick's own body is source-free: the wall-clock read hides two calls
// down, across a package boundary, where an intra-procedural file scan
// cannot see it (the want mark lives in util/util.go).
func onTick(obj any, ctx *charm.Ctx, msg any) {
	util.StepA()
}

func onMerge(obj any, ctx *charm.Ctx, msg any) {
	var t stdtime.Time
	_ = stdtime.Since(t) // want `time.Since`
	_ = rand.Intn(10)    // want `rand.Intn`

	// The explicitly seeded generator idiom; methods on a *rand.Rand are
	// not package-level calls and are not flagged.
	rng := rand.New(rand.NewSource(7))
	_ = rng.Float64()

	_ = stdtime.Now() //charmvet:wallclock (fixture: deliberate)

	m := map[int]float64{}
	for k, v := range m { // want `iteration over map m`
		if v > 0 {
			_ = k
		}
	}

	// Only the iteration count is observed: allowed.
	n := 0
	for range m {
		n++
	}

	// The collect-then-sort idiom: allowed without a waiver.
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)

	//charmvet:ordered (fixture: order-insensitive)
	for k := range m {
		_ = k
	}
}

func onSpawn(obj any, ctx *charm.Ctx, msg any) {
	go spin() // want `go statement`

	a, b := make(chan int), make(chan int)
	select { // want `select depends on goroutine scheduling`
	case <-a:
	case <-b:
	}

	//charmvet:spawn (fixture: real-I/O bridge)
	go spin()

	//charmvet:parsim (not honored here)
	go spin() // want `charmvet:parsim waiver is only honored inside the parsim engine`

	//charmvet:telemetry (not honored here: this is app code, not the telemetry layer)
	_ = stdtime.Now() // want `charmvet:telemetry waiver is only honored inside the telemetry layer`
}

func spin() {}

// onRecover models a recovery-under-failure retry loop (the internal/chaos
// controller: a nested failure detection restarts the restore against
// surviving replicas, capped by a budget). The deterministic form counts
// restarts against the fixed budget and paces attempts purely in virtual
// time; the flagged forms pace them by host wall clock, which would make
// the recovery schedule — and with it the rollback depth every surviving
// PE observes — differ run to run.
func onRecover(obj any, ctx *charm.Ctx, msg any) {
	const budget = 4

	// Deterministic retry: attempt counter against a fixed budget, virtual
	// deadline computed from ctx.Now. No findings.
	for attempt := 0; attempt < budget; attempt++ {
		if restoreOnce(attempt) {
			break
		}
		_ = ctx.Now()
	}

	// Wall-clock-paced retry: both the deadline read and the backoff sleep
	// taint the loop.
	deadline := stdtime.Now() // want `time.Now`
	for attempt := 0; attempt < budget; attempt++ {
		if restoreOnce(attempt) {
			break
		}
		if stdtime.Since(deadline) > stdtime.Millisecond { // want `time.Since`
			break
		}
		stdtime.Sleep(stdtime.Microsecond) // want `time.Sleep`
	}

	// Retrying against a randomly permuted replica order: the holder an
	// attempt restores from must be the deterministic nearest-live choice,
	// not a shuffle.
	order := []int{0, 1, 2}
	rand.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] }) // want `rand.Shuffle`
	for _, h := range order {
		if restoreOnce(h) {
			break
		}
	}
}

func restoreOnce(attempt int) bool { return attempt > 1 }

// seedOrder is reachable only from init: like a package-level var
// initializer, an init body runs before any event and taints every run,
// so init functions root the analysis.
var table = map[int]int{}

func init() { seedOrder() }

func seedOrder() {
	for k := range table { // want `iteration over map table`
		_ = k
	}
}

// orphan is never scheduled and never address-taken: its wall-clock read
// is dead code as far as the runtime is concerned, and the v2 analyzer —
// unlike a package-scoped scan — must stay silent about it.
func orphan() stdtime.Time {
	return stdtime.Now()
}

// deferHelper is itself unreachable, but the closure it hands to
// ctx.Defer is a commit closure — the runtime runs those at commit time,
// so they root the analysis on their own.
func deferHelper(ctx *charm.Ctx) {
	ctx.Defer(func() {
		_ = stdtime.Now() // want `time.Now`
	})
}

// snap's Pup method runs during migration and checkpointing; map order
// there corrupts the byte stream.
type snap struct {
	m map[int]int
}

func (s *snap) Pup(p *pup.Pup) {
	for k, v := range s.m { // want `iteration over map s.m`
		_ = k
		_ = v
	}
}
