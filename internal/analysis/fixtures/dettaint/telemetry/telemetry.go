// Package telemetry is a charmvet test fixture for the
// //charmvet:telemetry waiver: its import path ends in /telemetry, so the
// waiver is honored here exactly as it is in the real observability layer.
// Three cases pin the waiver's contract: a waived side-band read passes, a
// waived read whose value flows into simulated time (des.Time) is still a
// finding, and an unwaived read is a plain wall-clock finding — the waiver
// covers only annotated lines, and only values that stay side-band.
package telemetry

import (
	"time"

	"charmgo/internal/charm"
	"charmgo/internal/des"
)

func use(fns ...any) {}

func register() { use(onObserve) }

var base = time.Unix(0, 0)

// wallProfile is the legitimate shape: the stamp feeds a profile counter
// (an int64 side channel), never the simulation.
var profileNs int64

func onObserve(obj any, ctx *charm.Ctx, msg any) {
	//charmvet:telemetry (side-band profile stamp)
	profileNs += int64(time.Since(base))

	leakIntoSimTime(ctx)

	_ = time.Now() // want `time.Now reads the wall clock`
}

// leakIntoSimTime demonstrates the flow the waiver does NOT license: the
// waived wall-clock value is converted into des.Time — a wall stamp
// entering simulated time would make event order depend on host speed.
func leakIntoSimTime(ctx *charm.Ctx) des.Time {
	//charmvet:telemetry (waived, but the flow check still fires)
	d := des.Time(float64(time.Since(base).Nanoseconds()) * 1e-9) // want `flows into simulated time`
	return d
}
