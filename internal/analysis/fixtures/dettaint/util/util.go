// Package util holds the sink half of the dettaint deep-reachability
// fixture: StepB reads the wall clock, two calls below the entry method in
// the parent dettaint package and across a package boundary. The v1
// walltime analyzer scanned files intra-procedurally within hand-curated
// package lists, so this bug was invisible to it by construction; dettaint
// reports it with the full entry-method→sink chain.
// TestDettaintDeepWallclock asserts both halves.
package util

import stdtime "time"

func StepA() {
	stepB()
}

func stepB() {
	_ = stdtime.Now() // want `time.Now`
}
