// Package walltime is a charmvet test fixture. Each `// want` comment
// marks an expected walltime finding on its line; the package is excluded
// from the real suite and exists only for the analyzer unit tests. The
// import rename checks that the analyzer resolves packages through the
// type checker rather than by identifier spelling.
package walltime

import (
	"math/rand"
	stdtime "time"
)

// Bad reads the wall clock.
func Bad() stdtime.Time {
	return stdtime.Now() // want `time.Now`
}

// BadSince derives a wall-clock duration.
func BadSince(t stdtime.Time) stdtime.Duration {
	return stdtime.Since(t) // want `time.Since`
}

// BadGlobalRand draws from the unseeded process-wide source.
func BadGlobalRand() int {
	return rand.Intn(10) // want `rand.Intn`
}

// Good uses the explicitly seeded generator idiom; methods on a *rand.Rand
// are not package-level calls and are not flagged.
func Good(seed int64) float64 {
	rng := rand.New(rand.NewSource(seed))
	return rng.Float64()
}

// GoodWaived is a deliberate wall-clock read.
func GoodWaived() stdtime.Time {
	return stdtime.Now() //charmvet:wallclock (fixture: deliberate)
}

// BadEventStamp is the tracer mistake walltime exists to catch: stamping a
// trace event with the wall clock instead of virtual time, which would
// break byte-identity across backends (and across machines).
func BadEventStamp() int64 {
	return stdtime.Now().UnixNano() // want `time.Now`
}
