// Package indirect pins the call graph's def-use pruning of
// signature-indirect edges: a call through a local variable bound exactly
// once to a known function resolves to that one callee, while any
// reassignment, address-taking, parameter passing, or nested-literal
// rebinding falls back to the signature fan-out. The fixture has no want
// marks — callgraph_test.go asserts directly on the edges.
package indirect

func targetA(x int) int { return x + 1 }
func targetB(x int) int { return x * 2 }

// table makes both targets address-taken, so they are candidates for
// every indirect site with their signature.
var table = []func(int) int{targetA, targetB}

// Use reports the table so the fixture has no unused declarations.
func Use() int { return table[0](0) + table[1](0) }

// prunedLocalLit: one binding, a literal — the call must resolve to that
// literal alone, not to targetA/targetB or any other func(int) int.
func prunedLocalLit() int {
	run := func(x int) int { return x + 3 }
	return run(1)
}

// prunedLocalRef: one binding, a declared function — single edge to
// targetA, none to targetB.
func prunedLocalRef() int {
	f := targetA
	return f(1)
}

// prunedCaptured: the sole binding is in the enclosing function and the
// call is inside a nested literal; capture without rebinding still prunes.
func prunedCaptured() func() int {
	f := targetA
	return func() int { return f(4) }
}

// reassigned: two bindings — signature fan-out to both targets.
func reassigned(cond bool) int {
	f := targetA
	if cond {
		f = targetB
	}
	return f(1)
}

// nestedReassign: the second binding hides inside a nested literal; the
// module-wide binding scan must still see it and keep the fan-out.
func nestedReassign() int {
	f := targetA
	swap := func() { f = targetB }
	swap()
	return f(5)
}

// addressTaken: &f makes the variable writable through a pointer, so the
// single visible binding proves nothing.
func addressTaken() int {
	f := targetA
	p := &f
	_ = p
	return f(1)
}

// viaParam: parameters have no visible binding at all — fan-out.
func viaParam(f func(int) int) int { return f(2) }

// fromCall: bound once, but from a call result the graph cannot name.
func fromCall() int {
	f := pick()
	return f(3)
}

func pick() func(int) int { return targetB }
