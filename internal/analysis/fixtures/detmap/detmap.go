// Package detmap is a charmvet test fixture. Each `// want` comment marks
// an expected detmap finding on its line; the package is excluded from the
// real suite (see analysis.DefaultSuite) and exists only to be loaded by
// the analyzer unit tests.
package detmap

import "sort"

// Bad ranges a map directly with an order-sensitive body.
func Bad(m map[int]float64) []int {
	var out []int
	for k, v := range m { // want `iteration over map m`
		if v > 0 {
			out = append(out, k)
		}
	}
	return out
}

// BadSum accumulates floats in map order: the bit-reproducibility bug.
func BadSum(m map[int]float64) float64 {
	s := 0.0
	for _, v := range m { // want `iteration over map m`
		s += v
	}
	return s
}

// BadCollectNoSort collects but never sorts, so consumers see map order.
func BadCollectNoSort(m map[int]float64) []int {
	var keys []int
	for k := range m { // want `iteration over map m`
		keys = append(keys, k)
	}
	return keys
}

// GoodCollect is the collect-then-sort idiom: allowed without a waiver.
func GoodCollect(m map[int]float64) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// GoodCount observes only the iteration count.
func GoodCount(m map[int]float64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// GoodWaived carries an explicit waiver.
func GoodWaived(m map[int]bool) int {
	n := 0
	//charmvet:ordered (order-insensitive integer count)
	for k := range m {
		if m[k] {
			n++
		}
	}
	return n
}

// GoodSlice ranges a slice, which iterates in index order.
func GoodSlice(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}
