// Package pupcheck is a charmvet test fixture. Each `// want` comment
// marks an expected pupcheck finding on its line; the package is excluded
// from the real suite and exists only for the analyzer unit tests.
package pupcheck

import "charmgo/internal/pup"

// good covers every field: two pupped, one explicitly skipped.
type good struct {
	A     int
	B     []float64
	cache map[int]int //pup:skip (rebuilt on demand)
}

func (g *good) Pup(p *pup.Pup) {
	p.Int(&g.A)
	p.Float64s(&g.B)
}

// bad silently drops Lost on migration.
type bad struct {
	A    int
	Lost float64
}

func (b *bad) Pup(p *pup.Pup) { // want `field Lost is not referenced in Pup`
	p.Int(&b.A)
}

// val has a value receiver; coverage is still checked.
type val struct {
	N       int
	Dropped string
}

func (v val) Pup(p *pup.Pup) { // want `field Dropped is not referenced in Pup`
	p.Int(&v.N)
}

// Pup is a decoy type: other's method below has the right shape but the
// parameter is not the framework's *pup.Pup, so it is ignored.
type Pup struct{}

type other struct{ X int }

func (o *other) Pup(p *Pup) {}

var _ = (&other{}).Pup
