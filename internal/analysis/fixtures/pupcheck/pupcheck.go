// Package pupcheck is a charmvet test fixture. Each `// want` comment
// marks an expected pupcheck finding on its line; the package is excluded
// from the real suite and exists only for the analyzer unit tests.
package pupcheck

import "charmgo/internal/pup"

// good covers every field: two pupped, one explicitly skipped.
type good struct {
	A     int
	B     []float64
	cache map[int]int //pup:skip (rebuilt on demand)
}

func (g *good) Pup(p *pup.Pup) {
	p.Int(&g.A)
	p.Float64s(&g.B)
}

// bad silently drops Lost on migration.
type bad struct {
	A    int
	Lost float64
}

func (b *bad) Pup(p *pup.Pup) { // want `field Lost is not referenced in Pup`
	p.Int(&b.A)
}

// val has a value receiver; coverage is still checked.
type val struct {
	N       int
	Dropped string
}

func (v val) Pup(p *pup.Pup) { // want `field Dropped is not referenced in Pup`
	p.Int(&v.N)
}

// Pup is a decoy type: other's method below has the right shape but the
// parameter is not the framework's *pup.Pup, so it is ignored.
type Pup struct{}

type other struct{ X int }

func (o *other) Pup(p *Pup) {}

var _ = (&other{}).Pup

// state is an embedded state struct: promoted selections (c.N) pup its
// fields one by one, so the checker descends and reports the forgotten
// sibling. Before the one-level descent this embedding got no field
// coverage at all — the promoted reference marked only the leaf.
type state struct {
	N    int
	Lost float64
}

type embChare struct {
	state
	A int
}

func (c *embChare) Pup(p *pup.Pup) { // want `field state.Lost is not referenced in Pup`
	p.Int(&c.A)
	p.Int(&c.N)
}

// inner has its own Pup; a wholesale delegation covers everything.
type inner struct {
	A, B int
}

func (i *inner) Pup(p *pup.Pup) {
	p.Int(&i.A)
	p.Int(&i.B)
}

type delegChare struct {
	Sub inner
	K   int
}

func (c *delegChare) Pup(p *pup.Pup) {
	c.Sub.Pup(p)
	p.Int(&c.K)
}

// partialChare pups its named sub-struct field by field but forgets B.
type partialChare struct {
	Sub2 inner
}

func (c *partialChare) Pup(p *pup.Pup) { // want `field Sub2.B is not referenced in Pup`
	p.Int(&c.Sub2.A)
}

// helpChare delegates by handing the sub-struct's address to a helper:
// terminal use, coverage is the helper's responsibility.
type helpChare struct {
	Sub3 inner
}

func (c *helpChare) Pup(p *pup.Pup) {
	pupInner(p, &c.Sub3)
}

func pupInner(p *pup.Pup, i *inner) {
	p.Int(&i.A)
	p.Int(&i.B)
}

// skipState shows //pup:skip is honored one level down too.
type skipState struct {
	N     int
	cache int //pup:skip (rebuilt on demand)
}

type skipChare struct {
	S skipState
}

func (c *skipChare) Pup(p *pup.Pup) {
	p.Int(&c.S.N)
}
