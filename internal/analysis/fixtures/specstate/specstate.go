// Package specstate is a charmvet test fixture. Each `// want` comment
// marks an expected specstate finding on its line; the package is
// excluded from the real suite and exists only for the analyzer unit
// tests. The rule: phase-side code must not write //pup:skip fields of a
// Pup-bearing type — on the optimistic backend a rollback unpacks the
// chare's PUP snapshot into a factory-fresh object, so a skip field comes
// back reset, not restored.
package specstate

import (
	"charmgo/internal/charm"
	"charmgo/internal/pup"
)

type cell struct {
	N      int64
	hits   int   //pup:skip (outstanding-reply counter: NOT rollback-safe)
	cache  []int //pup:skip (scratch: NOT rollback-safe)
	Pupped int64 // restored normally: the //pup:skip above must not bleed onto this line
	//charmvet:specstate (fixture: rebuild-on-demand memo; a factory reset only forces a recompute)
	memo int //pup:skip (rebuilt before every read)
	gen  int //pup:skip //charmvet:specstate (fixture: trailing shared-comment placement)
}

func (c *cell) Pup(p *pup.Pup) {
	p.Int64(&c.N)
	p.Int64(&c.Pupped)
}

func use(fns ...any) {}

func register() { use(onWrite, onHelper, onWaived, onCommit, onEvacuate) }

func onWrite(obj any, ctx *charm.Ctx, msg any) {
	c := obj.(*cell)

	// Pup'd state is snapshotted before the handler and restored on
	// rollback: the normal case, no finding.
	c.N++
	c.Pupped++

	c.hits++                     // want `speculative-phase write to non-pup'd field hits`
	c.cache = append(c.cache, 1) // want `speculative-phase write to non-pup'd field cache`
	c.cache[0] = 2               // want `speculative-phase write to non-pup'd field cache`
}

func onHelper(obj any, ctx *charm.Ctx, msg any) {
	scribble(obj.(*cell))
}

// scribble is one frame below the entry method; the finding carries the
// chain.
func scribble(c *cell) {
	c.hits = 0 // want `speculative-phase write to non-pup'd field hits`
}

func onWaived(obj any, ctx *charm.Ctx, msg any) {
	c := obj.(*cell)

	//charmvet:specstate (fixture: deliberate write-site waiver)
	c.hits = 0

	// memo and gen carry declaration-side exemptions (own-line-above and
	// trailing shared-comment placement): no finding anywhere.
	c.memo = 4
	c.gen++
}

func onCommit(obj any, ctx *charm.Ctx, msg any) {
	c := obj.(*cell)
	// A commit closure runs only for speculations that survive to their
	// pop, so a skip-field write there needs no undo: out of scope.
	ctx.Defer(func() { c.hits = 0 })
}

// orphanScribble is unreachable from any entry point: no finding.
func orphanScribble(c *cell) {
	c.hits = 7
}

// mover models a chare that reacts to a proactive evacuation (a PE whose
// failure was predicted is drained at a quiescent cut). The temptation is
// to stage departure bookkeeping in skip fields "because the element is
// leaving anyway" — but on the optimistic backend the evacuation notice
// itself can be speculative: a rollback re-runs the handler, and the
// staged scratch must come back exactly, so it either goes through Pup or
// stays local to the handler.
type mover struct {
	Packed  int64
	deparr  []byte //pup:skip (evacuation pack scratch: NOT rollback-safe)
	pending int    //pup:skip (un-acked departure count: NOT rollback-safe)
}

func (m *mover) Pup(p *pup.Pup) {
	p.Int64(&m.Packed)
}

func onEvacuate(obj any, ctx *charm.Ctx, msg any) {
	m := obj.(*mover)

	// Staging the departure in skip fields phase-side: both flagged.
	m.deparr = append(m.deparr, 1) // want `speculative-phase write to non-pup'd field deparr`
	m.pending++                    // want `speculative-phase write to non-pup'd field pending`

	// The safe forms: a handler-local buffer, and the Pup'd counter.
	local := make([]byte, 0, 8)
	local = append(local, 1)
	_ = local
	m.Packed++

	// Clearing the scratch at commit needs no undo: only surviving
	// speculations commit.
	ctx.Defer(func() { m.deparr = nil; m.pending = 0 })
}
