// Package phasepure is a charmvet test fixture. Each `// want` comment
// marks an expected phasepure finding on its line; the package is
// excluded from the real suite and exists only for the analyzer unit
// tests. Rule A: phase-side code must not write package-level variables
// (concurrent phase workers race on them). Rule B: commit closures must
// not read chare state (other events may have advanced it by commit
// time).
package phasepure

import "charmgo/internal/charm"

var counter int

var total int

var committed int

type lp struct {
	n int
}

func use(fns ...any) {}

func register() { use(onInc, onDefer, onWaived) }

func onInc(obj any, ctx *charm.Ctx, msg any) {
	counter++ // want `phase-side write to package-level variable counter`
	bump()
}

// bump is two frames below the entry method; the finding carries the
// chain.
func bump() {
	total = total + 1 // want `phase-side write to package-level variable total`
}

func onDefer(obj any, ctx *charm.Ctx, msg any) {
	l := obj.(*lp)

	// Writes to the chare's own state during the phase are the normal
	// case.
	l.n++

	// The sanctioned idiom: capture a value, defer the global effect.
	n := l.n
	ctx.Defer(func() { committed += n })

	ctx.Defer(func() { _ = l.n }) // want `commit closure reads chare state l`
}

func onWaived(obj any, ctx *charm.Ctx, msg any) {
	local := 0
	local++
	_ = local

	//charmvet:phase (fixture: deliberate)
	counter++
}

// orphanWrite is unreachable from any entry point: no finding.
func orphanWrite() {
	counter = 9
}
