// Package parsim is a charmvet test fixture for the //charmvet:parsim
// waiver: its import path ends in /parsim, so the waiver is honored here
// exactly as it is in the real engine package. The unwaived spawn still
// gets a finding, proving the waiver covers only annotated lines.
package parsim

// GoodWorkerSpawn mirrors the engine's phase-worker launch: the waiver is
// honored because this is a parsim package.
func GoodWorkerSpawn(worker func()) {
	//charmvet:parsim (phase workers execute provably independent events)
	go worker()
}

// BadUnwaivedSpawn has no waiver and is flagged even inside parsim.
func BadUnwaivedSpawn(fn func()) {
	go fn() // want `go statement`
}
