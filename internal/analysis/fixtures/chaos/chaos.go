// Package chaos is a charmvet test fixture mirroring the fault injector's
// seeded-RNG contract (internal/chaos): every random choice the injector
// makes — crash instants, victim PEs, per-message drop decisions — must be
// drawn from an explicitly seeded *rand.Rand, never the process-global
// source, or the same plan seed would stop reproducing the same fault
// schedule. Each `// want` comment marks an expected walltime finding; the
// package is excluded from the real suite and exists only for the analyzer
// unit tests.
package chaos

import "math/rand"

type fault struct {
	at float64
	pe int
}

// GoodPlan is the injector's idiom: one seeded source, derived from the
// plan seed alone, drives every choice in schedule order.
func GoodPlan(seed int64, n, numPEs int) []fault {
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	out := make([]fault, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fault{at: float64(i) + rng.Float64(), pe: 1 + rng.Intn(numPEs-1)})
	}
	return out
}

// BadPlan draws from the process-global source: two runs with the same
// nominal seed produce different schedules, so a failing campaign cannot
// be replayed.
func BadPlan(n, numPEs int) []fault {
	out := make([]fault, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, fault{
			at: float64(i) + rand.Float64(), // want `rand.Float64`
			pe: 1 + rand.Intn(numPEs-1),     // want `rand.Intn`
		})
	}
	return out
}

// BadDropDecision makes the per-message coin flip nondeterministic — the
// exact mistake that would let a chaos run diverge between backends.
func BadDropDecision(prob float64) bool {
	return rand.Float64() < prob // want `rand.Float64`
}
