// Package nospawn is a charmvet test fixture. Each `// want` comment marks
// an expected nospawn finding on its line; the package is excluded from
// the real suite and exists only for the analyzer unit tests.
package nospawn

// Bad spawns a goroutine: the host scheduler becomes an event source.
func Bad(fn func()) {
	go fn() // want `go statement`
}

// BadSelect races goroutines through channel readiness.
func BadSelect(a, b chan int) int {
	select { // want `select depends on goroutine scheduling`
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// GoodWaived is a deliberate bridge to real I/O.
func GoodWaived(fn func()) {
	//charmvet:spawn (fixture: real-I/O bridge)
	go fn()
}

// BadBorrowedParsimWaiver tries to borrow the parallel engine's waiver
// outside a parsim package; the waiver is scoped and must not apply.
func BadBorrowedParsimWaiver(fn func()) {
	//charmvet:parsim (not honored here)
	go fn() // want `charmvet:parsim waiver is only honored inside the parsim engine`
}

// Good hands the closure to the event engine instead of the Go scheduler.
func Good(schedule func(func())) {
	schedule(func() {})
}
