// Package projections is a charmvet test fixture shaped like the event
// tracer in charmgo/internal/projections: per-PE rings merged into one
// ordered log. Each `// want` comment marks an expected detmap finding —
// the exact class of bug that would silently break the tracer's
// cross-backend byte-identity guarantee. The package is excluded from the
// real suite and exists only for the analyzer unit tests.
package projections

import "sort"

// event is a trimmed-down trace record.
type event struct {
	ID uint64
	PE int
}

// BadMergeRings emits events in map order: the merged log would differ
// run to run even on one backend.
func BadMergeRings(rings map[int][]event) []event {
	var out []event
	for _, ring := range rings { // want `iteration over map rings`
		out = append(out, ring...)
	}
	return out
}

// BadProfile accumulates per-entry totals in map order; float addition is
// not associative, so the profile would not be bit-reproducible.
func BadProfile(times map[string]float64) float64 {
	total := 0.0
	for _, t := range times { // want `iteration over map times`
		total += t
	}
	return total
}

// GoodMergeRings is the tracer's actual idiom: collect, then order by the
// monotone event ID.
func GoodMergeRings(rings map[int][]event) []event {
	var out []event
	for _, ring := range rings {
		out = append(out, ring...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// GoodDistinctCount observes only the map's size, as the
// phase-parallelism bucketing does.
func GoodDistinctCount(shards map[int]bool) int {
	return len(shards)
}
