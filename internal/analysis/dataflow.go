package analysis

import (
	"fmt"
	"go/token"
	"strings"
)

// Reachability and chain reporting over the call graph.
//
// The interprocedural analyzers share one question: "is this function body
// reachable from an analysis root, and through which calls?" Reachability is
// a deterministic BFS from all roots at once, recording for every reached
// node the edge it was discovered through. Walking the parent pointers back
// yields the shortest entry-method→sink call chain for the finding message.
//
// The taint "lattice" is deliberately thin: each source kind (wall clock,
// map range, …) is detected in the body of one node, and a node is tainted
// iff it is reachable from a root — the powerset-of-kinds join collapses to
// per-kind reachability, computed once and shared.

// reachEdge records how a node was first reached: the predecessor node and
// the call site in the predecessor's body. Roots have from == nil.
type reachEdge struct {
	from *Node
	site token.Pos
	kind string
}

// bfs runs a deterministic breadth-first search from starts, following the
// graph's call edges, and returns the discovery-edge map. follow filters
// edges (nil follows all).
func (g *Graph) bfs(starts []*Node, follow func(from *Node, e Edge) bool) map[*Node]reachEdge {
	reach := make(map[*Node]reachEdge, len(g.Nodes))
	queue := make([]*Node, 0, len(starts))
	for _, s := range starts {
		if _, ok := reach[s]; ok {
			continue
		}
		reach[s] = reachEdge{}
		queue = append(queue, s)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		for _, e := range n.Edges {
			if follow != nil && !follow(n, e) {
				continue
			}
			if _, ok := reach[e.Callee]; ok {
				continue
			}
			reach[e.Callee] = reachEdge{from: n, site: e.Site, kind: e.Kind}
			queue = append(queue, e.Callee)
		}
	}
	return reach
}

// Reach computes (once) reachability from every root. The discovery order
// is deterministic: roots in node order, edges in body order.
func (g *Graph) Reach() map[*Node]reachEdge {
	if g.reach == nil {
		g.reach = g.bfs(g.Roots(), nil)
	}
	return g.reach
}

// Reachable reports whether n is reachable from any analysis root.
func (g *Graph) Reachable(n *Node) bool {
	_, ok := g.Reach()[n]
	return ok
}

// Chain returns the call chain from the discovering root to n, inclusive,
// as display names. The first element names the root and its kind, e.g.
// "(pdes.*App).onEvent [entry method]".
func (g *Graph) Chain(reach map[*Node]reachEdge, n *Node) []string {
	var rev []*Node
	for cur := n; ; {
		rev = append(rev, cur)
		e, ok := reach[cur]
		if !ok || e.from == nil {
			break
		}
		cur = e.from
	}
	chain := make([]string, 0, len(rev))
	for i := len(rev) - 1; i >= 0; i-- {
		name := rev[i].Name
		if i == len(rev)-1 && rev[i].Root != "" {
			name = fmt.Sprintf("%s [%s]", name, rev[i].Root)
		}
		chain = append(chain, name)
	}
	return chain
}

// chainSuffix renders a chain for inline finding messages: nothing when the
// sink is itself the root, otherwise " (via root -> ... -> sink)".
func chainSuffix(chain []string) string {
	if len(chain) <= 1 {
		return ""
	}
	return " (via " + strings.Join(chain, " -> ") + ")"
}

// PhaseReach computes (once) reachability restricted to phase-side code:
// starting from entry-method and PE-handler roots only, never entering the
// runtime packages (charm/des/parsim — the engine's own bookkeeping is not
// application phase code) and never crossing into commit/schedule closures,
// which run at commit time rather than during the phase.
func (g *Graph) PhaseReach() map[*Node]reachEdge {
	if g.phaseReach != nil {
		return g.phaseReach
	}
	var starts []*Node
	for _, n := range g.Nodes {
		if (n.Root == RootEntry || n.Root == RootPEH) && !isRuntimePkg(n.Pkg.Path) {
			starts = append(starts, n)
		}
	}
	g.phaseReach = g.bfs(starts, func(_ *Node, e Edge) bool {
		c := e.Callee
		if c.Root == RootCommit || c.Root == RootSchedule {
			return false
		}
		return !isRuntimePkg(c.Pkg.Path)
	})
	return g.phaseReach
}

// isRuntimePkg reports whether path is one of the runtime's own packages,
// whose internals are exempt from the phase-purity discipline (they *are*
// the mechanism that discipline exists to protect).
func isRuntimePkg(path string) bool {
	for _, p := range []string{
		"charmgo/internal/charm",
		"charmgo/internal/des",
		"charmgo/internal/parsim",
	} {
		if path == p || strings.HasPrefix(path, p+"/") {
			return true
		}
	}
	return false
}
