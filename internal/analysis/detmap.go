package analysis

import (
	"go/ast"
	"go/types"
)

// DetMap flags `range` over a map in determinism-critical packages. Map
// iteration order is randomized by the Go runtime, so any event-producing
// code that ranges over a map makes the simulation's event order — and
// with it every "bit-for-bit reproducible" claim — depend on the iteration
// seed. Two shapes are allowed without a waiver:
//
//   - a range with no iteration variables (only the count is observed)
//   - the collect-then-sort idiom: a body consisting solely of
//     `x = append(x, ...)` statements where each x is later passed to a
//     sort (or slices) call in the same function
//
// Anything else needs keys sorted first or a //charmvet:ordered waiver.
var DetMap = &Analyzer{
	Name:   "detmap",
	Doc:    "flags nondeterministic map iteration in determinism-critical packages",
	Scoped: true,
	Run:    runDetMap,
}

func runDetMap(pass *Pass) {
	for _, file := range pass.Files {
		// Collect every function body so the collect-then-sort idiom can
		// look for the later sort call in the innermost enclosing one.
		var bodies []*ast.BlockStmt
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					bodies = append(bodies, n.Body)
				}
			case *ast.FuncLit:
				bodies = append(bodies, n.Body)
			}
			return true
		})
		ast.Inspect(file, func(n ast.Node) bool {
			if rng, ok := n.(*ast.RangeStmt); ok {
				pass.checkMapRange(rng, innermost(bodies, rng))
			}
			return true
		})
	}
}

// innermost returns the smallest body containing n.
func innermost(bodies []*ast.BlockStmt, n ast.Node) *ast.BlockStmt {
	var best *ast.BlockStmt
	for _, b := range bodies {
		if b.Pos() <= n.Pos() && n.End() <= b.End() {
			if best == nil || b.Pos() >= best.Pos() {
				best = b
			}
		}
	}
	return best
}

func (p *Pass) checkMapRange(rng *ast.RangeStmt, enclosing *ast.BlockStmt) {
	t := p.TypeOf(rng.X)
	if t == nil {
		return
	}
	if _, isMap := t.Underlying().(*types.Map); !isMap {
		return
	}
	if rng.Key == nil && rng.Value == nil {
		return // only the iteration count is observed
	}
	if p.Waived(WaiverOrdered, rng.Pos()) {
		return
	}
	if collected := appendTargets(rng.Body); len(collected) > 0 {
		if allSortedLater(enclosing, rng, collected) {
			return
		}
	}
	p.Reportf(rng.Pos(), "iteration over map %s has nondeterministic order; sort the keys first or annotate //charmvet:ordered",
		types.ExprString(rng.X))
}

// appendTargets returns the printed left-hand sides when every statement in
// body is an append of the form `x = append(x, ...)`; otherwise nil.
func appendTargets(body *ast.BlockStmt) []string {
	if len(body.List) == 0 {
		return nil
	}
	var targets []string
	for _, stmt := range body.List {
		as, ok := stmt.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) < 2 {
			return nil
		}
		if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
			return nil
		}
		lhs := types.ExprString(as.Lhs[0])
		if types.ExprString(call.Args[0]) != lhs {
			return nil
		}
		targets = append(targets, lhs)
	}
	return targets
}

// allSortedLater reports whether every target is the first argument of a
// sort.* or slices.* call after the range statement within body.
func allSortedLater(body *ast.BlockStmt, rng *ast.RangeStmt, targets []string) bool {
	if body == nil {
		return false
	}
	sorted := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || (pkg.Name != "sort" && pkg.Name != "slices") {
			return true
		}
		sorted[types.ExprString(call.Args[0])] = true
		return true
	})
	for _, t := range targets {
		if !sorted[t] {
			return false
		}
	}
	return true
}
