package analysis_test

import (
	"fmt"
	"go/ast"
	"strings"
	"sync"
	"testing"

	"charmgo/internal/analysis"
)

// fixtureWorld is every fixture package plus one call graph over all of
// them (no root exclusions: fixture roots are the point).
type fixtureWorld struct {
	byPath map[string]*analysis.Package
	all    []*analysis.Package
	graph  *analysis.Graph
}

// loadFixtures loads every fixture package once for all analyzer tests.
var loadFixtures = sync.OnceValues(func() (*fixtureWorld, error) {
	pkgs, err := analysis.Load("../..", "./internal/analysis/fixtures/...")
	if err != nil {
		return nil, err
	}
	w := &fixtureWorld{byPath: map[string]*analysis.Package{}, all: pkgs}
	for _, p := range pkgs {
		w.byPath[p.Path] = p
	}
	w.graph = analysis.NewGraph(pkgs, nil)
	return w, nil
})

// checkFixture runs one analyzer over its fixture package and compares the
// findings against the fixture's `// want `backquoted-substring`` marks:
// every finding must land on a marked line and match its substring, and
// every mark must be hit — so each fixture proves both the positive and
// the negative cases.
func checkFixture(t *testing.T, a *analysis.Analyzer, path string) []analysis.Finding {
	t.Helper()
	w, err := loadFixtures()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	pkg := w.byPath[path]
	if pkg == nil {
		t.Fatalf("fixture package %s not loaded", path)
	}

	type mark struct {
		key  string // file:line
		want string
		hit  bool
	}
	var marks []*mark
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want `")
				if i < 0 {
					continue
				}
				rest := text[i+len("want `"):]
				j := strings.Index(rest, "`")
				if j < 0 {
					t.Fatalf("%s: unterminated want mark %q", pkg.Fset.Position(c.Pos()), text)
				}
				pos := pkg.Fset.Position(c.Pos())
				marks = append(marks, &mark{
					key:  fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
					want: rest[:j],
				})
			}
		}
	}
	if len(marks) == 0 {
		t.Fatalf("fixture %s has no want marks", path)
	}

	var findings []analysis.Finding
	analysis.RunAnalyzer(a, pkg, w.graph, &findings)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, m := range marks {
			if !m.hit && m.key == key && strings.Contains(f.Message, m.want) {
				m.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, m := range marks {
		if !m.hit {
			t.Errorf("%s: expected a finding matching %q, got none", m.key, m.want)
		}
	}
	return findings
}

func TestDetTaint(t *testing.T) {
	checkFixture(t, analysis.DetTaint, "charmgo/internal/analysis/fixtures/dettaint")
}

func TestDetTaintParsimWaiver(t *testing.T) {
	checkFixture(t, analysis.DetTaint, "charmgo/internal/analysis/fixtures/dettaint/parsim")
}

// TestDetTaintTelemetryWaiver pins the //charmvet:telemetry contract in a
// package whose path qualifies for the waiver: a side-band waived read
// passes, a waived read converted into des.Time is still a finding (the
// flow check), and an unwaived read is a plain finding. The misuse case —
// the waiver in a non-telemetry package — lives in the main dettaint
// fixture.
func TestDetTaintTelemetryWaiver(t *testing.T) {
	checkFixture(t, analysis.DetTaint, "charmgo/internal/analysis/fixtures/dettaint/telemetry")
}

func TestRetainCheck(t *testing.T) {
	checkFixture(t, analysis.RetainCheck, "charmgo/internal/analysis/fixtures/retaincheck")
}

func TestPhasePure(t *testing.T) {
	checkFixture(t, analysis.PhasePure, "charmgo/internal/analysis/fixtures/phasepure")
}

func TestPupCheck(t *testing.T) {
	checkFixture(t, analysis.PupCheck, "charmgo/internal/analysis/fixtures/pupcheck")
}

func TestPoolCheck(t *testing.T) {
	checkFixture(t, analysis.PoolCheck, "charmgo/internal/analysis/fixtures/poolcheck")
}

func TestSpecState(t *testing.T) {
	checkFixture(t, analysis.SpecState, "charmgo/internal/analysis/fixtures/specstate")
}

// TestDettaintDeepWallclock is the acceptance case for reachability: the
// entry method (fixtures/dettaint.onTick) is wall-clock-free in its own
// body and its own package, and the time.Now sits two calls down in the
// sub-package fixtures/dettaint/util. An intra-procedural, package-scoped
// analyzer — v1's walltime — finds nothing to flag in either place: the
// entry package has no source, and the sink package has no entry point or
// critical-list membership tying it to an event path. dettaint reports the
// sink with the full three-hop chain.
func TestDettaintDeepWallclock(t *testing.T) {
	w, err := loadFixtures()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	entry := w.byPath["charmgo/internal/analysis/fixtures/dettaint"]

	// Half one: the file scan v1 performed sees no wall-clock call in the
	// entry method's body.
	for _, f := range entry.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "onTick" {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if sel, ok := n.(*ast.SelectorExpr); ok {
					if id, ok := sel.X.(*ast.Ident); ok && id.Name == "stdtime" {
						t.Errorf("fixture invalid: onTick's own body references time (%s); the deep-reachability case must keep the source two calls down", entry.Fset.Position(sel.Pos()))
					}
				}
				return true
			})
		}
	}

	// Half two: dettaint reports the sink in util with the full chain
	// from the entry method.
	findings := checkFixture(t, analysis.DetTaint, "charmgo/internal/analysis/fixtures/dettaint/util")
	found := false
	for _, f := range findings {
		if !strings.Contains(f.Message, "time.Now") {
			continue
		}
		found = true
		if len(f.Chain) < 3 {
			t.Errorf("deep wall-clock finding should carry a >=3-hop chain, got %v", f.Chain)
		}
		if !strings.Contains(strings.Join(f.Chain, " "), "onTick") {
			t.Errorf("chain %v does not start at the entry method onTick", f.Chain)
		}
		if !strings.Contains(f.Chain[0], "[entry method]") {
			t.Errorf("chain %v does not label its root as an entry method", f.Chain)
		}
	}
	if !found {
		t.Fatalf("no time.Now finding reported in the util sink package")
	}
}

// TestFixtureExclusion proves the suite's fixture exclusion (not the
// waivers) is what keeps the deliberate violations out of
// TestCharmvetClean: the default suite must report nothing on fixture
// packages, and the same suite with the exclusion removed must flag them.
func TestFixtureExclusion(t *testing.T) {
	w, err := loadFixtures()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	suite := analysis.DefaultSuite()
	if got := suite.Run(w.all); len(got) != 0 {
		t.Errorf("default suite must exclude fixtures, got %d findings: %v", len(got), got)
	}
	suite.Exclude = nil
	if got := suite.Run(w.all); len(got) == 0 {
		t.Errorf("suite with exclusion removed should flag fixture violations")
	}
}
