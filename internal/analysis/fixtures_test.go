package analysis_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"charmgo/internal/analysis"
)

// loadFixtures loads every fixture package once for all analyzer tests.
var loadFixtures = sync.OnceValues(func() (map[string]*analysis.Package, error) {
	pkgs, err := analysis.Load("../..", "./internal/analysis/fixtures/...")
	if err != nil {
		return nil, err
	}
	byPath := map[string]*analysis.Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	return byPath, nil
})

// checkFixture runs one analyzer over its fixture package and compares the
// findings against the fixture's `// want `backquoted-substring`` marks:
// every finding must land on a marked line and match its substring, and
// every mark must be hit — so each fixture proves both the positive and
// the negative cases.
func checkFixture(t *testing.T, a *analysis.Analyzer, path string) {
	t.Helper()
	fixtures, err := loadFixtures()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	pkg := fixtures[path]
	if pkg == nil {
		t.Fatalf("fixture package %s not loaded", path)
	}

	type mark struct {
		key  string // file:line
		want string
		hit  bool
	}
	var marks []*mark
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				i := strings.Index(text, "want `")
				if i < 0 {
					continue
				}
				rest := text[i+len("want `"):]
				j := strings.Index(rest, "`")
				if j < 0 {
					t.Fatalf("%s: unterminated want mark %q", pkg.Fset.Position(c.Pos()), text)
				}
				pos := pkg.Fset.Position(c.Pos())
				marks = append(marks, &mark{
					key:  fmt.Sprintf("%s:%d", pos.Filename, pos.Line),
					want: rest[:j],
				})
			}
		}
	}
	if len(marks) == 0 {
		t.Fatalf("fixture %s has no want marks", path)
	}

	var findings []analysis.Finding
	analysis.RunAnalyzer(a, pkg, &findings)
	for _, f := range findings {
		key := fmt.Sprintf("%s:%d", f.Pos.Filename, f.Pos.Line)
		matched := false
		for _, m := range marks {
			if !m.hit && m.key == key && strings.Contains(f.Message, m.want) {
				m.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding: %s", f)
		}
	}
	for _, m := range marks {
		if !m.hit {
			t.Errorf("%s: expected a finding matching %q, got none", m.key, m.want)
		}
	}
}

func TestDetMap(t *testing.T) {
	checkFixture(t, analysis.DetMap, "charmgo/internal/analysis/fixtures/detmap")
}

func TestWallTime(t *testing.T) {
	checkFixture(t, analysis.WallTime, "charmgo/internal/analysis/fixtures/walltime")
}

func TestPupCheck(t *testing.T) {
	checkFixture(t, analysis.PupCheck, "charmgo/internal/analysis/fixtures/pupcheck")
}

func TestPoolCheck(t *testing.T) {
	checkFixture(t, analysis.PoolCheck, "charmgo/internal/analysis/fixtures/poolcheck")
}

func TestNoSpawn(t *testing.T) {
	checkFixture(t, analysis.NoSpawn, "charmgo/internal/analysis/fixtures/nospawn")
}

func TestNoSpawnParsimWaiver(t *testing.T) {
	checkFixture(t, analysis.NoSpawn, "charmgo/internal/analysis/fixtures/parsim")
}

func TestDetMapProjectionsFixture(t *testing.T) {
	checkFixture(t, analysis.DetMap, "charmgo/internal/analysis/fixtures/projections")
}

// The event tracer's whole value rests on deterministic, virtual-time-only
// recording, so internal/projections must sit inside every determinism
// analyzer's scope.
func TestProjectionsOnCriticalLists(t *testing.T) {
	suite := analysis.DefaultSuite()
	const pkg = "charmgo/internal/projections"
	for _, name := range []string{analysis.DetMap.Name, analysis.NoSpawn.Name, analysis.WallTime.Name} {
		prefixes := suite.Critical[name]
		covered := false
		for _, pre := range prefixes {
			if pkg == pre || strings.HasPrefix(pkg, pre+"/") {
				covered = true
			}
		}
		if !covered {
			t.Errorf("%s's critical list %v does not cover %s", name, prefixes, pkg)
		}
	}
}

func TestWallTimeChaosFixture(t *testing.T) {
	checkFixture(t, analysis.WallTime, "charmgo/internal/analysis/fixtures/chaos")
}

// The fault injector's reproducibility contract (same seed, same faults,
// same report) is a determinism property, so internal/chaos must sit
// inside every determinism analyzer's scope.
func TestChaosOnCriticalLists(t *testing.T) {
	suite := analysis.DefaultSuite()
	const pkg = "charmgo/internal/chaos"
	for _, name := range []string{analysis.DetMap.Name, analysis.NoSpawn.Name, analysis.WallTime.Name} {
		prefixes := suite.Critical[name]
		covered := false
		for _, pre := range prefixes {
			if pkg == pre || strings.HasPrefix(pkg, pre+"/") {
				covered = true
			}
		}
		if !covered {
			t.Errorf("%s's critical list %v does not cover %s", name, prefixes, pkg)
		}
	}
}

// TestWaiversAreHonored double-checks the fixture waivers through the
// suite path as well: running the default suite with the fixture exclusion
// removed must flag fixture violations, proving the exclusion (not the
// waivers) is what keeps fixtures out of TestCharmvetClean.
func TestFixtureExclusion(t *testing.T) {
	fixtures, err := loadFixtures()
	if err != nil {
		t.Fatalf("loading fixtures: %v", err)
	}
	suite := analysis.DefaultSuite()
	var all []*analysis.Package
	for _, p := range fixtures {
		all = append(all, p)
	}
	if got := suite.Run(all); len(got) != 0 {
		t.Errorf("default suite must exclude fixtures, got %d findings", len(got))
	}
	suite.Exclude = nil
	suite.Critical[analysis.DetMap.Name] = append(suite.Critical[analysis.DetMap.Name], "charmgo/internal/analysis/fixtures")
	if got := suite.Run(all); len(got) == 0 {
		t.Errorf("suite with exclusion removed should flag fixture violations")
	}
}
