package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one type-checked package under analysis.
type Package struct {
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listedPkg mirrors the fields of `go list -json` the loader consumes.
type listedPkg struct {
	ImportPath string
	Dir        string
	GoFiles    []string
	Export     string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load type-checks the non-test sources of the packages matching patterns
// (go-list syntax, e.g. "./..."), resolving every import — stdlib and
// intra-module alike — from compiler export data, so the only toolchain
// dependency is the go command itself.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,GoFiles,Export,Standard,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("analysis: go list: %v\n%s", err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("analysis: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.Standard && !p.DepOnly {
			pc := p
			targets = append(targets, &pc)
		}
	}
	// go list -deps emits packages in dependency order (a package follows
	// its imports). Keep that order for type-checking so every intra-module
	// import can resolve to the already source-checked package — the whole
	// module then shares one type universe, which the call-graph layer
	// requires (object identity across packages). Output order is sorted
	// below once checking is done.

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("analysis: no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := &sourceImporter{
		fallback: importer.ForCompiler(fset, "gc", lookup).(types.ImporterFrom),
		srcs:     map[string]*types.Package{},
	}
	conf := types.Config{
		Importer:    imp,
		FakeImportC: true,
		Error:       func(error) {}, // collect what we can; a broken file should not sink the run
	}

	var pkgs []*Package
	for _, t := range targets {
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, fmt.Errorf("analysis: %v", err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("analysis: type-checking %s: %v", t.ImportPath, err)
		}
		imp.srcs[t.ImportPath] = tpkg
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Dir:   t.Dir,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// sourceImporter resolves imports of already type-checked target packages
// to their source-checked *types.Package, falling back to compiler export
// data for everything else (stdlib, dep-only packages). Source preference
// keeps the module in one type universe: a *types.Func seen from an
// importing package is the same object the defining package declared.
type sourceImporter struct {
	fallback types.ImporterFrom
	srcs     map[string]*types.Package
}

func (m *sourceImporter) Import(path string) (*types.Package, error) {
	return m.ImportFrom(path, "", 0)
}

func (m *sourceImporter) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	if p, ok := m.srcs[path]; ok {
		return p, nil
	}
	return m.fallback.ImportFrom(path, dir, 0)
}
