package stencil

import (
	"testing"

	"charmgo/internal/pup/puptest"
)

func TestPupRoundTrip(t *testing.T) {
	puptest.CheckEqual(t, &block{
		BI: 1, BJ: 2, B: 2, NB: 3, Iter: 4,
		Cur: []float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15},
		New: []float64{1, 1, 1, 1, 2, 2, 2, 2, 3, 3, 3, 3, 4, 4, 4, 4},
		Got: 2,
		Buffer: []ghostMsg{
			{Side: 0, Iter: 5, Data: []float64{0.5, 0.25}},
			{Side: 3, Iter: 5, Data: []float64{-1, 2}},
		},
		InSync: true, Started: true,
	})
}
