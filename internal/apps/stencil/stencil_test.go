package stencil

import (
	"math"
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/cloud"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

func newRT(pes int) *charm.Runtime {
	return charm.New(machine.New(machine.Testbed(pes)))
}

func TestCompletesAndConverges(t *testing.T) {
	rt := newRT(4)
	res, err := Run(rt, Config{GridN: 32, Chares: 4, Iters: 30})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Residuals) != 30 {
		t.Fatalf("got %d residuals", len(res.Residuals))
	}
	// Jacobi residual must shrink monotonically (up to fp noise).
	if res.Residuals[29] >= res.Residuals[0] {
		t.Fatalf("residual did not shrink: %v -> %v", res.Residuals[0], res.Residuals[29])
	}
	for i, ts := range res.IterDone {
		if i > 0 && ts <= res.IterDone[i-1] {
			t.Fatalf("iteration %d finished before %d", i, i-1)
		}
	}
}

// sequentialJacobi computes the same problem serially for verification.
func sequentialJacobi(n, iters int) [][]float64 {
	cur := make([][]float64, n+2)
	next := make([][]float64, n+2)
	for i := range cur {
		cur[i] = make([]float64, n+2)
		next[i] = make([]float64, n+2)
	}
	for y := 1; y <= n; y++ {
		cur[0][y] = 100 // hot left wall at ghost x=0 (column-major: cur[x][y])
	}
	for it := 0; it < iters; it++ {
		for x := 1; x <= n; x++ {
			for y := 1; y <= n; y++ {
				next[x][y] = 0.25 * (cur[x-1][y] + cur[x+1][y] + cur[x][y-1] + cur[x][y+1])
			}
		}
		for x := 1; x <= n; x++ {
			for y := 1; y <= n; y++ {
				cur[x][y] = next[x][y]
			}
		}
	}
	return cur
}

func TestMatchesSequentialSolver(t *testing.T) {
	// The distributed result must equal a serial reference bit-for-bit
	// modulo summation order — same stencil, same data, so exactly.
	const n, iters = 16, 12
	rt := newRT(4)
	app, err := New(rt, Config{GridN: n, Chares: 4, Iters: iters})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	ref := sequentialJacobi(n, iters)
	bsz := n / 4
	for bi := 0; bi < 4; bi++ {
		for bj := 0; bj < 4; bj++ {
			b := app.Array().Get(charm.Idx2(bi, bj)).(*block)
			for y := 1; y <= bsz; y++ {
				for x := 1; x <= bsz; x++ {
					gx, gy := bi*bsz+x, bj*bsz+y
					if got, want := b.at(x, y), ref[gx][gy]; math.Abs(got-want) > 1e-12 {
						t.Fatalf("point (%d,%d): got %v want %v", gx, gy, got, want)
					}
				}
			}
		}
	}
}

func TestOverdecompositionHidesLatency(t *testing.T) {
	// Same grid, same PE count: more chares per PE must reduce time per
	// iteration on a slow (cloud) network — the §IV-F.1 result.
	run := func(chares int) float64 {
		rt := charm.New(machine.New(machine.Cloud(16)))
		res, err := Run(rt, Config{GridN: 256, Chares: chares, Iters: 10, PerPointWork: 60e-9})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Elapsed)
	}
	oneChare := run(4) // 16 blocks on 16 PEs
	eight := run(8)    // 64 blocks: 4 per PE
	if eight >= oneChare {
		t.Fatalf("over-decomposition did not help: 1/PE %.4fs vs 4/PE %.4fs", oneChare, eight)
	}
}

func TestLBRecoversFromInterference(t *testing.T) {
	// Fig 16: interference arrives mid-run; with AtSync LB the later
	// iterations recover, without it they stay slow.
	run := func(withLB bool) []float64 {
		rt := charm.New(machine.New(machine.Cloud(32))) // 8 nodes x 4 PEs
		lbPeriod := 0
		if withLB {
			rt.SetBalancer(lb.Refine{Tolerance: 1.1})
			lbPeriod = 10
		}
		// One interfering VM lands on node 0 (the Fig 16 scenario).
		cloud.InterfereNode(rt, 0, 0.0, -1, 0.6)
		res, err := Run(rt, Config{GridN: 256, Chares: 16, Iters: 40, LBPeriod: lbPeriod, PerPointWork: 100e-9})
		if err != nil {
			t.Fatal(err)
		}
		return res.IterTimes()
	}
	noLB := run(false)
	withLB := run(true)
	tail := func(v []float64) float64 {
		s := 0.0
		for _, x := range v[len(v)-10:] {
			s += x
		}
		return s / 10
	}
	if tail(withLB) >= tail(noLB)*0.85 {
		t.Fatalf("LB did not recover from interference: tail %.5f vs %.5f", tail(withLB), tail(noLB))
	}
}

func TestGridMustDivide(t *testing.T) {
	rt := newRT(4)
	if _, err := New(rt, Config{GridN: 30, Chares: 4, Iters: 1}); err == nil {
		t.Fatal("non-divisible grid should error")
	}
}

func TestSingleChare(t *testing.T) {
	rt := newRT(1)
	res, err := Run(rt, Config{GridN: 8, Chares: 1, Iters: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IterDone) != 5 {
		t.Fatalf("single-chare run did %d iters", len(res.IterDone))
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		rt := newRT(4)
		res, err := Run(rt, Config{GridN: 32, Chares: 4, Iters: 10})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Elapsed), res.Residuals[9]
	}
	t1, r1 := run()
	t2, r2 := run()
	if t1 != t2 || r1 != r2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", t1, r1, t2, r2)
	}
}
