// Package stencil implements the Stencil2D mini-app (§IV-F): a 5-point
// Jacobi iteration on a 2-D grid over-decomposed into a chare array of
// blocks. Each block exchanges ghost rows/columns with its four neighbours
// asynchronously, computes a real Jacobi update, and contributes its
// residual to a per-iteration reduction — the timestamps of those
// reductions are the per-iteration times plotted in Fig 16.
//
// The app demonstrates over-decomposition (multiple blocks per PE overlap
// ghost latency with computation — the 77 ms → 32 ms cloud result) and
// both application-triggered (AtSync period) and RTS-triggered load
// balancing under interference.
package stencil

import (
	"fmt"
	"math"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// Config parameterizes a run.
type Config struct {
	// GridN is the global grid edge (GridN × GridN points).
	GridN int
	// Chares is the chare-array edge (Chares × Chares blocks).
	Chares int
	// Iters is the number of Jacobi iterations.
	Iters int
	// LBPeriod triggers AtSync every LBPeriod iterations; 0 disables.
	LBPeriod int
	// PerPointWork is compute seconds (base frequency) per point update.
	PerPointWork float64
	// Source initializes interior points; default zero.
	Source func(x, y int) float64
	// Boundary gives the fixed Dirichlet value on the global edges
	// (side 0=left 1=right 2=top 3=bottom, k the position along it);
	// default is a hot (100°) left wall.
	Boundary func(side, k int) float64
}

func (c Config) withDefaults() Config {
	if c.PerPointWork == 0 {
		c.PerPointWork = 8e-9
	}
	if c.Source == nil {
		c.Source = func(x, y int) float64 { return 0 }
	}
	if c.Boundary == nil {
		c.Boundary = func(side, k int) float64 {
			if side == 0 {
				return 100
			}
			return 0
		}
	}
	return c
}

// Result reports a completed run.
type Result struct {
	// IterDone[k] is the virtual time iteration k's residual reduction
	// completed.
	IterDone []des.Time
	// Residuals[k] is the global Jacobi residual after iteration k.
	Residuals []float64
	// Elapsed is the total virtual run time.
	Elapsed des.Time
}

// IterTimes returns per-iteration durations (differences of IterDone).
func (r *Result) IterTimes() []float64 {
	out := make([]float64, len(r.IterDone))
	prev := des.Time(0)
	for i, t := range r.IterDone {
		out[i] = float64(t - prev)
		prev = t
	}
	return out
}

const (
	epStart charm.EP = iota
	epGhost
	epResume
)

type ghostMsg struct {
	Side int // 0=from left, 1=from right, 2=from above, 3=from below
	Iter int
	Data []float64
}

type block struct {
	BI, BJ int
	B      int // interior points per side
	NB     int // blocks per side
	Iter   int
	Cur    []float64 // (B+2)^2 with ghost ring
	New    []float64
	Got    int
	Buffer []ghostMsg // early ghosts (next iteration, or pre-start)
	InSync bool
	// Started flips on the start broadcast; ghosts can overtake it.
	Started bool

	app *App //pup:skip //charmvet:specstate (idempotent rebind: every handler writes the pointer the factory installs)
}

func (b *block) Pup(p *pup.Pup) {
	p.Int(&b.BI)
	p.Int(&b.BJ)
	p.Int(&b.B)
	p.Int(&b.NB)
	p.Int(&b.Iter)
	p.Float64s(&b.Cur)
	p.Float64s(&b.New)
	p.Int(&b.Got)
	pup.Slice(p, &b.Buffer, func(p *pup.Pup, g *ghostMsg) {
		p.Int(&g.Side)
		p.Int(&g.Iter)
		p.Float64s(&g.Data)
	})
	p.Bool(&b.InSync)
	p.Bool(&b.Started)
}

func (b *block) at(x, y int) float64     { return b.Cur[y*(b.B+2)+x] }
func (b *block) set(x, y int, v float64) { b.Cur[y*(b.B+2)+x] = v }

func (b *block) neighbors() int {
	n := 0
	if b.BI > 0 {
		n++
	}
	if b.BI < b.NB-1 {
		n++
	}
	if b.BJ > 0 {
		n++
	}
	if b.BJ < b.NB-1 {
		n++
	}
	return n
}

// App wires the mini-app to a runtime.
type App struct {
	rt  *charm.Runtime
	cfg Config
	arr *charm.Array
	res *Result
	err error
}

// New declares the block array on the runtime.
func New(rt *charm.Runtime, cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	if cfg.GridN%cfg.Chares != 0 {
		return nil, fmt.Errorf("stencil: grid %d not divisible by %d chares", cfg.GridN, cfg.Chares)
	}
	app := &App{rt: rt, cfg: cfg, res: &Result{}}
	handlers := []charm.Handler{
		epStart:  app.onStart,
		epGhost:  app.onGhost,
		epResume: app.onResume,
	}
	app.arr = rt.DeclareArray("stencil_blocks", app.factory, handlers, charm.ArrayOpts{
		UsesAtSync: cfg.LBPeriod > 0,
		Migratable: true,
		// Block handlers read only (block state, payload, immutable cfg);
		// the error latch publishes through Defer.
		PureHandlers: true,
		ResumeEP:     epResume,
		// 2-D block mapping: contiguous tiles of chares share a PE so
		// most ghost exchanges stay node-local (the standard stencil
		// mapping; the RTS is free to migrate away from it later).
		HomeMap: func(idx charm.Index, numPEs int) int {
			px := 1
			for px*px < numPEs {
				px++
			}
			for numPEs%px != 0 {
				px--
			}
			py := numPEs / px
			ti := idx.I() * px / cfg.Chares
			tj := idx.J() * py / cfg.Chares
			return ti*py + tj
		},
	})
	bsz := cfg.GridN / cfg.Chares
	for i := 0; i < cfg.Chares; i++ {
		for j := 0; j < cfg.Chares; j++ {
			b := &block{BI: i, BJ: j, B: bsz, NB: cfg.Chares,
				Cur: make([]float64, (bsz+2)*(bsz+2)),
				New: make([]float64, (bsz+2)*(bsz+2)),
				app: app,
			}
			for y := 1; y <= bsz; y++ {
				for x := 1; x <= bsz; x++ {
					b.set(x, y, cfg.Source(i*bsz+x-1, j*bsz+y-1))
				}
			}
			// Global edges: the fixed boundary lives in the ghost ring
			// of edge blocks and is never overwritten.
			if i == 0 {
				for y := 1; y <= bsz; y++ {
					b.set(0, y, cfg.Boundary(0, j*bsz+y-1))
				}
			}
			if i == cfg.Chares-1 {
				for y := 1; y <= bsz; y++ {
					b.set(bsz+1, y, cfg.Boundary(1, j*bsz+y-1))
				}
			}
			if j == 0 {
				for x := 1; x <= bsz; x++ {
					b.set(x, 0, cfg.Boundary(2, i*bsz+x-1))
				}
			}
			if j == cfg.Chares-1 {
				for x := 1; x <= bsz; x++ {
					b.set(x, bsz+1, cfg.Boundary(3, i*bsz+x-1))
				}
			}
			app.arr.Insert(charm.Idx2(i, j), b)
		}
	}
	return app, nil
}

func (a *App) factory() charm.Chare { return &block{app: a} }

// Array exposes the block array (for checkpoint/LB tooling).
func (a *App) Array() *charm.Array { return a.arr }

// Iters returns the number of iterations whose residual reduction has
// landed. Fault-tolerance drivers save it at a checkpoint cut.
func (a *App) Iters() int { return len(a.res.IterDone) }

// TruncateResult rolls the result accumulators back to n completed
// iterations, discarding entries appended during a segment being rolled
// back after a failure.
func (a *App) TruncateResult(n int) {
	if n < 0 || n > len(a.res.IterDone) {
		return
	}
	a.res.IterDone = a.res.IterDone[:n]
	a.res.Residuals = a.res.Residuals[:n]
}

// Start kicks off iteration 0.
func (a *App) Start() { a.arr.Broadcast(epStart, nil) }

// Run executes the app to completion on the runtime and returns its result.
func (a *App) Run() (*Result, error) {
	a.Start()
	a.res.Elapsed = a.rt.Run()
	if a.err != nil {
		return nil, a.err
	}
	if len(a.res.IterDone) < a.cfg.Iters {
		return nil, fmt.Errorf("stencil: only %d of %d iterations completed", len(a.res.IterDone), a.cfg.Iters)
	}
	return a.res, nil
}

// Run is the one-call driver.
func Run(rt *charm.Runtime, cfg Config) (*Result, error) {
	app, err := New(rt, cfg)
	if err != nil {
		return nil, err
	}
	return app.Run()
}

func (a *App) onStart(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	b.Started = true
	ctx.SetPos(float64(b.BI), float64(b.BJ), 0)
	a.advance(b, ctx)
}

// sendGhosts ships the block's boundary values for iteration b.Iter.
func (a *App) sendGhosts(b *block, ctx *charm.Ctx) {
	bsz := b.B
	bytes := bsz*8 + 32
	send := func(di, dj, side int, data []float64) {
		ctx.SendOpt(a.arr, charm.Idx2(b.BI+di, b.BJ+dj), epGhost,
			ghostMsg{Side: side, Iter: b.Iter, Data: data}, &charm.SendOpts{Bytes: bytes})
	}
	if b.BI > 0 {
		col := make([]float64, bsz)
		for y := 1; y <= bsz; y++ {
			col[y-1] = b.at(1, y)
		}
		send(-1, 0, 1, col) // arrives at left neighbour as its "from right"
	}
	if b.BI < b.NB-1 {
		col := make([]float64, bsz)
		for y := 1; y <= bsz; y++ {
			col[y-1] = b.at(bsz, y)
		}
		send(+1, 0, 0, col)
	}
	if b.BJ > 0 {
		row := make([]float64, bsz)
		for x := 1; x <= bsz; x++ {
			row[x-1] = b.at(x, 1)
		}
		send(0, -1, 3, row)
	}
	if b.BJ < b.NB-1 {
		row := make([]float64, bsz)
		for x := 1; x <= bsz; x++ {
			row[x-1] = b.at(x, bsz)
		}
		send(0, +1, 2, row)
	}
}

func (a *App) onGhost(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	g := msg.(ghostMsg)
	if !b.Started || g.Iter != b.Iter {
		// The block has not started yet, or a fast neighbour is one
		// iteration ahead; hold the ghost.
		b.Buffer = append(b.Buffer, g)
		return
	}
	a.applyGhost(b, g)
	b.Got++
	a.maybeCompute(b, ctx)
}

func (a *App) applyGhost(b *block, g ghostMsg) {
	bsz := b.B
	switch g.Side {
	case 0: // from left neighbour: fill x=0 ghost column
		for y := 1; y <= bsz; y++ {
			b.set(0, y, g.Data[y-1])
		}
	case 1:
		for y := 1; y <= bsz; y++ {
			b.set(bsz+1, y, g.Data[y-1])
		}
	case 2:
		for x := 1; x <= bsz; x++ {
			b.set(x, 0, g.Data[x-1])
		}
	case 3:
		for x := 1; x <= bsz; x++ {
			b.set(x, bsz+1, g.Data[x-1])
		}
	}
}

// maybeCompute runs the Jacobi update once all ghosts for the current
// iteration arrived.
func (a *App) maybeCompute(b *block, ctx *charm.Ctx) {
	if b.InSync || b.Got < b.neighbors() {
		return
	}
	bsz := b.B
	var residual float64
	for y := 1; y <= bsz; y++ {
		for x := 1; x <= bsz; x++ {
			v := 0.25 * (b.at(x-1, y) + b.at(x+1, y) + b.at(x, y-1) + b.at(x, y+1))
			d := v - b.at(x, y)
			residual += d * d
			b.New[y*(bsz+2)+x] = v
		}
	}
	// Copy the updated interior back, preserving the ghost ring (which
	// holds the fixed global boundary on edge blocks).
	for y := 1; y <= bsz; y++ {
		copy(b.Cur[y*(bsz+2)+1:y*(bsz+2)+1+bsz], b.New[y*(bsz+2)+1:y*(bsz+2)+1+bsz])
	}
	ctx.Charge(float64(bsz*bsz) * a.cfg.PerPointWork)

	b.Iter++
	b.Got = 0
	ctx.Contribute(residual, charm.SumF64, charm.CallbackFunc(0, a.onIterDone))

	if b.Iter >= a.cfg.Iters {
		return // done; the final reduction ends the run
	}
	if a.cfg.LBPeriod > 0 && b.Iter%a.cfg.LBPeriod == 0 {
		b.InSync = true
		ctx.AtSync()
		return
	}
	a.advance(b, ctx)
}

// advance starts the next iteration: send ghosts, replay buffered ones.
func (a *App) advance(b *block, ctx *charm.Ctx) {
	a.sendGhosts(b, ctx)
	if len(b.Buffer) > 0 {
		buf := b.Buffer
		b.Buffer = nil
		for _, g := range buf {
			if g.Iter != b.Iter {
				err := fmt.Errorf("stencil: block (%d,%d) buffered ghost for iter %d at iter %d",
					b.BI, b.BJ, g.Iter, b.Iter)
				ctx.Defer(func() { a.err = err }) // app-global latch: publish at commit
				ctx.Exit()
				return
			}
			a.applyGhost(b, g)
			b.Got++
		}
	}
	a.maybeCompute(b, ctx)
}

func (a *App) onResume(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	b.InSync = false
	a.advance(b, ctx)
}

// onIterDone runs on PE 0 when an iteration's residual reduction arrives.
func (a *App) onIterDone(ctx *charm.Ctx, result any) {
	a.res.IterDone = append(a.res.IterDone, ctx.Now())
	a.res.Residuals = append(a.res.Residuals, math.Sqrt(result.(float64)))
	if len(a.res.IterDone) >= a.cfg.Iters {
		ctx.Exit()
	}
}
