package barnes

import (
	"testing"

	"charmgo/internal/pup/puptest"
)

// TestPupRoundTrip covers the serialized piece state; the per-step phase
// scratch (//pup:skip fields) is rebuilt after migration and stays zero.
func TestPupRoundTrip(t *testing.T) {
	puptest.CheckEqual(t, &piece{
		ID:     3,
		Step:   11,
		Ps:     []float64{0.1, 0.2, 0.3, 0.01, 0.02, 0.03, 0.5},
		InSync: true,
	})
}
