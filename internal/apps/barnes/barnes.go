// Package barnes implements the Barnes-Hut N-body mini-app of §IV-C and a
// ChaNGa-style phase breakdown (Figs 12, 13). Space is over-decomposed
// into a chare array of TreePieces by an oct decomposition; each step runs
// the phases a cosmology code runs:
//
//	DD      — domain decomposition: particles that drifted out of a
//	          piece's region migrate to their owner; completion is
//	          detected with quiescence detection.
//	TB      — tree build: each piece builds a real local octree and the
//	          pieces exchange top-level multipole summaries through a
//	          concatenating reduction.
//	Gravity — each piece computes Barnes-Hut forces on its particles:
//	          its own octree exactly, far pieces through their multipole
//	          (opening-angle test), near pieces via prioritized remote
//	          work requests answered with real tree walks.
//	LB      — optional ORB load balancing at AtSync barriers.
//
// The Plummer-model particle distribution concentrates mass centrally, so
// load is naturally imbalanced — the reason Fig 12 needs both
// over-decomposition and a geometric balancer.
package barnes

import (
	"fmt"
	"math"
	"math/rand"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// Config parameterizes a run.
type Config struct {
	// Particles is the total particle count.
	Particles int
	// Depth is the oct-decomposition depth: 8^Depth TreePieces.
	Depth int
	// Steps is the number of simulation steps.
	Steps int
	// Theta is the Barnes-Hut opening angle (default 0.6).
	Theta float64
	// LBPeriod calls AtSync every LBPeriod steps; 0 disables.
	LBPeriod int
	// PerInteractionWork is compute seconds per particle-node
	// interaction.
	PerInteractionWork float64
	// Dt is the leapfrog step.
	Dt   float64
	Seed int64
	// Center places the Plummer cluster; default is the box centre.
	// Real datasets are not grid-aligned, so benchmarks offset it to
	// break octant symmetry.
	Center [3]float64
	// Uniform draws particles uniformly in the box instead of from the
	// Plummer model — a cosmological-box-like distribution that is
	// near-even at piece granularity (the ChaNGa cosmo25 regime).
	Uniform bool
}

func (c Config) withDefaults() Config {
	if c.Theta == 0 {
		c.Theta = 0.6
	}
	if c.PerInteractionWork == 0 {
		c.PerInteractionWork = 25e-9
	}
	if c.Dt == 0 {
		c.Dt = 1e-3
	}
	if c.Depth == 0 {
		c.Depth = 1
	}
	if c.Center == ([3]float64{}) {
		c.Center = [3]float64{0.5, 0.5, 0.5}
	}
	return c
}

// NumPieces returns the TreePiece count.
func (c Config) NumPieces() int { return 1 << (3 * c.Depth) }

// PhaseTimes is the Fig 13 breakdown for one step.
type PhaseTimes struct {
	DD      float64
	TB      float64
	Gravity float64
	LB      float64
	Total   float64
}

// Result reports a run.
type Result struct {
	// Phases[k] is the measured phase breakdown of step k.
	Phases []PhaseTimes
	// StepDone[k] is the completion time of step k.
	StepDone  []des.Time
	Elapsed   des.Time
	Particles int
}

// MeanPhases averages the per-step breakdowns, skipping the first step
// (cold caches, initial DD storm).
func (r *Result) MeanPhases() PhaseTimes {
	if len(r.Phases) == 0 {
		return PhaseTimes{}
	}
	start := 0
	if len(r.Phases) > 1 {
		start = 1
	}
	var m PhaseTimes
	n := float64(len(r.Phases) - start)
	for _, p := range r.Phases[start:] {
		m.DD += p.DD / n
		m.TB += p.TB / n
		m.Gravity += p.Gravity / n
		m.LB += p.LB / n
		m.Total += p.Total / n
	}
	return m
}

const (
	epStartDD charm.EP = iota
	epDDParticles
	epDDDone
	epTBDone
	epGravReq
	epGravResp
	epResume
)

const pstride = 7 // x y z vx vy vz m

type summary struct {
	Piece int
	Mass  float64
	CX    float64
	CY    float64
	CZ    float64
	// Bounding box of the piece's region.
	Lo [3]float64
	Hi [3]float64
	N  int
}

type gravReq struct {
	Step  int
	Piece int // requester
}

// rnode is one flattened octree node shipped to a requester: ChaNGa-style
// node fetching — the data travels, the force computation stays with the
// requesting piece, so gravity work is never serialized on a hot owner.
type rnode struct {
	Lo, Hi     [3]float64
	CX, CY, CZ float64
	Mass       float64
	ChildStart int
	ChildCount int
}

type gravResp struct {
	Step  int
	Nodes []rnode
}

// node is one octree node of a piece's local tree.
type node struct {
	lo, hi     [3]float64
	mass       float64
	cx, cy, cz float64
	children   []*node
	pidx       []int // particle indices for leaves
}

type piece struct {
	ID   int
	Step int
	Ps   []float64 // pstride per particle
	app  *App      //pup:skip //charmvet:specstate (idempotent rebind: every handler writes the pointer the factory installs)

	// Per-step phase state (rebuilt each step; not serialized beyond
	// what correctness needs — pieces only migrate between steps, where
	// this state is reconstructable). The //charmvet:specstate waivers
	// record that barnes is pinned to the sequential/conservative
	// backends: this mid-step scratch is NOT rollback-safe (a Time Warp
	// rollback would factory-reset it while the pup'd state rewinds), so
	// it must be pupped or commit-deferred before barnes can run on the
	// optimistic backend.
	tree       *node     //pup:skip //charmvet:specstate (see above)
	treeStep   int       //pup:skip //charmvet:specstate (see above)
	sums       []summary //pup:skip //charmvet:specstate (see above)
	nearReqs   int       //pup:skip //charmvet:specstate (see above)
	nearSent   []int     //pup:skip //charmvet:specstate (see above)
	Fs         []float64 //pup:skip //charmvet:specstate (see above)
	pendingReq []gravReq //pup:skip //charmvet:specstate (see above)
	InSync     bool
}

func (p *piece) Pup(pp *pup.Pup) {
	pp.Int(&p.ID)
	pp.Int(&p.Step)
	pp.Float64s(&p.Ps)
	pp.Bool(&p.InSync)
}

func (p *piece) n() int { return len(p.Ps) / pstride }

// App wires Barnes-Hut to a runtime.
type App struct {
	rt     *charm.Runtime
	cfg    Config
	pieces *charm.Array
	res    *Result
	err    error

	// Phase bookkeeping on PE 0.
	stepStart des.Time
	ddStart   des.Time
	tbStart   des.Time
	gravStart des.Time
	cur       PhaseTimes
	gravLeft  int
}

// New creates the TreePieces and assigns Plummer-distributed particles.
func New(rt *charm.Runtime, cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	if cfg.Particles < cfg.NumPieces() {
		return nil, fmt.Errorf("barnes: %d particles for %d pieces", cfg.Particles, cfg.NumPieces())
	}
	a := &App{rt: rt, cfg: cfg, res: &Result{Particles: cfg.Particles}}
	handlers := []charm.Handler{
		epStartDD:     a.onStartDD,
		epDDParticles: a.onDDParticles,
		epDDDone:      a.onDDDone,
		epTBDone:      a.onTBDone,
		epGravReq:     a.onGravReq,
		epGravResp:    a.onGravResp,
		epResume:      a.onResume,
	}
	a.pieces = rt.DeclareArray("barnes_pieces", func() charm.Chare { return &piece{app: a} },
		handlers, charm.ArrayOpts{
			Migratable: true, // RTS-triggered rebalancing between steps
			ResumeEP:   epResume,
		})
	np := cfg.NumPieces()
	ps := make([][]float64, np)
	rng := rand.New(rand.NewSource(cfg.Seed*131 + 7))
	for i := 0; i < cfg.Particles; i++ {
		var x, y, z float64
		if cfg.Uniform {
			x, y, z = rng.Float64(), rng.Float64(), rng.Float64()
		} else {
			x, y, z = plummer(rng, cfg.Center)
		}
		owner := a.ownerOf(x, y, z)
		ps[owner] = append(ps[owner], x, y, z,
			rng.NormFloat64()*0.01, rng.NormFloat64()*0.01, rng.NormFloat64()*0.01,
			1.0/float64(cfg.Particles))
	}
	for i := 0; i < np; i++ {
		a.pieces.Insert(charm.Idx1(i), &piece{ID: i, Ps: ps[i], app: a})
	}
	return a, nil
}

// plummer samples the Plummer model scaled into the unit cube around the
// given centre, clipping the far tail so every particle stays in the box.
func plummer(rng *rand.Rand, c [3]float64) (x, y, z float64) {
	clip := 0.45
	for _, cv := range c {
		if d := 0.95 * math.Min(cv, 1-cv); d < clip {
			clip = d
		}
	}
	for {
		m := rng.Float64()
		r := 0.1 / math.Sqrt(math.Pow(m, -2.0/3.0)-1)
		if r > clip {
			continue
		}
		u, v := rng.Float64(), rng.Float64()
		th := math.Acos(2*u - 1)
		ph := 2 * math.Pi * v
		x = c[0] + r*math.Sin(th)*math.Cos(ph)
		y = c[1] + r*math.Sin(th)*math.Sin(ph)
		z = c[2] + r*math.Cos(th)
		return
	}
}

// ownerOf maps a position to its oct-decomposition piece.
func (a *App) ownerOf(x, y, z float64) int {
	side := 1 << a.cfg.Depth
	cl := func(v float64) int {
		i := int(v * float64(side))
		if i < 0 {
			i = 0
		}
		if i >= side {
			i = side - 1
		}
		return i
	}
	ix, iy, iz := cl(x), cl(y), cl(z)
	return (ix*side+iy)*side + iz
}

func (a *App) pieceBounds(id int) (lo, hi [3]float64) {
	side := 1 << a.cfg.Depth
	iz := id % side
	iy := id / side % side
	ix := id / (side * side)
	w := 1.0 / float64(side)
	lo = [3]float64{float64(ix) * w, float64(iy) * w, float64(iz) * w}
	hi = [3]float64{lo[0] + w, lo[1] + w, lo[2] + w}
	return lo, hi
}

// Pieces exposes the array.
func (a *App) Pieces() *charm.Array { return a.pieces }

// Run executes the configured steps.
func (a *App) Run() (*Result, error) {
	a.startStep()
	a.res.Elapsed = a.rt.Run()
	if a.err != nil {
		return nil, a.err
	}
	if len(a.res.StepDone) < a.cfg.Steps {
		return nil, fmt.Errorf("barnes: completed %d of %d steps", len(a.res.StepDone), a.cfg.Steps)
	}
	return a.res, nil
}

// Run is the one-call driver.
func Run(rt *charm.Runtime, cfg Config) (*Result, error) {
	app, err := New(rt, cfg)
	if err != nil {
		return nil, err
	}
	return app.Run()
}

// ---- phase driver (PE 0) ----

func (a *App) startStep() {
	a.stepStart = a.rt.Now()
	a.ddStart = a.rt.Now()
	a.cur = PhaseTimes{}
	a.pieces.Broadcast(epStartDD, nil)
	a.rt.StartQD(charm.CallbackFunc(0, func(ctx *charm.Ctx, _ any) {
		// DD traffic has quiesced; every piece owns its particles.
		a.cur.DD = float64(ctx.Now() - a.ddStart)
		a.tbStart = ctx.Now()
		ctx.Broadcast(a.pieces, epDDDone, nil, nil)
	}))
}

// ---- piece handlers ----

// onStartDD migrates drifted particles to their owners.
func (a *App) onStartDD(obj charm.Chare, ctx *charm.Ctx, msg any) {
	p := obj.(*piece)
	p.app = a
	out := map[int][]float64{}
	keep := p.Ps[:0]
	for i := 0; i < p.n(); i++ {
		seg := p.Ps[i*pstride : (i+1)*pstride]
		owner := a.ownerOf(seg[0], seg[1], seg[2])
		if owner == p.ID {
			keep = append(keep, seg...)
			continue
		}
		out[owner] = append(out[owner], seg...)
	}
	p.Ps = append([]float64(nil), keep...)
	// Deterministic send order.
	for dst := 0; dst < a.cfg.NumPieces(); dst++ {
		if data, ok := out[dst]; ok {
			ctx.SendOpt(a.pieces, charm.Idx1(dst), epDDParticles, data,
				&charm.SendOpts{Bytes: len(data)*8 + 32})
		}
	}
	ctx.Charge(float64(p.n()) * 200e-9) // key computation + local reorder
}

func (a *App) onDDParticles(obj charm.Chare, ctx *charm.Ctx, msg any) {
	p := obj.(*piece)
	p.app = a
	p.Ps = append(p.Ps, msg.([]float64)...)
}

// onDDDone builds the local tree and contributes the multipole summary.
func (a *App) onDDDone(obj charm.Chare, ctx *charm.Ctx, msg any) {
	p := obj.(*piece)
	p.app = a
	lo, hi := a.pieceBounds(p.ID)
	p.tree = buildTree(p.Ps, lo, hi, 0)
	p.treeStep = p.Step
	ctx.Charge(float64(p.n()) * 80e-9) // tree construction
	var s summary
	s.Piece = p.ID
	s.Lo, s.Hi = lo, hi
	s.N = p.n()
	if p.tree != nil {
		s.Mass, s.CX, s.CY, s.CZ = p.tree.mass, p.tree.cx, p.tree.cy, p.tree.cz
	}
	ctx.SetPos(s.CX, s.CY, s.CZ)
	ctx.Contribute([]summary{s}, concatSummaries, charm.CallbackBcast(a.pieces, epTBDone))
}

var concatSummaries = charm.Reducer{
	Name: "concat_summaries",
	Merge: func(x, y any) any {
		xa, ya := x.([]summary), y.([]summary)
		out := make([]summary, 0, len(xa)+len(ya))
		out = append(out, xa...)
		return append(out, ya...)
	},
}

// onTBDone starts the gravity phase.
func (a *App) onTBDone(obj charm.Chare, ctx *charm.Ctx, msg any) {
	p := obj.(*piece)
	p.app = a
	if p.ID == 0 {
		a.cur.TB = float64(ctx.Now() - a.tbStart)
		a.gravStart = ctx.Now()
		a.gravLeft = a.cfg.NumPieces()
	}
	p.sums = msg.([]summary)
	p.Fs = make([]float64, 3*p.n())
	p.nearSent = nil

	// Far-field: multipole contributions; near-field: ship our particles
	// to the owner with a prioritized request.
	myLo, myHi := a.pieceBounds(p.ID)
	interactions := 0
	for _, s := range p.sums {
		if s.Piece == p.ID || s.N == 0 {
			continue
		}
		if a.farEnough(myLo, myHi, s) {
			for i := 0; i < p.n(); i++ {
				accumulate(p.Fs, i, p.Ps[i*pstride], p.Ps[i*pstride+1], p.Ps[i*pstride+2],
					s.CX, s.CY, s.CZ, s.Mass)
				interactions++
			}
			continue
		}
		// Near: fetch the neighbour's tree nodes (§IV-C prioritized
		// messages: remote data requests outrank local computation).
		p.nearSent = append(p.nearSent, s.Piece)
		ctx.SendOpt(a.pieces, charm.Idx1(s.Piece), epGravReq,
			gravReq{Step: p.Step, Piece: p.ID},
			&charm.SendOpts{Bytes: 48, Prio: -10})
	}
	p.nearReqs = len(p.nearSent)

	// Local exact tree walk (the dominant real computation).
	if p.tree != nil {
		work := 0
		for i := 0; i < p.n(); i++ {
			work += walk(p.tree, p.Ps, i, p.Fs, a.cfg.Theta)
		}
		interactions += work
	}
	ctx.Charge(float64(interactions) * a.cfg.PerInteractionWork)

	// Replay requests that arrived before our TB finished.
	if len(p.pendingReq) > 0 {
		reqs := p.pendingReq
		p.pendingReq = nil
		for _, r := range reqs {
			a.serveGravReq(p, ctx, r)
		}
	}
	a.maybeFinishGravity(p, ctx)
}

// farEnough applies the opening-angle test conservatively over the whole
// requesting region.
func (a *App) farEnough(lo, hi [3]float64, s summary) bool {
	size := s.Hi[0] - s.Lo[0]
	// Minimum distance between the two boxes.
	d2 := 0.0
	for d := 0; d < 3; d++ {
		gap := 0.0
		if s.Lo[d] > hi[d] {
			gap = s.Lo[d] - hi[d]
		} else if lo[d] > s.Hi[d] {
			gap = lo[d] - s.Hi[d]
		}
		d2 += gap * gap
	}
	if d2 == 0 {
		return false
	}
	return size/math.Sqrt(d2) < a.cfg.Theta
}

func (a *App) onGravReq(obj charm.Chare, ctx *charm.Ctx, msg any) {
	p := obj.(*piece)
	p.app = a
	r := msg.(gravReq)
	if p.treeStep < r.Step || (p.tree == nil && p.Step <= r.Step && p.n() > 0) {
		// Our tree for the requested step is not built yet; defer until
		// our own TB completes.
		p.pendingReq = append(p.pendingReq, r)
		return
	}
	a.serveGravReq(p, ctx, r)
}

// serveGravReq ships the piece's flattened tree to the requester.
func (a *App) serveGravReq(p *piece, ctx *charm.Ctx, r gravReq) {
	nodes := flatten(p.tree)
	ctx.Charge(float64(len(nodes)) * 60e-9) // packing the node cache
	ctx.SendOpt(a.pieces, charm.Idx1(r.Piece), epGravResp,
		gravResp{Step: r.Step, Nodes: nodes},
		&charm.SendOpts{Bytes: len(nodes)*64 + 32, Prio: -10})
}

// flatten serializes the octree breadth-first into a shippable node array.
func flatten(root *node) []rnode {
	if root == nil {
		return nil
	}
	out := []rnode{}
	queue := []*node{root}
	for len(queue) > 0 {
		nd := queue[0]
		queue = queue[1:]
		rn := rnode{Lo: nd.lo, Hi: nd.hi, CX: nd.cx, CY: nd.cy, CZ: nd.cz, Mass: nd.mass}
		if len(nd.children) > 0 {
			rn.ChildStart = len(out) + 1 + len(queue)
			rn.ChildCount = len(nd.children)
			queue = append(queue, nd.children...)
		}
		out = append(out, rn)
	}
	return out
}

// walkRemote accumulates BH forces of a shipped tree on one position.
func walkRemote(nodes []rnode, at int, x, y, z float64, fs []float64, out int, theta float64) int {
	nd := &nodes[at]
	size := nd.Hi[0] - nd.Lo[0]
	dx, dy, dz := nd.CX-x, nd.CY-y, nd.CZ-z
	d2 := dx*dx + dy*dy + dz*dz
	if nd.ChildCount == 0 || (d2 > 0 && size*size < theta*theta*d2) {
		accumulateXYZ(fs, out, x, y, z, nd.CX, nd.CY, nd.CZ, nd.Mass)
		return 1
	}
	w := 0
	for c := nd.ChildStart; c < nd.ChildStart+nd.ChildCount; c++ {
		w += walkRemote(nodes, c, x, y, z, fs, out, theta)
	}
	return w
}

// onGravResp walks the received remote tree for all local particles — the
// near-field force work runs here, on the requester.
func (a *App) onGravResp(obj charm.Chare, ctx *charm.Ctx, msg any) {
	p := obj.(*piece)
	p.app = a
	resp := msg.(gravResp)
	work := 0
	if len(resp.Nodes) > 0 {
		for i := 0; i < p.n(); i++ {
			work += walkRemote(resp.Nodes, 0,
				p.Ps[i*pstride], p.Ps[i*pstride+1], p.Ps[i*pstride+2],
				p.Fs, i, a.cfg.Theta)
		}
	}
	ctx.Charge(float64(work) * a.cfg.PerInteractionWork)
	p.nearReqs--
	a.maybeFinishGravity(p, ctx)
}

// maybeFinishGravity integrates and closes the step for this piece.
func (a *App) maybeFinishGravity(p *piece, ctx *charm.Ctx) {
	if p.nearReqs > 0 || p.Fs == nil {
		return
	}
	dt := a.cfg.Dt
	for i := 0; i < p.n(); i++ {
		for d := 0; d < 3; d++ {
			p.Ps[i*pstride+3+d] += p.Fs[3*i+d] * dt
			p.Ps[i*pstride+d] += p.Ps[i*pstride+3+d] * dt
		}
	}
	ctx.Charge(float64(p.n()) * 15e-9)
	p.Fs = nil
	// The tree is retained (not nilled) so late-arriving near-field
	// requests for this step can still be served; it is rebuilt at the
	// next TB.
	p.sums = nil
	p.Step++
	ctx.Contribute(int64(1), charm.SumI64, charm.CallbackFunc(0, a.onGravityDone))
}

// onGravityDone closes the step on PE 0 and drives LB / the next step.
func (a *App) onGravityDone(ctx *charm.Ctx, _ any) {
	a.cur.Gravity = float64(ctx.Now() - a.gravStart)
	step := len(a.res.StepDone)
	if a.cfg.LBPeriod > 0 && (step+1)%a.cfg.LBPeriod == 0 && a.rt.Balancer() != nil {
		before := a.rt.MaxBusy()
		a.rt.Rebalance()
		a.cur.LB = float64(a.rt.MaxBusy() - before)
	}
	a.cur.Total = float64(ctx.Now()-a.stepStart) + a.cur.LB
	a.res.Phases = append(a.res.Phases, a.cur)
	a.res.StepDone = append(a.res.StepDone, ctx.Now())
	if len(a.res.StepDone) >= a.cfg.Steps {
		ctx.Exit()
		return
	}
	a.startStep()
}

func (a *App) onResume(obj charm.Chare, ctx *charm.Ctx, msg any) {
	obj.(*piece).InSync = false
}

// ---- octree ----

const leafCap = 8

func buildTree(ps []float64, lo, hi [3]float64, _ int) *node {
	n := len(ps) / pstride
	if n == 0 {
		return nil
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return build(ps, idx, lo, hi)
}

func build(ps []float64, idx []int, lo, hi [3]float64) *node {
	nd := &node{lo: lo, hi: hi}
	for _, i := range idx {
		m := ps[i*pstride+6]
		nd.mass += m
		nd.cx += m * ps[i*pstride]
		nd.cy += m * ps[i*pstride+1]
		nd.cz += m * ps[i*pstride+2]
	}
	if nd.mass > 0 {
		nd.cx /= nd.mass
		nd.cy /= nd.mass
		nd.cz /= nd.mass
	}
	if len(idx) <= leafCap {
		nd.pidx = append([]int(nil), idx...)
		return nd
	}
	mid := [3]float64{(lo[0] + hi[0]) / 2, (lo[1] + hi[1]) / 2, (lo[2] + hi[2]) / 2}
	buckets := make([][]int, 8)
	for _, i := range idx {
		o := 0
		if ps[i*pstride] >= mid[0] {
			o |= 1
		}
		if ps[i*pstride+1] >= mid[1] {
			o |= 2
		}
		if ps[i*pstride+2] >= mid[2] {
			o |= 4
		}
		buckets[o] = append(buckets[o], i)
	}
	// Degenerate distribution (all particles at one point): stop.
	nonEmpty := 0
	for _, b := range buckets {
		if len(b) > 0 {
			nonEmpty++
		}
	}
	if nonEmpty <= 1 && len(idx) > leafCap {
		nd.pidx = append([]int(nil), idx...)
		return nd
	}
	for o, b := range buckets {
		if len(b) == 0 {
			continue
		}
		clo, chi := lo, hi
		if o&1 != 0 {
			clo[0] = mid[0]
		} else {
			chi[0] = mid[0]
		}
		if o&2 != 0 {
			clo[1] = mid[1]
		} else {
			chi[1] = mid[1]
		}
		if o&4 != 0 {
			clo[2] = mid[2]
		} else {
			chi[2] = mid[2]
		}
		nd.children = append(nd.children, build(ps, b, clo, chi))
	}
	return nd
}

// walk accumulates BH forces of the tree on particle i, skipping
// self-interaction, returning the interaction count.
func walk(nd *node, ps []float64, i int, fs []float64, theta float64) int {
	return walkInner(nd, ps, ps[i*pstride], ps[i*pstride+1], ps[i*pstride+2], i, fs, theta)
}

func walkInner(nd *node, ps []float64, x, y, z float64, self int, fs []float64, theta float64) int {
	size := nd.hi[0] - nd.lo[0]
	dx, dy, dz := nd.cx-x, nd.cy-y, nd.cz-z
	d2 := dx*dx + dy*dy + dz*dz
	if nd.children == nil {
		w := 0
		for _, j := range nd.pidx {
			if j == self {
				continue
			}
			accumulate(fs, self, x, y, z, ps[j*pstride], ps[j*pstride+1], ps[j*pstride+2], ps[j*pstride+6])
			w++
		}
		return w
	}
	if d2 > 0 && size*size < theta*theta*d2 {
		accumulateXYZ(fs, self, x, y, z, nd.cx, nd.cy, nd.cz, nd.mass)
		return 1
	}
	w := 0
	for _, c := range nd.children {
		w += walkInner(c, ps, x, y, z, self, fs, theta)
	}
	return w
}

// walkXYZ walks for an external position (no self index).
func walkXYZ(nd *node, x, y, z float64, fs []float64, out int, theta float64) int {
	size := nd.hi[0] - nd.lo[0]
	dx, dy, dz := nd.cx-x, nd.cy-y, nd.cz-z
	d2 := dx*dx + dy*dy + dz*dz
	if nd.children == nil {
		accumulateXYZ(fs, out, x, y, z, nd.cx, nd.cy, nd.cz, nd.mass)
		return len(nd.pidx)
	}
	if d2 > 0 && size*size < theta*theta*d2 {
		accumulateXYZ(fs, out, x, y, z, nd.cx, nd.cy, nd.cz, nd.mass)
		return 1
	}
	w := 0
	for _, c := range nd.children {
		w += walkXYZ(c, x, y, z, fs, out, theta)
	}
	return w
}

const soften2 = 1e-4

func accumulate(fs []float64, i int, x, y, z, ox, oy, oz, m float64) {
	accumulateXYZ(fs, i, x, y, z, ox, oy, oz, m)
}

func accumulateXYZ(fs []float64, i int, x, y, z, ox, oy, oz, m float64) {
	dx, dy, dz := ox-x, oy-y, oz-z
	d2 := dx*dx + dy*dy + dz*dz + soften2
	inv := m / (d2 * math.Sqrt(d2))
	fs[3*i] += dx * inv
	fs[3*i+1] += dy * inv
	fs[3*i+2] += dz * inv
}
