package barnes

import (
	"math"
	"math/rand"
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

func newRT(pes int) *charm.Runtime {
	return charm.New(machine.New(machine.Testbed(pes)))
}

func TestRunsAndRecordsPhases(t *testing.T) {
	rt := newRT(4)
	res, err := Run(rt, Config{Particles: 800, Depth: 1, Steps: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Phases) != 4 {
		t.Fatalf("phases for %d steps", len(res.Phases))
	}
	for i, ph := range res.Phases {
		if ph.Total <= 0 || ph.Gravity <= 0 || ph.TB <= 0 || ph.DD <= 0 {
			t.Fatalf("step %d has empty phases: %+v", i, ph)
		}
		if ph.Gravity >= ph.Total {
			t.Fatalf("gravity (%v) exceeds total (%v)", ph.Gravity, ph.Total)
		}
	}
	m := res.MeanPhases()
	if m.Gravity < m.DD || m.Gravity < m.TB {
		t.Fatalf("gravity should dominate the step: %+v", m)
	}
}

// bruteForce computes exact pairwise forces for verification.
func bruteForce(ps []float64, i int) (fx, fy, fz float64) {
	n := len(ps) / pstride
	var f [3]float64
	fs := f[:]
	for j := 0; j < n; j++ {
		if j == i {
			continue
		}
		accumulateXYZ(fs, 0, ps[i*pstride], ps[i*pstride+1], ps[i*pstride+2],
			ps[j*pstride], ps[j*pstride+1], ps[j*pstride+2], ps[j*pstride+6])
	}
	return fs[0], fs[1], fs[2]
}

func TestTreeWalkApproximatesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 300
	ps := make([]float64, 0, n*pstride)
	for i := 0; i < n; i++ {
		x, y, z := plummer(rng, [3]float64{0.5, 0.5, 0.5})
		ps = append(ps, x, y, z, 0, 0, 0, 1.0/float64(n))
	}
	tree := buildTree(ps, [3]float64{0, 0, 0}, [3]float64{1, 1, 1}, 0)
	if math.Abs(tree.mass-1.0) > 1e-9 {
		t.Fatalf("tree mass %v, want 1", tree.mass)
	}
	const theta = 0.5
	for i := 0; i < 20; i++ {
		fs := make([]float64, 3*n)
		walk(tree, ps, i, fs, theta)
		bx, by, bz := bruteForce(ps, i)
		mag := math.Sqrt(bx*bx+by*by+bz*bz) + 1e-12
		dx := fs[3*i] - bx
		dy := fs[3*i+1] - by
		dz := fs[3*i+2] - bz
		rel := math.Sqrt(dx*dx+dy*dy+dz*dz) / mag
		if rel > 0.12 {
			t.Fatalf("particle %d: BH force off by %.1f%%", i, rel*100)
		}
	}
}

func TestThetaZeroIsExact(t *testing.T) {
	// With theta -> 0 every node opens to leaves, and leaves accumulate
	// their centre of mass; with leafCap 1 it would be exact. Use small
	// leaves and tight theta to land within numerical slop.
	rng := rand.New(rand.NewSource(7))
	n := 64
	ps := make([]float64, 0, n*pstride)
	for i := 0; i < n; i++ {
		ps = append(ps, rng.Float64(), rng.Float64(), rng.Float64(), 0, 0, 0, 1.0)
	}
	tree := buildTree(ps, [3]float64{0, 0, 0}, [3]float64{1, 1, 1}, 0)
	for i := 0; i < n; i++ {
		fs := make([]float64, 3*n)
		walk(tree, ps, i, fs, 1e-9)
		bx, by, bz := bruteForce(ps, i)
		if math.Abs(fs[3*i]-bx)+math.Abs(fs[3*i+1]-by)+math.Abs(fs[3*i+2]-bz) > 1e-6*(1+math.Abs(bx)+math.Abs(by)+math.Abs(bz))*3 {
			// Leaves of up to leafCap particles still approximate
			// within-leaf contributions by their COM split; tolerate
			// small relative error.
			mag := math.Sqrt(bx*bx+by*by+bz*bz) + 1e-12
			dx, dy, dz := fs[3*i]-bx, fs[3*i+1]-by, fs[3*i+2]-bz
			if math.Sqrt(dx*dx+dy*dy+dz*dz)/mag > 0.02 {
				t.Fatalf("theta~0 walk differs from brute force at %d", i)
			}
		}
	}
}

func TestParticlesConservedAcrossDD(t *testing.T) {
	rt := newRT(4)
	app, err := New(rt, Config{Particles: 600, Depth: 1, Steps: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, idx := range app.Pieces().Keys() {
		total += app.Pieces().Get(idx).(*piece).n()
	}
	if total != 600 {
		t.Fatalf("particles not conserved: %d", total)
	}
}

func TestPlummerIsCentrallyConcentrated(t *testing.T) {
	rt := newRT(4)
	app, err := New(rt, Config{Particles: 2000, Depth: 2, Steps: 1, Seed: 3,
		Center: [3]float64{0.30, 0.34, 0.62}})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, idx := range app.Pieces().Keys() {
		counts[idx.I()] = app.Pieces().Get(idx).(*piece).n()
	}
	min, max := 1<<30, 0
	for _, c := range counts {
		if c < min {
			min = c
		}
		if c > max {
			max = c
		}
	}
	if max < 2*min {
		t.Fatalf("Plummer distribution too uniform: min %d max %d", min, max)
	}
}

func TestOwnerOfRoundTrip(t *testing.T) {
	rt := newRT(2)
	app, err := New(rt, Config{Particles: 64, Depth: 2, Steps: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < app.cfg.NumPieces(); id++ {
		lo, hi := app.pieceBounds(id)
		cx := (lo[0] + hi[0]) / 2
		cy := (lo[1] + hi[1]) / 2
		cz := (lo[2] + hi[2]) / 2
		if got := app.ownerOf(cx, cy, cz); got != id {
			t.Fatalf("piece %d centre maps to %d", id, got)
		}
	}
}

func TestORBLoadBalancingHelps(t *testing.T) {
	// Fig 12: over-decomposition + ORB beats no LB.
	run := func(withLB bool) float64 {
		rt := newRT(8)
		cfg := Config{Particles: 3000, Depth: 2, Steps: 6, Seed: 5,
			Center: [3]float64{0.30, 0.34, 0.62}}
		if withLB {
			rt.SetBalancer(lb.ORB{})
			cfg.LBPeriod = 2
		}
		res, err := Run(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Post-LB steady state.
		sum := 0.0
		for _, p := range res.Phases[3:] {
			sum += p.Total
		}
		return sum / 3
	}
	noLB := run(false)
	withLB := run(true)
	if withLB >= noLB {
		t.Fatalf("ORB LB did not help: %v vs %v", withLB, noLB)
	}
}

func TestOverdecompositionHelps(t *testing.T) {
	// One piece per PE (500m_NO) vs 8 pieces per PE (500m).
	run := func(depth int) float64 {
		rt := newRT(8)
		res, err := Run(rt, Config{Particles: 3000, Depth: depth, Steps: 4, Seed: 6,
			Center: [3]float64{0.30, 0.34, 0.62}})
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, p := range res.Phases[1:] {
			sum += p.Total
		}
		return sum / float64(len(res.Phases)-1)
	}
	one := run(1)   // 8 pieces on 8 PEs
	eight := run(2) // 64 pieces on 8 PEs
	if eight >= one {
		t.Fatalf("over-decomposition did not help: 1/PE %v vs 8/PE %v", one, eight)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() float64 {
		rt := newRT(4)
		res, err := Run(rt, Config{Particles: 500, Depth: 1, Steps: 3, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Elapsed)
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
