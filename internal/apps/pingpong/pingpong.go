// Package pingpong implements the pipelined ping benchmark of §III-E
// (Fig 6): a fixed payload travels from one chare to another split into a
// tunable number of pipeline messages. Splitting overlaps the sender's
// packing, the wire, and the receiver's processing — but each extra
// message costs software overhead, so time-per-step is U-shaped in the
// pipeline count. The introspective control system registers the count as
// a control point and converges to the optimum.
package pingpong

import (
	"fmt"

	"charmgo/internal/charm"
	"charmgo/internal/ctrlpoint"
	"charmgo/internal/pup"
)

// Config parameterizes a run.
type Config struct {
	// TotalBytes is the payload per step.
	TotalBytes int
	// Steps is the number of ping-pong steps.
	Steps int
	// PackPerByte / ProcPerByte are the sender packing and receiver
	// processing costs, seconds per byte at base frequency.
	PackPerByte float64
	ProcPerByte float64
	// PerChunkCost is the fixed protocol cost each pipeline message pays
	// on each side (rendezvous handshake, descriptor setup) — the term
	// that penalizes over-pipelining.
	PerChunkCost float64
	// Pipeline bounds and start for the control point.
	MinPipe, MaxPipe, InitPipe int
	// FixedPipe pins the pipeline count (no tuning) when > 0.
	FixedPipe int
}

func (c Config) withDefaults() Config {
	if c.TotalBytes == 0 {
		c.TotalBytes = 1 << 20
	}
	if c.Steps == 0 {
		c.Steps = 40
	}
	if c.PackPerByte == 0 {
		c.PackPerByte = 0.25e-9
	}
	if c.ProcPerByte == 0 {
		c.ProcPerByte = 0.4e-9
	}
	if c.PerChunkCost == 0 {
		c.PerChunkCost = 5e-6
	}
	if c.MinPipe == 0 {
		c.MinPipe = 1
	}
	if c.MaxPipe == 0 {
		c.MaxPipe = 40
	}
	if c.InitPipe == 0 {
		c.InitPipe = c.MinPipe
	}
	return c
}

// Result records the tuning trajectory.
type Result struct {
	// StepTimes[k] is the measured time of step k.
	StepTimes []float64
	// PipeValues[k] is the pipeline count used during step k.
	PipeValues []int
	// FinalPipe is the converged (or pinned) pipeline count.
	FinalPipe int
}

const (
	epGo charm.EP = iota
	epChunk
	epAck
)

type pinger struct {
	ID int
	// Receiver-side reassembly state.
	Got   int
	Need  int
	Bytes int
}

func (p *pinger) Pup(pp *pup.Pup) {
	pp.Int(&p.ID)
	pp.Int(&p.Got)
	pp.Int(&p.Need)
	pp.Int(&p.Bytes)
}

type chunkMsg struct {
	K     int
	Bytes int
}

// Run executes the benchmark on the runtime. The two chares are placed on
// different nodes so the payload crosses the network.
func Run(rt *charm.Runtime, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{}
	cs := ctrlpoint.NewSystem()
	var point *ctrlpoint.Point
	if cfg.FixedPipe == 0 {
		point = cs.Register("pipeline_messages", cfg.MinPipe, cfg.MaxPipe, cfg.InitPipe,
			ctrlpoint.EffectMoreOverlap)
	}
	pipe := func() int {
		if cfg.FixedPipe > 0 {
			return cfg.FixedPipe
		}
		return point.Value()
	}

	var arr *charm.Array
	step := 0
	stepStart := 0.0

	handlers := []charm.Handler{
		epGo: func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			k := pipe()
			res.PipeValues = append(res.PipeValues, k)
			stepStart = float64(ctx.Now())
			chunk := cfg.TotalBytes / k
			for i := 0; i < k; i++ {
				sz := chunk
				if i == k-1 {
					sz = cfg.TotalBytes - chunk*(k-1)
				}
				ctx.Charge(cfg.PackPerByte*float64(sz) + cfg.PerChunkCost)
				ctx.SendOpt(arr, charm.Idx1(1), epChunk, chunkMsg{K: k, Bytes: sz},
					&charm.SendOpts{Bytes: sz})
			}
		},
		epChunk: func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			p := obj.(*pinger)
			m := msg.(chunkMsg)
			ctx.Charge(cfg.ProcPerByte*float64(m.Bytes) + cfg.PerChunkCost)
			p.Got++
			p.Bytes += m.Bytes
			p.Need = m.K
			if p.Got >= p.Need {
				if p.Bytes != cfg.TotalBytes {
					panic(fmt.Sprintf("pingpong: reassembled %d of %d bytes", p.Bytes, cfg.TotalBytes))
				}
				p.Got, p.Bytes = 0, 0
				ctx.SendOpt(arr, charm.Idx1(0), epAck, nil, &charm.SendOpts{Bytes: 16})
			}
		},
		epAck: func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			elapsed := float64(ctx.Now()) - stepStart
			res.StepTimes = append(res.StepTimes, elapsed)
			if cfg.FixedPipe == 0 {
				cs.Observe(elapsed)
			}
			step++
			if step >= cfg.Steps {
				res.FinalPipe = pipe()
				ctx.Exit()
				return
			}
			ctx.Send(arr, charm.Idx1(0), epGo, nil)
		},
	}
	arr = rt.DeclareArray("ping_pair", func() charm.Chare { return &pinger{} }, handlers,
		charm.ArrayOpts{})
	// Opposite corners of the machine: guaranteed different nodes when
	// the machine has more than one.
	arr.InsertOn(charm.Idx1(0), &pinger{ID: 0}, 0)
	arr.InsertOn(charm.Idx1(1), &pinger{ID: 1}, rt.NumPEs()-1)

	arr.Send(charm.Idx1(0), epGo, nil)
	rt.Run()
	if len(res.StepTimes) != cfg.Steps {
		return nil, fmt.Errorf("pingpong: completed %d of %d steps", len(res.StepTimes), cfg.Steps)
	}
	return res, nil
}

// Sweep measures one step time per fixed pipeline count — the underlying
// curve of Fig 6.
func Sweep(mk func() *charm.Runtime, cfg Config, counts []int) (map[int]float64, error) {
	out := map[int]float64{}
	for _, k := range counts {
		c := cfg
		c.FixedPipe = k
		c.Steps = 5
		res, err := Run(mk(), c)
		if err != nil {
			return nil, err
		}
		// Steady-state step time: skip the first (cold) step.
		sum := 0.0
		for _, t := range res.StepTimes[1:] {
			sum += t
		}
		out[k] = sum / float64(len(res.StepTimes)-1)
	}
	return out, nil
}
