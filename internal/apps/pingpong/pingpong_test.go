package pingpong

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/machine"
)

func mkRT() *charm.Runtime {
	return charm.New(machine.New(machine.Stampede(32)))
}

func TestSweepIsUShaped(t *testing.T) {
	curve, err := Sweep(mkRT, Config{}, []int{1, 2, 4, 8, 16, 32})
	if err != nil {
		t.Fatal(err)
	}
	// More pipelining than 1 must help somewhere…
	if !(curve[4] < curve[1] || curve[8] < curve[1]) {
		t.Fatalf("pipelining never helped: %v", curve)
	}
	// …and extreme pipelining must hurt relative to the best.
	best := curve[1]
	for _, v := range curve {
		if v < best {
			best = v
		}
	}
	if curve[32] <= best {
		t.Fatalf("no overhead penalty at k=32: %v", curve)
	}
}

func TestTunerConvergesNearSweepOptimum(t *testing.T) {
	counts := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 40}
	curve, err := Sweep(mkRT, Config{}, counts)
	if err != nil {
		t.Fatal(err)
	}
	bestK, bestV := 1, curve[1]
	for _, k := range counts {
		if curve[k] < bestV {
			bestK, bestV = k, curve[k]
		}
	}
	res, err := Run(mkRT(), Config{Steps: 60})
	if err != nil {
		t.Fatal(err)
	}
	finalV, ok := curve[res.FinalPipe]
	if !ok {
		// Interpolate: accept if within the bracketing counts' values.
		finalV = bestV * 1.15
	}
	if finalV > bestV*1.3 {
		t.Fatalf("tuner settled at k=%d (%.6fs); sweep optimum k=%d (%.6fs)",
			res.FinalPipe, finalV, bestK, bestV)
	}
	// The tuned trajectory must stabilize: late steps at most slightly
	// worse than the best observed step.
	late := res.StepTimes[len(res.StepTimes)-5:]
	for _, v := range late {
		if v > bestV*1.5 {
			t.Fatalf("tuned run did not stabilize: late step %.6f vs optimum %.6f", v, bestV)
		}
	}
}

func TestStepAccounting(t *testing.T) {
	res, err := Run(mkRT(), Config{Steps: 10, FixedPipe: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StepTimes) != 10 || len(res.PipeValues) != 10 {
		t.Fatalf("step records: %d times, %d pipe values", len(res.StepTimes), len(res.PipeValues))
	}
	for i, k := range res.PipeValues {
		if k != 4 {
			t.Fatalf("step %d used k=%d with FixedPipe=4", i, k)
		}
	}
	for _, ts := range res.StepTimes {
		if ts <= 0 {
			t.Fatal("non-positive step time")
		}
	}
}

func TestDeterministic(t *testing.T) {
	a, err := Run(mkRT(), Config{Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mkRT(), Config{Steps: 20})
	if err != nil {
		t.Fatal(err)
	}
	if a.FinalPipe != b.FinalPipe {
		t.Fatalf("nondeterministic tuning: %d vs %d", a.FinalPipe, b.FinalPipe)
	}
	for i := range a.StepTimes {
		if a.StepTimes[i] != b.StepTimes[i] {
			t.Fatalf("step %d differs", i)
		}
	}
}
