package pingpong

import (
	"testing"

	"charmgo/internal/pup/puptest"
)

func TestPupRoundTrip(t *testing.T) {
	puptest.CheckEqual(t, &pinger{ID: 1, Got: 3, Need: 8, Bytes: 65536})
}
