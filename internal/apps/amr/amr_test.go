package amr

import (
	"math"
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

func newRT(pes int) *charm.Runtime {
	return charm.New(machine.New(machine.Testbed(pes)))
}

// reference solves the same advection problem on a uniform periodic grid.
func reference(depth, B, steps int, cfl float64) []float64 {
	n := B * (1 << depth)
	h := 1.0 / float64(n)
	// dt must match the app: stable at MaxDepth (= depth here when the
	// config pins Min=Max=Start).
	dt := cfl * h / (velocity[0] + velocity[1] + velocity[2])
	u := make([]float64, n*n*n)
	at := func(g []float64, i, j, k int) float64 {
		return g[((i+n)%n*n+(j+n)%n)*n+(k+n)%n]
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			for k := 0; k < n; k++ {
				u[(i*n+j)*n+k] = initialU((float64(i)+0.5)*h, (float64(j)+0.5)*h, (float64(k)+0.5)*h)
			}
		}
	}
	nu := make([]float64, len(u))
	for s := 0; s < steps; s++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				for k := 0; k < n; k++ {
					c := at(u, i, j, k)
					nu[(i*n+j)*n+k] = c - dt/h*(velocity[0]*(c-at(u, i-1, j, k))+
						velocity[1]*(c-at(u, i, j-1, k))+
						velocity[2]*(c-at(u, i, j, k-1)))
				}
			}
		}
		u, nu = nu, u
	}
	return u
}

func TestUniformMatchesReference(t *testing.T) {
	const depth, B, steps = 2, 4, 8
	rt := newRT(4)
	app, err := New(rt, Config{MinDepth: depth, MaxDepth: depth, StartDepth: depth,
		BlockSize: B, Steps: steps, RemeshPeriod: 0})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	ref := reference(depth, B, steps, app.cfg.CFL)
	n := B * (1 << depth)
	for _, idx := range app.Blocks().Keys() {
		b := app.Blocks().Get(idx).(*block)
		x0, y0, z0, _ := idx.Coords()
		for i := 0; i < B; i++ {
			for j := 0; j < B; j++ {
				for k := 0; k < B; k++ {
					gi, gj, gk := x0*B+i, y0*B+j, z0*B+k
					got := b.U[(i*B+j)*B+k]
					want := ref[(gi*n+gj)*n+gk]
					if math.Abs(got-want) > 1e-12 {
						t.Fatalf("cell (%d,%d,%d): got %v want %v", gi, gj, gk, got, want)
					}
				}
			}
		}
	}
}

func TestMassConservedUniform(t *testing.T) {
	rt := newRT(4)
	res, err := Run(rt, Config{MinDepth: 2, MaxDepth: 2, StartDepth: 2,
		BlockSize: 4, Steps: 12, RemeshPeriod: 0})
	if err != nil {
		t.Fatal(err)
	}
	m0, mN := res.Mass[0], res.Mass[len(res.Mass)-1]
	if math.Abs(mN-m0) > 1e-12*math.Abs(m0) {
		t.Fatalf("mass not conserved on uniform mesh: %v -> %v", m0, mN)
	}
}

func TestAdaptiveRunRefinesAndConserves(t *testing.T) {
	rt := newRT(4)
	res, err := Run(rt, Config{MinDepth: 1, MaxDepth: 3, StartDepth: 2,
		BlockSize: 4, Steps: 12, RemeshPeriod: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Remeshes == 0 {
		t.Fatal("no remesh happened")
	}
	// The Gaussian pulse is steep: the mesh must have refined somewhere.
	grew := false
	for i := 1; i < len(res.Blocks); i++ {
		if res.Blocks[i] != res.Blocks[0] {
			grew = true
		}
	}
	if !grew {
		t.Fatalf("mesh never restructured: %v", res.Blocks)
	}
	// Mass approximately conserved across refinement boundaries.
	m0, mN := res.Mass[0], res.Mass[len(res.Mass)-1]
	if math.Abs(mN-m0) > 0.05*math.Abs(m0) {
		t.Fatalf("mass drifted too far: %v -> %v", m0, mN)
	}
}

func TestTwoToOneBalanceMaintained(t *testing.T) {
	rt := newRT(4)
	app, err := New(rt, Config{MinDepth: 1, MaxDepth: 3, StartDepth: 2,
		BlockSize: 4, Steps: 12, RemeshPeriod: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	// rebuildTopology errors on any 2:1 violation.
	app.rebuildTopology(false)
	if app.err != nil {
		t.Fatal(app.err)
	}
	// Depth spread shows actual adaptivity.
	depths := map[int]int{}
	for _, idx := range app.Blocks().Keys() {
		_, _, _, d := idx.Coords()
		depths[d]++
	}
	if len(depths) < 2 {
		t.Fatalf("mesh is uniform after adaptation: %v", depths)
	}
}

func TestDynamicInsertionCreatesImbalanceLBFixesIt(t *testing.T) {
	run := func(balance bool) float64 {
		rt := newRT(8)
		if balance {
			rt.SetBalancer(lb.Distributed{Seed: 4})
		}
		res, err := Run(rt, Config{MinDepth: 1, MaxDepth: 4, StartDepth: 2,
			BlockSize: 4, Steps: 18, RemeshPeriod: 3, Rebalance: balance,
			PerCellWork: 60e-9})
		if err != nil {
			t.Fatal(err)
		}
		ts := res.StepTimes()
		sum := 0.0
		for _, v := range ts[len(ts)-6:] {
			sum += v
		}
		return sum / 6
	}
	noLB := run(false)
	withLB := run(true)
	if withLB >= noLB {
		t.Fatalf("DistributedLB did not help: %v vs %v", withLB, noLB)
	}
}

func TestCheckpointTimesShrinkWithPEs(t *testing.T) {
	// Fig 8 right: same mesh, more PEs, faster checkpoint.
	times := map[int]float64{}
	for _, pes := range []int{16, 64, 256} {
		rt := newRT(pes)
		app, err := New(rt, Config{MinDepth: 2, MaxDepth: 2, StartDepth: 2,
			BlockSize: 8, Steps: 1, RemeshPeriod: 0})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := app.Run(); err != nil {
			t.Fatal(err)
		}
		snap := ckpt.Capture(rt)
		tm := ckpt.DefaultModel(pes)
		tm.Base = 1e-4
		times[pes] = float64(ckpt.DiskCheckpointTime(snap, pes, tm))
	}
	if !(times[16] > times[64] && times[64] > times[256]) {
		t.Fatalf("checkpoint time not shrinking: %v", times)
	}
}

func TestBitvecTopologyLocalOps(t *testing.T) {
	// The §IV-A claim: parent/child/neighbour from local index arithmetic.
	idx := charm.BitVecFromCoords(3, 1, 2, 2)
	x, y, z, d := idx.Coords()
	if x != 3 || y != 1 || z != 2 || d != 2 {
		t.Fatalf("coords round trip: %d %d %d %d", x, y, z, d)
	}
	if idx.Child(5).Parent() != idx {
		t.Fatal("child/parent inverse broken")
	}
}

func TestRejectsOddBlockSize(t *testing.T) {
	rt := newRT(2)
	if _, err := New(rt, Config{MinDepth: 1, MaxDepth: 2, BlockSize: 7, Steps: 1}); err == nil {
		t.Fatal("odd block size should be rejected")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (float64, float64, int) {
		rt := newRT(4)
		res, err := Run(rt, Config{MinDepth: 1, MaxDepth: 3, StartDepth: 2,
			BlockSize: 4, Steps: 9, RemeshPeriod: 3})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Elapsed), res.Mass[len(res.Mass)-1], res.Blocks[len(res.Blocks)-1]
	}
	t1, m1, b1 := run()
	t2, m2, b2 := run()
	if t1 != t2 || m1 != m2 || b1 != b2 {
		t.Fatalf("nondeterministic: (%v,%v,%d) vs (%v,%v,%d)", t1, m1, b1, t2, m2, b2)
	}
}

func TestRemeshUsesConstantCollectives(t *testing.T) {
	// The §IV-A claim: mesh restructuring needs O(1) global collectives
	// (quiescence detections) per remesh, not O(depth). Each remesh uses
	// exactly two QD rounds — decide-wave completion and structural-
	// change completion — regardless of tree depth.
	for _, maxDepth := range []int{3, 5} {
		rt := newRT(4)
		app, err := New(rt, Config{MinDepth: 1, MaxDepth: maxDepth, StartDepth: 2,
			BlockSize: 4, Steps: 9, RemeshPeriod: 3})
		if err != nil {
			t.Fatal(err)
		}
		res, err := app.Run()
		if err != nil {
			t.Fatal(err)
		}
		if res.Remeshes == 0 {
			t.Fatal("no remeshes")
		}
		perRemesh := float64(rt.Stats.QDRounds) / float64(res.Remeshes)
		if perRemesh != 2 {
			t.Fatalf("maxDepth %d: %.1f QD rounds per remesh, want 2 (O(1))",
				maxDepth, perRemesh)
		}
	}
}

func TestSplitExecutionMatchesStraightRun(t *testing.T) {
	// The §III-B split-execution property, end to end: 8 steps +
	// checkpoint + restart on a DIFFERENT PE count + 4 more steps must
	// reproduce the field of a straight 12-step run exactly (uniform
	// mesh: the advection update is a pure function of the field).
	cfg := Config{MinDepth: 2, MaxDepth: 2, StartDepth: 2, BlockSize: 4,
		RemeshPeriod: 0}

	straight := cfg
	straight.Steps = 12
	rtA := newRT(4)
	appA, err := New(rtA, straight)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := appA.Run(); err != nil {
		t.Fatal(err)
	}

	first := cfg
	first.Steps = 8
	rtB := newRT(4)
	appB, err := New(rtB, first)
	if err != nil {
		t.Fatal(err)
	}
	resB, err := appB.Run()
	if err != nil {
		t.Fatal(err)
	}
	snap := ckpt.Capture(rtB)

	second := cfg
	second.Steps = 4
	rtC := newRT(16) // restart on 4x the PEs
	appC, err := RestoreInto(rtC, second, snap)
	if err != nil {
		t.Fatal(err)
	}
	resC, err := appC.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Mass continuity across the restart (tolerance: the reduction sums
	// blocks in placement order, which differs across PE counts).
	mB, mC := resB.Mass[len(resB.Mass)-1], resC.Mass[0]
	if math.Abs(mC-mB) > 1e-12*math.Abs(mB) {
		t.Fatalf("mass jumped across restart: %v vs %v", mB, mC)
	}
	// Field equality, block by block, bit for bit.
	for _, idx := range appA.Blocks().Keys() {
		a := appA.Blocks().Get(idx).(*block)
		c := appC.Blocks().Get(idx).(*block)
		if c == nil {
			t.Fatalf("block %v missing after restart", idx)
		}
		for i := range a.U {
			if a.U[i] != c.U[i] {
				t.Fatalf("block %v cell %d: straight %v vs split %v",
					idx, i, a.U[i], c.U[i])
			}
		}
	}
}
