// Package amr implements the AMR3D mini-app of §IV-A: tree-based
// structured adaptive mesh refinement solving a 3-D first-order upwind
// advection equation. Blocks — the unit of computation — form the leaves
// of an oct-tree over the periodic unit cube and are chares indexed by
// bitvector indices, so a block derives its parent, children, and
// neighbours with purely local index arithmetic.
//
// The mini-app exercises exactly the features §IV-A highlights:
//
//   - object-based decomposition with dynamic insertion/deletion: blocks
//     split into 8 children (on the same PE) when the solution steepens
//     and 8 siblings merge into their parent when it flattens;
//   - quiescence detection: the 2:1-balance "ripple" of desired depths is
//     an unstructured message wave whose completion only QD can see, which
//     is what makes restructuring O(1) collectives instead of O(depth);
//   - distributed load balancing after each remesh, because refinement
//     concentrates new blocks on the PEs that host the refined region.
//
// The numerics are real: ghost-face exchange with restriction/prolongation
// across refinement boundaries, upwind fluxes, and a solution that on a
// uniformly refined mesh matches a sequential reference bit-for-bit.
package amr

import (
	"fmt"
	"math"
	"sort"

	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// Config parameterizes a run.
type Config struct {
	// MinDepth/MaxDepth bound the oct-tree leaf depth.
	MinDepth, MaxDepth int
	// StartDepth is the initial uniform refinement (default MinDepth+1,
	// clamped into range).
	StartDepth int
	// BlockSize is the cells per block edge (even; default 8).
	BlockSize int
	// Steps is the number of advection steps.
	Steps int
	// RemeshPeriod restructures the mesh every RemeshPeriod steps;
	// 0 disables adaptation.
	RemeshPeriod int
	// RefineTol/CoarsenTol are gradient thresholds.
	RefineTol  float64
	CoarsenTol float64
	// CFL is the Courant number (default 0.4).
	CFL float64
	// PerCellWork is compute seconds per cell update.
	PerCellWork float64
	// Rebalance runs the runtime's balancer after each remesh.
	Rebalance bool
}

func (c Config) withDefaults() Config {
	if c.BlockSize == 0 {
		c.BlockSize = 8
	}
	if c.MaxDepth == 0 {
		c.MaxDepth = c.MinDepth + 3
	}
	if c.StartDepth == 0 {
		c.StartDepth = c.MinDepth + 1
	}
	if c.StartDepth < c.MinDepth {
		c.StartDepth = c.MinDepth
	}
	if c.StartDepth > c.MaxDepth {
		c.StartDepth = c.MaxDepth
	}
	if c.RefineTol == 0 {
		c.RefineTol = 0.08
	}
	if c.CoarsenTol == 0 {
		c.CoarsenTol = 0.02
	}
	if c.CFL == 0 {
		c.CFL = 0.4
	}
	if c.PerCellWork == 0 {
		c.PerCellWork = 12e-9
	}
	return c
}

// velocity is the constant advection field (positive components so the
// upwind direction is fixed).
var velocity = [3]float64{1.0, 0.5, 0.25}

// Result reports a run.
type Result struct {
	// StepDone[k] is the completion time of step k.
	StepDone []des.Time
	// Mass[k] is the integral of u after step k.
	Mass []float64
	// Blocks[k] is the leaf count after step k.
	Blocks  []int
	Elapsed des.Time
	// Remeshes counts restructuring rounds.
	Remeshes int
}

// StepTimes returns per-step durations.
func (r *Result) StepTimes() []float64 {
	out := make([]float64, len(r.StepDone))
	prev := des.Time(0)
	for i, t := range r.StepDone {
		out[i] = float64(t - prev)
		prev = t
	}
	return out
}

const (
	epGhost charm.EP = iota
	epStart
	epDecide
	epRipple
	epSplit
	epMergeInto
	epMergeData
	epMergeRecv
	epTopo
	epResume
)

// relation of a ghost target to the sender.
const (
	relSame = iota
	relFiner
	relCoarser
)

// nbr is one ghost-exchange counterpart.
type nbr struct {
	Idx     charm.Index
	Rel     int
	Quarter int // sender's quarter on a coarser receiver's face, or the child quarter for finer targets
}

type ghostMsg struct {
	Step    int
	Dim     int
	Data    []float64
	Quarter int // -1 for a full face
}

type topoMsg struct {
	// SendTo[d] lists ghost targets for the +d face; Expect[d] is the
	// number of ghost messages arriving on the -d face; RecvFrom[d]
	// names those senders so constraint ripples travel both directions.
	SendTo   [3][]nbr
	RecvFrom [3][]charm.Index
	Expect   [3]int
}

type mergeMsg struct {
	Octant int
	Data   []float64 // (B/2)^3 restricted payload
}

// block is one oct-tree leaf chare.
type block struct {
	B     int
	Step  int
	U     []float64 // B^3 cell values
	Want  int       // desired depth during remesh
	NbAdv int       // max advertised depth among neighbours this remesh
	Topo  topoMsg
	Got   [3]int
	Ghost [3][]float64 // assembled upwind ghost faces (B^2 each)
	Have  [3][]bool    // which quarters arrived (finer senders)
	Pend  []ghostMsg
	// AwaitTopo gates ghost processing between a remesh decision and the
	// arrival of the rebuilt topology (ghosts buffer meanwhile).
	AwaitTopo bool
	// Decided gates ripple processing: neighbour advertisements can
	// overtake this block's own decide broadcast and must buffer until
	// the block has computed its initial desire.
	Decided   bool
	RippleBuf []int
	// Started flips when the start broadcast arrives; upwind ghosts can
	// overtake the broadcast and must buffer until the block has sent its
	// own step-0 faces.
	Started bool
	// Merge assembly (when acting as a freshly inserted parent).
	MergeGot int

	app *App //pup:skip //charmvet:specstate (idempotent rebind: every handler writes the pointer the factory installs)
}

func (b *block) Pup(p *pup.Pup) {
	p.Int(&b.B)
	p.Int(&b.Step)
	p.Float64s(&b.U)
	p.Int(&b.Want)
	p.Int(&b.NbAdv)
	p.Bool(&b.AwaitTopo)
	p.Bool(&b.Decided)
	pup.Slice(p, &b.RippleBuf, (*pup.Pup).Int)
	p.Bool(&b.Started)
	p.Int(&b.MergeGot)
	for d := 0; d < 3; d++ {
		p.Int(&b.Got[d])
		p.Float64s(&b.Ghost[d])
		pup.Slice(p, &b.Have[d], (*pup.Pup).Bool)
	}
	pup.Slice(p, &b.Pend, func(p *pup.Pup, g *ghostMsg) {
		p.Int(&g.Step)
		p.Int(&g.Dim)
		p.Float64s(&g.Data)
		p.Int(&g.Quarter)
	})
	// Topology is rebroadcast after every remesh and on restart.
	for d := 0; d < 3; d++ {
		pup.Slice(p, &b.Topo.SendTo[d], func(p *pup.Pup, n *nbr) {
			p.Uint8(&n.Idx.Kind)
			p.Uint64(&n.Idx.A)
			p.Uint64(&n.Idx.B)
			p.Uint64(&n.Idx.C)
			p.Int(&n.Rel)
			p.Int(&n.Quarter)
		})
		pup.Slice(p, &b.Topo.RecvFrom[d], func(p *pup.Pup, ix *charm.Index) {
			p.Uint8(&ix.Kind)
			p.Uint64(&ix.A)
			p.Uint64(&ix.B)
			p.Uint64(&ix.C)
		})
		p.Int(&b.Topo.Expect[d])
	}
}

// App wires AMR3D to a runtime.
type App struct {
	rt     *charm.Runtime
	cfg    Config
	blocks *charm.Array
	res    *Result
	err    error

	stepTarget int // next step boundary (remesh point or end)
	doneCount  int
	inRemesh   bool
}

// New builds the initial uniformly refined mesh.
func New(rt *charm.Runtime, cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	if cfg.BlockSize%2 != 0 {
		return nil, fmt.Errorf("amr: block size %d must be even", cfg.BlockSize)
	}
	if cfg.MinDepth < 0 || cfg.MaxDepth < cfg.MinDepth {
		return nil, fmt.Errorf("amr: bad depth range %d..%d", cfg.MinDepth, cfg.MaxDepth)
	}
	a := &App{rt: rt, cfg: cfg, res: &Result{}}
	handlers := []charm.Handler{
		epGhost:     a.onGhost,
		epStart:     a.onStart,
		epDecide:    a.onDecide,
		epRipple:    a.onRipple,
		epSplit:     a.onSplit,
		epMergeInto: a.onMergeInto,
		epMergeData: a.onMergeData,
		epMergeRecv: a.onMergeRecv,
		epTopo:      a.onTopo,
		epResume:    nil,
	}
	a.blocks = rt.DeclareArray("amr_blocks", func() charm.Chare { return &block{app: a} },
		handlers, charm.ArrayOpts{Migratable: true})
	d := cfg.StartDepth
	side := 1 << d
	for x := 0; x < side; x++ {
		for y := 0; y < side; y++ {
			for z := 0; z < side; z++ {
				idx := charm.BitVecFromCoords(x, y, z, d)
				b := &block{B: cfg.BlockSize, app: a}
				a.initBlock(b, idx)
				a.blocks.Insert(idx, b)
			}
		}
	}
	return a, nil
}

// initial condition: a smooth 3-D Gaussian pulse.
func initialU(x, y, z float64) float64 {
	dx, dy, dz := x-0.3, y-0.3, z-0.3
	return math.Exp(-(dx*dx + dy*dy + dz*dz) / (2 * 0.08 * 0.08))
}

func (a *App) initBlock(b *block, idx charm.Index) {
	B := b.B
	x0, y0, z0, d := idx.Coords()
	h := 1.0 / float64(B*(1<<d))
	b.U = make([]float64, B*B*B)
	for i := 0; i < B; i++ {
		for j := 0; j < B; j++ {
			for k := 0; k < B; k++ {
				x := (float64(x0*B+i) + 0.5) * h
				y := (float64(y0*B+j) + 0.5) * h
				z := (float64(z0*B+k) + 0.5) * h
				b.U[(i*B+j)*B+k] = initialU(x, y, z)
			}
		}
	}
}

// Blocks exposes the chare array.
func (a *App) Blocks() *charm.Array { return a.blocks }

// dt is the global time step, stable at the deepest allowed level.
func (a *App) dt() float64 {
	h := 1.0 / float64(a.cfg.BlockSize*(1<<a.cfg.MaxDepth))
	v := velocity[0] + velocity[1] + velocity[2]
	return a.cfg.CFL * h / v
}

// Run executes the configured number of steps.
func (a *App) Run() (*Result, error) {
	a.rebuildTopology(true)
	a.phaseLen()
	a.blocks.Broadcast(epStart, nil)
	a.res.Elapsed = a.rt.Run()
	if a.err != nil {
		return nil, a.err
	}
	if len(a.res.StepDone) < a.cfg.Steps {
		return nil, fmt.Errorf("amr: completed %d of %d steps", len(a.res.StepDone), a.cfg.Steps)
	}
	return a.res, nil
}

// Run is the one-call driver.
func Run(rt *charm.Runtime, cfg Config) (*Result, error) {
	app, err := New(rt, cfg)
	if err != nil {
		return nil, err
	}
	return app.Run()
}

func (a *App) phaseLen() {
	a.stepTarget = len(a.res.StepDone) + a.cfg.RemeshPeriod
	if a.cfg.RemeshPeriod == 0 || a.stepTarget > a.cfg.Steps {
		a.stepTarget = a.cfg.Steps
	}
}

// ---- topology ----

// leafSet returns the current leaves.
func (a *App) leafSet() map[charm.Index]bool {
	set := map[charm.Index]bool{}
	for _, idx := range a.blocks.Keys() {
		set[idx] = true
	}
	return set
}

// rebuildTopology recomputes every leaf's ghost-exchange lists from the
// tree and (optionally) installs them directly (initial setup); afterwards
// lists travel to blocks as epTopo messages.
//
// In the published system this discovery is fully distributed over the
// bitvector index space; rebuilding it from the array keys is the
// simulation-level stand-in, and its cost is charged as the same O(1)
// collective + one configuration message per block.
func (a *App) rebuildTopology(install bool) map[charm.Index]topoMsg {
	leaves := a.leafSet()
	// Iterate leaves in index order, not map order: the a.err latch below
	// keeps the *last* violation seen, and ghost-list construction should
	// not depend on Go's randomized map iteration (charmvet: dettaint).
	ordered := make([]charm.Index, 0, len(leaves))
	for idx := range leaves {
		ordered = append(ordered, idx)
	}
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].Less(ordered[j]) })
	out := make(map[charm.Index]topoMsg, len(leaves))
	for _, idx := range ordered {
		out[idx] = topoMsg{}
	}
	for _, idx := range ordered {
		x, y, z, d := idx.Coords()
		side := 1 << d
		tm := out[idx]
		for dim := 0; dim < 3; dim++ {
			nx, ny, nz := x, y, z
			switch dim {
			case 0:
				nx = (x + 1) % side
			case 1:
				ny = (y + 1) % side
			case 2:
				nz = (z + 1) % side
			}
			cand := charm.BitVecFromCoords(nx, ny, nz, d)
			recv := func(target charm.Index) {
				peer := out[target]
				peer.RecvFrom[dim] = append(peer.RecvFrom[dim], idx)
				peer.Expect[dim]++
				out[target] = peer
			}
			switch {
			case leaves[cand]:
				tm.SendTo[dim] = append(tm.SendTo[dim], nbr{Idx: cand, Rel: relSame})
				recv(cand)
			case d > 0 && leaves[cand.Parent()]:
				// Coarser neighbour: I cover one quarter of its face.
				q := faceQuarter(dim, nx, ny, nz)
				tm.SendTo[dim] = append(tm.SendTo[dim], nbr{Idx: cand.Parent(), Rel: relCoarser, Quarter: q})
				recv(cand.Parent())
			default:
				// Finer neighbours: the 4 children of cand touching my face.
				found := 0
				for _, ch := range faceChildren(cand, dim) {
					if !leaves[ch] {
						continue
					}
					cx, cy, cz, _ := ch.Coords()
					q := faceQuarter(dim, cx, cy, cz)
					tm.SendTo[dim] = append(tm.SendTo[dim], nbr{Idx: ch, Rel: relFiner, Quarter: q})
					recv(ch)
					found++
				}
				if found != 4 {
					a.err = fmt.Errorf("amr: 2:1 balance violated at %v dim %d (%d fine neighbours)", idx, dim, found)
				}
			}
		}
		out[idx] = tm
	}
	// RecvFrom lists accumulated in sender order; sort for determinism.
	for _, idx := range ordered {
		tm := out[idx]
		for d := 0; d < 3; d++ {
			sort.Slice(tm.RecvFrom[d], func(i, j int) bool {
				return tm.RecvFrom[d][i].Less(tm.RecvFrom[d][j])
			})
		}
		out[idx] = tm
	}
	if install {
		for _, idx := range ordered {
			b := a.blocks.Get(idx).(*block)
			b.Topo = out[idx]
		}
	}
	return out
}

// faceQuarter maps a block's coords to its quarter (0..3) on the face of a
// coarser neighbour, using the two dimensions orthogonal to dim.
func faceQuarter(dim, x, y, z int) int {
	switch dim {
	case 0:
		return (y%2)*2 + z%2
	case 1:
		return (x%2)*2 + z%2
	default:
		return (x%2)*2 + y%2
	}
}

// faceChildren returns the 4 children of c on the face adjacent to a -dim
// neighbour (the low side in dim, since the sender looks in +dim).
func faceChildren(c charm.Index, dim int) []charm.Index {
	var out []charm.Index
	for o := 0; o < 8; o++ {
		low := false
		switch dim {
		case 0:
			low = o&1 == 0
		case 1:
			low = o&2 == 0
		default:
			low = o&4 == 0
		}
		if low {
			out = append(out, c.Child(o))
		}
	}
	return out
}

// ---- stepping ----

func (a *App) onStart(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	b.Started = true
	b.resetGhosts()
	a.advance(b, ctx)
}

func (b *block) resetGhosts() {
	B := b.B
	for d := 0; d < 3; d++ {
		if b.Ghost[d] == nil {
			b.Ghost[d] = make([]float64, B*B)
		}
		if b.Have[d] == nil {
			b.Have[d] = make([]bool, 4)
		}
	}
}

// face extracts the B² boundary layer of u on the given side of dim.
func face(u []float64, B, dim, side int) []float64 {
	out := make([]float64, B*B)
	idx := func(i, j, k int) float64 { return u[(i*B+j)*B+k] }
	pos := 0
	if side == 1 {
		pos = B - 1
	}
	n := 0
	for p := 0; p < B; p++ {
		for q := 0; q < B; q++ {
			switch dim {
			case 0:
				out[n] = idx(pos, p, q)
			case 1:
				out[n] = idx(p, pos, q)
			default:
				out[n] = idx(p, q, pos)
			}
			n++
		}
	}
	return out
}

// downsample averages a B² face to (B/2)².
func downsample(f []float64, B int) []float64 {
	h := B / 2
	out := make([]float64, h*h)
	for p := 0; p < h; p++ {
		for q := 0; q < h; q++ {
			out[p*h+q] = 0.25 * (f[(2*p)*B+2*q] + f[(2*p)*B+2*q+1] +
				f[(2*p+1)*B+2*q] + f[(2*p+1)*B+2*q+1])
		}
	}
	return out
}

// upsampleQuarter expands quarter q of a B² face to a full B² face at the
// finer resolution (piecewise constant).
func upsampleQuarter(f []float64, B, q int) []float64 {
	h := B / 2
	po := (q / 2) * h
	qo := (q % 2) * h
	out := make([]float64, B*B)
	for p := 0; p < B; p++ {
		for r := 0; r < B; r++ {
			out[p*B+r] = f[(po+p/2)*B+(qo+r/2)]
		}
	}
	return out
}

// sendGhosts ships the block's three upwind (+dim) faces.
func (a *App) sendGhosts(b *block, ctx *charm.Ctx) {
	B := b.B
	for dim := 0; dim < 3; dim++ {
		f := face(b.U, B, dim, 1)
		for _, t := range b.Topo.SendTo[dim] {
			var data []float64
			quarter := -1
			switch t.Rel {
			case relSame:
				data = f
			case relFiner:
				data = upsampleQuarter(f, B, t.Quarter)
			case relCoarser:
				data = downsample(f, B)
				quarter = t.Quarter
			}
			ctx.SendOpt(a.blocks, t.Idx, epGhost,
				ghostMsg{Step: b.Step, Dim: dim, Data: data, Quarter: quarter},
				&charm.SendOpts{Bytes: len(data)*8 + 48})
		}
	}
}

func (a *App) onGhost(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	g := msg.(ghostMsg)
	if !b.Started || b.AwaitTopo || g.Step != b.Step {
		b.Pend = append(b.Pend, g)
		return
	}
	a.applyGhost(b, g)
	a.maybeStep(b, ctx)
}

func (a *App) applyGhost(b *block, g ghostMsg) {
	B := b.B
	b.resetGhosts()
	if len(g.Data) == B*B {
		copy(b.Ghost[g.Dim], g.Data)
	} else {
		// Quarter from a finer sender (already at my resolution after
		// its downsample? no: finer senders downsample to my quarter).
		h := B / 2
		q := g.Quarter
		po := (q / 2) * h
		qo := (q % 2) * h
		for p := 0; p < h; p++ {
			for r := 0; r < h; r++ {
				b.Ghost[g.Dim][(po+p)*B+(qo+r)] = g.Data[p*h+r]
			}
		}
	}
	b.Got[g.Dim]++
}

// maybeStep advances the block once all upwind ghosts arrived.
func (a *App) maybeStep(b *block, ctx *charm.Ctx) {
	for d := 0; d < 3; d++ {
		if b.Got[d] < b.Topo.Expect[d] {
			return
		}
	}
	if a.inRemesh {
		return
	}
	B := b.B
	_, _, _, depth := ctx.Index().Coords()
	h := 1.0 / float64(B*(1<<depth))
	dt := a.dt()
	u := b.U
	nu := make([]float64, len(u))
	at := func(i, j, k int) float64 {
		// Upwind neighbours in -dim; fall to ghost faces. Note the
		// ghost of dim d arrived from the +d neighbour of the sender,
		// i.e. it is OUR -d ghost... the sender's +face is our -face.
		if i < 0 {
			return b.Ghost[0][j*B+k]
		}
		if j < 0 {
			return b.Ghost[1][i*B+k]
		}
		if k < 0 {
			return b.Ghost[2][i*B+j]
		}
		return u[(i*B+j)*B+k]
	}
	var mass float64
	cellV := h * h * h
	for i := 0; i < B; i++ {
		for j := 0; j < B; j++ {
			for k := 0; k < B; k++ {
				c := u[(i*B+j)*B+k]
				v := c -
					dt/h*(velocity[0]*(c-at(i-1, j, k))+
						velocity[1]*(c-at(i, j-1, k))+
						velocity[2]*(c-at(i, j, k-1)))
				nu[(i*B+j)*B+k] = v
				mass += v * cellV
			}
		}
	}
	b.U = nu
	ctx.Charge(float64(B*B*B) * a.cfg.PerCellWork)
	b.Step++
	for d := 0; d < 3; d++ {
		b.Got[d] = 0
	}
	ctx.Contribute(mass, charm.SumF64, charm.CallbackFunc(0, a.onStepDone))
	if b.Step >= a.stepTarget {
		return // wait for the driver (remesh or finish)
	}
	a.advance(b, ctx)
}

func (a *App) advance(b *block, ctx *charm.Ctx) {
	a.sendGhosts(b, ctx)
	// Upwind-only coupling lets upstream blocks run several steps ahead,
	// so the buffer may hold ghosts for multiple future steps: apply the
	// current step's, keep the rest.
	if len(b.Pend) > 0 {
		var keep []ghostMsg
		for _, g := range b.Pend {
			switch {
			case g.Step == b.Step:
				a.applyGhost(b, g)
			case g.Step > b.Step:
				keep = append(keep, g)
			default:
				a.err = fmt.Errorf("amr: stale ghost for step %d at step %d", g.Step, b.Step)
				ctx.Exit()
				return
			}
		}
		b.Pend = keep
	}
	a.maybeStep(b, ctx)
}

// onStepDone runs on PE 0 per mass reduction.
func (a *App) onStepDone(ctx *charm.Ctx, result any) {
	a.res.StepDone = append(a.res.StepDone, ctx.Now())
	a.res.Mass = append(a.res.Mass, result.(float64))
	a.res.Blocks = append(a.res.Blocks, a.blocks.Len())
	n := len(a.res.StepDone)
	if n >= a.cfg.Steps {
		ctx.Exit()
		return
	}
	if n >= a.stepTarget {
		a.startRemesh(ctx)
	}
}

// ---- remesh ----

func (a *App) startRemesh(ctx *charm.Ctx) {
	a.inRemesh = true
	a.res.Remeshes++
	ctx.Broadcast(a.blocks, epDecide, nil, nil)
	a.rt.StartQD(charm.CallbackFunc(0, func(ctx *charm.Ctx, _ any) {
		a.applyRemesh(ctx)
	}))
}

// onDecide computes the block's desired depth and starts the ripple.
func (a *App) onDecide(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	b.AwaitTopo = true
	_, _, _, d := ctx.Index().Coords()
	g := b.maxGradient()
	want := d
	if g > a.cfg.RefineTol && d < a.cfg.MaxDepth {
		want = d + 1
	} else if g < a.cfg.CoarsenTol && d > a.cfg.MinDepth {
		want = d - 1
	}
	b.Want = want
	b.NbAdv = 0
	b.Decided = true
	ctx.Charge(float64(b.B*b.B*b.B) * 2e-9)
	a.ripple(b, ctx, adv(want, d))
	// Apply neighbour advertisements that overtook the decide broadcast.
	if len(b.RippleBuf) > 0 {
		buf := b.RippleBuf
		b.RippleBuf = nil
		for _, nbAdv := range buf {
			a.applyRipple(b, ctx, nbAdv, d)
		}
	}
}

// adv is the depth a block advertises during the constraint wave: its
// target depth for refiners, its current depth for would-be coarseners
// (coarsening is tentative — it may be vetoed by siblings — so neighbours
// must not rely on it).
func adv(want, depth int) int {
	if want > depth {
		return want
	}
	return depth
}

// maxGradient is the refinement indicator.
func (b *block) maxGradient() float64 {
	B := b.B
	g := 0.0
	at := func(i, j, k int) float64 { return b.U[(i*B+j)*B+k] }
	for i := 0; i < B; i++ {
		for j := 0; j < B; j++ {
			for k := 0; k < B; k++ {
				if i+1 < B {
					g = math.Max(g, math.Abs(at(i+1, j, k)-at(i, j, k)))
				}
				if j+1 < B {
					g = math.Max(g, math.Abs(at(i, j+1, k)-at(i, j, k)))
				}
				if k+1 < B {
					g = math.Max(g, math.Abs(at(i, j, k+1)-at(i, j, k)))
				}
			}
		}
	}
	return g
}

// ripple notifies every ghost counterpart — both the blocks we send to
// and the blocks that send to us — of our advertised depth.
func (a *App) ripple(b *block, ctx *charm.Ctx, myAdv int) {
	for dim := 0; dim < 3; dim++ {
		for _, t := range b.Topo.SendTo[dim] {
			ctx.SendOpt(a.blocks, t.Idx, epRipple, myAdv, &charm.SendOpts{Bytes: 24})
		}
		for _, src := range b.Topo.RecvFrom[dim] {
			ctx.SendOpt(a.blocks, src, epRipple, myAdv, &charm.SendOpts{Bytes: 24})
		}
	}
}

// onRipple raises our desired depth to stay within one level of a
// neighbour's advertised depth, propagating when our own advertisement
// changes. Advertisements arriving before our own decision buffer.
func (a *App) onRipple(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	nbAdv := msg.(int)
	if !b.Decided {
		b.RippleBuf = append(b.RippleBuf, nbAdv)
		return
	}
	_, _, _, d := ctx.Index().Coords()
	a.applyRipple(b, ctx, nbAdv, d)
}

func (a *App) applyRipple(b *block, ctx *charm.Ctx, nbAdv, d int) {
	if nbAdv > b.NbAdv {
		b.NbAdv = nbAdv
	}
	if nbAdv-1 > b.Want {
		oldAdv := adv(b.Want, d)
		b.Want = nbAdv - 1
		if newAdv := adv(b.Want, d); newAdv > oldAdv {
			a.ripple(b, ctx, newAdv)
		}
	}
}

// applyRemesh runs after the decide wave quiesces: compute the new leaf
// set deterministically and command splits and merges.
func (a *App) applyRemesh(ctx *charm.Ctx) {
	// Gather desires in deterministic key order.
	keys := a.blocks.Keys()
	want := map[charm.Index]int{}
	for _, idx := range keys {
		want[idx] = a.blocks.Get(idx).(*block).Want
	}
	var splits, mergeParents []charm.Index
	for _, idx := range keys {
		w := want[idx]
		_, _, _, d := idx.Coords()
		if w > d {
			splits = append(splits, idx)
			continue
		}
		if w < d && idx.Octant() == 0 {
			// Coarsen only if all 8 siblings exist, all want to coarsen,
			// and no sibling has a neighbour whose advertised depth would
			// violate 2:1 against the coarser parent.
			parent := idx.Parent()
			ok := true
			for o := 0; o < 8; o++ {
				ch := parent.Child(o)
				cw, exists := want[ch]
				_, _, _, cd := ch.Coords()
				if !exists || cw >= cd {
					ok = false
					break
				}
				if a.blocks.Get(ch).(*block).NbAdv > cd {
					ok = false
					break
				}
			}
			if ok {
				mergeParents = append(mergeParents, parent)
			}
		}
	}
	for _, idx := range splits {
		a.blocks.Send(idx, epSplit, nil)
	}
	for _, parent := range mergeParents {
		// The octant-0 child hosts the new parent block.
		a.blocks.Send(parent.Child(0), epMergeInto, parent)
	}
	// When the structural traffic quiesces, rebuild topology and resume.
	a.rt.StartQD(charm.CallbackFunc(0, func(ctx *charm.Ctx, _ any) {
		topo := a.rebuildTopology(false)
		if a.err != nil {
			ctx.Exit()
			return
		}
		idxs := make([]charm.Index, 0, len(topo))
		for idx := range topo {
			idxs = append(idxs, idx)
		}
		sort.Slice(idxs, func(i, j int) bool { return idxs[i].Less(idxs[j]) })
		for _, idx := range idxs {
			ctx.SendOpt(a.blocks, idx, epTopo, topo[idx], &charm.SendOpts{Bytes: 200})
		}
		a.inRemesh = false
		a.phaseLen()
		if a.cfg.Rebalance && a.rt.Balancer() != nil {
			a.rt.Rebalance()
		}
	}))
}

// onSplit replaces the block with 8 prolongated children on this PE.
func (a *App) onSplit(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	idx := ctx.Index()
	B := b.B
	for o := 0; o < 8; o++ {
		child := &block{B: B, Step: b.Step, AwaitTopo: true, Started: true, app: a}
		child.U = make([]float64, B*B*B)
		xo := (o & 1) * B / 2
		yo := (o >> 1 & 1) * B / 2
		zo := (o >> 2 & 1) * B / 2
		for i := 0; i < B; i++ {
			for j := 0; j < B; j++ {
				for k := 0; k < B; k++ {
					child.U[(i*B+j)*B+k] = b.U[((xo+i/2)*B+(yo+j/2))*B+(zo+k/2)]
				}
			}
		}
		ctx.Insert(a.blocks, idx.Child(o), child)
	}
	ctx.Charge(float64(8*B*B*B) * 3e-9)
	ctx.Destroy(a.blocks, idx)
}

// onMergeInto (octant-0 child) creates the parent and asks siblings for
// their restricted data; it contributes its own immediately.
func (a *App) onMergeInto(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	parent := msg.(charm.Index)
	nb := &block{B: b.B, Step: b.Step, AwaitTopo: true, Started: true, app: a}
	nb.U = make([]float64, b.B*b.B*b.B)
	ctx.Insert(a.blocks, parent, nb)
	for o := 1; o < 8; o++ {
		ctx.SendOpt(a.blocks, parent.Child(o), epMergeData, parent, nil)
	}
	a.contributeMerge(b, ctx, parent, 0)
	ctx.Destroy(a.blocks, ctx.Index())
}

// onMergeData (octants 1..7) restrict and ship their data, then die.
func (a *App) onMergeData(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	parent := msg.(charm.Index)
	a.contributeMerge(b, ctx, parent, ctx.Index().Octant())
	ctx.Destroy(a.blocks, ctx.Index())
}

func (a *App) contributeMerge(b *block, ctx *charm.Ctx, parent charm.Index, octant int) {
	B := b.B
	h := B / 2
	data := make([]float64, h*h*h)
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			for k := 0; k < h; k++ {
				s := 0.0
				for di := 0; di < 2; di++ {
					for dj := 0; dj < 2; dj++ {
						for dk := 0; dk < 2; dk++ {
							s += b.U[((2*i+di)*B+2*j+dj)*B+2*k+dk]
						}
					}
				}
				data[(i*h+j)*h+k] = s / 8
			}
		}
	}
	ctx.Charge(float64(B*B*B) * 2e-9)
	ctx.SendOpt(a.blocks, parent, epMergeRecv,
		mergeMsg{Octant: octant, Data: data},
		&charm.SendOpts{Bytes: len(data)*8 + 32})
}

// onMergeRecv assembles a restricted octant into the freshly created
// parent block.
func (a *App) onMergeRecv(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	m := msg.(mergeMsg)
	B := b.B
	h := B / 2
	xo := (m.Octant & 1) * h
	yo := (m.Octant >> 1 & 1) * h
	zo := (m.Octant >> 2 & 1) * h
	for i := 0; i < h; i++ {
		for j := 0; j < h; j++ {
			for k := 0; k < h; k++ {
				b.U[((xo+i)*B+yo+j)*B+zo+k] = m.Data[(i*h+j)*h+k]
			}
		}
	}
	b.MergeGot++
}

func (a *App) onTopo(obj charm.Chare, ctx *charm.Ctx, msg any) {
	b := obj.(*block)
	b.app = a
	b.Topo = msg.(topoMsg)
	b.AwaitTopo = false
	b.Decided = false
	for d := 0; d < 3; d++ {
		b.Got[d] = 0
	}
	b.resetGhosts()
	a.advance(b, ctx)
}

// RestoreInto rebuilds an AMR application from a disk checkpoint (the
// "+restart log" flow of §III-B): the configured runtime may have a
// different PE count than the checkpointed run — elements are re-homed by
// the location manager. Block step counters are rebased to zero, so the
// returned app executes cfg.Steps further steps from the restored field.
func RestoreInto(rt *charm.Runtime, cfg Config, snap *ckpt.Snapshot) (*App, error) {
	app, err := New(rt, cfg)
	if err != nil {
		return nil, err
	}
	// Drop the freshly initialized mesh; the checkpoint defines the tree.
	for _, idx := range app.blocks.Keys() {
		app.blocks.Remove(idx)
	}
	if err := ckpt.Restore(rt, snap); err != nil {
		return nil, err
	}
	if app.blocks.Len() == 0 {
		return nil, fmt.Errorf("amr: checkpoint restored no blocks")
	}
	// Rebase: all blocks sit at the same physical step (checkpoints are
	// taken at step boundaries); continue counting from zero.
	for _, idx := range app.blocks.Keys() {
		b := app.blocks.Get(idx).(*block)
		b.app = app
		b.Step = 0
		b.Got = [3]int{}
		b.Pend = nil
		b.AwaitTopo = false
		b.Started = false
	}
	return app, nil
}
