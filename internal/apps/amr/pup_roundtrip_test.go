package amr

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/pup/puptest"
)

func TestPupRoundTrip(t *testing.T) {
	puptest.CheckEqual(t, &block{
		B: 2, Step: 9, U: []float64{1, 2, 3, 4, 5, 6, 7, 8},
		Want: 2, NbAdv: 1,
		Topo: topoMsg{
			SendTo: [3][]nbr{
				{{Idx: charm.Idx3(1, 0, 0), Rel: 1, Quarter: -1}},
				nil,
				{{Idx: charm.Idx3(0, 0, 1), Rel: 0, Quarter: 2}},
			},
			RecvFrom: [3][]charm.Index{{charm.Idx3(1, 1, 0)}, nil, nil},
			Expect:   [3]int{1, 0, 2},
		},
		Got:   [3]int{1, 0, 0},
		Ghost: [3][]float64{{0.5, 0.5, 0.25, 0.25}, nil, nil},
		Have:  [3][]bool{{true, false, true, false}, nil, nil},
		Pend: []ghostMsg{
			{Step: 10, Dim: 1, Data: []float64{9, 8}, Quarter: -1},
		},
		AwaitTopo: true, Decided: true,
		RippleBuf: []int{2, 3},
		Started:   true, MergeGot: 4,
	})
}
