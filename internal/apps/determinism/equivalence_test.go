package determinism

import (
	"fmt"
	"runtime"
	"testing"

	"charmgo/internal/apps/amr"
	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/pdes"
	"charmgo/internal/apps/stencil"
	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

// The cross-backend equivalence suite: every app must produce a
// bit-identical run digest on the sequential engine, the conservative
// parsim engine, and the optimistic optsim engine, at several GOMAXPROCS
// settings. The digest covers the full utilization/message trace, the
// executed-event count, and the runtime statistics, so "identical" here
// means each parallel backend reproduced the sequential run event for
// event — optsim additionally proving that every speculation it rolled
// back left no trace in chare state, location caches, or scheduler queues.

// withBackend overlays a backend selection on a machine config factory.
func withBackend(mk func() machine.Config, backend string) func() machine.Config {
	return func() machine.Config {
		c := mk()
		c.Backend = backend
		return c
	}
}

// parallelBackends are the engines that must reproduce the sequential
// digest bit for bit.
var parallelBackends = []string{"parallel", "optimistic"}

func assertCrossBackend(t *testing.T, name string, mk func() machine.Config, run func(rt *charm.Runtime) string) {
	t.Helper()
	seq := digestedRun(t, withBackend(mk, "sequential"), run)
	for _, backend := range parallelBackends {
		for _, procs := range []int{1, 2, 8} {
			t.Run(fmt.Sprintf("%s/gomaxprocs=%d", backend, procs), func(t *testing.T) {
				prev := runtime.GOMAXPROCS(procs)
				defer runtime.GOMAXPROCS(prev)
				par := digestedRun(t, withBackend(mk, backend), run)
				if par != seq {
					t.Errorf("%s: %s backend diverged from sequential at GOMAXPROCS=%d:\n  sequential: %s\n  %s:   %s",
						name, backend, procs, seq, backend, par)
				}
			})
		}
	}
}

// Testbed machines put one PE per node, which maximizes sharding: every PE
// is its own conservative-window shard, so these runs exercise the widest
// possible parallelism in the engine.

func TestLeanMDCrossBackend(t *testing.T) {
	cfg := leanmd.Config{
		CellsX: 3, CellsY: 3, CellsZ: 3,
		AtomsPerCell: 20, Steps: 8, Seed: 42,
		LBPeriod: 3, Gaussian: 0.35, // imbalance + migrations in the loop
	}
	assertCrossBackend(t, "leanmd",
		func() machine.Config { return machine.Testbed(8) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Greedy{})
			res, err := leanmd.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("atoms=%d energy=%v stepdone=%v", res.Atoms, res.Energy, res.StepDone)
		})
}

func TestPDESCrossBackend(t *testing.T) {
	cfg := pdes.Config{
		LPs: 64, EventsPerLP: 8, TargetEvents: 4000, Seed: 42,
		UseTram: true, LBPeriodWindows: 4,
	}
	assertCrossBackend(t, "pdes",
		func() machine.Config { return machine.Testbed(16) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Greedy{})
			res, err := pdes.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("committed=%d windows=%d maxvt=%v", res.Committed, res.Windows, res.MaxVT)
		})
}

// TestAMRCrossBackend covers the dynamic Insert/Destroy path: AMR remeshing
// creates and destroys blocks mid-run, with distributed LB migrating them,
// so this is the test that keeps element-table minting, home-PE message
// buffering, and location-cache invalidation identical across all three
// backends (AMR was SeqOnly before the parallel backends learned to handle
// dynamic element populations).
func TestAMRCrossBackend(t *testing.T) {
	cfg := amr.Config{
		MinDepth: 2, MaxDepth: 5, StartDepth: 3, BlockSize: 8,
		Steps: 8, RemeshPeriod: 3, Rebalance: true, PerCellWork: 200e-9,
	}
	assertCrossBackend(t, "amr",
		func() machine.Config { return machine.Testbed(16) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Distributed{Seed: 11})
			res, err := amr.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("mass=%v blocks=%v remesh=%d", res.Mass, res.Blocks, res.Remeshes)
		})
}

func TestStencilCrossBackend(t *testing.T) {
	cfg := stencil.Config{
		GridN: 96, Chares: 12, Iters: 12, LBPeriod: 4,
	}
	assertCrossBackend(t, "stencil",
		func() machine.Config { return machine.Testbed(16) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Greedy{})
			res, err := stencil.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("iters=%d residuals=%v done=%v", len(res.Residuals), res.Residuals, res.IterDone)
		})
}
