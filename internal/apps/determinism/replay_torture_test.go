package determinism

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"runtime"
	"testing"

	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/pdes"
	"charmgo/internal/apps/stencil"
	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/optsim"
	"charmgo/internal/trace"
)

// Replay torture suite: the optimistic backend with infrequent state saving
// must reproduce the sequential digest bit for bit at every snapshot
// interval — eager (K=1), sparse fixed (K=4, K=16), and the adaptive
// Rönngren–Ayani policy (K=0) — while rollbacks force the restore +
// coast-forward path. A digest mismatch here means a replayed handler
// diverged from its original execution: a stale retained image, an
// unrecorded location resolution, a leaked side effect, or a payload
// mutated after send.

// snapIntervals covers the eager baseline, two sparse fixed intervals, and
// the adaptive policy.
var snapIntervals = []int{1, 4, 16, 0}

// torturedRun is digestedRun with the runtime handed back so callers can
// inspect speculation and state-saving counters after the run.
func torturedRun(t *testing.T, mk func() machine.Config, run func(rt *charm.Runtime) string) (string, *charm.Runtime) {
	t.Helper()
	rt := charm.New(machine.New(mk()))
	tr := trace.New(rt, 0.05)
	tr.Start()
	summary := run(rt)

	h := sha256.New()
	fmt.Fprintf(h, "summary %s\n", summary)
	fmt.Fprintf(h, "events %d\n", rt.Engine().Executed())
	fmt.Fprintf(h, "stats %+v\n", rt.Stats)
	if err := tr.WriteJSON(h); err != nil {
		t.Fatalf("writing trace: %v", err)
	}
	return hex.EncodeToString(h.Sum(nil)), rt
}

// assertReplayTorture runs the app once sequentially, then on the
// optimistic backend at each snapshot interval, requiring identical
// digests. When wantRollbacks is set the config is expected to provoke
// stragglers, and the test additionally asserts that the rollback and (for
// K != 1) coast-forward machinery actually fired — a torture test that
// never rolls back proves nothing.
func assertReplayTorture(t *testing.T, name string, mk func() machine.Config, run func(rt *charm.Runtime) string, wantRollbacks bool) {
	t.Helper()
	seq := digestedRun(t, withBackend(mk, "sequential"), run)
	for _, k := range snapIntervals {
		k := k
		t.Run(fmt.Sprintf("snap_interval=%d", k), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(8)
			defer runtime.GOMAXPROCS(prev)
			opt, rt := torturedRun(t, func() machine.Config {
				c := mk()
				c.Backend = "optimistic"
				c.SnapInterval = k
				return c
			}, run)
			if opt != seq {
				t.Errorf("%s: optimistic backend diverged from sequential at SnapInterval=%d:\n  sequential: %s\n  optimistic: %s",
					name, k, seq, opt)
			}
			st := rt.Engine().(*optsim.Engine).EngineStats()
			saves := rt.SpecSaveStats()
			t.Logf("%s K=%d: rolledback=%d snapshots=%d avoided=%d restores=%d replays=%d finalK=%d",
				name, k, st.RolledBack, saves.Snapshots, saves.SnapshotsAvoided, saves.Restores, saves.Replays, saves.SnapInterval)
			if wantRollbacks {
				if st.RolledBack == 0 {
					t.Errorf("%s: SnapInterval=%d run provoked no rollbacks; the torture config has gone stale", name, k)
				}
				if k != 1 && saves.Replays == 0 {
					t.Errorf("%s: SnapInterval=%d rolled back %d speculations but coast-forwarded zero deliveries",
						name, k, st.RolledBack)
				}
			}
			if k != 1 && saves.SnapshotsAvoided == 0 && saves.Snapshots > 0 {
				t.Errorf("%s: SnapInterval=%d avoided no snapshots — infrequent saving is not engaging", name, k)
			}
		})
	}
}

// TestPDESReplayTorture is the rollback-cascade workhorse: PHOLD at low
// lookahead without TRAM (so LPs declare PureHandlers and keep sparse
// images) speculates far past the conservative frontier and takes real
// straggler rollbacks, each of which restores a retained image and
// coast-forwards the committed deliveries logged since.
func TestPDESReplayTorture(t *testing.T) {
	cfg := pdes.Config{
		LPs: 64, EventsPerLP: 8, TargetEvents: 8000, Seed: 42,
		Lookahead: 0.05, MeanDelay: 4.0,
	}
	assertReplayTorture(t, "pdes",
		func() machine.Config { return machine.Testbed(8) },
		func(rt *charm.Runtime) string {
			res, err := pdes.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("committed=%d windows=%d maxvt=%v", res.Committed, res.Windows, res.MaxVT)
		}, true)
}

// TestLeanMDReplayTorture exercises sparse imaging under migration: LB
// moves cells mid-run, which must invalidate retained images (a replay
// from a pre-migration image would resurrect stale meters and positions).
func TestLeanMDReplayTorture(t *testing.T) {
	cfg := leanmd.Config{
		CellsX: 3, CellsY: 3, CellsZ: 3,
		AtomsPerCell: 20, Steps: 6, Seed: 42,
		LBPeriod: 3, Gaussian: 0.35,
	}
	assertReplayTorture(t, "leanmd",
		func() machine.Config { return machine.Testbed(8) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Greedy{})
			res, err := leanmd.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("atoms=%d energy=%v stepdone=%v", res.Atoms, res.Energy, res.StepDone)
		}, true)
}

// TestStencilReplayTorture covers the reduction-heavy bulk-synchronous
// shape: blocks carry large float grids, so a single stale image or
// mis-replayed halo exchange shifts every residual after it.
func TestStencilReplayTorture(t *testing.T) {
	cfg := stencil.Config{
		GridN: 96, Chares: 12, Iters: 10, LBPeriod: 4,
	}
	assertReplayTorture(t, "stencil",
		func() machine.Config { return machine.Testbed(16) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Greedy{})
			res, err := stencil.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("iters=%d residuals=%v done=%v", len(res.Residuals), res.Residuals, res.IterDone)
		}, true)
}
