// Package determinism holds the cross-app determinism regression suite:
// the same seed must produce the same run, bit for bit, event for event.
// It complements charmvet (internal/analysis): the static pass forbids the
// constructs that break reproducibility; this test catches whatever slips
// through by running the LeanMD and PDES mini-apps twice — with load
// balancing, migration, and (for PDES) TRAM aggregation in the loop — and
// comparing event-trace digests.
package determinism

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"

	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/pdes"
	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/trace"
)

// digestedRun executes one simulation with a tracer attached and returns a
// digest of everything observable about the run: the full utilization/
// message trace, the event count, and the app-level result summary.
func digestedRun(t *testing.T, mk func() machine.Config, run func(rt *charm.Runtime) string) string {
	t.Helper()
	rt := charm.New(machine.New(mk()))
	tr := trace.New(rt, 0.05)
	tr.Start()
	summary := run(rt)

	h := sha256.New()
	fmt.Fprintf(h, "summary %s\n", summary)
	fmt.Fprintf(h, "events %d\n", rt.Engine().Executed())
	fmt.Fprintf(h, "stats %+v\n", rt.Stats)
	if err := tr.WriteJSON(h); err != nil {
		t.Fatalf("writing trace: %v", err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func assertIdenticalRuns(t *testing.T, name string, mk func() machine.Config, run func(rt *charm.Runtime) string) {
	t.Helper()
	first := digestedRun(t, mk, run)
	second := digestedRun(t, mk, run)
	if first != second {
		t.Errorf("%s: two runs with the same seed diverged:\n  run 1: %s\n  run 2: %s", name, first, second)
	}
}

func TestLeanMDDeterministic(t *testing.T) {
	cfg := leanmd.Config{
		CellsX: 3, CellsY: 3, CellsZ: 3,
		AtomsPerCell: 20, Steps: 8, Seed: 42,
		LBPeriod: 3, Gaussian: 0.35, // imbalance + migrations in the loop
	}
	assertIdenticalRuns(t, "leanmd",
		func() machine.Config { return machine.Testbed(8) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Greedy{})
			res, err := leanmd.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("atoms=%d energy=%v stepdone=%v", res.Atoms, res.Energy, res.StepDone)
		})
}

func TestPDESDeterministic(t *testing.T) {
	cfg := pdes.Config{
		LPs: 64, EventsPerLP: 8, TargetEvents: 4000, Seed: 42,
		UseTram: true, LBPeriodWindows: 4,
	}
	assertIdenticalRuns(t, "pdes",
		func() machine.Config { return machine.Stampede(16) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Greedy{})
			res, err := pdes.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("committed=%d windows=%d maxvt=%v", res.Committed, res.Windows, res.MaxVT)
		})
}
