// Package lulesh implements the LULESH proxy of §IV-D on AMPI: an
// explicit shock-hydrodynamics mini-app on a hexahedral mesh, decomposed
// one subdomain per MPI rank in a cubic rank grid. The port follows the
// paper's recipe: the same source runs as "native MPI" (one rank per PE,
// no migration) or as AMPI with a virtualization ratio — several ranks per
// PE, smaller working sets that fit in cache (the 2.4× of Fig 14),
// MPI_Migrate-based load balancing for the region-induced imbalance, and
// non-cubic PE counts served by a cubic number of virtual ranks.
//
// The physics is a simplified but real explicit update: a Sedov-style
// energy spike, pressure from an ideal-gas EOS, dynamically computed
// stable time increments reduced with MPI_Allreduce(MIN), face ghost
// exchange with the six neighbouring subdomains, and indirection-array
// gathers that mimic LULESH's unstructured memory access (the reason its
// working set resists hardware prefetching and makes cache blocking pay).
package lulesh

import (
	"fmt"
	"math"
	"math/rand"

	"charmgo/internal/ampi"
	"charmgo/internal/charm"
	"charmgo/internal/lb"
)

// Config parameterizes a run.
type Config struct {
	// RankSide: the job runs RankSide³ ranks (LULESH requires a cubic
	// process count; virtualization supplies it on any PE count).
	RankSide int
	// ElemSide is the per-rank subdomain edge (ElemSide³ elements).
	ElemSide int
	// Iters is the number of time steps.
	Iters int
	// Native models plain MPI: no virtualization layer cost, no
	// migration.
	Native bool
	// LBPeriod calls MPI_Migrate every LBPeriod iterations (AMPI only);
	// 0 disables.
	LBPeriod int
	// Regions is the number of material regions (round-robin by rank);
	// later regions cost more, producing LULESH's mild imbalance.
	Regions int
	// RegionSpread is the extra cost of the most expensive region
	// (0.15 = +15%).
	RegionSpread float64
	// PerElemWork is compute seconds per element per kernel pass.
	PerElemWork float64
	// BytesPerElem models the working-set contribution of one element.
	BytesPerElem int64
	Seed         int64
}

func (c Config) withDefaults() Config {
	if c.ElemSide == 0 {
		c.ElemSide = 30 // 27000 elements, the paper's default
	}
	if c.Regions == 0 {
		c.Regions = 11
	}
	if c.RegionSpread == 0 {
		c.RegionSpread = 0.15
	}
	if c.PerElemWork == 0 {
		// Per element per kernel sweep; the full LULESH iteration on a
		// 27000-element subdomain lands near 30 ms, like the real code.
		c.PerElemWork = 3.7e-7
	}
	if c.BytesPerElem == 0 {
		c.BytesPerElem = 437
	}
	return c
}

// Ranks returns the total rank count.
func (c Config) Ranks() int { return c.RankSide * c.RankSide * c.RankSide }

// Result reports a run.
type Result struct {
	// Elapsed is the total virtual run time.
	Elapsed float64
	// FinalDt is the last computed time increment.
	FinalDt float64
	// TotalEnergy is the final global internal energy.
	TotalEnergy float64
	// Virtualization is ranks / PEs.
	Virtualization float64
}

const (
	tagFace = 300
)

// Run executes the mini-app on the runtime.
func Run(rt *charm.Runtime, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if cfg.RankSide < 1 {
		return nil, fmt.Errorf("lulesh: need a positive rank grid")
	}
	res := &Result{Virtualization: float64(cfg.Ranks()) / float64(rt.NumPEs())}
	if cfg.LBPeriod > 0 && rt.Balancer() == nil {
		rt.SetBalancer(lb.Greedy{})
	}
	opts := ampi.Options{
		StateBytes:    int(cfg.BytesPerElem) * cfg.ElemSide * cfg.ElemSide * cfg.ElemSide,
		PerOpOverhead: 0.4e-6,
		Migratable:    cfg.LBPeriod > 0,
	}
	if cfg.Native {
		opts.PerOpOverhead = 0
		opts.Migratable = false
	}
	sharers := rt.Machine().Config().PEsPerNode

	err := ampi.Run(rt, cfg.Ranks(), func(r *ampi.Rank) {
		d := newDomain(cfg, r.ID())
		for it := 0; it < cfg.Iters; it++ {
			// 1. Dynamically computed time increment (global MIN).
			dt := r.AllreduceMin(d.courant())
			res.FinalDt = dt

			// 2. Ghost exchange: face pressures with up to 6 neighbours.
			d.exchange(r, cfg)

			// 3. Element kernels: stress, hourglass, EOS — modeled as
			//    real indirection-array passes over the subdomain, with
			//    the cache model applied to the subdomain working set.
			work := d.kernels(dt)
			ws := cfg.BytesPerElem * int64(d.n3)
			r.ChargeCache(work*cfg.PerElemWork*float64(d.n3)*d.regionCost, ws, sharers)

			// 4. Optional AtSync migration point.
			if cfg.LBPeriod > 0 && (it+1)%cfg.LBPeriod == 0 {
				r.Migrate()
			}
		}
		total := r.AllreduceSum(d.totalEnergy())
		if r.ID() == 0 {
			res.TotalEnergy = total
		}
	}, opts)
	if err != nil {
		return nil, err
	}
	res.Elapsed = float64(rt.Now())
	return res, nil
}

// domain is one rank's subdomain.
type domain struct {
	cfg        Config
	id         int
	cx, cy, cz int // position in the rank grid
	n          int // elements per edge
	n3         int
	e          []float64 // internal energy per element
	p          []float64 // pressure
	v          []float64 // relative volume
	q          []float64 // artificial viscosity proxy
	perm       []int     // indirection array (unstructured access pattern)
	regionCost float64
	ghostP     [6][]float64
}

func newDomain(cfg Config, id int) *domain {
	side := cfg.RankSide
	d := &domain{
		cfg: cfg,
		id:  id,
		cx:  id % side,
		cy:  id / side % side,
		cz:  id / (side * side),
		n:   cfg.ElemSide,
	}
	d.n3 = d.n * d.n * d.n
	d.e = make([]float64, d.n3)
	d.p = make([]float64, d.n3)
	d.v = make([]float64, d.n3)
	d.q = make([]float64, d.n3)
	for i := range d.v {
		d.v[i] = 1.0
	}
	// Sedov: deposit energy in the corner element of the corner rank.
	if id == 0 {
		d.e[0] = 3.948746e+7 / float64(d.n3) * 27000
	}
	rng := rand.New(rand.NewSource(cfg.Seed*97 + int64(id)))
	d.perm = rng.Perm(d.n3)
	// Regions are spatial (material layers along z), so subdomains of the
	// same region cluster on the same PEs under block mapping — the
	// imbalance MPI cannot fix and MPI_Migrate can.
	region := d.cz % cfg.Regions
	d.regionCost = 1 + cfg.RegionSpread*float64(region)/float64(cfg.Regions)
	d.eos()
	return d
}

// eos computes pressure from energy (ideal gas, gamma ~ 1.4).
func (d *domain) eos() {
	for i := range d.p {
		d.p[i] = 0.4 * d.e[i] / d.v[i]
	}
}

// courant returns the local stable time increment.
func (d *domain) courant() float64 {
	maxc := 1e-20
	for i := range d.p {
		c := math.Sqrt(math.Abs(d.p[i])/1.0) + 1e-9
		if c > maxc {
			maxc = c
		}
	}
	h := 1.0 / float64(d.n*d.cfg.RankSide)
	dt := 0.3 * h / maxc
	if dt > 1e-2 {
		dt = 1e-2
	}
	return dt
}

// face extracts a boundary face of the pressure field.
func (d *domain) face(dim, side int) []float64 {
	n := d.n
	out := make([]float64, n*n)
	pos := 0
	if side == 1 {
		pos = n - 1
	}
	k := 0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			switch dim {
			case 0:
				out[k] = d.p[(pos*n+a)*n+b]
			case 1:
				out[k] = d.p[(a*n+pos)*n+b]
			default:
				out[k] = d.p[(a*n+b)*n+pos]
			}
			k++
		}
	}
	return out
}

// exchange swaps boundary faces with the six neighbours (nearest-neighbour
// communication; LULESH also has the dt allreduce as global communication).
func (d *domain) exchange(r *ampi.Rank, cfg Config) {
	side := cfg.RankSide
	type nb struct {
		rank, dim, dir int
	}
	var nbs []nb
	add := func(dx, dy, dz, dim, dir int) {
		x, y, z := d.cx+dx, d.cy+dy, d.cz+dz
		if x < 0 || x >= side || y < 0 || y >= side || z < 0 || z >= side {
			return
		}
		nbs = append(nbs, nb{rank: (z*side+y)*side + x, dim: dim, dir: dir})
	}
	add(-1, 0, 0, 0, 0)
	add(+1, 0, 0, 0, 1)
	add(0, -1, 0, 1, 0)
	add(0, +1, 0, 1, 1)
	add(0, 0, -1, 2, 0)
	add(0, 0, +1, 2, 1)
	for _, b := range nbs {
		f := d.face(b.dim, b.dir)
		r.Send(b.rank, tagFace+b.dim*2+b.dir, f, len(f)*8)
	}
	for range nbs {
		data, src := r.Recv(ampi.AnySource, ampi.AnyTag)
		f := data.([]float64)
		// Store by sender direction.
		for _, b := range nbs {
			if b.rank == src {
				d.ghostP[b.dim*2+b.dir] = f
				break
			}
		}
	}
}

// kernels performs the element update passes and returns the number of
// kernel sweeps (for cost accounting). The indirection array forces
// permuted access like LULESH's unstructured mesh.
func (d *domain) kernels(dt float64) float64 {
	n3 := d.n3
	// Pass 1: viscosity from permuted neighbour pressures.
	for i := 0; i < n3; i++ {
		j := d.perm[i]
		d.q[i] = 0.25 * math.Abs(d.p[j]-d.p[i])
	}
	// Pass 2: energy update (PdV work against the smoothed field).
	for i := 0; i < n3; i++ {
		j := d.perm[n3-1-i]
		flux := (d.p[j] + d.q[j] - d.p[i] - d.q[i])
		d.e[i] += dt * flux * 0.5
		if d.e[i] < 0 {
			d.e[i] = 0
		}
	}
	// Pass 3: volume relaxation and EOS.
	for i := 0; i < n3; i++ {
		d.v[i] += dt * (1 - d.v[i]) * 0.01
	}
	d.eos()
	return 3
}

func (d *domain) totalEnergy() float64 {
	s := 0.0
	for _, e := range d.e {
		s += e
	}
	return s
}
