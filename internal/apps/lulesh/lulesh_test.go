package lulesh

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/machine"
)

func hopperRT(pes int) *charm.Runtime {
	return charm.New(machine.New(machine.Hopper(pes)))
}

func small(side int) Config {
	return Config{RankSide: side, ElemSide: 6, Iters: 6, Seed: 1}
}

func TestRunsAndComputesDt(t *testing.T) {
	rt := hopperRT(24)
	res, err := Run(rt, small(2))
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalDt <= 0 {
		t.Fatalf("dt = %v", res.FinalDt)
	}
	if res.TotalEnergy <= 0 {
		t.Fatalf("energy = %v", res.TotalEnergy)
	}
	if res.Elapsed <= 0 {
		t.Fatal("no virtual time elapsed")
	}
}

func TestShockSpreads(t *testing.T) {
	// The Sedov energy spike must propagate: after some steps, ranks
	// other than rank 0 hold energy. Verify via the conserved-ish total
	// on a longer run and dt dropping below its cap as pressure builds.
	rt := hopperRT(24)
	cfg := small(2)
	cfg.Iters = 20
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FinalDt >= 1e-2 {
		t.Fatalf("dt never reacted to the shock: %v", res.FinalDt)
	}
}

func TestVirtualizationImprovesCacheBoundRun(t *testing.T) {
	// Fig 14's heart: same total work on the same PEs; v=8 shrinks each
	// working set into the node's cache share.
	elapsed := func(rankSide, pes int) float64 {
		rt := hopperRT(pes)
		cfg := Config{RankSide: rankSide, ElemSide: 12, Iters: 4, Seed: 2}
		// Keep total elements constant: rankSide³ × ElemSide³.
		res, err := Run(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	// 8 ranks of 12³ on 8 PEs (v=1) vs 16³=4096... instead compare same
	// PEs: 2³ ranks of 12³ (v=1 on 8 PEs) vs 4³ ranks of 6³ (v=8 on 8
	// PEs) — same 13824 elements.
	v1 := func() float64 {
		rt := hopperRT(8)
		res, err := Run(rt, Config{RankSide: 2, ElemSide: 12, Iters: 4, Seed: 2, Native: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}()
	v8 := func() float64 {
		rt := hopperRT(8)
		res, err := Run(rt, Config{RankSide: 4, ElemSide: 6, Iters: 4, Seed: 2})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}()
	_ = elapsed
	if v8 >= v1 {
		t.Fatalf("virtualization did not help: v=1 %.4fs vs v=8 %.4fs", v1, v8)
	}
}

func TestMigrationFixesRegionImbalance(t *testing.T) {
	run := func(lbPeriod int) float64 {
		rt := hopperRT(8)
		res, err := Run(rt, Config{RankSide: 4, ElemSide: 6, Iters: 12, Seed: 3,
			LBPeriod: lbPeriod, Regions: 4, RegionSpread: 0.8})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	noLB := run(0)
	withLB := run(4)
	if withLB >= noLB {
		t.Fatalf("MPI_Migrate LB did not help: %v vs %v", withLB, noLB)
	}
}

func TestNonCubicPECount(t *testing.T) {
	// The §IV-D.4 feature: 3000-style non-cubic core counts served by a
	// cubic number of virtual ranks. 27 ranks on 10 PEs here.
	rt := hopperRT(10)
	res, err := Run(rt, Config{RankSide: 3, ElemSide: 6, Iters: 4, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Virtualization <= 1 {
		t.Fatalf("virtualization ratio %v", res.Virtualization)
	}
}

func TestNativeVsAMPIOverhead(t *testing.T) {
	run := func(native bool) float64 {
		rt := hopperRT(8)
		res, err := Run(rt, Config{RankSide: 2, ElemSide: 8, Iters: 6, Seed: 5, Native: native})
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed
	}
	native := run(true)
	ampiRun := run(false)
	if ampiRun <= native {
		t.Fatalf("AMPI v=1 should carry a small overhead: native %v vs ampi %v", native, ampiRun)
	}
	if ampiRun > native*1.25 {
		t.Fatalf("AMPI overhead too large: native %v vs ampi %v", native, ampiRun)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		rt := hopperRT(8)
		res, err := Run(rt, small(2))
		if err != nil {
			t.Fatal(err)
		}
		return res.Elapsed, res.TotalEnergy
	}
	e1, en1 := run()
	e2, en2 := run()
	if e1 != e2 || en1 != en2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", e1, en1, e2, en2)
	}
}
