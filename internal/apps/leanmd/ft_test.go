package leanmd

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

// barrierHook wraps a strategy so test actions run exactly at the AtSync
// barrier — a globally consistent cut: every element is paused and no
// application messages are in flight, which is where the double in-memory
// protocol checkpoints and recovers.
type barrierHook struct {
	inner charm.Strategy
	round int
	onRnd map[int]func()
}

func (b *barrierHook) Name() string { return "barrierHook" }
func (b *barrierHook) Balance(objs []charm.LBObject, pes []charm.LBPE) []charm.Migration {
	b.round++
	if fn, ok := b.onRnd[b.round]; ok {
		fn()
		return nil // structural action this round; no migrations on top
	}
	return b.inner.Balance(objs, pes)
}

// TestFailureRecoveryReplaysExactTrajectory is the §III-B end-to-end
// property: after a PE failure and rollback to the last in-memory
// checkpoint, the recomputed simulation reproduces the original energy
// trajectory exactly (the physics is deterministic and the checkpoint
// restores bit-identical state).
func TestFailureRecoveryReplaysExactTrajectory(t *testing.T) {
	cfg := Config{
		CellsX: 3, CellsY: 3, CellsZ: 3, AtomsPerCell: 20,
		Steps: 12, LBPeriod: 4, Seed: 9, MigratePeriod: 50,
	}
	run := func(hooks func(rt *charm.Runtime) map[int]func()) []float64 {
		rt := charm.New(machine.New(machine.Testbed(8)))
		hook := &barrierHook{inner: lb.Greedy{}}
		rt.SetBalancer(hook)
		if hooks != nil {
			hook.onRnd = hooks(rt)
		}
		res, err := Run(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy
	}

	// The baseline skips strategy migrations on the same rounds the faulty
	// run performs its checkpoint/recovery, so element placement — and
	// with it floating-point reduction order — is identical in both runs.
	baseline := run(func(rt *charm.Runtime) map[int]func() {
		return map[int]func(){1: func() {}, 2: func() {}}
	})

	var mem *ckpt.Mem
	faulty := run(func(rt *charm.Runtime) map[int]func() {
		return map[int]func(){
			// LB round 1 fires after step 4: take the double in-memory
			// checkpoint at the consistent barrier.
			1: func() {
				mem = ckpt.NewMem(rt)
				if d := mem.Checkpoint(); d <= 0 {
					t.Fatal("checkpoint cost not modeled")
				}
			},
			// LB round 2 fires after step 8: PE 2 dies; everything rolls
			// back to the step-4 checkpoint and recomputes.
			2: func() {
				if _, err := mem.FailAndRecover(2); err != nil {
					t.Fatal(err)
				}
			},
		}
	})

	if len(baseline) != cfg.Steps || len(faulty) != cfg.Steps {
		t.Fatalf("trajectories: baseline %d, faulty %d", len(baseline), len(faulty))
	}
	// Before the failure the runs are the same execution.
	for i := 0; i < 8; i++ {
		if faulty[i] != baseline[i] {
			t.Fatalf("pre-failure step %d diverged: %v vs %v", i, faulty[i], baseline[i])
		}
	}
	// After the rollback, steps 4.. are recomputed: the faulty run's
	// entries 8..11 must equal the baseline's 4..7 bit-for-bit.
	for i := 8; i < cfg.Steps; i++ {
		if faulty[i] != baseline[i-4] {
			t.Fatalf("replayed step %d (physical %d): %v vs baseline %v",
				i, i-4, faulty[i], baseline[i-4])
		}
	}
}

// TestCheckpointAtBarrierIsConsistent takes a checkpoint at the barrier and
// verifies every element's physical step is identical — the cut is global.
func TestCheckpointAtBarrierIsConsistent(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(8)))
	var snap *ckpt.Snapshot
	hook := &barrierHook{inner: lb.Greedy{}, onRnd: map[int]func(){
		1: func() { snap = ckpt.Capture(rt) },
	}}
	rt.SetBalancer(hook)
	_, err := Run(rt, Config{
		CellsX: 3, CellsY: 3, CellsZ: 3, AtomsPerCell: 16,
		Steps: 8, LBPeriod: 4, Seed: 3, MigratePeriod: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap == nil {
		t.Fatal("checkpoint hook never fired")
	}
	// Restore into a fresh runtime and check every cell sits at step 4.
	rt2 := charm.New(machine.New(machine.Testbed(4)))
	app2, err := New(rt2, Config{CellsX: 3, CellsY: 3, CellsZ: 3, AtomsPerCell: 16,
		Steps: 8, LBPeriod: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, idx := range app2.Cells().Keys() {
		app2.Cells().Remove(idx)
	}
	for _, idx := range app2.Computes().Keys() {
		app2.Computes().Remove(idx)
	}
	if err := ckpt.Restore(rt2, snap); err != nil {
		t.Fatal(err)
	}
	for _, idx := range app2.Cells().Keys() {
		if c := app2.Cells().Get(idx).(*cell); c.Step != 4 {
			t.Fatalf("cell %v restored at step %d, want 4", idx, c.Step)
		}
	}
	for _, idx := range app2.Computes().Keys() {
		if cp := app2.Computes().Get(idx).(*compute); cp.Step != 4 {
			t.Fatalf("compute %v restored at step %d, want 4", idx, cp.Step)
		}
	}
}
