package leanmd

import (
	"testing"

	"charmgo/internal/pup/puptest"
)

// TestPupRoundTrip verifies the chare Pup methods reconstruct state
// exactly; the runtime wiring (app, //pup:skip) is left nil so deep
// equality covers every serialized field.
func TestPupRoundTrip(t *testing.T) {
	puptest.CheckEqual(t,
		&cell{
			I: 1, J: 2, K: 0, Step: 7,
			Xs: []float64{0.1, 0.2, 0.3}, Vs: []float64{1, -1, 0.5},
			Fs: []float64{0.01, 0.02, 0.03}, MigGot: 1,
			MigXs: []float64{0.9, 0.8, 0.7}, MigVs: []float64{0, 0, 1},
			Recv: []forceMsg{{Step: 7, Src: [6]int{1, 2, 0, 2, 2, 0},
				Fs: []float64{-1, 0, 1}, PE: -3.5}},
			Pending: []forceMsg{{Step: 8, Src: [6]int{0, 1, 2, 1, 2, 0},
				Fs: []float64{1, 2, 3}, PE: -0.25}},
			WaitMig: true, InSync: true,
		},
		&compute{
			A: [3]int{1, 2, 0}, B: [3]int{2, 2, 0}, Self: false, Step: 3,
			XsA: []float64{0.5, 0.5, 0.5}, XsB: []float64{1.5, 0.5, 0.5},
			GotA: true, GotB: false, InSync: true,
		},
	)
}
