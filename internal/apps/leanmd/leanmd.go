// Package leanmd implements the LeanMD molecular-dynamics mini-app of
// §IV-B: the 3-D simulation space is decomposed into a dense chare array
// of Cells holding atoms, and a sparse 6-D chare array of pairwise Computes
// that evaluate Lennard-Jones forces between neighbouring cells — the
// non-bonded force structure of NAMD. Computes dominate the load and are
// deliberately over-decomposed (~14 per cell), which is what lets the RTS
// overlap communication with computation and balance load (Fig 9).
//
// The physics is real: jittered-lattice initial conditions, cut-off
// Lennard-Jones forces with Newton's-third-law symmetry, velocity-Verlet
// integration, periodic boundaries, and atom exchange between cells. The
// cost of each force evaluation is charged from the actual interaction
// count.
package leanmd

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// Config parameterizes a run.
type Config struct {
	// CellsX/Y/Z is the cell grid; the cut-off equals the cell edge.
	CellsX, CellsY, CellsZ int
	// AtomsPerCell is the average occupancy (peak occupancy when the
	// distribution is non-uniform).
	AtomsPerCell int
	// Steps to simulate.
	Steps int
	// LBPeriod calls AtSync every LBPeriod steps; 0 disables.
	LBPeriod int
	// MigratePeriod exchanges out-of-cell atoms every MigratePeriod
	// steps; 0 disables exchange.
	MigratePeriod int
	// Gaussian concentrates atoms near the box centre, creating the load
	// imbalance the LB figures rely on; 0 gives a uniform fill.
	Gaussian float64
	// PerInteractionWork is compute seconds per pair interaction.
	PerInteractionWork float64
	// Dt is the integration step (LJ units).
	Dt   float64
	Seed int64
	// UseMulticast delivers each cell's positions to its computes as one
	// section multicast instead of ~14 individual sends.
	UseMulticast bool
	// TopoAware places cells (and their computes) with the topology-aware
	// mapper, so neighbour traffic stays within few torus hops.
	TopoAware bool
	// StepHook, when set, runs on PE 0 after each step's energy
	// reduction lands (drivers use it to trigger shrink/expand,
	// checkpoints, or failures at step boundaries).
	StepHook func(step int)
}

func (c Config) withDefaults() Config {
	if c.AtomsPerCell == 0 {
		c.AtomsPerCell = 40
	}
	if c.PerInteractionWork == 0 {
		c.PerInteractionWork = 45e-9
	}
	if c.Dt == 0 {
		c.Dt = 0.002
	}
	if c.MigratePeriod == 0 {
		c.MigratePeriod = 20
	}
	return c
}

// NumCells returns the total cell count.
func (c Config) NumCells() int { return c.CellsX * c.CellsY * c.CellsZ }

// Result reports a completed run.
type Result struct {
	// StepDone[k] is the virtual time step k's energy reduction landed.
	StepDone []des.Time
	// Energy[k] is total (kinetic + potential) energy after step k.
	Energy []float64
	// Atoms is the total atom count (constant across the run).
	Atoms   int
	Elapsed des.Time
}

// StepTimes returns per-step durations.
func (r *Result) StepTimes() []float64 {
	out := make([]float64, len(r.StepDone))
	prev := des.Time(0)
	for i, t := range r.StepDone {
		out[i] = float64(t - prev)
		prev = t
	}
	return out
}

const (
	sigma  = 1.0
	eps    = 1.0
	cutoff = 4.0 * sigma // cell edge; typical MD patch is ~4 sigma
	mass   = 1.0
	// latticeSpacing keeps initial pairs near the LJ minimum (1.122 sigma)
	// so the system starts close to equilibrium instead of detonating.
	latticeSpacing = 1.15 * sigma
)

// MaxAtomsPerCell is the densest initial packing a cell accepts.
func MaxAtomsPerCell() int {
	side := int(math.Floor(cutoff / latticeSpacing))
	return side * side * side
}

// Cell EPs.
const (
	epCellStart charm.EP = iota
	epCellForces
	epCellAtoms
	epCellResume
)

// Compute EPs.
const (
	epComputePos charm.EP = iota
	epComputeResume
)

type posMsg struct {
	Step int
	Cell [3]int // sending cell; the compute derives its A/B role itself
	Xs   []float64
}

type forceMsg struct {
	Step int
	// Src is the sending compute's canonical (A,B) identity. Forces are
	// accumulated in Src order, not arrival order, so the floating-point
	// sum is independent of message timing — which keeps a rolled-back
	// replay (a time-shifted re-execution whose arrival times re-round)
	// bit-identical to the failure-free run.
	Src [6]int
	Fs  []float64
	PE  float64 // pair potential, reported once per compute (to cell A)
}

type atomsMsg struct {
	Step int
	Xs   []float64
	Vs   []float64
}

// cell is one spatial box of atoms.
type cell struct {
	I, J, K int
	Step    int
	Xs, Vs  []float64 // 3 per atom
	Fs      []float64
	// Recv buffers this step's force messages; they are summed in
	// canonical Src order only once all computes have reported, keeping
	// the accumulation independent of arrival order.
	Recv   []forceMsg
	MigGot int
	// MigXs/MigVs buffer inbound exchanged atoms until this cell has
	// finished its own step and compacted its arrays.
	MigXs   []float64
	MigVs   []float64
	Pending []forceMsg // forces for a step we haven't started (skew guard)
	WaitMig bool
	InSync  bool

	app *App //pup:skip //charmvet:specstate (idempotent rebind: every handler writes the pointer the factory installs)
}

func (c *cell) Pup(p *pup.Pup) {
	p.Int(&c.I)
	p.Int(&c.J)
	p.Int(&c.K)
	p.Int(&c.Step)
	p.Float64s(&c.Xs)
	p.Float64s(&c.Vs)
	p.Float64s(&c.Fs)
	pupForces := func(p *pup.Pup, f *forceMsg) {
		p.Int(&f.Step)
		for i := range f.Src {
			p.Int(&f.Src[i])
		}
		p.Float64s(&f.Fs)
		p.Float64(&f.PE)
	}
	pup.Slice(p, &c.Recv, pupForces)
	p.Int(&c.MigGot)
	p.Float64s(&c.MigXs)
	p.Float64s(&c.MigVs)
	pup.Slice(p, &c.Pending, pupForces)
	p.Bool(&c.WaitMig)
	p.Bool(&c.InSync)
}

func (c *cell) n() int { return len(c.Xs) / 3 }

// compute evaluates forces for one cell pair (or one cell against itself).
type compute struct {
	A, B   [3]int
	Self   bool
	Step   int
	XsA    []float64
	XsB    []float64
	GotA   bool
	GotB   bool
	InSync bool

	app *App //pup:skip //charmvet:specstate (idempotent rebind: every handler writes the pointer the factory installs)
}

func (cp *compute) Pup(p *pup.Pup) {
	for i := 0; i < 3; i++ {
		p.Int(&cp.A[i])
		p.Int(&cp.B[i])
	}
	p.Bool(&cp.Self)
	p.Int(&cp.Step)
	p.Float64s(&cp.XsA)
	p.Float64s(&cp.XsB)
	p.Bool(&cp.GotA)
	p.Bool(&cp.GotB)
	p.Bool(&cp.InSync)
}

// App wires LeanMD to a runtime.
type App struct {
	rt       *charm.Runtime
	cfg      Config
	cells    *charm.Array
	computes *charm.Array
	res      *Result
	err      error
	// box is the periodic domain size per dimension.
	box [3]float64
}

// New builds the cell and compute arrays and populates atoms.
func New(rt *charm.Runtime, cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	if cfg.NumCells() == 0 {
		return nil, fmt.Errorf("leanmd: empty cell grid")
	}
	if cfg.CellsX < 3 || cfg.CellsY < 3 || cfg.CellsZ < 3 {
		return nil, fmt.Errorf("leanmd: periodic neighbours need >= 3 cells per dimension")
	}
	a := &App{rt: rt, cfg: cfg, res: &Result{}}
	a.box = [3]float64{
		float64(cfg.CellsX) * cutoff,
		float64(cfg.CellsY) * cutoff,
		float64(cfg.CellsZ) * cutoff,
	}

	var cellMap, computeMap func(charm.Index, int) int
	if cfg.TopoAware {
		topo := charm.TopoMap3D(rt.Machine(), cfg.CellsX, cfg.CellsY, cfg.CellsZ)
		perNode := rt.Machine().Config().PEsPerNode
		cellMap = topo
		// A compute lives on its first cell's NODE, but spreads over
		// that node's PEs by its own identity (otherwise every compute
		// of a cell would pile onto one PE).
		computeMap = func(idx charm.Index, numPEs int) int {
			d := idx.Dims6()
			node := topo(charm.Idx3(d[0], d[1], d[2]), numPEs) / perNode
			pe := node*perNode + int(idx.Hash()%uint64(perNode))
			if pe >= numPEs {
				pe %= numPEs
			}
			return pe
		}
	}
	cellHandlers := []charm.Handler{
		epCellStart:  a.onCellStart,
		epCellForces: a.onCellForces,
		epCellAtoms:  a.onCellAtoms,
		epCellResume: a.onCellResume,
	}
	a.cells = rt.DeclareArray("leanmd_cells", func() charm.Chare { return &cell{app: a} },
		cellHandlers, charm.ArrayOpts{
			UsesAtSync: cfg.LBPeriod > 0,
			Migratable: true,
			// Cell handlers read only (cell state, payload, immutable cfg);
			// the error latch publishes through Defer.
			PureHandlers: true,
			ResumeEP:     epCellResume,
			HomeMap:      cellMap,
			Bounds:       []int{cfg.CellsX, cfg.CellsY, cfg.CellsZ}, // dense 3-D grid
			EntryNames: []string{
				epCellStart:  "start",
				epCellForces: "forces",
				epCellAtoms:  "atoms",
				epCellResume: "resume",
			},
		})
	computeHandlers := []charm.Handler{
		epComputePos:    a.onComputePos,
		epComputeResume: a.onComputeResume,
	}
	a.computes = rt.DeclareArray("leanmd_computes", func() charm.Chare { return &compute{app: a} },
		computeHandlers, charm.ArrayOpts{
			UsesAtSync: cfg.LBPeriod > 0,
			Migratable: true,
			// See the cells array: same purity discipline.
			PureHandlers: true,
			ResumeEP:     epComputeResume,
			HomeMap:      computeMap,
			EntryNames: []string{
				epComputePos:    "positions",
				epComputeResume: "resume",
			},
		})

	rng := rand.New(rand.NewSource(cfg.Seed*31 + 17))
	total := 0
	for i := 0; i < cfg.CellsX; i++ {
		for j := 0; j < cfg.CellsY; j++ {
			for k := 0; k < cfg.CellsZ; k++ {
				cl := &cell{I: i, J: j, K: k, app: a}
				a.fillCell(cl, rng)
				total += cl.n()
				a.cells.Insert(charm.Idx3(i, j, k), cl)
			}
		}
	}
	a.res.Atoms = total

	// One compute per unordered neighbouring pair, plus one self-compute
	// per cell (~14 computes per cell).
	for i := 0; i < cfg.CellsX; i++ {
		for j := 0; j < cfg.CellsY; j++ {
			for k := 0; k < cfg.CellsZ; k++ {
				me := [3]int{i, j, k}
				a.computes.Insert(a.computeIdx(me, me), &compute{A: me, B: me, Self: true, app: a})
				for _, nb := range a.neighbours(me) {
					if pairOwner(me, nb) {
						a.computes.Insert(a.computeIdx(me, nb),
							&compute{A: me, B: nb, app: a})
					}
				}
			}
		}
	}
	return a, nil
}

// fillCell places atoms on a jittered lattice to avoid overlapping pairs.
func (a *App) fillCell(cl *cell, rng *rand.Rand) {
	cfg := a.cfg
	// Fill fraction from the Gaussian profile.
	frac := 1.0
	if cfg.Gaussian > 0 {
		cx := (float64(cl.I) + 0.5) / float64(cfg.CellsX)
		cy := (float64(cl.J) + 0.5) / float64(cfg.CellsY)
		cz := (float64(cl.K) + 0.5) / float64(cfg.CellsZ)
		d2 := (cx-0.5)*(cx-0.5) + (cy-0.5)*(cy-0.5) + (cz-0.5)*(cz-0.5)
		frac = math.Exp(-d2 * cfg.Gaussian)
	}
	want := int(float64(cfg.AtomsPerCell)*frac + 0.5)
	if cap := MaxAtomsPerCell(); want > cap {
		want = cap // respect the safe liquid density
	}
	side := int(math.Floor(cutoff / latticeSpacing))
	spacing := float64(latticeSpacing)
	base := [3]float64{float64(cl.I) * cutoff, float64(cl.J) * cutoff, float64(cl.K) * cutoff}
	placed := 0
	for x := 0; x < side && placed < want; x++ {
		for y := 0; y < side && placed < want; y++ {
			for z := 0; z < side && placed < want; z++ {
				jit := func() float64 { return (rng.Float64() - 0.5) * spacing * 0.1 }
				cl.Xs = append(cl.Xs,
					base[0]+spacing*(float64(x)+0.6)+jit(),
					base[1]+spacing*(float64(y)+0.6)+jit(),
					base[2]+spacing*(float64(z)+0.6)+jit())
				cl.Vs = append(cl.Vs, rng.NormFloat64()*0.05, rng.NormFloat64()*0.05, rng.NormFloat64()*0.05)
				placed++
			}
		}
	}
	cl.Fs = make([]float64, len(cl.Xs))
}

// neighbours lists the 26 periodic neighbour cells.
func (a *App) neighbours(c [3]int) [][3]int {
	dims := [3]int{a.cfg.CellsX, a.cfg.CellsY, a.cfg.CellsZ}
	var out [][3]int
	for di := -1; di <= 1; di++ {
		for dj := -1; dj <= 1; dj++ {
			for dk := -1; dk <= 1; dk++ {
				if di == 0 && dj == 0 && dk == 0 {
					continue
				}
				nb := [3]int{
					(c[0] + di + dims[0]) % dims[0],
					(c[1] + dj + dims[1]) % dims[1],
					(c[2] + dk + dims[2]) % dims[2],
				}
				if nb == c {
					continue // tiny grids: neighbour wraps onto self
				}
				out = append(out, nb)
			}
		}
	}
	return dedup(out)
}

func dedup(in [][3]int) [][3]int {
	seen := map[[3]int]bool{}
	var out [][3]int
	for _, v := range in {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// pairOwner deterministically assigns each unordered pair to one cell.
func pairOwner(a, b [3]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

func canonical(a, b [3]int) ([3]int, [3]int) {
	if pairOwner(a, b) || a == b {
		return a, b
	}
	return b, a
}

func (a *App) computeIdx(x, y [3]int) charm.Index {
	x, y = canonical(x, y)
	return charm.Idx6(x[0], x[1], x[2], y[0], y[1], y[2])
}

// Cells and Computes expose the arrays for tooling.
func (a *App) Cells() *charm.Array    { return a.cells }
func (a *App) Computes() *charm.Array { return a.computes }

// Steps returns the number of steps whose energy reduction has landed.
// Fault-tolerance drivers save it at a checkpoint cut.
func (a *App) Steps() int { return len(a.res.StepDone) }

// TruncateResult rolls the result accumulators back to n completed steps,
// discarding entries appended during a segment being rolled back after a
// failure.
func (a *App) TruncateResult(n int) {
	if n < 0 || n > len(a.res.StepDone) {
		return
	}
	a.res.StepDone = a.res.StepDone[:n]
	a.res.Energy = a.res.Energy[:n]
}

// Run executes the configured number of steps.
func (a *App) Run() (*Result, error) {
	a.cells.Broadcast(epCellStart, nil)
	a.res.Elapsed = a.rt.Run()
	if a.err != nil {
		return nil, a.err
	}
	if len(a.res.StepDone) < a.cfg.Steps {
		return nil, fmt.Errorf("leanmd: completed %d of %d steps (stall)", len(a.res.StepDone), a.cfg.Steps)
	}
	return a.res, nil
}

// Run is the one-call driver.
func Run(rt *charm.Runtime, cfg Config) (*Result, error) {
	app, err := New(rt, cfg)
	if err != nil {
		return nil, err
	}
	return app.Run()
}

// ---- cell handlers ----

func (a *App) onCellStart(obj charm.Chare, ctx *charm.Ctx, msg any) {
	c := obj.(*cell)
	c.app = a
	ctx.SetPos(float64(c.I), float64(c.J), float64(c.K))
	a.sendPositions(c, ctx)
}

// sendPositions ships the cell's positions to all its computes: either as
// individual sends or as one section multicast (the CkMulticast pattern
// NAMD uses for exactly this traffic).
func (a *App) sendPositions(c *cell, ctx *charm.Ctx) {
	me := [3]int{c.I, c.J, c.K}
	bytes := len(c.Xs)*8 + 48
	// Snapshot the positions: the cell integrates Xs in place next step,
	// and an in-flight (or replay-logged, see charm.ArrayOpts.PureHandlers)
	// message must keep the values it was sent with.
	msg := posMsg{Step: c.Step, Cell: me, Xs: append([]float64(nil), c.Xs...)}
	if a.cfg.UseMulticast {
		section := make([]charm.Index, 0, 15)
		section = append(section, a.computeIdx(me, me))
		for _, nb := range a.neighbours(me) {
			section = append(section, a.computeIdx(me, nb))
		}
		ctx.Multicast(a.computes, section, epComputePos, msg,
			&charm.SendOpts{Bytes: bytes})
		return
	}
	send := func(other [3]int) {
		ctx.SendOpt(a.computes, a.computeIdx(me, other), epComputePos,
			msg, &charm.SendOpts{Bytes: bytes})
	}
	send(me) // self-compute
	for _, nb := range a.neighbours(me) {
		send(nb)
	}
}

func (a *App) expectedForces(c *cell) int {
	return 1 + len(a.neighbours([3]int{c.I, c.J, c.K}))
}

func (a *App) onCellForces(obj charm.Chare, ctx *charm.Ctx, msg any) {
	c := obj.(*cell)
	c.app = a
	f := msg.(forceMsg)
	if f.Step != c.Step {
		c.Pending = append(c.Pending, f)
		return
	}
	c.Recv = append(c.Recv, f)
	a.maybeIntegrate(c, ctx)
}

// maybeIntegrate advances the cell once every compute has reported. The
// buffered forces are summed in canonical compute order — never arrival
// order — so the result is bit-identical however the messages interleave.
func (a *App) maybeIntegrate(c *cell, ctx *charm.Ctx) {
	if c.InSync || c.WaitMig || len(c.Recv) < a.expectedForces(c) {
		return
	}
	sort.Slice(c.Recv, func(i, j int) bool {
		si, sj := &c.Recv[i].Src, &c.Recv[j].Src
		for d := 0; d < 6; d++ {
			if si[d] != sj[d] {
				return si[d] < sj[d]
			}
		}
		return false
	})
	var peAcc float64
	for _, f := range c.Recv {
		for i := range f.Fs {
			c.Fs[i] += f.Fs[i]
		}
		peAcc += f.PE
	}
	c.Recv = nil
	// Velocity-Verlet (kick-drift-kick): complete the previous half-kick
	// with the freshly computed forces, measure kinetic energy at the
	// full step, half-kick again, and drift.
	dt := a.cfg.Dt
	half := dt / (2 * mass)
	var ke float64
	for i := 0; i < c.n(); i++ {
		for d := 0; d < 3; d++ {
			v := c.Vs[3*i+d] + c.Fs[3*i+d]*half
			ke += 0.5 * mass * v * v
			v += c.Fs[3*i+d] * half
			c.Vs[3*i+d] = v
			c.Xs[3*i+d] += v * dt
		}
	}
	ctx.Charge(float64(c.n()) * 25e-9) // integration pass
	energy := ke + peAcc
	for i := range c.Fs {
		c.Fs[i] = 0
	}
	c.Step++
	ctx.Contribute(energy, charm.SumF64, charm.CallbackFunc(0, a.onStepDone))

	if c.Step >= a.cfg.Steps {
		return
	}
	if a.cfg.MigratePeriod > 0 && c.Step%a.cfg.MigratePeriod == 0 {
		a.exchangeAtoms(c, ctx)
		return
	}
	a.afterMove(c, ctx)
}

// afterMove runs the AtSync hook (if due) and then begins the next step.
func (a *App) afterMove(c *cell, ctx *charm.Ctx) {
	if a.cfg.LBPeriod > 0 && c.Step%a.cfg.LBPeriod == 0 {
		c.InSync = true
		ctx.AtSync()
		return
	}
	a.beginStep(c, ctx)
}

func (a *App) beginStep(c *cell, ctx *charm.Ctx) {
	a.sendPositions(c, ctx)
	// Replay early forces (a neighbouring compute can be a step ahead).
	if len(c.Pending) > 0 {
		pend := c.Pending
		c.Pending = nil
		for _, f := range pend {
			if f.Step != c.Step {
				err := fmt.Errorf("leanmd: cell (%d,%d,%d) got force for step %d at step %d",
					c.I, c.J, c.K, f.Step, c.Step)
				ctx.Defer(func() { a.err = err }) // app-global latch: publish at commit
				ctx.Exit()
				return
			}
			c.Recv = append(c.Recv, f)
		}
	}
	a.maybeIntegrate(c, ctx)
}

// exchangeAtoms sends atoms that left the cell to their new owners; every
// cell sends exactly one (possibly empty) migration message to each of its
// neighbours so completion is countable.
func (a *App) exchangeAtoms(c *cell, ctx *charm.Ctx) {
	c.WaitMig = true
	dims := [3]int{a.cfg.CellsX, a.cfg.CellsY, a.cfg.CellsZ}
	nbs := a.neighbours([3]int{c.I, c.J, c.K})
	outX := make(map[[3]int][]float64, len(nbs))
	outV := make(map[[3]int][]float64, len(nbs))
	keepX := c.Xs[:0]
	keepV := c.Vs[:0]
	for i := 0; i < c.n(); i++ {
		x, y, z := c.Xs[3*i], c.Xs[3*i+1], c.Xs[3*i+2]
		if !finite(x) || !finite(y) || !finite(z) {
			err := fmt.Errorf("leanmd: non-finite position at cell (%d,%d,%d); integration blew up", c.I, c.J, c.K)
			ctx.Defer(func() { a.err = err })
			ctx.Exit()
			return
		}
		// Periodic wrap into the box.
		x = wrap(x, a.box[0])
		y = wrap(y, a.box[1])
		z = wrap(z, a.box[2])
		ci := int(x / cutoff)
		cj := int(y / cutoff)
		ck := int(z / cutoff)
		ci, cj, ck = clampDim(ci, dims[0]), clampDim(cj, dims[1]), clampDim(ck, dims[2])
		owner := [3]int{ci, cj, ck}
		if owner == ([3]int{c.I, c.J, c.K}) {
			keepX = append(keepX, x, y, z)
			keepV = append(keepV, c.Vs[3*i], c.Vs[3*i+1], c.Vs[3*i+2])
			continue
		}
		outX[owner] = append(outX[owner], x, y, z)
		outV[owner] = append(outV[owner], c.Vs[3*i], c.Vs[3*i+1], c.Vs[3*i+2])
	}
	c.Xs = append([]float64(nil), keepX...)
	c.Vs = append([]float64(nil), keepV...)
	lost := 0
	for _, nb := range nbs {
		xs := outX[nb]
		ctx.SendOpt(a.cells, charm.Idx3(nb[0], nb[1], nb[2]), epCellAtoms,
			atomsMsg{Step: c.Step, Xs: xs, Vs: outV[nb]},
			&charm.SendOpts{Bytes: len(xs)*16 + 48})
		delete(outX, nb)
	}
	// Any atom that moved more than one cell in MigratePeriod steps would
	// be dropped; that means dt is too large — fail loudly.
	for range outX {
		lost++
	}
	if lost > 0 {
		err := fmt.Errorf("leanmd: %d atoms crossed more than one cell; reduce Dt", lost)
		ctx.Defer(func() { a.err = err })
		ctx.Exit()
	}
	a.maybeFinishExchange(c, ctx)
}

func (a *App) onCellAtoms(obj charm.Chare, ctx *charm.Ctx, msg any) {
	c := obj.(*cell)
	c.app = a
	m := msg.(atomsMsg)
	c.MigXs = append(c.MigXs, m.Xs...)
	c.MigVs = append(c.MigVs, m.Vs...)
	c.MigGot++
	a.maybeFinishExchange(c, ctx)
}

func (a *App) maybeFinishExchange(c *cell, ctx *charm.Ctx) {
	if !c.WaitMig || c.MigGot < len(a.neighbours([3]int{c.I, c.J, c.K})) {
		return
	}
	c.WaitMig = false
	c.MigGot = 0
	c.Xs = append(c.Xs, c.MigXs...)
	c.Vs = append(c.Vs, c.MigVs...)
	c.MigXs, c.MigVs = nil, nil
	c.Fs = make([]float64, len(c.Xs))
	a.afterMove(c, ctx)
}

func (a *App) onCellResume(obj charm.Chare, ctx *charm.Ctx, msg any) {
	c := obj.(*cell)
	c.app = a
	c.InSync = false
	ctx.SetPos(float64(c.I), float64(c.J), float64(c.K))
	a.beginStep(c, ctx)
}

// onStepDone runs on PE 0 per energy reduction.
func (a *App) onStepDone(ctx *charm.Ctx, result any) {
	a.res.StepDone = append(a.res.StepDone, ctx.Now())
	a.res.Energy = append(a.res.Energy, result.(float64))
	if a.cfg.StepHook != nil {
		a.cfg.StepHook(len(a.res.StepDone))
	}
	if len(a.res.StepDone) >= a.cfg.Steps {
		ctx.Exit()
	}
}

// ---- compute handlers ----

func (a *App) onComputePos(obj charm.Chare, ctx *charm.Ctx, msg any) {
	cp := obj.(*compute)
	cp.app = a
	m := msg.(posMsg)
	if m.Step != cp.Step {
		err := fmt.Errorf("leanmd: compute %v/%v got positions for step %d at step %d",
			cp.A, cp.B, m.Step, cp.Step)
		ctx.Defer(func() { a.err = err })
		ctx.Exit()
		return
	}
	if m.Cell == cp.A {
		cp.XsA, cp.GotA = m.Xs, true
	} else {
		cp.XsB, cp.GotB = m.Xs, true
	}
	if cp.Self {
		cp.GotB = true
	}
	if cp.GotA && cp.GotB {
		a.runInteractions(cp, ctx)
	}
}

// runInteractions does the real Lennard-Jones force evaluation.
func (a *App) runInteractions(cp *compute, ctx *charm.Ctx) {
	midA := [3]float64{float64(cp.A[0]) + 0.5, float64(cp.A[1]) + 0.5, float64(cp.A[2]) + 0.5}
	midB := [3]float64{float64(cp.B[0]) + 0.5, float64(cp.B[1]) + 0.5, float64(cp.B[2]) + 0.5}
	ctx.SetPos(
		(midA[0]+midB[0])/2, (midA[1]+midB[1])/2, (midA[2]+midB[2])/2)

	xa, xb := cp.XsA, cp.XsB
	fa := make([]float64, len(xa))
	var fb []float64
	if !cp.Self {
		fb = make([]float64, len(xb))
	}
	na := len(xa) / 3
	interactions := 0
	var pe float64
	rc2 := cutoff * cutoff
	pair := func(i, j int, xj []float64, fj []float64) {
		dx := xa[3*i] - xj[3*j]
		dy := xa[3*i+1] - xj[3*j+1]
		dz := xa[3*i+2] - xj[3*j+2]
		// Minimum-image convention for periodic boundaries.
		dx = mini(dx, a.box[0])
		dy = mini(dy, a.box[1])
		dz = mini(dz, a.box[2])
		r2 := dx*dx + dy*dy + dz*dz
		if r2 >= rc2 || r2 == 0 {
			return
		}
		interactions++
		inv2 := sigma * sigma / r2
		inv6 := inv2 * inv2 * inv2
		fmag := 24 * eps * (2*inv6*inv6 - inv6) / r2
		pe += 4 * eps * (inv6*inv6 - inv6)
		fa[3*i] += fmag * dx
		fa[3*i+1] += fmag * dy
		fa[3*i+2] += fmag * dz
		fj[3*j] -= fmag * dx
		fj[3*j+1] -= fmag * dy
		fj[3*j+2] -= fmag * dz
	}
	if cp.Self {
		for i := 0; i < na; i++ {
			for j := i + 1; j < na; j++ {
				pair(i, j, xa, fa)
			}
		}
	} else {
		nb := len(xb) / 3
		for i := 0; i < na; i++ {
			for j := 0; j < nb; j++ {
				pair(i, j, xb, fb)
			}
		}
	}
	checked := na * na
	if !cp.Self {
		checked = na * len(xb) / 3
	}
	ctx.Charge(float64(checked)*6e-9 + float64(interactions)*a.cfg.PerInteractionWork)

	sz := func(fs []float64) int { return len(fs)*8 + 48 }
	src := [6]int{cp.A[0], cp.A[1], cp.A[2], cp.B[0], cp.B[1], cp.B[2]}
	ctx.SendOpt(a.cells, charm.Idx3(cp.A[0], cp.A[1], cp.A[2]), epCellForces,
		forceMsg{Step: cp.Step, Src: src, Fs: fa, PE: pe}, &charm.SendOpts{Bytes: sz(fa)})
	if !cp.Self {
		ctx.SendOpt(a.cells, charm.Idx3(cp.B[0], cp.B[1], cp.B[2]), epCellForces,
			forceMsg{Step: cp.Step, Src: src, Fs: fb}, &charm.SendOpts{Bytes: sz(fb)})
	}
	cp.XsA, cp.XsB = nil, nil
	cp.GotA, cp.GotB = false, false
	cp.Step++
	if a.cfg.LBPeriod > 0 && cp.Step%a.cfg.LBPeriod == 0 && cp.Step < a.cfg.Steps {
		cp.InSync = true
		ctx.AtSync()
	}
}

func (a *App) onComputeResume(obj charm.Chare, ctx *charm.Ctx, msg any) {
	cp := obj.(*compute)
	cp.app = a
	cp.InSync = false
}

// mini applies the minimum-image convention.
func mini(d, box float64) float64 {
	if d > box/2 {
		return d - box
	}
	if d < -box/2 {
		return d + box
	}
	return d
}

func wrap(x, box float64) float64 {
	x = math.Mod(x, box)
	if x < 0 {
		x += box
	}
	return x
}

func finite(x float64) bool { return !math.IsNaN(x) && !math.IsInf(x, 0) }

func clampDim(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}
