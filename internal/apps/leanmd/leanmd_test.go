package leanmd

import (
	"math"
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/cloud"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

func newRT(pes int) *charm.Runtime {
	return charm.New(machine.New(machine.Testbed(pes)))
}

func small() Config {
	return Config{CellsX: 3, CellsY: 3, CellsZ: 3, AtomsPerCell: 20, Steps: 10, Seed: 1}
}

func TestRunsToCompletion(t *testing.T) {
	rt := newRT(4)
	res, err := Run(rt, small())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.StepDone) != 10 || len(res.Energy) != 10 {
		t.Fatalf("steps recorded: %d", len(res.StepDone))
	}
	if res.Atoms == 0 {
		t.Fatal("no atoms placed")
	}
	for i := 1; i < len(res.StepDone); i++ {
		if res.StepDone[i] <= res.StepDone[i-1] {
			t.Fatal("step completion times not increasing")
		}
	}
}

func TestEnergyApproximatelyConserved(t *testing.T) {
	// Velocity-Verlet integration with small dt: total energy must stay
	// within a couple percent over the run (no thermostat).
	cfg := small()
	cfg.Steps = 30
	cfg.Dt = 0.001
	rt := newRT(4)
	res, err := Run(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	e0, eN := res.Energy[1], res.Energy[len(res.Energy)-1]
	scale := math.Abs(e0)
	if scale < 1 {
		scale = 1
	}
	if math.Abs(eN-e0)/scale > 0.02 {
		t.Fatalf("energy drifted: %v -> %v", e0, eN)
	}
}

func TestAtomCountConservedAcrossExchange(t *testing.T) {
	cfg := small()
	cfg.Steps = 25
	cfg.MigratePeriod = 5
	cfg.Dt = 0.002
	rt := newRT(4)
	app, err := New(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	moved := false
	for _, idx := range app.Cells().Keys() {
		c := app.Cells().Get(idx).(*cell)
		total += c.n()
		if c.n() != cfg.AtomsPerCell {
			moved = true
		}
	}
	if total != res.Atoms {
		t.Fatalf("atoms not conserved: %d vs %d", total, res.Atoms)
	}
	_ = moved // movement depends on velocities; conservation is the invariant
}

func TestGaussianCreatesImbalance(t *testing.T) {
	cfg := small()
	cfg.Gaussian = 8
	cfg.AtomsPerCell = 40
	rt := newRT(4)
	app, err := New(rt, cfg)
	if err != nil {
		t.Fatal(err)
	}
	min, max := 1<<30, 0
	for _, idx := range app.Cells().Keys() {
		n := app.Cells().Get(idx).(*cell).n()
		if n < min {
			min = n
		}
		if n > max {
			max = n
		}
	}
	if max < 2*min+2 {
		t.Fatalf("Gaussian profile too flat: min %d max %d", min, max)
	}
}

func TestLoadBalancingImprovesImbalancedRun(t *testing.T) {
	// The Fig 9 claim in miniature: with a skewed atom distribution, the
	// HybridLB run beats the NoLB run.
	run := func(withLB bool) float64 {
		rt := newRT(8)
		cfg := Config{CellsX: 4, CellsY: 4, CellsZ: 3, AtomsPerCell: 50,
			Steps: 24, Gaussian: 10, Seed: 2, MigratePeriod: 50}
		if withLB {
			rt.SetBalancer(lb.Hybrid{GroupSize: 4})
			cfg.LBPeriod = 6
		}
		res, err := Run(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		// Compare steady-state steps (post-LB).
		ts := res.StepTimes()
		sum := 0.0
		for _, v := range ts[len(ts)-8:] {
			sum += v
		}
		return sum / 8
	}
	noLB := run(false)
	withLB := run(true)
	if withLB >= noLB*0.9 {
		t.Fatalf("HybridLB did not help: %v vs %v per step", withLB, noLB)
	}
}

func TestHeterogeneousCloudLB(t *testing.T) {
	// Fig 17: one node at 0.7x speed. Speed-aware LB must approach the
	// homogeneous time; without LB the slow node gates every step.
	step := func(hetero, balance bool) float64 {
		rt := charm.New(machine.New(machine.Cloud(16))) // 4 nodes
		if hetero {
			cloud.SlowNode(rt, 0, 0.7)
		}
		cfg := Config{CellsX: 4, CellsY: 4, CellsZ: 4, AtomsPerCell: 30,
			Steps: 20, Seed: 3, MigratePeriod: 50}
		if balance {
			rt.SetBalancer(lb.Greedy{})
			cfg.LBPeriod = 5
		}
		res, err := Run(rt, cfg)
		if err != nil {
			t.Fatal(err)
		}
		ts := res.StepTimes()
		sum := 0.0
		for _, v := range ts[len(ts)-6:] {
			sum += v
		}
		return sum / 6
	}
	homo := step(false, false)
	heteroNoLB := step(true, false)
	heteroLB := step(true, true)
	if heteroNoLB <= homo*1.15 {
		t.Fatalf("slow node had no effect: homo %v vs hetero %v", homo, heteroNoLB)
	}
	if heteroLB >= heteroNoLB {
		t.Fatalf("hetero-aware LB did not help: %v vs %v", heteroLB, heteroNoLB)
	}
}

func TestRejectsTinyGrids(t *testing.T) {
	rt := newRT(2)
	if _, err := New(rt, Config{CellsX: 2, CellsY: 3, CellsZ: 3}); err == nil {
		t.Fatal("2-cell dimension should be rejected")
	}
}

func TestComputeCountPerCell(t *testing.T) {
	rt := newRT(4)
	app, err := New(rt, small())
	if err != nil {
		t.Fatal(err)
	}
	// 27 cells, each with 1 self-compute and 26/2 pair computes.
	want := 27 * (1 + 13)
	if got := app.Computes().Len(); got != want {
		t.Fatalf("compute count %d, want %d", got, want)
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		rt := newRT(4)
		res, err := Run(rt, small())
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Elapsed), res.Energy[len(res.Energy)-1]
	}
	t1, e1 := run()
	t2, e2 := run()
	if t1 != t2 || e1 != e2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", t1, e1, t2, e2)
	}
}

func TestTopoAwareMappingReducesStepTime(t *testing.T) {
	// Topology-aware placement keeps cell↔compute traffic node-local or
	// few-hop; on a multi-node machine with meaningful per-hop and
	// remote-message costs it beats hash placement.
	run := func(topo bool) float64 {
		cfg := machine.Vesta(64) // 4 nodes x 16 PEs
		rt := charm.New(machine.New(cfg))
		res, err := Run(rt, Config{
			CellsX: 4, CellsY: 4, CellsZ: 4, AtomsPerCell: 27,
			Steps: 12, Seed: 6, MigratePeriod: 100, TopoAware: topo,
		})
		if err != nil {
			t.Fatal(err)
		}
		ts := res.StepTimes()
		sum := 0.0
		for _, v := range ts[4:] {
			sum += v
		}
		return sum / float64(len(ts)-4)
	}
	hash := run(false)
	topo := run(true)
	if topo >= hash {
		t.Fatalf("topology-aware map did not help: topo %v vs hash %v", topo, hash)
	}
}
