// Package pdes implements the parallel discrete event simulation mini-app
// of §IV-E: logical processes (LPs) as chares executing timestamped events
// under the YAWNS windowed conservative protocol, benchmarked with PHOLD.
//
// Each YAWNS round has two phases. The window calculation finds, by global
// reduction, the earliest time any LP could next create an event; lookahead
// then bounds a window inside which every pending event can execute without
// being preempted. The execution phase runs those events — each schedules a
// successor with a random future timestamp on a random LP, so communication
// is unpredictable fine-grained point-to-point traffic: exactly the
// workload where the paper leans on over-decomposition (idle LPs cost
// nothing, the PE runs whichever LP has events), message-driven execution
// (no posted receives to match), and TRAM (Fig 15b: aggregation hurts at
// low event density and wins big at high).
package pdes

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/pup"
	"charmgo/internal/tram"
)

// Config parameterizes a PHOLD run.
type Config struct {
	// LPs is the number of logical processes.
	LPs int
	// EventsPerLP is the initial event population per LP.
	EventsPerLP int
	// Lookahead is the minimum event-to-event delay (the YAWNS window).
	Lookahead float64
	// MeanDelay is the mean of the exponential extra delay.
	MeanDelay float64
	// EventWork is the compute cost of executing one event.
	EventWork float64
	// TargetEvents ends the run once this many events committed.
	TargetEvents int
	// UseTram routes events through the aggregation layer.
	UseTram bool
	// TramBuf overrides the TRAM buffer threshold.
	TramBuf int
	// LBPeriodWindows rebalances the LPs every k YAWNS windows using the
	// runtime's installed strategy (0 = never). Windows are quiescent
	// points, so migration is always safe there.
	LBPeriodWindows int
	Seed            int64
	// WindowHook, when set, runs on PE 0 at each window boundary (after
	// the exit check, before the next window opens) with the number of
	// completed windows. The boundary is quiescent — no events in flight —
	// so fault-tolerance drivers checkpoint here.
	WindowHook func(windows int)
}

func (c Config) withDefaults() Config {
	if c.EventsPerLP == 0 {
		c.EventsPerLP = 32
	}
	if c.Lookahead == 0 {
		c.Lookahead = 1.0
	}
	if c.MeanDelay == 0 {
		c.MeanDelay = 4.0
	}
	if c.EventWork == 0 {
		c.EventWork = 2e-6
	}
	if c.TargetEvents == 0 {
		c.TargetEvents = c.LPs * c.EventsPerLP * 4
	}
	return c
}

// Result reports a run.
type Result struct {
	// Committed is the number of events executed.
	Committed int
	// Windows is the number of YAWNS rounds.
	Windows int
	// Elapsed is the virtual wall time.
	Elapsed des.Time
	// EventRate is Committed / Elapsed (events per second, the Fig 15
	// metric).
	EventRate float64
	// MaxVT is the highest virtual (simulation) timestamp executed.
	MaxVT float64
}

const (
	epExecute charm.EP = iota
	epEvent
	epReportMin
)

// tsHeap is a min-heap of event timestamps, maintained inline: push/pop
// run on float64s directly, so heap maintenance costs no interface boxing
// per event. The sift algorithm matches container/heap step for step, so
// the array layout (and hence pupped checkpoint bytes) is unchanged.
type tsHeap []float64

func (h *tsHeap) push(v float64) {
	s := append(*h, v)
	*h = s
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p] <= v {
			break
		}
		s[i] = s[p]
		i = p
	}
	s[i] = v
}

func (h *tsHeap) pop() float64 {
	s := *h
	n := len(s) - 1
	top := s[0]
	v := s[n]
	s = s[:n]
	*h = s
	if n > 0 {
		i := 0
		for {
			c := 2*i + 1
			if c >= n {
				break
			}
			if r := c + 1; r < n && s[r] < s[c] {
				c = r
			}
			if s[c] >= v {
				break
			}
			s[i] = s[c]
			i = c
		}
		s[i] = v
	}
	return top
}

// lp is one logical process.
type lp struct {
	ID    int
	Q     tsHeap
	Exec  int64 // events executed
	RngLo uint64
	RngHi uint64

	app *App //pup:skip //charmvet:specstate (idempotent rebind: every handler writes the pointer the factory installs)
}

func (l *lp) Pup(p *pup.Pup) {
	p.Int(&l.ID)
	// A binary heap's array layout depends on insertion order even when
	// the multiset of pending timestamps does not. Sort before
	// serializing: a sorted ascending array is itself a valid min-heap,
	// so this canonicalizes the bytes — checkpoints and state digests
	// become independent of message arrival order — without changing the
	// LP's behaviour.
	sort.Float64s(l.Q)
	pup.Slice(p, (*[]float64)(&l.Q), (*pup.Pup).Float64)
	p.Int64(&l.Exec)
	p.Uint64(&l.RngLo)
	p.Uint64(&l.RngHi)
}

// rng is a small deterministic generator carried in the LP state (so it
// migrates with the LP).
func (l *lp) rand() float64 {
	l.RngLo ^= l.RngLo << 13
	l.RngLo ^= l.RngLo >> 7
	l.RngLo ^= l.RngLo << 17
	return float64(l.RngLo%(1<<52)) / float64(uint64(1)<<52)
}

func (l *lp) randN(n int) int { return int(l.rand()*float64(n)) % n }

func (l *lp) expo(mean float64) float64 {
	u := l.rand()
	if u <= 0 {
		u = 1e-12
	}
	return -mean * math.Log(u)
}

// App wires PDES to a runtime.
type App struct {
	rt   *charm.Runtime
	cfg  Config
	lps  *charm.Array
	tram *tram.Client
	res  *Result
	err  error

	window    float64 // current window end
	committed int64
}

// New creates the LP array and the initial PHOLD event population.
func New(rt *charm.Runtime, cfg Config) (*App, error) {
	cfg = cfg.withDefaults()
	if cfg.LPs < 1 {
		return nil, fmt.Errorf("pdes: need LPs")
	}
	a := &App{rt: rt, cfg: cfg, res: &Result{}}
	handlers := []charm.Handler{
		epExecute:   a.onExecute,
		epEvent:     a.onEvent,
		epReportMin: a.onReportMin,
	}
	a.lps = rt.DeclareArray("pdes_lps", func() charm.Chare { return &lp{app: a} },
		handlers, charm.ArrayOpts{
			Migratable: true,
			Bounds:     []int{cfg.LPs}, // dense 1-D index space: flat location tables
			// LP handlers touch only (LP state, payload); app-global writes
			// go through Defer. TRAM's phase-side aggregation buffers are
			// app-global, so aggregated runs stay on eager state saving.
			PureHandlers: !cfg.UseTram,
			HomeMap: func(idx charm.Index, numPEs int) int {
				return idx.I() * numPEs / cfg.LPs // block map: LPs/PE contiguity
			},
			EntryNames: []string{
				epExecute:   "execute",
				epEvent:     "event",
				epReportMin: "report_min",
			},
		})
	rng := rand.New(rand.NewSource(cfg.Seed*1619 + 11))
	for i := 0; i < cfg.LPs; i++ {
		l := &lp{ID: i, RngLo: uint64(rng.Int63()) | 1, app: a}
		for e := 0; e < cfg.EventsPerLP; e++ {
			l.Q.push(l.expo(cfg.MeanDelay))
		}
		a.lps.Insert(charm.Idx1(i), l)
	}
	if cfg.UseTram {
		// A short flush timeout drains the partially filled buffers at
		// the end of each execution phase (the YAWNS window boundary is
		// the natural TRAM flush point); the threshold still aggregates
		// the intra-window burst.
		topts := tram.Options{FlushTimeout: 1e-4}
		if cfg.TramBuf > 0 {
			topts.BufItems = cfg.TramBuf
		}
		a.tram = tram.New(rt, a.lps, epEvent, topts)
	}
	return a, nil
}

// LPs exposes the array.
func (a *App) LPs() *charm.Array { return a.lps }

// TramStats returns the aggregation statistics (zero when TRAM is off).
func (a *App) TramStats() tram.Stats {
	if a.tram == nil {
		return tram.Stats{}
	}
	return a.tram.Stats
}

// Run executes YAWNS rounds until TargetEvents commit.
func (a *App) Run() (*Result, error) {
	// Bootstrap: first window from the initial population.
	a.askMin()
	a.res.Elapsed = a.rt.Run()
	if a.err != nil {
		return nil, a.err
	}
	if int(a.committed) < a.cfg.TargetEvents {
		return nil, fmt.Errorf("pdes: committed %d of %d events", a.committed, a.cfg.TargetEvents)
	}
	a.res.Committed = int(a.committed)
	if a.res.Elapsed > 0 {
		a.res.EventRate = float64(a.committed) / float64(a.res.Elapsed)
	}
	return a.res, nil
}

// Run is the one-call driver.
func Run(rt *charm.Runtime, cfg Config) (*Result, error) {
	app, err := New(rt, cfg)
	if err != nil {
		return nil, err
	}
	return app.Run()
}

// askMin starts a window calculation: every LP reports its earliest
// pending timestamp.
func (a *App) askMin() {
	a.lps.Broadcast(epReportMin, nil)
}

// AskMin restarts the YAWNS protocol from a quiescent cut: every LP
// reports its earliest pending timestamp and the next window opens from
// the resulting reduction. Fault-tolerance drivers use it as the replay
// kick after a rollback; the extra window-min round mutates no LP state,
// so the replayed execution commits exactly the failure-free values.
func (a *App) AskMin() { a.askMin() }

// DriverState is the app-global driver state paired with a chare
// checkpoint: the counters live outside the LP chares, so rollback must
// restore them explicitly.
type DriverState struct {
	Committed int64
	Window    float64
	Windows   int
	MaxVT     float64
}

// DriverState snapshots the driver counters at a checkpoint cut.
func (a *App) DriverState() DriverState {
	return DriverState{Committed: a.committed, Window: a.window,
		Windows: a.res.Windows, MaxVT: a.res.MaxVT}
}

// RestoreDriverState rolls the driver counters back to a checkpoint cut.
func (a *App) RestoreDriverState(s DriverState) {
	a.committed = s.Committed
	a.window = s.Window
	a.res.Windows = s.Windows
	a.res.MaxVT = s.MaxVT
}

func (a *App) onReportMin(obj charm.Chare, ctx *charm.Ctx, msg any) {
	l := obj.(*lp)
	l.app = a
	m := math.Inf(1)
	if len(l.Q) > 0 {
		m = l.Q[0]
	}
	ctx.Charge(3e-7)
	ctx.Contribute(m, charm.MinF64, charm.CallbackFunc(0, a.onWindow))
}

// onWindow receives the global minimum and opens the next window.
func (a *App) onWindow(ctx *charm.Ctx, result any) {
	gmin := result.(float64)
	if int(a.committed) >= a.cfg.TargetEvents || math.IsInf(gmin, 1) {
		a.res.MaxVT = gmin
		ctx.Exit()
		return
	}
	if a.cfg.WindowHook != nil {
		a.cfg.WindowHook(a.res.Windows)
	}
	a.res.Windows++
	if a.cfg.LBPeriodWindows > 0 && a.res.Windows%a.cfg.LBPeriodWindows == 0 &&
		a.rt.Balancer() != nil {
		a.rt.Rebalance()
	}
	a.window = gmin + a.cfg.Lookahead
	ctx.Broadcast(a.lps, epExecute, a.window, nil)
	// Execution completion (including events still inside TRAM buffers)
	// is detected by quiescence, then the next window begins.
	a.rt.StartQD(charm.CallbackFunc(0, func(ctx *charm.Ctx, _ any) {
		a.askMin()
	}))
}

// onExecute runs every pending event below the window end, scheduling the
// successor events (PHOLD).
func (a *App) onExecute(obj charm.Chare, ctx *charm.Ctx, msg any) {
	l := obj.(*lp)
	l.app = a
	w := msg.(float64)
	// App-level aggregates (committed count, max virtual time) are shared
	// across LPs, so the handler accumulates locally and publishes via
	// Defer; max and sum merges are order-insensitive, so the result is
	// identical on both backends.
	var done int64
	localMax := math.Inf(-1)
	for len(l.Q) > 0 && l.Q[0] < w {
		ts := l.Q.pop()
		if ts > localMax {
			localMax = ts
		}
		ctx.Charge(a.cfg.EventWork)
		l.Exec++
		done++
		// Successor: random LP, random future time (conservative:
		// at least Lookahead away).
		nts := ts + a.cfg.Lookahead + l.expo(a.cfg.MeanDelay)
		dst := l.randN(a.cfg.LPs)
		if dst == l.ID {
			l.Q.push(nts)
			continue
		}
		if a.tram != nil {
			a.tram.Submit(ctx, charm.Idx1(dst), nts)
		} else {
			ctx.SendOpt(a.lps, charm.Idx1(dst), epEvent, nts,
				&charm.SendOpts{Bytes: 32})
		}
	}
	if done > 0 {
		ctx.Defer(func() {
			a.committed += done
			if localMax > a.res.MaxVT {
				a.res.MaxVT = localMax
			}
		})
	}
}

// onEvent enqueues an incoming event.
func (a *App) onEvent(obj charm.Chare, ctx *charm.Ctx, msg any) {
	l := obj.(*lp)
	l.app = a
	ts := msg.(float64)
	ctx.Charge(2e-7)
	l.Q.push(ts)
	if ts < a.window {
		// Conservative protocol violated — fail loudly. The error latch is
		// app-global, so it is published at commit time. The push above
		// runs unconditionally so LP state never depends on a.window, a
		// mutable app-global the PureHandlers replay contract excludes
		// (the run aborts either way).
		ctx.Defer(func() {
			a.err = fmt.Errorf("pdes: event at %v arrived inside open window %v", ts, a.window)
		})
		ctx.Exit()
	}
}
