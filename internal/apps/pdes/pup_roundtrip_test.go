package pdes

import (
	"testing"

	"charmgo/internal/pup/puptest"
)

// TestPupRoundTrip verifies an LP's pending-event heap and RNG state — the
// determinism-critical payload — survive migration byte-for-byte.
func TestPupRoundTrip(t *testing.T) {
	puptest.CheckEqual(t, &lp{
		ID:   5,
		Q:    tsHeap{1.5, 2.25, 9.75},
		Exec: 123,
		RngLo: 0xdeadbeef, RngHi: 0x1234,
	})
}
