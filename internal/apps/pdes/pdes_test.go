package pdes

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

func newRT(pes int) *charm.Runtime {
	return charm.New(machine.New(machine.Stampede(pes)))
}

func TestPholdRuns(t *testing.T) {
	rt := newRT(16)
	res, err := Run(rt, Config{LPs: 64, EventsPerLP: 8, TargetEvents: 2000, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < 2000 {
		t.Fatalf("committed %d", res.Committed)
	}
	if res.Windows == 0 || res.EventRate <= 0 {
		t.Fatalf("windows=%d rate=%v", res.Windows, res.EventRate)
	}
	if res.MaxVT <= 0 {
		t.Fatal("virtual time never advanced")
	}
}

func TestNoCausalityViolationEver(t *testing.T) {
	// The Run itself fails loudly on any in-window event arrival; run a
	// long, dense configuration to stress the conservative protocol.
	rt := newRT(16)
	if _, err := Run(rt, Config{LPs: 128, EventsPerLP: 16, TargetEvents: 10000,
		Lookahead: 0.5, MeanDelay: 1.5, Seed: 2}); err != nil {
		t.Fatal(err)
	}
}

func TestTramExactlyMatchesDirectCommitCount(t *testing.T) {
	run := func(useTram bool) (int, float64) {
		rt := newRT(16)
		res, err := Run(rt, Config{LPs: 64, EventsPerLP: 8, TargetEvents: 3000,
			UseTram: useTram, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		return res.Committed, res.MaxVT
	}
	cDirect, _ := run(false)
	cTram, _ := run(true)
	// Commit counts can differ slightly (the stop check runs per
	// window), but both must exceed the target and be close.
	if cTram < 3000 || cDirect < 3000 {
		t.Fatalf("targets missed: direct %d tram %d", cDirect, cTram)
	}
}

func TestOverdecompositionIncreasesEventRate(t *testing.T) {
	// Fig 15a: more LPs per PE (fixed initial events per LP) raises the
	// event rate, because idle LPs cost nothing and busy PEs always have
	// work.
	rate := func(lpsPerPE int) float64 {
		rt := newRT(16)
		res, err := Run(rt, Config{LPs: 16 * lpsPerPE, EventsPerLP: 8,
			TargetEvents: 16 * lpsPerPE * 8 * 2, Seed: 4})
		if err != nil {
			t.Fatal(err)
		}
		return res.EventRate
	}
	r16 := rate(16)
	r64 := rate(64)
	if r64 <= r16 {
		t.Fatalf("over-decomposition did not raise event rate: %v vs %v", r16, r64)
	}
}

func TestTramCrossover(t *testing.T) {
	// Fig 15b: TRAM loses at low event volume (aggregation latency) and
	// wins at high volume (per-message overhead amortized).
	// Multi-node machine: aggregation only pays off when messages cross
	// the network (Stampede nodes hold 16 PEs).
	rate := func(eventsPerLP int, useTram bool) float64 {
		rt := newRT(64)
		res, err := Run(rt, Config{LPs: 64 * 32, EventsPerLP: eventsPerLP,
			TargetEvents: 64 * 32 * eventsPerLP * 2, UseTram: useTram, Seed: 5})
		if err != nil {
			t.Fatal(err)
		}
		return res.EventRate
	}
	loTram, loDirect := rate(1, true), rate(1, false)
	hiTram, hiDirect := rate(24, true), rate(24, false)
	if loTram >= loDirect {
		t.Fatalf("low volume: TRAM %.0f should lose to direct %.0f", loTram, loDirect)
	}
	if hiTram <= hiDirect {
		t.Fatalf("high volume: TRAM %.0f should beat direct %.0f", hiTram, hiDirect)
	}
}

func TestEventPopulationConserved(t *testing.T) {
	// PHOLD keeps a fixed event population: every executed event spawns
	// exactly one successor. Check queue totals after a run.
	rt := newRT(8)
	app, err := New(rt, Config{LPs: 32, EventsPerLP: 8, TargetEvents: 1000, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, idx := range app.LPs().Keys() {
		total += len(app.LPs().Get(idx).(*lp).Q)
	}
	if total != 32*8 {
		t.Fatalf("event population drifted: %d, want %d", total, 32*8)
	}
}

func TestDeterministic(t *testing.T) {
	run := func(useTram bool) (float64, int) {
		rt := newRT(8)
		res, err := Run(rt, Config{LPs: 32, EventsPerLP: 8, TargetEvents: 1500,
			UseTram: useTram, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return float64(res.Elapsed), res.Committed
	}
	for _, ut := range []bool{false, true} {
		e1, c1 := run(ut)
		e2, c2 := run(ut)
		if e1 != e2 || c1 != c2 {
			t.Fatalf("tram=%v nondeterministic: (%v,%d) vs (%v,%d)", ut, e1, c1, e2, c2)
		}
	}
}

func TestLPMigrationBetweenWindows(t *testing.T) {
	// LPs are migratable chares: rebalancing them between YAWNS windows
	// must preserve correctness (no causality violations, event
	// population conserved) while in-flight events are forwarded by the
	// location manager.
	rt := newRT(8)
	rt.SetBalancer(lb.Greedy{})
	app, err := New(rt, Config{LPs: 64, EventsPerLP: 8, TargetEvents: 4000,
		LBPeriodWindows: 3, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	res, err := app.Run()
	if err != nil {
		t.Fatal(err)
	}
	if rt.Stats.Migrations == 0 {
		t.Fatal("no LPs migrated despite periodic LB")
	}
	if res.Committed < 4000 {
		t.Fatalf("committed %d", res.Committed)
	}
	total := 0
	for _, idx := range app.LPs().Keys() {
		total += len(app.LPs().Get(idx).(*lp).Q)
	}
	if total != 64*8 {
		t.Fatalf("event population drifted under migration: %d", total)
	}
}

func TestLPMigrationWithTram(t *testing.T) {
	// TRAM routes by a location snapshot; when an LP migrates, items are
	// handed back to the regular path. Verify correctness holds with
	// both enabled.
	rt := newRT(8)
	rt.SetBalancer(lb.Greedy{})
	res, err := Run(rt, Config{LPs: 64, EventsPerLP: 8, TargetEvents: 3000,
		LBPeriodWindows: 4, UseTram: true, Seed: 18})
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed < 3000 {
		t.Fatalf("committed %d", res.Committed)
	}
}
