package sorting

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/machine"
)

func newRT(pes int) *charm.Runtime {
	return charm.New(machine.New(machine.Testbed(pes)))
}

func TestBothAlgorithmsSortCorrectly(t *testing.T) {
	// Run verifies sortedness, boundaries, and the permutation property
	// internally; an error means the sort is wrong.
	for _, algo := range []Algo{MergeTree, HistSort} {
		for _, p := range []int{1, 2, 7, 16} {
			rt := newRT(max(p, 1))
			if _, err := Run(rt, Config{Ranks: p, KeysPerRank: 500, Algo: algo, Seed: 3}); err != nil {
				t.Fatalf("%v with %d ranks: %v", algo, p, err)
			}
		}
	}
}

func TestHistSortBalancesOutput(t *testing.T) {
	// The histogram refinement must deliver near-equal key counts even
	// for the skewed input distribution; the permutation check in Run
	// covers totals, so here we check timing sanity instead: a wildly
	// unbalanced all-to-all would blow up the max sort time relative to
	// the single-rank baseline.
	rt := newRT(16)
	res, err := Run(rt, Config{Ranks: 16, KeysPerRank: 2000, Algo: HistSort, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if res.SortTime <= 0 || res.ComputeTime <= 0 {
		t.Fatalf("bad times: %+v", res)
	}
}

func TestMergeTreeBottlenecksAtScale(t *testing.T) {
	// Weak scaling: the merge tree's sort fraction must grow with ranks
	// while HistSort's stays roughly flat — the Fig 7 crossover.
	frac := func(algo Algo, p int) float64 {
		rt := newRT(p)
		// Per-particle physics dominates a real step; sorting is the
		// fixed overhead whose growth we are measuring.
		res, err := Run(rt, Config{Ranks: p, KeysPerRank: 1000, Algo: algo, Seed: 1,
			ComputePerKey: 2e-6})
		if err != nil {
			t.Fatal(err)
		}
		return res.SortFraction
	}
	mergeSmall, mergeBig := frac(MergeTree, 8), frac(MergeTree, 64)
	histSmall, histBig := frac(HistSort, 8), frac(HistSort, 64)
	if mergeBig <= mergeSmall {
		t.Fatalf("merge-tree fraction did not grow: %.3f -> %.3f", mergeSmall, mergeBig)
	}
	if histBig >= mergeBig {
		t.Fatalf("HistSort (%.3f) should beat merge tree (%.3f) at 64 ranks", histBig, mergeBig)
	}
	if histBig > 3*histSmall+0.05 {
		t.Fatalf("HistSort fraction exploded: %.3f -> %.3f", histSmall, histBig)
	}
}

func TestMergeRuns(t *testing.T) {
	got := mergeRuns([]uint64{1, 3, 5}, []uint64{2, 3, 6, 9})
	want := []uint64{1, 2, 3, 3, 5, 6, 9}
	if len(got) != len(want) {
		t.Fatalf("merge length %d", len(got))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("merge[%d]=%d want %d", i, got[i], want[i])
		}
	}
	if out := mergeRuns(nil, []uint64{4}); len(out) != 1 || out[0] != 4 {
		t.Fatal("merge with empty run broken")
	}
}

func TestMergeK(t *testing.T) {
	runs := [][]uint64{{5, 9}, {1}, {2, 8}, {3, 4, 7}, {6}}
	got := mergeK(runs)
	for i := 1; i < len(got); i++ {
		if got[i-1] > got[i] {
			t.Fatalf("mergeK out of order: %v", got)
		}
	}
	if len(got) != 9 {
		t.Fatalf("mergeK lost elements: %v", got)
	}
	if mergeK(nil) != nil {
		t.Fatal("mergeK(nil) should be nil")
	}
}

func TestMultiStep(t *testing.T) {
	rt := newRT(8)
	res, err := Run(rt, Config{Ranks: 8, KeysPerRank: 400, Algo: HistSort, Steps: 3, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 {
		t.Fatal("no time elapsed")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() (float64, float64) {
		rt := newRT(8)
		res, err := Run(rt, Config{Ranks: 8, KeysPerRank: 300, Algo: HistSort, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return res.SortTime, res.TotalTime
	}
	s1, t1 := run()
	s2, t2 := run()
	if s1 != s2 || t1 != t2 {
		t.Fatalf("nondeterministic: (%v,%v) vs (%v,%v)", s1, t1, s2, t2)
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func TestCharmInteropSortCorrect(t *testing.T) {
	// The Charm-side library must produce correct results through the
	// interop interface for assorted rank counts, including 1.
	for _, p := range []int{1, 2, 8, 16} {
		rt := newRT(max(p, 1))
		if _, err := Run(rt, Config{Ranks: p, KeysPerRank: 400, Algo: HistSortCharm, Seed: 11}); err != nil {
			t.Fatalf("interop sort with %d ranks: %v", p, err)
		}
	}
}

func TestCharmInteropMultiStep(t *testing.T) {
	rt := newRT(8)
	res, err := Run(rt, Config{Ranks: 8, KeysPerRank: 500, Algo: HistSortCharm, Steps: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	if res.SortTime <= 0 {
		t.Fatalf("no sort time measured: %+v", res)
	}
}

func TestCharmInteropScalesLikeHistSort(t *testing.T) {
	// The library module's cost should stay in the same regime as the
	// AMPI histogram sort — far below the merge tree at scale.
	frac := func(algo Algo) float64 {
		rt := newRT(64)
		res, err := Run(rt, Config{Ranks: 64, KeysPerRank: 1000, Algo: algo, Seed: 13,
			ComputePerKey: 2e-6})
		if err != nil {
			t.Fatal(err)
		}
		return res.SortFraction
	}
	merge := frac(MergeTree)
	charmLib := frac(HistSortCharm)
	if charmLib >= merge {
		t.Fatalf("interop HistSort (%.3f) should beat the merge tree (%.3f)", charmLib, merge)
	}
}

func TestAlgoStrings(t *testing.T) {
	if MergeTree.String() == "" || HistSort.String() == "" || HistSortCharm.String() == "" {
		t.Fatal("empty algo name")
	}
	if HistSort.String() == HistSortCharm.String() {
		t.Fatal("algo names must differ")
	}
}
