// Package sorting reproduces the CHARM interoperation study of §III-G
// (Fig 7): a cosmology-style application must globally sort its particles
// every step to fix load imbalance from non-uniform particle distributions.
// Two sorting libraries are implemented over real keys:
//
//   - MergeTree — the MPI-style multiway merge sort: sorted runs are
//     gathered and merged up a binary tree, fully serializing O(N) merge
//     work and O(N) bytes at the root, then scattered back. Under weak
//     scaling its cost grows with the machine — the bottleneck Fig 7
//     shows (23% of step time at 4096 PEs).
//
//   - HistSort — the Charm++ histogram sort (Solomonik & Kalé): iterated
//     histogramming finds P−1 splitters, one all-to-all moves each key
//     directly to its destination, and a local multiway merge finishes.
//     Per-PE cost stays near-constant, so sorting stays a small fraction
//     of the step (2% at 4096 PEs) — enabled, in the paper, by calling the
//     Charm++ library from the MPI application through interoperation.
//
// Both run as libraries over AMPI ranks, mirroring how the MPI application
// invokes them; the run verifies sortedness, the permutation property, and
// cross-rank boundary order.
package sorting

import (
	"fmt"
	"math/rand"
	"sort"

	"charmgo/internal/ampi"
	"charmgo/internal/charm"
)

// Algo selects the sorting library.
type Algo int

const (
	// MergeTree is the MPI multiway merge sort baseline.
	MergeTree Algo = iota
	// HistSort is the histogram sort implemented directly over the MPI
	// ranks (same algorithm as the Charm++ library, AMPI messaging).
	HistSort
	// HistSortCharm invokes the Charm-side sorting library module from
	// the MPI ranks through the §III-G interoperation interface.
	HistSortCharm
)

func (a Algo) String() string {
	switch a {
	case MergeTree:
		return "MPI-MultiwayMerge"
	case HistSort:
		return "AMPI-HistSort"
	}
	return "Charm++-HistSort-interop"
}

// Config parameterizes one application step.
type Config struct {
	Ranks       int
	KeysPerRank int
	// ComputePerKey is the "useful computation" cost per particle.
	ComputePerKey float64
	// MergePerKey is the per-key cost of merge/sort work.
	MergePerKey float64
	Algo        Algo
	Seed        int64
	// Steps is the number of compute+sort steps (default 1).
	Steps int
}

func (c Config) withDefaults() Config {
	if c.ComputePerKey == 0 {
		c.ComputePerKey = 40e-9
	}
	if c.MergePerKey == 0 {
		c.MergePerKey = 6e-9
	}
	if c.Steps == 0 {
		c.Steps = 1
	}
	return c
}

// Result reports one run.
type Result struct {
	// ComputeTime and SortTime are the per-step maxima across ranks,
	// averaged over steps.
	ComputeTime float64
	SortTime    float64
	// TotalTime is the full virtual run time.
	TotalTime float64
	// SortFraction is SortTime / (SortTime + ComputeTime).
	SortFraction float64
}

// computeSink defeats dead-code elimination of the compute pass.
var computeSink uint64

const (
	tagTree    = 100
	tagScatter = 101
	tagAllTo   = 102
	tagBound   = 103
)

// Run executes the interop mini-app on the runtime.
func Run(rt *charm.Runtime, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	res := &Result{}
	var verifyErr error
	var lib *CharmSortLib

	env, err := ampi.Start(rt, "ampi_ranks", cfg.Ranks, func(r *ampi.Rank) {
		rng := rand.New(rand.NewSource(cfg.Seed*7919 + int64(r.ID())))
		keys := make([]uint64, cfg.KeysPerRank)
		for i := range keys {
			// Non-uniform (clustered) keys: squaring skews the
			// distribution like a clustered particle population.
			v := rng.Float64()
			keys[i] = uint64(v * v * float64(1<<62))
		}
		var wantSum int64
		var wantCount int64 = int64(len(keys))
		for _, k := range keys {
			wantSum += int64(k >> 8)
		}
		wantSum = r.AllreduceI(wantSum, charm.SumI64)
		wantCount = r.AllreduceI(wantCount, charm.SumI64)

		var computeAcc, sortAcc float64
		for step := 0; step < cfg.Steps; step++ {
			t0 := r.Wtime()
			// Useful computation: a force-accumulation pass over the
			// particles (reads every key; keys themselves are the sort
			// identity, so the pass must not rewrite them).
			var acc uint64
			for _, k := range keys {
				acc += k>>17 ^ k
			}
			computeSink = acc
			r.Charge(cfg.ComputePerKey * float64(len(keys)))
			r.Barrier()
			t1 := r.Wtime()
			switch cfg.Algo {
			case MergeTree:
				keys = mergeTreeSort(r, keys, cfg)
			case HistSort:
				keys = histSort(r, keys, cfg)
			case HistSortCharm:
				keys = lib.Sort(r, keys)
			}
			r.Barrier()
			t2 := r.Wtime()
			computeAcc += r.AllreduceF(t1-t0, charm.MaxF64)
			sortAcc += r.AllreduceF(t2-t1, charm.MaxF64)
		}

		// Verify: locally sorted, boundaries ordered, permutation kept.
		for i := 1; i < len(keys); i++ {
			if keys[i-1] > keys[i] {
				verifyErr = fmt.Errorf("rank %d not sorted at %d", r.ID(), i)
				return
			}
		}
		var mySum int64
		for _, k := range keys {
			mySum += int64(k >> 8)
		}
		gotSum := r.AllreduceI(mySum, charm.SumI64)
		gotCount := r.AllreduceI(int64(len(keys)), charm.SumI64)
		if gotSum != wantSum || gotCount != wantCount {
			verifyErr = fmt.Errorf("permutation violated: sum %d->%d count %d->%d",
				wantSum, gotSum, wantCount, gotCount)
			return
		}
		// Boundary order with the next rank.
		if r.ID() < r.Size()-1 {
			var myMax uint64
			if len(keys) > 0 {
				myMax = keys[len(keys)-1]
			}
			r.Send(r.ID()+1, tagBound, myMax, 16)
		}
		if r.ID() > 0 {
			prevMax, _ := r.Recv(r.ID()-1, tagBound)
			if len(keys) > 0 && prevMax.(uint64) > keys[0] {
				verifyErr = fmt.Errorf("rank boundary disorder at %d", r.ID())
			}
		}
		if r.ID() == 0 {
			res.ComputeTime = computeAcc / float64(cfg.Steps)
			res.SortTime = sortAcc / float64(cfg.Steps)
		}
	}, ampi.Options{})
	if err != nil {
		return nil, err
	}
	if cfg.Algo == HistSortCharm {
		// CharmLibInit: register the library module before execution.
		lib = NewCharmSortLib(rt, env, cfg.Ranks, cfg.MergePerKey)
	}
	rt.Run()
	if err := env.Finish(); err != nil {
		return nil, err
	}
	if verifyErr != nil {
		return nil, verifyErr
	}
	res.TotalTime = float64(rt.Now())
	if res.SortTime+res.ComputeTime > 0 {
		res.SortFraction = res.SortTime / (res.SortTime + res.ComputeTime)
	}
	return res, nil
}

// mergeTreeSort gathers sorted runs up a binary tree, merging at each
// level, then scatters equal chunks back — the MPI baseline.
func mergeTreeSort(r *ampi.Rank, keys []uint64, cfg Config) []uint64 {
	sortLocal(r, keys, cfg)
	p := r.Size()
	me := r.ID()
	buf := keys
	for stride := 1; stride < p; stride *= 2 {
		if me%(2*stride) == stride {
			r.Send(me-stride, tagTree, buf, len(buf)*8)
			buf = nil
			break
		}
		if me%(2*stride) == 0 && me+stride < p {
			other, _ := r.Recv(me+stride, tagTree)
			ov := other.([]uint64)
			r.Charge(cfg.MergePerKey * float64(len(buf)+len(ov)))
			buf = mergeRuns(buf, ov)
		}
	}
	if me == 0 {
		// Scatter contiguous chunks back.
		n := len(buf)
		for dst := p - 1; dst >= 1; dst-- {
			lo, hi := dst*n/p, (dst+1)*n/p
			chunk := append([]uint64(nil), buf[lo:hi]...)
			r.Send(dst, tagScatter, chunk, len(chunk)*8)
		}
		return append([]uint64(nil), buf[:n/p]...)
	}
	chunk, _ := r.Recv(0, tagScatter)
	return chunk.([]uint64)
}

// histSort finds splitters by iterated histogramming and performs one
// direct all-to-all — the Charm++ library.
func histSort(r *ampi.Rank, keys []uint64, cfg Config) []uint64 {
	sortLocal(r, keys, cfg)
	p := r.Size()
	if p == 1 {
		return keys
	}
	total := r.AllreduceI(int64(len(keys)), charm.SumI64)
	target := float64(total) / float64(p)

	// Initial splitter guess: the average of every rank's local
	// quantiles (one vector reduction) — for iid keys this starts within
	// a few percent of the true splitters, so the histogram refinement
	// below converges in one or two rounds.
	const keyMax = uint64(1) << 62
	lo := make([]uint64, p-1)
	hi := make([]uint64, p-1)
	splitters := make([]uint64, p-1)
	localQ := make([]float64, p-1)
	for i := range localQ {
		if len(keys) > 0 {
			localQ[i] = float64(keys[(i+1)*len(keys)/p])
		}
	}
	globalQ := r.AllreduceVec(localQ)
	for i := range splitters {
		lo[i] = 0
		hi[i] = keyMax
		splitters[i] = uint64(globalQ[i] / float64(p))
	}
	for round := 0; round < 6; round++ {
		counts := make([]float64, p-1)
		for i, s := range splitters {
			counts[i] = float64(sort.Search(len(keys), func(j int) bool { return keys[j] > s }))
		}
		r.Charge(float64(len(splitters)) * 40e-9 * 20) // binary searches
		global := r.AllreduceVec(counts)
		ok := true
		for i := range splitters {
			want := target * float64(i+1)
			got := global[i]
			switch {
			case got < want*0.92-1:
				lo[i] = splitters[i]
				ok = false
				splitters[i] = lo[i]/2 + hi[i]/2
			case got > want*1.08+1:
				hi[i] = splitters[i]
				ok = false
				splitters[i] = lo[i]/2 + hi[i]/2
			}
		}
		// Keep the splitter set monotone; independent bisection on a
		// skewed key distribution can momentarily cross neighbours.
		for i := 1; i < len(splitters); i++ {
			if splitters[i] < splitters[i-1] {
				splitters[i] = splitters[i-1]
			}
		}
		if ok {
			break
		}
	}

	// One all-to-all: segment s goes to rank s.
	segs := make([][]uint64, p)
	prev := 0
	for i, s := range splitters {
		end := sort.Search(len(keys), func(j int) bool { return keys[j] > s })
		if end < prev {
			end = prev
		}
		segs[i] = keys[prev:end]
		prev = end
	}
	segs[p-1] = keys[prev:]
	for d := 1; d < p; d++ {
		dst := (r.ID() + d) % p
		seg := append([]uint64(nil), segs[dst]...)
		r.Send(dst, tagAllTo, seg, len(seg)*8+16)
	}
	runs := [][]uint64{append([]uint64(nil), segs[r.ID()]...)}
	for got := 0; got < p-1; got++ {
		m, _ := r.Recv(ampi.AnySource, tagAllTo)
		runs = append(runs, m.([]uint64))
	}
	n := 0
	for _, run := range runs {
		n += len(run)
	}
	r.Charge(cfg.MergePerKey * float64(n) * log2f(len(runs)))
	return mergeK(runs)
}

func sortLocal(r *ampi.Rank, keys []uint64, cfg Config) {
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	r.Charge(cfg.MergePerKey * float64(len(keys)) * log2f(len(keys)+1))
}

func mergeRuns(a, b []uint64) []uint64 {
	out := make([]uint64, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			out = append(out, a[i])
			i++
		} else {
			out = append(out, b[j])
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// mergeK merges sorted runs pairwise (real k-way merge work).
func mergeK(runs [][]uint64) []uint64 {
	for len(runs) > 1 {
		var next [][]uint64
		for i := 0; i+1 < len(runs); i += 2 {
			next = append(next, mergeRuns(runs[i], runs[i+1]))
		}
		if len(runs)%2 == 1 {
			next = append(next, runs[len(runs)-1])
		}
		runs = next
	}
	if len(runs) == 0 {
		return nil
	}
	return runs[0]
}

func log2f(n int) float64 {
	l := 0.0
	for v := n; v > 1; v >>= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}
