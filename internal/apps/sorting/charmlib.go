package sorting

import (
	"sort"

	"charmgo/internal/ampi"
	"charmgo/internal/charm"
	"charmgo/internal/pup"
)

// CharmSortLib is a Charm-side sorting library module invocable from MPI
// ranks — the actual §III-G interoperation mechanism the CHARM study used:
// the MPI application initializes the module (CharmLibInit), hands its keys
// across the interface function, the module's chares sort with
// asynchronous messaging and reductions, and control returns to MPI when
// the result lands back in the rank's mailbox.
//
// One sorter chare serves each rank. A sort round runs: local sort →
// quantile reduction for splitters → direct all-to-all of key segments →
// local multiway merge → result delivered to the owning rank.
type CharmSortLib struct {
	rt  *charm.Runtime
	env *ampi.Env
	arr *charm.Array
	n   int
	// MergePerKey is the modeled cost of sort/merge work per key.
	MergePerKey float64
}

// TagResult is the MPI tag on which ranks receive the library's output.
const TagResult = 7707

const (
	epSortInput charm.EP = iota
	epSplitters
	epSegment
)

type sortInput struct {
	Rank int
	Keys []uint64
}

// sorter is the library's chare.
type sorter struct {
	ID     int
	Keys   []uint64
	Client int
	// Round state.
	HaveSplitters bool
	Splitters     []uint64
	Runs          [][]uint64
	GotSegs       int
	PendingSegs   [][]uint64

	lib *CharmSortLib //pup:skip //charmvet:specstate (idempotent rebind: every handler writes the pointer the factory installs)
}

func (s *sorter) Pup(p *pup.Pup) {
	p.Int(&s.ID)
	p.Uint64s(&s.Keys)
	p.Int(&s.Client)
	p.Bool(&s.HaveSplitters)
	p.Uint64s(&s.Splitters)
	pup.Slice(p, &s.Runs, (*pup.Pup).Uint64s)
	p.Int(&s.GotSegs)
	pup.Slice(p, &s.PendingSegs, (*pup.Pup).Uint64s)
}

// NewCharmSortLib registers the library's chare array on the runtime: the
// CharmLibInit step. n must equal the MPI job's rank count.
func NewCharmSortLib(rt *charm.Runtime, env *ampi.Env, n int, mergePerKey float64) *CharmSortLib {
	lib := &CharmSortLib{rt: rt, env: env, n: n, MergePerKey: mergePerKey}
	if mergePerKey == 0 {
		lib.MergePerKey = 6e-9
	}
	handlers := []charm.Handler{
		epSortInput: lib.onInput,
		epSplitters: lib.onSplitters,
		epSegment:   lib.onSegment,
	}
	lib.arr = rt.DeclareArray("charm_sort_lib", func() charm.Chare { return &sorter{lib: lib} },
		handlers, charm.ArrayOpts{
			Migratable: true,
			HomeMap: func(idx charm.Index, numPEs int) int {
				return idx.I() * numPEs / n // co-locate sorter i with rank i
			},
		})
	for i := 0; i < n; i++ {
		lib.arr.Insert(charm.Idx1(i), &sorter{ID: i, lib: lib})
	}
	return lib
}

// Sort is the interface function MPI rank code calls: it transfers the
// rank's keys and control to the Charm module and blocks until the module
// returns the rank's sorted key range.
func (lib *CharmSortLib) Sort(r *ampi.Rank, keys []uint64) []uint64 {
	ctx := r.CharmCtx()
	ctx.SendOpt(lib.arr, charm.Idx1(r.ID()), epSortInput,
		sortInput{Rank: r.ID(), Keys: keys},
		&charm.SendOpts{Bytes: len(keys)*8 + 32})
	out, _ := r.Recv(ampi.AnySource, TagResult)
	return out.([]uint64)
}

// onInput sorts locally and joins the splitter reduction.
func (lib *CharmSortLib) onInput(obj charm.Chare, ctx *charm.Ctx, msg any) {
	s := obj.(*sorter)
	s.lib = lib
	in := msg.(sortInput)
	s.Client = in.Rank
	s.Keys = in.Keys
	sort.Slice(s.Keys, func(i, j int) bool { return s.Keys[i] < s.Keys[j] })
	ctx.Charge(lib.MergePerKey * float64(len(s.Keys)) * log2f(len(s.Keys)+1))

	// Local quantiles; their cross-sorter average approximates the global
	// splitters (single reduction, no iteration needed for iid keys).
	q := make([]float64, lib.n-1)
	for i := range q {
		if len(s.Keys) > 0 {
			q[i] = float64(s.Keys[(i+1)*len(s.Keys)/lib.n])
		}
	}
	ctx.Contribute(q, charm.SumVecF64, charm.CallbackBcast(lib.arr, epSplitters))
}

// onSplitters partitions the local keys and ships each segment to its
// destination sorter.
func (lib *CharmSortLib) onSplitters(obj charm.Chare, ctx *charm.Ctx, msg any) {
	s := obj.(*sorter)
	s.lib = lib
	if lib.n == 1 {
		lib.finish(s, ctx)
		return
	}
	sums := msg.([]float64)
	s.Splitters = make([]uint64, lib.n-1)
	for i, v := range sums {
		s.Splitters[i] = uint64(v / float64(lib.n))
	}
	for i := 1; i < len(s.Splitters); i++ {
		if s.Splitters[i] < s.Splitters[i-1] {
			s.Splitters[i] = s.Splitters[i-1]
		}
	}
	s.HaveSplitters = true

	prev := 0
	for d := 0; d < lib.n; d++ {
		end := len(s.Keys)
		if d < len(s.Splitters) {
			sp := s.Splitters[d]
			end = sort.Search(len(s.Keys), func(j int) bool { return s.Keys[j] > sp })
		}
		if end < prev {
			end = prev
		}
		seg := append([]uint64(nil), s.Keys[prev:end]...)
		prev = end
		if d == s.ID {
			s.Runs = append(s.Runs, seg)
			continue
		}
		ctx.SendOpt(lib.arr, charm.Idx1(d), epSegment, seg,
			&charm.SendOpts{Bytes: len(seg)*8 + 16})
	}
	// Segments that raced ahead of our splitter broadcast.
	if len(s.PendingSegs) > 0 {
		pend := s.PendingSegs
		s.PendingSegs = nil
		for _, seg := range pend {
			s.Runs = append(s.Runs, seg)
			s.GotSegs++
		}
	}
	lib.maybeMerge(s, ctx)
}

// onSegment collects one peer's key segment.
func (lib *CharmSortLib) onSegment(obj charm.Chare, ctx *charm.Ctx, msg any) {
	s := obj.(*sorter)
	s.lib = lib
	seg := msg.([]uint64)
	if !s.HaveSplitters {
		s.PendingSegs = append(s.PendingSegs, seg)
		return
	}
	s.Runs = append(s.Runs, seg)
	s.GotSegs++
	lib.maybeMerge(s, ctx)
}

func (lib *CharmSortLib) maybeMerge(s *sorter, ctx *charm.Ctx) {
	if s.GotSegs < lib.n-1 {
		return
	}
	lib.finish(s, ctx)
}

// finish merges the runs and returns control (and data) to the MPI rank.
func (lib *CharmSortLib) finish(s *sorter, ctx *charm.Ctx) {
	total := 0
	for _, r := range s.Runs {
		total += len(r)
	}
	merged := mergeK(s.Runs)
	if lib.n == 1 {
		merged = s.Keys
	}
	ctx.Charge(lib.MergePerKey * float64(total) * log2f(len(s.Runs)+1))
	lib.env.SendToRank(ctx, s.Client, s.Client, TagResult, merged, len(merged)*8)
	// Reset round state.
	s.Keys = nil
	s.Runs = nil
	s.GotSegs = 0
	s.HaveSplitters = false
	s.Splitters = nil
}
