package sorting

import (
	"testing"

	"charmgo/internal/pup/puptest"
)

func TestPupRoundTrip(t *testing.T) {
	puptest.CheckEqual(t, &sorter{
		ID:            2,
		Keys:          []uint64{9, 1, 5},
		Client:        1,
		HaveSplitters: true,
		Splitters:     []uint64{4, 8},
		Runs:          [][]uint64{{1, 2}, {7}},
		GotSegs:       3,
		PendingSegs:   [][]uint64{{11, 13}},
	})
}
