package machine

import (
	"fmt"
	"math"

	"charmgo/internal/des"
)

// Node is one physical node: a chip with a frequency, a thermal state, and
// PEsPerNode processing elements.
type Node struct {
	ID      int
	coords  []int
	freqGHz float64
	tempC   float64
	// coolFactor scales the node's thermal resistance: packaging and
	// rack-position variation makes some chips run hotter than others
	// under identical load (the heterogeneity thermal-aware LB exploits).
	coolFactor float64
	// utilization in [0,1] is set by the runtime from the fraction of
	// recent time the node's PEs spent busy; the thermal model uses it.
	Utilization float64
	// maxTempC tracks the hottest temperature this node ever reached.
	maxTempC float64
	// energyJ integrates the node's power draw over StepThermal calls.
	energyJ float64
}

// FreqGHz returns the node's current clock frequency.
func (n *Node) FreqGHz() float64 { return n.freqGHz }

// TempC returns the node's current chip temperature.
func (n *Node) TempC() float64 { return n.tempC }

// MaxTempC returns the hottest temperature observed on the node.
func (n *Node) MaxTempC() float64 { return n.maxTempC }

// EnergyJ returns the node's accumulated energy consumption in joules.
func (n *Node) EnergyJ() float64 { return n.energyJ }

// PE is one processing element.
type PE struct {
	ID   int
	Node *Node
	// interference is the fraction of the PE's cycles stolen by external
	// load (cloud multi-tenancy); 0 means a dedicated PE.
	interference float64
	// BusyTime accumulates virtual seconds spent computing; used for
	// utilization sampling and LB background-load estimation.
	BusyTime des.Time
	// lastSample is the busy time at the previous utilization sample.
	lastSample des.Time
}

// Interference returns the fraction of the PE stolen by external load.
func (p *PE) Interference() float64 { return p.interference }

// Speed returns the PE's effective speed as a multiple of a dedicated PE at
// base frequency: (freq/base) * (1 - interference).
func (p *PE) Speed(baseGHz float64) float64 {
	return p.Node.freqGHz / baseGHz * (1 - p.interference)
}

// Machine instantiates a Config: it owns the PEs and nodes and converts
// abstract work and messages into virtual durations.
type Machine struct {
	cfg   Config
	pes   []*PE
	nodes []*Node
	// nicFreeAt is when each node's egress NIC next becomes free
	// (NICBandwidth model).
	nicFreeAt []des.Time
}

// New builds a machine from a configuration.
func New(cfg Config) *Machine {
	cfg = cfg.withDefaults()
	m := &Machine{cfg: cfg}
	m.nodes = make([]*Node, cfg.NumNodes)
	for i := range m.nodes {
		m.nodes[i] = &Node{
			ID:         i,
			coords:     nodeCoords(i, cfg.TorusDims),
			freqGHz:    cfg.BaseFreqGHz,
			tempC:      cfg.Thermal.InitialC,
			maxTempC:   cfg.Thermal.InitialC,
			coolFactor: 1,
		}
	}
	m.pes = make([]*PE, cfg.NumPEs())
	for i := range m.pes {
		m.pes[i] = &PE{ID: i, Node: m.nodes[i/cfg.PEsPerNode]}
	}
	m.nicFreeAt = make([]des.Time, cfg.NumNodes)
	return m
}

// Config returns the machine's configuration.
func (m *Machine) Config() Config { return m.cfg }

// NumPEs returns the machine's PE count.
func (m *Machine) NumPEs() int { return len(m.pes) }

// NumNodes returns the machine's node count.
func (m *Machine) NumNodes() int { return len(m.nodes) }

// PE returns PE i.
func (m *Machine) PE(i int) *PE { return m.pes[i] }

// NodeOf returns the node hosting PE i.
func (m *Machine) NodeOf(i int) *Node { return m.pes[i].Node }

// Node returns node i.
func (m *Machine) Node(i int) *Node { return m.nodes[i] }

// SetInterference sets the external-load fraction on PE i (cloud model).
func (m *Machine) SetInterference(pe int, frac float64) {
	if frac < 0 || frac >= 1 {
		panic(fmt.Sprintf("machine: interference %v out of [0,1)", frac))
	}
	m.pes[pe].interference = frac
}

// Interference returns the external-load fraction currently set on PE i
// (fault-injection campaigns report straggler windows through it).
func (m *Machine) Interference(pe int) float64 { return m.pes[pe].interference }

// ResetNIC clears the egress NIC queue of the node hosting pe: a crashed
// node reboots with an empty NIC, so transmissions it had queued — now
// lost — must not delay post-recovery sends.
func (m *Machine) ResetNIC(pe int) {
	m.nicFreeAt[m.pes[pe].Node.ID] = 0
}

// ResetAllNICs clears every node's egress NIC queue. Rollback recovery
// calls it: a checkpoint is taken at a quiescent cut where every link is
// idle, so replaying from the checkpoint must not inherit bookings made
// by the rolled-back (discarded) traffic — a residual backlog would shift
// replayed transmits and break the replay's time-translation invariance.
func (m *Machine) ResetAllNICs() {
	for n := range m.nicFreeAt {
		m.nicFreeAt[n] = 0
	}
}

// SetNodeCooling scales node n's thermal resistance: factors above 1 make
// the chip run hotter at the same power (poor rack position), below 1
// cooler.
func (m *Machine) SetNodeCooling(n int, factor float64) {
	if factor <= 0 {
		panic("machine: cooling factor must be positive")
	}
	m.nodes[n].coolFactor = factor
}

// SpreadCooling applies a deterministic linear cooling gradient across the
// nodes, from lo (node 0, well cooled) to hi (last node, poorly cooled) —
// the machine-room variation that makes naive DVFS unbalanced.
func (m *Machine) SpreadCooling(lo, hi float64) {
	n := len(m.nodes)
	for i, node := range m.nodes {
		f := lo
		if n > 1 {
			f = lo + (hi-lo)*float64(i)/float64(n-1)
		}
		node.coolFactor = f
	}
}

// SetNodeFreq pins node n to the DVFS level nearest f (or exactly f when the
// machine has no DVFS table).
func (m *Machine) SetNodeFreq(n int, f float64) {
	node := m.nodes[n]
	if len(m.cfg.DVFSLevelsGHz) == 0 {
		node.freqGHz = f
		return
	}
	best := m.cfg.DVFSLevelsGHz[0]
	for _, lv := range m.cfg.DVFSLevelsGHz {
		if math.Abs(lv-f) < math.Abs(best-f) {
			best = lv
		}
	}
	node.freqGHz = best
}

// StepNodeFreq moves node n up (+1) or down (-1) one DVFS level and reports
// the new frequency.
func (m *Machine) StepNodeFreq(n, dir int) float64 {
	node := m.nodes[n]
	levels := m.cfg.DVFSLevelsGHz
	if len(levels) == 0 {
		return node.freqGHz
	}
	idx := 0
	for i, lv := range levels {
		if math.Abs(lv-node.freqGHz) < math.Abs(levels[idx]-node.freqGHz) {
			idx = i
		}
	}
	idx += dir
	if idx < 0 {
		idx = 0
	}
	if idx >= len(levels) {
		idx = len(levels) - 1
	}
	node.freqGHz = levels[idx]
	return node.freqGHz
}

// ComputeTime converts nominal work (seconds at base frequency on a
// dedicated PE) into the virtual duration on PE i at its current speed.
func (m *Machine) ComputeTime(pe int, work float64) des.Time {
	if work <= 0 {
		return 0
	}
	s := m.pes[pe].Speed(m.cfg.BaseFreqGHz)
	if s <= 0 {
		s = 1e-6
	}
	return des.Time(work / s)
}

// Hops returns the torus hop distance between the nodes of two PEs.
func (m *Machine) Hops(srcPE, dstPE int) int {
	a, b := m.pes[srcPE].Node, m.pes[dstPE].Node
	if a == b {
		return 0
	}
	h := 0
	for d, dim := range m.cfg.TorusDims {
		delta := abs(a.coords[d] - b.coords[d])
		if w := dim - delta; w < delta {
			delta = w
		}
		h += delta
	}
	return h
}

// NetDelay returns the wire latency of a message of b bytes from srcPE to
// dstPE, excluding per-message CPU overheads (see SendOverhead/RecvOverhead).
func (m *Machine) NetDelay(srcPE, dstPE int, bytes int) des.Time {
	if m.pes[srcPE].Node == m.pes[dstPE].Node {
		return des.Time(m.cfg.AlphaLocal + float64(bytes)*m.cfg.BetaLocal)
	}
	h := m.Hops(srcPE, dstPE)
	return des.Time(m.cfg.Alpha + float64(bytes)*m.cfg.Beta + float64(h)*m.cfg.PerHop)
}

// Transmit computes the arrival time of a message entering the network at
// time t. Without a NIC bandwidth limit this is t + NetDelay; with one,
// the message first queues for the sending node's NIC and occupies it for
// (bytes + packet overhead) / bandwidth — concurrent senders on a node
// serialize, which is the contention fine-grained messaging suffers from
// (§III-F).
func (m *Machine) Transmit(srcPE, dstPE, bytes int, t des.Time) des.Time {
	srcNode := m.pes[srcPE].Node
	if m.cfg.NICBandwidth <= 0 || srcNode == m.pes[dstPE].Node {
		return t + m.NetDelay(srcPE, dstPE, bytes)
	}
	n := srcNode.ID
	start := t
	if m.nicFreeAt[n] > start {
		start = m.nicFreeAt[n]
	}
	occupancy := des.Time(float64(bytes+m.cfg.PacketOverheadBytes) / m.cfg.NICBandwidth)
	m.nicFreeAt[n] = start + occupancy
	// Latency excludes the size term (occupancy covers serialization).
	h := m.Hops(srcPE, dstPE)
	lat := des.Time(m.cfg.Alpha + float64(h)*m.cfg.PerHop)
	return start + occupancy + lat
}

// SendOverhead returns the CPU time the sending PE spends per remote
// message.
func (m *Machine) SendOverhead(pe int) des.Time {
	return m.ComputeTime(pe, m.cfg.SendOverhead)
}

// RecvOverhead returns the CPU time the receiving PE spends per remote
// message.
func (m *Machine) RecvOverhead(pe int) des.Time {
	return m.ComputeTime(pe, m.cfg.RecvOverhead)
}

// SendOverheadTo returns the per-message CPU cost on the sender for a
// message to dst: node-local messages skip the network stack.
func (m *Machine) SendOverheadTo(pe, dst int) des.Time {
	if m.pes[pe].Node == m.pes[dst].Node {
		return m.ComputeTime(pe, m.cfg.SendOverheadLocal)
	}
	return m.ComputeTime(pe, m.cfg.SendOverhead)
}

// RecvOverheadFrom returns the per-message CPU cost on the receiver for a
// message from src.
func (m *Machine) RecvOverheadFrom(pe, src int) des.Time {
	if m.pes[pe].Node == m.pes[src].Node {
		return m.ComputeTime(pe, m.cfg.RecvOverheadLocal)
	}
	return m.ComputeTime(pe, m.cfg.RecvOverhead)
}

// CacheFactor returns the compute-time multiplier for a unit of work whose
// working set is ws bytes, when the node's cache is shared by sharers
// concurrent working sets. A working set within its cache share runs at
// factor 1; one that spills runs at up to CacheMissFactor, interpolating
// smoothly so that partial locality earns partial credit.
func (m *Machine) CacheFactor(workingSetBytes int64, sharers int) float64 {
	if m.cfg.CachePerNodeBytes == 0 || workingSetBytes <= 0 {
		return 1
	}
	if sharers < 1 {
		sharers = 1
	}
	share := float64(m.cfg.CachePerNodeBytes) / float64(sharers)
	ratio := float64(workingSetBytes) / share
	if ratio <= 1 {
		return 1
	}
	// Hit fraction falls as share/ws; miss fraction pays the full factor.
	hit := 1 / ratio
	return hit + (1-hit)*m.cfg.CacheMissFactor
}

// SampleUtilization computes each node's utilization over the window
// [prev, now] from its PEs' accumulated busy time, storing it on the node
// for the thermal model, and returns the mean utilization.
func (m *Machine) SampleUtilization(window des.Time) float64 {
	if window <= 0 {
		return 0
	}
	total := 0.0
	for _, n := range m.nodes {
		n.Utilization = 0
	}
	for _, p := range m.pes {
		delta := p.BusyTime - p.lastSample
		p.lastSample = p.BusyTime
		u := float64(delta) / float64(window)
		if u > 1 {
			u = 1
		}
		p.Node.Utilization += u / float64(m.cfg.PEsPerNode)
	}
	for _, n := range m.nodes {
		total += n.Utilization
	}
	return total / float64(len(m.nodes))
}

// StepThermal advances every node's temperature by dt seconds using the
// lumped RC model and the node's current frequency and utilization.
func (m *Machine) StepThermal(dt float64) {
	p := m.cfg.Thermal
	if p.CapacitanceJ == 0 {
		return
	}
	for _, n := range m.nodes {
		rel := n.freqGHz / m.cfg.BaseFreqGHz
		power := p.StaticW + p.DynamicW*rel*rel*rel*n.Utilization
		n.energyJ += power * dt
		dT := (power - (n.tempC-p.AmbientC)/(p.ResistanceCW*n.coolFactor)) / p.CapacitanceJ
		n.tempC += dT * dt
		if n.tempC > n.maxTempC {
			n.maxTempC = n.tempC
		}
	}
}

// MaxTempC returns the hottest instantaneous temperature across nodes.
func (m *Machine) MaxTempC() float64 {
	max := math.Inf(-1)
	for _, n := range m.nodes {
		if n.tempC > max {
			max = n.tempC
		}
	}
	return max
}

// TotalEnergyJ returns the machine-wide accumulated energy in joules.
func (m *Machine) TotalEnergyJ() float64 {
	total := 0.0
	for _, n := range m.nodes {
		total += n.energyJ
	}
	return total
}

// HottestEver returns the maximum temperature any node ever reached.
func (m *Machine) HottestEver() float64 {
	max := math.Inf(-1)
	for _, n := range m.nodes {
		if n.maxTempC > max {
			max = n.maxTempC
		}
	}
	return max
}

func nodeCoords(id int, dims []int) []int {
	c := make([]int, len(dims))
	for d := len(dims) - 1; d >= 0; d-- {
		c[d] = id % dims[d]
		id /= dims[d]
	}
	return c
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// NodeAt returns the node id at the given torus coordinates (row-major,
// the inverse of the node's coordinate assignment).
func (m *Machine) NodeAt(coords []int) int {
	id := 0
	for d, dim := range m.cfg.TorusDims {
		c := coords[d] % dim
		if c < 0 {
			c += dim
		}
		id = id*dim + c
	}
	if id >= len(m.nodes) {
		id %= len(m.nodes)
	}
	return id
}

// TorusDims returns the node-level torus dimensions.
func (m *Machine) TorusDims() []int {
	return append([]int(nil), m.cfg.TorusDims...)
}
