package machine

import (
	"math"
	"testing"
	"testing/quick"
)

func TestConfigNumPEs(t *testing.T) {
	c := Vesta(1024)
	if c.NumPEs() < 1024 {
		t.Fatalf("Vesta(1024) has %d PEs, want >= 1024", c.NumPEs())
	}
	if c.PEsPerNode != 16 {
		t.Fatalf("BG/Q PEs/node = %d, want 16", c.PEsPerNode)
	}
}

func TestNamedConfigsConstructible(t *testing.T) {
	for _, cfg := range []Config{
		Vesta(64), BlueWaters(64), Titan(64), Jaguar(64),
		Hopper(64), Stampede(64), Cloud(32), ThermalTestbed(8),
	} {
		m := New(cfg)
		if m.NumPEs() == 0 || m.NumNodes() == 0 {
			t.Fatalf("%s: empty machine", cfg.Name)
		}
		if m.NetDelay(0, m.NumPEs()-1, 100) <= 0 {
			t.Fatalf("%s: non-positive net delay", cfg.Name)
		}
	}
}

func TestComputeTimeScalesWithFrequency(t *testing.T) {
	m := New(ThermalTestbed(2))
	base := m.ComputeTime(0, 1.0)
	m.SetNodeFreq(0, 1.2)
	slow := m.ComputeTime(0, 1.0)
	if slow <= base {
		t.Fatalf("halving frequency did not slow compute: %v vs %v", slow, base)
	}
	ratio := float64(slow) / float64(base)
	if math.Abs(ratio-2.0) > 1e-9 {
		t.Fatalf("2.4GHz→1.2GHz should double time, ratio %v", ratio)
	}
}

func TestInterferenceSlowsPE(t *testing.T) {
	m := New(Cloud(8))
	base := m.ComputeTime(3, 1.0)
	m.SetInterference(3, 0.5)
	slow := m.ComputeTime(3, 1.0)
	if math.Abs(float64(slow)/float64(base)-2.0) > 1e-9 {
		t.Fatalf("50%% interference should double time: %v vs %v", slow, base)
	}
	other := m.ComputeTime(2, 1.0)
	if other != base {
		t.Fatal("interference leaked to another PE")
	}
}

func TestInterferenceRangeChecked(t *testing.T) {
	m := New(Cloud(8))
	defer func() {
		if recover() == nil {
			t.Fatal("interference of 1.0 should panic")
		}
	}()
	m.SetInterference(0, 1.0)
}

func TestIntraNodeCheaperThanInterNode(t *testing.T) {
	m := New(Vesta(64)) // 4 nodes of 16
	intra := m.NetDelay(0, 1, 1024)
	inter := m.NetDelay(0, 63, 1024)
	if intra >= inter {
		t.Fatalf("intra-node delay %v should be < inter-node %v", intra, inter)
	}
}

func TestNetDelayGrowsWithSize(t *testing.T) {
	m := New(Stampede(64))
	small := m.NetDelay(0, 40, 8)
	big := m.NetDelay(0, 40, 1<<20)
	if big <= small {
		t.Fatalf("1MB message (%v) should cost more than 8B (%v)", big, small)
	}
}

func TestHopsSymmetricAndZeroOnNode(t *testing.T) {
	m := New(Vesta(512))
	if m.Hops(0, 5) != 0 {
		t.Fatal("same-node PEs should be 0 hops apart")
	}
	for _, pair := range [][2]int{{0, 100}, {17, 311}, {5, 501}} {
		a, b := pair[0], pair[1]
		if m.Hops(a, b) != m.Hops(b, a) {
			t.Fatalf("hops not symmetric for %d,%d", a, b)
		}
	}
}

func TestHopsTriangleInequality(t *testing.T) {
	m := New(Vesta(1024))
	f := func(a, b, c uint16) bool {
		p := m.NumPEs()
		x, y, z := int(a)%p, int(b)%p, int(c)%p
		return m.Hops(x, z) <= m.Hops(x, y)+m.Hops(y, z)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTorusWraparound(t *testing.T) {
	// 8x1x1 torus: node 0 to node 7 is 1 hop around the ring, not 7.
	cfg := Config{Name: "ring", NumNodes: 8, PEsPerNode: 1, TorusDims: []int{8, 1, 1},
		Alpha: 1e-6, Beta: 1e-9, PerHop: 1e-7}
	m := New(cfg)
	if h := m.Hops(0, 7); h != 1 {
		t.Fatalf("ring wraparound hops = %d, want 1", h)
	}
	if h := m.Hops(0, 4); h != 4 {
		t.Fatalf("ring antipode hops = %d, want 4", h)
	}
}

func TestDVFSSnapsToLevels(t *testing.T) {
	m := New(ThermalTestbed(4))
	m.SetNodeFreq(2, 1.95)
	got := m.Node(2).FreqGHz()
	if got != 1.8 && got != 2.1 {
		t.Fatalf("freq %v not snapped to a DVFS level", got)
	}
	m.SetNodeFreq(2, 0.1)
	if m.Node(2).FreqGHz() != 1.2 {
		t.Fatalf("freq below range should clamp to 1.2, got %v", m.Node(2).FreqGHz())
	}
}

func TestStepNodeFreq(t *testing.T) {
	m := New(ThermalTestbed(1))
	m.SetNodeFreq(0, 2.4)
	if f := m.StepNodeFreq(0, -1); f != 2.1 {
		t.Fatalf("step down from 2.4 gave %v, want 2.1", f)
	}
	if f := m.StepNodeFreq(0, +1); f != 2.4 {
		t.Fatalf("step up gave %v, want 2.4", f)
	}
	if f := m.StepNodeFreq(0, +1); f != 2.4 {
		t.Fatalf("step above top should clamp, got %v", f)
	}
	for i := 0; i < 10; i++ {
		m.StepNodeFreq(0, -1)
	}
	if f := m.Node(0).FreqGHz(); f != 1.2 {
		t.Fatalf("repeated step down should clamp at 1.2, got %v", f)
	}
}

func TestThermalHeatsUnderLoadCoolsIdle(t *testing.T) {
	m := New(ThermalTestbed(1))
	n := m.Node(0)
	n.Utilization = 1.0
	start := n.TempC()
	for i := 0; i < 600; i++ {
		m.StepThermal(1.0)
	}
	hot := n.TempC()
	if hot <= start+5 {
		t.Fatalf("fully loaded chip did not heat: %v -> %v", start, hot)
	}
	n.Utilization = 0
	for i := 0; i < 3600; i++ {
		m.StepThermal(1.0)
	}
	if n.TempC() >= hot-5 {
		t.Fatalf("idle chip did not cool: %v -> %v", hot, n.TempC())
	}
	if m.HottestEver() < hot-1e-9 {
		t.Fatalf("HottestEver %v below observed %v", m.HottestEver(), hot)
	}
}

func TestThermalLowerFreqRunsCooler(t *testing.T) {
	steady := func(freq float64) float64 {
		m := New(ThermalTestbed(1))
		m.SetNodeFreq(0, freq)
		m.Node(0).Utilization = 1.0
		for i := 0; i < 5000; i++ {
			m.StepThermal(1.0)
		}
		return m.Node(0).TempC()
	}
	if steady(1.2) >= steady(2.4) {
		t.Fatal("chip at 1.2GHz should settle cooler than at 2.4GHz")
	}
}

func TestCacheFactor(t *testing.T) {
	m := New(Hopper(24)) // one node, 36MB cache
	if f := m.CacheFactor(1<<20, 24); f != 1 {
		t.Fatalf("in-cache working set penalized: %v", f)
	}
	spill := m.CacheFactor(12<<20, 24) // 12MB vs 1.5MB share
	if spill <= 1.2 {
		t.Fatalf("spilling working set not penalized: %v", spill)
	}
	if spill > m.Config().CacheMissFactor {
		t.Fatalf("penalty %v exceeds miss factor", spill)
	}
	// Monotone in working-set size.
	if m.CacheFactor(24<<20, 24) < spill {
		t.Fatal("larger working set should not be cheaper")
	}
}

func TestCacheFactorDisabled(t *testing.T) {
	m := New(Config{NumNodes: 1, PEsPerNode: 1, Alpha: 1e-6, Beta: 1e-9})
	if f := m.CacheFactor(1<<30, 1); f != 1 {
		t.Fatalf("machine without cache model should return 1, got %v", f)
	}
}

func TestSampleUtilization(t *testing.T) {
	m := New(ThermalTestbed(2)) // 2 nodes x 4 PEs
	for i := 0; i < 4; i++ {
		m.PE(i).BusyTime = 5 // node 0 PEs fully busy over a 5s window
	}
	mean := m.SampleUtilization(5)
	if math.Abs(m.Node(0).Utilization-1.0) > 1e-9 {
		t.Fatalf("node0 utilization %v, want 1", m.Node(0).Utilization)
	}
	if m.Node(1).Utilization != 0 {
		t.Fatalf("node1 utilization %v, want 0", m.Node(1).Utilization)
	}
	if math.Abs(mean-0.5) > 1e-9 {
		t.Fatalf("mean utilization %v, want 0.5", mean)
	}
	// Second sample over an idle window reads zero.
	if m.SampleUtilization(5) != 0 {
		t.Fatal("second idle window should sample 0")
	}
}

func TestNodeCoordsRoundTrip(t *testing.T) {
	dims := []int{4, 3, 5}
	seen := map[[3]int]bool{}
	for id := 0; id < 60; id++ {
		c := nodeCoords(id, dims)
		key := [3]int{c[0], c[1], c[2]}
		if seen[key] {
			t.Fatalf("duplicate coords %v for id %d", c, id)
		}
		seen[key] = true
		for d := range dims {
			if c[d] < 0 || c[d] >= dims[d] {
				t.Fatalf("coord %v out of range for dims %v", c, dims)
			}
		}
	}
}

func TestCloudSlowerThanSupercomputer(t *testing.T) {
	cloud := New(Cloud(32))
	super := New(Stampede(32))
	cd := cloud.NetDelay(0, 31, 4096)
	sd := super.NetDelay(0, 31, 4096)
	if cd < 8*sd {
		t.Fatalf("cloud net (%v) should be ~10x worse than InfiniBand (%v)", cd, sd)
	}
}

func BenchmarkNetDelay(b *testing.B) {
	m := New(Vesta(4096))
	for i := 0; i < b.N; i++ {
		m.NetDelay(i%4096, (i*7)%4096, 512)
	}
}

func TestNICSerialization(t *testing.T) {
	cfg := Testbed(4)
	cfg.NICBandwidth = 1e9 // 1 GB/s egress
	cfg.PacketOverheadBytes = 0
	cfg = cfg.withDefaults()
	m := New(cfg)
	// Three 1MB messages from PE 0 at t=0 serialize at the NIC.
	var arrivals []float64
	for i := 0; i < 3; i++ {
		arrivals = append(arrivals, float64(m.Transmit(0, 1, 1<<20, 0)))
	}
	occupancy := float64(1<<20+cfg.PacketOverheadBytes) / 1e9
	for i := 1; i < 3; i++ {
		gap := arrivals[i] - arrivals[i-1]
		if gap < occupancy*0.99 || gap > occupancy*1.01 {
			t.Fatalf("message %d gap %v, want ~%v (NIC occupancy)", i, gap, occupancy)
		}
	}
	// A message from a different node does not queue behind PE 0's NIC.
	other := float64(m.Transmit(2, 1, 1<<20, 0))
	if other >= arrivals[2] {
		t.Fatalf("different node queued behind PE 0's NIC: %v vs %v", other, arrivals[2])
	}
}

func TestNICDisabledMatchesNetDelay(t *testing.T) {
	m := New(Testbed(4))
	got := m.Transmit(0, 3, 4096, 1.5)
	want := 1.5 + m.NetDelay(0, 3, 4096)
	if got != want {
		t.Fatalf("Transmit without NIC limit: %v, want %v", got, want)
	}
}

func TestNICIntraNodeBypasses(t *testing.T) {
	cfg := Vesta(32)       // 2 nodes of 16
	cfg.NICBandwidth = 1e6 // absurdly slow NIC
	m := New(cfg)
	// Intra-node transfer ignores the NIC entirely.
	local := m.Transmit(0, 1, 1<<20, 0)
	if float64(local) > 0.01 {
		t.Fatalf("intra-node transfer hit the NIC: %v", local)
	}
}

func TestEnergyAccounting(t *testing.T) {
	m := New(ThermalTestbed(2))
	m.Node(0).Utilization = 1.0
	m.Node(1).Utilization = 0.0
	for i := 0; i < 100; i++ {
		m.StepThermal(1.0)
	}
	busy, idle := m.Node(0).EnergyJ(), m.Node(1).EnergyJ()
	if busy <= idle {
		t.Fatalf("busy node energy %v should exceed idle %v", busy, idle)
	}
	// Idle node still burns static power.
	wantIdle := m.Config().Thermal.StaticW * 100
	if math.Abs(idle-wantIdle) > 1e-9 {
		t.Fatalf("idle energy %v, want %v (static only)", idle, wantIdle)
	}
	if m.TotalEnergyJ() != busy+idle {
		t.Fatal("TotalEnergyJ mismatch")
	}
	// Throttled chip under the same load draws less power.
	m2 := New(ThermalTestbed(1))
	m2.SetNodeFreq(0, 1.2)
	m2.Node(0).Utilization = 1.0
	m2.StepThermal(100)
	if m2.Node(0).EnergyJ() >= busy {
		t.Fatalf("DVFS-throttled node drew %v J vs %v J at full clock",
			m2.Node(0).EnergyJ(), busy)
	}
}
