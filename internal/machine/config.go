// Package machine models the parallel machine the runtime executes on:
// nodes, processing elements (PEs), DVFS frequency states, an α–β–per-hop
// network on an N-dimensional torus, per-message software overheads, cache
// capacity, and a lumped-capacitance thermal model.
//
// All times are virtual seconds (des.Time). The model parameters for the
// named configurations are chosen so that the relative behaviour of the
// machines in the paper (Blue Gene/Q, Cray XE6/XK7, Hopper, Stampede, and a
// commodity-Ethernet cloud) is preserved: the cloud has ~10× worse latency
// and bandwidth than the supercomputers, BG/Q trades clock speed for scale,
// and so on.
package machine

// ThermalParams describes the lumped RC thermal model of one chip.
// Temperature evolves as
//
//	dT/dt = (power(f, util) - (T - ambient)/resistance) / capacitance
//
// with power(f, util) = staticW + dynamicW * (f/base)^3 * util.
type ThermalParams struct {
	AmbientC     float64 // machine-room air temperature, °C (set by CRAC)
	StaticW      float64 // leakage power, watts
	DynamicW     float64 // dynamic power at base frequency and 100% util
	ResistanceCW float64 // thermal resistance, °C per watt
	CapacitanceJ float64 // thermal capacitance, joules per °C
	InitialC     float64 // starting chip temperature
}

// DefaultThermal matches the Fig 4 setting: CRAC at 74°F ≈ 23.3°C and chips
// that settle in the mid-60s °C when uncontrolled.
func DefaultThermal() ThermalParams {
	return ThermalParams{
		AmbientC:     23.3,
		StaticW:      20,
		DynamicW:     75,
		ResistanceCW: 0.55,
		CapacitanceJ: 90,
		InitialC:     40,
	}
}

// Config is the full description of a machine.
type Config struct {
	Name       string
	NumNodes   int
	PEsPerNode int

	// BaseFreqGHz is the nominal clock. Work is expressed in seconds at
	// this clock; a PE running at frequency f finishes nominal work w in
	// w * BaseFreqGHz / f seconds.
	BaseFreqGHz float64
	// DVFSLevelsGHz are the selectable frequencies, ascending. Empty means
	// DVFS is unavailable and the chip is pinned to BaseFreqGHz.
	DVFSLevelsGHz []float64

	// Network model: a message of b bytes travelling h node-hops costs
	// Alpha + b*Beta + h*PerHop seconds of latency. Intra-node messages
	// cost AlphaLocal + b*BetaLocal.
	Alpha      float64
	Beta       float64
	PerHop     float64
	AlphaLocal float64
	BetaLocal  float64

	// Per-message CPU time consumed on the sending and receiving PE.
	// This is what TRAM amortizes.
	SendOverhead float64
	RecvOverhead float64
	// Node-local messages bypass the NIC/network stack and pay these
	// (much smaller) overheads instead; defaults are 15% of the remote
	// values.
	SendOverheadLocal float64
	RecvOverheadLocal float64

	// TorusDims is the node-level torus; the product must be >= NumNodes.
	// Nodes are laid out in row-major order.
	TorusDims []int

	// CachePerNodeBytes is the last-level cache capacity shared by the
	// node's PEs. CacheMissFactor is the compute-time multiplier applied
	// when a working set does not fit in its cache share.
	CachePerNodeBytes int64
	CacheMissFactor   float64

	// NICBandwidth, when positive, serializes each node's outgoing
	// traffic through its network interface at this many bytes/s:
	// concurrent messages from one node queue behind each other instead
	// of enjoying infinite wire parallelism. PacketOverheadBytes is
	// charged per message on the wire (headers/framing) — the occupancy
	// that fine-grained messaging wastes and aggregation recovers.
	NICBandwidth        float64
	PacketOverheadBytes int

	// Backend selects the event-engine implementation driving the
	// simulation: "" or "sequential" is the single-threaded engine of
	// internal/des; "parallel" (alias "parsim") is the conservative
	// parallel engine of internal/parsim, which shards the virtual PEs by
	// node and uses Alpha (the minimum cross-node latency) as the
	// lookahead bound; "optimistic" (alias "optsim") is the Time Warp
	// engine of internal/optsim, which speculates past any lookahead and
	// rolls back stragglers. All produce bit-identical runs.
	Backend string
	// ParallelWorkers caps the parallel backends' worker goroutines;
	// 0 means GOMAXPROCS.
	ParallelWorkers int
	// OptimisticWindow, when positive, bounds how far (in virtual seconds)
	// past the commit frontier the optimistic backend may speculate. Zero
	// means unbounded optimism. A finite window trades exposed parallelism
	// for rollback risk on workloads whose cross-shard messages land close
	// to the frontier.
	OptimisticWindow float64
	// SnapInterval controls the optimistic backend's infrequent state
	// saving: an element is PUP-imaged only every SnapInterval-th
	// speculated execution, and a rollback coast-forwards from the last
	// image by replaying the committed deliveries in between. 0 (the
	// default) picks the interval adaptively from a snapshot-cost /
	// replay-cost model driven by the observed rollback rate, and also
	// lets the control-point system steer OptimisticWindow; 1 restores
	// eager per-execution snapshots; K>=2 fixes the interval at K.
	SnapInterval int

	Thermal ThermalParams
}

// NumPEs returns the machine's total PE count.
func (c Config) NumPEs() int { return c.NumNodes * c.PEsPerNode }

func defaultTorus(nodes int) []int {
	// Factor into a roughly-cubic 3D torus.
	x := 1
	for x*x*x < nodes {
		x++
	}
	for y := x; ; y++ {
		if x*x*y >= nodes {
			return []int{x, x, y}
		}
	}
}

func (c Config) withDefaults() Config {
	if c.PEsPerNode == 0 {
		c.PEsPerNode = 1
	}
	if c.NumNodes == 0 {
		c.NumNodes = 1
	}
	if c.BaseFreqGHz == 0 {
		c.BaseFreqGHz = 2.0
	}
	if len(c.TorusDims) == 0 {
		c.TorusDims = defaultTorus(c.NumNodes)
	}
	if c.AlphaLocal == 0 {
		c.AlphaLocal = c.Alpha / 10
		if c.AlphaLocal > 2e-6 {
			c.AlphaLocal = 2e-6 // shared memory, not the wire
		}
	}
	if c.BetaLocal == 0 {
		c.BetaLocal = 1.0 / 8e9 // memcpy bandwidth
	}
	if c.SendOverheadLocal == 0 {
		c.SendOverheadLocal = c.SendOverhead * 0.15
	}
	if c.RecvOverheadLocal == 0 {
		c.RecvOverheadLocal = c.RecvOverhead * 0.15
	}
	if c.NICBandwidth > 0 && c.PacketOverheadBytes == 0 {
		c.PacketOverheadBytes = 64
	}
	if c.CacheMissFactor == 0 {
		c.CacheMissFactor = 1
	}
	if c.Thermal == (ThermalParams{}) {
		c.Thermal = DefaultThermal()
	}
	return c
}

// Vesta models an IBM Blue Gene/Q rack group (Figs 8, 9, 10): many slow
// cores, a low-latency 5D-torus-class network (modelled as 3D), small cache
// share per PE.
func Vesta(numPEs int) Config {
	return Config{
		Name:              "Vesta-BGQ",
		NumNodes:          ceilDiv(numPEs, 16),
		PEsPerNode:        16,
		BaseFreqGHz:       1.6,
		Alpha:             2.2e-6,
		Beta:              1.0 / (1.8e9),
		PerHop:            45e-9,
		SendOverhead:      0.9e-6,
		RecvOverhead:      0.9e-6,
		CachePerNodeBytes: 32 << 20,
		CacheMissFactor:   2.0,
	}.withDefaults()
}

// BlueWaters models a Cray XE6 (Figs 12, 13).
func BlueWaters(numPEs int) Config {
	return Config{
		Name:              "BlueWaters-XE6",
		NumNodes:          ceilDiv(numPEs, 16),
		PEsPerNode:        16,
		BaseFreqGHz:       2.3,
		Alpha:             1.5e-6,
		Beta:              1.0 / (5.8e9),
		PerHop:            100e-9,
		SendOverhead:      0.7e-6,
		RecvOverhead:      0.7e-6,
		CachePerNodeBytes: 24 << 20,
		CacheMissFactor:   2.2,
	}.withDefaults()
}

// Titan models a Cray XK7 (CPU only, Fig 11).
func Titan(numPEs int) Config {
	c := BlueWaters(numPEs)
	c.Name = "Titan-XK7"
	c.BaseFreqGHz = 2.2
	c.Alpha = 1.4e-6
	return c
}

// Jaguar models a Cray XT5 (Fig 11): older interconnect, slower clock.
func Jaguar(numPEs int) Config {
	return Config{
		Name:              "Jaguar-XT5",
		NumNodes:          ceilDiv(numPEs, 12),
		PEsPerNode:        12,
		BaseFreqGHz:       2.6,
		Alpha:             4.5e-6,
		Beta:              1.0 / (3.0e9),
		PerHop:            180e-9,
		SendOverhead:      1.6e-6,
		RecvOverhead:      1.6e-6,
		CachePerNodeBytes: 12 << 20,
		CacheMissFactor:   2.2,
	}.withDefaults()
}

// Hopper models the NERSC Cray XE6 used for LULESH (Fig 14). The cache
// numbers follow the paper: ~36 MB of combined L2+L3 per node.
func Hopper(numPEs int) Config {
	return Config{
		Name:              "Hopper-XE6",
		NumNodes:          ceilDiv(numPEs, 24),
		PEsPerNode:        24,
		BaseFreqGHz:       2.1,
		Alpha:             1.6e-6,
		Beta:              1.0 / (5.0e9),
		PerHop:            110e-9,
		SendOverhead:      0.8e-6,
		RecvOverhead:      0.8e-6,
		CachePerNodeBytes: 36 << 20,
		CacheMissFactor:   2.8,
	}.withDefaults()
}

// Stampede models the TACC Sandy Bridge + InfiniBand cluster (Figs 5, 15).
func Stampede(numPEs int) Config {
	return Config{
		Name:              "Stampede",
		NumNodes:          ceilDiv(numPEs, 16),
		PEsPerNode:        16,
		BaseFreqGHz:       2.7,
		Alpha:             2.5e-6,
		Beta:              1.0 / (6.0e9),
		PerHop:            90e-9,
		SendOverhead:      0.8e-6,
		RecvOverhead:      0.8e-6,
		CachePerNodeBytes: 40 << 20,
		CacheMissFactor:   2.0,
	}.withDefaults()
}

// Cloud models the kvm/1GigE private cloud of §IV-F: commodity Ethernet
// with roughly an order of magnitude worse latency and bandwidth.
func Cloud(numPEs int) Config {
	return Config{
		Name:              "Cloud-1GigE",
		NumNodes:          ceilDiv(numPEs, 4),
		PEsPerNode:        4,
		BaseFreqGHz:       2.67,
		Alpha:             150e-6, // virtualized TCP over shared 1GigE
		Beta:              1.0 / (0.10e9),
		PerHop:            500e-9,
		SendOverhead:      6e-6,
		RecvOverhead:      6e-6,
		CachePerNodeBytes: 12 << 20,
		CacheMissFactor:   1.8,
	}.withDefaults()
}

// ThermalTestbed is the Fig 4 cluster: one-socket nodes with DVFS.
func ThermalTestbed(numNodes int) Config {
	levels := []float64{1.2, 1.5, 1.8, 2.1, 2.4}
	return Config{
		Name:          "ThermalTestbed",
		NumNodes:      numNodes,
		PEsPerNode:    4,
		BaseFreqGHz:   2.4,
		DVFSLevelsGHz: levels,
		Alpha:         20e-6,
		Beta:          1.0 / (1.0e9),
		PerHop:        300e-9,
		SendOverhead:  2e-6,
		RecvOverhead:  2e-6,
		Thermal:       DefaultThermal(),
	}.withDefaults()
}

// Testbed is a generic machine with exactly numPEs PEs (one per node),
// DVFS-free and InfiniBand-class; unit tests use it when they need precise
// PE counts.
func Testbed(numPEs int) Config {
	return Config{
		Name:         "Testbed",
		NumNodes:     numPEs,
		PEsPerNode:   1,
		BaseFreqGHz:  2.0,
		Alpha:        2e-6,
		Beta:         1.0 / (5.0e9),
		PerHop:       100e-9,
		SendOverhead: 0.8e-6,
		RecvOverhead: 0.8e-6,
	}.withDefaults()
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }
