// Package cloud models the HPC-in-cloud environment of §IV-F: static
// heterogeneity (physically different or frequency-capped nodes) and
// dynamic heterogeneity from multi-tenant interference — VMs of other users
// arriving on and departing from the job's physical nodes mid-run.
package cloud

import (
	"charmgo/internal/charm"
	"charmgo/internal/des"
)

// SlowNode applies static heterogeneity: node n runs at factor × its base
// frequency (the Grid'5000 experiment caps one node at 0.7×).
func SlowNode(rt *charm.Runtime, node int, factor float64) {
	m := rt.Machine()
	m.SetNodeFreq(node, m.Config().BaseFreqGHz*factor)
}

// Interference describes one interfering VM episode on a PE.
type Interference struct {
	PE    int
	Start des.Time
	// End <= Start means the interference persists to the end of the run.
	End des.Time
	// Fraction of the PE stolen while active (0.5 ≈ one co-scheduled VM).
	Fraction float64
}

// Inject schedules interference episodes on the runtime's virtual timeline.
func Inject(rt *charm.Runtime, episodes ...Interference) {
	for _, ep := range episodes {
		ep := ep
		rt.Engine().At(ep.Start, func() {
			rt.Machine().SetInterference(ep.PE, ep.Fraction)
		})
		if ep.End > ep.Start {
			rt.Engine().At(ep.End, func() {
				rt.Machine().SetInterference(ep.PE, 0)
			})
		}
	}
}

// InterfereNode injects the same episode on every PE of a node — an
// interfering VM pinned to that host (the Fig 16 scenario).
func InterfereNode(rt *charm.Runtime, node int, start, end des.Time, frac float64) {
	m := rt.Machine()
	per := m.Config().PEsPerNode
	for pe := node * per; pe < (node+1)*per && pe < m.NumPEs(); pe++ {
		Inject(rt, Interference{PE: pe, Start: start, End: end, Fraction: frac})
	}
}
