package cloud

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/machine"
)

func TestSlowNode(t *testing.T) {
	rt := charm.New(machine.New(machine.Cloud(8))) // 2 nodes x 4 PEs
	SlowNode(rt, 1, 0.7)
	m := rt.Machine()
	want := m.Config().BaseFreqGHz * 0.7
	if got := m.Node(1).FreqGHz(); got != want {
		t.Fatalf("node freq %v, want %v", got, want)
	}
	if m.Node(0).FreqGHz() != m.Config().BaseFreqGHz {
		t.Fatal("wrong node slowed")
	}
}

func TestInjectEpisode(t *testing.T) {
	rt := charm.New(machine.New(machine.Cloud(8)))
	Inject(rt, Interference{PE: 2, Start: 1.0, End: 3.0, Fraction: 0.5})
	m := rt.Machine()
	eng := rt.Engine()
	eng.RunUntil(0.5)
	if m.PE(2).Interference() != 0 {
		t.Fatal("interference started early")
	}
	eng.RunUntil(2.0)
	if m.PE(2).Interference() != 0.5 {
		t.Fatal("interference did not start")
	}
	eng.RunUntil(4.0)
	if m.PE(2).Interference() != 0 {
		t.Fatal("interference did not end")
	}
}

func TestPersistentInterference(t *testing.T) {
	rt := charm.New(machine.New(machine.Cloud(4)))
	Inject(rt, Interference{PE: 0, Start: 1.0, Fraction: 0.3})
	rt.Engine().RunUntil(100)
	if rt.Machine().PE(0).Interference() != 0.3 {
		t.Fatal("persistent interference ended")
	}
}

func TestInterfereNodeHitsAllPEs(t *testing.T) {
	rt := charm.New(machine.New(machine.Cloud(8))) // 4 PEs/node
	InterfereNode(rt, 1, 0.5, 2.0, 0.4)
	rt.Engine().RunUntil(1.0)
	m := rt.Machine()
	for pe := 4; pe < 8; pe++ {
		if m.PE(pe).Interference() != 0.4 {
			t.Fatalf("PE %d missed node interference", pe)
		}
	}
	for pe := 0; pe < 4; pe++ {
		if m.PE(pe).Interference() != 0 {
			t.Fatalf("PE %d wrongly interfered", pe)
		}
	}
}
