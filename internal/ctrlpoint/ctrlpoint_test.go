package ctrlpoint

import (
	"math"
	"testing"
)

// quadratic is a synthetic performance surface with a single optimum.
func quadratic(opt int) func(v int) float64 {
	return func(v int) float64 {
		d := float64(v - opt)
		return 1.0 + 0.01*d*d
	}
}

func TestConvergesToOptimum(t *testing.T) {
	for _, opt := range []int{3, 14, 27} {
		s := NewSystem()
		p := s.Register("pipeline", 1, 40, 1, EffectMoreOverlap)
		f := quadratic(opt)
		for i := 0; i < 60 && !p.Locked(); i++ {
			s.Observe(f(p.Value()))
		}
		if !p.Locked() {
			t.Fatalf("opt=%d: never converged (value %d)", opt, p.Value())
		}
		if math.Abs(float64(p.Value()-opt)) > 3 {
			t.Fatalf("opt=%d: converged to %d", opt, p.Value())
		}
	}
}

func TestStaysInRange(t *testing.T) {
	s := NewSystem()
	p := s.Register("k", 2, 8, 5, EffectUnknown)
	// Adversarial metric: always worse, forcing lots of reversals.
	v := 0.0
	for i := 0; i < 50; i++ {
		v += 1
		s.Observe(v)
		if p.Value() < 2 || p.Value() > 8 {
			t.Fatalf("value %d escaped [2,8]", p.Value())
		}
	}
}

func TestReprobesAfterLock(t *testing.T) {
	s := NewSystem()
	p := s.Register("k", 1, 32, 1, EffectUnknown)
	f := quadratic(6)
	for i := 0; i < 40 && !p.Locked(); i++ {
		s.Observe(f(p.Value()))
	}
	if !p.Locked() {
		t.Fatal("did not lock")
	}
	locked := p.Value()
	// The optimum shifts (phase change); re-probes must eventually move.
	g := quadratic(20)
	moved := false
	for i := 0; i < 200; i++ {
		s.Observe(g(p.Value()))
		if p.Value() != locked {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("tuner never re-probed after phase change")
	}
}

func TestRegisterValidation(t *testing.T) {
	s := NewSystem()
	defer func() {
		if recover() == nil {
			t.Fatal("bad range should panic")
		}
	}()
	s.Register("bad", 10, 5, 7, EffectUnknown)
}

func TestPointLookupAndHistory(t *testing.T) {
	s := NewSystem()
	s.Register("a", 1, 10, 5, EffectUnknown)
	if s.Point("a") == nil || s.Point("b") != nil {
		t.Fatal("Point lookup broken")
	}
	s.Observe(1.0)
	s.Observe(2.0)
	h := s.History()
	if len(h) != 2 || h[0].Metric != 1.0 || h[0].Values["a"] != 5 {
		t.Fatalf("history wrong: %+v", h)
	}
}

func TestMultiplePointsTunedTogether(t *testing.T) {
	s := NewSystem()
	p1 := s.Register("x", 1, 20, 10, EffectUnknown)
	p2 := s.Register("y", 1, 20, 10, EffectUnknown)
	f := func() float64 {
		dx, dy := float64(p1.Value()-4), float64(p2.Value()-16)
		return 1 + 0.01*dx*dx + 0.01*dy*dy
	}
	for i := 0; i < 120 && !(p1.Locked() && p2.Locked()); i++ {
		s.Observe(f())
	}
	if math.Abs(float64(p1.Value()-4)) > 5 || math.Abs(float64(p2.Value()-16)) > 5 {
		t.Fatalf("joint tuning off: x=%d y=%d", p1.Value(), p2.Value())
	}
}
