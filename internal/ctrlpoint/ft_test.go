package ctrlpoint_test

import (
	"testing"

	"charmgo/internal/apps/leanmd"
	"charmgo/internal/chaos"
	"charmgo/internal/charm"
	"charmgo/internal/ctrlpoint"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

// TestSinglePEFailureKeepsTuningTrajectory runs a LeanMD job whose control
// system observes every LB round's pre-balance max load, injects one hard
// mid-run PE crash, and requires byte-identical results on both sides of
// the fault line: the application's energy trajectory AND the control
// system's observation history and final point values must match the
// failure-free run exactly. The tuner rides the same checkpoint/rollback
// cuts as the chares (OnCheckpoint/OnRollback), which is what makes its
// recovery exact rather than merely plausible.
func TestSinglePEFailureKeepsTuningTrajectory(t *testing.T) {
	run := func(plan *chaos.Plan) ([]float64, *ctrlpoint.System, *chaos.Controller, float64) {
		rt := charm.New(machine.New(machine.Testbed(8)))
		rt.SetBalancer(lb.Greedy{})
		app, err := leanmd.New(rt, leanmd.Config{
			CellsX: 3, CellsY: 3, CellsZ: 3,
			AtomsPerCell: 20, Steps: 18, LBPeriod: 3,
			Gaussian: 0.35, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		sys := ctrlpoint.NewSystem()
		sys.Register("grain", 1, 8, 4, ctrlpoint.EffectLargerGrain)
		rt.OnLB(func(rep charm.LBReport) { sys.Observe(rep.MaxLoad) })
		var ctrl *chaos.Controller
		if plan != nil {
			var savedSys *ctrlpoint.System
			savedSteps := 0
			ctrl, err = chaos.Enable(rt, *plan, chaos.Options{
				CheckpointEveryRounds: 1,
				HeartbeatPeriod:       2e-4,
				HeartbeatTimeout:      1.5e-4,
				OnCheckpoint: func() {
					savedSys = sys.Clone()
					savedSteps = app.Steps()
				},
				OnRollback: func() {
					*sys = *savedSys.Clone()
					app.TruncateResult(savedSteps)
				},
			})
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := app.Run()
		if ctrl != nil && ctrl.Err() != nil {
			t.Fatal(ctrl.Err())
		}
		if err != nil {
			t.Fatal(err)
		}
		return res.Energy, sys, ctrl, float64(res.Elapsed)
	}

	cleanEnergy, cleanSys, _, elapsed := run(nil)
	plan := chaos.CrashPlan(11, 1, 8, 0.5*elapsed, 0.8*elapsed)
	chaosEnergy, chaosSys, ctrl, _ := run(&plan)

	if ctrl.Survived() != 1 {
		t.Fatalf("survived %d of 1 injected crash", ctrl.Survived())
	}
	if len(cleanEnergy) != len(chaosEnergy) {
		t.Fatalf("energy trajectory length %d vs %d", len(cleanEnergy), len(chaosEnergy))
	}
	for i := range cleanEnergy {
		if cleanEnergy[i] != chaosEnergy[i] {
			t.Fatalf("step %d energy %v vs %v: crash leaked into the physics", i, cleanEnergy[i], chaosEnergy[i])
		}
	}
	ch, kh := cleanSys.History(), chaosSys.History()
	if len(ch) != len(kh) {
		t.Fatalf("tuner saw %d observations clean vs %d under chaos", len(ch), len(kh))
	}
	for i := range ch {
		if ch[i].Metric != kh[i].Metric {
			t.Fatalf("observation %d: metric %v vs %v", i, ch[i].Metric, kh[i].Metric)
		}
		for name, v := range ch[i].Values {
			if kh[i].Values[name] != v {
				t.Fatalf("observation %d: point %s was %d, chaos run saw %d", i, name, v, kh[i].Values[name])
			}
		}
	}
	cp, kp := cleanSys.Point("grain"), chaosSys.Point("grain")
	if cp.Value() != kp.Value() || cp.Locked() != kp.Locked() {
		t.Fatalf("tuner diverged: clean grain=%d locked=%v, chaos grain=%d locked=%v",
			cp.Value(), cp.Locked(), kp.Value(), kp.Locked())
	}
}
