// Package ctrlpoint implements the introspective control system of §III-E:
// applications and the RTS register control points — tunable integer
// parameters annotated with their expected effects — and the control system
// observes performance, detects which direction helps, and steers each
// point toward its optimum, stabilizing once improvements stop (Fig 6).
package ctrlpoint

import "fmt"

// Effect describes the expected consequence of increasing a control point,
// part of the "expert knowledge" rule base.
type Effect int

const (
	// EffectUnknown lets the tuner probe both directions.
	EffectUnknown Effect = iota
	// EffectMoreOverlap: larger values increase communication/computation
	// overlap (e.g. pipeline stages) but add per-unit overhead.
	EffectMoreOverlap
	// EffectLargerGrain: larger values reduce overhead but reduce
	// parallelism (e.g. block size).
	EffectLargerGrain
)

// Point is one tunable parameter.
type Point struct {
	Name    string
	Min     int
	Max     int
	value   int
	Effect  Effect
	step    int
	dir     int
	locked  bool
	bestVal int
	best    float64
}

// Value returns the current setting.
func (p *Point) Value() int { return p.value }

// Locked reports whether the tuner has converged for this point.
func (p *Point) Locked() bool { return p.locked }

// System is the control system: it owns the registered points and adjusts
// them from performance reports. Points are tuned one at a time
// (round-robin) so each point's observations reflect only its own moves.
type System struct {
	points    []*Point
	history   []Report
	active    int
	sinceLock int
}

// Report is one observation fed back by the application or RTS.
type Report struct {
	Metric float64 // lower is better (e.g. time per step)
	Values map[string]int
}

// NewSystem returns an empty control system.
func NewSystem() *System { return &System{} }

// Clone deep-copies the system's full tuning state — points, observation
// history, and probe position. Fault-tolerance drivers snapshot the tuner
// at checkpoint cuts with it and restore by assignment on rollback, so the
// hill climber replays the identical trajectory after a recovery instead
// of double-counting the replayed rounds' observations.
func (s *System) Clone() *System {
	c := &System{active: s.active, sinceLock: s.sinceLock}
	c.history = append([]Report(nil), s.history...)
	for _, p := range s.points {
		q := *p
		c.points = append(c.points, &q)
	}
	return c
}

// Register adds a control point and returns it.
func (s *System) Register(name string, min, max, initial int, effect Effect) *Point {
	if min > max || initial < min || initial > max {
		panic(fmt.Sprintf("ctrlpoint: bad range %d..%d start %d", min, max, initial))
	}
	p := &Point{
		Name: name, Min: min, Max: max, value: initial, Effect: effect,
		step: maxi(1, (max-min)/4), dir: +1,
		bestVal: initial, best: -1,
	}
	s.points = append(s.points, p)
	return p
}

// Point returns the registered point by name, or nil.
func (s *System) Point(name string) *Point {
	for _, p := range s.points {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// History returns all reports observed so far.
func (s *System) History() []Report { return s.history }

// Observe feeds one performance measurement (lower = better) taken with
// the points' current values; the system then adjusts the active point for
// the next measurement period using hill climbing with shrinking steps.
func (s *System) Observe(metric float64) {
	vals := map[string]int{}
	for _, p := range s.points {
		vals[p.Name] = p.value
	}
	s.history = append(s.history, Report{Metric: metric, Values: vals})
	if len(s.points) == 0 {
		return
	}
	allLocked := true
	for _, p := range s.points {
		if !p.locked {
			allLocked = false
			break
		}
	}
	if allLocked {
		// Converged. Periodically re-probe one point in case the
		// application entered a new phase.
		s.sinceLock++
		if s.sinceLock >= 16 {
			s.sinceLock = 0
			p := s.points[s.active%len(s.points)]
			s.active++
			p.unlockForReprobe(metric)
		}
		return
	}
	for s.points[s.active%len(s.points)].locked {
		s.active++
	}
	s.points[s.active%len(s.points)].observe(metric)
}

// unlockForReprobe re-baselines a converged point and takes one
// exploratory step.
func (p *Point) unlockForReprobe(metric float64) {
	p.locked = false
	p.step = maxi(1, (p.Max-p.Min)/8)
	p.best = metric
	p.bestVal = p.value
	p.move()
}

func (p *Point) observe(metric float64) {
	if p.best < 0 {
		// First observation: establish the baseline, take a first step.
		p.best = metric
		p.bestVal = p.value
		p.move()
		return
	}
	if metric < p.best {
		// Improvement: remember and keep moving the same way.
		p.best = metric
		p.bestVal = p.value
		p.move()
		return
	}
	// Worse or equal: return toward the best known value, reverse, and
	// shrink the step.
	p.dir = -p.dir
	p.step /= 2
	if p.step < 1 {
		p.value = p.bestVal
		p.locked = true
		return
	}
	p.value = p.bestVal
	p.move()
}

func (p *Point) move() {
	p.value += p.dir * p.step
	if p.value > p.Max {
		p.value = p.Max
		p.dir = -1
	}
	if p.value < p.Min {
		p.value = p.Min
		p.dir = +1
	}
}

func maxi(a, b int) int {
	if a > b {
		return a
	}
	return b
}
