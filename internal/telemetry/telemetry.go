// Package telemetry is the runtime's wall-clock observability layer: it
// profiles the three des.Engine backends and the charm runtime in *wall*
// time (where projections profiles the simulated machine in *virtual*
// time), serves the results over a live HTTP introspection endpoint, and
// keeps a crash flight recorder of recent engine decisions.
//
// # The side-band rule
//
// Telemetry is strictly side-band to simulation state. The engines report
// decisions to a des.Probe and obtain wall-clock stamps from it, but
// nothing a probe returns may influence scheduling, and no wall-clock
// value may flow into simulation state (des.Time, event payloads, chare
// fields). The house invariant is enforced by test and by charmvet: a run
// with telemetry attached produces a byte-identical digest to a run
// without, on every backend, and every wall-clock read in the module lives
// in this package under a //charmvet:telemetry waiver that dettaint
// honors only here — and only for values that provably stay side-band.
//
// # Hook inventory
//
// des.Probe (engines → telemetry, driver goroutine only):
//
//	EventExecuted   every event; drives publish throttling and samples
//	                commit-queue depth (wall.queue_depth histogram)
//	PhaseWall       per worker-launched phase: launch→commit wall latency
//	                (wall.phase_ns / wall.spec_phase_ns timers,
//	                wall.phase_latency_ns histogram) and the driver's
//	                pop-time stall (wall.driver_stall_ns)
//	WindowStall     conservative scans that could overlap nothing
//	                (wall.window_stalls)
//	SpecLaunched    optimistic launches + GVT lag (wall.spec_launches,
//	                wall.gvt_lag_vns histogram, virtual nanoseconds)
//	SpecRolledBack  rollback count and wall cost (wall.rollbacks,
//	                wall.rollback_wait_ns); feeds the rollback-storm
//	                flight-recorder trigger
//
// chaos.Observer (failure path → telemetry, commit context):
//
//	FailureDetected stamps detection, dumps the flight recorder
//	Recovered       observes detection→recovery wall time
//	                (wall.chaos_recovery_ns); covers restarted restores
//	                too (the stamp is the first detection of the set)
//	Evacuated       notes the proactive evacuation in the flight recorder
//	Unrecoverable   terminal recovery failure: dumps the flight recorder
//	                one last time before the engine stops
//
// charm message pool: rts.msg_pool_gets / rts.msg_pool_outstanding gauge
// funcs over charm.PoolStats (event-pool occupancy).
//
// Everything lands in the runtime's metrics.Registry, so the existing
// exporters (text summary, projections) and the new Prometheus/JSON
// endpoints see one namespace.
package telemetry

import (
	"strconv"
	"sync/atomic"
	"time"

	"charmgo/internal/chaos"
	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/projections/metrics"
)

// maxStormDumps bounds rollback-storm flight-recorder artifacts per run.
const maxStormDumps = 3

// Options configures an attachment.
type Options struct {
	// PublishInterval is the wall-clock period between metric
	// publications to the HTTP server (default 250ms). Publications
	// happen from driver context at event boundaries, so an idle engine
	// publishes nothing until its next event.
	PublishInterval time.Duration
	// FlightSize is the per-shard flight-recorder ring capacity
	// (default 256 entries).
	FlightSize int
	// FlightDir is the directory flight-recorder dumps are written to
	// (default the working directory).
	FlightDir string
	// StormThreshold dumps the flight recorder when this many
	// consecutive rollbacks strike without an intervening committed
	// speculation — a rollback storm. Zero disables the trigger.
	StormThreshold int
}

// Telemetry is one attached observability instance: the des.Probe the
// engines report to, the chaos.Observer the failure path reports to, and
// the publication pump the HTTP server reads from.
type Telemetry struct {
	rt       *charm.Runtime
	reg      *metrics.Registry
	base     time.Time
	interval int64 // publish interval, ns

	// Hot-path metric handles, resolved once at Attach.
	events       *metrics.Counter
	phaseNs      *metrics.Timer
	specPhaseNs  *metrics.Timer
	stallNs      *metrics.Timer
	rollbackNs   *metrics.Timer
	recoveryNs   *metrics.Timer
	windowStalls *metrics.Counter
	specLaunches *metrics.Counter
	rollbacks    *metrics.Counter
	publishes    *metrics.Counter
	phaseHist    *metrics.Histogram
	gvtLagHist   *metrics.Histogram
	queueDepth   *metrics.Histogram

	pool *charm.PoolStats

	// Publish throttle state, driver goroutine only.
	n       uint64
	lastPub int64
	prevPub map[string]float64

	flight         *Recorder
	stormThreshold int
	storm          int
	stormDumped    bool
	stormDumps     int
	detectNs       int64

	server atomic.Pointer[Server]
	pub    atomic.Pointer[Publication]
}

// Status is the /status document: what the runtime is doing right now,
// refreshed at every publication.
type Status struct {
	Backend    string  `json:"backend"`
	VT         float64 `json:"vt"`
	GVT        float64 `json:"gvt"`
	Executed   uint64  `json:"events_executed"`
	Pending    int     `json:"events_pending"`
	MsgsSent   uint64  `json:"msgs_sent"`
	Rollbacks  uint64  `json:"rollbacks"`
	GVTLag     float64 `json:"gvt_lag"`
	PoolInUse  int64   `json:"msg_pool_outstanding"`
	WallMs     float64 `json:"wall_ms"`
	Running    bool    `json:"running"`
	FlightSeq  uint64  `json:"flight_seq"`
	FlightDump uint32  `json:"flight_dumps"`

	// Optimistic-backend state saving (zero on other backends): snapshots
	// actually packed vs skipped by infrequent saving, coast-forward
	// replay executions, and the live adaptive settings.
	Snapshots        uint64  `json:"snapshots,omitempty"`
	SnapshotsAvoided uint64  `json:"snapshots_avoided,omitempty"`
	Replays          uint64  `json:"replays,omitempty"`
	SnapInterval     int     `json:"snap_interval,omitempty"`
	SnapAdaptive     bool    `json:"snap_adaptive,omitempty"`
	WindowSec        float64 `json:"optimism_window_sec,omitempty"`
}

// Publication is one published observation: the typed metric export, the
// status document, and the flat-sample deltas since the previous
// publication (the /events NDJSON payload).
type Publication struct {
	Seq     uint64
	WallNs  int64
	Status  Status
	Metrics []metrics.Metric
	Deltas  []metrics.Sample
}

// Attach wires telemetry onto a runtime: resolves the metric handles,
// enables message-pool accounting, creates the flight recorder, and
// installs itself as the engine's probe (on engines that accept one — the
// reference heap engine does not, and loses only wall profiling).
// Call before Run; combine with Serve for the HTTP endpoints and
// WatchChaos for failure timing.
func Attach(rt *charm.Runtime, opts Options) *Telemetry {
	if opts.PublishInterval <= 0 {
		opts.PublishInterval = 250 * time.Millisecond
	}
	if opts.FlightSize <= 0 {
		opts.FlightSize = 256
	}
	reg := rt.Metrics()
	t := &Telemetry{
		rt:  rt,
		reg: reg,
		//charmvet:telemetry (wall-clock epoch for all interval math; never enters simulation state)
		base:           time.Now(),
		interval:       opts.PublishInterval.Nanoseconds(),
		events:         reg.Counter("wall.events"),
		phaseNs:        reg.Timer("wall.phase_ns"),
		specPhaseNs:    reg.Timer("wall.spec_phase_ns"),
		stallNs:        reg.Timer("wall.driver_stall_ns"),
		rollbackNs:     reg.Timer("wall.rollback_wait_ns"),
		recoveryNs:     reg.Timer("wall.chaos_recovery_ns"),
		windowStalls:   reg.Counter("wall.window_stalls"),
		specLaunches:   reg.Counter("wall.spec_launches"),
		rollbacks:      reg.Counter("wall.rollbacks"),
		publishes:      reg.Counter("wall.publishes"),
		phaseHist:      reg.Histogram("wall.phase_latency_ns"),
		gvtLagHist:     reg.Histogram("wall.gvt_lag_vns"),
		queueDepth:     reg.Histogram("wall.queue_depth"),
		prevPub:        map[string]float64{},
		stormThreshold: opts.StormThreshold,
	}
	t.pool = charm.EnablePoolStats()
	reg.GaugeFunc("rts.msg_pool_gets", func() float64 { return float64(t.pool.Gets.Load()) })
	reg.GaugeFunc("rts.msg_pool_outstanding", func() float64 { return float64(t.pool.Outstanding()) })
	reg.GaugeFunc("rts.events_pending", func() float64 { return float64(rt.Engine().Pending()) })
	t.flight = newRecorder(rt.Machine().NumNodes(), opts.FlightSize, opts.FlightDir, t.WallNow)
	if ps, ok := rt.Engine().(des.ProbeSetter); ok {
		ps.SetProbe(t)
	}
	return t
}

// WatchChaos installs this telemetry as the fault controller's observer,
// timing detection→recovery and dumping the flight recorder at detection.
func (t *Telemetry) WatchChaos(c *chaos.Controller) { c.SetObserver(t) }

// Registry returns the metric registry telemetry writes into (the
// runtime's own).
func (t *Telemetry) Registry() *metrics.Registry { return t.reg }

// Flight returns the flight recorder.
func (t *Telemetry) Flight() *Recorder { return t.flight }

// WallNow returns nanoseconds since Attach, from the monotonic clock. It
// is the single wall-clock source the engines consume (via des.Probe).
func (t *Telemetry) WallNow() int64 {
	//charmvet:telemetry (the one engine-facing wall-clock read; stamps stay side-band)
	return int64(time.Since(t.base))
}

// EventExecuted implements des.Probe: count, sample queue depth, and
// publish when the interval elapsed. The clock is read only every 1024
// events, so the per-event cost is a counter bump.
func (t *Telemetry) EventExecuted(shard int, at des.Time, pending int) {
	t.events.Inc()
	t.n++
	if t.n&1023 != 0 {
		return
	}
	t.queueDepth.Observe(uint64(pending))
	now := t.WallNow()
	if now-t.lastPub >= t.interval {
		t.lastPub = now
		t.publish(at, true, now)
	}
}

// PhaseWall implements des.Probe.
func (t *Telemetry) PhaseWall(shard int, at des.Time, wallNs, stallNs int64, speculative bool) {
	if speculative {
		t.specPhaseNs.ObserveNs(wallNs)
		// A committed speculation ends any rollback run.
		t.storm = 0
		t.stormDumped = false
	} else {
		t.phaseNs.ObserveNs(wallNs)
	}
	t.phaseHist.Observe(uint64(wallNs))
	t.stallNs.ObserveNs(stallNs)
}

// WindowStall implements des.Probe.
func (t *Telemetry) WindowStall(at des.Time) {
	t.windowStalls.Inc()
	t.flight.Note(-1, "window_stall", at, "")
}

// SpecLaunched implements des.Probe.
func (t *Telemetry) SpecLaunched(shard int, at des.Time, gvtLag des.Time) {
	t.specLaunches.Inc()
	t.gvtLagHist.Observe(uint64(gvtLag * 1e9))
	t.flight.Note(shard, "spec_launch", at, "")
}

// SpecRolledBack implements des.Probe: a straggler (or cancel/exit)
// undid shard's speculation. Crossing the storm threshold dumps the
// flight recorder once per storm.
func (t *Telemetry) SpecRolledBack(shard int, at des.Time, waitNs int64) {
	t.rollbacks.Inc()
	t.rollbackNs.ObserveNs(waitNs)
	t.flight.Note(shard, "rollback", at, "straggler")
	t.storm++
	// One dump per storm, and at most maxStormDumps per run: the artifact
	// is a postmortem, not a stream — a run-long storm would otherwise
	// write a dump per rollback burst.
	if t.stormThreshold > 0 && t.storm >= t.stormThreshold &&
		!t.stormDumped && t.stormDumps < maxStormDumps {
		t.stormDumped = true
		t.stormDumps++
		t.flight.Dump("rollback-storm")
	}
}

// FailureDetected implements chaos.Observer: stamp the detection and dump
// the flight recorder while the pre-crash decision history is still in
// the ring.
func (t *Telemetry) FailureDetected(pe int, at des.Time) {
	t.detectNs = t.WallNow()
	t.flight.Note(-1, "heartbeat_miss", at, "pe="+strconv.Itoa(pe))
	t.flight.Dump("chaos-detect")
}

// Recovered implements chaos.Observer.
func (t *Telemetry) Recovered(pe int, at des.Time) {
	t.recoveryNs.ObserveNs(t.WallNow() - t.detectNs)
	t.flight.Note(-1, "recovered", at, "pe="+strconv.Itoa(pe))
}

// Evacuated implements chaos.Observer: a fault prediction emptied a PE at
// a quiescent cut.
func (t *Telemetry) Evacuated(pe int, at des.Time) {
	t.flight.Note(-1, "evacuated", at, "pe="+strconv.Itoa(pe))
}

// Unrecoverable implements chaos.Observer: recovery gave up (all replicas
// of some shard lost, or the restore-restart budget exhausted). Dump the
// flight recorder — the decision history leading into the unsurvivable
// cascade is the postmortem.
func (t *Telemetry) Unrecoverable(at des.Time, err error) {
	t.flight.Note(-1, "unrecoverable", at, err.Error())
	t.flight.Dump("chaos-unrecoverable")
}

// Final publishes a last observation marked not-running. Call after Run
// so /status and /metrics reflect the finished state.
func (t *Telemetry) Final() {
	t.publish(t.rt.Now(), false, t.WallNow())
}

// publishNow forces an immediate publication (Serve calls it so the
// endpoints have data before the first throttled publish).
func (t *Telemetry) publishNow() {
	t.publish(t.rt.Now(), true, t.WallNow())
}

// publish evaluates the registry and status from driver context and hands
// the immutable publication to the server. GaugeFuncs read live runtime
// state, which is why this never runs from the HTTP goroutine.
func (t *Telemetry) publish(at des.Time, running bool, wallNs int64) {
	t.publishes.Inc()
	ms := t.reg.Export()
	flat := flatten(ms)
	deltas := make([]metrics.Sample, 0, 16)
	next := make(map[string]float64, len(flat))
	for _, s := range flat {
		next[s.Name] = s.Value
		if prev, ok := t.prevPub[s.Name]; !ok || prev != s.Value {
			deltas = append(deltas, s)
		}
	}
	t.prevPub = next

	st := Status{
		Backend:    t.rt.Machine().Config().Backend,
		VT:         float64(at),
		GVT:        float64(t.rt.Now()),
		Executed:   t.rt.Engine().Executed(),
		Pending:    t.rt.Engine().Pending(),
		MsgsSent:   t.rt.Stats.MsgsSent,
		Rollbacks:  t.rollbacks.Value(),
		PoolInUse:  t.pool.Outstanding(),
		WallMs:     float64(wallNs) / 1e6,
		Running:    running,
		FlightSeq:  t.flight.Seq(),
		FlightDump: t.flight.Dumps(),
	}
	if st.Backend == "" {
		st.Backend = "sequential"
	}
	if saves := t.rt.SpecSaveStats(); saves.Snapshots > 0 || saves.SnapshotsAvoided > 0 {
		st.Snapshots = saves.Snapshots
		st.SnapshotsAvoided = saves.SnapshotsAvoided
		st.Replays = saves.Replays
		st.SnapInterval = saves.SnapInterval
		st.SnapAdaptive = saves.Adaptive
		st.WindowSec = saves.Window
	}
	pub := &Publication{
		Seq:     t.publishes.Value(),
		WallNs:  wallNs,
		Status:  st,
		Metrics: ms,
		Deltas:  deltas,
	}
	t.pub.Store(pub)
	if srv := t.server.Load(); srv != nil {
		srv.publish(pub)
	}
}

// Last returns the most recent publication, or nil before the first.
func (t *Telemetry) Last() *Publication { return t.pub.Load() }

// flatten mirrors Registry.Snapshot's flattening over an already-taken
// export, so deltas need no second GaugeFunc evaluation.
func flatten(ms []metrics.Metric) []metrics.Sample {
	out := make([]metrics.Sample, 0, len(ms)+8)
	for _, m := range ms {
		switch m.Kind {
		case metrics.KindTimer:
			out = append(out, metrics.Sample{Name: m.Name + ".count", Value: float64(m.Count)})
			out = append(out, metrics.Sample{Name: m.Name + ".sum_ns", Value: m.Sum})
			out = append(out, metrics.Sample{Name: m.Name + ".max_ns", Value: m.Max})
		case metrics.KindHistogram:
			out = append(out, metrics.Sample{Name: m.Name + ".count", Value: float64(m.Count)})
			out = append(out, metrics.Sample{Name: m.Name + ".sum", Value: m.Sum})
		default:
			out = append(out, metrics.Sample{Name: m.Name, Value: m.Value})
		}
	}
	return out
}
