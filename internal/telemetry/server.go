package telemetry

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"charmgo/internal/projections/metrics"
)

// Server is the live introspection endpoint: it serves the most recent
// Publication (so request handling never touches runtime state) plus the
// standard pprof profiles.
//
//	/metrics      Prometheus text exposition
//	/status       the Status document as JSON
//	/events       streaming NDJSON of metric deltas, one line per publication
//	/debug/pprof  net/http/pprof (heap, goroutine, CPU profile, trace)
//
// Handlers read an immutable *Publication swapped in by the driver's
// publish pump; /events polls the publication version rather than
// blocking on a channel, keeping the package free of select on any path.
type Server struct {
	ln  net.Listener
	srv *http.Server

	mu  sync.Mutex
	cur *Publication
	ver uint64
}

// Serve starts the introspection server on addr (e.g. ":8080", or
// "127.0.0.1:0" to pick a free port — read it back with Addr). It
// registers itself with t so every publication reaches the handlers, and
// forces an immediate publication so the endpoints have data before the
// first throttled publish.
func Serve(addr string, t *Telemetry) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: listen %s: %w", addr, err)
	}
	s := &Server{ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/", s.handleIndex)
	mux.HandleFunc("/status", s.handleStatus)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/events", s.handleEvents)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	s.srv = &http.Server{Handler: mux}
	t.server.Store(s)
	t.publishNow()
	//charmvet:spawn (HTTP accept loop; never schedules or executes events)
	go s.srv.Serve(ln)
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }

// publish installs a new publication for the handlers. Called by the
// driver's publish pump; handlers never see a half-written publication
// because the pointer swap is under the mutex.
func (s *Server) publish(p *Publication) {
	s.mu.Lock()
	s.cur = p
	s.ver++
	s.mu.Unlock()
}

// last returns the current publication and its version.
func (s *Server) last() (*Publication, uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.cur, s.ver
}

func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	if r.URL.Path != "/" {
		http.NotFound(w, r)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprint(w, "charmgo telemetry\n\n"+
		"  /status       runtime status (JSON)\n"+
		"  /metrics      Prometheus text exposition\n"+
		"  /events       streaming NDJSON metric deltas\n"+
		"  /debug/pprof  Go profiles\n")
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	p, _ := s.last()
	if p == nil {
		http.Error(w, "no publication yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(p.Status)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	p, _ := s.last()
	if p == nil {
		http.Error(w, "no publication yet", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	metrics.WritePrometheus(w, p.Metrics)
}

// eventLine is one /events NDJSON record: the publication header plus the
// samples that changed since the previous publication. encoding/json sorts
// map keys, so the line layout is deterministic for a given delta set.
type eventLine struct {
	Seq    uint64             `json:"seq"`
	WallMs float64            `json:"wall_ms"`
	VT     float64            `json:"vt"`
	Deltas map[string]float64 `json:"deltas"`
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.Header().Set("Cache-Control", "no-store")
	fl, _ := w.(http.Flusher)
	var sent uint64
	ctx := r.Context()
	for ctx.Err() == nil {
		p, ver := s.last()
		if p != nil && ver != sent {
			sent = ver
			line := eventLine{
				Seq:    p.Seq,
				WallMs: float64(p.WallNs) / 1e6,
				VT:     p.Status.VT,
				Deltas: make(map[string]float64, len(p.Deltas)),
			}
			for _, d := range p.Deltas {
				line.Deltas[d.Name] = d.Value
			}
			data, err := json.Marshal(line)
			if err != nil {
				return
			}
			if _, err := w.Write(append(data, '\n')); err != nil {
				return
			}
			if fl != nil {
				fl.Flush()
			}
			// A final not-running publication ends the stream.
			if !p.Status.Running {
				return
			}
		}
		time.Sleep(50 * time.Millisecond)
	}
}
