package telemetry

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"charmgo/internal/des"
)

// FlightEntry is one recorded engine decision. Seq is a global record
// sequence (total order across shards), WallNs the wall stamp from the
// owning Telemetry's clock, VT the virtual time of the decision.
type FlightEntry struct {
	Seq    uint64  `json:"seq"`
	WallNs int64   `json:"wall_ns"`
	VT     float64 `json:"vt"`
	Shard  int     `json:"shard"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail,omitempty"`
}

// FlightDump is the JSON artifact a Dump writes: the drained rings merged
// into one seq-ordered history.
type FlightDump struct {
	Reason    string        `json:"reason"`
	WrittenAt string        `json:"written_at"`
	Shards    int           `json:"shards"`
	RingSize  int           `json:"ring_size"`
	Entries   []FlightEntry `json:"entries"`
}

// Recorder is the crash flight recorder: a fixed-size ring of recent
// engine decisions per shard (plus one ring for driver-level records,
// shard -1), dumped to a timestamped JSON artifact on panic, chaos
// detection, or a rollback storm. Rings are bounded, so a 128k-PE run
// carries the same memory cost per shard as a toy one.
//
// Note may be called from driver or commit context while Dump runs from a
// panicking goroutine, so the rings are mutex-protected; the lock is
// uncontended in normal operation.
type Recorder struct {
	mu    sync.Mutex
	seq   uint64
	size  int
	rings [][]FlightEntry // rings[0] = driver (-1), rings[s+1] = shard s
	fill  []uint64        // total records ever written per ring
	dir   string
	clock func() int64
	dumps atomic.Uint32
}

// newRecorder sizes one ring per shard plus the driver ring.
func newRecorder(shards, size int, dir string, clock func() int64) *Recorder {
	if shards < 1 {
		shards = 1
	}
	r := &Recorder{
		size:  size,
		rings: make([][]FlightEntry, shards+1),
		fill:  make([]uint64, shards+1),
		dir:   dir,
		clock: clock,
	}
	for i := range r.rings {
		r.rings[i] = make([]FlightEntry, size)
	}
	return r
}

// Note appends one record to shard's ring (shard -1 and out-of-range
// shards land in the driver ring), overwriting the oldest when full.
func (r *Recorder) Note(shard int, kind string, vt des.Time, detail string) {
	idx := shard + 1
	if idx < 1 || idx >= len(r.rings) {
		idx = 0
	}
	wall := r.clock()
	r.mu.Lock()
	e := FlightEntry{Seq: r.seq, WallNs: wall, VT: float64(vt), Shard: shard, Kind: kind, Detail: detail}
	r.seq++
	r.rings[idx][r.fill[idx]%uint64(r.size)] = e
	r.fill[idx]++
	r.mu.Unlock()
}

// Seq returns the number of records ever written.
func (r *Recorder) Seq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.seq
}

// Dumps returns how many dump artifacts have been written.
func (r *Recorder) Dumps() uint32 { return r.dumps.Load() }

// Snapshot returns every retained record, oldest first in global seq
// order.
func (r *Recorder) Snapshot() []FlightEntry {
	r.mu.Lock()
	var out []FlightEntry
	for i, ring := range r.rings {
		n := r.fill[i]
		kept := uint64(r.size)
		if n < kept {
			kept = n
		}
		for k := n - kept; k < n; k++ {
			out = append(out, ring[k%uint64(r.size)])
		}
	}
	r.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Dump writes the retained history to a timestamped JSON artifact named
// flightrec-<reason>-<n>-<stamp>.json in the recorder's directory and
// returns its path. Failures are reported on stderr rather than raised:
// the dump path runs during panics and failure handling, where a
// secondary error must not mask the primary one.
func (r *Recorder) Dump(reason string) (string, error) {
	n := r.dumps.Add(1)
	//charmvet:telemetry (artifact stamp; written to the dump file, never to simulation state)
	stamp := time.Now().UTC().Format("20060102T150405.000Z")
	doc := FlightDump{
		Reason:    reason,
		WrittenAt: stamp,
		Shards:    len(r.rings) - 1,
		RingSize:  r.size,
		Entries:   r.Snapshot(),
	}
	path := filepath.Join(r.dir, fmt.Sprintf("flightrec-%s-%d-%s.json", reason, n, stamp))
	data, err := json.MarshalIndent(doc, "", "  ")
	if err == nil {
		err = os.WriteFile(path, data, 0o644)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "telemetry: flight-recorder dump %s failed: %v\n", reason, err)
		return "", err
	}
	fmt.Fprintf(os.Stderr, "telemetry: flight recorder dumped to %s (%s, %d entries)\n", path, reason, len(doc.Entries))
	return path, nil
}

// DumpOnPanic dumps the flight recorder when the calling goroutine is
// panicking, then re-panics. Use as `defer tel.DumpOnPanic()` around the
// run so a crash leaves a postmortem artifact:
//
//	tel := telemetry.Attach(rt, telemetry.Options{})
//	defer tel.DumpOnPanic()
//	rt.Run()
func (t *Telemetry) DumpOnPanic() {
	if r := recover(); r != nil {
		t.flight.Note(-1, "panic", t.rt.Now(), fmt.Sprint(r))
		t.flight.Dump("panic")
		panic(r)
	}
}
