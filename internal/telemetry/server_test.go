package telemetry_test

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"charmgo/internal/apps/stencil"
	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/telemetry"
)

// TestServerEndpoints runs a stencil job with the introspection server up,
// polls /events concurrently with the run, and checks /status, /metrics,
// and the stream contents after the final publication.
func TestServerEndpoints(t *testing.T) {
	cfg := machine.Testbed(8)
	cfg.Backend = "parallel"
	rt := charm.New(machine.New(cfg))
	rt.SetBalancer(lb.Greedy{})
	tel := telemetry.Attach(rt, telemetry.Options{
		PublishInterval: time.Millisecond, // publish eagerly so the stream sees mid-run deltas
		FlightDir:       t.TempDir(),
	})
	srv, err := telemetry.Serve("127.0.0.1:0", tel)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	// Stream /events while the run progresses; the final not-running
	// publication ends the stream, so the reader goroutine terminates on
	// its own.
	lines := make(chan string, 64)
	streamErr := make(chan error, 1)
	go func() {
		defer close(lines)
		resp, err := http.Get(base + "/events")
		if err != nil {
			streamErr <- err
			return
		}
		defer resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
			streamErr <- fmt.Errorf("events content-type %q", ct)
			return
		}
		sc := bufio.NewScanner(resp.Body)
		sc.Buffer(make([]byte, 1<<20), 1<<20)
		for sc.Scan() {
			lines <- sc.Text()
		}
		streamErr <- sc.Err()
	}()

	if _, err := stencil.Run(rt, stencil.Config{GridN: 96, Chares: 12, Iters: 12, LBPeriod: 4}); err != nil {
		t.Fatal(err)
	}
	tel.Final()

	// /status reflects the finished run.
	var st telemetry.Status
	getJSON(t, base+"/status", &st)
	if st.Running {
		t.Errorf("/status running = true after Final")
	}
	if st.Backend != "parallel" {
		t.Errorf("/status backend = %q, want parallel", st.Backend)
	}
	if st.Executed == 0 || st.MsgsSent == 0 {
		t.Errorf("/status shows no work: %+v", st)
	}

	// /metrics speaks Prometheus text format and carries the wall profile.
	prom := getBody(t, base+"/metrics")
	for _, want := range []string{
		"# TYPE wall_events counter",
		"wall_phase_ns_seconds_count",
		"wall_queue_depth_bucket{le=",
		"rts_msg_pool_outstanding",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// The stream terminated with the final publication and every line is
	// valid NDJSON carrying deltas.
	var got []string
	for line := range lines {
		got = append(got, line)
	}
	if err := <-streamErr; err != nil {
		t.Fatalf("events stream: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("events stream produced no lines")
	}
	type eventLine struct {
		Seq    uint64             `json:"seq"`
		WallMs float64            `json:"wall_ms"`
		VT     float64            `json:"vt"`
		Deltas map[string]float64 `json:"deltas"`
	}
	var last eventLine
	for i, line := range got {
		var el eventLine
		if err := json.Unmarshal([]byte(line), &el); err != nil {
			t.Fatalf("events line %d is not JSON: %v\n%s", i, err, line)
		}
		if el.Seq <= last.Seq {
			t.Errorf("events line %d: seq %d not increasing past %d", i, el.Seq, last.Seq)
		}
		last = el
	}
	if _, ok := last.Deltas["wall.events"]; !ok && len(got) == 1 {
		t.Errorf("final events line carries no wall.events delta: %v", last.Deltas)
	}

	// pprof is mounted.
	if body := getBody(t, base+"/debug/pprof/cmdline"); len(body) == 0 {
		t.Error("pprof cmdline endpoint empty")
	}
}

func getBody(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, err %v", url, resp.StatusCode, err)
	}
	return string(data)
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(getBody(t, url)), v); err != nil {
		t.Fatalf("GET %s: decoding: %v", url, err)
	}
}
