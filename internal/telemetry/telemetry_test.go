package telemetry_test

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
	"time"

	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/pdes"
	"charmgo/internal/apps/stencil"
	"charmgo/internal/charm"
	"charmgo/internal/chaos"
	"charmgo/internal/des"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/telemetry"
	"charmgo/internal/trace"
)

// digestedRun mirrors the determinism suite's run digest — full trace +
// event count + runtime stats + app summary — optionally with telemetry
// attached. Telemetry must not perturb any of it.
func digestedRun(t *testing.T, withTelemetry bool, mk func() machine.Config, run func(rt *charm.Runtime) string) string {
	t.Helper()
	rt := charm.New(machine.New(mk()))
	if withTelemetry {
		tel := telemetry.Attach(rt, telemetry.Options{FlightDir: t.TempDir()})
		defer tel.Final()
	}
	tr := trace.New(rt, 0.05)
	tr.Start()
	summary := run(rt)

	h := sha256.New()
	fmt.Fprintf(h, "summary %s\n", summary)
	fmt.Fprintf(h, "events %d\n", rt.Engine().Executed())
	fmt.Fprintf(h, "stats %+v\n", rt.Stats)
	if err := tr.WriteJSON(h); err != nil {
		t.Fatalf("writing trace: %v", err)
	}
	return hex.EncodeToString(h.Sum(nil))
}

func withBackend(mk func() machine.Config, backend string) func() machine.Config {
	return func() machine.Config {
		c := mk()
		c.Backend = backend
		return c
	}
}

// assertTelemetryNeutral runs an app with and without telemetry on every
// backend and demands byte-identical digests: the observability layer is
// strictly side-band.
func assertTelemetryNeutral(t *testing.T, name string, mk func() machine.Config, run func(rt *charm.Runtime) string) {
	t.Helper()
	for _, backend := range []string{"sequential", "parallel", "optimistic"} {
		t.Run(backend, func(t *testing.T) {
			off := digestedRun(t, false, withBackend(mk, backend), run)
			on := digestedRun(t, true, withBackend(mk, backend), run)
			if off != on {
				t.Errorf("%s/%s: telemetry perturbed the run:\n  off: %s\n  on:  %s", name, backend, off, on)
			}
		})
	}
}

func TestLeanMDTelemetryNeutral(t *testing.T) {
	cfg := leanmd.Config{
		CellsX: 3, CellsY: 3, CellsZ: 3,
		AtomsPerCell: 20, Steps: 8, Seed: 42,
		LBPeriod: 3, Gaussian: 0.35,
	}
	assertTelemetryNeutral(t, "leanmd",
		func() machine.Config { return machine.Testbed(8) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Greedy{})
			res, err := leanmd.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("atoms=%d energy=%v stepdone=%v", res.Atoms, res.Energy, res.StepDone)
		})
}

func TestPDESTelemetryNeutral(t *testing.T) {
	cfg := pdes.Config{
		LPs: 64, EventsPerLP: 8, TargetEvents: 4000, Seed: 42,
		UseTram: true, LBPeriodWindows: 4,
	}
	assertTelemetryNeutral(t, "pdes",
		func() machine.Config { return machine.Testbed(16) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Greedy{})
			res, err := pdes.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("committed=%d windows=%d maxvt=%v", res.Committed, res.Windows, res.MaxVT)
		})
}

func TestStencilTelemetryNeutral(t *testing.T) {
	cfg := stencil.Config{GridN: 96, Chares: 12, Iters: 12, LBPeriod: 4}
	assertTelemetryNeutral(t, "stencil",
		func() machine.Config { return machine.Testbed(16) },
		func(rt *charm.Runtime) string {
			rt.SetBalancer(lb.Greedy{})
			res, err := stencil.Run(rt, cfg)
			if err != nil {
				t.Fatal(err)
			}
			return fmt.Sprintf("iters=%d residuals=%v done=%v", len(res.Residuals), res.Residuals, res.IterDone)
		})
}

// TestProbePathAllocFree pins both sides of the probe hook. With no
// telemetry attached the instrumented engine path is a nil check, so it
// must keep the calendar engine's steady-state zero-alloc budget; with
// telemetry attached the per-event cost is atomic counter/histogram bumps
// (the publish pump is throttled out by a long interval), so the budget
// barely moves.
func TestProbePathAllocFree(t *testing.T) {
	measure := func(eng *des.Sequential) float64 {
		remaining := 0
		var fn des.PhaseFn
		fn = func(a any, b int64, at des.Time) func() {
			if remaining > 0 {
				remaining--
				eng.AtShardFn(0, at+1e-6, fn, nil, 0)
			}
			return nil
		}
		run := func(n int) {
			remaining = n
			eng.AtShardFn(0, eng.Now()+1e-6, fn, nil, 0)
			for eng.Step() {
			}
		}
		run(20000) // warm slab + calendar
		const perRun = 200
		allocs := testing.AllocsPerRun(100, func() { run(perRun) })
		return allocs / (perRun + 1)
	}

	rt := charm.New(machine.New(machine.Testbed(2)))
	eng, ok := rt.Engine().(*des.Sequential)
	if !ok {
		t.Fatalf("sequential backend is %T, want *des.Sequential", rt.Engine())
	}

	if per := measure(eng); per > 0.05 {
		t.Errorf("disabled probe path allocates %.3f per event, want <= 0.05 (nil check only)", per)
	}

	tel := telemetry.Attach(rt, telemetry.Options{
		PublishInterval: time.Hour, // keep the publish pump out of the loop
		FlightDir:       t.TempDir(),
	})
	_ = tel
	if per := measure(eng); per > 0.05 {
		t.Errorf("enabled probe path allocates %.3f per event, want <= 0.05 (atomic bumps only)", per)
	}
}

func TestFlightRecorderWraparound(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(4)))
	tel := telemetry.Attach(rt, telemetry.Options{FlightSize: 4, FlightDir: t.TempDir()})
	rec := tel.Flight()

	for i := 0; i < 10; i++ {
		rec.Note(0, "spec_launch", des.Time(float64(i)), "")
	}
	for i := 0; i < 3; i++ {
		rec.Note(-1, "window_stall", des.Time(float64(100+i)), "")
	}
	if rec.Seq() != 13 {
		t.Fatalf("Seq = %d, want 13", rec.Seq())
	}
	snap := rec.Snapshot()
	// Shard 0's ring keeps the newest 4 of 10; the driver ring all 3.
	if len(snap) != 7 {
		t.Fatalf("retained %d entries, want 7 (4 shard + 3 driver)", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot not seq-ordered at %d: %d after %d", i, snap[i].Seq, snap[i-1].Seq)
		}
	}
	var shard0 []telemetry.FlightEntry
	for _, e := range snap {
		if e.Shard == 0 {
			shard0 = append(shard0, e)
		}
	}
	if len(shard0) != 4 || shard0[0].VT != 6 || shard0[3].VT != 9 {
		t.Fatalf("shard 0 ring kept %v, want VT 6..9", shard0)
	}

	path, err := rec.Dump("test")
	if err != nil {
		t.Fatalf("dump: %v", err)
	}
	assertParseableDump(t, path, "test", 7)
}

// assertParseableDump decodes a flight-recorder artifact and sanity-checks
// its shape.
func assertParseableDump(t *testing.T, path, reason string, minEntries int) telemetry.FlightDump {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("reading dump: %v", err)
	}
	var doc telemetry.FlightDump
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("dump %s is not valid JSON: %v", path, err)
	}
	if doc.Reason != reason {
		t.Errorf("dump reason %q, want %q", doc.Reason, reason)
	}
	if len(doc.Entries) < minEntries {
		t.Errorf("dump holds %d entries, want >= %d", len(doc.Entries), minEntries)
	}
	return doc
}

// findDump returns the lone flightrec-<reason>-* artifact in dir.
func findDump(t *testing.T, dir, reason string) string {
	t.Helper()
	matches, err := filepath.Glob(filepath.Join(dir, "flightrec-"+reason+"-*.json"))
	if err != nil || len(matches) == 0 {
		t.Fatalf("no flightrec-%s dump in %s (err=%v)", reason, dir, err)
	}
	return matches[0]
}

// TestChaosDetectionDump kills a PE mid-run with telemetry watching the
// fault controller: detection must dump the flight recorder (with the
// pre-crash decision history still in the ring) and recovery must land in
// the wall.chaos_recovery_ns timer.
func TestChaosDetectionDump(t *testing.T) {
	runLeanMD := func(dir string, plan *chaos.Plan) (tel *telemetry.Telemetry, elapsed float64) {
		cfg := machine.Testbed(8)
		rt := charm.New(machine.New(cfg))
		rt.SetBalancer(lb.Greedy{})
		app, err := leanmd.New(rt, leanmd.Config{
			CellsX: 3, CellsY: 3, CellsZ: 3,
			AtomsPerCell: 20, Steps: 18, LBPeriod: 3,
			Gaussian: 0.35, Seed: 7,
		})
		if err != nil {
			t.Fatal(err)
		}
		if dir != "" {
			tel = telemetry.Attach(rt, telemetry.Options{FlightDir: dir})
		}
		if plan != nil {
			saved := 0
			ctrl, err := chaos.Enable(rt, *plan, chaos.Options{
				CheckpointEveryRounds: 1,
				HeartbeatPeriod:       2e-4,
				HeartbeatTimeout:      1.5e-4,
				OnCheckpoint:          func() { saved = app.Steps() },
				OnRollback:            func() { app.TruncateResult(saved) },
			})
			if err != nil {
				t.Fatal(err)
			}
			if tel != nil {
				tel.WatchChaos(ctrl)
			}
			defer func() {
				if ctrl.Err() != nil {
					t.Fatalf("recovery failed: %v", ctrl.Err())
				}
				if ctrl.Survived() != 1 {
					t.Fatalf("survived %d crashes, want 1", ctrl.Survived())
				}
			}()
		}
		res, err := app.Run()
		if err != nil {
			t.Fatal(err)
		}
		return tel, float64(res.Elapsed)
	}

	_, elapsed := runLeanMD("", nil) // probe run to position the crash
	plan := chaos.CrashPlan(7, 1, 8, 0.45*elapsed, 0.95*elapsed)

	dir := t.TempDir()
	tel, _ := runLeanMD(dir, &plan)

	if d := tel.Flight().Dumps(); d < 1 {
		t.Fatalf("flight dumps = %d, want >= 1", d)
	}
	doc := assertParseableDump(t, findDump(t, dir, "chaos-detect"), "chaos-detect", 1)
	miss := false
	for _, e := range doc.Entries {
		if e.Kind == "heartbeat_miss" {
			miss = true
		}
	}
	if !miss {
		t.Errorf("chaos-detect dump holds no heartbeat_miss entry")
	}
	tel.Final()
	if got := tel.Registry().Timer("wall.chaos_recovery_ns").Count(); got != 1 {
		t.Errorf("wall.chaos_recovery_ns count = %d, want 1", got)
	}
}

// TestRollbackStormDump drives the optimistic backend with the storm
// threshold at its floor: the first rollback is a "storm" and must produce
// a parseable dump. The PDES workload reliably speculates across LP
// boundaries and takes stragglers.
func TestRollbackStormDump(t *testing.T) {
	dir := t.TempDir()
	cfg := machine.Testbed(16)
	cfg.Backend = "optimistic"
	rt := charm.New(machine.New(cfg))
	rt.SetBalancer(lb.Greedy{})
	tel := telemetry.Attach(rt, telemetry.Options{FlightDir: dir, StormThreshold: 1})
	if _, err := pdes.Run(rt, pdes.Config{
		LPs: 64, EventsPerLP: 8, TargetEvents: 4000, Seed: 42,
		UseTram: true, LBPeriodWindows: 4,
	}); err != nil {
		t.Fatal(err)
	}
	tel.Final()
	rolls := tel.Registry().Counter("wall.rollbacks").Value()
	if rolls == 0 {
		t.Skip("optimistic run took no rollbacks; storm trigger unexercised")
	}
	if d := tel.Flight().Dumps(); d < 1 {
		t.Fatalf("rollbacks=%d but flight dumps = %d, want >= 1", rolls, d)
	}
	doc := assertParseableDump(t, findDump(t, dir, "rollback-storm"), "rollback-storm", 1)
	found := false
	for _, e := range doc.Entries {
		if e.Kind == "rollback" {
			found = true
		}
	}
	if !found {
		t.Errorf("rollback-storm dump holds no rollback entry")
	}
}

// TestPanicDump re-execs the test binary, crashes the helper run inside a
// DumpOnPanic guard, and checks the postmortem artifact parses.
func TestPanicDump(t *testing.T) {
	if dir := os.Getenv("TELEMETRY_PANIC_DIR"); dir != "" {
		// Helper mode: attach, record a little history, crash.
		rt := charm.New(machine.New(machine.Testbed(4)))
		tel := telemetry.Attach(rt, telemetry.Options{FlightDir: dir})
		defer tel.DumpOnPanic()
		tel.Flight().Note(0, "spec_launch", 1.0, "pre-crash history")
		panic("simulated engine crash")
	}

	dir := t.TempDir()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestPanicDump$", "-test.v")
	cmd.Env = append(os.Environ(), "TELEMETRY_PANIC_DIR="+dir)
	out, err := cmd.CombinedOutput()
	if err == nil {
		t.Fatalf("helper run did not crash; output:\n%s", out)
	}
	doc := assertParseableDump(t, findDump(t, dir, "panic"), "panic", 2)
	var kinds []string
	for _, e := range doc.Entries {
		kinds = append(kinds, e.Kind)
	}
	if kinds[len(kinds)-1] != "panic" {
		t.Errorf("last dump entry kinds = %v, want trailing panic record", kinds)
	}
}
