package malleable

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

type blob struct{ Data []float64 }

func (b *blob) Pup(p *pup.Pup) { p.Float64s(&b.Data) }

func build(numPEs, numElems int) (*charm.Runtime, *charm.Array, *Manager) {
	rt := charm.New(machine.New(machine.Testbed(numPEs)))
	arr := rt.DeclareArray("blobs", func() charm.Chare { return &blob{} },
		[]charm.Handler{func(obj charm.Chare, ctx *charm.Ctx, msg any) { ctx.Charge(1e-4) }},
		charm.ArrayOpts{Migratable: true})
	for i := 0; i < numElems; i++ {
		arr.Insert(charm.Idx1(i), &blob{Data: make([]float64, 64)})
	}
	rt.SetBalancer(lb.Greedy{})
	return rt, arr, NewManager(rt)
}

func TestShrinkEvacuatesAndStalls(t *testing.T) {
	rt, arr, m := build(8, 32)
	before := rt.MaxBusy()
	if err := m.Reconfigure(4); err != nil {
		t.Fatal(err)
	}
	if rt.NumPEs() != 4 {
		t.Fatalf("NumPEs=%d", rt.NumPEs())
	}
	for i := 0; i < 32; i++ {
		if pe := arr.PEOf(charm.Idx1(i)); pe >= 4 {
			t.Fatalf("element %d still on evacuated PE %d", i, pe)
		}
	}
	if rt.MaxBusy() <= before+1 {
		t.Fatalf("reconfiguration cost not applied: busy %v -> %v", before, rt.MaxBusy())
	}
	if len(m.Events) != 1 || m.Events[0].FromPEs != 8 || m.Events[0].ToPEs != 4 {
		t.Fatalf("event log wrong: %+v", m.Events)
	}
}

func TestExpandSpreadsLoad(t *testing.T) {
	rt, arr, m := build(8, 64)
	if err := m.Reconfigure(4); err != nil {
		t.Fatal(err)
	}
	// Accumulate load so the post-expand rebalance has data.
	arr.Broadcast(0, nil)
	rt.Run()
	if err := m.Reconfigure(8); err != nil {
		t.Fatal(err)
	}
	if rt.NumPEs() != 8 {
		t.Fatalf("NumPEs=%d", rt.NumPEs())
	}
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		used[arr.PEOf(charm.Idx1(i))] = true
	}
	if len(used) < 7 {
		t.Fatalf("expand rebalance used only %d of 8 PEs", len(used))
	}
}

func TestExpandCostsMoreThanShrink(t *testing.T) {
	// Fig 5: shrink 256→128 took 2.7s, expand 128→256 took 7.2s —
	// expand restarts more processes.
	rt, _, m := build(16, 64)
	if err := m.Reconfigure(8); err != nil {
		t.Fatal(err)
	}
	if err := m.Reconfigure(16); err != nil {
		t.Fatal(err)
	}
	shrink, expand := m.Events[0].Duration, m.Events[1].Duration
	_ = rt
	if expand <= shrink {
		t.Fatalf("expand (%v) should cost more than shrink (%v)", expand, shrink)
	}
}

func TestInvalidTargets(t *testing.T) {
	_, _, m := build(4, 8)
	if err := m.Reconfigure(0); err == nil {
		t.Fatal("shrink to 0 should fail")
	}
	if err := m.Reconfigure(5); err == nil {
		t.Fatal("expand beyond the machine should fail")
	}
	if err := m.Reconfigure(4); err != nil {
		t.Fatalf("no-op reconfigure errored: %v", err)
	}
	if len(m.Events) != 0 {
		t.Fatal("no-op reconfigure logged an event")
	}
}

func TestRequestAtFiresOnSchedule(t *testing.T) {
	rt, _, m := build(8, 16)
	m.RequestAt(2.0, 4)
	rt.Engine().RunUntil(1.0)
	if rt.NumPEs() != 8 {
		t.Fatal("reconfiguration fired early")
	}
	rt.Engine().RunUntil(3.0)
	if rt.NumPEs() != 4 {
		t.Fatal("scheduled reconfiguration did not fire")
	}
	if m.Events[0].At < 2.0 {
		t.Fatalf("event at %v, want >= 2.0", m.Events[0].At)
	}
}
