package malleable

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

type blob struct{ Data []float64 }

func (b *blob) Pup(p *pup.Pup) { p.Float64s(&b.Data) }

func build(numPEs, numElems int) (*charm.Runtime, *charm.Array, *Manager) {
	rt := charm.New(machine.New(machine.Testbed(numPEs)))
	arr := rt.DeclareArray("blobs", func() charm.Chare { return &blob{} },
		[]charm.Handler{func(obj charm.Chare, ctx *charm.Ctx, msg any) { ctx.Charge(1e-4) }},
		charm.ArrayOpts{Migratable: true})
	for i := 0; i < numElems; i++ {
		arr.Insert(charm.Idx1(i), &blob{Data: make([]float64, 64)})
	}
	rt.SetBalancer(lb.Greedy{})
	return rt, arr, NewManager(rt)
}

func TestShrinkEvacuatesAndStalls(t *testing.T) {
	rt, arr, m := build(8, 32)
	before := rt.MaxBusy()
	if err := m.Reconfigure(4); err != nil {
		t.Fatal(err)
	}
	if rt.NumPEs() != 4 {
		t.Fatalf("NumPEs=%d", rt.NumPEs())
	}
	for i := 0; i < 32; i++ {
		if pe := arr.PEOf(charm.Idx1(i)); pe >= 4 {
			t.Fatalf("element %d still on evacuated PE %d", i, pe)
		}
	}
	if rt.MaxBusy() <= before+1 {
		t.Fatalf("reconfiguration cost not applied: busy %v -> %v", before, rt.MaxBusy())
	}
	if len(m.Events) != 1 || m.Events[0].FromPEs != 8 || m.Events[0].ToPEs != 4 {
		t.Fatalf("event log wrong: %+v", m.Events)
	}
}

func TestExpandSpreadsLoad(t *testing.T) {
	rt, arr, m := build(8, 64)
	if err := m.Reconfigure(4); err != nil {
		t.Fatal(err)
	}
	// Accumulate load so the post-expand rebalance has data.
	arr.Broadcast(0, nil)
	rt.Run()
	if err := m.Reconfigure(8); err != nil {
		t.Fatal(err)
	}
	if rt.NumPEs() != 8 {
		t.Fatalf("NumPEs=%d", rt.NumPEs())
	}
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		used[arr.PEOf(charm.Idx1(i))] = true
	}
	if len(used) < 7 {
		t.Fatalf("expand rebalance used only %d of 8 PEs", len(used))
	}
}

func TestExpandCostsMoreThanShrink(t *testing.T) {
	// Fig 5: shrink 256→128 took 2.7s, expand 128→256 took 7.2s —
	// expand restarts more processes.
	rt, _, m := build(16, 64)
	if err := m.Reconfigure(8); err != nil {
		t.Fatal(err)
	}
	if err := m.Reconfigure(16); err != nil {
		t.Fatal(err)
	}
	shrink, expand := m.Events[0].Duration, m.Events[1].Duration
	_ = rt
	if expand <= shrink {
		t.Fatalf("expand (%v) should cost more than shrink (%v)", expand, shrink)
	}
}

func TestInvalidTargets(t *testing.T) {
	_, _, m := build(4, 8)
	if err := m.Reconfigure(0); err == nil {
		t.Fatal("shrink to 0 should fail")
	}
	if err := m.Reconfigure(5); err == nil {
		t.Fatal("expand beyond the machine should fail")
	}
	if err := m.Reconfigure(4); err != nil {
		t.Fatalf("no-op reconfigure errored: %v", err)
	}
	if len(m.Events) != 0 {
		t.Fatal("no-op reconfigure logged an event")
	}
}

func TestRequestAtFiresOnSchedule(t *testing.T) {
	rt, _, m := build(8, 16)
	m.RequestAt(2.0, 4)
	rt.Engine().RunUntil(1.0)
	if rt.NumPEs() != 8 {
		t.Fatal("reconfiguration fired early")
	}
	rt.Engine().RunUntil(3.0)
	if rt.NumPEs() != 4 {
		t.Fatal("scheduled reconfiguration did not fire")
	}
	if m.Events[0].At < 2.0 {
		t.Fatalf("event at %v, want >= 2.0", m.Events[0].At)
	}
}

func TestEvacuatePEDrainsDoomedPE(t *testing.T) {
	rt, arr, _ := build(8, 32)
	cm := DefaultCostModel()
	before := rt.MaxBusy()

	moves, bytes, dur := EvacuatePE(rt, 3, []int{0, 1, 2, 4, 5, 6, 7}, cm)
	if bytes <= 0 {
		t.Fatalf("evacuated %d bytes", bytes)
	}
	if dur != cm.EvacuationCost(bytes) {
		t.Fatalf("stall %v, want modeled cost %v", dur, cm.EvacuationCost(bytes))
	}
	// The PE count is unchanged — evacuation is not a shrink — but no
	// element may remain on the doomed PE, and every move departs from it.
	if rt.NumPEs() != 8 {
		t.Fatalf("NumPEs=%d after evacuation", rt.NumPEs())
	}
	for i := 0; i < 32; i++ {
		if pe := arr.PEOf(charm.Idx1(i)); pe == 3 {
			t.Fatalf("element %d still on doomed PE 3", i)
		}
	}
	if len(moves) == 0 {
		t.Fatal("no moves recorded")
	}
	for _, mg := range moves {
		if mg.ToPE == 3 {
			t.Fatalf("move of %v lands back on the doomed PE", mg.Idx)
		}
	}
	if rt.MaxBusy() < before+dur {
		t.Fatalf("evacuation stall not applied: busy %v -> %v (dur %v)", before, rt.MaxBusy(), dur)
	}
}

func TestEvacuationCostIsPerByteOnly(t *testing.T) {
	// Evacuation keeps the process set alive (a standby takes the slot),
	// so unlike a shrink it must not charge the restart term.
	cm := DefaultCostModel()
	if got, want := cm.EvacuationCost(1.2e9), des.Time(1.0); got < want*0.999 || got > want*1.001 {
		t.Fatalf("EvacuationCost(1.2e9) = %v, want ~%v", got, want)
	}
	if cm.EvacuationCost(0) != 0 {
		t.Fatalf("zero bytes must cost zero, got %v", cm.EvacuationCost(0))
	}
	shrinkFloor := des.Time(cm.RestartBase)
	if cm.EvacuationCost(1<<20) >= shrinkFloor {
		t.Fatalf("1MiB evacuation (%v) should be far below the shrink restart floor (%v)",
			cm.EvacuationCost(1<<20), shrinkFloor)
	}
}
