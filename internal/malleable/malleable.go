// Package malleable implements shrink/expand (§III-D): a running job
// changes its PE count in response to an external (CCS-style) command. The
// chares on evacuated PEs are migrated away by a customized load-balancing
// pass, and the modeled cost of the reconfiguration protocol — dominated,
// as the paper notes, by restarting the application processes and
// reconnecting them — is applied as a global stall, producing the
// characteristic spike in Fig 5's iteration times.
package malleable

import (
	"fmt"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// CostModel parameterizes the reconfiguration protocol.
type CostModel struct {
	// EvacPerByte is the per-byte cost of evacuating chare state.
	EvacPerByte float64
	// RestartBase and RestartPerPE model relaunching and reconnecting
	// the process set (the dominant term: 2.7 s for the Fig 5 shrink,
	// 7.2 s for the expand, which restarts more processes). Expand pays
	// RestartBase twice (tear-down + spawn) and SpawnFactor on the
	// per-PE start-up protocol.
	RestartBase  float64
	RestartPerPE float64
	SpawnFactor  float64
	// Rebalance triggers an immediate RTS rebalance after the PE set
	// changes (on by default via NewManager).
	Rebalance bool
}

// DefaultCostModel reproduces the Fig 5 magnitudes.
func DefaultCostModel() CostModel {
	return CostModel{
		EvacPerByte:  1.0 / 1.2e9,
		RestartBase:  1.2,
		RestartPerPE: 0.1875, // per 16 PEs; 256→128 shrink lands at ~2.7 s
		SpawnFactor:  1.6,    // 128→256 expand lands at ~7.2 s
		Rebalance:    true,
	}
}

// EvacuationCost models the protocol cost of proactively moving bytes of
// chare state off a doomed PE: the same per-byte evacuation term the
// shrink path charges, without the process-restart term (the PE set does
// not change — a standby process will take the doomed PE's slot).
func (cm CostModel) EvacuationCost(bytes int64) des.Time {
	return des.Time(cm.EvacPerByte * float64(bytes))
}

// EvacuatePE is the fault-prediction entry point shared with the chaos
// layer: at a quiescent cut, migrate every chare off pe (round-robin over
// dests, the same PUP path a shrink uses) and apply the modeled
// evacuation cost as a global stall. It returns the applied moves, the
// evacuated payload bytes, and the stall duration.
func EvacuatePE(rt *charm.Runtime, pe int, dests []int, cm CostModel) ([]charm.Migration, int64, des.Time) {
	start := rt.MaxBusy()
	moves, bytes := rt.EvacuatePE(pe, dests)
	dur := cm.EvacuationCost(bytes)
	rt.StallActivePEs(start + dur)
	return moves, bytes, dur
}

// Event records one completed reconfiguration.
type Event struct {
	At       des.Time
	FromPEs  int
	ToPEs    int
	Duration des.Time
	Moved    uint64
}

// Manager drives shrink/expand for a runtime.
type Manager struct {
	rt    *charm.Runtime
	model CostModel
	// Events lists completed reconfigurations.
	Events []Event
}

// NewManager returns a manager with the default cost model.
func NewManager(rt *charm.Runtime) *Manager {
	return &Manager{rt: rt, model: DefaultCostModel()}
}

// SetModel overrides the cost model.
func (m *Manager) SetModel(cm CostModel) { m.model = cm }

// RequestAt schedules a reconfiguration to newPEs at virtual time t — the
// analogue of an external CCS shrink/expand command arriving mid-run.
func (m *Manager) RequestAt(t des.Time, newPEs int) {
	m.rt.Engine().At(t, func() {
		if err := m.Reconfigure(newPEs); err != nil {
			panic(fmt.Sprintf("malleable: %v", err))
		}
	})
}

// Reconfigure performs a shrink or expand immediately, returning an error
// for invalid targets. No residual processes remain on evacuated PEs: the
// PE set is reduced for real, per the enhanced shrink/expand the paper
// describes.
func (m *Manager) Reconfigure(newPEs int) error {
	rt := m.rt
	old := rt.NumPEs()
	if newPEs < 1 || newPEs > rt.MaxPEs() {
		return fmt.Errorf("target PE count %d out of [1,%d]", newPEs, rt.MaxPEs())
	}
	if newPEs == old {
		return nil
	}
	migsBefore := rt.Stats.Migrations

	// Quiesce: the protocol begins once in-progress work drains.
	start := rt.MaxBusy()

	// Evacuation bytes: on shrink, everything on the PEs being removed.
	var evacBytes int64
	if newPEs < old {
		for _, arr := range rt.Arrays() {
			for _, idx := range arr.Keys() {
				if pe := arr.PEOf(idx); pe >= newPEs {
					evacBytes += int64(pup.Size(arr.Get(idx))) + 64
				}
			}
		}
	}

	rt.SetActivePEs(newPEs) // migrates evacuated chares to new homes

	// Restart/reconnect the process set: the dominant cost, growing with
	// the number of (re)started processes. Expand additionally spawns
	// and wires up brand-new processes, making it the costlier direction.
	var dur des.Time
	if newPEs < old {
		dur = des.Time(m.model.RestartBase +
			m.model.RestartPerPE*float64(newPEs)/16 +
			m.model.EvacPerByte*float64(evacBytes))
	} else {
		sf := m.model.SpawnFactor
		if sf <= 0 {
			sf = 1.6
		}
		dur = des.Time(2*m.model.RestartBase +
			m.model.RestartPerPE*sf*float64(newPEs)/16)
	}
	rt.StallActivePEs(start + dur)

	if m.model.Rebalance && rt.Balancer() != nil {
		rt.Rebalance()
	}
	m.Events = append(m.Events, Event{
		At:       start,
		FromPEs:  old,
		ToPEs:    newPEs,
		Duration: dur,
		Moved:    rt.Stats.Migrations - migsBefore,
	})
	return nil
}
