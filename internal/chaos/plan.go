// Package chaos implements deterministic fault injection with mid-run
// detection and recovery: the robustness half of the paper's fault-tolerance
// story (§III-B), exercised end to end. A seeded, fully reproducible fault
// plan schedules hard PE crashes at arbitrary virtual-time instants (not
// barrier-aligned), message drops, delay spikes, and straggler PEs; a
// virtual-time heartbeat detector notices dead PEs without consulting any
// wall clock; and a rollback controller restores chare state from the
// double in-memory checkpoint via PUP, fences pre-rollback messages by
// epoch, and replays the run from the last quiescent cut.
//
// Everything is deterministic: the same plan and seed produce byte-identical
// runs — and byte-identical campaign reports — on both the sequential and
// the parallel backend, and a run with K injected crashes finishes with the
// same application results as the failure-free run (crash faults only;
// drops are lossy and stragglers legally reorder floating-point reductions,
// so those assert reproducibility rather than identity).
package chaos

import (
	"fmt"
	"math/rand"
)

// FaultKind classifies one planned fault.
type FaultKind string

const (
	// FaultCrash kills a PE at an instant; recovery revives it from the
	// last double in-memory checkpoint.
	FaultCrash FaultKind = "crash"
	// FaultDrop loses messages with probability Prob inside [At, Until).
	FaultDrop FaultKind = "drop"
	// FaultDelay adds Delay seconds to matching transmits inside the window.
	FaultDelay FaultKind = "delay"
	// FaultStraggler steals Factor of a PE's cycles inside the window
	// (external interference, the cloud model).
	FaultStraggler FaultKind = "straggler"
	// FaultWarn is a predicted failure: a fault prediction (the paper's
	// proactive fault-tolerance scenario — an ECC error burst, a fan
	// alarm) is delivered at At and the PE actually dies at Until. If a
	// quiescent cut falls in between, the controller evacuates every
	// chare off the doomed PE and a standby absorbs the crash with zero
	// rollback; otherwise the warn degrades to an ordinary crash.
	FaultWarn FaultKind = "warn"
)

// Fault is one planned fault. Times are virtual seconds.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// At is when the fault strikes (crash) or the window opens (others).
	At float64 `json:"at"`
	// PE is the crash/straggler target; for drop/delay it filters the
	// destination PE (-1 matches any).
	PE int `json:"pe"`
	// SrcPE filters the source PE for drop/delay (-1 matches any).
	SrcPE int `json:"srcpe"`
	// Until closes the window for drop/delay/straggler faults.
	Until float64 `json:"until,omitempty"`
	// Prob is the per-message drop/delay probability inside the window.
	Prob float64 `json:"prob,omitempty"`
	// Delay is the extra latency injected by a delay fault, seconds.
	Delay float64 `json:"delay,omitempty"`
	// Factor is the straggler's stolen-cycle fraction in [0,1).
	Factor float64 `json:"factor,omitempty"`
}

// Plan is a reproducible fault schedule. Seed drives every random choice
// the injector makes (per-message drop decisions); the schedule itself is
// explicit, so a plan is self-describing and replayable.
type Plan struct {
	Seed   int64   `json:"seed"`
	Faults []Fault `json:"faults"`
}

// Crashes counts the plan's crash faults.
func (p Plan) Crashes() int {
	n := 0
	for _, f := range p.Faults {
		if f.Kind == FaultCrash {
			n++
		}
	}
	return n
}

// Warns counts the plan's predicted-failure faults.
func (p Plan) Warns() int {
	n := 0
	for _, f := range p.Faults {
		if f.Kind == FaultWarn {
			n++
		}
	}
	return n
}

// Validate rejects plans the recovery protocol cannot honor.
func (p Plan) Validate(numPEs int) error {
	for i, f := range p.Faults {
		switch f.Kind {
		case FaultCrash:
			if f.PE <= 0 || f.PE >= numPEs {
				return fmt.Errorf("chaos: fault %d: crash PE %d out of range [1,%d) (PE 0 hosts the failure detector)", i, f.PE, numPEs)
			}
		case FaultStraggler:
			if f.PE < 0 || f.PE >= numPEs {
				return fmt.Errorf("chaos: fault %d: straggler PE %d out of range", i, f.PE)
			}
			if f.Factor < 0 || f.Factor >= 1 {
				return fmt.Errorf("chaos: fault %d: straggler factor %v out of [0,1)", i, f.Factor)
			}
		case FaultDrop, FaultDelay:
			if f.Until <= f.At {
				return fmt.Errorf("chaos: fault %d: empty %s window", i, f.Kind)
			}
		case FaultWarn:
			if f.PE <= 0 || f.PE >= numPEs {
				return fmt.Errorf("chaos: fault %d: warn PE %d out of range [1,%d) (PE 0 hosts the failure detector)", i, f.PE, numPEs)
			}
			if f.Until <= f.At {
				return fmt.Errorf("chaos: fault %d: warn must predict a future crash (until %v <= at %v)", i, f.Until, f.At)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// CrashPlan builds a seeded plan of n crashes spread over (start, end):
// the span is cut into n sub-spans and each crash lands at a jittered
// offset inside its own, which bounds the minimum spacing between crashes
// at 40% of a sub-span — detection plus rollback must fit in that gap.
// Victims are drawn from PEs 1..numPEs-1; PE 0 hosts the heartbeat monitor
// and is never crashed (a real deployment would fail it over; the monitor
// itself is not the subject of this layer).
func CrashPlan(seed int64, n, numPEs int, start, end float64) Plan {
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	p := Plan{Seed: seed}
	if n <= 0 || numPEs < 2 {
		return p
	}
	span := (end - start) / float64(n)
	for i := 0; i < n; i++ {
		at := start + span*(float64(i)+0.2+0.6*rng.Float64())
		pe := 1 + rng.Intn(numPEs-1)
		p.Faults = append(p.Faults, Fault{Kind: FaultCrash, At: at, PE: pe})
	}
	return p
}

// WarnPlan builds a seeded plan of n predicted failures: each prediction
// is delivered at a jittered instant inside (start, end) and its crash
// lands lead seconds later. Victims are drawn from PEs 1..numPEs-1, all
// distinct while they last (two live predictions shrink the evacuation
// target set, so piling them on one PE is a different experiment).
func WarnPlan(seed int64, n, numPEs int, start, end, lead float64) Plan {
	rng := rand.New(rand.NewSource(seed*31337 + 101))
	p := Plan{Seed: seed}
	if n <= 0 || numPEs < 3 {
		return p
	}
	span := (end - start) / float64(n)
	used := map[int]bool{}
	for i := 0; i < n; i++ {
		at := start + span*(float64(i)+0.2+0.6*rng.Float64())
		pe := 1 + rng.Intn(numPEs-1)
		for used[pe] && len(used) < numPEs-1 {
			pe = 1 + pe%(numPEs-1)
		}
		used[pe] = true
		p.Faults = append(p.Faults, Fault{Kind: FaultWarn, At: at, PE: pe, Until: at + lead})
	}
	return p
}

// FuzzPlan builds a seeded adversarial plan mixing plain crashes,
// predicted failures (warns), and deliberately correlated crash pairs —
// a PE and one of its ring successors (a likely replica holder) killed
// back to back, the second timed to land inside the first's
// detection-plus-restore window. Every draw comes from the seed, so a
// plan is fully reproducible from (seed, numPEs, start, end) and a
// failing seed can be replayed verbatim.
func FuzzPlan(seed int64, numPEs int, start, end float64) Plan {
	rng := rand.New(rand.NewSource(seed*104729 + 7))
	p := Plan{Seed: seed}
	if numPEs < 3 || end <= start {
		return p
	}
	n := 1 + rng.Intn(3) // 1-3 fault groups
	span := (end - start) / float64(n)
	for i := 0; i < n; i++ {
		base := start + span*(float64(i)+0.1+0.5*rng.Float64())
		pe := 1 + rng.Intn(numPEs-1)
		switch rng.Intn(3) {
		case 0: // plain crash
			p.Faults = append(p.Faults, Fault{Kind: FaultCrash, At: base, PE: pe})
		case 1: // predicted failure; lead time may or may not span a cut
			lead := span * (0.1 + 0.8*rng.Float64())
			p.Faults = append(p.Faults,
				Fault{Kind: FaultWarn, At: base, PE: pe, Until: base + lead})
		case 2: // correlated pair: a PE and a ring successor, overlapping
			succ := 1 + (pe+rng.Intn(2))%(numPEs-1) // stay off PE 0
			if succ == pe {
				succ = 1 + pe%(numPEs-1)
			}
			dt := 1e-4 + 2e-3*rng.Float64()
			p.Faults = append(p.Faults,
				Fault{Kind: FaultCrash, At: base, PE: pe},
				Fault{Kind: FaultCrash, At: base + dt, PE: succ})
		}
	}
	return p
}
