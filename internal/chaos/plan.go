// Package chaos implements deterministic fault injection with mid-run
// detection and recovery: the robustness half of the paper's fault-tolerance
// story (§III-B), exercised end to end. A seeded, fully reproducible fault
// plan schedules hard PE crashes at arbitrary virtual-time instants (not
// barrier-aligned), message drops, delay spikes, and straggler PEs; a
// virtual-time heartbeat detector notices dead PEs without consulting any
// wall clock; and a rollback controller restores chare state from the
// double in-memory checkpoint via PUP, fences pre-rollback messages by
// epoch, and replays the run from the last quiescent cut.
//
// Everything is deterministic: the same plan and seed produce byte-identical
// runs — and byte-identical campaign reports — on both the sequential and
// the parallel backend, and a run with K injected crashes finishes with the
// same application results as the failure-free run (crash faults only;
// drops are lossy and stragglers legally reorder floating-point reductions,
// so those assert reproducibility rather than identity).
package chaos

import (
	"fmt"
	"math/rand"
)

// FaultKind classifies one planned fault.
type FaultKind string

const (
	// FaultCrash kills a PE at an instant; recovery revives it from the
	// last double in-memory checkpoint.
	FaultCrash FaultKind = "crash"
	// FaultDrop loses messages with probability Prob inside [At, Until).
	FaultDrop FaultKind = "drop"
	// FaultDelay adds Delay seconds to matching transmits inside the window.
	FaultDelay FaultKind = "delay"
	// FaultStraggler steals Factor of a PE's cycles inside the window
	// (external interference, the cloud model).
	FaultStraggler FaultKind = "straggler"
)

// Fault is one planned fault. Times are virtual seconds.
type Fault struct {
	Kind FaultKind `json:"kind"`
	// At is when the fault strikes (crash) or the window opens (others).
	At float64 `json:"at"`
	// PE is the crash/straggler target; for drop/delay it filters the
	// destination PE (-1 matches any).
	PE int `json:"pe"`
	// SrcPE filters the source PE for drop/delay (-1 matches any).
	SrcPE int `json:"srcpe"`
	// Until closes the window for drop/delay/straggler faults.
	Until float64 `json:"until,omitempty"`
	// Prob is the per-message drop/delay probability inside the window.
	Prob float64 `json:"prob,omitempty"`
	// Delay is the extra latency injected by a delay fault, seconds.
	Delay float64 `json:"delay,omitempty"`
	// Factor is the straggler's stolen-cycle fraction in [0,1).
	Factor float64 `json:"factor,omitempty"`
}

// Plan is a reproducible fault schedule. Seed drives every random choice
// the injector makes (per-message drop decisions); the schedule itself is
// explicit, so a plan is self-describing and replayable.
type Plan struct {
	Seed   int64   `json:"seed"`
	Faults []Fault `json:"faults"`
}

// Crashes counts the plan's crash faults.
func (p Plan) Crashes() int {
	n := 0
	for _, f := range p.Faults {
		if f.Kind == FaultCrash {
			n++
		}
	}
	return n
}

// Validate rejects plans the recovery protocol cannot honor.
func (p Plan) Validate(numPEs int) error {
	for i, f := range p.Faults {
		switch f.Kind {
		case FaultCrash:
			if f.PE <= 0 || f.PE >= numPEs {
				return fmt.Errorf("chaos: fault %d: crash PE %d out of range [1,%d) (PE 0 hosts the failure detector)", i, f.PE, numPEs)
			}
		case FaultStraggler:
			if f.PE < 0 || f.PE >= numPEs {
				return fmt.Errorf("chaos: fault %d: straggler PE %d out of range", i, f.PE)
			}
			if f.Factor < 0 || f.Factor >= 1 {
				return fmt.Errorf("chaos: fault %d: straggler factor %v out of [0,1)", i, f.Factor)
			}
		case FaultDrop, FaultDelay:
			if f.Until <= f.At {
				return fmt.Errorf("chaos: fault %d: empty %s window", i, f.Kind)
			}
		default:
			return fmt.Errorf("chaos: fault %d: unknown kind %q", i, f.Kind)
		}
	}
	return nil
}

// CrashPlan builds a seeded plan of n crashes spread over (start, end):
// the span is cut into n sub-spans and each crash lands at a jittered
// offset inside its own, which bounds the minimum spacing between crashes
// at 40% of a sub-span — detection plus rollback must fit in that gap.
// Victims are drawn from PEs 1..numPEs-1; PE 0 hosts the heartbeat monitor
// and is never crashed (a real deployment would fail it over; the monitor
// itself is not the subject of this layer).
func CrashPlan(seed int64, n, numPEs int, start, end float64) Plan {
	rng := rand.New(rand.NewSource(seed*7919 + 13))
	p := Plan{Seed: seed}
	if n <= 0 || numPEs < 2 {
		return p
	}
	span := (end - start) / float64(n)
	for i := 0; i < n; i++ {
		at := start + span*(float64(i)+0.2+0.6*rng.Float64())
		pe := 1 + rng.Intn(numPEs-1)
		p.Faults = append(p.Faults, Fault{Kind: FaultCrash, At: at, PE: pe})
	}
	return p
}
