package chaos

import (
	"fmt"

	"charmgo/internal/apps/leanmd"
	"charmgo/internal/apps/pdes"
	"charmgo/internal/apps/stencil"
	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

// runResult is one application run under (optionally) a fault plan.
type runResult struct {
	values  []float64 // app-defined final values (energies/residuals/counters)
	digest  string    // StateDigest at end of run
	elapsed float64   // virtual seconds
	ctrl    *Controller
	rt      *charm.Runtime
}

// runOpts carries campaign-level knobs into each runner.
type runOpts struct {
	// replication is the checkpoint replication degree R (0: default 1).
	replication int
}

// appSpec binds a campaign app name to its machine size and runner.
type appSpec struct {
	numPEs int
	run    func(backend string, plan *Plan, seed int64, ro runOpts) (*runResult, error)
}

// Apps lists the campaign's application names.
func Apps() []string { return []string{"leanmd", "stencil", "pdes"} }

// Campaign detector cadence: the mini-apps run for tens of milliseconds
// of virtual time, so the campaign heartbeats much faster than the
// defaults — a ping round-trip is ~10 µs on these machines, so a 150 µs
// deadline is still an order of magnitude of slack. Worst-case detection
// latency is one period plus one timeout (350 µs), which CrashPlan's
// minimum crash spacing must exceed for each crash to be individually
// detected (crashes closer together than one detection window are healed
// by a single rollback).
const (
	campaignPeriod  = 2e-4
	campaignTimeout = 1.5e-4
)

func specFor(app string) (appSpec, error) {
	switch app {
	case "leanmd":
		return appSpec{numPEs: 8, run: runLeanMD}, nil
	case "stencil":
		return appSpec{numPEs: 8, run: runStencil}, nil
	case "pdes":
		return appSpec{numPEs: 32, run: runPDES}, nil
	}
	return appSpec{}, fmt.Errorf("chaos: unknown app %q (want leanmd, stencil, or pdes)", app)
}

func newRuntime(cfg machine.Config, backend string) *charm.Runtime {
	cfg.Backend = backend
	return charm.New(machine.New(cfg))
}

// finish applies the common tail of every runner: controller errors win
// over the app's stall diagnosis (the stall is the symptom, the failed
// recovery the cause).
func finish(rt *charm.Runtime, ctrl *Controller, values []float64, elapsed float64, appErr error) (*runResult, error) {
	if ctrl != nil && ctrl.Err() != nil {
		return nil, ctrl.Err()
	}
	if appErr != nil {
		return nil, appErr
	}
	return &runResult{values: values, digest: StateDigest(rt),
		elapsed: elapsed, ctrl: ctrl, rt: rt}, nil
}

func runLeanMD(backend string, plan *Plan, seed int64, ro runOpts) (*runResult, error) {
	rt := newRuntime(machine.Testbed(8), backend)
	rt.SetBalancer(lb.Greedy{})
	app, err := leanmd.New(rt, leanmd.Config{
		CellsX: 3, CellsY: 3, CellsZ: 3,
		AtomsPerCell: 20, Steps: 18, LBPeriod: 3,
		Gaussian: 0.35, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	var ctrl *Controller
	if plan != nil {
		saved := 0
		ctrl, err = Enable(rt, *plan, Options{
			CheckpointEveryRounds: 1,
			HeartbeatPeriod:       campaignPeriod,
			HeartbeatTimeout:      campaignTimeout,
			Replication:           ro.replication,
			OnCheckpoint:          func() { saved = app.Steps() },
			OnRollback:            func() { app.TruncateResult(saved) },
		})
		if err != nil {
			return nil, err
		}
	}
	res, appErr := app.Run()
	var values []float64
	var elapsed float64
	if res != nil {
		values, elapsed = res.Energy, float64(res.Elapsed)
	}
	return finish(rt, ctrl, values, elapsed, appErr)
}

func runStencil(backend string, plan *Plan, seed int64, ro runOpts) (*runResult, error) {
	rt := newRuntime(machine.Testbed(8), backend)
	rt.SetBalancer(lb.Greedy{})
	// Sized so the run spans ~22 ms of virtual time with a small grid
	// (small checkpoints restore in ~1.6 ms): CrashPlan's minimum crash
	// spacing (~6.7% of the span) must exceed one detection window plus
	// the recovery stall, or two crashes heal under one rollback.
	app, err := stencil.New(rt, stencil.Config{
		GridN: 96, Chares: 8, Iters: 256, LBPeriod: 8,
	})
	if err != nil {
		return nil, err
	}
	var ctrl *Controller
	if plan != nil {
		saved := 0
		ctrl, err = Enable(rt, *plan, Options{
			CheckpointEveryRounds: 1,
			HeartbeatPeriod:       campaignPeriod,
			HeartbeatTimeout:      campaignTimeout,
			Replication:           ro.replication,
			OnCheckpoint:          func() { saved = app.Iters() },
			OnRollback:            func() { app.TruncateResult(saved) },
		})
		if err != nil {
			return nil, err
		}
	}
	res, appErr := app.Run()
	var values []float64
	var elapsed float64
	if res != nil {
		values, elapsed = res.Residuals, float64(res.Elapsed)
	}
	return finish(rt, ctrl, values, elapsed, appErr)
}

func runPDES(backend string, plan *Plan, seed int64, ro runOpts) (*runResult, error) {
	rt := newRuntime(machine.Stampede(32), backend)
	// TRAM stays off under chaos: aggregation buffers are not rolled
	// back; and windows (not LB rounds) are the checkpoint cuts.
	cfg := pdes.Config{
		LPs: 64, EventsPerLP: 8, TargetEvents: 12000, Seed: seed,
	}
	var ctrl *Controller
	var app *pdes.App
	if plan != nil {
		var saved pdes.DriverState
		cfg.WindowHook = func(w int) {
			if ctrl != nil && w%2 == 0 {
				ctrl.CheckpointNow()
			}
		}
		a, err := pdes.New(rt, cfg)
		if err != nil {
			return nil, err
		}
		app = a
		ctrl, err = Enable(rt, *plan, Options{
			HeartbeatPeriod:  campaignPeriod,
			HeartbeatTimeout: campaignTimeout,
			Replication:      ro.replication,
			OnCheckpoint:     func() { saved = app.DriverState() },
			OnRollback:       func() { app.RestoreDriverState(saved) },
			Restart:          func() { app.AskMin() },
		})
		if err != nil {
			return nil, err
		}
	} else {
		a, err := pdes.New(rt, cfg)
		if err != nil {
			return nil, err
		}
		app = a
	}
	res, appErr := app.Run()
	var values []float64
	var elapsed float64
	if res != nil {
		values = []float64{float64(res.Committed), float64(res.Windows), res.MaxVT}
		elapsed = float64(res.Elapsed)
	}
	return finish(rt, ctrl, values, elapsed, appErr)
}

// BenchBackend reports one backend's clean-vs-chaos comparison.
type BenchBackend struct {
	Backend      string  `json:"backend"`
	CleanElapsed float64 `json:"clean_elapsed"`
	ChaosElapsed float64 `json:"chaos_elapsed"`
	CleanDigest  string  `json:"clean_digest"`
	ChaosDigest  string  `json:"chaos_digest"`
	// ValuesMatch: the chaos run's application results (energies,
	// residuals, committed counts) equal the failure-free run's, bit for
	// bit — the headline invariant.
	ValuesMatch bool `json:"values_match"`
	// DigestMatch: full final state (every chare, PUP-serialized, with
	// placement) is identical too.
	DigestMatch bool `json:"digest_match"`
	// Survived counts failures healed: PEs restored by rollbacks plus
	// predicted crashes absorbed by proactive evacuation.
	Survived int            `json:"survived"`
	Records  []RecoveryStat `json:"records"`
	// Evacs records every resolved fault prediction; Absorbed counts the
	// ones whose crash cost zero rollback.
	Evacs    []EvacRecord `json:"evacs,omitempty"`
	Absorbed int          `json:"absorbed,omitempty"`
	// MeanDetectionLatency and MeanRecoveryTime summarize the records,
	// virtual seconds.
	MeanDetectionLatency float64 `json:"mean_detection_latency"`
	MeanRecoveryTime     float64 `json:"mean_recovery_time"`
	// TotalRestartCost is the summed modeled buddy-restore cost, to set
	// against RestartFromScratch — rerunning the whole job, the
	// alternative without in-memory checkpoints.
	TotalRestartCost   float64 `json:"total_restart_cost"`
	RestartFromScratch float64 `json:"restart_from_scratch"`
}

// Bench is the BENCH_chaos.json payload for one application.
type Bench struct {
	App     string `json:"app"`
	Seed    int64  `json:"seed"`
	Crashes int    `json:"crashes"`
	// Warns is the number of predicted failures injected; Replication the
	// checkpoint replication degree R the campaign ran with.
	Warns       int            `json:"warns,omitempty"`
	Replication int            `json:"replication,omitempty"`
	Plan        Plan           `json:"plan"`
	Probe       float64        `json:"probe_elapsed"` // failure-free duration used to place crashes
	Results     []BenchBackend `json:"results"`
	// CrossBackendMatch: every backend's chaos run (sequential,
	// conservative-parallel, optimistic) converged to the same final state
	// digest — fault detection, checkpoint rollback, and Time Warp
	// speculation all collapse to one execution.
	CrossBackendMatch bool `json:"cross_backend_match"`
}

func floatsEqual(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// RunCampaign probes an app's failure-free duration, derives a seeded
// crash plan spread over its mid-run, and runs clean and chaos
// executions on all three backends, asserting value and state identity.
func RunCampaign(app string, crashes int, seed int64) (*Bench, error) {
	return RunCampaignOpts(app, crashes, 0, seed, 0)
}

// RunCampaignOpts is RunCampaign with the full knob set: warns predicted
// failures ride along with the crashes (delivered early enough that a
// checkpoint cut falls inside the prediction window, so they are
// absorbed by evacuation), and replication sets the checkpoint
// replication degree R (0: the default, 1).
func RunCampaignOpts(app string, crashes, warns int, seed int64, replication int) (*Bench, error) {
	spec, err := specFor(app)
	if err != nil {
		return nil, err
	}
	ro := runOpts{replication: replication}
	probe, err := spec.run("sequential", nil, seed, ro)
	if err != nil {
		return nil, fmt.Errorf("chaos: %s probe run: %w", app, err)
	}
	plan := CrashPlan(seed, crashes, spec.numPEs, 0.45*probe.elapsed, 0.95*probe.elapsed)
	if warns > 0 {
		// Predictions are delivered in the run's first third with a lead
		// of a quarter of the run: at least one checkpoint cut falls in
		// every prediction window, and the landing leaves cuts to heal
		// placement before the finish line.
		wp := WarnPlan(seed, warns, spec.numPEs,
			0.10*probe.elapsed, 0.30*probe.elapsed, 0.25*probe.elapsed)
		plan.Faults = append(plan.Faults, wp.Faults...)
	}
	b := &Bench{App: app, Seed: seed, Crashes: crashes, Warns: warns,
		Replication: replication, Plan: plan, Probe: probe.elapsed}

	for _, backend := range []string{"sequential", "parallel", "optimistic"} {
		clean := probe
		if backend != "sequential" {
			if clean, err = spec.run(backend, nil, seed, ro); err != nil {
				return nil, fmt.Errorf("chaos: %s clean %s run: %w", app, backend, err)
			}
		}
		chaos, err := spec.run(backend, &plan, seed, ro)
		if err != nil {
			return nil, fmt.Errorf("chaos: %s chaos %s run: %w", app, backend, err)
		}
		bb := BenchBackend{
			Backend:            backend,
			CleanElapsed:       clean.elapsed,
			ChaosElapsed:       chaos.elapsed,
			CleanDigest:        clean.digest,
			ChaosDigest:        chaos.digest,
			ValuesMatch:        floatsEqual(clean.values, chaos.values),
			DigestMatch:        clean.digest == chaos.digest,
			Survived:           chaos.ctrl.Survived(),
			Records:            chaos.ctrl.Records,
			Evacs:              chaos.ctrl.Evacs,
			RestartFromScratch: clean.elapsed,
		}
		for _, e := range chaos.ctrl.Evacs {
			if e.Absorbed {
				bb.Absorbed++
			}
		}
		for _, r := range chaos.ctrl.Records {
			bb.MeanDetectionLatency += r.DetectionLatency()
			bb.MeanRecoveryTime += r.RecoveryTime()
			bb.TotalRestartCost += r.RestartCost
		}
		if n := len(chaos.ctrl.Records); n > 0 {
			bb.MeanDetectionLatency /= float64(n)
			bb.MeanRecoveryTime /= float64(n)
		}
		b.Results = append(b.Results, bb)
	}
	b.CrossBackendMatch = len(b.Results) > 1
	for _, r := range b.Results[1:] {
		if r.ChaosDigest != b.Results[0].ChaosDigest || r.CleanDigest != b.Results[0].CleanDigest {
			b.CrossBackendMatch = false
		}
	}
	return b, nil
}
