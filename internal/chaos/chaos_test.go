package chaos

import (
	"encoding/json"
	"errors"
	"testing"

	"charmgo/internal/apps/leanmd"
	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

// assertCampaign checks the headline invariant for one app: K injected
// mid-run crashes, detected and recovered mid-run, and the final
// application results are bit-identical to the failure-free run on all
// three backends (sequential, conservative-parallel, optimistic).
func assertCampaign(t *testing.T, app string, crashes int, seed int64) *Bench {
	t.Helper()
	b, err := RunCampaign(app, crashes, seed)
	if err != nil {
		t.Fatalf("%s campaign: %v", app, err)
	}
	if len(b.Results) != 3 {
		t.Fatalf("%s: want 3 backends, got %d", app, len(b.Results))
	}
	for _, r := range b.Results {
		if r.Survived != crashes {
			t.Errorf("%s/%s: survived %d of %d crashes", app, r.Backend, r.Survived, crashes)
		}
		if !r.ValuesMatch {
			t.Errorf("%s/%s: chaos run values differ from failure-free run", app, r.Backend)
		}
		if !r.DigestMatch {
			t.Errorf("%s/%s: final state digest differs from failure-free run", app, r.Backend)
		}
		for i, rec := range r.Records {
			if !rec.DigestOK {
				t.Errorf("%s/%s: recovery %d: post-restore digest does not match checkpoint", app, r.Backend, i)
			}
			if rec.DetectionLatency() <= 0 {
				t.Errorf("%s/%s: recovery %d: non-positive detection latency %v", app, r.Backend, i, rec.DetectionLatency())
			}
			if rec.ResumedAt <= rec.DetectedAt {
				t.Errorf("%s/%s: recovery %d: resumed (%v) before detected (%v)", app, r.Backend, i, rec.ResumedAt, rec.DetectedAt)
			}
		}
		if r.ChaosElapsed <= r.CleanElapsed {
			t.Errorf("%s/%s: chaos run (%v) not slower than clean run (%v); recovery cost unaccounted",
				app, r.Backend, r.ChaosElapsed, r.CleanElapsed)
		}
	}
	if !b.CrossBackendMatch {
		t.Errorf("%s: backends disagree on final state", app)
	}
	return b
}

func TestLeanMDSurvivesCrashes(t *testing.T) {
	assertCampaign(t, "leanmd", 3, 42)
}

func TestStencilSurvivesCrashes(t *testing.T) {
	assertCampaign(t, "stencil", 3, 42)
}

func TestPDESSurvivesCrashes(t *testing.T) {
	assertCampaign(t, "pdes", 3, 42)
}

// TestBenchDeterminism: the same plan and seed must produce a
// byte-identical campaign report across two consecutive runs.
func TestBenchDeterminism(t *testing.T) {
	b1, err := RunCampaign("stencil", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	b2, err := RunCampaign("stencil", 2, 7)
	if err != nil {
		t.Fatal(err)
	}
	j1, _ := json.MarshalIndent(b1, "", "  ")
	j2, _ := json.MarshalIndent(b2, "", "  ")
	if string(j1) != string(j2) {
		t.Fatalf("campaign report not reproducible:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", j1, j2)
	}
}

// TestCrashPlanDeterminism: same seed, same plan; crash victims are
// never PE 0.
func TestCrashPlanDeterminism(t *testing.T) {
	p1 := CrashPlan(3, 5, 8, 0.1, 1.0)
	p2 := CrashPlan(3, 5, 8, 0.1, 1.0)
	if len(p1.Faults) != 5 {
		t.Fatalf("want 5 faults, got %d", len(p1.Faults))
	}
	for i := range p1.Faults {
		if p1.Faults[i] != p2.Faults[i] {
			t.Fatalf("fault %d differs: %+v vs %+v", i, p1.Faults[i], p2.Faults[i])
		}
		if p1.Faults[i].PE == 0 {
			t.Fatalf("fault %d crashes PE 0 (reserved for the detector)", i)
		}
		if i > 0 && p1.Faults[i].At <= p1.Faults[i-1].At {
			t.Fatalf("fault %d not after fault %d", i, i-1)
		}
	}
	if err := p1.Validate(8); err != nil {
		t.Fatalf("generated plan invalid: %v", err)
	}
}

func TestPlanValidate(t *testing.T) {
	bad := []Plan{
		{Faults: []Fault{{Kind: FaultCrash, At: 1, PE: 0}}},       // detector PE
		{Faults: []Fault{{Kind: FaultCrash, At: 1, PE: 8}}},       // out of range
		{Faults: []Fault{{Kind: FaultDrop, At: 2, Until: 1}}},     // empty window
		{Faults: []Fault{{Kind: FaultStraggler, PE: 1, Factor: 1}}}, // factor ≥ 1
		{Faults: []Fault{{Kind: "meteor", At: 1}}},                // unknown kind
	}
	for i, p := range bad {
		if p.Validate(8) == nil {
			t.Errorf("plan %d: want validation error, got nil", i)
		}
	}
	ok := Plan{Faults: []Fault{
		{Kind: FaultCrash, At: 1, PE: 3},
		{Kind: FaultDrop, At: 0.5, Until: 0.6, PE: -1, SrcPE: -1, Prob: 0.1},
		{Kind: FaultDelay, At: 0.5, Until: 0.6, PE: 2, SrcPE: -1, Delay: 1e-4, Prob: 1},
		{Kind: FaultStraggler, At: 0.5, Until: 0.7, PE: 1, Factor: 0.5},
	}}
	if err := ok.Validate(8); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
}

// TestCrashWithoutCheckpoint: a failure before any checkpoint exists is a
// terminal, typed error — the run aborts rather than hanging stalled.
func TestCrashWithoutCheckpoint(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(8)))
	app, err := leanmd.New(rt, leanmd.Config{
		CellsX: 3, CellsY: 3, CellsZ: 3, AtomsPerCell: 8, Steps: 20, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	// No LBPeriod, CheckpointEveryRounds 0: nothing ever checkpoints.
	plan := Plan{Seed: 1, Faults: []Fault{{Kind: FaultCrash, At: 1e-3, PE: 2}}}
	ctrl, err := Enable(rt, plan, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := app.Run(); err == nil {
		t.Fatal("want app run to fail, got nil")
	}
	if !errors.Is(ctrl.Err(), ckpt.ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint, got %v", ctrl.Err())
	}
}

// TestDropDelayStragglerDeterminism: lossy faults cannot promise value
// identity with the failure-free run, but the same plan must reproduce
// the same execution twice, and the injection counters must advance.
func TestDropDelayStragglerDeterminism(t *testing.T) {
	run := func() (*charm.Runtime, []float64) {
		rt := charm.New(machine.New(machine.Testbed(8)))
		rt.SetBalancer(lb.Greedy{})
		app, err := leanmd.New(rt, leanmd.Config{
			CellsX: 3, CellsY: 3, CellsZ: 3, AtomsPerCell: 8, Steps: 6, Seed: 5,
		})
		if err != nil {
			t.Fatal(err)
		}
		plan := Plan{Seed: 9, Faults: []Fault{
			// Delay (not drop) for the app to still converge: leanmd
			// tolerates late messages but not lost ones.
			{Kind: FaultDelay, At: 0, Until: 1, PE: -1, SrcPE: -1, Prob: 0.2, Delay: 3e-5},
			{Kind: FaultStraggler, At: 0, Until: 1, PE: 3, Factor: 0.4},
		}}
		ctrl, err := Enable(rt, plan, Options{})
		if err != nil {
			t.Fatal(err)
		}
		res, err := app.Run()
		if err != nil {
			t.Fatalf("run under delay/straggler faults: %v", err)
		}
		if ctrl.Err() != nil {
			t.Fatalf("controller error: %v", ctrl.Err())
		}
		return rt, res.Energy
	}
	rt1, e1 := run()
	rt2, e2 := run()
	if !floatsEqual(e1, e2) {
		t.Fatalf("same fault plan, different energies:\n%v\n%v", e1, e2)
	}
	if StateDigest(rt1) != StateDigest(rt2) {
		t.Fatal("same fault plan, different final state digests")
	}
}

// TestDropInjection: drops actually lose messages (counter advances) and
// the seeded filter is reproducible.
func TestDropInjection(t *testing.T) {
	count := func() uint64 {
		rt := charm.New(machine.New(machine.Testbed(4)))
		app, err := leanmd.New(rt, leanmd.Config{
			CellsX: 3, CellsY: 3, CellsZ: 3, AtomsPerCell: 8, Steps: 50, Seed: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		plan := Plan{Seed: 11, Faults: []Fault{
			{Kind: FaultDrop, At: 0, Until: 1e9, PE: -1, SrcPE: -1, Prob: 0.01},
		}}
		if _, err := Enable(rt, plan, Options{}); err != nil {
			t.Fatal(err)
		}
		app.Run() // the app stalls once a force message is lost; that's expected
		return rt.Stats.MsgsDropped
	}
	d1 := count()
	if d1 == 0 {
		t.Fatal("drop fault dropped nothing")
	}
	if d2 := count(); d2 != d1 {
		t.Fatalf("drop counts differ across identical runs: %d vs %d", d1, d2)
	}
}
