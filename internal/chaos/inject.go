package chaos

import (
	"math/rand"

	"charmgo/internal/charm"
	"charmgo/internal/des"
)

// injector arms a plan's faults on a runtime. Crashes and straggler
// windows become global engine events at their planned virtual instants;
// drop and delay windows become a charm.FaultFilter consulted on every
// transmit.
//
// Determinism: OnTransmit is called from commit context in global commit
// order, which is identical on all three backends, and the seeded RNG is
// consulted only when a window actually matches a message — so adding a
// fault window perturbs no random draw outside it.
type injector struct {
	ctrl  *Controller
	plan  Plan
	rng   *rand.Rand
	drops []Fault // drop/delay windows, plan order
}

func newInjector(c *Controller, plan Plan) *injector {
	inj := &injector{ctrl: c, plan: plan,
		rng: rand.New(rand.NewSource(plan.Seed*7919 + 13))}
	for _, f := range plan.Faults {
		if f.Kind == FaultDrop || f.Kind == FaultDelay {
			inj.drops = append(inj.drops, f)
		}
	}
	return inj
}

// arm schedules the plan's timed faults. Crash events are deliberately
// plain globals, not epoch-guarded: a fault is a physical event and must
// strike regardless of how many recoveries preceded it.
func (inj *injector) arm() {
	rt := inj.ctrl.rt
	eng := rt.Engine()
	mach := rt.Machine()
	for _, f := range inj.plan.Faults {
		f := f
		switch f.Kind {
		case FaultCrash:
			eng.At(des.Time(f.At), func() {
				if inj.ctrl.err != nil || rt.Exited() || rt.PEDead(f.PE) {
					return
				}
				inj.ctrl.noteCrash(f.PE)
			})
		case FaultWarn:
			// A predicted failure: the prediction is delivered at At and
			// the crash itself lands at Until. Between the two the
			// controller evacuates the doomed PE at the next quiescent
			// cut; the landing event decides absorb-vs-crash.
			eng.At(des.Time(f.At), func() { inj.ctrl.warnDelivered(f) })
			eng.At(des.Time(f.Until), func() { inj.ctrl.warnLands(f) })
		case FaultStraggler:
			eng.At(des.Time(f.At), func() {
				if inj.ctrl.err != nil || rt.Exited() || rt.PEDead(f.PE) {
					return
				}
				mach.SetInterference(f.PE, f.Factor)
				if h := rt.Trace(); h != nil {
					h.Fault(rt.Now(), "straggler", f.PE)
				}
			})
			eng.At(des.Time(f.Until), func() {
				if rt.Exited() || rt.PEDead(f.PE) {
					return
				}
				mach.SetInterference(f.PE, 0)
			})
		}
	}
	if len(inj.drops) > 0 {
		rt.SetFaultFilter(inj)
	}
}

// OnTransmit implements charm.FaultFilter: it is asked about every
// message handed to the network and decides, per matching window, whether
// to lose it or slow it down.
func (inj *injector) OnTransmit(srcPE, dstPE, size int, at des.Time) (bool, des.Time) {
	var extra des.Time
	for _, f := range inj.drops {
		if float64(at) < f.At || float64(at) >= f.Until {
			continue
		}
		if f.PE >= 0 && f.PE != dstPE {
			continue
		}
		if f.SrcPE >= 0 && f.SrcPE != srcPE {
			continue
		}
		if inj.rng.Float64() >= f.Prob {
			continue
		}
		if f.Kind == FaultDrop {
			return true, 0
		}
		extra += des.Time(f.Delay)
	}
	return false, extra
}

var _ charm.FaultFilter = (*injector)(nil)
