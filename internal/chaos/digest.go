package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"charmgo/internal/charm"
	"charmgo/internal/pup"
)

// StateDigest fingerprints the full application state: every element of
// every declared array, PUP-serialized, together with its placement.
// Arrays iterate in declaration order and elements in sorted index order,
// so the digest is deterministic across backends and runs.
//
// The digest deliberately covers placement (PEOf) but no timestamps:
// recovery is a rigid time-shift of the failure-free execution, so values
// and placement must match bit-for-bit while virtual clocks may not.
//
// The controller uses it twice: after a restore, to prove the rollback
// actually re-materialized the checkpointed bytes (recovery is enacted,
// not modeled), and at end of run, to prove a crashed run converged to
// the failure-free state.
func StateDigest(rt *charm.Runtime) string {
	h := sha256.New()
	for _, arr := range rt.Arrays() {
		fmt.Fprintf(h, "[%s]", arr.Name())
		for _, idx := range arr.Keys() {
			fmt.Fprintf(h, "|%v@%d:", idx, arr.PEOf(idx))
			h.Write(pup.Pack(arr.Get(idx)))
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
