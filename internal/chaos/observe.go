package chaos

import "charmgo/internal/des"

// Observer receives failure-handling milestones as they are committed:
// detection (the heartbeat round whose deadline expired with a missing
// ack) and the completion of the subsequent recovery. The telemetry layer
// implements it to measure detection→recovery wall time and to trigger a
// flight-recorder dump at the moment of detection — the postmortem window
// when the pre-crash decision history is still in the ring.
//
// Calls arrive from commit/global-event context, at positions identical on
// every backend. The observer is strictly side-band: nothing it does may
// influence recovery. A nil observer (the default) is a nil check.
type Observer interface {
	// FailureDetected reports PE pe detected dead at virtual time at,
	// before the recovery rollback is scheduled.
	FailureDetected(pe int, at des.Time)
	// Recovered reports the recovery for PE pe finished at virtual time
	// at (the replay kick instant). When a recovery healed several
	// overlapping failures, pe is the first of the set.
	Recovered(pe int, at des.Time)
	// Evacuated reports that every chare was proactively migrated off PE
	// pe at a quiescent cut, in response to a fault prediction.
	Evacuated(pe int, at des.Time)
	// Unrecoverable reports a terminal recovery failure (all replicas of
	// some shard lost, no checkpoint taken yet, or the restore-restart
	// budget exhausted) just before the engine stops. The telemetry
	// layer dumps the flight recorder here — the last look at the
	// decision history that led into the unsurvivable cascade.
	Unrecoverable(at des.Time, err error)
}

// SetObserver installs (or, with nil, removes) the failure observer.
// Install before Run.
func (c *Controller) SetObserver(o Observer) { c.obs = o }
