package chaos

import (
	"charmgo/internal/des"
)

// Detector defaults: rounds every 2 ms of virtual time, with a 1.5 ms
// ack deadline, so rounds never overlap and a crash is noticed at most
// one period plus one timeout (~3.5 ms) after it strikes.
const (
	DefaultHeartbeatPeriod  des.Time = 2e-3
	DefaultHeartbeatTimeout des.Time = 1.5e-3
)

// detector is a virtual-time heartbeat failure detector hosted on PE 0
// (plans never crash PE 0). Each round it pings every other PE with a
// shard-local probe; a live PE's commit schedules an ack back; a global
// deadline event then reports the first PE that failed to ack.
//
// No wall clock is consulted anywhere: pings, acks, and deadlines are all
// virtual-time events with latencies from the machine model, so detection
// is deterministic and identical on all three backends. The control messages
// themselves are modeled as zero-cost (they do not occupy PE compute
// time) — the idealization a dedicated monitoring thread would justify.
type detector struct {
	ctrl    *Controller
	period  des.Time
	timeout des.Time
	alpha   des.Time
	rounds  int
}

func newDetector(c *Controller, period, timeout des.Time) *detector {
	if period <= 0 {
		period = DefaultHeartbeatPeriod
	}
	if timeout <= 0 {
		timeout = DefaultHeartbeatTimeout
	}
	return &detector{ctrl: c, period: period, timeout: timeout,
		alpha: des.Time(c.rt.Machine().Config().Alpha)}
}

// globalAt schedules a global event no earlier than the engine's safe
// horizon. From a shard commit at tc the target tc+2α already clears the
// parallel backend's scheduling window, so the clamp is a safety net, and
// EngineHorizon is deterministic, so both backends agree on the instant.
func (d *detector) globalAt(t des.Time, fn func()) {
	if hz := des.EngineHorizon(d.ctrl.rt.Engine()); hz > t {
		t = hz
	}
	d.ctrl.rt.Engine().At(t, fn)
}

// start arms the first round one period into the run.
func (d *detector) start() {
	d.ctrl.rt.Engine().At(d.period, d.tick)
}

// tick runs one heartbeat round and schedules the next. The chain is
// persistent: it keeps observing through recoveries, which is what lets
// a crash landing mid-restore be detected and folded into the in-flight
// recovery instead of going unnoticed until the application resumes.
// The round's ack vector and epoch are captured per tick, so acks from a
// round that straddles a rollback write into an abandoned slice and its
// deadline no-ops on the epoch check.
func (d *detector) tick() {
	rt := d.ctrl.rt
	if rt.Exited() || d.ctrl.err != nil {
		return // chain ends; the engine may drain
	}
	d.rounds++
	eng := rt.Engine()
	mach := rt.Machine()
	now := rt.Now()
	n := rt.NumPEs()
	acks := make([]bool, n)
	epoch := rt.Epoch()

	const hbBytes = 16
	for pe := 1; pe < n; pe++ {
		pe := pe
		pingAt := now + maxTime(mach.NetDelay(0, pe, hbBytes), d.alpha)
		eng.AtShard(rt.ShardOf(pe), pingAt, func() func() {
			return func() {
				// A dead PE never acks; that silence is the signal.
				if rt.PEDead(pe) || d.ctrl.err != nil {
					return
				}
				ackAt := rt.Now() + maxTime(mach.NetDelay(pe, 0, hbBytes), 2*d.alpha)
				d.globalAt(ackAt, func() { acks[pe] = true })
			}
		})
	}

	d.globalAt(now+d.timeout, func() {
		if d.ctrl.err != nil || rt.Exited() || rt.Epoch() != epoch {
			return
		}
		for pe := 1; pe < n; pe++ {
			if !acks[pe] {
				d.ctrl.failureDetected(pe, rt.Now())
				return
			}
		}
	})

	eng.At(now+d.period, d.tick)
}

func maxTime(a, b des.Time) des.Time {
	if a > b {
		return a
	}
	return b
}
