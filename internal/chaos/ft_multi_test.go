package chaos

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"

	"charmgo/internal/ckpt"
)

// probeApp runs an app failure-free on the sequential backend.
func probeApp(t *testing.T, app string, seed int64, ro runOpts) *runResult {
	t.Helper()
	spec, err := specFor(app)
	if err != nil {
		t.Fatal(err)
	}
	res, err := spec.run("sequential", nil, seed, ro)
	if err != nil {
		t.Fatalf("%s probe: %v", app, err)
	}
	return res
}

// overlapPlan builds, for one app, a correlated double-crash plan: PE 2
// dies mid-run, and PE 3 — the nearest replica holder of PE 2's shard —
// dies while PE 2's restore is still in flight. The timing comes from a
// probe run with only the first crash, so the second lands inside the
// observed detection→resume window on every backend (the window is
// virtual time, identical across backends).
func overlapPlan(t *testing.T, app string, seed int64) Plan {
	t.Helper()
	spec, err := specFor(app)
	if err != nil {
		t.Fatal(err)
	}
	probe := probeApp(t, app, seed, runOpts{})
	first := 0.6 * probe.elapsed
	single := Plan{Seed: seed, Faults: []Fault{{Kind: FaultCrash, At: first, PE: 2}}}
	res, err := spec.run("sequential", &single, seed, runOpts{replication: 2})
	if err != nil {
		t.Fatalf("%s single-crash probe: %v", app, err)
	}
	if len(res.ctrl.Records) != 1 {
		t.Fatalf("%s single-crash probe: %d recoveries, want 1", app, len(res.ctrl.Records))
	}
	rec := res.ctrl.Records[0]
	// Aim a third of the way into the recovery window: late enough that
	// the first restore has been planned, early enough that heartbeat
	// rounds still have time to notice before the replay kick.
	second := rec.DetectedAt + 0.3*(rec.ResumedAt-rec.DetectedAt)
	if second <= rec.DetectedAt {
		t.Fatalf("%s: degenerate recovery window [%v,%v]", app, rec.DetectedAt, rec.ResumedAt)
	}
	return Plan{Seed: seed, Faults: []Fault{
		{Kind: FaultCrash, At: first, PE: 2},
		{Kind: FaultCrash, At: second, PE: 3},
	}}
}

// TestOverlappingCrashesReplicated is the headline degree-R invariant:
// with R=2, a PE and one of its replica holders crashing back to back —
// the second landing during the first's recovery — are both healed
// (restore restarted against the surviving replica set) and the run
// finishes byte-identical to the failure-free execution on all three
// backends. With R=1 the same plan is unsurvivable and must fail with
// the typed ErrAllReplicasLost, not hang or panic.
func TestOverlappingCrashesReplicated(t *testing.T) {
	for _, app := range Apps() {
		app := app
		t.Run(app, func(t *testing.T) {
			seed := int64(42)
			spec, err := specFor(app)
			if err != nil {
				t.Fatal(err)
			}
			plan := overlapPlan(t, app, seed)
			clean := probeApp(t, app, seed, runOpts{})
			for _, backend := range []string{"sequential", "parallel", "optimistic"} {
				res, err := spec.run(backend, &plan, seed, runOpts{replication: 2})
				if err != nil {
					t.Fatalf("%s/%s: R=2 overlap run failed: %v", app, backend, err)
				}
				if !floatsEqual(res.values, clean.values) {
					t.Errorf("%s/%s: values differ from failure-free run", app, backend)
				}
				if res.digest != clean.digest {
					t.Errorf("%s/%s: final digest differs from failure-free run", app, backend)
				}
				if got := res.ctrl.Survived(); got != 2 {
					t.Errorf("%s/%s: survived %d of 2 overlapping crashes", app, backend, got)
				}
				var restarts, fallbacks int
				for _, r := range res.ctrl.Records {
					restarts += r.Restarts
					fallbacks += r.Fallbacks
					if !r.DigestOK {
						t.Errorf("%s/%s: post-restore digest mismatch", app, backend)
					}
				}
				if restarts < 1 {
					t.Errorf("%s/%s: second crash did not restart the in-flight restore (restarts=0); plan %+v", app, backend, plan)
				}
				if fallbacks < 1 {
					t.Errorf("%s/%s: restore never fell back past a dead holder (fallbacks=0)", app, backend)
				}
			}
			// R=1: PE 3 was PE 2's only remote copy. Typed failure.
			if _, err := spec.run("sequential", &plan, seed, runOpts{replication: 1}); !errors.Is(err, ckpt.ErrAllReplicasLost) {
				t.Errorf("%s: R=1 overlap: want ErrAllReplicasLost, got %v", app, err)
			}
		})
	}
}

// TestWarnedCrashCostsZeroRollback: a fault prediction delivered with a
// checkpoint cut inside its window is absorbed by proactive evacuation —
// the crash lands on an empty PE, a standby takes its slot, and the run
// performs ZERO rollbacks (no recovery records, hence no epoch fences)
// while still finishing byte-identical to the failure-free run.
func TestWarnedCrashCostsZeroRollback(t *testing.T) {
	for _, app := range []string{"leanmd", "stencil", "pdes"} {
		app := app
		t.Run(app, func(t *testing.T) {
			b, err := RunCampaignOpts(app, 0, 1, 42, 0)
			if err != nil {
				t.Fatalf("%s warn campaign: %v", app, err)
			}
			for _, r := range b.Results {
				if r.Absorbed != 1 {
					t.Errorf("%s/%s: absorbed %d of 1 predicted crash; evacs %+v",
						app, r.Backend, r.Absorbed, r.Evacs)
				}
				if len(r.Records) != 0 {
					t.Errorf("%s/%s: %d rollback recoveries for a warned crash, want 0",
						app, r.Backend, len(r.Records))
				}
				if !r.ValuesMatch {
					t.Errorf("%s/%s: values differ from failure-free run", app, r.Backend)
				}
				if !r.DigestMatch {
					t.Errorf("%s/%s: final digest differs from failure-free run", app, r.Backend)
				}
				if r.Survived != 1 {
					t.Errorf("%s/%s: survived %d, want 1", app, r.Backend, r.Survived)
				}
				// On apps with a balancer (leanmd, stencil) the LB round at
				// the cut re-places the doomed PE's objects itself — LBView
				// filters evacuating PEs — so the controller's explicit
				// migration finds nothing left and Moved is 0. PDES has no
				// balancer: there the PUP evacuation must do the moving.
				if app == "pdes" {
					for _, e := range r.Evacs {
						if e.Moved == 0 || e.Bytes == 0 {
							t.Errorf("%s/%s: evacuation moved nothing: %+v", app, r.Backend, e)
						}
					}
				}
				if r.ChaosElapsed <= r.CleanElapsed {
					t.Errorf("%s/%s: evacuation and standby boot cost nothing (%v <= %v)",
						app, r.Backend, r.ChaosElapsed, r.CleanElapsed)
				}
			}
			if !b.CrossBackendMatch {
				t.Errorf("%s: backends disagree under a warned crash", app)
			}
		})
	}
}

// TestWarnDegradesToCrash: a prediction whose window contains no
// checkpoint cut cannot evacuate; the crash lands on a populated PE and
// is healed by the ordinary detect-and-rollback path. Values still match
// the failure-free run.
func TestWarnDegradesToCrash(t *testing.T) {
	spec, err := specFor("leanmd")
	if err != nil {
		t.Fatal(err)
	}
	clean := probeApp(t, "leanmd", 42, runOpts{})
	at := 0.6 * clean.elapsed
	// 20 µs of lead: far less than the gap between checkpoint cuts.
	plan := Plan{Seed: 42, Faults: []Fault{
		{Kind: FaultWarn, At: at, PE: 2, Until: at + 2e-5},
	}}
	res, err := spec.run("sequential", &plan, 42, runOpts{})
	if err != nil {
		t.Fatalf("degraded warn run: %v", err)
	}
	if len(res.ctrl.Records) != 1 {
		t.Fatalf("want 1 rollback recovery for the degraded warn, got %d", len(res.ctrl.Records))
	}
	if len(res.ctrl.Evacs) != 1 || res.ctrl.Evacs[0].Absorbed {
		t.Fatalf("want one non-absorbed evac record, got %+v", res.ctrl.Evacs)
	}
	if !floatsEqual(res.values, clean.values) {
		t.Error("values differ from failure-free run after degraded warn")
	}
}

// TestReplicationDegreeInvariant: the replication degree R changes cost,
// never outcome — the same crash plan at R=1,2,3 produces identical
// final values and digests, and checkpoints get strictly more expensive
// with each extra copy.
func TestReplicationDegreeInvariant(t *testing.T) {
	spec, err := specFor("stencil")
	if err != nil {
		t.Fatal(err)
	}
	probe := probeApp(t, "stencil", 7, runOpts{})
	plan := CrashPlan(7, 2, 8, 0.45*probe.elapsed, 0.95*probe.elapsed)
	var prev *runResult
	var prevR int
	for _, r := range []int{1, 2, 3} {
		res, err := spec.run("sequential", &plan, 7, runOpts{replication: r})
		if err != nil {
			t.Fatalf("R=%d: %v", r, err)
		}
		if !floatsEqual(res.values, probe.values) {
			t.Errorf("R=%d: values differ from failure-free run", r)
		}
		if res.digest != probe.digest {
			t.Errorf("R=%d: digest differs from failure-free run", r)
		}
		if prev != nil && res.elapsed <= prev.elapsed {
			t.Errorf("R=%d elapsed %v not above R=%d elapsed %v: extra replica streams cost nothing",
				r, res.elapsed, prevR, prev.elapsed)
		}
		prev, prevR = res, r
	}
}

// fuzzSoak is the seeded-campaign soak shared by the test below and the
// native fuzz harness: run one adversarial plan and check the invariant
// that every outcome is either byte-identical success or a typed error.
func fuzzSoak(t *testing.T, app string, seed int64, crossBackend bool) {
	t.Helper()
	spec, err := specFor(app)
	if err != nil {
		t.Fatal(err)
	}
	clean := probeApp(t, app, seed, runOpts{})
	plan := FuzzPlan(seed, spec.numPEs, 0.3*clean.elapsed, 0.9*clean.elapsed)
	if len(plan.Faults) == 0 {
		return
	}
	if err := plan.Validate(spec.numPEs); err != nil {
		t.Fatalf("seed %d: generated invalid plan: %v", seed, err)
	}
	// R=2 so correlated pairs are survivable in principle; tight pairs
	// may still exhaust replicas, which must surface as a typed error.
	ro := runOpts{replication: 2}
	res, err := spec.run("sequential", &plan, seed, ro)
	if err != nil {
		if !errors.Is(err, ckpt.ErrAllReplicasLost) &&
			!errors.Is(err, ckpt.ErrNoCheckpoint) &&
			!errors.Is(err, ErrRetryBudgetExhausted) {
			t.Fatalf("seed %d: untyped campaign failure: %v\nplan: %+v", seed, err, plan)
		}
		return // unrecoverable, but honestly so
	}
	if !floatsEqual(res.values, clean.values) {
		t.Errorf("seed %d: survived but values differ from failure-free run\nplan: %+v", seed, plan)
	}
	// Placement (and so the digest) is only required to re-converge when
	// no warn perturbed it: a prediction landing near the finish line may
	// leave evacuees legally displaced (values above still matched).
	if plan.Warns() == 0 && res.digest != clean.digest {
		t.Errorf("seed %d: survived but digest differs from failure-free run\nplan: %+v", seed, plan)
	}
	if !crossBackend {
		return
	}
	for _, backend := range []string{"parallel", "optimistic"} {
		other, err := spec.run(backend, &plan, seed, ro)
		if err != nil {
			t.Fatalf("seed %d: sequential survived but %s failed: %v\nplan: %+v", seed, backend, err, plan)
		}
		if other.digest != res.digest {
			t.Errorf("seed %d: %s digest differs from sequential\nplan: %+v", seed, backend, plan)
		}
	}
}

// FuzzPlanDigest is the go-fuzz entry point over the same invariant:
// `go test -fuzz=FuzzPlanDigest ./internal/chaos/` explores seeds beyond
// the soak batch; every mutated seed must either finish byte-identical
// to the failure-free run or fail with a typed recovery error.
func FuzzPlanDigest(f *testing.F) {
	for _, s := range []int64{1, 42, 1337} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		apps := Apps()
		fuzzSoak(t, apps[int(uint64(seed)%uint64(len(apps)))], seed, false)
	})
}

// TestFuzzCampaignSoak replays a batch of seeded adversarial plans —
// crashes, predictions, and correlated crash pairs in every interleaving
// the generator can reach — against all three apps. CHARMGO_CHAOS_SOAK
// overrides the batch size (scripts/check.sh runs a large soak).
func TestFuzzCampaignSoak(t *testing.T) {
	n := 12
	if testing.Short() {
		n = 4
	}
	if env := os.Getenv("CHARMGO_CHAOS_SOAK"); env != "" {
		v, err := strconv.Atoi(env)
		if err != nil || v <= 0 {
			t.Fatalf("bad CHARMGO_CHAOS_SOAK %q", env)
		}
		n = v
	}
	apps := Apps()
	for i := 0; i < n; i++ {
		seed := int64(1000 + i)
		app := apps[i%len(apps)]
		t.Run(fmt.Sprintf("%s/seed%d", app, seed), func(t *testing.T) {
			// Every 4th plan also cross-checks the parallel backends.
			fuzzSoak(t, app, seed, i%4 == 0)
		})
	}
}
