package chaos

import (
	"fmt"

	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/des"
)

// Options configures the fault-tolerance controller.
type Options struct {
	// CheckpointEveryRounds takes a checkpoint at every Nth load-balancing
	// resume point (the natural quiescent cut of AtSync applications).
	// Zero disables automatic checkpointing; the driver then calls
	// CheckpointNow itself at its own quiescent cuts (as PDES does at
	// window boundaries).
	CheckpointEveryRounds int
	// HeartbeatPeriod and HeartbeatTimeout tune the failure detector;
	// zero means the defaults.
	HeartbeatPeriod  des.Time
	HeartbeatTimeout des.Time
	// Restart replays the checkpoint cut's kick after a rollback. Nil
	// falls back to re-enqueueing every AtSync element's resume entry —
	// correct for applications checkpointing at LB resume points.
	Restart func()
	// OnCheckpoint snapshots driver-side state (step counters, result
	// accumulators) paired with the chare checkpoint. It is NOT called
	// when a checkpoint is skipped, so the driver snapshot always matches
	// the chare snapshot that rollback will restore.
	OnCheckpoint func()
	// OnRollback restores the driver-side state saved by OnCheckpoint,
	// discarding results appended during the segment being rolled back.
	OnRollback func()
}

// RecoveryStat records one detected-and-recovered failure, in virtual
// seconds.
type RecoveryStat struct {
	PE          int     `json:"pe"`
	CrashAt     float64 `json:"crash_at"`
	DetectedAt  float64 `json:"detected_at"`
	RestoredAt  float64 `json:"restored_at"`
	ResumedAt   float64 `json:"resumed_at"`
	RestartCost float64 `json:"restart_cost"`
	// DigestOK asserts that the post-rollback state digest equals the
	// checkpoint's digest: the restore re-materialized the checkpointed
	// bytes, it did not merely advance a clock.
	DigestOK bool `json:"digest_ok"`
}

// DetectionLatency is how long the failure went unnoticed.
func (r RecoveryStat) DetectionLatency() float64 { return r.DetectedAt - r.CrashAt }

// RecoveryTime spans first notice to the application running again.
func (r RecoveryStat) RecoveryTime() float64 { return r.ResumedAt - r.DetectedAt }

// Controller owns the full fault-tolerance loop: it checkpoints at
// quiescent cuts, listens to the heartbeat detector, and on a detected
// failure performs a real rollback — PUP-restoring every chare from the
// double in-memory checkpoint, fencing the corrupted segment's messages
// by epoch, and replaying from the cut. Because the cut is quiescent,
// the replay is a rigid time-shift of the failure-free execution and the
// application's final values are bit-identical to a run with no faults.
type Controller struct {
	rt   *charm.Runtime
	mem  *ckpt.Mem
	opts Options
	det  *detector
	inj  *injector

	locSnap    *charm.LocCacheSnapshot
	ckptDigest string
	haveCkpt   bool
	recovering bool
	err        error
	crashAt    map[int]float64
	obs        Observer

	// Records lists every survived failure, in detection order.
	Records []RecoveryStat
}

// Enable arms a fault plan and the recovery machinery on a runtime. Call
// after declaring arrays and before Run.
func Enable(rt *charm.Runtime, plan Plan, opts Options) (*Controller, error) {
	if err := plan.Validate(rt.NumPEs()); err != nil {
		return nil, err
	}
	c := &Controller{rt: rt, mem: ckpt.NewMem(rt), opts: opts,
		crashAt: map[int]float64{}}
	c.inj = newInjector(c, plan)
	c.det = newDetector(c, opts.HeartbeatPeriod, opts.HeartbeatTimeout)
	rt.SetLBResumeHook(c.onLBResume)
	c.inj.arm()
	// The heartbeat chain keeps the engine alive until the app exits, so
	// it is only armed when the plan can actually kill someone; a
	// drop-only plan that stalls the app should drain and be diagnosed,
	// not heartbeat forever.
	if plan.Crashes() > 0 {
		c.det.start()
	}
	return c, nil
}

// Mem exposes the double in-memory checkpointer (for inspection tools).
func (c *Controller) Mem() *ckpt.Mem { return c.mem }

// Err reports the terminal error that aborted recovery, if any.
func (c *Controller) Err() error { return c.err }

// Survived returns the number of failures detected and recovered from.
func (c *Controller) Survived() int {
	if c.err != nil {
		return 0
	}
	return len(c.Records)
}

func (c *Controller) anyDead() bool {
	for pe := 0; pe < c.rt.NumPEs(); pe++ {
		if c.rt.PEDead(pe) {
			return true
		}
	}
	return false
}

// CheckpointNow takes a double in-memory checkpoint at the current
// instant, which must be a quiescent cut (no application messages in
// flight). It stalls every PE for the checkpoint's modeled duration and
// returns that duration.
//
// If a PE is already dead — the failure struck but the detector has not
// fired yet — or a recovery is in progress, the checkpoint is SKIPPED
// (returns 0): capturing the stalled, partially-corrupted state would
// poison the next rollback. OnCheckpoint is skipped too, keeping the
// driver snapshot paired with the last good chare snapshot.
func (c *Controller) CheckpointNow() des.Time {
	if c.recovering || c.err != nil || c.anyDead() {
		return 0
	}
	dur := c.mem.Checkpoint()
	c.locSnap = c.rt.SnapshotLocCaches()
	if c.opts.OnCheckpoint != nil {
		c.opts.OnCheckpoint()
	}
	c.ckptDigest = StateDigest(c.rt)
	c.haveCkpt = true
	c.rt.StallActivePEs(c.rt.MaxBusy() + dur)
	return dur
}

// onLBResume is the runtime's LB-resume hook: the resume point is
// quiescent, so it is where AtSync applications checkpoint.
func (c *Controller) onLBResume(round int) des.Time {
	if c.opts.CheckpointEveryRounds <= 0 {
		return 0
	}
	if round%c.opts.CheckpointEveryRounds != 0 {
		return 0
	}
	c.CheckpointNow() // applies its own stall
	return 0
}

// failureDetected runs in the detector's deadline event. It latches the
// recovering flag immediately so an overlapping round cannot double-fire,
// then hands off to recover.
func (c *Controller) failureDetected(pe int, at des.Time) {
	if c.recovering || c.err != nil {
		return
	}
	c.recovering = true
	c.det.paused = true
	c.rt.Metrics().Counter("chaos.detections").Inc()
	if h := c.rt.Trace(); h != nil {
		h.Fault(at, "detect", pe)
	}
	if c.obs != nil {
		c.obs.FailureDetected(pe, at)
	}
	c.det.globalAt(at+2*c.det.alpha, func() { c.recover(pe, float64(at)) })
}

// recover performs the rollback: epoch fence, PUP restore from the buddy
// checkpoint, location-cache restore, driver-state rollback, digest
// assertion, and a stall covering the modeled restart cost before the
// replay kick.
func (c *Controller) recover(pe int, detectedAt float64) {
	rt := c.rt
	if !c.haveCkpt {
		c.fail(fmt.Errorf("chaos: cannot recover PE %d: %w", pe, ckpt.ErrNoCheckpoint))
		return
	}
	// Check the buddy before reviving PEs: if the sole holder of the
	// failed PE's checkpoint copy is dead too, the data is gone.
	if rt.PEDead(c.mem.Buddy(pe)) {
		c.fail(fmt.Errorf("chaos: cannot recover PE %d: %w", pe, ckpt.ErrBuddyFailed))
		return
	}
	rt.RecoverReset() // epoch++, revive PEs, drop queues/reductions/QD
	dur, err := c.mem.StartRecovery(pe)
	if err != nil {
		c.fail(fmt.Errorf("chaos: recover PE %d: %w", pe, err))
		return
	}
	rt.RestoreLocCaches(c.locSnap)
	if c.opts.OnRollback != nil {
		c.opts.OnRollback()
	}
	digestOK := StateDigest(rt) == c.ckptDigest
	if !digestOK {
		rt.Metrics().Counter("chaos.digest_mismatches").Inc()
	}
	kick := rt.MaxBusy() + dur
	rt.StallActivePEs(kick)
	c.Records = append(c.Records, RecoveryStat{
		PE: pe, CrashAt: c.crashAt[pe], DetectedAt: detectedAt,
		RestoredAt: float64(rt.Now()), ResumedAt: float64(kick),
		RestartCost: float64(dur), DigestOK: digestOK,
	})
	rt.Engine().At(kick, func() {
		c.mem.FinishRecovery()
		c.recovering = false
		rt.Metrics().Counter("chaos.recoveries").Inc()
		if h := rt.Trace(); h != nil {
			h.Fault(rt.Now(), "recover", pe)
		}
		if c.obs != nil {
			c.obs.Recovered(pe, rt.Now())
		}
		c.det.resume(rt.Now())
		if c.opts.Restart != nil {
			c.opts.Restart()
		} else {
			rt.ResumeRestoredElements()
		}
	})
}

// fail latches a terminal error and stops the engine: the application is
// stalled with no way forward, so letting the run spin would hang it.
func (c *Controller) fail(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	c.rt.Engine().Stop()
}
