package chaos

import (
	"errors"
	"fmt"
	"sort"

	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/des"
	"charmgo/internal/malleable"
)

// ErrRetryBudgetExhausted: failures kept landing on in-flight restores
// until the controller's restart budget ran out. The campaign is declared
// unrecoverable rather than looping forever on a machine that is dying
// faster than it can be healed.
var ErrRetryBudgetExhausted = errors.New("chaos: recovery restart budget exhausted")

// DefaultReplacementBoot is the modeled cost of wiring a hot standby
// process into a fully evacuated PE's slot when a predicted failure lands.
const DefaultReplacementBoot des.Time = 1e-4

// Options configures the fault-tolerance controller.
type Options struct {
	// CheckpointEveryRounds takes a checkpoint at every Nth load-balancing
	// resume point (the natural quiescent cut of AtSync applications).
	// Zero disables automatic checkpointing; the driver then calls
	// CheckpointNow itself at its own quiescent cuts (as PDES does at
	// window boundaries).
	CheckpointEveryRounds int
	// HeartbeatPeriod and HeartbeatTimeout tune the failure detector;
	// zero means the defaults.
	HeartbeatPeriod  des.Time
	HeartbeatTimeout des.Time
	// Replication is the checkpoint replication degree R — how many
	// remote copies of each PE's shard the in-memory scheme keeps. Zero
	// means 1, the classic double (buddy) scheme. Raising R lets up to R
	// overlapping failures converge at R times the checkpoint memory and
	// stream cost.
	Replication int
	// MaxRecoveryRestarts caps how many times an in-flight restore may be
	// restarted by further failures before the campaign is declared
	// unrecoverable (ErrRetryBudgetExhausted). Zero means 2R+2.
	MaxRecoveryRestarts int
	// ReplacementBoot is the modeled stall of wiring a standby process
	// into a fully evacuated PE's slot when its predicted failure lands.
	// Zero means DefaultReplacementBoot; negative means free.
	ReplacementBoot des.Time
	// EvacModel prices proactive evacuation (nil: the malleable layer's
	// default shrink/expand cost model).
	EvacModel *malleable.CostModel
	// Restart replays the checkpoint cut's kick after a rollback. Nil
	// falls back to re-enqueueing every AtSync element's resume entry —
	// correct for applications checkpointing at LB resume points.
	Restart func()
	// OnCheckpoint snapshots driver-side state (step counters, result
	// accumulators) paired with the chare checkpoint. It is NOT called
	// when a checkpoint is skipped, so the driver snapshot always matches
	// the chare snapshot that rollback will restore.
	OnCheckpoint func()
	// OnRollback restores the driver-side state saved by OnCheckpoint,
	// discarding results appended during the segment being rolled back.
	OnRollback func()
}

// RecoveryStat records one completed recovery, in virtual seconds. A
// single recovery heals every failure that landed before its restore
// finished: overlapping crashes restart the restore against the surviving
// replica set rather than starting a second recovery, so one record may
// cover several PEs.
type RecoveryStat struct {
	// PE is the first failed PE (kept from the single-failure schema);
	// PEs lists every PE this recovery healed, sorted.
	PE  int   `json:"pe"`
	PEs []int `json:"pes"`
	// Restarts counts restore attempts abandoned because another failure
	// landed mid-restore; zero for an uncontested recovery.
	Restarts int `json:"restarts,omitempty"`
	// Fallbacks counts replica holders skipped (dead or copy lost) when
	// choosing restore sources — nonzero only when R > 1 saved the run.
	Fallbacks   int     `json:"fallbacks,omitempty"`
	CrashAt     float64 `json:"crash_at"`
	DetectedAt  float64 `json:"detected_at"`
	RestoredAt  float64 `json:"restored_at"`
	ResumedAt   float64 `json:"resumed_at"`
	RestartCost float64 `json:"restart_cost"`
	// DigestOK asserts that the post-rollback state digest equals the
	// checkpoint's digest: the restore re-materialized the checkpointed
	// bytes, it did not merely advance a clock.
	DigestOK bool `json:"digest_ok"`
}

// DetectionLatency is how long the first failure went unnoticed.
func (r RecoveryStat) DetectionLatency() float64 { return r.DetectedAt - r.CrashAt }

// RecoveryTime spans first notice to the application running again.
func (r RecoveryStat) RecoveryTime() float64 { return r.ResumedAt - r.DetectedAt }

// EvacRecord records the outcome of one warn (predicted failure) fault.
type EvacRecord struct {
	PE          int     `json:"pe"`
	WarnedAt    float64 `json:"warned_at"`
	EvacuatedAt float64 `json:"evacuated_at,omitempty"`
	LandedAt    float64 `json:"landed_at"`
	// Moved and Bytes size the evacuation; EvacCost and BootCost are the
	// modeled stalls it charged.
	Moved    int     `json:"moved"`
	Bytes    int64   `json:"bytes"`
	EvacCost float64 `json:"evac_cost"`
	BootCost float64 `json:"boot_cost"`
	// Absorbed: the PE was fully evacuated when the crash landed, so a
	// standby took its slot with zero rollback. False means the
	// prediction outran the evacuation window and the crash was handled
	// by the ordinary detect-and-rollback path.
	Absorbed bool `json:"absorbed"`
}

// warnState tracks one delivered fault prediction until it resolves.
type warnState struct {
	f         Fault
	warnedAt  float64
	evacuated bool
	landed    bool
	rec       EvacRecord
	// moves remembers where each evacuated element went so the controller
	// can migrate them back to the replacement PE if no load-balancing
	// round re-places them first (applications without a balancer).
	moves   []charm.Migration
	lbRound int
}

// Controller owns the full fault-tolerance loop: it checkpoints at
// quiescent cuts, listens to the heartbeat detector, and on a detected
// failure performs a real rollback — PUP-restoring every chare from the
// degree-R in-memory checkpoint, fencing the corrupted segment's messages
// by epoch, and replaying from the cut. Because the cut is quiescent,
// the replay is a rigid time-shift of the failure-free execution and the
// application's final values are bit-identical to a run with no faults.
//
// Beyond the single-failure loop it handles:
//
//   - overlapping failures: the heartbeat keeps observing during recovery;
//     a crash landing mid-restore restarts the restore against the
//     surviving replica set (capped by MaxRecoveryRestarts), so cascades
//     of up to R overlapping crashes converge;
//   - predicted failures: a warn fault marks its PE doomed; at the next
//     quiescent cut every chare is migrated off it and its replica slots
//     are retargeted, so the crash lands on an empty PE and costs zero
//     rollback.
type Controller struct {
	rt        *charm.Runtime
	mem       *ckpt.Mem
	opts      Options
	det       *detector
	inj       *injector
	evacModel malleable.CostModel

	locSnap    *charm.LocCacheSnapshot
	ckptDigest string
	haveCkpt   bool

	// One recovery in flight at a time; nested failures extend it.
	recovering      bool
	failed          []int // sorted set of PEs the in-flight recovery heals
	restarts        int
	fallbacks       int
	recGen          int // invalidates stale restore/finish events
	firstDetectedAt float64
	lastRestoredAt  float64
	restartCost     float64
	digestOK        bool

	warns   []*warnState
	err     error
	crashAt map[int]float64
	obs     Observer

	// Records lists every completed recovery, in completion order; Evacs
	// every resolved fault prediction, in landing order.
	Records []RecoveryStat
	Evacs   []EvacRecord
}

// Enable arms a fault plan and the recovery machinery on a runtime. Call
// after declaring arrays and before Run.
func Enable(rt *charm.Runtime, plan Plan, opts Options) (*Controller, error) {
	if err := plan.Validate(rt.NumPEs()); err != nil {
		return nil, err
	}
	c := &Controller{rt: rt, mem: ckpt.NewMem(rt), opts: opts,
		crashAt: map[int]float64{}, evacModel: malleable.DefaultCostModel()}
	if opts.EvacModel != nil {
		c.evacModel = *opts.EvacModel
	}
	if opts.Replication > 0 {
		c.mem.SetDegree(opts.Replication)
	}
	c.inj = newInjector(c, plan)
	c.det = newDetector(c, opts.HeartbeatPeriod, opts.HeartbeatTimeout)
	rt.SetLBResumeHook(c.onLBResume)
	c.inj.arm()
	// The heartbeat chain keeps the engine alive until the app exits, so
	// it is only armed when the plan can actually kill someone; a
	// drop-only plan that stalls the app should drain and be diagnosed,
	// not heartbeat forever. Warns count: an unevacuated prediction
	// degrades to a crash that must be detected.
	if plan.Crashes()+plan.Warns() > 0 {
		c.det.start()
	}
	return c, nil
}

// Mem exposes the in-memory checkpointer (for inspection tools).
func (c *Controller) Mem() *ckpt.Mem { return c.mem }

// Err reports the terminal error that aborted recovery, if any.
func (c *Controller) Err() error { return c.err }

// Survived returns the number of failures healed: PEs restored by
// completed recoveries plus predicted crashes absorbed by evacuation.
func (c *Controller) Survived() int {
	if c.err != nil {
		return 0
	}
	n := 0
	for _, r := range c.Records {
		n += len(r.PEs)
	}
	for _, e := range c.Evacs {
		if e.Absorbed {
			n++
		}
	}
	return n
}

// PendingDisturbance reports whether a fault prediction is still
// perturbing placement at the current instant: a warn delivered but not
// yet resolved, or an absorbed crash whose evacuees have not been
// re-placed (by a balancer round or migrated back at a quiescent cut).
// While true, the run's placement — and therefore its state digest — may
// legitimately differ from a failure-free run's; final values still
// match.
func (c *Controller) PendingDisturbance() bool { return len(c.warns) > 0 }

func (c *Controller) maxRestarts() int {
	if c.opts.MaxRecoveryRestarts > 0 {
		return c.opts.MaxRecoveryRestarts
	}
	return 2*c.mem.Degree() + 2
}

func (c *Controller) bootCost() des.Time {
	if c.opts.ReplacementBoot < 0 {
		return 0
	}
	if c.opts.ReplacementBoot == 0 {
		return DefaultReplacementBoot
	}
	return c.opts.ReplacementBoot
}

func (c *Controller) anyDead() bool {
	for pe := 0; pe < c.rt.NumPEs(); pe++ {
		if c.rt.PEDead(pe) {
			return true
		}
	}
	return false
}

// noteCrash is the single bookkeeping point for a physical PE death: the
// crash instant is recorded for the eventual RecoveryStat, the checkpoint
// layer learns that the PE's resident replica copies are gone, and the
// runtime kills the PE. Runs inside the global event that is the crash.
func (c *Controller) noteCrash(pe int) {
	c.crashAt[pe] = float64(c.rt.Now())
	c.mem.NoteFailure(pe)
	c.rt.CrashPE(pe)
}

// CheckpointNow takes a degree-R in-memory checkpoint at the current
// instant, which must be a quiescent cut (no application messages in
// flight). It stalls every PE for the checkpoint's modeled duration and
// returns the total stall applied (checkpoint plus any evacuation or
// heal work performed at the same cut).
//
// If a PE is already dead — the failure struck but the detector has not
// fired yet — or a recovery is in progress, the cut is SKIPPED (returns
// 0): capturing the stalled, partially-corrupted state would poison the
// next rollback. OnCheckpoint is skipped too, keeping the driver snapshot
// paired with the last good chare snapshot.
//
// The cut is also where fault predictions are acted on: pending warns
// evacuate their doomed PEs (before the capture, so the checkpoint and
// its replica holder sets reflect the post-evacuation world), and
// absorbed crashes whose evacuees were not re-placed by a balancer round
// get them migrated back.
func (c *Controller) CheckpointNow() des.Time {
	if c.recovering || c.err != nil || c.anyDead() {
		return 0
	}
	extra := c.healAbsorbed()
	extra += c.evacuateDueWarns()
	dur := c.mem.Checkpoint()
	c.locSnap = c.rt.SnapshotLocCaches()
	if c.opts.OnCheckpoint != nil {
		c.opts.OnCheckpoint()
	}
	c.ckptDigest = StateDigest(c.rt)
	c.haveCkpt = true
	c.rt.StallActivePEs(c.rt.MaxBusy() + dur)
	return dur + extra
}

// onLBResume is the runtime's LB-resume hook: the resume point is
// quiescent, so it is where AtSync applications checkpoint.
func (c *Controller) onLBResume(round int) des.Time {
	if c.opts.CheckpointEveryRounds <= 0 {
		return 0
	}
	if round%c.opts.CheckpointEveryRounds != 0 {
		return 0
	}
	c.CheckpointNow() // applies its own stall
	return 0
}

// evacDests lists the PEs an evacuation may target: ring successors of pe
// that are alive and not themselves predicted to fail, in ring order (the
// same order the replica mapping uses).
func (c *Controller) evacDests(pe int) []int {
	n := c.rt.NumPEs()
	var out []int
	for i := 1; i < n; i++ {
		h := (pe + i) % n
		if c.rt.PEDead(h) || c.rt.PEEvacuating(h) {
			continue
		}
		out = append(out, h)
	}
	return out
}

// evacuateDueWarns drains every pending prediction at a quiescent cut:
// all chares leave the doomed PE through the PUP migration path
// (round-robin over the live ring successors) and the modeled evacuation
// cost is applied as a global stall. Returns the total stall.
func (c *Controller) evacuateDueWarns() des.Time {
	var total des.Time
	for _, w := range c.warns {
		if w.evacuated || w.landed {
			continue
		}
		dests := c.evacDests(w.f.PE)
		if len(dests) == 0 {
			continue // no live target; the prediction will land as a crash
		}
		moves, bytes, dur := malleable.EvacuatePE(c.rt, w.f.PE, dests, c.evacModel)
		w.moves = moves
		w.evacuated = true
		w.lbRound = c.rt.LBRounds()
		w.rec.EvacuatedAt = float64(c.rt.Now())
		w.rec.Moved = len(moves)
		w.rec.Bytes = bytes
		w.rec.EvacCost = float64(dur)
		total += dur
		c.rt.Metrics().Counter("chaos.evacuations").Inc()
		if h := c.rt.Trace(); h != nil {
			h.Fault(c.rt.Now(), "evacuate", w.f.PE)
		}
		if c.obs != nil {
			c.obs.Evacuated(w.f.PE, c.rt.Now())
		}
	}
	return total
}

// healAbsorbed resolves landed predictions at a quiescent cut. If a
// load-balancing round already ran since the evacuation, the (stateless)
// strategy has re-placed the evacuees and placement has re-converged;
// otherwise the evacuated elements are migrated back to the replacement
// PE now. Either way the warn stops being tracked.
func (c *Controller) healAbsorbed() des.Time {
	var total des.Time
	kept := c.warns[:0]
	for _, w := range c.warns {
		if !w.landed {
			kept = append(kept, w)
			continue
		}
		if w.rec.Absorbed && c.rt.LBRounds() == w.lbRound {
			for i := range w.moves {
				w.moves[i].ToPE = w.f.PE
			}
			start := c.rt.MaxBusy()
			_, bytes := c.rt.ApplyMigrations(w.moves)
			dur := c.evacModel.EvacuationCost(bytes)
			c.rt.StallActivePEs(start + dur)
			total += dur
		}
	}
	c.warns = kept
	return total
}

// warnDelivered runs at a warn fault's prediction instant: the PE is
// marked doomed (excluded from future replica holder sets and from
// load-balancing targets) and the evacuation is left for the next
// quiescent cut.
func (c *Controller) warnDelivered(f Fault) {
	rt := c.rt
	if c.err != nil || rt.Exited() || rt.PEDead(f.PE) || rt.PEEvacuating(f.PE) {
		return
	}
	c.warns = append(c.warns, &warnState{f: f, warnedAt: float64(rt.Now()),
		rec: EvacRecord{PE: f.PE, WarnedAt: float64(rt.Now())}})
	c.mem.Doom(f.PE, true)
	rt.SetPEEvacuating(f.PE, true)
	rt.Metrics().Counter("chaos.warnings").Inc()
	if h := rt.Trace(); h != nil {
		h.Fault(rt.Now(), "warn", f.PE)
	}
}

// warnLands runs at a warn fault's predicted crash instant. A fully
// evacuated PE dies empty: a hot standby takes its slot inside the same
// global event, charged as a uniform boot stall — zero rollback, zero
// epochs, nothing for the detector to find. A PE that still hosts
// elements (the prediction outran the evacuation window, or a recovery
// is in flight) dies for real and takes the ordinary rollback path.
func (c *Controller) warnLands(f Fault) {
	rt := c.rt
	if c.err != nil || rt.Exited() {
		return
	}
	var w *warnState
	for _, x := range c.warns {
		if !x.landed && x.f.PE == f.PE && x.f.At == f.At {
			w = x
			break
		}
	}
	if w == nil {
		return
	}
	w.landed = true
	rt.SetPEEvacuating(f.PE, false)
	c.mem.Doom(f.PE, false)
	// The node dies either way: its resident checkpoint copies are gone.
	c.mem.NoteFailure(f.PE)
	w.rec.LandedAt = float64(rt.Now())
	if w.evacuated && !c.recovering && !rt.PEDead(f.PE) && rt.ElementsOn(f.PE) == 0 {
		boot := c.bootCost()
		rt.StallActivePEs(rt.MaxBusy() + boot)
		w.rec.Absorbed = true
		w.rec.BootCost = float64(boot)
		rt.Metrics().Counter("chaos.crashes_absorbed").Inc()
		if h := rt.Trace(); h != nil {
			h.Fault(rt.Now(), "crash", f.PE)
			h.Fault(rt.Now(), "replace", f.PE)
		}
	} else if !rt.PEDead(f.PE) {
		c.noteCrash(f.PE)
	}
	c.Evacs = append(c.Evacs, w.rec)
	if !w.rec.Absorbed {
		// Nothing left to heal; stop tracking now.
		c.dropWarn(w)
	}
}

func (c *Controller) dropWarn(w *warnState) {
	kept := c.warns[:0]
	for _, x := range c.warns {
		if x != w {
			kept = append(kept, x)
		}
	}
	c.warns = kept
}

func (c *Controller) inFailed(pe int) bool {
	for _, p := range c.failed {
		if p == pe {
			return true
		}
	}
	return false
}

func (c *Controller) addFailed(pe int) {
	if c.inFailed(pe) {
		return
	}
	c.failed = append(c.failed, pe)
	sort.Ints(c.failed)
}

// failureDetected runs in the detector's deadline event. The first
// detection of a cascade opens a recovery; detections landing while a
// restore is in flight extend its failed set and restart the restore
// against the surviving replicas, within the restart budget.
func (c *Controller) failureDetected(pe int, at des.Time) {
	rt := c.rt
	if c.err != nil || rt.Exited() || !rt.PEDead(pe) {
		return
	}
	if c.recovering {
		if c.inFailed(pe) {
			return
		}
		c.addFailed(pe)
		c.restarts++
		rt.Metrics().Counter("chaos.nested_recoveries").Inc()
		if h := rt.Trace(); h != nil {
			h.Fault(at, "detect", pe)
		}
		if c.obs != nil {
			c.obs.FailureDetected(pe, at)
		}
		if c.restarts > c.maxRestarts() {
			c.unrecoverable(fmt.Errorf(
				"chaos: PE %d failed during recovery of PEs %v: %w (budget %d)",
				pe, c.failed, ErrRetryBudgetExhausted, c.maxRestarts()))
			return
		}
		c.scheduleRestore(at)
		return
	}
	c.recovering = true
	c.digestOK = true
	c.restarts = 0
	c.fallbacks = 0
	c.restartCost = 0
	c.failed = []int{pe}
	c.firstDetectedAt = float64(at)
	rt.Metrics().Counter("chaos.detections").Inc()
	if h := rt.Trace(); h != nil {
		h.Fault(at, "detect", pe)
	}
	if c.obs != nil {
		c.obs.FailureDetected(pe, at)
	}
	c.scheduleRestore(at)
}

// scheduleRestore arms (or, after a nested failure, re-arms) the restore
// a couple of network latencies after detection. The generation counter
// invalidates any restore or finish event from a superseded attempt.
func (c *Controller) scheduleRestore(at des.Time) {
	c.recGen++
	gen := c.recGen
	c.det.globalAt(at+2*c.det.alpha, func() {
		if gen != c.recGen || c.err != nil {
			return
		}
		c.beginRestore()
	})
}

// beginRestore performs one restore attempt for the accumulated failed
// set: plan (replica-liveness decision BEFORE reviving anyone), epoch
// fence, PUP restore from the chosen replica holders, location-cache
// restore, driver-state rollback, digest assertion, and a stall covering
// the modeled restart cost before the replay kick. A failure landing
// before the kick restarts this whole procedure; the generation guard
// retires the superseded kick.
func (c *Controller) beginRestore() {
	rt := c.rt
	if !c.haveCkpt {
		c.unrecoverable(fmt.Errorf("chaos: cannot recover PEs %v: %w",
			c.failed, ckpt.ErrNoCheckpoint))
		return
	}
	// A crash that landed after the detection that scheduled this restore
	// is healed by the same attempt: gather every currently-dead PE.
	for pe := 0; pe < rt.NumPEs(); pe++ {
		if rt.PEDead(pe) {
			c.addFailed(pe)
		}
	}
	plan, err := c.mem.PlanRecovery(c.failed)
	if err != nil {
		c.unrecoverable(fmt.Errorf("chaos: recover PEs %v: %w", c.failed, err))
		return
	}
	c.fallbacks += plan.Fallbacks
	rt.RecoverReset() // epoch++, revive PEs, drop queues/reductions/QD
	dur, err := c.mem.StartRecovery(plan)
	if err != nil {
		c.unrecoverable(fmt.Errorf("chaos: recover PEs %v: %w", c.failed, err))
		return
	}
	rt.RestoreLocCaches(c.locSnap)
	if c.opts.OnRollback != nil {
		c.opts.OnRollback()
	}
	if StateDigest(rt) != c.ckptDigest {
		c.digestOK = false
		rt.Metrics().Counter("chaos.digest_mismatches").Inc()
	}
	c.lastRestoredAt = float64(rt.Now())
	c.restartCost += float64(dur)
	kick := rt.MaxBusy() + dur
	rt.StallActivePEs(kick)
	c.recGen++
	gen := c.recGen
	rt.Engine().At(kick, func() {
		if gen != c.recGen || c.err != nil {
			return
		}
		c.finishRecovery(float64(kick))
	})
}

// finishRecovery closes the recovery window at the replay kick: the
// checkpoint layer is back at full replication degree, the record is
// appended, and the application is kicked from the cut.
func (c *Controller) finishRecovery(resumedAt float64) {
	rt := c.rt
	c.mem.FinishRecovery()
	rec := RecoveryStat{
		PE: c.failed[0], PEs: c.failed,
		Restarts: c.restarts, Fallbacks: c.fallbacks,
		DetectedAt: c.firstDetectedAt, RestoredAt: c.lastRestoredAt,
		ResumedAt: resumedAt, RestartCost: c.restartCost,
		DigestOK: c.digestOK,
	}
	first := true
	for _, pe := range c.failed {
		if at, ok := c.crashAt[pe]; ok && (first || at < rec.CrashAt) {
			rec.CrashAt = at
			first = false
		}
	}
	c.Records = append(c.Records, rec)
	c.recovering = false
	c.failed = nil
	rt.Metrics().Counter("chaos.recoveries").Inc()
	if h := rt.Trace(); h != nil {
		for _, pe := range rec.PEs {
			h.Fault(rt.Now(), "recover", pe)
		}
	}
	if c.obs != nil {
		c.obs.Recovered(rec.PE, rt.Now())
	}
	// The detector chain never stopped observing; nothing to re-arm.
	if c.opts.Restart != nil {
		c.opts.Restart()
	} else {
		rt.ResumeRestoredElements()
	}
}

// unrecoverable latches a terminal, typed recovery error: the campaign
// cannot be healed (all replicas lost, no checkpoint, or the restart
// budget exhausted). Observers get a last look — the telemetry layer
// dumps the flight recorder here — before the engine stops.
func (c *Controller) unrecoverable(err error) {
	if c.err != nil {
		return
	}
	c.rt.Metrics().Counter("chaos.unrecoverable").Inc()
	if c.obs != nil {
		c.obs.Unrecoverable(c.rt.Now(), err)
	}
	c.fail(err)
}

// fail latches a terminal error and stops the engine: the application is
// stalled with no way forward, so letting the run spin would hang it.
func (c *Controller) fail(err error) {
	if c.err != nil {
		return
	}
	c.err = err
	c.rt.Engine().Stop()
}
