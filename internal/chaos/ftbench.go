package chaos

// The fault-tolerance benchmark (cmd/chaos -ft, BENCH_ft.json): for each
// campaign app it sweeps the checkpoint replication degree R and sets the
// cost of surviving failures reactively (rollback to the last in-memory
// checkpoint) against surviving them proactively (evacuating a PE whose
// failure was predicted). Every cell of the sweep re-asserts the headline
// invariant — application results and full state digests byte-identical
// to the failure-free run on all three backends — so the report doubles
// as a correctness gate for the multi-failure machinery.

// FTPoint is one cell of the replication sweep: one app, one degree.
type FTPoint struct {
	Replication int `json:"replication"`
	// ChaosElapsed is the faulty run's virtual duration on the sequential
	// backend; CheckpointOverhead is its slowdown over the clean run —
	// the price of streaming R replica copies at every checkpoint cut
	// plus the recovery work itself.
	ChaosElapsed       float64 `json:"chaos_elapsed"`
	CheckpointOverhead float64 `json:"checkpoint_overhead"`
	// MeanDetectionLatency / MeanRecoveryTime summarize the recovery
	// records (virtual seconds); Fallbacks counts restores that skipped a
	// dead nearest holder for a farther live replica — zero at R=1 by
	// construction, and the direct measure of what the extra copies buy.
	MeanDetectionLatency float64 `json:"mean_detection_latency"`
	MeanRecoveryTime     float64 `json:"mean_recovery_time"`
	TotalRestartCost     float64 `json:"total_restart_cost"`
	Fallbacks            int     `json:"fallbacks"`
	// DigestsIdentical: values and state digests matched the clean run on
	// every backend AND the backends matched each other.
	DigestsIdentical bool `json:"digests_identical"`
}

// FTApp is one app's slice of the report.
type FTApp struct {
	App     string `json:"app"`
	Crashes int    `json:"crashes"`
	Warns   int    `json:"warns"`
	// CleanElapsed is the failure-free virtual duration (sequential).
	CleanElapsed float64   `json:"clean_elapsed"`
	Points       []FTPoint `json:"points"`
	// The proactive-vs-reactive comparison, taken at R=BaselineR: the
	// virtual cost of absorbing a predicted failure by evacuation
	// (migration + replacement boot, zero rollback) next to the mean cost
	// of healing an unpredicted crash (detection + restore + re-execution
	// of lost work). Absorbed counts warns that resolved without any
	// rollback.
	BaselineR    int     `json:"baseline_r"`
	EvacCost     float64 `json:"evac_cost"`
	RollbackCost float64 `json:"rollback_cost"`
	Absorbed     int     `json:"absorbed"`
}

// FTReport is the whole BENCH_ft.json payload.
type FTReport struct {
	Seed    int64   `json:"seed"`
	Degrees []int   `json:"degrees"`
	Apps    []FTApp `json:"apps"`
}

// ftDegrees is the replication sweep of the -ft report.
var ftDegrees = []int{1, 2, 3}

// ftBaselineR is the degree the evacuation-vs-rollback comparison runs
// at: 2 is the first degree that survives a correlated PE-plus-holder
// failure, which is the regime proactive evacuation matters in.
const ftBaselineR = 2

// RunFTBench runs the replication sweep and the evacuation comparison
// for every campaign app. Deterministic in seed, like RunCampaign.
func RunFTBench(seed int64) (*FTReport, error) {
	rep := &FTReport{Seed: seed, Degrees: ftDegrees}
	for _, app := range Apps() {
		fa := FTApp{App: app, Crashes: 2, Warns: 1, BaselineR: ftBaselineR}
		for _, r := range ftDegrees {
			b, err := RunCampaignOpts(app, fa.Crashes, 0, seed, r)
			if err != nil {
				return nil, err
			}
			seq := b.Results[0]
			fa.CleanElapsed = seq.CleanElapsed
			pt := FTPoint{
				Replication:      r,
				ChaosElapsed:     seq.ChaosElapsed,
				DigestsIdentical: b.CrossBackendMatch,
			}
			if seq.CleanElapsed > 0 {
				pt.CheckpointOverhead = seq.ChaosElapsed/seq.CleanElapsed - 1
			}
			for _, res := range b.Results {
				if !res.ValuesMatch || !res.DigestMatch {
					pt.DigestsIdentical = false
				}
			}
			var det, rec float64
			for _, rs := range seq.Records {
				det += float64(rs.DetectionLatency())
				rec += float64(rs.RecoveryTime())
				pt.TotalRestartCost += float64(rs.RestartCost)
				pt.Fallbacks += rs.Fallbacks
			}
			if n := len(seq.Records); n > 0 {
				pt.MeanDetectionLatency = det / float64(n)
				pt.MeanRecoveryTime = rec / float64(n)
			}
			fa.Points = append(fa.Points, pt)
			if r == ftBaselineR {
				fa.RollbackCost = pt.MeanRecoveryTime
			}
		}
		// The proactive side: same seed, predicted failures only.
		wb, err := RunCampaignOpts(app, 0, fa.Warns, seed, ftBaselineR)
		if err != nil {
			return nil, err
		}
		wseq := wb.Results[0]
		fa.Absorbed = wseq.Absorbed
		for _, ev := range wseq.Evacs {
			if ev.Absorbed {
				fa.EvacCost += float64(ev.EvacCost) + float64(ev.BootCost)
			}
		}
		rep.Apps = append(rep.Apps, fa)
	}
	return rep, nil
}
