package charm

import "fmt"

// Group is a chare collection with exactly one member per PE — the
// Charm++ "group" (branch office) abstraction. Libraries use groups for
// per-PE services: caches, aggregation buffers, local managers. Members
// never migrate (they ARE the PE's local presence), so access from code
// running on the same PE is direct.
type Group struct {
	rt       *Runtime
	name     string
	handlers []Handler
	elems    []Chare
	peh      PEH
}

type groupMsg struct {
	ep      EP
	payload any
}

type groupBcast struct {
	ep      EP
	payload any
	size    int
}

// DeclareGroup registers a group: factory builds the member for each PE.
func (rt *Runtime) DeclareGroup(name string, factory func(pe int) Chare, handlers []Handler) *Group {
	if _, dup := rt.arrayNames[name]; dup {
		panic("charm: group name collides with an array: " + name)
	}
	g := &Group{rt: rt, name: name, handlers: handlers}
	g.elems = make([]Chare, rt.MaxPEs())
	for pe := range g.elems {
		g.elems[pe] = factory(pe)
	}
	g.peh = rt.DeclarePEHandler(g.dispatch)
	return g
}

// Name returns the group's name.
func (g *Group) Name() string { return g.name }

// Local returns the member on the given PE (simulation-level accessor;
// prefer Ctx.GroupLocal inside entry methods).
func (g *Group) Local(pe int) Chare { return g.elems[pe] }

func (g *Group) dispatch(ctx *Ctx, msg any) {
	switch m := msg.(type) {
	case groupMsg:
		g.handlers[m.ep](g.elems[ctx.pe], ctx, m.payload)
	case groupBcast:
		// Fan out down the PE tree, then run locally.
		p := ctx.pe
		for _, child := range []int{2*p + 1, 2*p + 2} {
			if child < g.rt.activePEs {
				ctx.SendPE(child, g.peh, m, &SendOpts{Bytes: m.size, Prio: prioControl})
			}
		}
		g.handlers[m.ep](g.elems[p], ctx, m.payload)
	default:
		panic(fmt.Sprintf("charm: bad group message %T", msg))
	}
}

// SendGroup invokes an entry method on the group member of the given PE.
func (c *Ctx) SendGroup(g *Group, pe int, ep EP, payload any, opts *SendOpts) {
	c.SendPE(pe, g.peh, groupMsg{ep: ep, payload: payload}, opts)
}

// GroupLocal returns this PE's member for direct access (no message).
func (c *Ctx) GroupLocal(g *Group) Chare { return g.elems[c.pe] }

// BroadcastGroup invokes ep on every active PE's member via the PE tree.
func (c *Ctx) BroadcastGroup(g *Group, ep EP, payload any, opts *SendOpts) {
	size := c.msgSize(payload, opts)
	m := groupBcast{ep: ep, payload: payload, size: size}
	if c.pe == 0 {
		g.dispatch(c, m)
		return
	}
	c.SendPE(0, g.peh, m, &SendOpts{Bytes: size, Prio: prioControl})
}

// BroadcastGroup invokes ep on every member from driver context.
func (g *Group) BroadcastGroup(ep EP, payload any) {
	rt := g.rt
	rt.eng.At(rt.eng.Now(), func() {
		ctx := rt.newCtx(0, nil)
		ctx.BroadcastGroup(g, ep, payload, nil)
		rt.finishExec(ctx, nil)
	})
}
