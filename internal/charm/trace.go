package charm

import (
	"charmgo/internal/des"
	"charmgo/internal/projections/metrics"
)

// TraceHooks is the runtime-side tracing interface: a Projections-style
// recorder (internal/projections) implements it and the runtime calls it at
// every traceable action. The nil interface is the fast path — every call
// site is guarded by a single pointer check, so an untraced run pays no
// measurable overhead.
//
// Determinism contract: the runtime invokes every hook from driver, commit,
// or global-event context — never from a concurrently executing handler
// phase — and at positions that coincide between the sequential and
// parallel backends. A recorder that logs calls in arrival order and
// assigns IDs from a single counter therefore produces bit-identical
// traces on both backends. All timestamps are virtual.
type TraceHooks interface {
	// MsgSend records a message stamped onto the wire and returns the
	// event ID the runtime attaches to the message, linking the matching
	// MsgRecv and the EntryBegin it causes. cause is the ID of the send
	// that triggered the sending execution (0 for driver/boot sends).
	MsgSend(at des.Time, srcPE, dstPE, size int, cause uint64) uint64
	// MsgRecv records a traced message entering a PE's scheduler queue.
	MsgRecv(at des.Time, pe int, sendID uint64, hops int)
	// EntryBegin/EntryEnd bracket one entry-method execution. array is ""
	// for PE-level handlers, whose name appears in entry.
	EntryBegin(at des.Time, pe int, array, entry string, idx Index, cause uint64)
	EntryEnd(at des.Time, pe int, array, entry string, idx Index, cause uint64)
	// Migration records one element move.
	Migration(at des.Time, array string, idx Index, fromPE, toPE int)
	// LBStart/LBDecision/LBDone bracket one load-balancing round.
	LBStart(at des.Time, round, numObjs int)
	LBDecision(at des.Time, strategy string, numMigrations int)
	LBDone(at des.Time, round, moved int, duration des.Time)
	// Checkpoint records one checkpoint capture (kind "memory", "disk", ...).
	Checkpoint(at des.Time, kind string, bytes int)
	// TramBuffer records an item buffered by TRAM (depth = buffer fill
	// after the append); TramFlush records a batch leaving a PE.
	TramBuffer(at des.Time, pe, depth int)
	TramFlush(at des.Time, pe, items int, timed bool)
	// Fault records one fault-injection or recovery event: kind is "crash",
	// "drop", "delay", "straggler", "detect", "rollback", or "recover"; pe
	// is the affected PE (-1 for whole-machine events like a rollback).
	Fault(at des.Time, kind string, pe int)
}

// SetTraceHooks installs (or, with nil, removes) the tracing recorder.
// Install before Run; swapping recorders mid-run is allowed but the new
// recorder sees causes minted by the old one.
func (rt *Runtime) SetTraceHooks(h TraceHooks) { rt.hooks = h }

// Trace returns the installed recorder, or nil. Libraries outside the
// runtime (TRAM, the checkpoint layer) emit their events through it.
func (rt *Runtime) Trace() TraceHooks { return rt.hooks }

// Metrics returns the runtime's named-metric registry. Subsystems register
// counters and gauges into it; exporters read it uniformly. Mutate metrics
// only from driver or commit context (Ctx.Defer from a handler).
func (rt *Runtime) Metrics() *metrics.Registry { return rt.metrics }

// registerRuntimeMetrics exposes the RuntimeStats counters and engine
// figures through the registry without mirroring writes.
func (rt *Runtime) registerRuntimeMetrics() {
	reg := rt.metrics
	reg.GaugeFunc("rts.msgs_sent", func() float64 { return float64(rt.Stats.MsgsSent) })
	reg.GaugeFunc("rts.bytes_sent", func() float64 { return float64(rt.Stats.BytesSent) })
	reg.GaugeFunc("rts.msgs_forwarded", func() float64 { return float64(rt.Stats.MsgsForwarded) })
	reg.GaugeFunc("rts.msgs_delivered", func() float64 { return float64(rt.Stats.MsgsDelivered) })
	reg.GaugeFunc("rts.migrations", func() float64 { return float64(rt.Stats.Migrations) })
	reg.GaugeFunc("rts.lb_invocations", func() float64 { return float64(rt.Stats.LBInvocations) })
	reg.GaugeFunc("rts.qd_rounds", func() float64 { return float64(rt.Stats.QDRounds) })
	reg.GaugeFunc("rts.entry_time_s", func() float64 { return float64(rt.Stats.EntryTime) })
	reg.GaugeFunc("rts.msgs_dropped", func() float64 { return float64(rt.Stats.MsgsDropped) })
	reg.GaugeFunc("rts.msgs_discarded", func() float64 { return float64(rt.Stats.MsgsDiscarded) })
	reg.GaugeFunc("rts.events_executed", func() float64 { return float64(rt.eng.Executed()) })
	reg.GaugeFunc("rts.active_pes", func() float64 { return float64(rt.activePEs) })
}
