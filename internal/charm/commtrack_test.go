package charm_test

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

type chatter struct{ N int64 }

func (c *chatter) Pup(p *pup.Pup) { p.Int64(&c.N) }

// TestCommTrackingEndToEnd drives pairs of heavily communicating chares,
// checks the LB database's communication graph, and verifies that the
// comm-aware strategy co-locates the partners.
func TestCommTrackingEndToEnd(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(4)))
	var arr *charm.Array
	handlers := []charm.Handler{
		func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			n := msg.(int)
			ctx.Charge(1e-5)
			if n > 0 {
				// Chat with my pair partner.
				me := ctx.Index().I()
				partner := me ^ 1
				ctx.SendOpt(arr, charm.Idx1(partner), 0, n-1,
					&charm.SendOpts{Bytes: 4096})
			}
		},
	}
	arr = rt.DeclareArray("chatters", func() charm.Chare { return &chatter{} },
		handlers, charm.ArrayOpts{Migratable: true, TrackComm: true})
	// Scatter partners onto different PEs deliberately.
	for i := 0; i < 8; i++ {
		arr.InsertOn(charm.Idx1(i), &chatter{}, i%4)
	}
	rt.Boot(func(ctx *charm.Ctx) {
		for i := 0; i < 8; i += 2 {
			ctx.Send(arr, charm.Idx1(i), 0, 20)
		}
	})
	rt.Run()

	objs, pes := rt.LBView()
	if len(objs) != 8 {
		t.Fatalf("LB view has %d objects", len(objs))
	}
	for _, o := range objs {
		if len(o.Comm) == 0 {
			t.Fatalf("object %v has no comm edges despite TrackComm", o.Idx)
		}
		if o.Comm[0].ToIdx.I() != o.Idx.I()^1 {
			t.Fatalf("object %v heaviest partner is %v, want %d",
				o.Idx, o.Comm[0].ToIdx, o.Idx.I()^1)
		}
	}

	rt.SetBalancer(lb.CommAware{})
	rt.Rebalance()
	for i := 0; i < 8; i += 2 {
		a, b := arr.PEOf(charm.Idx1(i)), arr.PEOf(charm.Idx1(i+1))
		if a != b {
			t.Fatalf("pair (%d,%d) split across PEs %d and %d", i, i+1, a, b)
		}
	}
	// Comm stats are reset after the rebalance.
	objs, _ = rt.LBView()
	for _, o := range objs {
		if len(o.Comm) != 0 {
			t.Fatal("comm edges not reset after rebalance")
		}
	}
	_ = pes
}

// TestCommTrackingOffByDefault ensures untracked arrays pay no map cost and
// report no edges.
func TestCommTrackingOffByDefault(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(2)))
	var arr *charm.Array
	handlers := []charm.Handler{
		func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			if ctx.Index().I() == 0 {
				ctx.Send(arr, charm.Idx1(1), 0, nil)
			}
		},
	}
	arr = rt.DeclareArray("quiet", func() charm.Chare { return &chatter{} },
		handlers, charm.ArrayOpts{Migratable: true})
	arr.Insert(charm.Idx1(0), &chatter{})
	arr.Insert(charm.Idx1(1), &chatter{})
	arr.Send(charm.Idx1(0), 0, nil)
	rt.Run()
	objs, _ := rt.LBView()
	for _, o := range objs {
		if len(o.Comm) != 0 {
			t.Fatal("comm edges recorded without TrackComm")
		}
	}
}
