package charm

import (
	"fmt"
	"math"

	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// fxList is an ordered buffer of deferred global effects. Element-handler
// contexts on the parallel backend collect their globally visible actions
// (sends, reduction merges, statistics) here during the concurrent phase;
// the commit replays them in call order, exactly reproducing the
// sequential interleaving.
type fxList struct {
	fns []func()
}

// Ctx is the execution context of a running entry method (or PE handler).
// It accumulates the method's modeled compute cost and stamps outgoing
// messages at the virtual moment they are sent.
type Ctx struct {
	rt      *Runtime
	pe      int
	elem    *element // nil in PE handlers and the main chare
	start   des.Time // event start time (the engine clock when created)
	elapsed des.Time // cost accumulated so far in this execution
	loadFS  int64    // speed-normalized compute so far, integer femtoseconds
	exitReq bool
	fx      *fxList // nil: immediate mode; non-nil: buffered (parallel phase)
	phase   bool    // true while an element handler runs (vs commit context)
	cause   uint64  // trace ID of the send that triggered this execution

	// Coast-forward replay mode (optimistic backend, speculation.go): the
	// handler re-executes a committed delivery purely to reconstruct chare
	// state. Every global effect buffers into fx and is discarded, sends
	// build no messages, and location resolution replays the recorded
	// answers in res[resIdx:] instead of reading the live caches.
	replay bool
	res    []int32
	resIdx int

	// extraEls lists elements beyond elem this execution mutated through
	// LocalInvoke (optimistic backend only): their retained images cannot
	// replay a multi-element delivery, so the commit invalidates them.
	extraEls []*element
}

func (rt *Runtime) newCtx(pe int, el *element) *Ctx {
	return rt.newCtxAt(pe, el, rt.eng.Now())
}

// newCtxAt creates a context with an explicit event start time; the
// parallel backend uses it because the engine clock reads as the window
// start while phases run concurrently.
func (rt *Runtime) newCtxAt(pe int, el *element, at des.Time) *Ctx {
	return &Ctx{rt: rt, pe: pe, elem: el, start: at}
}

// takeCtx returns the PE's recycled delivery context (or a fresh one),
// initialized for an execution starting at `at`. The spare is strictly
// shard-local: taken during this PE's phase or commit and released at the
// end of the delivery commit, under the same commit(i) ≺ phase(i+1)
// ordering that protects p.q. Contexts are only valid during the handler
// and its commit, so recycling cannot expose one execution's state to
// another.
func (p *peState) takeCtx(rt *Runtime, el *element, at des.Time) *Ctx {
	ctx := p.ctxSpare
	if ctx == nil {
		ctx = &Ctx{}
	} else {
		p.ctxSpare = nil
	}
	*ctx = Ctx{rt: rt, pe: p.id, elem: el, start: at}
	return ctx
}

// releaseCtx recycles a delivery context at the end of its commit.
func (p *peState) releaseCtx(ctx *Ctx) {
	*ctx = Ctx{}
	//charmvet:retain (this IS the pool: the spare slot the next delivery draws from)
	p.ctxSpare = ctx
}

// emit runs fn now in immediate mode, or appends it to the effect buffer
// in buffered mode.
func (c *Ctx) emit(fn func()) {
	if c.fx == nil {
		fn()
		return
	}
	c.fx.fns = append(c.fx.fns, fn)
}

// Defer runs fn after the current entry method's effects become globally
// visible: immediately after the handler on the sequential backend, and in
// the event's commit on the parallel backend. Handlers that mutate state
// shared beyond their element (driver-level aggregates, error latches)
// must route those writes through Defer so the parallel backend can run
// handler bodies concurrently.
func (c *Ctx) Defer(fn func()) { c.emit(fn) }

// deferStruct queues a structural element-table mutation (Insert/Destroy).
// Unlike plain effects, these must never apply mid-handler: the parallel
// backends cannot make a phase's insert visible before its commit, so the
// rest of the handler — in particular the destination resolution that
// prices later sends — must see pre-handler tables on every backend. In a
// sequential phase this lazily switches the context to buffered mode, so
// the mutation and every subsequent effect replay at commit in call order,
// exactly as the parallel backends interleave them. In commit context
// (PE handlers, replayed effects) the mutation applies inline as before.
func (c *Ctx) deferStruct(fn func()) {
	if c.fx == nil && c.phase {
		c.fx = &fxList{}
	}
	c.emit(fn)
}

// flushFX replays the buffered effects in call order and switches the
// context to immediate mode first, so an effect that defers further work
// runs it inline at its own position in the order.
func (c *Ctx) flushFX() {
	c.phase = false
	if c.fx == nil {
		return
	}
	fx := c.fx
	c.fx = nil
	for i := 0; i < len(fx.fns); i++ {
		fx.fns[i]()
	}
}

// Runtime returns the owning runtime.
func (c *Ctx) Runtime() *Runtime { return c.rt }

// MyPE returns the PE this execution runs on.
func (c *Ctx) MyPE() int { return c.pe }

// NumPEs returns the active PE count.
func (c *Ctx) NumPEs() int { return c.rt.activePEs }

// Index returns the executing element's array index.
func (c *Ctx) Index() Index {
	if c.elem == nil {
		return Index{}
	}
	return c.elem.key.idx
}

// Now returns the virtual time at the current point of the execution
// (event start plus cost charged so far).
func (c *Ctx) Now() des.Time { return c.start + c.elapsed }

// Charge adds compute cost: work is seconds on a dedicated PE at base
// frequency, scaled by the PE's current speed (DVFS, interference).
func (c *Ctx) Charge(work float64) {
	d := c.rt.mach.ComputeTime(c.pe, work)
	c.elapsed += d
	c.chargeLoad(d)
}

// ChargeWithCache charges work whose working set is ws bytes, applying the
// node's cache model with the given number of cache sharers.
func (c *Ctx) ChargeWithCache(work float64, ws int64, sharers int) {
	c.Charge(work * c.rt.mach.CacheFactor(ws, sharers))
}

// ChargeSeconds adds an absolute virtual duration, bypassing the speed
// model (used for fixed protocol costs).
func (c *Ctx) ChargeSeconds(d des.Time) {
	c.elapsed += d
	c.chargeLoad(d)
}

// chargeLoad accrues a charge into the execution's load meter: integer
// femtoseconds, speed-normalized at charge time. The load database feeds
// the balancers, and a greedy assignment flips on a 1-ULP input change —
// so measured load must be bit-identical between a clean run and a
// rollback replay. Each charge's duration is translation-invariant (it
// depends on work, not on the clock), and integer sums are exact, so this
// meter is independent of message arrival order and of how charges group
// into executions; a float meter rounds differently per grouping.
func (c *Ctx) chargeLoad(d des.Time) {
	sp := c.rt.mach.PE(c.pe).Speed(c.rt.mach.Config().BaseFreqGHz)
	c.loadFS += int64(math.Round(float64(d) * sp * 1e15))
}

// chargeLoadWork accrues intrinsic work (seconds on a dedicated PE at
// base frequency) directly into the load meter, bypassing the PE speed
// model. Used for per-message overheads: the meter takes the uniform
// node-local floor cost — the part every message pays regardless of
// where the peer actually lives — so measured load is a pure function of
// the element's own behavior (its compute and its message counts) and
// never of its current placement.
// Placement-dependent load would make every greedy decision a function
// of the previous one, and placement could then never re-converge to the
// failure-free mapping after a disturbance (evacuation, shrink/expand) —
// which is what makes post-recovery digests byte-identical.
func (c *Ctx) chargeLoadWork(work float64) {
	c.loadFS += int64(math.Round(work * 1e15))
}

// SetPos records the element's spatial coordinates for geometric load
// balancers (ORB).
func (c *Ctx) SetPos(x, y, z float64) {
	if c.elem != nil {
		c.elem.pos = [3]float64{x, y, z}
		c.elem.hasPos = true
	}
}

// SendOpts tunes a send.
type SendOpts struct {
	// Bytes is the modeled payload size; 0 means the runtime estimates it
	// (pup.Size for Pupable payloads, a small default otherwise).
	Bytes int
	// Prio orders delivery: lower values run first (§IV-C prioritized
	// messages). Zero is the default priority.
	Prio int64
}

func (c *Ctx) msgSize(payload any, opts *SendOpts) int {
	if opts != nil && opts.Bytes > 0 {
		return opts.Bytes
	}
	if p, ok := payload.(pup.Pupable); ok {
		return pup.Size(p) + 32
	}
	return 64
}

// Send invokes entry method ep on element idx of arr asynchronously: the
// caller continues immediately (§II-B).
func (c *Ctx) Send(arr *Array, idx Index, ep EP, payload any) {
	c.SendOpt(arr, idx, ep, payload, nil)
}

// resolveFor prices a send's destination: the live location caches
// normally, the recorded answer during coast-forward replay — the caches
// may have learned newer hints since the delivery originally committed,
// and Now() must re-read identically. On the optimistic backend every
// phase-time answer is recorded (shard-locally, into the PE's reused
// buffer) so the delivery's commit can log it for future replay.
func (c *Ctx) resolveFor(dest elemKey) int {
	if c.replay {
		if c.resIdx >= len(c.res) {
			panic(fmt.Sprintf("charm: coast-forward replay of %v diverged: more sends than the committed execution recorded", c.elem.key))
		}
		dst := int(c.res[c.resIdx])
		c.resIdx++
		return dst
	}
	dst := c.rt.resolve(c.pe, dest)
	if c.phase && c.rt.spec != nil {
		p := c.rt.pes[c.pe]
		p.resLog = append(p.resLog, int32(dst))
	}
	return dst
}

// SendOpt is Send with explicit size/priority options.
func (c *Ctx) SendOpt(arr *Array, idx Index, ep EP, payload any, opts *SendOpts) {
	size := c.msgSize(payload, opts)
	var prio int64
	if opts != nil {
		prio = opts.Prio
	}
	dest := elemKey{array: arr.id, idx: idx}
	dst := c.resolveFor(dest)
	// The clock takes the locality-aware send cost (node-local delivery is
	// cheaper), but the load meter takes the uniform node-local floor: see
	// chargeLoadWork for why measured load must not depend on placement.
	c.elapsed += c.rt.mach.SendOverheadTo(c.pe, dst)
	c.chargeLoadWork(c.rt.mach.Config().SendOverheadLocal)
	if c.elem != nil {
		c.elem.msgsSent++
		c.elem.bytesSent += uint64(size)
		if c.rt.arrays[c.elem.key.array].opts.TrackComm {
			if c.elem.comm == nil {
				c.elem.comm = map[elemKey]uint64{}
			}
			c.elem.comm[dest] += uint64(size)
		}
	}
	if c.replay {
		// Effect-suppressed: the send went out when the delivery originally
		// committed. The clock and meter charges above reconstruct Now().
		return
	}
	m := getMsg()
	m.dest = dest
	m.destPE = -1
	m.ep = ep
	m.payload = payload
	m.prio = prio
	m.size = size
	m.srcPE = c.pe
	m.cause = c.cause
	at := c.Now()
	if c.fx == nil {
		// Immediate mode: the steady-state send path runs allocation-free
		// (pooled message, no deferred-effect closure).
		c.rt.send(m, at)
		return
	}
	//charmvet:retain (effect closure: runs at this delivery's commit, before Ctx and message are recycled)
	c.fx.fns = append(c.fx.fns, func() { c.rt.send(m, at) })
}

// SendPE invokes a PE-level handler on the destination PE.
func (c *Ctx) SendPE(pe int, h PEH, payload any, opts *SendOpts) {
	size := c.msgSize(payload, opts)
	var prio int64
	if opts != nil {
		prio = opts.Prio
	}
	// Locality-aware clock, uniform meter: see SendOpt.
	c.elapsed += c.rt.mach.SendOverheadTo(c.pe, pe)
	c.chargeLoadWork(c.rt.mach.Config().SendOverheadLocal)
	if c.replay {
		return // see SendOpt: charge the clock, suppress the effect
	}
	m := getMsg()
	m.destPE = pe
	m.ep = EP(h)
	m.payload = payload
	m.prio = prio
	m.size = size
	m.srcPE = c.pe
	m.cause = c.cause
	at := c.Now()
	if c.fx == nil {
		c.rt.send(m, at)
		return
	}
	//charmvet:retain (effect closure: runs at this delivery's commit, before Ctx and message are recycled)
	c.fx.fns = append(c.fx.fns, func() { c.rt.send(m, at) })
}

// LocalInvoke runs an entry method on a local element synchronously within
// this execution (no messaging cost beyond the handler's own charges). It
// is the escape hatch libraries use for PE-local work; it panics if the
// element is not on this PE.
func (c *Ctx) LocalInvoke(arr *Array, idx Index, ep EP, payload any) {
	key := elemKey{array: arr.id, idx: idx}
	el, ok := c.rt.pes[c.pe].elems[key]
	if !ok {
		panic("charm: LocalInvoke on non-local element " + key.String())
	}
	if c.rt.spec != nil && el != c.elem {
		if c.replay {
			// Logged deliveries are single-element by construction (a
			// multi-element commit invalidates every touched image instead
			// of logging) — reaching another chare here is divergence.
			panic("charm: coast-forward replay diverged: LocalInvoke of " + key.String() + " during a logged single-element delivery")
		}
		if c.phase {
			if sp := c.rt.specFor(c.pe); sp != nil {
				// Speculative execution is about to mutate a second chare;
				// make it restorable too so a rollback undoes the whole
				// execution.
				sp.touchElem(c.rt.spec, el)
			}
			c.noteExtra(el)
		} else {
			// Commit-context mutation (PE handlers, collective fan-out,
			// boot): not part of any logged phase, so the element's
			// retained image can no longer coast-forward past it.
			c.rt.spec.dropSave(el)
		}
	}
	sub := c.rt.newCtxAt(c.pe, el, c.start)
	sub.fx = c.fx // share the caller's effect buffer (and its mode)
	sub.phase = c.phase
	sub.cause = c.cause
	sub.replay = c.replay
	sub.res, sub.resIdx = c.res, c.resIdx
	arr.handlers[ep](el.obj, sub, payload)
	c.fx = sub.fx // pick up a deferStruct upgrade so the caller buffers too
	c.elapsed += sub.elapsed
	c.loadFS += sub.loadFS
	c.resIdx = sub.resIdx
	if len(sub.extraEls) > 0 {
		// Nested LocalInvoke: the touched set must surface to the delivery
		// context the commit hook inspects.
		c.extraEls = append(c.extraEls, sub.extraEls...)
	}
	if sub.exitReq {
		c.exitReq = true
	}
}

// noteExtra records an element this execution mutated beyond its own,
// deduplicated (repeat LocalInvokes of one chare are common).
func (c *Ctx) noteExtra(el *element) {
	for _, e := range c.extraEls {
		if e == el {
			return
		}
	}
	c.extraEls = append(c.extraEls, el)
}

// Exit requests job termination (CkExit): the engine stops after this
// event completes.
func (c *Ctx) Exit() { c.exitReq = true }

// AtSync enters the load-balancing barrier (§III-A AtSync mode): the
// element pauses until the runtime has rebalanced and delivers
// ResumeFromSync (the array's ResumeEP).
func (c *Ctx) AtSync() {
	el := c.elem
	if el == nil {
		panic("charm: AtSync outside an array element")
	}
	arr := c.rt.arrays[el.key.array]
	if !arr.opts.UsesAtSync {
		panic("charm: AtSync on array declared without UsesAtSync: " + arr.name)
	}
	if el.atSync {
		return
	}
	el.atSync = true
	c.emit(func() {
		c.rt.lbArrived++
		c.rt.maybeStartLB()
	})
}

// Migrate requests migration of the executing element to a specific PE
// (CkMigrateMe). The move happens after the current method returns.
func (c *Ctx) Migrate(toPE int) {
	el := c.elem
	if el == nil {
		panic("charm: Migrate outside an array element")
	}
	rt := c.rt
	from := el.pe
	if toPE == from {
		return
	}
	at := c.Now()
	c.emit(func() { rt.atEpoch(at, func() { rt.moveElement(el, toPE, true) }) })
}

// Insert creates a new element of arr with the given initial state on this
// PE (dynamic insertion, used by AMR when refining). Messages already
// buffered at the element's home are flushed to it. The new element joins
// the creating element's current reduction generation, so in-progress and
// future reductions stay aligned across restructuring.
func (c *Ctx) Insert(arr *Array, idx Index, obj Chare) {
	gen, haveGen := uint64(0), false
	if c.elem != nil {
		gen, haveGen = c.elem.redGen, true
	}
	rt, pe := c.rt, c.pe
	c.deferStruct(func() {
		rt.insertElement(arr, idx, obj, pe, true)
		if haveGen {
			if el, ok := rt.pes[pe].elems[elemKey{array: arr.id, idx: idx}]; ok {
				el.redGen = gen
			}
		}
	})
}

// Destroy removes element idx of arr, which must live on this PE (used by
// AMR when coarsening). Destroying the executing element is allowed; the
// current method finishes normally.
func (c *Ctx) Destroy(arr *Array, idx Index) {
	if c.replay {
		// The destruction already committed (and dropped the target's
		// image); the element may no longer exist, and the deferStruct
		// would be discarded anyway.
		return
	}
	key := elemKey{array: arr.id, idx: idx}
	el, ok := c.rt.pes[c.pe].elems[key]
	if !ok {
		panic("charm: Destroy of non-local element " + key.String())
	}
	rt := c.rt
	c.deferStruct(func() { rt.removeElement(el) })
}
