package charm

import (
	"testing"

	"charmgo/internal/pup"
)

type peService struct {
	PE   int
	Hits int64
}

func (s *peService) Pup(p *pup.Pup) {
	p.Int(&s.PE)
	p.Int64(&s.Hits)
}

func TestGroupOneMemberPerPE(t *testing.T) {
	rt := testRT(8)
	g := rt.DeclareGroup("svc", func(pe int) Chare { return &peService{PE: pe} }, nil)
	for pe := 0; pe < 8; pe++ {
		if got := g.Local(pe).(*peService).PE; got != pe {
			t.Fatalf("member on PE %d says %d", pe, got)
		}
	}
}

func TestGroupSendAndLocal(t *testing.T) {
	rt := testRT(4)
	var g *Group
	handlers := []Handler{
		func(obj Chare, ctx *Ctx, msg any) {
			s := obj.(*peService)
			s.Hits += msg.(int64)
			if s.PE != ctx.MyPE() {
				t.Errorf("member %d executed on PE %d", s.PE, ctx.MyPE())
			}
			if ctx.GroupLocal(g) != obj {
				t.Error("GroupLocal does not return the executing member")
			}
			ctx.Charge(1e-6)
		},
	}
	g = rt.DeclareGroup("svc", func(pe int) Chare { return &peService{PE: pe} }, handlers)
	rt.Boot(func(ctx *Ctx) {
		for pe := 0; pe < 4; pe++ {
			ctx.SendGroup(g, pe, 0, int64(pe+1), nil)
		}
	})
	rt.Run()
	for pe := 0; pe < 4; pe++ {
		if got := g.Local(pe).(*peService).Hits; got != int64(pe+1) {
			t.Fatalf("PE %d member hits %d, want %d", pe, got, pe+1)
		}
	}
}

func TestGroupBroadcast(t *testing.T) {
	rt := testRT(16)
	handlers := []Handler{
		func(obj Chare, ctx *Ctx, msg any) {
			obj.(*peService).Hits++
		},
	}
	g := rt.DeclareGroup("svc", func(pe int) Chare { return &peService{PE: pe} }, handlers)
	g.BroadcastGroup(0, nil)
	rt.Run()
	for pe := 0; pe < 16; pe++ {
		if g.Local(pe).(*peService).Hits != 1 {
			t.Fatalf("PE %d missed the group broadcast", pe)
		}
	}
}

func TestGroupBroadcastRespectsActivePEs(t *testing.T) {
	rt := testRT(8)
	handlers := []Handler{
		func(obj Chare, ctx *Ctx, msg any) { obj.(*peService).Hits++ },
	}
	g := rt.DeclareGroup("svc", func(pe int) Chare { return &peService{PE: pe} }, handlers)
	rt.SetActivePEs(4)
	g.BroadcastGroup(0, nil)
	rt.Run()
	for pe := 0; pe < 4; pe++ {
		if g.Local(pe).(*peService).Hits != 1 {
			t.Fatalf("active PE %d missed the broadcast", pe)
		}
	}
	for pe := 4; pe < 8; pe++ {
		if g.Local(pe).(*peService).Hits != 0 {
			t.Fatalf("inactive PE %d received the broadcast", pe)
		}
	}
}

func TestGroupBroadcastFromElement(t *testing.T) {
	rt := testRT(8)
	var g *Group
	gHandlers := []Handler{
		func(obj Chare, ctx *Ctx, msg any) { obj.(*peService).Hits++ },
	}
	g = rt.DeclareGroup("svc", func(pe int) Chare { return &peService{PE: pe} }, gHandlers)
	arr := rt.DeclareArray("drv", func() Chare { return &counter{} },
		[]Handler{func(obj Chare, ctx *Ctx, msg any) {
			ctx.BroadcastGroup(g, 0, nil, nil)
		}}, ArrayOpts{})
	arr.InsertOn(Idx1(0), &counter{}, 5) // initiate from a non-zero PE
	arr.Send(Idx1(0), 0, nil)
	rt.Run()
	for pe := 0; pe < 8; pe++ {
		if g.Local(pe).(*peService).Hits != 1 {
			t.Fatalf("PE %d missed element-initiated group broadcast", pe)
		}
	}
}

func TestMulticastDeliversToSection(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{})
	for i := 0; i < 20; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	section := []Index{Idx1(2), Idx1(5), Idx1(7), Idx1(11), Idx1(13)}
	rt.Boot(func(ctx *Ctx) {
		ctx.Multicast(arr, section, epBump, int64(3), nil)
	})
	rt.Run()
	want := map[int]bool{2: true, 5: true, 7: true, 11: true, 13: true}
	for i := 0; i < 20; i++ {
		c := arr.Get(Idx1(i)).(*counter)
		if want[i] && c.N != 3 {
			t.Fatalf("section member %d missed multicast: %d", i, c.N)
		}
		if !want[i] && c.N != 0 {
			t.Fatalf("non-member %d received multicast", i)
		}
	}
}

func TestMulticastCheaperThanIndividualSends(t *testing.T) {
	// All 16 targets on one PE: the multicast is one wire message vs 16.
	run := func(useMcast bool) (uint64, float64) {
		rt := testRT(4)
		arr := declCounters(rt, ArrayOpts{})
		var section []Index
		for i := 0; i < 16; i++ {
			arr.InsertOn(Idx1(i), &counter{}, 3)
			section = append(section, Idx1(i))
		}
		rt.Boot(func(ctx *Ctx) {
			if useMcast {
				ctx.Multicast(arr, section, epBump, int64(1), &SendOpts{Bytes: 4096})
			} else {
				for _, idx := range section {
					ctx.SendOpt(arr, idx, epBump, int64(1), &SendOpts{Bytes: 4096})
				}
			}
		})
		end := rt.Run()
		return rt.Stats.MsgsSent, float64(end)
	}
	mMsgs, mTime := run(true)
	sMsgs, sTime := run(false)
	if mMsgs >= sMsgs {
		t.Fatalf("multicast sent %d wire messages vs %d individual", mMsgs, sMsgs)
	}
	if mTime >= sTime {
		t.Fatalf("multicast (%v) should beat individual sends (%v)", mTime, sTime)
	}
}

func TestMulticastFollowsMigratedElements(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{Migratable: true})
	var section []Index
	for i := 0; i < 8; i++ {
		arr.Insert(Idx1(i), &counter{})
		section = append(section, Idx1(i))
	}
	// Scramble locations behind the sender's cache.
	for i := 0; i < 8; i++ {
		if el, ok := arr.elems[Idx1(i)]; ok {
			rt.moveElement(el, (el.pe+2)%4, false)
		}
	}
	rt.Boot(func(ctx *Ctx) {
		ctx.Multicast(arr, section, epBump, int64(7), nil)
	})
	rt.Run()
	for i := 0; i < 8; i++ {
		if c := arr.Get(Idx1(i)).(*counter); c.N != 7 {
			t.Fatalf("migrated member %d missed multicast: %d", i, c.N)
		}
	}
}

func TestMulticastCountsTowardQuiescence(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{})
	var section []Index
	for i := 0; i < 6; i++ {
		arr.Insert(Idx1(i), &counter{})
		section = append(section, Idx1(i))
	}
	order := []string{}
	handlers2 := []Handler{func(obj Chare, ctx *Ctx, msg any) {
		order = append(order, "kick")
		ctx.Multicast(arr, section, epBump, int64(1), nil)
	}}
	arr2 := rt.DeclareArray("kicker", func() Chare { return &counter{} }, handlers2, ArrayOpts{})
	arr2.Insert(Idx1(0), &counter{})
	arr2.Send(Idx1(0), 0, nil)
	rt.StartQD(CallbackFunc(0, func(ctx *Ctx, _ any) { order = append(order, "qd") }))
	rt.Run()
	if len(order) == 0 || order[len(order)-1] != "qd" {
		t.Fatalf("QD fired before multicast drained: %v", order)
	}
	for i := 0; i < 6; i++ {
		if arr.Get(Idx1(i)).(*counter).N != 1 {
			t.Fatalf("member %d missed", i)
		}
	}
}
