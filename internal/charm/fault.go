package charm

// Fault injection and rollback-recovery support: the runtime-side half of
// the paper's double in-memory checkpoint/restart scheme. The chaos package
// (internal/chaos) schedules faults and drives the recovery protocol; this
// file owns the transitions that must see runtime internals — killing a PE,
// discarding its queue, fencing stale messages by epoch, and rebuilding a
// consistent post-rollback state from which a checkpoint restore replays.
//
// The correctness argument is time-translation invariance: a checkpoint is
// taken only at quiescent cuts (the LB resume point, or an app-declared
// equivalent such as a PDES window boundary), where no application messages
// are in flight, no reductions are open, and every PE is about to restart
// from the same kind of kick. Restoring chare state, location caches, and
// per-element bookkeeping to exactly the cut's contents, stalling every PE
// to a common horizon, and replaying the cut's kick therefore reproduces
// the failure-free run's post-cut execution shifted rigidly in time — so
// every computed value (reductions, residuals, energies) is bit-identical.

import (
	"charmgo/internal/des"
)

// FaultFilter intercepts every network transmit. Implementations must be
// deterministic functions of their own seeded state and the call sequence:
// transmits happen in commit order — identical across backends — so a
// seeded RNG consulted here reproduces exactly.
type FaultFilter interface {
	// OnTransmit may drop the message or add extra latency. A dropped
	// message is lost permanently (no retransmit — the runtime models a
	// lossy fault); the quiescence accounting is retired by the runtime.
	OnTransmit(srcPE, dstPE, size int, at des.Time) (drop bool, extraDelay des.Time)
}

// SetFaultFilter installs the transmit interceptor (nil removes it).
func (rt *Runtime) SetFaultFilter(f FaultFilter) { rt.filter = f }

// SetLBResumeHook installs a hook called at every load-balancing resume
// point — after migrations have landed, before ResumeFromSync messages are
// enqueued. That instant is a provably quiescent cut, which makes it the
// checkpoint site of the double in-memory scheme. The hook receives the
// number of completed LB rounds; a positive return value stalls every
// active PE for that long, modeling the checkpoint cost.
func (rt *Runtime) SetLBResumeHook(fn func(round int) des.Time) { rt.lbResumeHook = fn }

// Epoch returns the current recovery epoch — the number of rollbacks
// performed so far. Messages are stamped at send and discarded on arrival
// when their epoch is stale.
func (rt *Runtime) Epoch() uint64 { return rt.epoch }

// PEDead reports whether pe has crashed and not yet been revived.
func (rt *Runtime) PEDead(pe int) bool { return rt.pes[pe].dead }

// CrashPE kills a PE at the current instant: its queued messages are
// discarded, future arrivals are dropped on the floor, and it executes
// nothing until RecoverReset revives it. Must run inside a global event so
// the crash lands at a deterministic phase boundary on both backends.
func (rt *Runtime) CrashPE(pe int) {
	p := rt.pes[pe]
	if p.dead {
		return
	}
	p.dead = true
	for _, m := range p.q {
		if m.destPE < 0 {
			rt.inflight--
		}
		rt.Stats.MsgsDiscarded++
		putMsg(m)
	}
	p.q = nil
	rt.mach.ResetNIC(pe)
	if rt.hooks != nil {
		rt.hooks.Fault(rt.eng.Now(), "crash", pe)
	}
	rt.checkQD()
}

// discard drops a live (current-epoch) message addressed to a dead PE,
// retiring its quiescence accounting.
func (rt *Runtime) discard(m *message) {
	if m.destPE < 0 {
		rt.inflight--
	}
	rt.Stats.MsgsDiscarded++
	putMsg(m)
	rt.checkQD()
}

// dropInjected loses a message to an injected network fault.
func (rt *Runtime) dropInjected(m *message, dst int, t des.Time) {
	if m.destPE < 0 {
		rt.inflight--
	}
	rt.Stats.MsgsDropped++
	putMsg(m)
	if rt.hooks != nil {
		rt.hooks.Fault(t, "drop", dst)
	}
	rt.checkQD()
}

// LocCacheSnapshot is an opaque copy of every PE's location cache, taken at
// checkpoint time and restored at rollback. Restoring (rather than
// clearing) matters for exact replay: the failure-free run proceeds past
// the cut with warm caches, so a rolled-back run must resume with the same
// cache contents or its messages route — and therefore arrive — in a
// different order.
type LocCacheSnapshot struct {
	caches []map[elemKey]locEnt
	dense  [][][]locEnt // [pe][array] flat hint tables (nil = absent)
	// tableEpoch records the element-table numbering the cached eids refer
	// to; restoring across a CompactElementTable would stamp messages with
	// remapped ids, so Restore refuses it.
	tableEpoch uint64
}

// SnapshotLocCaches deep-copies every PE's location cache (both the hash
// maps and the dense per-array hint tables).
func (rt *Runtime) SnapshotLocCaches() *LocCacheSnapshot {
	s := &LocCacheSnapshot{
		caches:     make([]map[elemKey]locEnt, len(rt.pes)),
		dense:      make([][][]locEnt, len(rt.pes)),
		tableEpoch: rt.tableEpoch,
	}
	for i, p := range rt.pes {
		for aid, t := range p.locDense {
			if t == nil {
				continue
			}
			if s.dense[i] == nil {
				s.dense[i] = make([][]locEnt, len(p.locDense))
			}
			s.dense[i][aid] = append([]locEnt(nil), t...)
		}
		if len(p.locCache) == 0 {
			continue
		}
		c := make(map[elemKey]locEnt, len(p.locCache))
		for k, v := range p.locCache { //charmvet:ordered (map copy, order-insensitive)
			c[k] = v
		}
		s.caches[i] = c
	}
	return s
}

// RestoreLocCaches replaces every PE's location cache with the snapshot's
// contents (fresh empty caches when s is nil).
func (rt *Runtime) RestoreLocCaches(s *LocCacheSnapshot) {
	if s != nil && s.tableEpoch != rt.tableEpoch {
		panic("charm: RestoreLocCaches across an element-table compaction")
	}
	for i, p := range rt.pes {
		var c map[elemKey]locEnt
		if s != nil && i < len(s.caches) && s.caches[i] != nil {
			c = make(map[elemKey]locEnt, len(s.caches[i]))
			for k, v := range s.caches[i] { //charmvet:ordered (map copy, order-insensitive)
				c[k] = v
			}
		}
		p.locCache = c
		for aid := range p.locDense {
			var t []locEnt
			if s != nil && i < len(s.dense) && s.dense[i] != nil && aid < len(s.dense[i]) && s.dense[i][aid] != nil {
				t = append([]locEnt(nil), s.dense[i][aid]...)
			}
			p.locDense[aid] = t
		}
	}
}

// RecoverReset rolls the runtime's transient state back to a quiescent cut:
// it bumps the epoch (discarding every in-flight message on arrival),
// revives dead PEs, empties every scheduler queue, clears collective and
// quiescence state, and resets per-element bookkeeping exactly as a
// load-balancing resume would. Callers (the chaos recovery driver) then
// restore chare state from a checkpoint, restore the location caches, and
// replay the cut's kick. Must run inside a global event.
func (rt *Runtime) RecoverReset() {
	rt.epoch++
	rt.inflight = 0
	for eid, buffered := range rt.pending { //charmvet:ordered (drain to pool, order-insensitive)
		for _, m := range buffered {
			putMsg(m)
		}
		delete(rt.pending, eid)
	}
	for _, a := range rt.arrays {
		a.redBase = 0
		a.redOpen = nil
	}
	rt.qdWatch = nil
	rt.lbArrived = 0
	rt.lbInProgress = false
	// The checkpoint cut had every link idle; bookings made by the
	// now-discarded traffic must not delay the replay's transmits.
	rt.mach.ResetAllNICs()
	for _, p := range rt.pes {
		p.dead = false
		for _, m := range p.q {
			putMsg(m)
		}
		p.q = nil
		p.pumpAt = -1
		for _, el := range p.sorted {
			// The checkpoint was taken at a cut where no element had called
			// AtSync and all reduction generations were equal; mid-phase
			// crashes leave both ragged, so reset them uniformly (the
			// reduction rings are empty, making generation reuse safe).
			el.atSync = false
			el.redGen = 0
			el.load = 0
			el.msgsSent = 0
			el.bytesSent = 0
			el.comm = nil
			// Retained speculation images predate the checkpoint restore.
			rt.dropSave(el)
		}
	}
	if rt.hooks != nil {
		rt.hooks.Fault(rt.eng.Now(), "rollback", -1)
	}
}

// ResumeRestoredElements re-enqueues ResumeFromSync for every element of
// every AtSync array, replaying exactly the enqueue loop of a
// load-balancing resume — the cut the checkpoint was taken at. The caller
// must first stall every PE to a common horizon so the replayed deliveries
// start from a uniform state.
func (rt *Runtime) ResumeRestoredElements() {
	for p := 0; p < rt.activePEs; p++ {
		pe := rt.pes[p]
		for _, el := range pe.sorted {
			arr := rt.arrays[el.key.array]
			if !arr.opts.UsesAtSync {
				continue
			}
			rt.inflight++
			m := getMsg()
			m.dest = el.key
			m.destPE = -1
			m.destEID = el.eid
			m.el = el
			m.ep = arr.opts.ResumeEP
			m.srcPE = p
			m.size = 16
			rt.enqueue(m, p)
		}
	}
}

// atEpoch schedules a global event that self-cancels if a rollback happens
// first: work scheduled under one epoch must not leak into the next.
func (rt *Runtime) atEpoch(t des.Time, fn func()) {
	epoch := rt.epoch
	rt.eng.At(t, func() {
		if rt.epoch == epoch {
			fn()
		}
	})
}
