package charm

import "sort"

// multicastMsg carries one payload to several co-located elements.
type multicastMsg struct {
	arr     int
	ep      EP
	idxs    []Index
	payload any
	size    int
	prio    int64
}

// Multicast delivers payload to entry method ep of each listed element —
// a section multicast (CkMulticast): instead of one network message per
// element, the runtime sends one message per destination PE and fans out
// locally, so a cell updating its ~14 computes pays 3–4 sends rather
// than 14. Elements that moved since the sender's location knowledge are
// re-routed individually through the location manager.
func (c *Ctx) Multicast(arr *Array, idxs []Index, ep EP, payload any, opts *SendOpts) {
	if len(idxs) == 0 {
		return
	}
	size := c.msgSize(payload, opts)
	var prio int64
	if opts != nil {
		prio = opts.Prio
	}
	// Group targets by the sender's best knowledge of their location.
	byPE := map[int][]Index{}
	for _, idx := range idxs {
		// Through resolveFor, not resolve: coast-forward replay must regroup
		// the section exactly as the original execution did even after the
		// location caches learned newer hints (see speculation.go).
		pe := c.resolveFor(elemKey{array: arr.id, idx: idx})
		byPE[pe] = append(byPE[pe], idx)
	}
	pes := make([]int, 0, len(byPE))
	for pe := range byPE {
		pes = append(pes, pe)
	}
	sort.Ints(pes)
	for _, pe := range pes {
		group := byPE[pe]
		if c.elem != nil {
			c.elem.msgsSent++
			c.elem.bytesSent += uint64(size)
		}
		c.SendPE(pe, c.rt.mcastPEH, multicastMsg{
			arr: arr.id, ep: ep, idxs: group, payload: payload,
			size: size, prio: prio,
		}, &SendOpts{Bytes: size + 16*len(group), Prio: prio})
		// Each element in the section is one logical application message.
		n := len(group)
		c.emit(func() { c.rt.inflight += n })
	}
}

// mcastHandler lands a multicast bundle on a PE: local elements get
// scheduler messages; elements that moved away are re-sent individually.
func (rt *Runtime) mcastHandler(ctx *Ctx, msg any) {
	m := msg.(multicastMsg)
	p := rt.pes[ctx.pe]
	for _, idx := range m.idxs {
		key := elemKey{array: m.arr, idx: idx}
		em := getMsg()
		em.dest = key
		em.destPE = -1
		em.ep = m.ep
		em.payload = m.payload
		em.prio = m.prio
		em.size = m.size
		em.srcPE = ctx.pe
		if el, ok := p.elems[key]; ok {
			em.destEID = el.eid
			em.el = el
			rt.enqueue(em, ctx.pe)
			continue
		}
		// Stale location: hand the single copy to the location manager.
		rt.transmit(em, ctx.pe, rt.homePE(key), ctx.Now())
	}
}
