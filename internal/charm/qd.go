package charm

import "charmgo/internal/des"

// qdState is one armed quiescence detection.
type qdState struct {
	cb    Callback
	fired bool
}

// StartQD arms quiescence detection (CkStartQD): cb fires once no
// application messages are in flight or queued anywhere. The completion is
// charged the cost of the two-wave counting collective the real RTS runs —
// this is what makes AMR mesh restructuring O(1) collectives instead of
// O(depth) (§IV-A.4).
func (rt *Runtime) StartQD(cb Callback) {
	st := &qdState{cb: cb}
	rt.qdWatch = append(rt.qdWatch, st)
	rt.checkQD()
}

// QDLatency returns the modeled cost of the two counting waves.
func (rt *Runtime) QDLatency() des.Time {
	return 2 * rt.barrierLatency()
}

// checkQD fires any armed detections when the system is quiescent.
func (rt *Runtime) checkQD() {
	if len(rt.qdWatch) == 0 || rt.inflight > 0 {
		return
	}
	watches := rt.qdWatch
	rt.qdWatch = nil
	fireAt := rt.MaxBusy() + rt.QDLatency()
	for _, st := range watches {
		st := st
		rt.atEpoch(fireAt, func() {
			if st.fired {
				return
			}
			// Re-verify: activity may have restarted during the wave
			// (a timer or driver injected new work); if so, re-arm.
			if rt.inflight > 0 {
				rt.qdWatch = append(rt.qdWatch, st)
				return
			}
			st.fired = true
			rt.Stats.QDRounds++
			ctx := rt.newCtx(0, nil)
			st.cb.fire(ctx, nil)
			rt.finishExec(ctx, nil)
		})
	}
}
