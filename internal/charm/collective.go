package charm

import "sort"

// Callback names a continuation for collective operations (reductions,
// quiescence detection, checkpoints) — the CkCallback of the model.
type Callback struct {
	kind int // 0 none, 1 send, 2 bcast, 3 func
	arr  *Array
	idx  Index
	ep   EP
	fn   func(ctx *Ctx, result any)
	fnPE int
}

// CallbackSend delivers the collective's result to one element.
func CallbackSend(arr *Array, idx Index, ep EP) Callback {
	return Callback{kind: 1, arr: arr, idx: idx, ep: ep}
}

// CallbackBcast broadcasts the collective's result to every element of arr.
func CallbackBcast(arr *Array, ep EP) Callback {
	return Callback{kind: 2, arr: arr, ep: ep}
}

// CallbackFunc runs fn on the given PE with the collective's result.
func CallbackFunc(pe int, fn func(ctx *Ctx, result any)) Callback {
	return Callback{kind: 3, fn: fn, fnPE: pe}
}

// fire invokes the callback from the context of the completing execution.
func (cb Callback) fire(ctx *Ctx, result any) {
	switch cb.kind {
	case 1:
		ctx.Send(cb.arr, cb.idx, cb.ep, result)
	case 2:
		ctx.Broadcast(cb.arr, cb.ep, result, nil)
	case 3:
		if cb.fnPE == ctx.pe {
			cb.fn(ctx, result)
			return
		}
		ctx.SendPE(cb.fnPE, ctx.rt.funcPEH, funcMsg{fn: cb.fn, result: result}, nil)
	}
}

type funcMsg struct {
	fn     func(ctx *Ctx, result any)
	result any
}

// Reducer combines contributions.
type Reducer struct {
	Name  string
	Merge func(a, b any) any
}

// Built-in reducers.
var (
	SumF64 = Reducer{"sum_f64", func(a, b any) any { return a.(float64) + b.(float64) }}
	MinF64 = Reducer{"min_f64", func(a, b any) any { return min(a.(float64), b.(float64)) }}
	MaxF64 = Reducer{"max_f64", func(a, b any) any { return max(a.(float64), b.(float64)) }}
	SumI64 = Reducer{"sum_i64", func(a, b any) any { return a.(int64) + b.(int64) }}
	MinI64 = Reducer{"min_i64", func(a, b any) any { return min(a.(int64), b.(int64)) }}
	MaxI64 = Reducer{"max_i64", func(a, b any) any { return max(a.(int64), b.(int64)) }}
	AndB   = Reducer{"and", func(a, b any) any { return a.(bool) && b.(bool) }}
	OrB    = Reducer{"or", func(a, b any) any { return a.(bool) || b.(bool) }}

	// SumVecF64 sums equal-length []float64 contributions elementwise
	// (histogram reductions). The merge does not mutate its inputs.
	SumVecF64 = Reducer{"sum_vec_f64", func(a, b any) any {
		av, bv := a.([]float64), b.([]float64)
		out := make([]float64, len(av))
		copy(out, av)
		for i := range bv {
			out[i] += bv[i]
		}
		return out
	}}
)

// ---- broadcast ----

type bcastMsg struct {
	arr     int
	ep      EP
	payload any
	size    int
	prio    int64
}

// Broadcast delivers payload to entry method ep of every element of arr via
// a spanning tree over the active PEs.
func (c *Ctx) Broadcast(arr *Array, ep EP, payload any, opts *SendOpts) {
	size := c.msgSize(payload, opts)
	var prio int64
	if opts != nil {
		prio = opts.Prio
	}
	bm := bcastMsg{arr: arr.id, ep: ep, payload: payload, size: size, prio: prio}
	if c.pe == 0 {
		c.rt.bcastFanout(c, bm)
		return
	}
	c.SendPE(0, c.rt.bcastPEH, bm, &SendOpts{Bytes: size, Prio: prioControl})
}

func (rt *Runtime) bcastHandler(ctx *Ctx, msg any) {
	rt.bcastFanout(ctx, msg.(bcastMsg))
}

// bcastFanout forwards the broadcast down the PE tree and delivers to local
// elements.
func (rt *Runtime) bcastFanout(ctx *Ctx, bm bcastMsg) {
	p := ctx.pe
	for _, child := range []int{2*p + 1, 2*p + 2} {
		if child < rt.activePEs {
			ctx.SendPE(child, rt.bcastPEH, bm, &SendOpts{Bytes: bm.size, Prio: prioControl})
		}
	}
	// Local deliveries: one scheduler message per element.
	arr := rt.arrays[bm.arr]
	pe := rt.pes[p]
	for _, el := range pe.sorted {
		if el.key.array != bm.arr {
			continue
		}
		m := &message{
			dest:    el.key,
			destPE:  -1,
			ep:      bm.ep,
			payload: bm.payload,
			prio:    bm.prio,
			size:    bm.size,
			srcPE:   p,
		}
		ctx.emit(func() {
			rt.inflight++
			rt.enqueue(m, p)
		})
	}
	_ = arr
}

// ---- reductions ----

type redKey struct {
	arr int
	gen uint64
}

// redRun tracks one reduction generation. Contributions are counted
// globally against the element population at the reduction's start, which
// makes reductions tolerant of element migration mid-stream (the RTS may
// rebalance, shrink, or expand while a reduction is open); the spanning
// tree's cost is modeled as a combining-tree latency charged between the
// final contribution and the callback delivery.
//
// Contributions are buffered and merged in canonical element-index order,
// never arrival order: floating-point merges are order-sensitive, and a
// rollback replay is a time-shifted re-execution whose re-rounded arrival
// times may interleave contributions differently. Index-ordered merging
// keeps the result bit-identical regardless.
type redRun struct {
	key      redKey
	expected int
	contribs []redContrib
	reducer  Reducer
	cb       Callback
}

type redContrib struct {
	idx Index
	val any
}

// Contribute joins the element's next reduction over its array with the
// given value; when every element has contributed, the combined result is
// delivered through cb (which must be identical across contributors).
// Elements must not be created or destroyed while a generation they
// participate in is open (dynamic insertion aligns new elements to the
// creator's generation — see Ctx.Insert).
func (c *Ctx) Contribute(value any, reducer Reducer, cb Callback) {
	el := c.elem
	if el == nil {
		panic("charm: Contribute outside an array element")
	}
	rt := c.rt
	gen := el.redGen
	el.redGen++
	key := redKey{arr: el.key.array, gen: gen}
	elIdx := el.key.idx
	c.Charge(2e-7) // contribution bookkeeping
	at := c.Now()
	// The merge touches the runtime's global reduction table, so it is a
	// deferred effect; the contribution's timestamp is captured now, at
	// the virtual moment the element contributed.
	c.emit(func() {
		run, ok := rt.reductions[key]
		if !ok {
			expected := rt.arrays[key.arr].Len()
			if expected == 0 {
				panic("charm: reduction over empty array")
			}
			run = &redRun{key: key, expected: expected, reducer: reducer, cb: cb}
			rt.reductions[key] = run
		}
		run.contribs = append(run.contribs, redContrib{idx: elIdx, val: value})
		if len(run.contribs) < run.expected {
			return
		}
		// Complete: fold in canonical index order, then deliver the result
		// after the combining tree's latency.
		sort.Slice(run.contribs, func(i, j int) bool {
			return run.contribs[i].idx.Less(run.contribs[j].idx)
		})
		result := run.contribs[0].val
		for _, rc := range run.contribs[1:] {
			result = run.reducer.Merge(result, rc.val)
		}
		fireCB := run.cb
		delete(rt.reductions, key)
		rt.atEpoch(at+rt.barrierLatency(), func() {
			ctx := rt.newCtx(0, nil)
			fireCB.fire(ctx, result)
			rt.finishExec(ctx, nil)
		})
	})
}

func (rt *Runtime) funcHandler(ctx *Ctx, msg any) {
	fm := msg.(funcMsg)
	fm.fn(ctx, fm.result)
}

func min[T int64 | float64](a, b T) T {
	if a < b {
		return a
	}
	return b
}

func max[T int64 | float64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
