package charm

import (
	"fmt"
	"sort"

	"charmgo/internal/des"
)

// Callback names a continuation for collective operations (reductions,
// quiescence detection, checkpoints) — the CkCallback of the model.
type Callback struct {
	kind int // 0 none, 1 send, 2 bcast, 3 func
	arr  *Array
	idx  Index
	ep   EP
	fn   func(ctx *Ctx, result any)
	fnPE int
}

// CallbackSend delivers the collective's result to one element.
func CallbackSend(arr *Array, idx Index, ep EP) Callback {
	return Callback{kind: 1, arr: arr, idx: idx, ep: ep}
}

// CallbackBcast broadcasts the collective's result to every element of arr.
func CallbackBcast(arr *Array, ep EP) Callback {
	return Callback{kind: 2, arr: arr, ep: ep}
}

// CallbackFunc runs fn on the given PE with the collective's result.
func CallbackFunc(pe int, fn func(ctx *Ctx, result any)) Callback {
	return Callback{kind: 3, fn: fn, fnPE: pe}
}

// fire invokes the callback from the context of the completing execution.
func (cb Callback) fire(ctx *Ctx, result any) {
	switch cb.kind {
	case 1:
		ctx.Send(cb.arr, cb.idx, cb.ep, result)
	case 2:
		ctx.Broadcast(cb.arr, cb.ep, result, nil)
	case 3:
		if cb.fnPE == ctx.pe {
			cb.fn(ctx, result)
			return
		}
		ctx.SendPE(cb.fnPE, ctx.rt.funcPEH, funcMsg{fn: cb.fn, result: result}, nil)
	}
}

type funcMsg struct {
	fn     func(ctx *Ctx, result any)
	result any
}

// Reducer combines contributions.
type Reducer struct {
	Name  string
	Merge func(a, b any) any
}

// Built-in reducers.
var (
	SumF64 = Reducer{"sum_f64", func(a, b any) any { return a.(float64) + b.(float64) }}
	MinF64 = Reducer{"min_f64", func(a, b any) any { return min(a.(float64), b.(float64)) }}
	MaxF64 = Reducer{"max_f64", func(a, b any) any { return max(a.(float64), b.(float64)) }}
	SumI64 = Reducer{"sum_i64", func(a, b any) any { return a.(int64) + b.(int64) }}
	MinI64 = Reducer{"min_i64", func(a, b any) any { return min(a.(int64), b.(int64)) }}
	MaxI64 = Reducer{"max_i64", func(a, b any) any { return max(a.(int64), b.(int64)) }}
	AndB   = Reducer{"and", func(a, b any) any { return a.(bool) && b.(bool) }}
	OrB    = Reducer{"or", func(a, b any) any { return a.(bool) || b.(bool) }}

	// SumVecF64 sums equal-length []float64 contributions elementwise
	// (histogram reductions). The merge does not mutate its inputs.
	SumVecF64 = Reducer{"sum_vec_f64", func(a, b any) any {
		av, bv := a.([]float64), b.([]float64)
		out := make([]float64, len(av))
		copy(out, av)
		for i := range bv {
			out[i] += bv[i]
		}
		return out
	}}
)

// ---- broadcast ----

type bcastMsg struct {
	arr     int
	ep      EP
	payload any
	size    int
	prio    int64
}

// Broadcast delivers payload to entry method ep of every element of arr via
// a spanning tree over the active PEs.
func (c *Ctx) Broadcast(arr *Array, ep EP, payload any, opts *SendOpts) {
	size := c.msgSize(payload, opts)
	var prio int64
	if opts != nil {
		prio = opts.Prio
	}
	bm := bcastMsg{arr: arr.id, ep: ep, payload: payload, size: size, prio: prio}
	if c.pe == 0 {
		c.rt.bcastFanout(c, bm)
		return
	}
	c.SendPE(0, c.rt.bcastPEH, bm, &SendOpts{Bytes: size, Prio: prioControl})
}

func (rt *Runtime) bcastHandler(ctx *Ctx, msg any) {
	rt.bcastFanout(ctx, msg.(bcastMsg))
}

// bcastFanout forwards the broadcast down the PE tree and delivers to local
// elements.
func (rt *Runtime) bcastFanout(ctx *Ctx, bm bcastMsg) {
	p := ctx.pe
	for _, child := range []int{2*p + 1, 2*p + 2} {
		if child < rt.activePEs {
			ctx.SendPE(child, rt.bcastPEH, bm, &SendOpts{Bytes: bm.size, Prio: prioControl})
		}
	}
	if ctx.replay {
		// The fan-out's deliveries committed long ago; re-allocating them
		// into a discarded effect list would leak pooled messages, and the
		// current element population may differ from the original run's.
		return
	}
	// Local deliveries: one scheduler message per element, pooled and
	// pre-stamped with the destination (the element cannot move between
	// this enqueue and its execution on the same PE's queue).
	pe := rt.pes[p]
	for _, el := range pe.sorted {
		if el.key.array != bm.arr {
			continue
		}
		m := getMsg()
		m.dest = el.key
		m.destPE = -1
		m.destEID = el.eid
		m.el = el
		m.ep = bm.ep
		m.payload = bm.payload
		m.prio = bm.prio
		m.size = bm.size
		m.srcPE = p
		if ctx.fx == nil {
			rt.inflight++
			rt.enqueue(m, p)
			continue
		}
		ctx.fx.fns = append(ctx.fx.fns, func() {
			rt.inflight++
			//charmvet:retain (effect closure: runs at this delivery's commit, before the message could be recycled)
			rt.enqueue(m, p)
		})
	}
}

// ---- reductions ----

// redRun tracks one reduction generation. Contributions are counted
// globally against the element population at the reduction's start, which
// makes reductions tolerant of element migration mid-stream (the RTS may
// rebalance, shrink, or expand while a reduction is open); the spanning
// tree's cost is modeled as a combining-tree latency charged between the
// final contribution and the callback delivery.
//
// Contributions are merged in canonical element-index order, never arrival
// order: floating-point merges are order-sensitive, and a rollback replay
// is a time-shifted re-execution whose re-rounded arrival times may
// interleave contributions differently. A run starts in ranked mode —
// values land at vals[element rank] and the fold walks vals left to right,
// which IS canonical index order, with no sort. If the array's population
// changes while the run is open, the run demotes to spill mode (the old
// append-and-sort scheme), whose sorted fold is bit-identical.
type redRun struct {
	expected int
	count    int
	reducer  Reducer
	cb       Callback

	ranked bool
	vals   []any  // by element rank (ranked mode)
	have   []bool // rank slots filled (for demotion)

	spill []redContrib // spill mode: sorted by index at completion
}

type redContrib struct {
	idx Index
	val any
}

// demote converts a ranked run to spill mode, keying the placed values back
// to indices through the array's rank table — which must still describe the
// population the run was opened over (callers demote before mutating it).
func (run *redRun) demote(a *Array) {
	for r, ok := range run.have {
		if ok {
			run.spill = append(run.spill, redContrib{idx: a.rankKeys[r], val: run.vals[r]})
		}
	}
	run.ranked = false
	run.vals, run.have = nil, nil
}

// redRunFor locates generation gen's run in the array's ring, opening it on
// first contribution. Commit context.
func (a *Array) redRunFor(gen uint64, reducer Reducer, cb Callback) *redRun {
	if gen < a.redBase {
		panic(fmt.Sprintf("charm: contribution to completed reduction generation %d of %s", gen, a.name))
	}
	slot := int(gen - a.redBase)
	for slot >= len(a.redOpen) {
		a.redOpen = append(a.redOpen, nil)
	}
	run := a.redOpen[slot]
	if run == nil {
		expected := a.Len()
		if expected == 0 {
			panic("charm: reduction over empty array")
		}
		if a.ranksDirty {
			a.rebuildRanks()
		}
		run = &redRun{expected: expected, reducer: reducer, cb: cb, ranked: true}
		if cap(a.spareVals) >= expected {
			// Recycled from the previous completed generation, already
			// cleared (see closeRun).
			run.vals, run.have = a.spareVals[:expected], a.spareHave[:expected]
			a.spareVals, a.spareHave = nil, nil
		} else {
			run.vals, run.have = make([]any, expected), make([]bool, expected)
		}
		a.redOpen[slot] = run
	}
	return run
}

// closeRun retires a delivered generation, advancing the ring's base past
// completed head slots and recycling the rank buffers.
func (a *Array) closeRun(gen uint64, run *redRun) {
	a.redOpen[gen-a.redBase] = nil
	for len(a.redOpen) > 0 && a.redOpen[0] == nil {
		a.redOpen = a.redOpen[1:]
		a.redBase++
	}
	if run.vals != nil {
		clear(run.vals)
		clear(run.have)
		a.spareVals, a.spareHave = run.vals[:0], run.have[:0]
	}
}

// Contribute joins the element's next reduction over its array with the
// given value; when every element has contributed, the combined result is
// delivered through cb (which must be identical across contributors).
// Elements must not be created or destroyed while a generation they
// participate in is open (dynamic insertion aligns new elements to the
// creator's generation — see Ctx.Insert).
func (c *Ctx) Contribute(value any, reducer Reducer, cb Callback) {
	el := c.elem
	if el == nil {
		panic("charm: Contribute outside an array element")
	}
	rt := c.rt
	gen := el.redGen
	el.redGen++
	c.Charge(2e-7) // contribution bookkeeping
	at := c.Now()
	// The merge touches the array's reduction ring — global state — so in
	// buffered mode it is a deferred effect; the contribution's timestamp
	// is captured now, at the virtual moment the element contributed.
	if c.fx == nil {
		rt.contribute(el, gen, value, reducer, cb, at)
		return
	}
	c.fx.fns = append(c.fx.fns, func() { rt.contribute(el, gen, value, reducer, cb, at) })
}

// contribute is the commit half of Contribute.
func (rt *Runtime) contribute(el *element, gen uint64, value any, reducer Reducer, cb Callback, at des.Time) {
	a := rt.arrays[el.key.array]
	run := a.redRunFor(gen, reducer, cb)
	if run.ranked {
		run.vals[el.redRank] = value
		run.have[el.redRank] = true
	} else {
		run.spill = append(run.spill, redContrib{idx: el.key.idx, val: value})
	}
	run.count++
	if run.count < run.expected {
		return
	}
	// Complete: fold in canonical index order, then deliver the result
	// after the combining tree's latency.
	var result any
	if run.ranked {
		result = run.vals[0]
		for _, v := range run.vals[1:] {
			result = run.reducer.Merge(result, v)
		}
	} else {
		sort.Slice(run.spill, func(i, j int) bool {
			return run.spill[i].idx.Less(run.spill[j].idx)
		})
		result = run.spill[0].val
		for _, rc := range run.spill[1:] {
			result = run.reducer.Merge(result, rc.val)
		}
	}
	fireCB := run.cb
	a.closeRun(gen, run)
	rt.atEpoch(at+rt.barrierLatency(), func() {
		ctx := rt.newCtx(0, nil)
		fireCB.fire(ctx, result)
		rt.finishExec(ctx, nil)
	})
}

func (rt *Runtime) funcHandler(ctx *Ctx, msg any) {
	fm := msg.(funcMsg)
	fm.fn(ctx, fm.result)
}

func min[T int64 | float64](a, b T) T {
	if a < b {
		return a
	}
	return b
}

func max[T int64 | float64](a, b T) T {
	if a > b {
		return a
	}
	return b
}
