package charm

// Proactive-evacuation support: the runtime-side half of fault-prediction
// handling (the paper's §III-B evacuation response, the cloud-preemption
// scenario of the adaptive-RTS line of work). When an external signal
// predicts a PE's death, the fault-tolerance driver (internal/chaos) marks
// the PE evacuating — excluding it as a load-balancing destination — and,
// at the next quiescent cut, migrates every chare off it through the
// normal PUP path. A fully evacuated PE hosts no elements when the
// predicted failure lands, so its death costs no rollback: a standby
// process takes over its slot and the run continues in the same epoch.

import (
	"charmgo/internal/pup"
)

// SetPEEvacuating marks pe as evacuating ahead of a predicted failure (or,
// with false, clears the mark). While set, load-balancing strategies do
// not see pe as a placement target and migrations onto it are refused.
// Must be called from commit/global-event context.
func (rt *Runtime) SetPEEvacuating(pe int, v bool) { rt.pes[pe].evac = v }

// PEEvacuating reports whether pe is marked evacuating.
func (rt *Runtime) PEEvacuating(pe int) bool { return rt.pes[pe].evac }

// ElementsOn returns the number of array elements resident on pe — zero
// once an evacuation has fully drained it.
func (rt *Runtime) ElementsOn(pe int) int { return len(rt.pes[pe].sorted) }

// EvacuatePE migrates every array element off pe through the normal PUP
// migration path, assigning destinations round-robin over dests in the
// PE's deterministic element order. It must run at a quiescent cut (no
// application messages in flight) from commit/global-event context — the
// same invariant the checkpoint layer relies on — so the moves are a pure
// relocation, invisible to message routing beyond stale-hint forwarding.
//
// It returns the applied moves (ToPE is the destination each element
// landed on) and the total PUP payload bytes, for the caller's cost model.
func (rt *Runtime) EvacuatePE(pe int, dests []int) (moves []Migration, bytes int64) {
	if len(dests) == 0 {
		return nil, 0
	}
	// moveElement mutates p.sorted; walk a copy.
	els := append([]*element(nil), rt.pes[pe].sorted...)
	for i, el := range els {
		to := dests[i%len(dests)]
		bytes += int64(pup.Size(el.obj)) + 64
		moves = append(moves, Migration{
			Array: rt.arrays[el.key.array], Idx: el.key.idx, ToPE: to,
		})
		rt.moveElement(el, to, false)
	}
	return moves, bytes
}

// ApplyMigrations applies a precomputed migration list through the normal
// PUP path, skipping elements that no longer exist, moves that are already
// in place, and destinations that are inactive, dead, or evacuating. The
// fault-tolerance driver uses it to return evacuated elements to a
// replaced PE when no load-balancing round has re-placed them. Quiescent
// commit/global-event context, like EvacuatePE.
func (rt *Runtime) ApplyMigrations(migs []Migration) (moved int, bytes int64) {
	for _, mg := range migs {
		el, ok := mg.Array.elems[mg.Idx]
		if !ok || el.pe == mg.ToPE || mg.ToPE >= rt.activePEs ||
			rt.pes[mg.ToPE].dead || rt.pes[mg.ToPE].evac {
			continue
		}
		bytes += int64(pup.Size(el.obj)) + 64
		rt.moveElement(el, mg.ToPE, false)
		moved++
	}
	return moved, bytes
}
