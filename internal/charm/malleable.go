package charm

// SetActivePEs reconfigures the job to run on the first n PEs (§III-D
// malleability). On shrink, elements on evacuated PEs migrate to their new
// home PEs; on expand, the new PEs become eligible targets and the next
// load-balancing round spreads work onto them. Location caches are flushed
// because home assignments depend on the active PE count.
//
// The timing of the shrink/expand protocol (evacuation transfers, process
// restart, reconnection) is modeled by internal/malleable; this method is
// the instantaneous reconfiguration primitive it builds on.
func (rt *Runtime) SetActivePEs(n int) {
	if n < 1 || n > len(rt.pes) {
		panic("charm: active PE count out of range")
	}
	old := rt.activePEs
	rt.activePEs = n
	if n < old {
		// Evacuate chares from the removed PEs (§III-D: "evacuate chares
		// from nodes which would be removed").
		for p := n; p < old; p++ {
			pe := rt.pes[p]
			for len(pe.sorted) > 0 {
				el := pe.sorted[0]
				rt.moveElement(el, rt.homePE(el.key), false)
			}
		}
	}
	for _, pe := range rt.pes {
		clear(pe.locCache)
		for i := range pe.locDense {
			pe.locDense[i] = nil
		}
	}
	// A reconfiguration is a natural quiescent cut for long-running AMR or
	// shrink/expand jobs; compact the location tables opportunistically so
	// eids destroyed before the cut stop occupying slab slots. A no-op when
	// messages are still in flight.
	rt.CompactElementTable()
}
