package charm

import "container/heap"

// message is one asynchronous entry-method invocation in flight or queued.
type message struct {
	dest    elemKey // element target (when pe < 0 is not used)
	destPE  int     // PE target for PE-level handlers; -1 for element target
	ep      EP
	payload any
	prio    int64 // lower value = higher priority (Charm++ convention)
	size    int   // modeled bytes on the wire
	srcPE   int
	seq     uint64 // FIFO tie-break within a priority level
	hops    int    // location-manager forwarding hops taken so far
	epoch   uint64 // recovery epoch at send; stale messages die on arrival

	// Tracing (internal/projections): traceID is the send event's ID
	// (0 = untraced), cause the ID of the send that triggered the sending
	// execution.
	traceID uint64
	cause   uint64
}

// msgQueue is a priority queue ordered by (prio, seq): the PE scheduler
// always picks the highest-priority (lowest value), oldest message —
// message-driven execution.
type msgQueue []*message

func (q msgQueue) Len() int { return len(q) }
func (q msgQueue) Less(i, j int) bool {
	if q[i].prio != q[j].prio {
		return q[i].prio < q[j].prio
	}
	return q[i].seq < q[j].seq
}
func (q msgQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *msgQueue) Push(x any)   { *q = append(*q, x.(*message)) }
func (q *msgQueue) Pop() any {
	old := *q
	n := len(old)
	m := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return m
}

func (q *msgQueue) push(m *message) { heap.Push(q, m) }
func (q *msgQueue) pop() *message   { return heap.Pop(q).(*message) }
