package charm

import (
	"sync"
	"sync/atomic"
)

// message is one asynchronous entry-method invocation in flight or queued.
//
// Messages are pool-recycled: the runtime owns every *message it mints via
// getMsg and returns it with putMsg at exactly one terminal point — the end
// of the delivery commit, a discard/drop, a stale-epoch arrival, or a
// queue/pending drain during fault recovery. Forwarding paths keep the
// message alive; nothing outside the runtime may retain one past its
// handler invocation.
type message struct {
	dest    elemKey  // element target (when pe < 0 is not used)
	destPE  int      // PE target for PE-level handlers; -1 for element target
	destEID int32    // dense element id of dest, -1 until resolved
	el      *element // destination element, stamped at enqueue (fast delivery)
	ep      EP
	payload any
	prio    int64 // lower value = higher priority (Charm++ convention)
	size    int   // modeled bytes on the wire
	srcPE   int
	seq     uint64 // FIFO tie-break within a priority level
	hops    int    // location-manager forwarding hops taken so far
	epoch   uint64 // recovery epoch at send; stale messages die on arrival

	// Tracing (internal/projections): traceID is the send event's ID
	// (0 = untraced), cause the ID of the send that triggered the sending
	// execution.
	traceID uint64
	cause   uint64
}

var msgPool = sync.Pool{New: func() any { return new(message) }}

// PoolStats counts message-pool traffic for the telemetry layer: Gets-Puts
// is the number of live (checked-out) messages — the event-pool occupancy.
// The counters are process-wide (the pool is), atomic (phase workers call
// getMsg concurrently), and strictly side-band: nothing reads them on a
// simulation path.
type PoolStats struct {
	Gets atomic.Uint64
	Puts atomic.Uint64
}

// Outstanding returns the number of currently checked-out messages.
func (ps *PoolStats) Outstanding() int64 {
	return int64(ps.Gets.Load()) - int64(ps.Puts.Load())
}

// poolStats is nil until EnablePoolStats: the disabled hot path is one
// atomic pointer load and a nil check per get/put.
var poolStats atomic.Pointer[PoolStats]

// EnablePoolStats turns on pool accounting (idempotent) and returns the
// process-wide stats. telemetry.Attach calls it; once enabled it stays on.
func EnablePoolStats() *PoolStats {
	ps := &PoolStats{}
	if poolStats.CompareAndSwap(nil, ps) {
		return ps
	}
	return poolStats.Load()
}

// getMsg returns a zeroed message with destEID unresolved. Callers must set
// destPE explicitly (-1 for element targets).
func getMsg() *message {
	if ps := poolStats.Load(); ps != nil {
		ps.Gets.Add(1)
	}
	m := msgPool.Get().(*message)
	m.destEID = -1
	return m
}

// putMsg recycles a message at its terminal point, dropping payload and
// element references so the pool never pins application state.
func putMsg(m *message) {
	if ps := poolStats.Load(); ps != nil {
		ps.Puts.Add(1)
	}
	*m = message{}
	msgPool.Put(m)
}

// msgQueue is a priority queue ordered by (prio, seq): the PE scheduler
// always picks the highest-priority (lowest value), oldest message —
// message-driven execution.
//
// It is an inline binary min-heap rather than container/heap: (prio, seq)
// is a total order (seq is unique per runtime), so the pop sequence is a
// property of the ordering alone and identical for any correct heap —
// swapping out container/heap (whose every comparison is an interface
// call) cannot change scheduling.
type msgQueue []*message

func msgLess(a, b *message) bool {
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

func (q *msgQueue) push(m *message) {
	//charmvet:retain (the queue owns the message until pop; recycling happens only after delivery commits)
	h := append(*q, m)
	*q = h
	// Sift the hole up instead of swapping: half the writes.
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !msgLess(m, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	//charmvet:retain (heap sift: placing the owned message into its slot)
	h[i] = m
}

func (q *msgQueue) pop() *message {
	h := *q
	n := len(h) - 1
	top := h[0]
	m := h[n]
	h[n] = nil
	h = h[:n]
	*q = h
	if n == 0 {
		return top
	}
	i := 0
	for {
		c := 2*i + 1
		if c >= n {
			break
		}
		if r := c + 1; r < n && msgLess(h[r], h[c]) {
			c = r
		}
		if !msgLess(h[c], m) {
			break
		}
		h[i] = h[c]
		i = c
	}
	//charmvet:retain (heap sift: placing the owned message into its slot)
	h[i] = m
	return top
}
