package charm

import (
	"runtime"
	"testing"

	"charmgo/internal/pup"
)

// pingPair bounces a nil-payload message between two elements, keeping the
// application out of the measurement so the numbers isolate the runtime's
// send→schedule→execute→commit path.
type pingPair struct {
	Peer, Left int
}

func (o *pingPair) Pup(p *pup.Pup) {
	p.Int(&o.Peer)
	p.Int(&o.Left)
}

const epPingPair EP = 0

// TestSteadyStateAllocsPerEvent pins the end-to-end delivery path at well
// under one heap allocation per engine event. The budget guards the
// pooling that makes paper-scale runs fit in memory: pooled messages,
// the per-PE recycled Ctx, the preallocated commit closures, and the
// engine's slab-allocated event store. The ISSUE acceptance bound is 2
// allocs/event; the runtime path measures ~0, so 0.5 leaves headroom for
// incidental warmup while still catching any reintroduced per-event
// allocation.
func TestSteadyStateAllocsPerEvent(t *testing.T) {
	const rounds = 50000
	rt := testRT(2)
	var arr *Array
	handlers := []Handler{
		epPingPair: func(obj Chare, ctx *Ctx, msg any) {
			o := obj.(*pingPair)
			o.Left--
			if o.Left <= 0 {
				ctx.Exit()
				return
			}
			ctx.Send(arr, Idx1(o.Peer), epPingPair, nil)
		},
	}
	arr = rt.DeclareArray("ping", func() Chare { return &pingPair{} }, handlers, ArrayOpts{})
	arr.InsertOn(Idx1(0), &pingPair{Peer: 1, Left: rounds}, 0)
	arr.InsertOn(Idx1(1), &pingPair{Peer: 0, Left: rounds}, 1)
	rt.Boot(func(ctx *Ctx) { ctx.Send(arr, Idx1(0), epPingPair, nil) })

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	rt.Run()
	runtime.ReadMemStats(&after)

	ev := rt.Engine().Executed()
	if ev == 0 {
		t.Fatal("no events executed")
	}
	perEvent := float64(after.Mallocs-before.Mallocs) / float64(ev)
	t.Logf("steady-state allocs/event = %.4f over %d events", perEvent, ev)
	if perEvent > 0.5 {
		t.Fatalf("steady-state allocs/event = %.3f, want <= 0.5 (message/Ctx/commit pooling regressed)", perEvent)
	}
}

// TestResolveAllocFree pins the location-manager lookup (the per-send hot
// path) at zero allocations once the element tables are built.
func TestResolveAllocFree(t *testing.T) {
	rt := testRT(8)
	arr := declCounters(rt, ArrayOpts{})
	for i := 0; i < 256; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	keys := make([]elemKey, 256)
	for i := range keys {
		keys[i] = elemKey{array: arr.id, idx: Idx1(i)}
	}
	i := 0
	if n := testing.AllocsPerRun(2000, func() {
		_ = rt.resolve(0, keys[i%len(keys)])
		i++
	}); n > 0 {
		t.Fatalf("resolve allocates %.2f per lookup, want 0", n)
	}
}

// TestSnapshotSkipFastPathAllocs pins the infrequent-state-saving fast
// path at zero allocations: when a speculated execution touches an element
// that still holds a retained image, touchElem must only bump the
// avoided counter and record the element in the shard's touched set —
// no packing, no image buffer, no metadata copies. This is the path taken
// K-1 times out of every K speculated executions, so a single allocation
// here would erase most of what sparse imaging saves.
func TestSnapshotSkipFastPathAllocs(t *testing.T) {
	sc := &specController{}
	sp := &shardSpec{}
	els := []*element{
		{save: &elemSave{}},
		{save: &elemSave{}},
		{save: &elemSave{}},
	}
	// Warm once so sp.touched reaches its working capacity.
	for _, el := range els {
		sp.touchElem(sc, el)
	}
	if n := testing.AllocsPerRun(1000, func() {
		sp.touched = sp.touched[:0]
		for _, el := range els {
			sp.touchElem(sc, el)
			sp.touchElem(sc, el) // dedup re-touch, the commonest case of all
		}
	}); n > 0 {
		t.Fatalf("snapshot-skipped touch allocates %.2f per phase, want 0", n)
	}
}

// TestMsgQueueAllocSteadyState pins the PE scheduler queue: once the heap
// slice has grown to its working size, push/pop cycles must not allocate
// (messages themselves come from the pool).
func TestMsgQueueAllocSteadyState(t *testing.T) {
	var q msgQueue
	msgs := make([]*message, 64)
	for i := range msgs {
		msgs[i] = &message{prio: int64(i % 7), seq: uint64(i)}
	}
	for _, m := range msgs {
		q.push(m)
	}
	for len(q) > 0 {
		q.pop()
	}
	if n := testing.AllocsPerRun(1000, func() {
		for _, m := range msgs {
			q.push(m)
		}
		for len(q) > 0 {
			q.pop()
		}
	}); n > 0 {
		t.Fatalf("msgQueue push/pop allocates %.2f per cycle at steady state, want 0", n)
	}
}
