// Package charm implements the migratable-objects runtime at the heart of
// the reproduction: chare arrays, proxies, asynchronous entry methods,
// prioritized message-driven scheduling, scalable location management with
// home PEs and location caches, spanning-tree broadcasts and reductions,
// quiescence detection, AtSync load-balancing hooks, and migration.
//
// The runtime executes on the virtual machine of internal/machine under the
// deterministic event engine of internal/des: entry methods run real Go
// code and charge modeled compute cost, so application results are real
// while timing reflects the configured machine.
package charm

import (
	"fmt"
	"math/bits"
)

// Index identifies an element within a chare array. It is a comparable
// value that can encode 1-D through 6-D integer indices or the bitvector
// indices used by tree-structured codes such as AMR (§IV-A of the paper).
type Index struct {
	Kind uint8
	A    uint64
	B    uint64
	C    uint64
}

// Index kinds.
const (
	Kind1D uint8 = iota + 1
	Kind2D
	Kind3D
	Kind6D
	KindBitVec
)

// Idx1 builds a 1-D index.
func Idx1(i int) Index { return Index{Kind: Kind1D, A: uint64(int64(i))} }

// Idx2 builds a 2-D index.
func Idx2(i, j int) Index {
	return Index{Kind: Kind2D, A: uint64(int64(i)), B: uint64(int64(j))}
}

// Idx3 builds a 3-D index.
func Idx3(i, j, k int) Index {
	return Index{Kind: Kind3D, A: uint64(int64(i)), B: uint64(int64(j)), C: uint64(int64(k))}
}

// Idx6 builds a 6-D index (e.g. LeanMD pairwise Computes). Each coordinate
// must fit in 21 bits as an unsigned value.
func Idx6(a, b, c, d, e, f int) Index {
	pack3 := func(x, y, z int) uint64 {
		const m = 1<<21 - 1
		return uint64(x&m)<<42 | uint64(y&m)<<21 | uint64(z&m)
	}
	return Index{Kind: Kind6D, A: pack3(a, b, c), B: pack3(d, e, f)}
}

// Dims6 unpacks a 6-D index.
func (ix Index) Dims6() [6]int {
	un := func(v uint64) (int, int, int) {
		const m = 1<<21 - 1
		return int(v >> 42 & m), int(v >> 21 & m), int(v & m)
	}
	var r [6]int
	r[0], r[1], r[2] = un(ix.A)
	r[3], r[4], r[5] = un(ix.B)
	return r
}

// I returns the first coordinate of a 1-3D index.
func (ix Index) I() int { return int(int64(ix.A)) }

// J returns the second coordinate of a 2-3D index.
func (ix Index) J() int { return int(int64(ix.B)) }

// K returns the third coordinate of a 3D index.
func (ix Index) K() int { return int(int64(ix.C)) }

// BitVec builds a bitvector index for oct-tree codes: bits holds 3 bits per
// tree level (child octant), depth is the number of levels. The root is
// BitVec(0, 0).
func BitVec(bits uint64, depth int) Index {
	return Index{Kind: KindBitVec, A: bits, B: uint64(depth)}
}

// Depth returns the tree depth of a bitvector index.
func (ix Index) Depth() int { return int(ix.B) }

// Bits returns the packed octant path of a bitvector index.
func (ix Index) Bits() uint64 { return ix.A }

// Child returns the bitvector index of child octant o (0..7) — a purely
// local operation, as §IV-A requires.
func (ix Index) Child(o int) Index {
	d := ix.Depth()
	return BitVec(ix.A|uint64(o&7)<<(3*uint(d)), d+1)
}

// Parent returns the bitvector index of the parent block.
func (ix Index) Parent() Index {
	d := ix.Depth()
	if d == 0 {
		return ix
	}
	mask := uint64(1)<<(3*uint(d-1)) - 1
	return BitVec(ix.A&mask, d-1)
}

// Octant returns the child octant of this block within its parent.
func (ix Index) Octant() int {
	d := ix.Depth()
	if d == 0 {
		return 0
	}
	return int(ix.A >> (3 * uint(d-1)) & 7)
}

// Coords converts a bitvector index to spatial block coordinates at its
// depth: octant bit 0 is x, bit 1 is y, bit 2 is z per level.
func (ix Index) Coords() (x, y, z, depth int) {
	d := ix.Depth()
	for l := 0; l < d; l++ {
		o := int(ix.A >> (3 * uint(l)) & 7)
		x = x<<1 | o&1
		y = y<<1 | o>>1&1
		z = z<<1 | o>>2&1
	}
	return x, y, z, d
}

// BitVecFromCoords builds the bitvector index of the block at (x,y,z) at
// the given depth: the inverse of Coords.
func BitVecFromCoords(x, y, z, depth int) Index {
	var b uint64
	for l := depth - 1; l >= 0; l-- {
		o := uint64(x>>uint(l)&1 | y>>uint(l)&1<<1 | z>>uint(l)&1<<2)
		b |= o << (3 * uint(depth-1-l))
	}
	return BitVec(b, depth)
}

// Hash returns a well-mixed 64-bit hash used for home-PE assignment.
func (ix Index) Hash() uint64 {
	h := uint64(ix.Kind)*0x9e3779b97f4a7c15 ^ ix.A
	h = mix(h) ^ ix.B
	h = mix(h) ^ ix.C
	return mix(h)
}

func mix(h uint64) uint64 {
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Less imposes a deterministic total order on indices, used wherever the
// runtime iterates over elements (checkpointing, LB views).
func (ix Index) Less(o Index) bool {
	if ix.Kind != o.Kind {
		return ix.Kind < o.Kind
	}
	if ix.A != o.A {
		return ix.A < o.A
	}
	if ix.B != o.B {
		return ix.B < o.B
	}
	return ix.C < o.C
}

func (ix Index) String() string {
	switch ix.Kind {
	case Kind1D:
		return fmt.Sprintf("[%d]", ix.I())
	case Kind2D:
		return fmt.Sprintf("[%d,%d]", ix.I(), ix.J())
	case Kind3D:
		return fmt.Sprintf("[%d,%d,%d]", ix.I(), ix.J(), ix.K())
	case Kind6D:
		d := ix.Dims6()
		return fmt.Sprintf("[%d,%d,%d|%d,%d,%d]", d[0], d[1], d[2], d[3], d[4], d[5])
	case KindBitVec:
		if ix.Depth() == 0 {
			return "bv[root]"
		}
		return fmt.Sprintf("bv[%0*b/%d]", 3*ix.Depth(), reverseOctants(ix.A, ix.Depth()), ix.Depth())
	}
	return fmt.Sprintf("idx{%d,%d,%d,%d}", ix.Kind, ix.A, ix.B, ix.C)
}

func reverseOctants(v uint64, depth int) uint64 {
	var out uint64
	for l := 0; l < depth; l++ {
		out = out<<3 | v>>(3*uint(l))&7
	}
	return out
}

// log2ceil returns ceil(log2(n)) for n >= 1.
func log2ceil(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// KindName tags indices created from user-defined names (§II-D allows a
// chare index to be "a user defined name").
const KindName uint8 = 6

// IdxName builds an index from a string name using two independent 64-bit
// hashes (a 128-bit fingerprint; collisions are negligible for any
// realistic name population). The name itself is not recoverable from the
// index — chares needing it should carry it in their state.
func IdxName(name string) Index {
	const (
		offset1 = 0xcbf29ce484222325
		offset2 = 0x9e3779b97f4a7c15
		prime   = 0x100000001b3
	)
	h1, h2 := uint64(offset1), uint64(offset2)
	for i := 0; i < len(name); i++ {
		h1 = (h1 ^ uint64(name[i])) * prime
		h2 = mix(h2 ^ uint64(name[i])*prime)
	}
	return Index{Kind: KindName, A: h1, B: h2}
}
