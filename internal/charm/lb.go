package charm

import (
	"sort"

	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// LBObject is one migratable object as seen by a load-balancing strategy:
// its instrumented load, its size (migration cost), and optional spatial
// coordinates for geometric strategies.
type LBObject struct {
	Array  *Array
	Idx    Index
	PE     int
	Load   float64 // speed-normalized seconds since the previous LB
	Bytes  int
	Pos    [3]float64
	HasPos bool
	Msgs   uint64
	SentB  uint64
	// Comm lists per-destination communication volumes (populated for
	// TrackComm arrays), sorted heaviest-first.
	Comm []CommEdge
}

// CommEdge is one edge of the instrumented communication graph.
type CommEdge struct {
	ToArray *Array
	ToIdx   Index
	Bytes   uint64
}

// LBPE is one PE as seen by a strategy.
type LBPE struct {
	ID int
	// Speed is the PE's measured relative performance (DVFS level and
	// external interference folded in), 1.0 being a dedicated PE at base
	// frequency. Strategies divide load by Speed when placing objects.
	Speed float64
}

// Migration is one strategy decision.
type Migration struct {
	Array *Array
	Idx   Index
	ToPE  int
}

// Strategy computes a new object mapping; implementations live in
// internal/lb.
type Strategy interface {
	Name() string
	Balance(objs []LBObject, pes []LBPE) []Migration
}

// StrategyCostModeler optionally refines the modeled decision time of a
// strategy; the default is a centralized O(n log n) model.
type StrategyCostModeler interface {
	DecisionCost(nObjs, nPEs int) float64
}

// LBReport summarizes one completed load-balancing round for introspection
// (MetaLB, tests, the control system).
type LBReport struct {
	Round       int
	Time        des.Time // when the LB completed
	Duration    des.Time // barrier + decision + migration span
	NumObjs     int
	NumMoved    int
	MaxLoad     float64 // before, speed-adjusted
	AvgLoad     float64 // before
	MaxLoadPost float64 // strategy's predicted post-balance max
}

// SetBalancer installs the LB strategy invoked at AtSync barriers. A nil
// strategy makes AtSync a pure barrier (NoLB baselines).
func (rt *Runtime) SetBalancer(s Strategy) { rt.balancer = s }

// Balancer returns the installed strategy.
func (rt *Runtime) Balancer() Strategy { return rt.balancer }

// OnLB registers a listener called after every LB round.
func (rt *Runtime) OnLB(fn func(LBReport)) { rt.lbListener = fn }

// LBRounds returns the number of completed LB rounds.
func (rt *Runtime) LBRounds() int { return rt.lbCount }

// PauseLB suspends AtSync processing (used during shrink/expand
// reconfiguration).
func (rt *Runtime) PauseLB(paused bool) {
	rt.lbPaused = paused
	if !paused {
		rt.maybeStartLB()
	}
}

// StallActivePEs advances every active PE's busy horizon to at least t,
// modeling a global protocol (reconfiguration, restart) during which no
// application work proceeds.
func (rt *Runtime) StallActivePEs(t des.Time) {
	for p := 0; p < rt.activePEs; p++ {
		if rt.pes[p].busy < t {
			rt.pes[p].busy = t
		}
	}
}

// Rebalance runs the installed strategy immediately from driver context,
// outside the AtSync protocol — the RTS-triggered balancing used by
// shrink/expand and the cloud experiments. It returns the report and the
// modeled duration, which has already been applied as a global stall.
func (rt *Runtime) Rebalance() LBReport {
	objs, pes := rt.LBView()
	start := rt.MaxBusy()
	if rt.hooks != nil {
		rt.hooks.LBStart(start, rt.lbCount, len(objs))
	}
	decision := 0.0
	var migs []Migration
	if rt.balancer != nil {
		migs = rt.balancer.Balance(objs, pes)
		if cm, ok := rt.balancer.(StrategyCostModeler); ok {
			decision = cm.DecisionCost(len(objs), len(pes))
		} else {
			n := float64(len(objs))
			decision = 2e-4 + 2e-7*n*float64(log2ceil(len(objs)+1))
		}
	}
	if rt.hooks != nil {
		rt.hooks.LBDecision(start+des.Time(decision), rt.strategyName(), len(migs))
	}
	maxXfer := des.Time(0)
	moved := 0
	for _, mg := range migs {
		el, ok := mg.Array.elems[mg.Idx]
		if !ok || mg.ToPE == el.pe || mg.ToPE >= rt.activePEs || rt.pes[mg.ToPE].evac {
			continue
		}
		size := pup.Size(el.obj) + 64
		xfer := rt.mach.NetDelay(el.pe, mg.ToPE, size) +
			rt.mach.SendOverhead(el.pe) + rt.mach.RecvOverhead(mg.ToPE)
		if xfer > maxXfer {
			maxXfer = xfer
		}
		rt.moveElement(el, mg.ToPE, false)
		moved++
	}
	dur := des.Time(decision) + maxXfer + rt.barrierLatency()
	rt.StallActivePEs(start + dur)
	rep := rt.summarize(objs, pes, start, dur, moved)
	if rt.hooks != nil {
		rt.hooks.LBDone(start+dur, rt.lbCount, moved, dur)
	}
	rt.lbCount++
	rt.Stats.LBInvocations++
	rt.metrics.Counter("lb.rounds").Inc()
	rt.metrics.Counter("lb.migrations").Add(uint64(moved))
	for p := 0; p < rt.activePEs; p++ {
		for _, el := range rt.pes[p].sorted {
			el.load = 0
			el.comm = nil
			// Commit-context meter reset: a retained speculation image holds
			// the pre-reset meters, which replay cannot reconstruct.
			rt.dropSave(el)
		}
	}
	if rt.lbListener != nil {
		rt.lbListener(rep)
	}
	return rep
}

// ResetLoadStats zeroes the per-object instrumentation window.
func (rt *Runtime) ResetLoadStats() {
	for _, p := range rt.pes {
		for _, el := range p.sorted {
			el.load = 0
			el.msgsSent = 0
			el.bytesSent = 0
			el.comm = nil
			rt.dropSave(el) // see the post-LB reset loop
		}
	}
}

// strategyName names the installed balancer for traces ("none" when nil).
func (rt *Runtime) strategyName() string {
	if rt.balancer == nil {
		return "none"
	}
	return rt.balancer.Name()
}

// maybeStartLB fires the LB step once every AtSync element has arrived.
func (rt *Runtime) maybeStartLB() {
	if rt.lbPaused || rt.lbInProgress || rt.lbTotal == 0 || rt.lbArrived < rt.lbTotal {
		return
	}
	rt.lbInProgress = true
	// The barrier completes when the slowest PE drains, plus a tree
	// reduction to detect it.
	t := rt.MaxBusy() + rt.barrierLatency()
	rt.atEpoch(t, rt.runLB)
}

// LBView builds the strategy's view of the current objects and PEs.
func (rt *Runtime) LBView() ([]LBObject, []LBPE) {
	var objs []LBObject
	for p := 0; p < rt.activePEs; p++ {
		for _, el := range rt.pes[p].sorted {
			arr := rt.arrays[el.key.array]
			if !arr.opts.UsesAtSync && !arr.opts.Migratable {
				continue
			}
			o := LBObject{
				Array:  arr,
				Idx:    el.key.idx,
				PE:     p,
				Load:   float64(el.load) * 1e-15,
				Bytes:  pup.Size(el.obj) + 64,
				Pos:    el.pos,
				HasPos: el.hasPos,
				Msgs:   el.msgsSent,
				SentB:  el.bytesSent,
			}
			if len(el.comm) > 0 {
				for dst, bytes := range el.comm {
					o.Comm = append(o.Comm, CommEdge{
						ToArray: rt.arrays[dst.array],
						ToIdx:   dst.idx,
						Bytes:   bytes,
					})
				}
				sort.Slice(o.Comm, func(i, j int) bool {
					if o.Comm[i].Bytes != o.Comm[j].Bytes {
						return o.Comm[i].Bytes > o.Comm[j].Bytes
					}
					return o.Comm[i].ToIdx.Less(o.Comm[j].ToIdx)
				})
			}
			objs = append(objs, o)
		}
	}
	// Evacuating PEs (predicted failures, internal/chaos) are excluded
	// from the strategy's placement targets: objects still ON one are
	// listed (so a stateless strategy re-places them), but nothing new
	// lands there. Strategies already tolerate non-contiguous PE ids.
	pes := make([]LBPE, 0, rt.activePEs)
	base := rt.mach.Config().BaseFreqGHz
	for p := 0; p < rt.activePEs; p++ {
		if rt.pes[p].evac {
			continue
		}
		pes = append(pes, LBPE{ID: p, Speed: rt.mach.PE(p).Speed(base)})
	}
	return objs, pes
}

// runLB executes one AtSync load-balancing round: gather the instrumented
// view, run the strategy, migrate, and resume every element.
func (rt *Runtime) runLB() {
	objs, pes := rt.LBView()
	start := rt.eng.Now()
	if rt.hooks != nil {
		rt.hooks.LBStart(start, rt.lbCount, len(objs))
	}

	var migs []Migration
	decision := 0.0
	if rt.balancer != nil {
		migs = rt.balancer.Balance(objs, pes)
		if cm, ok := rt.balancer.(StrategyCostModeler); ok {
			decision = cm.DecisionCost(len(objs), len(pes))
		} else {
			n := float64(len(objs))
			decision = 2e-4 + 2e-7*n*float64(log2ceil(len(objs)+1))
		}
	}
	if rt.hooks != nil {
		rt.hooks.LBDecision(start+des.Time(decision), rt.strategyName(), len(migs))
	}

	// Apply migrations; the span of the transfer phase is the max cost of
	// any single move (they proceed in parallel across PEs).
	maxXfer := des.Time(0)
	moved := 0
	for _, mg := range migs {
		el, ok := mg.Array.elems[mg.Idx]
		if !ok || mg.ToPE == el.pe || mg.ToPE >= rt.activePEs || rt.pes[mg.ToPE].evac {
			continue
		}
		size := pup.Size(el.obj) + 64
		xfer := rt.mach.NetDelay(el.pe, mg.ToPE, size) +
			rt.mach.SendOverhead(el.pe) + rt.mach.RecvOverhead(mg.ToPE)
		if xfer > maxXfer {
			maxXfer = xfer
		}
		rt.moveElement(el, mg.ToPE, false)
		moved++
	}

	report := rt.summarize(objs, pes, start, des.Time(decision)+maxXfer, moved)

	resumeAt := start + des.Time(decision) + maxXfer + rt.barrierLatency()
	rt.atEpoch(resumeAt, func() {
		rt.lbInProgress = false
		if rt.hooks != nil {
			rt.hooks.LBDone(resumeAt, rt.lbCount, moved, resumeAt-start)
		}
		rt.lbCount++
		rt.Stats.LBInvocations++
		rt.metrics.Counter("lb.rounds").Inc()
		rt.metrics.Counter("lb.migrations").Add(uint64(moved))
		// The listener is part of the round, so it must fire before the
		// resume hook: the in-memory checkpoint scheme snapshots at the
		// hook (see SetLBResumeHook), and observer state mutated after its
		// own cut would be rolled back without ever being replayed —
		// losing one observation per recovery.
		if rt.lbListener != nil {
			rt.lbListener(report)
		}
		// The post-migration, pre-resume instant is a quiescent cut: the
		// in-memory checkpoint scheme snapshots here (see SetLBResumeHook).
		if rt.lbResumeHook != nil {
			if stall := rt.lbResumeHook(rt.lbCount); stall > 0 {
				rt.StallActivePEs(resumeAt + stall)
			}
		}
		// Reset instrumentation for the next interval and resume.
		for p := 0; p < rt.activePEs; p++ {
			pe := rt.pes[p]
			for _, el := range pe.sorted {
				arr := rt.arrays[el.key.array]
				if !arr.opts.UsesAtSync || !el.atSync {
					continue
				}
				el.atSync = false
				rt.lbArrived--
				el.load = 0
				el.msgsSent = 0
				el.bytesSent = 0
				el.comm = nil
				rt.dropSave(el) // see the post-LB reset loop
				rt.inflight++
				m := getMsg()
				m.dest = el.key
				m.destPE = -1
				m.destEID = el.eid
				m.el = el
				m.ep = arr.opts.ResumeEP
				m.srcPE = p
				m.size = 16
				rt.enqueue(m, p)
			}
		}
	})
}

func (rt *Runtime) summarize(objs []LBObject, pes []LBPE, start, dur des.Time, moved int) LBReport {
	// pes may be a strict subset of the active PEs (evacuating PEs are
	// excluded as targets) while objs may still sit on an excluded PE, so
	// the per-PE tables are sized by id, not by len(pes). An excluded
	// PE's speed reads as its base 1.0 for the pre-balance stats.
	maxID := rt.activePEs - 1
	for _, p := range pes {
		if p.ID > maxID {
			maxID = p.ID
		}
	}
	speed := make([]float64, maxID+1)
	for i := range speed {
		speed[i] = 1.0
	}
	for _, p := range pes {
		speed[p.ID] = p.Speed
	}
	eff := func(pe int, l float64) float64 {
		if pe <= maxID && speed[pe] > 0 {
			return l / speed[pe]
		}
		return l
	}
	loadPer := make([]float64, maxID+1)
	for _, o := range objs {
		loadPer[o.PE] += o.Load
	}
	maxL, avg := 0.0, 0.0
	for p, l := range loadPer {
		e := eff(p, l)
		if e > maxL {
			maxL = e
		}
		avg += e
	}
	if len(pes) > 0 {
		avg /= float64(len(pes))
	}
	// Post-balance prediction.
	post := make([]float64, maxID+1)
	for _, o := range objs {
		pe := o.PE
		if el, ok := o.Array.elems[o.Idx]; ok {
			pe = el.pe
		}
		post[pe] += o.Load
	}
	maxPost := 0.0
	for p, l := range post {
		if e := eff(p, l); e > maxPost {
			maxPost = e
		}
	}
	return LBReport{
		Round:       rt.lbCount,
		Time:        start,
		Duration:    dur,
		NumObjs:     len(objs),
		NumMoved:    moved,
		MaxLoad:     maxL,
		AvgLoad:     avg,
		MaxLoadPost: maxPost,
	}
}
