package charm

import (
	"fmt"
	"math"
	"sync/atomic"

	"charmgo/internal/ctrlpoint"
	"charmgo/internal/des"
	"charmgo/internal/optsim"
	"charmgo/internal/projections/metrics"
	"charmgo/internal/pup"
)

// This file is the runtime half of the optimistic (Time Warp) backend: the
// speculation controller internal/optsim calls around every phase it runs
// ahead of the commit frontier. The engine guarantees a speculation's
// commit closure never runs unless the speculation survives to its pop, so
// everything globally visible — sends, statistics, quiescence, reduction
// merges — needs no undo at all: the closure is simply dropped. What the
// controller must restore is the handful of shard-local mutations a phase
// is allowed to make (see runOne and Ctx): the PE's pump arming, the
// popped scheduler message, the recycled delivery context, the pending-
// delivery slot, the executed chare's state, and a location-cache hint.
//
// Chare state uses *infrequent state saving* (Rönngren & Ayani): an element
// is PUP-packed only when it has no retained image — which, by the commit
// hook's bookkeeping, happens every K-th committed execution. Between
// images, the commit of each delivery appends the delivery's inputs (the
// pooled message, its timestamp, and the resolve answers its sends
// observed) to the element's replay log. A rollback restores the retained
// image the way migration re-homes state — unpacked into a factory-fresh
// object, //pup:skip fields rebuilt by the factory, exactly the contract
// the charmvet specstate rule checks — and then *coast-forwards*:
// deterministically re-executes the logged committed handlers in an
// effect-suppressed replay mode (Ctx.replay) before discarding the
// speculated phase. The saving interval K adapts online from the observed
// rollback rate and image size (see tune), bounded by a ctrlpoint control
// point that also throttles the engine's optimism window under rollback
// storms.

// elemSave is one element's retained state image plus the replay log of
// committed deliveries executed since the image was taken. It lives on the
// element (element.save) across speculations; it is dropped — image buffer
// and retained messages returned to their pools — when the log reaches the
// saving interval, when a commit-context or multi-element execution
// mutates the element outside the log's single-element replay model, or
// when migration/destruction/recovery invalidates the state outright.
type elemSave struct {
	img []byte // pooled PUP image of el.obj at image time (committed state)

	// Runtime-side element fields a phase may mutate, at image time (load
	// accounting is commit-side and never rolls back).
	msgsSent  uint64
	bytesSent uint64
	pos       [3]float64
	hasPos    bool
	atSync    bool
	redGen    uint64
	comm      map[elemKey]uint64 // owned copy; never aliased to el.comm

	// log holds the committed deliveries since img, in commit order.
	// resolves is the flat arena of location-cache answers their sends
	// observed (each record owns the [resStart,resEnd) slice): the caches
	// may learn newer hints before a rollback, and Ctx.Now — which apps
	// fold into chare state — prices sends from these answers, so replay
	// must re-read the originals, not the live caches.
	log      []replayRec
	resolves []int32
}

// replayRec is one committed delivery in an element's replay log: the
// inputs that deterministically reproduce it, plus the after-values the
// commit observed, verified after re-execution as a divergence tripwire.
type replayRec struct {
	//charmvet:retain (replay log: the save owns the pooled message until the next image or an invalidation returns it via putMsg)
	m  *message
	at des.Time

	resStart, resEnd int

	// After-values at the original commit. elapsed doubles as the dynamic-
	// frequency tripwire: every other elapsed input is pinned by the record,
	// so a mismatch means PE speed changed between execution and replay — a
	// machine model infrequent saving cannot coast across (see DESIGN.md).
	elapsed   des.Time
	msgsSent  uint64
	bytesSent uint64
	redGen    uint64
	atSync    bool
}

// shardSpec is the undo log of one shard's in-flight speculation. A
// speculation is exactly one phase execution, so at most one dequeue and
// one location-cache write can be logged; touched elements accumulate
// (LocalInvoke can reach several chares in one execution).
type shardSpec struct {
	active bool

	// Dequeue undo (runOne): recorded on the driver in BeginSpec order,
	// filled in by the phase before it touches the field it shadows.
	p       *peState
	pumpAt  des.Time
	popped  *message
	spare   *Ctx
	pendM   *message
	pendEl  *element
	pendCtx *Ctx
	pendAt  des.Time

	// touched lists the elements this speculation executed (and must
	// restore on rollback); freshImages/freshBytes count the images the
	// phase packed, read by the driver after the phase's done-edge to feed
	// the cost model with deterministic inputs.
	touched     []*element
	freshImages int
	freshBytes  uint64

	// Location-cache undo (updateLocCache's phase body). cacheDense marks
	// a write to the array's flat hint table (cacheOff its slot, cacheNil
	// "the table itself was created by this speculation"); otherwise the
	// map fields apply.
	cacheP     *peState
	cacheKey   elemKey
	cacheEnt   locEnt
	cacheOff   int
	cacheDense bool
	cacheHad   bool
	cacheNil   bool
}

// Saving-interval and window-tuning model constants.
const (
	// defaultSnapInterval seeds the adaptive interval before the first
	// tuning period has gathered statistics.
	defaultSnapInterval = 16
	// maxSnapInterval bounds K: past this the replay chain a rollback must
	// re-execute stops being worth the bytes the skipped images save.
	maxSnapInterval = 64
	// tunePeriod is how many speculation outcomes (commits + rollbacks)
	// pass between recomputations of K and the window.
	tunePeriod = 1024
	// replayCostBytes prices re-executing one logged delivery during
	// coast-forward, in image-byte equivalents, for the cost model's
	// snapshot-bytes-vs-replay-work trade.
	replayCostBytes = 64.0
	// windowScaleOne is the window control point's neutral denominator:
	// effective window = reference * value / windowScaleOne.
	windowScaleOne = 16
)

// specController implements optsim.Controller over the runtime's shard
// (node) layout. BeginSpec/CommitSpec/RollbackSpec run on the engine's
// driving goroutine; the note/touch hooks run inside the speculated phase
// on a worker, ordered against the driver by the engine's job-channel and
// done-channel edges. The commit hook (onCommitted) and the tuner run on
// the driver in commit order, so every input to the adaptive decisions is
// deterministic — worker-written atomics feed only metrics, never policy.
type specController struct {
	rt     *Runtime
	eng    *optsim.Engine
	shards []shardSpec

	// Snapshot counters feed the optsim.* metrics family. Phases on
	// different shards pack and skip concurrently, so these are atomics —
	// the only speculation state shared across goroutines. Their final
	// (run-end) values are deterministic; mid-run reads are side-band.
	snapshots     atomic.Uint64
	snapshotBytes atomic.Uint64
	avoided       atomic.Uint64
	restores      atomic.Uint64

	// Driver-owned counters (commit order, deterministic).
	replays       uint64 // coast-forward handler re-executions
	invalidations uint64 // retained images dropped before their interval
	logged        uint64 // committed deliveries appended to replay logs

	// ---- adaptive saving interval + optimism window (driver-owned) ----
	fixedK     int // Config.SnapInterval: >=1 pins K and disables tuning
	k          int // current interval
	baseWindow des.Time
	dCommits   uint64 // CommitSpec calls
	dRollbacks uint64 // RollbackSpec calls
	dImgCount  uint64 // committed fresh images (cost-model S numeratorship)
	dImgBytes  uint64
	tuneTick   uint64
	lastRB     uint64 // engine counters at the last tuning period
	lastInline uint64

	sys   *ctrlpoint.System
	kCap  *ctrlpoint.Point // hill-climbed upper bound on the model's K
	winPt *ctrlpoint.Point // optimism-window scale, in windowScaleOne-ths
}

func newSpecController(rt *Runtime, shards, fixedK int, window des.Time) *specController {
	sc := &specController{
		rt:         rt,
		shards:     make([]shardSpec, shards),
		fixedK:     fixedK,
		k:          fixedK,
		baseWindow: window,
	}
	if sc.k <= 0 {
		sc.k = defaultSnapInterval
		// Adaptive mode: the control system owns the interval cap and the
		// window scale. Raising the cap is classic larger-grain (fewer,
		// cheaper-amortized images but longer replay chains); raising the
		// window exposes more overlap at more rollback risk.
		sc.sys = ctrlpoint.NewSystem()
		sc.kCap = sc.sys.Register("optsim.snap_interval_cap", 2, maxSnapInterval, maxSnapInterval, ctrlpoint.EffectLargerGrain)
		sc.winPt = sc.sys.Register("optsim.window_scale", 1, 2*windowScaleOne, 2*windowScaleOne, ctrlpoint.EffectMoreOverlap)
	}
	return sc
}

func (sc *specController) registerMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("optsim.snapshots", func() float64 { return float64(sc.snapshots.Load()) })
	reg.GaugeFunc("optsim.snapshot_bytes", func() float64 { return float64(sc.snapshotBytes.Load()) })
	reg.GaugeFunc("optsim.snapshot_restores", func() float64 { return float64(sc.restores.Load()) })
	reg.GaugeFunc("optsim.snapshots_avoided", func() float64 { return float64(sc.avoided.Load()) })
	reg.GaugeFunc("optsim.replays", func() float64 { return float64(sc.replays) })
	reg.GaugeFunc("optsim.save_invalidations", func() float64 { return float64(sc.invalidations) })
	reg.GaugeFunc("optsim.snap_interval", func() float64 { return float64(sc.curK()) })
	reg.GaugeFunc("optsim.window", func() float64 { return float64(sc.eng.Window()) })
}

// curK is the saving interval in force: the committed log of an element
// may grow to K-1 deliveries before the image is retired. Driver context.
func (sc *specController) curK() int {
	if sc.fixedK > 0 {
		return sc.fixedK
	}
	return sc.k
}

// specFor returns the undo log the phase running on pe should record into,
// or nil when the execution is not speculative (sequential and parsim
// backends, optsim inline pops, commit context). One nil check on the
// non-speculative hot path.
func (rt *Runtime) specFor(pe int) *shardSpec {
	sc := rt.spec
	if sc == nil {
		return nil
	}
	if s := &sc.shards[rt.peShard[pe]]; s.active {
		return s
	}
	return nil
}

// BeginSpec opens shard s's undo log. Runs on the driver strictly before
// the phase is handed to a worker.
func (sc *specController) BeginSpec(s int) {
	sp := &sc.shards[s]
	if sp.active {
		panic(fmt.Sprintf("charm: BeginSpec on shard %d with a speculation already open", s))
	}
	*sp = shardSpec{active: true, touched: sp.touched[:0]}
}

// CommitSpec closes a committed speculation's log. Fossil collection is
// lazy now: retained images persist on their elements across speculations
// — that is the whole point of infrequent saving — and are reclaimed at
// the next image or invalidation. The driver harvests the phase's
// image-packing counts here (safe and deterministic: the phase's done-edge
// precedes its pop) to feed the cost model.
func (sc *specController) CommitSpec(s int) {
	sp := &sc.shards[s]
	sc.dCommits++
	sc.dImgCount += uint64(sp.freshImages)
	sc.dImgBytes += sp.freshBytes
	for i := range sp.touched {
		sp.touched[i] = nil
	}
	*sp = shardSpec{touched: sp.touched[:0]}
	sc.tune()
}

// RollbackSpec undoes the phase's shard-local mutations, in reverse of the
// order the phase made them. The log may be partial — a phase that
// panicked mid-handler logged only what it reached — so every restore is
// guarded by its own recorded marker.
func (sc *specController) RollbackSpec(s int) {
	sp := &sc.shards[s]
	// Deactivate first: coast-forward replay re-executes committed handlers
	// below, and nothing they touch may be recorded into this undo log.
	sp.active = false

	// Location-cache hint (mutually exclusive with a dequeue log — a
	// speculation is a single phase — but guarded independently anyway).
	if sp.cacheP != nil {
		switch {
		case sp.cacheDense && sp.cacheNil:
			sp.cacheP.locDense[sp.cacheKey.array] = nil
		case sp.cacheDense:
			sp.cacheP.locDense[sp.cacheKey.array][sp.cacheOff] = sp.cacheEnt
		case sp.cacheNil:
			sp.cacheP.locCache = nil
		case sp.cacheHad:
			sp.cacheP.locCache[sp.cacheKey] = sp.cacheEnt
		default:
			delete(sp.cacheP.locCache, sp.cacheKey)
		}
	}

	// Executed chares: restore the last retained image, then coast-forward
	// over the replay log so the element lands exactly on its committed
	// pre-speculation state.
	for i, el := range sp.touched {
		sv := el.save
		if sv == nil {
			panic(fmt.Sprintf("charm: rollback of %v with no retained image", el.key))
		}
		sc.restoreImage(el, sv)
		sc.coastForward(el, sv)
		sp.touched[i] = nil
		sc.restores.Add(1)
	}

	// The dequeue: push the popped message back (the queue's (prio, seq)
	// order is total, so re-pushing restores the identical pop order),
	// re-arm the pump, and return the pending-delivery slot and recycled
	// context to their pre-phase values. The context the dropped execution
	// used is the old spare pointer itself — the execution is dead, so
	// handing it back as the spare is exactly the recycling contract.
	if sp.p != nil {
		p := sp.p
		if sp.popped != nil {
			p.q.push(sp.popped)
		}
		p.pumpAt = sp.pumpAt
		p.ctxSpare = sp.spare
		p.pendM, p.pendEl, p.pendCtx, p.pendAt = sp.pendM, sp.pendEl, sp.pendCtx, sp.pendAt
	}

	*sp = shardSpec{touched: sp.touched[:0]}
	sc.dRollbacks++
	sc.tune()
}

// noteDequeue records the pump/queue/context state runOne is about to
// shadow. Phase context, worker goroutine.
func (sp *shardSpec) noteDequeue(p *peState) {
	sp.p = p
	sp.pumpAt = p.pumpAt
	sp.spare = p.ctxSpare
	sp.pendM, sp.pendEl, sp.pendCtx, sp.pendAt = p.pendM, p.pendEl, p.pendCtx, p.pendAt
}

// noteLocCache records the previous state of the location-cache slot the
// hint write (rt.cacheLoc) is about to overwrite — the flat-table slot for
// small bounded arrays, the map entry otherwise, mirroring cacheLoc's own
// dispatch. Phase context, worker goroutine.
func (sp *shardSpec) noteLocCache(rt *Runtime, p *peState, key elemKey) {
	sp.cacheP = p
	sp.cacheKey = key
	a := rt.arrays[key.array]
	if a.linCap > 0 && a.linCap <= denseLocCap {
		if off := a.lin(key.idx); off >= 0 {
			sp.cacheDense = true
			sp.cacheOff = off
			if t := p.locDense[key.array]; t != nil {
				sp.cacheEnt = t[off]
			} else {
				sp.cacheNil = true
			}
			return
		}
	}
	sp.cacheNil = p.locCache == nil
	if !sp.cacheNil {
		sp.cacheEnt, sp.cacheHad = p.locCache[key]
	}
}

// touchElem guarantees el is restorable if this speculation rolls back.
// With an image already retained the touch is free — the snapshot-skipped
// fast path, zero allocations — because the image plus the replay log
// reconstruct the element's committed state regardless of what this phase
// does to it. Without one, the element is packed now: the phase has not
// yet mutated the object, so the image is committed state and stays valid
// no matter the speculation's fate. Dedupes by element — one execution can
// reach the same chare twice through LocalInvoke, and only the first touch
// decides. Phase context, worker goroutine.
func (sp *shardSpec) touchElem(sc *specController, el *element) {
	for _, t := range sp.touched {
		if t == el {
			return
		}
	}
	if el.save == nil {
		sc.packImage(el)
		sp.freshImages++
		sp.freshBytes += uint64(len(el.save.img))
	} else {
		sc.avoided.Add(1)
	}
	sp.touched = append(sp.touched, el)
}

// packImage retires el's previous save (image buffer and retained replay
// messages back to their pools) and packs a fresh image of its committed
// state, reusing the save's backing storage. Worker or driver context —
// never both for one element: an element's save is only ever reached from
// its own shard's phase (touch) or its own shard's commits (append/drop),
// and the engine orders those.
func (sc *specController) packImage(el *element) {
	sv := el.save
	if sv == nil {
		sv = &elemSave{}
		el.save = sv
	} else {
		for i := range sv.log {
			putMsg(sv.log[i].m)
			sv.log[i] = replayRec{}
		}
		sv.log = sv.log[:0]
		sv.resolves = sv.resolves[:0]
		pup.PutBuffer(sv.img)
	}
	sv.img = pup.PackTo(pup.GetBuffer(), el.obj)
	sv.msgsSent, sv.bytesSent = el.msgsSent, el.bytesSent
	sv.pos, sv.hasPos = el.pos, el.hasPos
	sv.atSync, sv.redGen = el.atSync, el.redGen
	if el.comm == nil {
		sv.comm = nil
	} else {
		if sv.comm == nil {
			sv.comm = make(map[elemKey]uint64, len(el.comm))
		} else {
			clear(sv.comm)
		}
		//charmvet:ordered (map-to-map copy: the result is identical under any iteration order)
		for k, v := range el.comm {
			sv.comm[k] = v
		}
	}
	sc.snapshots.Add(1)
	sc.snapshotBytes.Add(uint64(len(sv.img)))
}

// restoreImage rolls el back to its image-time committed state: the PUP
// image is unpacked into a factory-fresh object, exactly as migration
// re-homes state, and the image-time meta fields are copied back (the comm
// map deeply — the save persists past this rollback, and replay mutates
// el.comm).
func (sc *specController) restoreImage(el *element, sv *elemSave) {
	fresh := sc.rt.arrays[el.key.array].NewElement()
	if err := pup.Unpack(sv.img, fresh); err != nil {
		panic(fmt.Sprintf("charm: rollback pup of %v failed: %v", el.key, err))
	}
	el.obj = fresh
	el.msgsSent, el.bytesSent = sv.msgsSent, sv.bytesSent
	el.pos, el.hasPos = sv.pos, sv.hasPos
	el.atSync, el.redGen = sv.atSync, sv.redGen
	if sv.comm == nil {
		el.comm = nil
	} else {
		comm := make(map[elemKey]uint64, len(sv.comm))
		//charmvet:ordered (map-to-map copy: the result is identical under any iteration order)
		for k, v := range sv.comm {
			comm[k] = v
		}
		el.comm = comm
	}
}

// coastForward re-executes the committed deliveries logged since el's
// image, in commit order, each in an effect-suppressed replay context:
// every global effect buffers into a discarded fxList (the originals are
// already committed), sends re-price from the recorded resolve answers,
// and no message, load charge, or statistic escapes. Determinism of the
// phase/commit discipline guarantees the identical state trajectory; the
// recorded after-values are verified per entry as the tripwire. Driver
// context (inside RollbackSpec).
func (sc *specController) coastForward(el *element, sv *elemSave) {
	rt := sc.rt
	arr := rt.arrays[el.key.array]
	cfg := rt.mach.Config()
	for i := range sv.log {
		rec := &sv.log[i]
		ctx := rt.newCtxAt(el.pe, el, rec.at)
		ctx.phase = true
		ctx.replay = true
		ctx.fx = &fxList{} // buffer — then discard — every global effect
		ctx.cause = rec.m.traceID
		ctx.res = sv.resolves[:rec.resEnd]
		ctx.resIdx = rec.resStart
		ctx.elapsed = rt.mach.RecvOverheadFrom(el.pe, rec.m.srcPE)
		ctx.chargeLoadWork(cfg.RecvOverheadLocal)
		arr.handlers[rec.m.ep](el.obj, ctx, rec.m.payload)
		if ctx.resIdx != rec.resEnd || ctx.elapsed != rec.elapsed ||
			el.msgsSent != rec.msgsSent || el.bytesSent != rec.bytesSent ||
			el.redGen != rec.redGen || el.atSync != rec.atSync {
			panic(fmt.Sprintf("charm: coast-forward replay of %v diverged at log entry %d/%d "+
				"(elapsed %v want %v, msgsSent %d want %d): handler state must be a pure function "+
				"of (chare, payload) — a Now()-dependence on dynamic PE speed, or payload mutation, "+
				"breaks infrequent saving (set SnapInterval: 1 to restore eager snapshots)",
				el.key, i, len(sv.log), ctx.elapsed, rec.elapsed, el.msgsSent, rec.msgsSent))
		}
		sc.replays++
	}
}

// onCommitted runs in every element delivery's commit on the optimistic
// backend — speculated and inline pops alike — and decides the fate of the
// element's retained image: extend the replay log with this delivery
// (taking ownership of its message as the replay input), retire the image
// when the log has reached the saving interval, or drop it when the
// execution mutated chares the single-element replay model cannot cover.
// Returns whether it took ownership of m. Driver context, commit order.
func (sc *specController) onCommitted(el *element, ctx *Ctx, m *message, at des.Time) bool {
	if len(ctx.extraEls) > 0 {
		// Multi-element execution (LocalInvoke reached other chares): the
		// per-element logs hold only single-element deliveries, so every
		// touched image goes stale.
		sc.dropSave(el)
		for _, ex := range ctx.extraEls {
			sc.dropSave(ex)
		}
		return false
	}
	sv := el.save
	if sv == nil {
		return false
	}
	if !sc.rt.arrays[el.key.array].opts.PureHandlers {
		// Handlers may consult mutable app-global state, which replay
		// cannot pin: stay eager — retire the image every commit, exactly
		// the pre-infrequent-saving behavior.
		sc.dropSave(el)
		return false
	}
	if len(sv.log)+1 >= sc.curK() {
		// The K-th execution since the image is due: retire now, so the
		// next speculative touch packs fresh and the coast-forward chain a
		// rollback must re-execute stays bounded at K-1 deliveries.
		sc.dropSave(el)
		return false
	}
	p := sc.rt.pes[ctx.pe]
	start := len(sv.resolves)
	sv.resolves = append(sv.resolves, p.resLog...)
	sv.log = append(sv.log, replayRec{
		//charmvet:retain (replay log: the save owns m until the next image or an invalidation returns it via putMsg)
		m:         m,
		at:        at,
		resStart:  start,
		resEnd:    len(sv.resolves),
		elapsed:   ctx.elapsed,
		msgsSent:  el.msgsSent,
		bytesSent: el.bytesSent,
		redGen:    el.redGen,
		atSync:    el.atSync,
	})
	sc.logged++
	return true
}

// dropSave invalidates el's retained image, returning the image buffer and
// the log's retained messages to their pools. Driver/global context (every
// caller — commit hooks, structural mutation, recovery — runs there).
func (sc *specController) dropSave(el *element) {
	sv := el.save
	if sv == nil {
		return
	}
	el.save = nil
	sc.invalidations++
	for i := range sv.log {
		putMsg(sv.log[i].m)
		sv.log[i] = replayRec{}
	}
	pup.PutBuffer(sv.img)
	sv.img = nil
}

// dropSave is the runtime-side hook structural mutations call: migration,
// destruction, checkpoint rollback, and Replace all leave the retained
// image describing a state trajectory that no longer exists.
func (rt *Runtime) dropSave(el *element) {
	if rt.spec != nil {
		rt.spec.dropSave(el)
	}
}

// tune recomputes the saving interval and the optimism window once per
// tuning period. Driver context; every input — the driver-owned outcome
// counters and the engine's Stats — is deterministic in commit order, so
// the adaptive decisions (and therefore snapshot counts, launch decisions,
// and Stats) are identical run to run.
func (sc *specController) tune() {
	if sc.sys == nil {
		return // fixed interval: nothing adapts
	}
	sc.tuneTick++
	if sc.tuneTick%tunePeriod != 0 {
		return
	}

	// Feed the control system one observation (lower = better): rollbacks
	// weighted against inline pops this period. Too much optimism shows up
	// as rollbacks; too little shows up as events the launcher never dared
	// to speculate (inline pops), i.e. lost overlap.
	es := sc.eng.EngineStats()
	dRB := es.RolledBack - sc.lastRB
	dIn := es.Inline - sc.lastInline
	sc.lastRB, sc.lastInline = es.RolledBack, es.Inline
	sc.sys.Observe(float64(4*dRB + dIn))

	// Rönngren–Ayani: with saving cost S (average image bytes), per-event
	// replay cost R, and rollback probability r per committed delivery, the
	// expected overhead per event C(K) = S/K + r·R·(K-1)/2 is minimized at
	// K* = sqrt(2S/(rR)). The control point caps the model's answer.
	S := 256.0
	if sc.dImgCount > 0 {
		S = float64(sc.dImgBytes) / float64(sc.dImgCount)
	}
	r := float64(sc.dRollbacks+1) / float64(sc.dCommits+sc.dRollbacks+2)
	kStar := int(math.Round(math.Sqrt(2 * S / (r * replayCostBytes))))
	if kc := sc.kCap.Value(); kStar > kc {
		kStar = kc
	}
	if kStar < 1 {
		kStar = 1
	}
	sc.k = kStar

	// Window throttling: scale the configured window — or, when optimism
	// is unbounded, the observed maximum GVT lag — by the control point.
	// At the point's maximum the window stays wide open (the seed
	// behavior); rollback storms walk it down.
	v := sc.winPt.Value()
	switch {
	case sc.baseWindow > 0:
		sc.eng.SetWindow(sc.baseWindow * des.Time(v) / windowScaleOne)
	case v >= sc.winPt.Max:
		sc.eng.SetWindow(0) // unbounded, as configured
	case es.MaxGVTLag > 0:
		sc.eng.SetWindow(es.MaxGVTLag * des.Time(v) / windowScaleOne)
	}
}

var _ optsim.Controller = (*specController)(nil)

// SpecSnapshotStats reports how many chare images the optimistic backend
// has packed and their total PUP bytes (zero on other backends).
func (rt *Runtime) SpecSnapshotStats() (snapshots, bytes uint64) {
	if rt.spec == nil {
		return 0, 0
	}
	return rt.spec.snapshots.Load(), rt.spec.snapshotBytes.Load()
}

// SpecSaveStats is the state-saving profile of an optimistic run: images
// packed vs skipped, rollback restores and coast-forward re-executions,
// and the adaptive policy's current interval and window.
type SpecSaveStats struct {
	Snapshots        uint64
	SnapshotBytes    uint64
	SnapshotsAvoided uint64
	Restores         uint64
	Replays          uint64
	LoggedDeliveries uint64
	Invalidations    uint64
	SnapInterval     int
	Adaptive         bool
	Window           float64
}

// SpecSaveStats reports the optimistic backend's state-saving counters
// (the zero value on other backends).
func (rt *Runtime) SpecSaveStats() SpecSaveStats {
	sc := rt.spec
	if sc == nil {
		return SpecSaveStats{}
	}
	return SpecSaveStats{
		Snapshots:        sc.snapshots.Load(),
		SnapshotBytes:    sc.snapshotBytes.Load(),
		SnapshotsAvoided: sc.avoided.Load(),
		Restores:         sc.restores.Load(),
		Replays:          sc.replays,
		LoggedDeliveries: sc.logged,
		Invalidations:    sc.invalidations,
		SnapInterval:     sc.curK(),
		Adaptive:         sc.fixedK <= 0,
		Window:           float64(sc.eng.Window()),
	}
}
