package charm

import (
	"fmt"
	"sync/atomic"

	"charmgo/internal/des"
	"charmgo/internal/projections/metrics"
	"charmgo/internal/pup"
)

// This file is the runtime half of the optimistic (Time Warp) backend: the
// speculation controller internal/optsim calls around every phase it runs
// ahead of the commit frontier. The engine guarantees a speculation's
// commit closure never runs unless the speculation survives to its pop, so
// everything globally visible — sends, statistics, quiescence, reduction
// merges — needs no undo at all: the closure is simply dropped. What the
// controller must restore is the handful of shard-local mutations a phase
// is allowed to make (see runOne and Ctx): the PE's pump arming, the
// popped scheduler message, the recycled delivery context, the pending-
// delivery slot, the executed chare's state, and a location-cache hint.
//
// Chare state is restored the way migration moves it: the dirty element's
// object is PUP-packed into a pooled buffer before the handler runs
// (incremental — only elements the speculation actually executes are
// snapshotted) and unpacked into a factory-fresh object on rollback.
// Fields waived with //pup:skip are rebuilt by the factory, not restored —
// exactly the migration contract, and what the charmvet specstate rule
// checks speculative phases against.

// elemSnap is one dirty chare's pre-speculation image.
type elemSnap struct {
	el   *element
	data []byte // pooled PUP image of el.obj

	// Runtime-side element fields a phase may mutate (instrumentation and
	// the AtSync/reduction flags; load accounting is commit-side).
	msgsSent  uint64
	bytesSent uint64
	pos       [3]float64
	hasPos    bool
	atSync    bool
	redGen    uint64
	comm      map[elemKey]uint64
}

// shardSpec is the undo log of one shard's in-flight speculation. A
// speculation is exactly one phase execution, so at most one dequeue and
// one location-cache write can be logged; element snapshots accumulate
// (LocalInvoke can touch several chares in one execution).
type shardSpec struct {
	active bool

	// Dequeue undo (runOne): recorded on the driver in BeginSpec order,
	// filled in by the phase before it touches the field it shadows.
	p       *peState
	pumpAt  des.Time
	popped  *message
	spare   *Ctx
	pendM   *message
	pendEl  *element
	pendCtx *Ctx
	pendAt  des.Time

	els []elemSnap

	// Location-cache undo (updateLocCache's phase body). cacheDense marks
	// a write to the array's flat hint table (cacheOff its slot, cacheNil
	// "the table itself was created by this speculation"); otherwise the
	// map fields apply.
	cacheP     *peState
	cacheKey   elemKey
	cacheEnt   locEnt
	cacheOff   int
	cacheDense bool
	cacheHad   bool
	cacheNil   bool
}

// specController implements optsim.Controller over the runtime's shard
// (node) layout. BeginSpec/CommitSpec/RollbackSpec run on the engine's
// driving goroutine; the note/snapshot hooks run inside the speculated
// phase on a worker, ordered against the driver by the engine's job-
// channel and done-channel edges.
type specController struct {
	rt     *Runtime
	shards []shardSpec

	// Snapshot counters feed the optsim.* metrics family. Phases on
	// different shards snapshot concurrently, so these are atomics — the
	// only speculation state shared across goroutines.
	snapshots     atomic.Uint64
	snapshotBytes atomic.Uint64
	restores      atomic.Uint64
}

func newSpecController(rt *Runtime, shards int) *specController {
	return &specController{rt: rt, shards: make([]shardSpec, shards)}
}

func (sc *specController) registerMetrics(reg *metrics.Registry) {
	reg.GaugeFunc("optsim.snapshots", func() float64 { return float64(sc.snapshots.Load()) })
	reg.GaugeFunc("optsim.snapshot_bytes", func() float64 { return float64(sc.snapshotBytes.Load()) })
	reg.GaugeFunc("optsim.snapshot_restores", func() float64 { return float64(sc.restores.Load()) })
}

// specFor returns the undo log the phase running on pe should record into,
// or nil when the execution is not speculative (sequential and parsim
// backends, optsim inline pops, commit context). One nil check on the
// non-speculative hot path.
func (rt *Runtime) specFor(pe int) *shardSpec {
	sc := rt.spec
	if sc == nil {
		return nil
	}
	if s := &sc.shards[rt.peShard[pe]]; s.active {
		return s
	}
	return nil
}

// BeginSpec opens shard s's undo log. Runs on the driver strictly before
// the phase is handed to a worker.
func (sc *specController) BeginSpec(s int) {
	sp := &sc.shards[s]
	if sp.active {
		panic(fmt.Sprintf("charm: BeginSpec on shard %d with a speculation already open", s))
	}
	*sp = shardSpec{active: true, els: sp.els[:0]}
}

// CommitSpec is fossil collection: the speculation committed, nothing below
// the frontier can roll back, so the snapshots are garbage. Pooled PUP
// buffers go back to the pool; everything else is dropped.
func (sc *specController) CommitSpec(s int) {
	sp := &sc.shards[s]
	for i := range sp.els {
		pup.PutBuffer(sp.els[i].data)
		sp.els[i] = elemSnap{}
	}
	*sp = shardSpec{els: sp.els[:0]}
}

// RollbackSpec undoes the phase's shard-local mutations, in reverse of the
// order the phase made them. The log may be partial — a phase that
// panicked mid-handler logged only what it reached — so every restore is
// guarded by its own recorded-marker.
func (sc *specController) RollbackSpec(s int) {
	sp := &sc.shards[s]

	// Location-cache hint (mutually exclusive with a dequeue log — a
	// speculation is a single phase — but guarded independently anyway).
	if sp.cacheP != nil {
		switch {
		case sp.cacheDense && sp.cacheNil:
			sp.cacheP.locDense[sp.cacheKey.array] = nil
		case sp.cacheDense:
			sp.cacheP.locDense[sp.cacheKey.array][sp.cacheOff] = sp.cacheEnt
		case sp.cacheNil:
			sp.cacheP.locCache = nil
		case sp.cacheHad:
			sp.cacheP.locCache[sp.cacheKey] = sp.cacheEnt
		default:
			delete(sp.cacheP.locCache, sp.cacheKey)
		}
	}

	// Executed chares: unpack the pre-speculation image into a factory-
	// fresh object, exactly as migration re-homes state.
	for i := range sp.els {
		snap := &sp.els[i]
		el := snap.el
		fresh := sc.rt.arrays[el.key.array].NewElement()
		if err := pup.Unpack(snap.data, fresh); err != nil {
			panic(fmt.Sprintf("charm: rollback pup of %v failed: %v", el.key, err))
		}
		pup.PutBuffer(snap.data)
		el.obj = fresh
		el.msgsSent, el.bytesSent = snap.msgsSent, snap.bytesSent
		el.pos, el.hasPos = snap.pos, snap.hasPos
		el.atSync, el.redGen = snap.atSync, snap.redGen
		el.comm = snap.comm
		sp.els[i] = elemSnap{}
		sc.restores.Add(1)
	}

	// The dequeue: push the popped message back (the queue's (prio, seq)
	// order is total, so re-pushing restores the identical pop order),
	// re-arm the pump, and return the pending-delivery slot and recycled
	// context to their pre-phase values. The context the dropped execution
	// used is the old spare pointer itself — the execution is dead, so
	// handing it back as the spare is exactly the recycling contract.
	if sp.p != nil {
		p := sp.p
		if sp.popped != nil {
			p.q.push(sp.popped)
		}
		p.pumpAt = sp.pumpAt
		p.ctxSpare = sp.spare
		p.pendM, p.pendEl, p.pendCtx, p.pendAt = sp.pendM, sp.pendEl, sp.pendCtx, sp.pendAt
	}

	*sp = shardSpec{els: sp.els[:0]}
}

// noteDequeue records the pump/queue/context state runOne is about to
// shadow. Phase context, worker goroutine.
func (sp *shardSpec) noteDequeue(p *peState) {
	sp.p = p
	sp.pumpAt = p.pumpAt
	sp.spare = p.ctxSpare
	sp.pendM, sp.pendEl, sp.pendCtx, sp.pendAt = p.pendM, p.pendEl, p.pendCtx, p.pendAt
}

// noteLocCache records the previous state of the location-cache slot the
// hint write (rt.cacheLoc) is about to overwrite — the flat-table slot for
// small bounded arrays, the map entry otherwise, mirroring cacheLoc's own
// dispatch. Phase context, worker goroutine.
func (sp *shardSpec) noteLocCache(rt *Runtime, p *peState, key elemKey) {
	sp.cacheP = p
	sp.cacheKey = key
	a := rt.arrays[key.array]
	if a.linCap > 0 && a.linCap <= denseLocCap {
		if off := a.lin(key.idx); off >= 0 {
			sp.cacheDense = true
			sp.cacheOff = off
			if t := p.locDense[key.array]; t != nil {
				sp.cacheEnt = t[off]
			} else {
				sp.cacheNil = true
			}
			return
		}
	}
	sp.cacheNil = p.locCache == nil
	if !sp.cacheNil {
		sp.cacheEnt, sp.cacheHad = p.locCache[key]
	}
}

// snapshotElem images el before a speculated handler mutates it. Dedupes
// by element — one execution can reach the same chare twice through
// LocalInvoke, and the first image is the pre-speculation one. Phase
// context, worker goroutine.
func (sp *shardSpec) snapshotElem(sc *specController, el *element) {
	for i := range sp.els {
		if sp.els[i].el == el {
			return
		}
	}
	data := pup.PackTo(pup.GetBuffer(), el.obj)
	var comm map[elemKey]uint64
	if el.comm != nil {
		comm = make(map[elemKey]uint64, len(el.comm))
		//charmvet:ordered (map-to-map copy: the result is identical under any iteration order)
		for k, v := range el.comm {
			comm[k] = v
		}
	}
	sp.els = append(sp.els, elemSnap{
		el:        el,
		data:      data,
		msgsSent:  el.msgsSent,
		bytesSent: el.bytesSent,
		pos:       el.pos,
		hasPos:    el.hasPos,
		atSync:    el.atSync,
		redGen:    el.redGen,
		comm:      comm,
	})
	sc.snapshots.Add(1)
	sc.snapshotBytes.Add(uint64(len(data)))
}

var _ interface {
	BeginSpec(int)
	CommitSpec(int)
	RollbackSpec(int)
} = (*specController)(nil)

// SpecSnapshotStats reports how many chare snapshots the optimistic
// backend has taken and their total PUP bytes (zero on other backends).
func (rt *Runtime) SpecSnapshotStats() (snapshots, bytes uint64) {
	if rt.spec == nil {
		return 0, 0
	}
	return rt.spec.snapshots.Load(), rt.spec.snapshotBytes.Load()
}
