package charm

import (
	"fmt"
	"sort"

	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// ArrayOpts configures a chare array at declaration.
type ArrayOpts struct {
	// HomeMap overrides the default hash-based home-PE assignment
	// (§II-D: "Programmers can also define their own scheme").
	HomeMap func(idx Index, numPEs int) int
	// UsesAtSync marks the array's elements as participants in the
	// AtSync load-balancing barrier.
	UsesAtSync bool
	// Migratable marks the array's elements as movable by RTS-triggered
	// rebalancing (Runtime.Rebalance) even without AtSync participation.
	// UsesAtSync implies Migratable.
	Migratable bool
	// TrackComm records the per-destination communication volume of each
	// element (the communication side of the LB database, §III-A), for
	// communication-aware strategies. Costs a map per element.
	TrackComm bool
	// ResumeEP is the entry method invoked on every element when load
	// balancing completes (ResumeFromSync).
	ResumeEP EP
	// EntryNames labels the entry methods (parallel to the handlers
	// slice) for traces and profiles; missing names render as "ep<N>".
	EntryNames []string
}

// Array is a chare array: an indexed collection of migratable objects.
type Array struct {
	rt       *Runtime
	id       int
	name     string
	factory  func() Chare
	handlers []Handler
	opts     ArrayOpts

	elems map[Index]*element
}

// DeclareArray registers a chare array type: a factory producing empty
// elements (for migration and restart) and the entry-method table. EP
// values index into handlers.
func (rt *Runtime) DeclareArray(name string, factory func() Chare, handlers []Handler, opts ArrayOpts) *Array {
	if _, dup := rt.arrayNames[name]; dup {
		panic("charm: duplicate array name " + name)
	}
	a := &Array{
		rt:       rt,
		id:       len(rt.arrays),
		name:     name,
		factory:  factory,
		handlers: handlers,
		opts:     opts,
		elems:    map[Index]*element{},
	}
	rt.arrays = append(rt.arrays, a)
	rt.arrayNames[name] = a
	for _, p := range rt.pes {
		p.byArr = append(p.byArr, 0)
	}
	return a
}

// ArrayByName looks up a declared array.
func (rt *Runtime) ArrayByName(name string) *Array { return rt.arrayNames[name] }

// Arrays returns all declared arrays in declaration order.
func (rt *Runtime) Arrays() []*Array { return rt.arrays }

// Name returns the array's name.
func (a *Array) Name() string { return a.name }

// EntryName returns the trace name of entry method ep.
func (a *Array) EntryName(ep EP) string {
	if int(ep) < len(a.opts.EntryNames) && a.opts.EntryNames[ep] != "" {
		return a.opts.EntryNames[ep]
	}
	return fmt.Sprintf("ep%d", ep)
}

// Len returns the number of live elements.
func (a *Array) Len() int { return len(a.elems) }

// NewElement invokes the array's factory.
func (a *Array) NewElement() Chare { return a.factory() }

// Insert creates an element at its home PE (bulk construction before or
// during the run). Use Ctx.Insert for dynamic insertion on a specific PE.
func (a *Array) Insert(idx Index, obj Chare) {
	rt := a.rt
	pe := rt.homePE(elemKey{array: a.id, idx: idx})
	rt.insertElement(a, idx, obj, pe, false)
}

// InsertOn creates an element on an explicit PE.
func (a *Array) InsertOn(idx Index, obj Chare, pe int) {
	a.rt.insertElement(a, idx, obj, pe, false)
}

// Get returns the element's state, or nil if it does not exist. This is a
// simulation-level accessor (checkpointing, verification); application
// logic should communicate via entry methods.
func (a *Array) Get(idx Index) Chare {
	if el, ok := a.elems[idx]; ok {
		return el.obj
	}
	return nil
}

// PEOf returns the PE currently hosting idx, or -1.
func (a *Array) PEOf(idx Index) int {
	if el, ok := a.elems[idx]; ok {
		return el.pe
	}
	return -1
}

// Keys returns all live indices in deterministic sorted order.
func (a *Array) Keys() []Index {
	keys := make([]Index, 0, len(a.elems))
	for idx := range a.elems {
		keys = append(keys, idx)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// Send invokes an entry method from outside any execution (drivers,
// checkpoint restore); it is stamped at the current virtual time from PE 0.
func (a *Array) Send(idx Index, ep EP, payload any) {
	rt := a.rt
	ctx := rt.newCtx(0, nil)
	ctx.SendOpt(a, idx, ep, payload, nil)
	// Driver-level sends do not occupy PE 0.
}

// Broadcast invokes ep on every element from the driver.
func (a *Array) Broadcast(ep EP, payload any) {
	rt := a.rt
	rt.eng.At(rt.eng.Now(), func() {
		ctx := rt.newCtx(0, nil)
		ctx.Broadcast(a, ep, payload, nil)
		rt.finishExec(ctx, nil)
	})
}

// Replace swaps an existing element's state for obj and re-homes it on pe.
// The fault-tolerance layer uses it to roll elements back to a checkpoint.
func (a *Array) Replace(idx Index, obj Chare, pe int) {
	el, ok := a.elems[idx]
	if !ok {
		panic("charm: Replace of missing element " + idx.String())
	}
	el.obj = obj
	if el.pe != pe {
		a.rt.moveElement(el, pe, false)
	}
}

// Remove destroys an element from driver context (checkpoint rollback of a
// post-snapshot insertion).
func (a *Array) Remove(idx Index) {
	if el, ok := a.elems[idx]; ok {
		a.rt.removeElement(el)
	}
}

// insertElement registers a new element on pe.
func (rt *Runtime) insertElement(a *Array, idx Index, obj Chare, pe int, dynamic bool) {
	key := elemKey{array: a.id, idx: idx}
	if _, dup := rt.owner[key]; dup {
		panic("charm: duplicate insert of " + key.String())
	}
	el := &element{key: key, obj: obj, pe: pe}
	a.elems[idx] = el
	rt.owner[key] = pe
	p := rt.pes[pe]
	p.elems[key] = el
	p.insertSorted(el)
	p.byArr[a.id]++
	if a.opts.UsesAtSync {
		rt.lbTotal++
	}
	// Flush messages buffered at home before the element existed.
	if buffered, ok := rt.pending[key]; ok {
		delete(rt.pending, key)
		home := rt.homePE(key)
		for _, m := range buffered {
			rt.transmit(m, home, pe, rt.eng.Now())
		}
	}
	_ = dynamic
}

// removeElement destroys an element.
func (rt *Runtime) removeElement(el *element) {
	a := rt.arrays[el.key.array]
	delete(a.elems, el.key.idx)
	delete(rt.owner, el.key)
	p := rt.pes[el.pe]
	delete(p.elems, el.key)
	p.removeSorted(el)
	p.byArr[a.id]--
	if a.opts.UsesAtSync {
		rt.lbTotal--
		if el.atSync {
			rt.lbArrived--
		}
		rt.maybeStartLB()
	}
}

// moveElement migrates el to toPE, charging PUP serialization and transfer
// costs when charge is true.
func (rt *Runtime) moveElement(el *element, toPE int, charge bool) {
	from := el.pe
	if from == toPE {
		return
	}
	size := pup.Size(el.obj) + 64
	if charge {
		// Serialize out, transfer, deserialize in.
		cfg := rt.mach.Config()
		pupCost := des.Time(float64(size) * 2e-10 * cfg.BaseFreqGHz)
		src := rt.pes[from]
		t := rt.eng.Now()
		if src.busy > t {
			src.busy = src.busy + pupCost
		} else {
			src.busy = t + pupCost
		}
		rt.mach.PE(from).BusyTime += pupCost
	}
	// Re-home the state. In a real machine the object is packed and
	// unpacked; we exercise the same PUP path to keep Pup methods honest.
	data := pup.Pack(el.obj)
	fresh := rt.arrays[el.key.array].NewElement()
	if err := pup.Unpack(data, fresh); err != nil {
		panic(fmt.Sprintf("charm: migration pup of %v failed: %v", el.key, err))
	}
	el.obj = fresh

	srcPE := rt.pes[from]
	delete(srcPE.elems, el.key)
	srcPE.removeSorted(el)
	srcPE.byArr[el.key.array]--

	el.pe = toPE
	dst := rt.pes[toPE]
	dst.elems[el.key] = el
	dst.insertSorted(el)
	dst.byArr[el.key.array]++

	rt.owner[el.key] = toPE // home PE updated during migration (§II-D)
	rt.Stats.Migrations++
	if rt.hooks != nil {
		rt.hooks.Migration(rt.eng.Now(), rt.arrays[el.key.array].name, el.key.idx, from, toPE)
	}
}
