package charm

import (
	"fmt"
	"sort"

	"charmgo/internal/des"
	"charmgo/internal/pup"
)

// ArrayOpts configures a chare array at declaration.
type ArrayOpts struct {
	// HomeMap overrides the default hash-based home-PE assignment
	// (§II-D: "Programmers can also define their own scheme").
	HomeMap func(idx Index, numPEs int) int
	// UsesAtSync marks the array's elements as participants in the
	// AtSync load-balancing barrier.
	UsesAtSync bool
	// Migratable marks the array's elements as movable by RTS-triggered
	// rebalancing (Runtime.Rebalance) even without AtSync participation.
	// UsesAtSync implies Migratable.
	Migratable bool
	// TrackComm records the per-destination communication volume of each
	// element (the communication side of the LB database, §III-A), for
	// communication-aware strategies. Costs a map per element.
	TrackComm bool
	// ResumeEP is the entry method invoked on every element when load
	// balancing completes (ResumeFromSync).
	ResumeEP EP
	// EntryNames labels the entry methods (parallel to the handlers
	// slice) for traces and profiles; missing names render as "ep<N>".
	EntryNames []string
	// Bounds declares a dense rectangular index space: with Bounds of
	// length d (1–3), every index is Idx1/Idx2/Idx3 with coordinate i in
	// [0, Bounds[i]). Declaring bounds lets the location manager replace
	// its per-key hash maps with flat per-array tables — one array load
	// instead of a map lookup on the send-side resolve and the eid mint
	// paths. Indices outside the bounds (or arrays without Bounds, like
	// AMR's bitvector octree) keep using the map path.
	Bounds []int
	// PureHandlers declares that every entry method of this array is a
	// pure function of (chare state, message payload): it reads no mutable
	// app-global state and performs app-global writes only through
	// commit-deferred effects (ctx.Defer and friends). The optimistic
	// backend then amortizes state saving over PureHandlers elements —
	// PUP-imaging each only every K-th speculated execution and replaying
	// the committed deliveries in between on rollback (coast-forward; see
	// internal/charm/speculation.go). Arrays without the declaration keep
	// eager per-execution imaging, which is always safe. Declaring it on
	// an array whose handlers do consult mutable globals is detected at
	// the first divergent replay and panics.
	PureHandlers bool
}

// Array is a chare array: an indexed collection of migratable objects.
type Array struct {
	rt       *Runtime
	id       int
	name     string
	factory  func() Chare
	handlers []Handler
	opts     ArrayOpts

	elems map[Index]*element

	// Reduction state (§II-C), a generation ring: redBase is the oldest
	// generation that may still be open, redOpen[g-redBase] its run (nil
	// once delivered). Completed head slots advance redBase, so the ring
	// stays as short as the spread between the slowest and fastest element.
	redBase uint64
	redOpen []*redRun

	// rankKeys is the canonical sorted index order backing element.redRank:
	// contributions land at vals[rank] without sorting. ranksDirty marks the
	// table stale after an insert or remove; it is rebuilt lazily at the
	// next reduction that needs it.
	rankKeys   []Index
	ranksDirty bool

	// spareVals/spareHave recycle the rank buffers of the last completed
	// generation into the next one (cleared at stash time), so steady-state
	// per-step reductions over large arrays allocate nothing.
	spareVals []any
	spareHave []bool

	// Dense index-space support (ArrayOpts.Bounds): linKind is the index
	// kind the bounds describe (0 when unbounded), linDims the extents
	// normalized to three axes, linCap their product. eidTab flattens the
	// key→eid map for in-bounds indices (-1 = unminted).
	linKind uint8
	linDims [3]int
	linCap  int
	eidTab  []int32
}

// DeclareArray registers a chare array type: a factory producing empty
// elements (for migration and restart) and the entry-method table. EP
// values index into handlers.
func (rt *Runtime) DeclareArray(name string, factory func() Chare, handlers []Handler, opts ArrayOpts) *Array {
	if _, dup := rt.arrayNames[name]; dup {
		panic("charm: duplicate array name " + name)
	}
	a := &Array{
		rt:         rt,
		id:         len(rt.arrays),
		name:       name,
		factory:    factory,
		handlers:   handlers,
		opts:       opts,
		elems:      map[Index]*element{},
		ranksDirty: true,
	}
	if n := len(opts.Bounds); n >= 1 && n <= 3 {
		a.linKind = [4]uint8{0, Kind1D, Kind2D, Kind3D}[n]
		a.linDims = [3]int{1, 1, 1}
		a.linCap = 1
		for i, b := range opts.Bounds {
			if b <= 0 {
				panic(fmt.Sprintf("charm: non-positive bound %d for array %s", b, name))
			}
			a.linDims[i] = b
			a.linCap *= b
		}
		if a.linCap > 1<<22 {
			// A flat table this size loses to the map; ignore the bounds.
			a.linKind, a.linCap = 0, 0
		} else {
			a.eidTab = make([]int32, a.linCap)
			for i := range a.eidTab {
				a.eidTab[i] = -1
			}
		}
	} else if len(opts.Bounds) != 0 {
		panic(fmt.Sprintf("charm: array %s declares %d-dimensional bounds; 1-3 supported", name, len(opts.Bounds)))
	}
	rt.arrays = append(rt.arrays, a)
	rt.arrayNames[name] = a
	for _, p := range rt.pes {
		p.byArr = append(p.byArr, 0)
		p.locDense = append(p.locDense, nil)
	}
	return a
}

// lin maps an in-bounds index to its dense offset, or -1 when the array is
// unbounded or the index falls outside the declared box. Pure arithmetic —
// safe from phase context.
func (a *Array) lin(idx Index) int {
	if idx.Kind != a.linKind {
		return -1
	}
	i, j, k := idx.I(), idx.J(), idx.K()
	if uint(i) >= uint(a.linDims[0]) || uint(j) >= uint(a.linDims[1]) || uint(k) >= uint(a.linDims[2]) {
		return -1
	}
	return (i*a.linDims[1]+j)*a.linDims[2] + k
}

// ArrayByName looks up a declared array.
func (rt *Runtime) ArrayByName(name string) *Array { return rt.arrayNames[name] }

// Arrays returns all declared arrays in declaration order.
func (rt *Runtime) Arrays() []*Array { return rt.arrays }

// Name returns the array's name.
func (a *Array) Name() string { return a.name }

// EntryName returns the trace name of entry method ep.
func (a *Array) EntryName(ep EP) string {
	if int(ep) < len(a.opts.EntryNames) && a.opts.EntryNames[ep] != "" {
		return a.opts.EntryNames[ep]
	}
	return fmt.Sprintf("ep%d", ep)
}

// Len returns the number of live elements.
func (a *Array) Len() int { return len(a.elems) }

// NewElement invokes the array's factory.
func (a *Array) NewElement() Chare { return a.factory() }

// Insert creates an element at its home PE (bulk construction before or
// during the run). Use Ctx.Insert for dynamic insertion on a specific PE.
func (a *Array) Insert(idx Index, obj Chare) {
	rt := a.rt
	pe := rt.homePE(elemKey{array: a.id, idx: idx})
	rt.insertElement(a, idx, obj, pe, false)
}

// InsertOn creates an element on an explicit PE.
func (a *Array) InsertOn(idx Index, obj Chare, pe int) {
	a.rt.insertElement(a, idx, obj, pe, false)
}

// Get returns the element's state, or nil if it does not exist. This is a
// simulation-level accessor (checkpointing, verification); application
// logic should communicate via entry methods.
func (a *Array) Get(idx Index) Chare {
	if el, ok := a.elems[idx]; ok {
		return el.obj
	}
	return nil
}

// PEOf returns the PE currently hosting idx, or -1.
func (a *Array) PEOf(idx Index) int {
	if el, ok := a.elems[idx]; ok {
		return el.pe
	}
	return -1
}

// Keys returns all live indices in deterministic sorted order.
func (a *Array) Keys() []Index {
	keys := make([]Index, 0, len(a.elems))
	for idx := range a.elems {
		keys = append(keys, idx)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].Less(keys[j]) })
	return keys
}

// Send invokes an entry method from outside any execution (drivers,
// checkpoint restore); it is stamped at the current virtual time from PE 0.
func (a *Array) Send(idx Index, ep EP, payload any) {
	rt := a.rt
	ctx := rt.newCtx(0, nil)
	ctx.SendOpt(a, idx, ep, payload, nil)
	// Driver-level sends do not occupy PE 0.
}

// Broadcast invokes ep on every element from the driver.
func (a *Array) Broadcast(ep EP, payload any) {
	rt := a.rt
	rt.eng.At(rt.eng.Now(), func() {
		ctx := rt.newCtx(0, nil)
		ctx.Broadcast(a, ep, payload, nil)
		rt.finishExec(ctx, nil)
	})
}

// Replace swaps an existing element's state for obj and re-homes it on pe.
// The fault-tolerance layer uses it to roll elements back to a checkpoint.
func (a *Array) Replace(idx Index, obj Chare, pe int) {
	el, ok := a.elems[idx]
	if !ok {
		panic("charm: Replace of missing element " + idx.String())
	}
	el.obj = obj
	// The retained speculation image (if any) describes the replaced state.
	a.rt.dropSave(el)
	if el.pe != pe {
		a.rt.moveElement(el, pe, false)
	}
}

// Remove destroys an element from driver context (checkpoint rollback of a
// post-snapshot insertion).
func (a *Array) Remove(idx Index) {
	if el, ok := a.elems[idx]; ok {
		a.rt.removeElement(el)
	}
}

// insertElement registers a new element on pe. Commit/global context: it
// mutates the global location tables.
func (rt *Runtime) insertElement(a *Array, idx Index, obj Chare, pe int, dynamic bool) {
	key := elemKey{array: a.id, idx: idx}
	eid := rt.eidOf(key)
	if rt.elemTab[eid] != nil {
		panic("charm: duplicate insert of " + key.String())
	}
	a.populationChanging()
	el := &element{key: key, obj: obj, pe: pe, eid: eid, redRank: -1}
	a.elems[idx] = el
	rt.elemTab[eid] = el
	rt.owner[eid] = int32(pe)
	p := rt.pes[pe]
	if p.elems == nil {
		p.elems = map[elemKey]*element{}
	}
	p.elems[key] = el
	p.insertSorted(el)
	p.byArr[a.id]++
	if a.opts.UsesAtSync {
		rt.lbTotal++
	}
	// Flush messages buffered at home before the element existed.
	if buffered, ok := rt.pending[eid]; ok {
		delete(rt.pending, eid)
		home := rt.homePE(key)
		for _, m := range buffered {
			rt.transmit(m, home, pe, rt.eng.Now())
		}
	}
	_ = dynamic
}

// removeElement destroys an element. Its eid stays minted (stable for the
// key's lifetime), but the table slots empty so the location manager buffers
// messages for it again.
func (rt *Runtime) removeElement(el *element) {
	a := rt.arrays[el.key.array]
	a.populationChanging()
	rt.dropSave(el)
	delete(a.elems, el.key.idx)
	rt.elemTab[el.eid] = nil
	rt.owner[el.eid] = -1
	el.dead = true
	p := rt.pes[el.pe]
	delete(p.elems, el.key)
	p.removeSorted(el)
	p.byArr[a.id]--
	if a.opts.UsesAtSync {
		rt.lbTotal--
		if el.atSync {
			rt.lbArrived--
		}
		rt.maybeStartLB()
	}
}

// populationChanging runs before any insert or remove: open ranked
// reduction runs are demoted to spill mode (their placed values keyed back
// to indices through the still-valid rank table) and the rank table is
// marked stale.
func (a *Array) populationChanging() {
	for _, run := range a.redOpen {
		if run != nil && run.ranked {
			run.demote(a)
		}
	}
	a.ranksDirty = true
}

// rebuildRanks recomputes the canonical rank of every live element. Called
// lazily from commit context when a reduction needs ranks.
func (a *Array) rebuildRanks() {
	a.rankKeys = a.Keys()
	for r, idx := range a.rankKeys {
		a.elems[idx].redRank = int32(r)
	}
	a.ranksDirty = false
}

// moveElement migrates el to toPE, charging PUP serialization and transfer
// costs when charge is true.
func (rt *Runtime) moveElement(el *element, toPE int, charge bool) {
	from := el.pe
	if from == toPE {
		return
	}
	size := pup.Size(el.obj) + 64
	if charge {
		// Serialize out, transfer, deserialize in.
		cfg := rt.mach.Config()
		pupCost := des.Time(float64(size) * 2e-10 * cfg.BaseFreqGHz)
		src := rt.pes[from]
		t := rt.eng.Now()
		if src.busy > t {
			src.busy = src.busy + pupCost
		} else {
			src.busy = t + pupCost
		}
		rt.mach.PE(from).BusyTime += pupCost
	}
	// A migration repacks the object into a fresh instance; the retained
	// speculation image (and its replay log) no longer matches it.
	rt.dropSave(el)
	// Re-home the state. In a real machine the object is packed and
	// unpacked; we exercise the same PUP path to keep Pup methods honest.
	// The pack buffer is pooled: at 256k-element rebalances the per-move
	// allocation would otherwise dominate the LB step's heap churn.
	data := pup.PackTo(pup.GetBuffer(), el.obj)
	fresh := rt.arrays[el.key.array].NewElement()
	err := pup.Unpack(data, fresh)
	pup.PutBuffer(data)
	if err != nil {
		panic(fmt.Sprintf("charm: migration pup of %v failed: %v", el.key, err))
	}
	el.obj = fresh

	srcPE := rt.pes[from]
	delete(srcPE.elems, el.key)
	srcPE.removeSorted(el)
	srcPE.byArr[el.key.array]--

	el.pe = toPE
	dst := rt.pes[toPE]
	if dst.elems == nil {
		dst.elems = map[elemKey]*element{}
	}
	dst.elems[el.key] = el
	dst.insertSorted(el)
	dst.byArr[el.key.array]++

	rt.owner[el.eid] = int32(toPE) // home PE updated during migration (§II-D)
	rt.Stats.Migrations++
	if rt.hooks != nil {
		rt.hooks.Migration(rt.eng.Now(), rt.arrays[el.key.array].name, el.key.idx, from, toPE)
	}
}

// CompactElementTable renumbers the location tables densely over the live
// elements, dropping slots accumulated by destroyed keys (AMR coarsening,
// shrink). It runs only at a quiescent cut — no element message in flight,
// queued, or buffered — because renumbering invalidates every eid stamped
// on a message or cached hint; the location caches are dropped and the
// table epoch bumped so late-landing hints and stale snapshots cannot
// resurrect the old numbering. Global-event context. Returns false (doing
// nothing) when the quiescence precondition does not hold.
func (rt *Runtime) CompactElementTable() bool {
	if rt.inflight != 0 || len(rt.pending) != 0 {
		return false
	}
	live := 0
	for _, a := range rt.arrays {
		live += len(a.elems)
	}
	rt.keyEID = make(map[elemKey]int32, live)
	rt.elemTab = make([]*element, 0, live)
	rt.owner = make([]int32, 0, live)
	for _, a := range rt.arrays {
		// Dense eid tables lazily refill from the new numbering via eidOf.
		for i := range a.eidTab {
			a.eidTab[i] = -1
		}
		for _, idx := range a.Keys() {
			el := a.elems[idx]
			el.eid = int32(len(rt.elemTab))
			rt.keyEID[el.key] = el.eid
			rt.elemTab = append(rt.elemTab, el)
			rt.owner = append(rt.owner, int32(el.pe))
		}
	}
	for _, p := range rt.pes {
		p.locCache = nil
		for i := range p.locDense {
			p.locDense[i] = nil
		}
	}
	rt.tableEpoch++
	return true
}
