package charm

import "charmgo/internal/machine"

// TopoMap3D builds a topology-aware home map for a 3-D chare grid of
// cx×cy×cz elements: neighbouring chares land on neighbouring torus nodes,
// so nearest-neighbour ghost traffic travels few hops. Topology-aware
// mapping is one of the §III-E control points ("topology aware mapping
// scheme"); Charm++ ships it as the TopoManager.
//
// The 3-D chare grid is scaled onto the machine's (up to 3-D) node torus;
// chares that share the scaled node cell spread round-robin over its PEs.
func TopoMap3D(m *machine.Machine, cx, cy, cz int) func(Index, int) int {
	dims := m.TorusDims()
	for len(dims) < 3 {
		dims = append(dims, 1)
	}
	perNode := m.Config().PEsPerNode
	return func(idx Index, numPEs int) int {
		i, j, k := idx.I(), idx.J(), idx.K()
		// Scale each chare coordinate onto the torus axis.
		nc := []int{
			i * dims[0] / max3(cx, 1),
			j * dims[1] / max3(cy, 1),
			k * dims[2] / max3(cz, 1),
		}
		node := m.NodeAt(nc[:len(m.TorusDims())])
		// Fold the sub-node position onto the node's PEs.
		sub := (i*31 + j*17 + k*7) % perNode
		pe := node*perNode + sub
		if pe >= numPEs {
			pe %= numPEs
		}
		return pe
	}
}

func max3(a, b int) int {
	if a > b {
		return a
	}
	return b
}
