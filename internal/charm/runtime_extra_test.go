package charm

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"charmgo/internal/des"
	"charmgo/internal/machine"
)

func TestExecuteOnPE(t *testing.T) {
	rt := testRT(4)
	var ranOn, at = -1, des.Time(0)
	rt.ExecuteOnPE(2, 0.5, func(ctx *Ctx) {
		ranOn = ctx.MyPE()
		at = ctx.Now()
	})
	rt.Run()
	if ranOn != 2 {
		t.Fatalf("ran on PE %d, want 2", ranOn)
	}
	if at < 0.5 {
		t.Fatalf("ran at %v, want >= 0.5", at)
	}
}

func TestStallActivePEs(t *testing.T) {
	rt := testRT(4)
	rt.StallActivePEs(3.5)
	for p := 0; p < 4; p++ {
		if rt.BusyUntil(p) < 3.5 {
			t.Fatalf("PE %d busy until %v, want >= 3.5", p, rt.BusyUntil(p))
		}
	}
	if rt.MaxBusy() < 3.5 {
		t.Fatal("MaxBusy below stall")
	}
	// Stalling backwards is a no-op.
	rt.StallActivePEs(1.0)
	if rt.BusyUntil(0) < 3.5 {
		t.Fatal("stall moved busy horizon backwards")
	}
}

func TestRebalanceReportsAndResets(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{Migratable: true})
	for i := 0; i < 12; i++ {
		arr.InsertOn(Idx1(i), &counter{}, 0) // everything on PE 0
	}
	rt.Boot(func(ctx *Ctx) {
		for i := 0; i < 12; i++ {
			ctx.Send(arr, Idx1(i), epBump, int64(1))
		}
	})
	rt.Run()
	rt.SetBalancer(&moveStrategy{})
	var got LBReport
	rt.OnLB(func(r LBReport) { got = r })
	rep := rt.Rebalance()
	if rep.NumObjs != 12 {
		t.Fatalf("report objs %d, want 12", rep.NumObjs)
	}
	if got.NumObjs != 12 {
		t.Fatal("listener not invoked")
	}
	// moveStrategy sends everything to PE 0 where it already is: no moves.
	if rep.NumMoved != 0 {
		t.Fatalf("moved %d, want 0", rep.NumMoved)
	}
	// Load stats were reset by the rebalance.
	objs, _ := rt.LBView()
	for _, o := range objs {
		if o.Load != 0 {
			t.Fatalf("load not reset: %+v", o)
		}
	}
}

func TestResetLoadStats(t *testing.T) {
	rt := testRT(2)
	arr := declCounters(rt, ArrayOpts{Migratable: true})
	arr.Insert(Idx1(0), &counter{})
	rt.Boot(func(ctx *Ctx) { ctx.Send(arr, Idx1(0), epBump, int64(1)) })
	rt.Run()
	objs, _ := rt.LBView()
	if objs[0].Load == 0 {
		t.Fatal("no load instrumented")
	}
	rt.ResetLoadStats()
	objs, _ = rt.LBView()
	if objs[0].Load != 0 {
		t.Fatal("ResetLoadStats left load behind")
	}
}

func TestProbablePE(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{})
	arr.Insert(Idx1(3), &counter{})
	home := arr.PEOf(Idx1(3))
	if got := rt.ProbablePE(arr, Idx1(3), (home+1)%4); got != home {
		t.Fatalf("cold probe says PE %d, want home %d", got, home)
	}
}

func TestBroadcastFromNonZeroPE(t *testing.T) {
	rt := testRT(8)
	arr := declCounters(rt, ArrayOpts{})
	for i := 0; i < 16; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	// An element on a non-zero PE initiates the broadcast.
	var src Index
	for i := 0; i < 16; i++ {
		if arr.PEOf(Idx1(i)) != 0 {
			src = Idx1(i)
			break
		}
	}
	handlers2 := []Handler{func(obj Chare, ctx *Ctx, msg any) {
		ctx.Broadcast(arr, epBump, int64(5), nil)
	}}
	arr2 := rt.DeclareArray("initiator", func() Chare { return &counter{} }, handlers2, ArrayOpts{})
	arr2.InsertOn(Idx1(0), &counter{}, arr.PEOf(src))
	arr2.Send(Idx1(0), 0, nil)
	rt.Run()
	for i := 0; i < 16; i++ {
		if c := arr.Get(Idx1(i)).(*counter); c.N != 5 {
			t.Fatalf("element %d missed broadcast from non-zero PE: %d", i, c.N)
		}
	}
}

func TestMaxPEsAndActivePEs(t *testing.T) {
	rt := testRT(8)
	if rt.MaxPEs() != 8 || rt.NumPEs() != 8 {
		t.Fatalf("MaxPEs=%d NumPEs=%d", rt.MaxPEs(), rt.NumPEs())
	}
	rt.SetActivePEs(4)
	if rt.MaxPEs() != 8 || rt.NumPEs() != 4 {
		t.Fatalf("after shrink: MaxPEs=%d NumPEs=%d", rt.MaxPEs(), rt.NumPEs())
	}
	rt.SetActivePEs(8)
	if rt.NumPEs() != 8 {
		t.Fatal("expand failed")
	}
}

func TestSetActivePEsRangeChecked(t *testing.T) {
	rt := testRT(4)
	for _, bad := range []int{0, -1, 5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("SetActivePEs(%d) should panic", bad)
				}
			}()
			rt.SetActivePEs(bad)
		}()
	}
}

func TestDuplicateArrayNamePanics(t *testing.T) {
	rt := testRT(2)
	declCounters(rt, ArrayOpts{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate array name should panic")
		}
	}()
	declCounters(rt, ArrayOpts{})
}

func TestDuplicateInsertPanics(t *testing.T) {
	rt := testRT(2)
	arr := declCounters(rt, ArrayOpts{})
	arr.Insert(Idx1(0), &counter{})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate insert should panic")
		}
	}()
	arr.Insert(Idx1(0), &counter{})
}

// Property: Index.Less is a strict total order consistent with equality.
func TestPropertyIndexOrder(t *testing.T) {
	f := func(a1, a2, b1, b2 uint64, k1, k2 uint8) bool {
		x := Index{Kind: k1%5 + 1, A: a1, B: a2}
		y := Index{Kind: k2%5 + 1, A: b1, B: b2}
		if x == y {
			return !x.Less(y) && !y.Less(x)
		}
		return x.Less(y) != y.Less(x)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: sorting by Less then walking Keys() yields strictly increasing
// unique indices.
func TestPropertyKeysSorted(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{})
	for i := 0; i < 50; i++ {
		arr.Insert(Idx2(i*7%13, i), &counter{})
	}
	keys := arr.Keys()
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i].Less(keys[j]) }) {
		t.Fatal("Keys() not sorted")
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] == keys[i-1] {
			t.Fatal("duplicate keys")
		}
	}
}

func TestBarrierLatencyGrowsWithPEs(t *testing.T) {
	small := New(machine.New(machine.Testbed(8))).barrierLatency()
	big := New(machine.New(machine.Testbed(1024))).barrierLatency()
	if big <= small {
		t.Fatalf("barrier latency should grow with PE count: %v vs %v", small, big)
	}
}

// Property: under any interleaving of migrations and sends, every message
// is delivered exactly once — the location manager never loses or
// duplicates messages.
func TestPropertyDeliveryUnderMigration(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		rt := testRT(8)
		delivered := map[int64]int{}
		handlers := []Handler{
			func(obj Chare, ctx *Ctx, msg any) {
				delivered[msg.(int64)]++
				ctx.Charge(1e-6)
			},
		}
		arr := rt.DeclareArray("p", func() Chare { return &counter{} }, handlers,
			ArrayOpts{Migratable: true})
		const elems = 16
		for i := 0; i < elems; i++ {
			arr.Insert(Idx1(i), &counter{})
		}
		// Interleave bursts of sends with element migrations at staggered
		// virtual times.
		sent := 0
		for round := 0; round < 6; round++ {
			at := des.Time(round) * 1e-3
			rt.Engine().At(at, func() {
				ctx := rt.newCtx(rng.Intn(8), nil)
				for k := 0; k < 10; k++ {
					ctx.Send(arr, Idx1(rng.Intn(elems)), 0, int64(sent))
					sent++
				}
				rt.finishExec(ctx, nil)
			})
			rt.Engine().At(at+5e-4, func() {
				// Move a few random elements behind the senders' backs.
				for k := 0; k < 4; k++ {
					idx := Idx1(rng.Intn(elems))
					if el, ok := arr.elems[idx]; ok {
						rt.moveElement(el, rng.Intn(8), false)
					}
				}
			})
		}
		rt.Run()
		if len(delivered) != sent {
			return false
		}
		for _, n := range delivered {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestIdxName(t *testing.T) {
	a, b := IdxName("alice"), IdxName("bob")
	if a == b {
		t.Fatal("distinct names collided")
	}
	if a != IdxName("alice") {
		t.Fatal("IdxName not deterministic")
	}
	if a.Kind != KindName {
		t.Fatalf("kind %d", a.Kind)
	}
	// Usable as a chare index end to end.
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{})
	arr.Insert(IdxName("coordinator"), &counter{})
	rt.Boot(func(ctx *Ctx) {
		ctx.Send(arr, IdxName("coordinator"), epBump, int64(9))
	})
	rt.Run()
	if c := arr.Get(IdxName("coordinator")).(*counter); c.N != 9 {
		t.Fatalf("named chare missed message: %d", c.N)
	}
	// Spread check over many names.
	seen := map[Index]bool{}
	for i := 0; i < 2000; i++ {
		ix := IdxName(fmt.Sprintf("worker-%d", i))
		if seen[ix] {
			t.Fatalf("collision at %d", i)
		}
		seen[ix] = true
	}
}

func TestDiagnose(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{UsesAtSync: true, ResumeEP: epResume})
	for i := 0; i < 4; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	// Idle system.
	if s := rt.Diagnose(); !strings.Contains(s, "0 msgs in flight") {
		t.Fatalf("idle diagnose: %s", s)
	}
	// The AtSync barrier total is visible.
	if s := rt.Diagnose(); !strings.Contains(s, "AtSync barrier 0/4") {
		t.Fatalf("diagnose misses barrier state: %s", s)
	}
	// A message to a never-created element parks in the home buffer.
	rt.Boot(func(ctx *Ctx) {
		ctx.Send(arr, Idx1(99), epBump, int64(1))
	})
	rt.Run()
	s := rt.Diagnose()
	if !strings.Contains(s, "buffered for uncreated elements") {
		t.Fatalf("diagnose misses pending buffer: %s", s)
	}
	if !strings.Contains(s, "1 msgs in flight") {
		t.Fatalf("diagnose misses in-flight count: %s", s)
	}
}

func TestTopoMap3DLocality(t *testing.T) {
	m := machine.New(machine.Vesta(128)) // 8 nodes
	f := TopoMap3D(m, 8, 8, 8)
	// Neighbouring chares map to the same or adjacent nodes.
	per := m.Config().PEsPerNode
	far := 0
	total := 0
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			for k := 0; k < 7; k++ {
				a := f(Idx3(i, j, k), 128) / per
				b := f(Idx3(i, j, k+1), 128) / per
				pa := a * per
				pb := b * per
				if m.Hops(pa, pb) > 1 {
					far++
				}
				total++
			}
		}
	}
	if far > total/10 {
		t.Fatalf("%d of %d neighbour pairs are >1 hop apart", far, total)
	}
	// Every PE index is in range.
	for i := 0; i < 8; i++ {
		pe := f(Idx3(i, i%8, (i*3)%8), 128)
		if pe < 0 || pe >= 128 {
			t.Fatalf("mapped PE %d out of range", pe)
		}
	}
}

func TestEntryMethodPanicCarriesContext(t *testing.T) {
	rt := testRT(2)
	handlers := []Handler{func(obj Chare, ctx *Ctx, msg any) {
		panic("application bug")
	}}
	arr := rt.DeclareArray("explosive", func() Chare { return &counter{} }, handlers, ArrayOpts{})
	arr.Insert(Idx1(7), &counter{})
	arr.Send(Idx1(7), 0, nil)
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("handler panic swallowed")
		}
		msg := fmt.Sprint(r)
		for _, want := range []string{"explosive", "[7]", "application bug", "PE"} {
			if !strings.Contains(msg, want) {
				t.Fatalf("panic context missing %q: %s", want, msg)
			}
		}
	}()
	rt.Run()
}

func TestPauseLBDefersBarrier(t *testing.T) {
	rt := testRT(2)
	strat := &moveStrategy{}
	rt.SetBalancer(strat)
	resumed := 0
	handlers := []Handler{
		epBump:   func(obj Chare, ctx *Ctx, msg any) { ctx.AtSync() },
		epRecord: nil,
		epResume: func(obj Chare, ctx *Ctx, msg any) { resumed++ },
	}
	arr := rt.DeclareArray("paused", func() Chare { return &counter{} }, handlers,
		ArrayOpts{UsesAtSync: true, ResumeEP: epResume})
	for i := 0; i < 4; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	rt.PauseLB(true)
	arr.Broadcast(epBump, nil)
	rt.Run()
	if strat.calls != 0 || resumed != 0 {
		t.Fatalf("LB ran while paused: calls=%d resumed=%d", strat.calls, resumed)
	}
	rt.PauseLB(false) // releases the already-complete barrier
	rt.Run()
	if strat.calls != 1 || resumed != 4 {
		t.Fatalf("unpause did not release the barrier: calls=%d resumed=%d", strat.calls, resumed)
	}
}
