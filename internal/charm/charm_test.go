package charm

import (
	"testing"

	"charmgo/internal/des"
	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

// counter is a minimal chare used across the runtime tests.
type counter struct {
	N     int64
	Trace []int
}

func (c *counter) Pup(p *pup.Pup) {
	p.Int64(&c.N)
	pup.Slice(p, &c.Trace, (*pup.Pup).Int)
}

func testRT(numPEs int) *Runtime {
	return New(machine.New(machine.Testbed(numPEs)))
}

const (
	epBump EP = iota
	epRecord
	epResume
)

func declCounters(rt *Runtime, opts ArrayOpts) *Array {
	handlers := []Handler{
		epBump: func(obj Chare, ctx *Ctx, msg any) {
			c := obj.(*counter)
			c.N += msg.(int64)
			ctx.Charge(1e-6)
		},
		epRecord: func(obj Chare, ctx *Ctx, msg any) {
			c := obj.(*counter)
			c.Trace = append(c.Trace, msg.(int))
			ctx.Charge(1e-3) // keep the PE busy so later sends queue up
		},
		epResume: func(obj Chare, ctx *Ctx, msg any) {
			obj.(*counter).Trace = append(obj.(*counter).Trace, -1)
		},
	}
	return rt.DeclareArray("counters", func() Chare { return &counter{} }, handlers, opts)
}

func TestSendAndExecute(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{})
	for i := 0; i < 8; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	rt.Boot(func(ctx *Ctx) {
		for i := 0; i < 8; i++ {
			ctx.Send(arr, Idx1(i), epBump, int64(i))
		}
	})
	rt.Run()
	for i := 0; i < 8; i++ {
		c := arr.Get(Idx1(i)).(*counter)
		if c.N != int64(i) {
			t.Fatalf("element %d has N=%d, want %d", i, c.N, i)
		}
	}
	if rt.Now() <= 0 {
		t.Fatal("virtual time did not advance")
	}
	if rt.Stats.MsgsDelivered != 8 {
		t.Fatalf("delivered %d, want 8", rt.Stats.MsgsDelivered)
	}
}

func TestElementsSpreadAcrossPEs(t *testing.T) {
	rt := testRT(8)
	arr := declCounters(rt, ArrayOpts{})
	for i := 0; i < 64; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	used := map[int]bool{}
	for i := 0; i < 64; i++ {
		used[arr.PEOf(Idx1(i))] = true
	}
	if len(used) < 6 {
		t.Fatalf("hash home map used only %d of 8 PEs", len(used))
	}
}

func TestCustomHomeMap(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{
		HomeMap: func(idx Index, n int) int { return idx.I() % n },
	})
	for i := 0; i < 8; i++ {
		arr.Insert(Idx1(i), &counter{})
		if got := arr.PEOf(Idx1(i)); got != i%4 {
			t.Fatalf("element %d on PE %d, want %d", i, got, i%4)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	// Stack several messages on a busy element; the high-priority (lower
	// value) one must execute before earlier-sent default ones.
	rt := testRT(1)
	arr := declCounters(rt, ArrayOpts{})
	arr.Insert(Idx1(0), &counter{})
	rt.Boot(func(ctx *Ctx) {
		ctx.SendOpt(arr, Idx1(0), epRecord, 1, &SendOpts{Prio: 10})
		ctx.SendOpt(arr, Idx1(0), epRecord, 2, &SendOpts{Prio: 10})
		ctx.SendOpt(arr, Idx1(0), epRecord, 3, &SendOpts{Prio: -5})
	})
	rt.Run()
	c := arr.Get(Idx1(0)).(*counter)
	// All three arrive at the same instant (same wire path), so only one
	// is popped after the other two are queued... ordering within the
	// queue is by priority.
	if len(c.Trace) != 3 {
		t.Fatalf("trace %v, want 3 entries", c.Trace)
	}
	pos := map[int]int{}
	for i, v := range c.Trace {
		pos[v] = i
	}
	if pos[3] > pos[2] {
		t.Fatalf("priority -5 message ran after priority 10: %v", c.Trace)
	}
	if pos[1] > pos[2] {
		t.Fatalf("FIFO violated among equal priorities: %v", c.Trace)
	}
}

func TestChargeAdvancesClock(t *testing.T) {
	rt := testRT(1)
	handlers := []Handler{func(obj Chare, ctx *Ctx, msg any) { ctx.Charge(0.5) }}
	arr := rt.DeclareArray("work", func() Chare { return &counter{} }, handlers, ArrayOpts{})
	arr.Insert(Idx1(0), &counter{})
	arr.Send(Idx1(0), 0, nil)
	end := rt.Run()
	if end < 0.5 {
		t.Fatalf("clock %v, want >= 0.5", end)
	}
	if rt.Machine().PE(0).BusyTime < 0.5 {
		t.Fatalf("PE busy time %v, want >= 0.5", rt.Machine().PE(0).BusyTime)
	}
}

func TestMessageDrivenOverlap(t *testing.T) {
	// Two elements on the same PE: while one's message is "in the
	// network", the PE should execute the other's — the total time must
	// be less than strictly serialized compute + 2 network latencies.
	rt := testRT(1)
	handlers := []Handler{func(obj Chare, ctx *Ctx, msg any) { ctx.Charge(0.1) }}
	arr := rt.DeclareArray("w", func() Chare { return &counter{} }, handlers, ArrayOpts{})
	arr.Insert(Idx1(0), &counter{})
	arr.Insert(Idx1(1), &counter{})
	rt.Boot(func(ctx *Ctx) {
		ctx.Send(arr, Idx1(0), 0, nil)
		ctx.Send(arr, Idx1(1), 0, nil)
	})
	end := rt.Run()
	if end > 0.21 {
		t.Fatalf("two independent 0.1s tasks took %v on one PE", end)
	}
}

func TestBroadcast(t *testing.T) {
	rt := testRT(8)
	arr := declCounters(rt, ArrayOpts{})
	for i := 0; i < 40; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	rt.Boot(func(ctx *Ctx) {
		ctx.Broadcast(arr, epBump, int64(7), nil)
	})
	rt.Run()
	for i := 0; i < 40; i++ {
		if c := arr.Get(Idx1(i)).(*counter); c.N != 7 {
			t.Fatalf("element %d missed broadcast: N=%d", i, c.N)
		}
	}
}

func TestReductionSum(t *testing.T) {
	rt := testRT(8)
	var result float64
	var resultAt des.Time
	handlers := []Handler{
		func(obj Chare, ctx *Ctx, msg any) {
			ctx.Contribute(float64(ctx.Index().I()), SumF64,
				CallbackFunc(0, func(ctx *Ctx, r any) {
					result = r.(float64)
					resultAt = ctx.Now()
				}))
		},
	}
	arr := rt.DeclareArray("red", func() Chare { return &counter{} }, handlers, ArrayOpts{})
	n := 50
	for i := 0; i < n; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	arr.Broadcast(0, nil)
	rt.Run()
	want := float64(n*(n-1)) / 2
	if result != want {
		t.Fatalf("reduction sum = %v, want %v", result, want)
	}
	if resultAt <= 0 {
		t.Fatal("reduction completed at time zero — collective cost unmodeled")
	}
}

func TestReductionMinMaxOverGenerations(t *testing.T) {
	rt := testRT(4)
	var mins, maxs []float64
	handlers := []Handler{
		func(obj Chare, ctx *Ctx, msg any) {
			v := float64(ctx.Index().I())
			ctx.Contribute(v, MinF64, CallbackFunc(0, func(ctx *Ctx, r any) {
				mins = append(mins, r.(float64))
			}))
			ctx.Contribute(-v, MinF64, CallbackFunc(0, func(ctx *Ctx, r any) {
				maxs = append(maxs, r.(float64))
			}))
		},
	}
	arr := rt.DeclareArray("red", func() Chare { return &counter{} }, handlers, ArrayOpts{})
	for i := 1; i <= 16; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	arr.Broadcast(0, nil)
	rt.Run()
	if len(mins) != 1 || mins[0] != 1 {
		t.Fatalf("min reduction got %v, want [1]", mins)
	}
	if len(maxs) != 1 || maxs[0] != -16 {
		t.Fatalf("second-generation reduction got %v, want [-16]", maxs)
	}
}

func TestReductionToElementCallback(t *testing.T) {
	rt := testRT(4)
	const (
		epGo EP = iota
		epResult
	)
	var got int64
	handlers := []Handler{
		epGo: func(obj Chare, ctx *Ctx, msg any) {
			ctx.Contribute(int64(1), SumI64, CallbackSend(ctx.rt.arrays[0], Idx1(0), epResult))
		},
		epResult: func(obj Chare, ctx *Ctx, msg any) {
			got = msg.(int64)
			ctx.Exit()
		},
	}
	arr := rt.DeclareArray("red", func() Chare { return &counter{} }, handlers, ArrayOpts{})
	for i := 0; i < 23; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	arr.Broadcast(epGo, nil)
	rt.Run()
	if got != 23 {
		t.Fatalf("element callback got %d, want 23", got)
	}
	if !rt.Exited() {
		t.Fatal("Exit did not stop the runtime")
	}
}

func TestQuiescenceDetection(t *testing.T) {
	rt := testRT(4)
	fired := des.Time(-1)
	hops := 0
	var arr *Array
	handlers := []Handler{
		func(obj Chare, ctx *Ctx, msg any) {
			n := msg.(int)
			ctx.Charge(1e-4)
			if n > 0 {
				ctx.Send(arr, Idx1((ctx.Index().I()+1)%8), 0, n-1)
			}
			hops++
		},
	}
	arr = rt.DeclareArray("chain", func() Chare { return &counter{} }, handlers, ArrayOpts{})
	for i := 0; i < 8; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	rt.StartQD(CallbackFunc(0, func(ctx *Ctx, _ any) { fired = ctx.Now() }))
	arr.Send(Idx1(0), 0, 20)
	rt.Run()
	if hops != 21 {
		t.Fatalf("chain ran %d hops, want 21", hops)
	}
	if fired < 0 {
		t.Fatal("QD never fired")
	}
	if fired < 21*1e-4 {
		t.Fatalf("QD fired at %v, before the chain could have finished", fired)
	}
}

func TestQDWaitsForPendingWork(t *testing.T) {
	// QD armed while messages are in flight must not fire early.
	rt := testRT(2)
	order := []string{}
	handlers := []Handler{
		func(obj Chare, ctx *Ctx, msg any) {
			ctx.Charge(0.01)
			order = append(order, "work")
		},
	}
	arr := rt.DeclareArray("w", func() Chare { return &counter{} }, handlers, ArrayOpts{})
	arr.Insert(Idx1(0), &counter{})
	rt.Boot(func(ctx *Ctx) {
		ctx.Send(arr, Idx1(0), 0, nil)
	})
	rt.StartQD(CallbackFunc(0, func(ctx *Ctx, _ any) { order = append(order, "qd") }))
	rt.Run()
	if len(order) != 2 || order[0] != "work" || order[1] != "qd" {
		t.Fatalf("order %v, want [work qd]", order)
	}
}

// moveStrategy migrates every object to PE 0 — a worst-case but easily
// verified strategy.
type moveStrategy struct{ calls int }

func (s *moveStrategy) Name() string { return "all-to-zero" }
func (s *moveStrategy) Balance(objs []LBObject, pes []LBPE) []Migration {
	s.calls++
	migs := make([]Migration, 0, len(objs))
	for _, o := range objs {
		migs = append(migs, Migration{Array: o.Array, Idx: o.Idx, ToPE: 0})
	}
	return migs
}

func TestAtSyncLoadBalance(t *testing.T) {
	rt := testRT(4)
	strat := &moveStrategy{}
	rt.SetBalancer(strat)
	resumed := 0
	handlers := []Handler{
		epBump: func(obj Chare, ctx *Ctx, msg any) {
			ctx.Charge(1e-3)
			ctx.AtSync()
		},
		epRecord: nil,
		epResume: func(obj Chare, ctx *Ctx, msg any) {
			resumed++
			if resumed == 12 {
				ctx.Exit()
			}
		},
	}
	arr := rt.DeclareArray("lb", func() Chare { return &counter{} }, handlers,
		ArrayOpts{UsesAtSync: true, ResumeEP: epResume})
	for i := 0; i < 12; i++ {
		arr.Insert(Idx1(i), &counter{N: int64(i)})
	}
	arr.Broadcast(epBump, nil)
	var report LBReport
	rt.OnLB(func(r LBReport) { report = r })
	rt.Run()
	if strat.calls != 1 {
		t.Fatalf("strategy invoked %d times, want 1", strat.calls)
	}
	if resumed != 12 {
		t.Fatalf("resumed %d elements, want 12", resumed)
	}
	for i := 0; i < 12; i++ {
		if pe := arr.PEOf(Idx1(i)); pe != 0 {
			t.Fatalf("element %d on PE %d after LB, want 0", i, pe)
		}
		// State must survive the migration PUP round trip.
		if c := arr.Get(Idx1(i)).(*counter); c.N != int64(i) {
			t.Fatalf("element %d lost state across migration: N=%d", i, c.N)
		}
	}
	if report.NumObjs != 12 || report.NumMoved == 0 {
		t.Fatalf("bad LB report: %+v", report)
	}
	if rt.LBRounds() != 1 {
		t.Fatalf("LBRounds=%d, want 1", rt.LBRounds())
	}
}

func TestMessagesFollowMigratedElement(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{})
	arr.Insert(Idx1(5), &counter{})
	src := arr.PEOf(Idx1(5))
	// Pick a destination that is neither the home/source nor the sending
	// PE 0, so the second send must miss and be forwarded via the home.
	dst := 0
	for _, cand := range []int{1, 2, 3} {
		if cand != src {
			dst = cand
			break
		}
	}
	rt.Boot(func(ctx *Ctx) {
		ctx.Send(arr, Idx1(5), epBump, int64(1))
	})
	rt.Run()
	// Migrate behind the location caches' back, then send again from a
	// third PE that has a stale/absent cache entry.
	el := arr.elems[Idx1(5)]
	rt.moveElement(el, dst, false)
	rt.Boot(func(ctx *Ctx) {
		ctx.Send(arr, Idx1(5), epBump, int64(10))
	})
	rt.Run()
	c := arr.Get(Idx1(5)).(*counter)
	if c.N != 11 {
		t.Fatalf("N=%d, want 11 — message lost after migration", c.N)
	}
	if rt.Stats.MsgsForwarded == 0 {
		t.Fatal("expected location-manager forwarding for stale route")
	}
}

func TestDynamicInsertBuffersEarlyMessages(t *testing.T) {
	rt := testRT(4)
	arr := declCounters(rt, ArrayOpts{})
	arr.Insert(Idx1(0), &counter{})
	rt.Boot(func(ctx *Ctx) {
		// Send to an element that does not exist yet.
		ctx.Send(arr, Idx1(99), epBump, int64(42))
	})
	rt.Engine().After(0.001, func() {
		arr.Insert(Idx1(99), &counter{})
	})
	rt.Run()
	c := arr.Get(Idx1(99)).(*counter)
	if c == nil || c.N != 42 {
		t.Fatalf("buffered message not delivered after insertion: %+v", c)
	}
}

func TestDestroyElement(t *testing.T) {
	rt := testRT(2)
	var arr *Array
	handlers := []Handler{
		func(obj Chare, ctx *Ctx, msg any) {
			ctx.Destroy(arr, ctx.Index())
		},
	}
	arr = rt.DeclareArray("d", func() Chare { return &counter{} }, handlers, ArrayOpts{})
	for i := 0; i < 4; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	arr.Send(Idx1(2), 0, nil)
	rt.Run()
	if arr.Len() != 3 {
		t.Fatalf("array has %d elements after destroy, want 3", arr.Len())
	}
	if arr.Get(Idx1(2)) != nil {
		t.Fatal("destroyed element still present")
	}
}

func TestLocalInvoke(t *testing.T) {
	rt := testRT(1)
	arr := declCounters(rt, ArrayOpts{})
	arr.Insert(Idx1(0), &counter{})
	rt.Boot(func(ctx *Ctx) {
		ctx.LocalInvoke(arr, Idx1(0), epBump, int64(3))
	})
	rt.Run()
	if c := arr.Get(Idx1(0)).(*counter); c.N != 3 {
		t.Fatalf("LocalInvoke missed: N=%d", c.N)
	}
}

func TestDeterminism(t *testing.T) {
	run := func() (des.Time, uint64, int64) {
		rt := testRT(8)
		var arr *Array
		handlers := []Handler{
			func(obj Chare, ctx *Ctx, msg any) {
				c := obj.(*counter)
				n := msg.(int)
				c.N++
				ctx.Charge(float64(ctx.Index().I()%5) * 1e-5)
				if n > 0 {
					ctx.Send(arr, Idx1((ctx.Index().I()*7+n)%32), 0, n-1)
				}
			},
		}
		arr = rt.DeclareArray("det", func() Chare { return &counter{} }, handlers, ArrayOpts{})
		for i := 0; i < 32; i++ {
			arr.Insert(Idx1(i), &counter{})
		}
		for i := 0; i < 32; i++ {
			arr.Send(Idx1(i), 0, 50)
		}
		end := rt.Run()
		var sum int64
		for i := 0; i < 32; i++ {
			sum += arr.Get(Idx1(i)).(*counter).N * int64(i+1)
		}
		return end, rt.Stats.MsgsDelivered, sum
	}
	t1, d1, s1 := run()
	t2, d2, s2 := run()
	if t1 != t2 || d1 != d2 || s1 != s2 {
		t.Fatalf("nondeterministic run: (%v,%d,%d) vs (%v,%d,%d)", t1, d1, s1, t2, d2, s2)
	}
}

func TestIndexPacking(t *testing.T) {
	ix := Idx6(1, 2, 3, 1000, 0, 7)
	d := ix.Dims6()
	want := [6]int{1, 2, 3, 1000, 0, 7}
	if d != want {
		t.Fatalf("Idx6 round trip %v, want %v", d, want)
	}
	if Idx3(4, 5, 6).I() != 4 || Idx3(4, 5, 6).J() != 5 || Idx3(4, 5, 6).K() != 6 {
		t.Fatal("Idx3 accessors wrong")
	}
	if Idx1(-3).I() != -3 {
		t.Fatal("negative 1D index mangled")
	}
}

func TestBitVecIndex(t *testing.T) {
	root := BitVec(0, 0)
	c5 := root.Child(5)
	if c5.Depth() != 1 || c5.Octant() != 5 {
		t.Fatalf("child: depth=%d octant=%d", c5.Depth(), c5.Octant())
	}
	gc := c5.Child(3)
	if gc.Parent() != c5 || c5.Parent() != root {
		t.Fatal("parent chain broken")
	}
	x, y, z, d := gc.Coords()
	if d != 2 {
		t.Fatalf("depth %d, want 2", d)
	}
	if BitVecFromCoords(x, y, z, d) != gc {
		t.Fatalf("coords round trip failed: (%d,%d,%d,%d)", x, y, z, d)
	}
	// All 64 depth-2 blocks round trip.
	for o1 := 0; o1 < 8; o1++ {
		for o2 := 0; o2 < 8; o2++ {
			ix := root.Child(o1).Child(o2)
			x, y, z, d := ix.Coords()
			if BitVecFromCoords(x, y, z, d) != ix {
				t.Fatalf("round trip failed for octants %d,%d", o1, o2)
			}
		}
	}
}

func TestIndexHashSpreads(t *testing.T) {
	seen := map[uint64]bool{}
	for i := 0; i < 1000; i++ {
		h := Idx1(i).Hash()
		if seen[h] {
			t.Fatalf("hash collision at %d", i)
		}
		seen[h] = true
	}
}

func TestShrinkActivePEs(t *testing.T) {
	rt := testRT(8)
	arr := declCounters(rt, ArrayOpts{})
	for i := 0; i < 16; i++ {
		arr.Insert(Idx1(i), &counter{})
	}
	rt.SetActivePEs(4)
	if rt.NumPEs() != 4 {
		t.Fatalf("NumPEs=%d, want 4", rt.NumPEs())
	}
	for i := 0; i < 16; i++ {
		if pe := arr.PEOf(Idx1(i)); pe >= 4 {
			t.Fatalf("element %d left on evacuated PE %d", i, pe)
		}
	}
	// Sends still work after the shrink.
	rt.Boot(func(ctx *Ctx) {
		for i := 0; i < 16; i++ {
			ctx.Send(arr, Idx1(i), epBump, int64(1))
		}
	})
	rt.Run()
	for i := 0; i < 16; i++ {
		if arr.Get(Idx1(i)).(*counter).N != 1 {
			t.Fatalf("element %d missed post-shrink message", i)
		}
	}
}
