package charm

import (
	"fmt"
	"sort"

	"charmgo/internal/des"
	"charmgo/internal/machine"
	"charmgo/internal/optsim"
	"charmgo/internal/parsim"
	"charmgo/internal/projections/metrics"
	"charmgo/internal/pup"
)

// EP identifies an entry method of a chare array (an index into the handler
// table passed to DeclareArray).
type EP int

// PEH identifies a PE-level handler registered with DeclarePEHandler.
type PEH int

// Chare is the interface chare state implements: serializable so the RTS
// can migrate and checkpoint it.
type Chare interface {
	pup.Pupable
}

// Handler is the body of an entry method: it receives the chare, an
// execution context, and the message payload.
type Handler func(obj Chare, ctx *Ctx, msg any)

// PEHandler is a PE-level handler (no chare target); TRAM and the
// collective trees use these.
type PEHandler func(ctx *Ctx, msg any)

type elemKey struct {
	array int
	idx   Index
}

func (k elemKey) String() string { return fmt.Sprintf("arr%d%v", k.array, k.idx) }

// element is the runtime-side record of one chare-array element.
type element struct {
	key elemKey
	obj Chare
	pe  int
	// eid is the element's dense id in the runtime's location tables,
	// stable for the key's whole lifetime (reinsertions of the same key
	// reuse it, so stale location hints keep routing exactly as the
	// map-based tables did). dead marks a destroyed element: messages
	// stamped with a pointer to it re-route through the location manager.
	eid  int32
	dead bool
	// redRank is the element's rank in the array's canonical index order,
	// used to place reduction contributions without sorting; -1 until the
	// array's rank table has been built (see Array.rebuildRanks).
	redRank int32

	// Instrumentation (the automatic load database of §III-A). Load is
	// kept in integer femtoseconds (see Ctx.chargeLoad) so the measured
	// value is exactly independent of message arrival order; the balancer
	// view converts back to seconds.
	load      int64 // measured compute since last LB, speed-normalized, fs
	totalLoad int64
	msgsSent  uint64
	bytesSent uint64
	comm      map[elemKey]uint64 // bytes per destination (TrackComm arrays)
	pos       [3]float64
	hasPos    bool

	atSync bool   // element has called AtSync and awaits ResumeFromSync
	redGen uint64 // reduction generation counter

	// save is the element's retained PUP image plus the replay log of
	// committed deliveries since it was packed (infrequent state saving,
	// see speculation.go). Owned by the element's own shard: only the
	// shard's phases (touchElem) and commits (onCommitted, RollbackSpec,
	// dropSave) ever touch it, and the engine orders those.
	save *elemSave
}

type peState struct {
	id   int
	q    msgQueue
	seq  uint64 // enqueue sequence for FIFO tie-breaks
	busy des.Time
	// ctxSpare recycles the PE's delivery context between executions:
	// runOne takes it, the delivery commit releases it. Shard-local like
	// p.q, so the parallel backend needs no synchronization.
	ctxSpare *Ctx

	// Pending delivery, valid between runOne's phase and its commit. The
	// engine runs commit(i) before phase(i+1) on the same shard, so at
	// most one delivery per PE is ever in flight — runOne stashes it here
	// and returns the preallocated commitDeliver/commitPE closure instead
	// of allocating a fresh one per event.
	pendM         *message
	pendEl        *element
	pendCtx       *Ctx
	pendAt        des.Time
	commitDeliver func()
	commitPE      func()
	// pumpAt is the time of the scheduled dequeue event, or -1 when none.
	pumpAt des.Time

	// elems is the PE's shard-local element directory. Phase-context code
	// (resolve, LocalInvoke, runOne's staleness fallback) may read only
	// this map, never the runtime's global tables: on the parallel backend
	// a phase runs concurrently with other shards' commits, and only
	// same-shard commits and global events ever mutate a PE's state.
	// Allocated lazily — an idle PE costs a nil map.
	elems  map[elemKey]*element
	sorted []*element // deterministic iteration order
	byArr  []int      // live element count per array id

	// locCache holds remote-location hints keyed by element key; the value
	// carries both the guessed PE and the element's dense id so a cache
	// hit stamps the message for map-free routing at every later hop.
	// Allocated lazily on the first hint.
	locCache map[elemKey]locEnt
	// locDense is the flat-table form of locCache, one table per array id
	// for arrays with declared Bounds small enough to store flat (entries
	// with pe < 0 are empty). Allocated lazily per (PE, array) on the
	// first hint; shard-local exactly like locCache.
	locDense [][]locEnt

	// resLog collects the location-resolution answer of every array send
	// made by the in-flight phase (see Ctx.resolveFor). A logged delivery
	// copies it into the element's save so coast-forward replay re-routes
	// each send exactly as the original did, even after the live location
	// caches have drifted. Reused between deliveries; shard-local.
	resLog []int32

	// dead marks a crashed PE (internal/chaos): it executes nothing and
	// every message addressed to it is discarded until RecoverReset.
	dead bool
	// evac marks a PE predicted to fail (internal/chaos warn faults):
	// load balancing stops placing objects on it until the prediction
	// resolves. Unlike dead, an evacuating PE keeps executing.
	evac bool
}

// locEnt is one location-cache entry: the last known PE of an element and
// its dense element id.
type locEnt struct {
	pe  int32
	eid int32
}

func (p *peState) insertSorted(el *element) {
	i := sort.Search(len(p.sorted), func(i int) bool {
		e := p.sorted[i]
		if e.key.array != el.key.array {
			return e.key.array > el.key.array
		}
		return !e.key.idx.Less(el.key.idx)
	})
	p.sorted = append(p.sorted, nil)
	copy(p.sorted[i+1:], p.sorted[i:])
	p.sorted[i] = el
}

func (p *peState) removeSorted(el *element) {
	for i, e := range p.sorted {
		if e == el {
			p.sorted = append(p.sorted[:i], p.sorted[i+1:]...)
			return
		}
	}
}

// Runtime is the adaptive RTS: it owns the machine, the event engine, the
// chare arrays, and the location manager.
type Runtime struct {
	eng  des.Engine
	mach *machine.Machine

	// parallel marks the parsim and optsim backends: element-handler
	// contexts buffer their global effects (see Ctx.fx) so handler bodies
	// can run concurrently, and PE→shard mapping follows the node layout.
	parallel bool
	peShard  []int // PE id -> shard (node) id
	// spec is the optimistic backend's speculation controller (nil
	// elsewhere): per-shard undo logs that phases record into so a
	// straggler can roll their shard-local mutations back.
	spec *specController

	pes            []*peState
	arrays         []*Array
	arrayNames     map[string]*Array
	peHandlers     []PEHandler
	peHandlerNames []string

	// Location authority (§II-D), slab-indexed: every element key ever
	// inserted gets a dense, stable element id (eid) minting an entry in
	// the flat tables. elemTab[eid] is the live element (nil after
	// destruction); owner[eid] is the home PE's location truth (-1 when no
	// live element); pending buffers messages for not-yet-created elements
	// at their home, keyed by eid. keyEID is consulted once per message
	// lifetime at most — senders stamp eids from their caches, and every
	// later hop indexes the flat tables. All four structures are commit/
	// global state: phases must not read them (see peState.elems).
	keyEID  map[elemKey]int32
	elemTab []*element
	owner   []int32
	pending map[int32][]*message
	// tableEpoch counts CompactElementTable calls; location-cache
	// snapshots record it so a snapshot can never resurrect eids from a
	// pre-compaction numbering.
	tableEpoch uint64

	// Preallocated event bodies for the two hot scheduling paths (message
	// arrival, PE pump): method values created once so the steady-state
	// send path schedules without allocating a closure per event.
	arriveFn des.CommitFn
	pumpFn   des.PhaseFn

	// In-flight application messages, for quiescence detection.
	inflight int
	qdWatch  []*qdState

	// Collective state (open reductions live per array — see Array.redOpen).
	bcastPEH PEH
	funcPEH  PEH
	mcastPEH PEH

	// Load balancing (AtSync protocol).
	balancer     Strategy
	lbTotal      int // elements in AtSync arrays
	lbArrived    int
	lbInProgress bool
	lbCount      int // completed LB rounds
	lbListener   func(LBReport)
	lbPaused     bool

	// Malleability: PEs >= activePEs are evacuated and receive no work.
	activePEs int

	exited bool
	booted bool
	Stats  RuntimeStats

	// Observability (internal/projections): nil hooks is the untraced
	// fast path; metrics is always present.
	hooks   TraceHooks
	metrics *metrics.Registry

	// Fault injection and rollback recovery (internal/chaos). epoch counts
	// rollbacks: messages are stamped at send and discarded on arrival when
	// stale. filter intercepts every transmit (drops, delay spikes).
	// lbResumeHook fires at each LB resume point — the quiescent cut where
	// in-memory checkpoints are taken.
	epoch        uint64
	filter       FaultFilter
	lbResumeHook func(round int) des.Time
}

// RuntimeStats aggregates counters for introspection, tests, and the
// control system.
type RuntimeStats struct {
	MsgsSent      uint64
	BytesSent     uint64
	MsgsForwarded uint64 // location-manager forwards (cache misses)
	MsgsDelivered uint64
	Migrations    uint64
	LBInvocations uint64
	QDRounds      uint64   // quiescence detections completed
	EntryTime     des.Time // total virtual compute across PEs
	MsgsDropped   uint64   // lost to injected network faults
	MsgsDiscarded uint64   // dead-PE or stale-epoch discards
}

// New creates a runtime over a machine. The machine config's Backend field
// selects the event engine: sequential (the default calendar-queue engine),
// heap (the reference binary-heap engine, for differential tests and
// benchmarks), or the conservative parallel engine of internal/parsim; all
// produce bit-identical runs.
func New(m *machine.Machine) *Runtime {
	cfg := m.Config()
	var eng des.Engine
	parallel := false
	switch cfg.Backend {
	case "", "sequential":
		eng = des.NewEngine()
	case "heap":
		eng = des.NewHeapEngine()
	case "parallel", "parsim":
		eng = parsim.New(parsim.Options{
			Lookahead: des.Time(cfg.Alpha),
			Shards:    m.NumNodes(),
			Workers:   cfg.ParallelWorkers,
		})
		parallel = true
	case "optimistic", "optsim":
		eng = optsim.New(optsim.Options{
			Shards:  m.NumNodes(),
			Workers: cfg.ParallelWorkers,
			Window:  des.Time(cfg.OptimisticWindow),
		})
		parallel = true
	default:
		panic(fmt.Sprintf("charm: unknown backend %q (want \"sequential\", \"heap\", \"parallel\", or \"optimistic\")", cfg.Backend))
	}
	rt := &Runtime{
		eng:        eng,
		parallel:   parallel,
		mach:       m,
		arrayNames: map[string]*Array{},
		keyEID:     map[elemKey]int32{},
		pending:    map[int32][]*message{},
		activePEs:  m.NumPEs(),
		metrics:    metrics.NewRegistry(),
	}
	rt.arriveFn = rt.arriveCommit
	rt.pumpFn = rt.pumpPhase
	rt.bcastPEH = rt.DeclareNamedPEHandler("rts:bcast", rt.bcastHandler)
	rt.funcPEH = rt.DeclareNamedPEHandler("rts:func", rt.funcHandler)
	rt.mcastPEH = rt.DeclareNamedPEHandler("rts:mcast", rt.mcastHandler)
	rt.registerRuntimeMetrics()
	if pe, ok := eng.(*parsim.Engine); ok {
		pe.RegisterMetrics(rt.metrics)
	}
	if oe, ok := eng.(*optsim.Engine); ok {
		// Time Warp needs an undo controller: the engine rolls back a
		// shard by asking it to restore the phase's shard-local mutations
		// (the withheld commit closure already holds every global effect).
		rt.spec = newSpecController(rt, m.NumNodes(), cfg.SnapInterval, des.Time(cfg.OptimisticWindow))
		rt.spec.eng = oe
		oe.SetController(rt.spec)
		oe.RegisterMetrics(rt.metrics)
		rt.spec.registerMetrics(rt.metrics)
	}
	// One backing slab for every peState: at paper-scale PE counts (8k–64k
	// virtual PEs) per-PE allocations and map headers dominate the boot
	// heap, so the states live in a single array and the per-PE maps stay
	// nil until first use.
	back := make([]peState, m.NumPEs())
	rt.pes = make([]*peState, m.NumPEs())
	rt.peShard = make([]int, m.NumPEs())
	for i := range rt.pes {
		back[i].id = i
		back[i].pumpAt = -1
		rt.pes[i] = &back[i]
		rt.peShard[i] = i / cfg.PEsPerNode
	}
	return rt
}

// eidOf returns the dense element id for key k, minting a table entry on
// first sight. Commit/global context only. Arrays with declared Bounds
// answer from a flat table; the key map stays authoritative (compaction
// rebuilds it), with the table as a cache over it.
func (rt *Runtime) eidOf(k elemKey) int32 {
	a := rt.arrays[k.array]
	off := a.lin(k.idx)
	if off >= 0 {
		if id := a.eidTab[off]; id >= 0 {
			return id
		}
	}
	id, ok := rt.keyEID[k]
	if !ok {
		id = int32(len(rt.elemTab))
		rt.keyEID[k] = id
		rt.elemTab = append(rt.elemTab, nil)
		rt.owner = append(rt.owner, -1)
	}
	if off >= 0 {
		a.eidTab[off] = id
	}
	return id
}

// Engine exposes the event engine (for timers, the power controller, and
// tests).
func (rt *Runtime) Engine() des.Engine { return rt.eng }

// shardOf maps a PE to its engine shard (its node): intra-node interactions
// may be instantaneous, so a node is the smallest unit the parallel backend
// can execute independently.
func (rt *Runtime) shardOf(pe int) int { return rt.peShard[pe] }

// ShardOf maps a PE to its engine shard (its node). The chaos failure
// detector uses it to schedule zero-cost control events on a PE's shard.
func (rt *Runtime) ShardOf(pe int) int { return rt.peShard[pe] }

// Machine returns the machine the runtime executes on.
func (rt *Runtime) Machine() *machine.Machine { return rt.mach }

// NumPEs returns the number of currently active PEs (§III-D malleability:
// shrink reduces this without restarting the job).
func (rt *Runtime) NumPEs() int { return rt.activePEs }

// MaxPEs returns the machine's physical PE count.
func (rt *Runtime) MaxPEs() int { return len(rt.pes) }

// Now returns the current virtual time.
func (rt *Runtime) Now() des.Time { return rt.eng.Now() }

// homePE maps an element to its home PE: the PE responsible for knowing its
// current location (§II-D Scalable Location Management).
func (rt *Runtime) homePE(k elemKey) int {
	arr := rt.arrays[k.array]
	if arr.opts.HomeMap != nil {
		return arr.opts.HomeMap(k.idx, rt.activePEs)
	}
	return int(k.idx.Hash() % uint64(rt.activePEs))
}

// DeclarePEHandler registers a PE-level handler and returns its id. The
// handler traces under a generated "peh<N>" name; libraries that want
// readable traces use DeclareNamedPEHandler.
func (rt *Runtime) DeclarePEHandler(h PEHandler) PEH {
	return rt.DeclareNamedPEHandler(fmt.Sprintf("peh%d", len(rt.peHandlers)), h)
}

// DeclareNamedPEHandler registers a PE-level handler under a trace name.
func (rt *Runtime) DeclareNamedPEHandler(name string, h PEHandler) PEH {
	rt.peHandlers = append(rt.peHandlers, h)
	rt.peHandlerNames = append(rt.peHandlerNames, name)
	return PEH(len(rt.peHandlers) - 1)
}

// PEHandlerName returns the trace name of a registered PE handler.
func (rt *Runtime) PEHandlerName(h PEH) string { return rt.peHandlerNames[h] }

// Boot runs fn as the main chare on PE 0 at the current virtual time,
// before or during execution.
func (rt *Runtime) Boot(fn func(ctx *Ctx)) {
	rt.booted = true
	rt.eng.At(rt.eng.Now(), func() {
		ctx := rt.newCtx(0, nil)
		fn(ctx)
		rt.finishExec(ctx, nil)
	})
}

// Run executes the simulation until no events remain or Exit is called,
// returning the time the machine drained (the busy horizon of the slowest
// PE, which can extend past the last event's start time).
func (rt *Runtime) Run() des.Time {
	rt.eng.Run()
	end := rt.eng.Now()
	for _, p := range rt.pes {
		if p.busy > end {
			end = p.busy
		}
	}
	return end
}

// Exited reports whether Exit was called.
func (rt *Runtime) Exited() bool { return rt.exited }

// exit stops the engine after the current event.
func (rt *Runtime) exit() {
	rt.exited = true
	rt.eng.Stop()
}

// ---- send / deliver / execute ----

const (
	prioControl = int64(-1) << 40 // collective-tree and RTS control traffic
	prioDefault = int64(0)
)

// send routes m, whose send-side costs have already been charged, stamping
// it onto the wire at time t.
func (rt *Runtime) send(m *message, t des.Time) {
	rt.Stats.MsgsSent++
	rt.Stats.BytesSent += uint64(m.size)
	m.epoch = rt.epoch
	if m.destPE < 0 {
		rt.inflight++ // element-targeted app message: QD-counted
		dst, eid := rt.resolveEID(m.srcPE, m.dest)
		m.destEID = eid
		if rt.hooks != nil {
			m.traceID = rt.hooks.MsgSend(t, m.srcPE, dst, m.size, m.cause)
		}
		rt.transmit(m, m.srcPE, dst, t)
		return
	}
	if rt.hooks != nil {
		m.traceID = rt.hooks.MsgSend(t, m.srcPE, m.destPE, m.size, m.cause)
	}
	rt.transmit(m, m.srcPE, m.destPE, t)
}

// resolveEID consults the sender's location knowledge — local directory,
// then location cache, then the home-PE guess — returning the guessed PE
// and, when known, the element's dense id (-1 otherwise). It reads only the
// sender's shard-local state, so it is safe from phase context.
func (rt *Runtime) resolveEID(srcPE int, k elemKey) (int, int32) {
	p := rt.pes[srcPE]
	if el, ok := p.elems[k]; ok {
		return el.pe, el.eid // local delivery
	}
	if t := p.locDense[k.array]; t != nil {
		// Bounded array with a dense hint table on this PE: in-bounds keys
		// live only here (cacheLoc never spills them to the map), so a miss
		// is authoritative.
		if off := rt.arrays[k.array].lin(k.idx); off >= 0 {
			if ent := t[off]; ent.pe >= 0 && int(ent.pe) < rt.activePEs {
				return int(ent.pe), ent.eid
			}
			return rt.homePE(k), -1
		}
	}
	if ent, ok := p.locCache[k]; ok && int(ent.pe) < rt.activePEs {
		return int(ent.pe), ent.eid
	}
	return rt.homePE(k), -1
}

// denseLocCap bounds the per-(PE, array) dense hint tables: beyond this
// many slots the memory trade (8 bytes per possible index per PE) stops
// paying for the map lookups it removes, and hints fall back to the map.
const denseLocCap = 1 << 16

// cacheLoc stores a location hint on p — in the array's flat table when it
// is bounded and small enough, else the hash map. Shard-local phase
// context (the hint-arrival event runs on p's shard).
func (rt *Runtime) cacheLoc(p *peState, key elemKey, ent locEnt) {
	a := rt.arrays[key.array]
	if a.linCap > 0 && a.linCap <= denseLocCap {
		if off := a.lin(key.idx); off >= 0 {
			t := p.locDense[key.array]
			if t == nil {
				t = make([]locEnt, a.linCap)
				for i := range t {
					t[i].pe = -1
				}
				p.locDense[key.array] = t
			}
			t[off] = ent
			return
		}
	}
	if p.locCache == nil {
		p.locCache = map[elemKey]locEnt{}
	}
	p.locCache[key] = ent
}

// resolve is resolveEID for callers that only want the PE guess.
func (rt *Runtime) resolve(srcPE int, k elemKey) int {
	pe, _ := rt.resolveEID(srcPE, k)
	return pe
}

// transmit moves m from PE src to PE dst over the network and enqueues it.
// Arrival is a commit-only sharded event on the destination's node (arrive
// touches the location manager and quiescence state); the body is the
// preallocated rt.arriveFn, so the steady-state send path schedules without
// allocating.
func (rt *Runtime) transmit(m *message, src, dst int, t des.Time) {
	var extra des.Time
	if rt.filter != nil {
		// Fault injection: transmits happen in commit order — identical
		// across backends — so a seeded filter reproduces exactly.
		drop, delay := rt.filter.OnTransmit(src, dst, m.size, t)
		if drop {
			rt.dropInjected(m, dst, t)
			return
		}
		extra = delay
	}
	arrival := rt.mach.Transmit(src, dst, m.size, t) + extra
	rt.eng.AtShardCommit(rt.shardOf(dst), arrival, rt.arriveFn, m, int64(dst))
}

// arriveCommit is the preallocated commit body of every network arrival.
func (rt *Runtime) arriveCommit(a any, b int64, _ des.Time) {
	rt.arrive(a.(*message), int(b))
}

// arrive lands m on PE dst: element messages that miss are forwarded via
// the home PE (location-manager protocol); PE messages are enqueued as is.
// Commit context: arrive indexes the global location tables.
func (rt *Runtime) arrive(m *message, dst int) {
	if m.epoch != rt.epoch {
		// A pre-rollback message surfacing after recovery: its epoch — and
		// its quiescence accounting — died with the rollback, so it is
		// dropped without touching the inflight counter.
		rt.Stats.MsgsDiscarded++
		putMsg(m)
		return
	}
	if rt.pes[dst].dead {
		rt.discard(m)
		return
	}
	if m.destPE >= 0 {
		rt.enqueue(m, dst)
		return
	}
	// Resolve the dense id at most once per message lifetime: messages
	// stamped by a sender's cache or an earlier hop skip the key map.
	eid := m.destEID
	if eid < 0 {
		eid = rt.eidOf(m.dest)
		m.destEID = eid
	}
	if el := rt.elemTab[eid]; el != nil && el.pe == dst {
		m.el = el // stamp for map-free execution on the fast path
		rt.enqueue(m, dst)
		return
	}
	// The element is not here.
	home := rt.homePE(m.dest)
	if dst != home {
		// Forward to home, which always knows the current location.
		m.hops++
		rt.Stats.MsgsForwarded++
		rt.transmit(m, dst, home, rt.eng.Now())
		return
	}
	if ownerPE := rt.owner[eid]; ownerPE >= 0 {
		// Home forwards to the owner and updates the sender's cache so
		// future sends go direct.
		m.hops++
		rt.Stats.MsgsForwarded++
		rt.updateLocCache(m.srcPE, m.dest, int(ownerPE), dst, eid)
		rt.transmit(m, dst, int(ownerPE), rt.eng.Now())
		return
	}
	// Element does not exist yet: buffer at home until insertion.
	//charmvet:retain (home-PE buffering: the runtime owns the message until the element exists and delivery commits)
	rt.pending[eid] = append(rt.pending[eid], m)
}

// updateLocCache ships the owner hint from the home PE back to the sender
// as a zero-cost control event that lands after the home→sender network
// latency. An instantaneous cross-PE cache write would let information
// travel faster than the network's minimum latency — unphysical, and fatal
// to the parallel backend's lookahead reasoning — so the hint arrives like
// any other message and the cache stays strictly shard-local state.
func (rt *Runtime) updateLocCache(srcPE int, key elemKey, ownerPE, homePE int, eid int32) {
	at := rt.eng.Now() + rt.mach.NetDelay(homePE, srcPE, 24)
	epoch, tep := rt.epoch, rt.tableEpoch
	ent := locEnt{pe: int32(ownerPE), eid: eid}
	rt.eng.AtShard(rt.shardOf(srcPE), at, func() func() {
		// Epoch reads from a phase are race-free: rollbacks bump the epoch —
		// and compaction the table epoch — only inside global events, which
		// never overlap a phase. A hint minted under an older table numbering
		// must die rather than poison the cache with a remapped eid.
		if rt.epoch == epoch && rt.tableEpoch == tep {
			p := rt.pes[srcPE]
			if sp := rt.specFor(srcPE); sp != nil {
				sp.noteLocCache(rt, p, key)
			}
			rt.cacheLoc(p, key, ent)
		}
		return nil
	})
}

// enqueue places m in dst's scheduler queue and pumps the PE.
func (rt *Runtime) enqueue(m *message, dst int) {
	if rt.pes[dst].dead {
		rt.discard(m)
		return
	}
	if rt.hooks != nil && m.traceID != 0 {
		rt.hooks.MsgRecv(rt.eng.Now(), dst, m.traceID, m.hops)
	}
	p := rt.pes[dst]
	m.seq = p.seq
	p.seq++
	p.q.push(m)
	rt.pump(p)
}

// pump schedules the PE's next dequeue if it is not already scheduled. The
// event body is the preallocated rt.pumpFn; the epoch at arming time rides
// in the event's integer argument, so the hot path allocates nothing.
func (rt *Runtime) pump(p *peState) {
	if p.pumpAt >= 0 || len(p.q) == 0 || p.dead {
		return
	}
	t := rt.eng.Now()
	if p.busy > t {
		t = p.busy
	}
	p.pumpAt = t
	rt.eng.AtShardFn(rt.shardOf(p.id), t, rt.pumpFn, p, int64(rt.epoch))
}

// pumpPhase is the phase body of every PE dequeue event. b carries the
// epoch at arming time: a pump scheduled before a rollback must not touch
// pumpAt or the queue — the recovery reset already re-pumped the PE. (Epoch
// reads from a phase are race-free: rollbacks bump the epoch only inside
// global events, which never overlap a phase.)
func (rt *Runtime) pumpPhase(a any, b int64, at des.Time) func() {
	p := a.(*peState)
	if rt.epoch != uint64(b) {
		return nil
	}
	return rt.runOne(p, at)
}

// runOne executes the highest-priority queued message on p. It is the
// phase half of a sharded event: element entry methods — the app's real
// compute — run here, touching only this PE's state, and the returned
// commit closure applies the global effects (statistics, quiescence,
// rescheduling) in deterministic order. On the sequential backend the
// engine runs phase and commit back to back, reproducing the historical
// single-pass behaviour exactly.
func (rt *Runtime) runOne(p *peState, at des.Time) func() {
	// Under the optimistic backend this phase may be speculative: record
	// every shard-local mutation in the shard's undo log so a straggler
	// can roll it back (see speculation.go).
	sp := rt.specFor(p.id)
	if sp != nil {
		sp.noteDequeue(p)
	}
	p.pumpAt = -1
	if len(p.q) == 0 {
		return nil
	}
	m := p.q.pop()
	if sp != nil {
		//charmvet:retain (rollback re-pushes the popped message before anything recycles it; on commit the slot is cleared without a putMsg)
		sp.popped = m
	}

	if m.destPE >= 0 {
		// PE-level handlers (collective fan-out, TRAM batch unpacking,
		// shipped functions) reach global state freely, so the whole
		// execution belongs in the commit. The closure is built once per
		// PE and reads the pending delivery from p.
		//charmvet:retain (single-slot handoff to commitPE; commit(i) runs before phase(i+1), so the slot empties before recycling)
		p.pendM, p.pendAt = m, at
		if p.commitPE == nil {
			p.commitPE = func() {
				m, at := p.pendM, p.pendAt
				p.pendM = nil
				ctx := p.takeCtx(rt, nil, rt.eng.Now())
				ctx.cause = m.traceID
				ctx.elapsed = rt.mach.RecvOverheadFrom(p.id, m.srcPE)
				if rt.hooks != nil {
					rt.hooks.EntryBegin(at, p.id, "", rt.peHandlerNames[m.ep], Index{}, m.traceID)
				}
				rt.peHandlers[m.ep](ctx, m.payload)
				if rt.hooks != nil {
					rt.hooks.EntryEnd(at+ctx.elapsed, p.id, "", rt.peHandlerNames[m.ep], Index{}, m.traceID)
				}
				rt.finishExec(ctx, nil)
				putMsg(m)
				rt.checkQD()
				rt.pump(p)
				p.releaseCtx(ctx)
			}
		}
		return p.commitPE
	}

	// Fast path: the arrival commit stamped the destination element. The
	// stamp goes stale if the element migrated or died between enqueue and
	// execution, so fall back to the shard-local directory before rerouting
	// (a destroy+reinsert of the same key lands there under a new record).
	el := m.el
	if el == nil || el.dead || el.pe != p.id {
		var ok bool
		if el, ok = p.elems[m.dest]; !ok {
			// The element migrated away between enqueue and execution:
			// re-route through the location manager. The message stays
			// in flight, so quiescence counters are untouched.
			return func() {
				m.hops++
				rt.Stats.MsgsForwarded++
				m.el = nil
				rt.transmit(m, p.id, rt.homePE(m.dest), rt.eng.Now())
				rt.pump(p)
			}
		}
	}
	if sp != nil {
		sp.touchElem(rt.spec, el)
	}
	if rt.spec != nil {
		p.resLog = p.resLog[:0]
	}
	ctx := p.takeCtx(rt, el, at)
	ctx.phase = true
	if rt.parallel {
		ctx.fx = &fxList{}
	}
	ctx.cause = m.traceID
	// The clock takes the locality-aware receive cost (a node-local sender
	// skips the network stack), but the load meter takes the uniform
	// node-local floor: measured load must be a pure function of the
	// element's own behavior, never of where its peers currently live, or
	// greedy placement cannot re-converge to the failure-free mapping after
	// a disturbance (see Ctx.chargeLoadWork).
	ctx.elapsed = rt.mach.RecvOverheadFrom(p.id, m.srcPE)
	ctx.chargeLoadWork(rt.mach.Config().RecvOverheadLocal)
	arr := rt.arrays[m.dest.array]
	handler := arr.handlers[m.ep]
	func() {
		defer func() {
			if r := recover(); r != nil {
				panic(fmt.Sprintf("charm: entry method %d of %s%v on PE %d at t=%.6fs: %v",
					m.ep, arr.name, m.dest.idx, p.id, float64(at), r))
			}
		}()
		handler(el.obj, ctx, m.payload)
	}()
	// The commit closure is built once per PE; the pending delivery rides
	// in p (commit(i) runs before phase(i+1) on this shard, so at most one
	// is in flight), keeping the steady-state execute path allocation-free.
	//charmvet:retain (single-slot handoff to commitDeliver; commit(i) runs before phase(i+1), so the slot empties before recycling)
	p.pendM, p.pendEl, p.pendCtx, p.pendAt = m, el, ctx, at
	if p.commitDeliver == nil {
		p.commitDeliver = func() {
			m, el, ctx, at := p.pendM, p.pendEl, p.pendCtx, p.pendAt
			p.pendM, p.pendEl, p.pendCtx = nil, nil, nil
			ctx.flushFX()
			rt.inflight--
			rt.Stats.MsgsDelivered++
			if rt.hooks != nil {
				// After flushFX, so the execution's sends (inline on the
				// sequential backend, replayed here on the parallel one) hold
				// the same log positions on both backends.
				arr := rt.arrays[m.dest.array]
				name := arr.EntryName(m.ep)
				rt.hooks.EntryBegin(at, p.id, arr.name, name, m.dest.idx, m.traceID)
				rt.hooks.EntryEnd(at+ctx.elapsed, p.id, arr.name, name, m.dest.idx, m.traceID)
			}
			rt.finishExec(ctx, el)
			if rt.spec == nil || !rt.spec.onCommitted(el, ctx, m, at) {
				putMsg(m)
			}
			rt.checkQD()
			rt.pump(p)
			p.releaseCtx(ctx)
		}
	}
	return p.commitDeliver
}

// finishExec charges the context's accumulated cost to the PE and element.
func (rt *Runtime) finishExec(ctx *Ctx, el *element) {
	p := rt.pes[ctx.pe]
	start := rt.eng.Now()
	end := start + ctx.elapsed
	if end > p.busy {
		p.busy = end
	}
	rt.mach.PE(ctx.pe).BusyTime += ctx.elapsed
	rt.Stats.EntryTime += ctx.elapsed
	if el != nil {
		// Already speed-normalized per charge, so LB strategies see
		// intrinsic object load even on slowed (DVFS/interference) PEs.
		el.load += ctx.loadFS
		el.totalLoad += ctx.loadFS
	}
	if ctx.exitReq {
		rt.exit()
	}
}

// BusyUntil returns when PE p finishes its current work.
func (rt *Runtime) BusyUntil(p int) des.Time { return rt.pes[p].busy }

// MaxBusy returns the latest busy horizon across active PEs — the earliest
// time a global barrier could complete.
func (rt *Runtime) MaxBusy() des.Time {
	var m des.Time
	for _, p := range rt.pes[:rt.activePEs] {
		if p.busy > m {
			m = p.busy
		}
	}
	if now := rt.eng.Now(); now > m {
		m = now
	}
	return m
}

// IncInflight registers library-managed application work (e.g. TRAM data
// items riding inside aggregated messages) with the quiescence detector.
func (rt *Runtime) IncInflight(n int) { rt.inflight += n }

// DecInflight retires library-managed work and re-checks quiescence.
func (rt *Runtime) DecInflight(n int) {
	rt.inflight -= n
	rt.checkQD()
}

// ExecuteOnPE schedules fn to run on PE pe after delay, as a normal
// scheduler message (it queues behind the PE's current work). Transport
// libraries use it for flush timers.
func (rt *Runtime) ExecuteOnPE(pe int, delay des.Time, fn func(ctx *Ctx)) {
	if delay < 0 {
		panic(fmt.Sprintf("charm: ExecuteOnPE with negative delay %v", delay))
	}
	epoch := rt.epoch
	rt.eng.AtShard(rt.shardOf(pe), rt.eng.Now()+delay, func() func() {
		return func() {
			if rt.epoch != epoch {
				return // flush timer armed before a rollback
			}
			m := getMsg()
			m.destPE = pe
			m.ep = EP(rt.funcPEH)
			m.payload = funcMsg{fn: func(ctx *Ctx, _ any) { fn(ctx) }}
			m.prio = prioControl
			m.size = 16
			m.srcPE = pe
			rt.enqueue(m, pe)
		}
	})
}

// ProbablePE returns fromPE's best guess of where element idx of arr lives
// (location cache, falling back to the home PE) — what a sender knows
// without querying.
func (rt *Runtime) ProbablePE(arr *Array, idx Index, fromPE int) int {
	return rt.resolve(fromPE, elemKey{array: arr.id, idx: idx})
}

// barrierLatency models an optimized tree barrier/reduction over the active
// PEs.
func (rt *Runtime) barrierLatency() des.Time {
	cfg := rt.mach.Config()
	depth := log2ceil(rt.activePEs)
	return des.Time(float64(depth) * (cfg.Alpha + cfg.SendOverhead + cfg.RecvOverhead))
}

// Diagnose summarizes the runtime's live state — queued and in-flight
// messages, a stuck AtSync barrier, open reductions — for debugging a run
// that stalled or deadlocked.
func (rt *Runtime) Diagnose() string {
	queued := 0
	busiest, busiestPE := 0, -1
	for _, p := range rt.pes {
		queued += len(p.q)
		if len(p.q) > busiest {
			busiest, busiestPE = len(p.q), p.id
		}
	}
	s := fmt.Sprintf("t=%.6fs: %d msgs in flight, %d queued", float64(rt.eng.Now()), rt.inflight, queued)
	if busiestPE >= 0 {
		s += fmt.Sprintf(" (deepest queue: PE %d with %d)", busiestPE, busiest)
	}
	if rt.lbTotal > 0 {
		s += fmt.Sprintf("; AtSync barrier %d/%d arrived", rt.lbArrived, rt.lbTotal)
		if rt.lbInProgress {
			s += " (LB in progress)"
		}
	}
	open := 0
	for _, arr := range rt.arrays {
		for _, run := range arr.redOpen {
			if run != nil {
				open++
			}
		}
	}
	if open > 0 {
		// Array-id then generation order — the same order the old global
		// reduction map printed after sorting its keys.
		s += fmt.Sprintf("; %d open reductions:", open)
		for _, arr := range rt.arrays {
			for i, run := range arr.redOpen {
				if run == nil {
					continue
				}
				s += fmt.Sprintf(" %s gen %d (%d/%d contributed)",
					arr.name, arr.redBase+uint64(i), run.count, run.expected)
			}
		}
	}
	if n := len(rt.qdWatch); n > 0 {
		s += fmt.Sprintf("; %d armed quiescence detections", n)
	}
	if n := len(rt.pending); n > 0 {
		s += fmt.Sprintf("; %d messages buffered for uncreated elements", n)
	}
	return s
}
