package charm

import (
	"testing"

	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

// The dense location tables exist to keep the steady-state send path flat:
// for an array with declared Bounds, resolve and eid minting must be pure
// arithmetic plus slice loads — no hashing, no map buckets, no
// allocations. These tests pin that down.

type denseChare struct{ V int64 }

func (d *denseChare) Pup(p *pup.Pup) { p.Int64(&d.V) }

func newDenseRT(t testing.TB, bounds []int, n int) (*Runtime, *Array) {
	t.Helper()
	rt := New(machine.New(machine.Testbed(4)))
	arr := rt.DeclareArray("dense", func() Chare { return &denseChare{} },
		[]Handler{func(obj Chare, ctx *Ctx, msg any) {}},
		ArrayOpts{Bounds: bounds})
	for i := 0; i < n; i++ {
		arr.Insert(Idx1(i), &denseChare{V: int64(i)})
	}
	return rt, arr
}

func TestDenseLinMapping(t *testing.T) {
	rt := New(machine.New(machine.Testbed(2)))
	a3 := rt.DeclareArray("a3", func() Chare { return &denseChare{} }, nil,
		ArrayOpts{Bounds: []int{2, 3, 4}})
	want := 0
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			for k := 0; k < 4; k++ {
				if got := a3.lin(Idx3(i, j, k)); got != want {
					t.Fatalf("lin(%d,%d,%d) = %d, want %d", i, j, k, got, want)
				}
				want++
			}
		}
	}
	// Out-of-bounds and wrong-kind indices fall back to the map path.
	for _, idx := range []Index{Idx3(2, 0, 0), Idx3(0, 3, 0), Idx3(0, 0, 4),
		Idx3(-1, 0, 0), Idx1(0), Idx2(0, 0), BitVec(0, 0)} {
		if got := a3.lin(idx); got != -1 {
			t.Fatalf("lin(%v) = %d, want -1", idx, got)
		}
	}
	unbounded := rt.DeclareArray("ub", func() Chare { return &denseChare{} }, nil, ArrayOpts{})
	if got := unbounded.lin(Idx1(0)); got != -1 {
		t.Fatalf("unbounded lin = %d, want -1", got)
	}
}

func TestDenseEidMatchesMap(t *testing.T) {
	// The dense eid table must hand out exactly the ids the key map holds.
	rt, arr := newDenseRT(t, []int{32}, 32)
	for i := 0; i < 32; i++ {
		k := elemKey{array: arr.id, idx: Idx1(i)}
		if got, want := rt.eidOf(k), rt.keyEID[k]; got != want {
			t.Fatalf("eidOf(%d) = %d, map says %d", i, got, want)
		}
	}
}

func TestDenseResolveMatchesMapPath(t *testing.T) {
	// A hint stored for a bounded array must resolve identically to the
	// same hint stored in the map (unbounded array).
	rt, arr := newDenseRT(t, []int{16}, 0)
	p := rt.pes[3] // not the home of anything; pure hint consumer
	key := elemKey{array: arr.id, idx: Idx1(7)}
	rt.cacheLoc(p, key, locEnt{pe: 2, eid: 11})
	if p.locDense[arr.id] == nil {
		t.Fatal("hint for bounded array did not land in the dense table")
	}
	if len(p.locCache) != 0 {
		t.Fatal("hint for bounded array leaked into the map")
	}
	pe, eid := rt.resolveEID(3, key)
	if pe != 2 || eid != 11 {
		t.Fatalf("resolveEID = (%d, %d), want (2, 11)", pe, eid)
	}
	// A miss on a dense-tabled array is authoritative: home PE, no eid.
	miss := elemKey{array: arr.id, idx: Idx1(8)}
	pe, eid = rt.resolveEID(3, miss)
	if pe != rt.homePE(miss) || eid != -1 {
		t.Fatalf("miss resolveEID = (%d, %d), want home (%d, -1)", pe, eid, rt.homePE(miss))
	}
}

// TestDenseResolveAllocs is the regression guard for the flat tables: once
// warm, the send-side resolve and the commit-side eid lookup must not
// allocate. A map would pass this too — the benchmarks below show the
// latency win — but the guard keeps refactors from reintroducing per-send
// garbage (e.g. boxing the key).
func TestDenseResolveAllocs(t *testing.T) {
	rt, arr := newDenseRT(t, []int{64}, 64)
	p := rt.pes[3]
	for i := 0; i < 64; i++ {
		rt.cacheLoc(p, elemKey{array: arr.id, idx: Idx1(i)}, locEnt{pe: int32(i % 4), eid: int32(i)})
	}
	key := elemKey{array: arr.id, idx: Idx1(33)}
	var sink int32
	if n := testing.AllocsPerRun(200, func() {
		_, eid := rt.resolveEID(3, key)
		sink = eid
	}); n != 0 {
		t.Errorf("resolveEID allocates %v per call on the dense path", n)
	}
	if n := testing.AllocsPerRun(200, func() {
		sink = rt.eidOf(key)
	}); n != 0 {
		t.Errorf("eidOf allocates %v per call on the dense path", n)
	}
	_ = sink
}

func benchResolve(b *testing.B, bounds []int) {
	rt := New(machine.New(machine.Testbed(4)))
	arr := rt.DeclareArray("bench", func() Chare { return &denseChare{} }, nil,
		ArrayOpts{Bounds: bounds})
	const n = 4096
	p := rt.pes[3]
	for i := 0; i < n; i++ {
		rt.cacheLoc(p, elemKey{array: arr.id, idx: Idx1(i)}, locEnt{pe: int32(i % 4), eid: int32(i)})
	}
	keys := make([]elemKey, n)
	for i := range keys {
		keys[i] = elemKey{array: arr.id, idx: Idx1(i)}
	}
	b.ReportAllocs()
	b.ResetTimer()
	var sink int32
	for i := 0; i < b.N; i++ {
		_, sink = rt.resolveEID(3, keys[i&(n-1)])
	}
	_ = sink
}

// BenchmarkResolveDense vs BenchmarkResolveMap measure the satellite's
// point: the flat table turns the per-send location lookup into two slice
// loads.
func BenchmarkResolveDense(b *testing.B) { benchResolve(b, []int{4096}) }
func BenchmarkResolveMap(b *testing.B)   { benchResolve(b, nil) }

