// Package ampi implements Adaptive MPI (§II-D): an MPI-flavoured API whose
// ranks are light-weight user-level threads (goroutines) bound to
// migratable rank-chares instead of OS processes. Several ranks virtualize
// onto one PE, which buys the over-decomposition benefits — communication/
// computation overlap, cache blocking from smaller working sets (Fig 14),
// and RTS-managed load balancing via MPI_Migrate.
//
// Rank code is ordinary blocking-style Go. The DES engine drives ranks
// cooperatively: exactly one rank executes at a time, so simulations remain
// deterministic, while each rank experiences a private sequential timeline.
package ampi

import (
	"fmt"

	"charmgo/internal/charm"
	"charmgo/internal/pup"
)

// Wildcards for Recv.
const (
	AnySource = -1
	AnyTag    = -1
)

// Options configures an AMPI job.
type Options struct {
	// StateBytes is the modeled per-rank memory footprint (the
	// iso-malloc'd state), charged on migration and checkpoint.
	StateBytes int
	// PerOpOverhead is CPU time added to every MPI call, modeling the
	// virtualization layer; zero simulates native MPI.
	PerOpOverhead float64
	// Migratable enables MPI_Migrate/AtSync (requires a balancer on the
	// runtime). Native-MPI baselines leave it off.
	Migratable bool
}

type mail struct {
	src   int
	tag   int
	data  any
	bytes int
}

type wakeKind int

const (
	wStart wakeKind = iota
	wMsg
	wColl
	wResumed
	wAbort
)

type wake struct {
	kind wakeKind
	data any
}

type yieldKind int

const (
	yBlocked yieldKind = iota
	yFinished
)

type blockReason int

const (
	notBlocked blockReason = iota
	onRecv
	onColl
	onMigrate
)

// Rank is the handle rank code receives; its methods are the MPI surface.
type Rank struct {
	env *Env
	id  int

	ctx    *charm.Ctx
	resume chan wake
	yield  chan yieldKind

	mailbox []mail
	blocked blockReason
	recvSrc int
	recvTag int

	started  bool
	aborted  bool
	finished bool
	err      error
}

// rankChare is the migratable backing object of one rank. The Rank handle
// itself (the user-level thread) is looked up by ID in the Env — real AMPI
// keeps the ULT stack alive across migration via iso-malloc; here the
// goroutine simply stays resident while its chare is re-homed.
type rankChare struct {
	ID         int
	StateBytes int
}

func (rc *rankChare) Pup(p *pup.Pup) {
	p.Int(&rc.ID)
	p.Int(&rc.StateBytes)
	p.Virtual(rc.StateBytes)
}

// Env is a running AMPI job.
type Env struct {
	rt    *charm.Runtime
	arr   *charm.Array
	opts  Options
	ranks []*Rank
	nDone int
}

const (
	epStart charm.EP = iota
	epMsg
	epColl
	epResume
)

var abortSentinel = &struct{ s string }{"ampi abort"}

// Run executes fn as n MPI ranks on the runtime and returns when every rank
// has returned. Ranks are block-mapped: rank i starts on PE i*P/n, so
// consecutive ranks share PEs at virtualization ratios above one. An error
// reports deadlock (ranks still blocked when the machine went idle) or a
// rank panic.
func Run(rt *charm.Runtime, n int, fn func(r *Rank), opts Options) error {
	env, err := Start(rt, "ampi_ranks", n, fn, opts)
	if err != nil {
		return err
	}
	rt.Run()
	return env.Finish()
}

// Start launches the ranks without running the engine, for callers that
// compose AMPI with other work (interoperation, §III-G). arrName must be
// unique per job.
func Start(rt *charm.Runtime, arrName string, n int, fn func(r *Rank), opts Options) (*Env, error) {
	if n < 1 {
		return nil, fmt.Errorf("ampi: need at least 1 rank")
	}
	env := &Env{rt: rt, opts: opts}
	handlers := []charm.Handler{
		epStart:  env.onStart,
		epMsg:    env.onMsg,
		epColl:   env.onColl,
		epResume: env.onResume,
	}
	env.arr = rt.DeclareArray(arrName, func() charm.Chare { return &rankChare{} }, handlers,
		charm.ArrayOpts{
			UsesAtSync: opts.Migratable,
			ResumeEP:   epResume,
			HomeMap: func(idx charm.Index, numPEs int) int {
				return idx.I() * numPEs / n
			},
		})
	env.ranks = make([]*Rank, n)
	p := rt.NumPEs()
	for i := 0; i < n; i++ {
		r := &Rank{
			env:    env,
			id:     i,
			resume: make(chan wake),
			yield:  make(chan yieldKind),
		}
		env.ranks[i] = r
		rc := &rankChare{ID: i, StateBytes: opts.StateBytes}
		env.arr.InsertOn(charm.Idx1(i), rc, i*p/n)
		go r.main(fn)
	}
	// Kick every rank off.
	env.arr.Broadcast(epStart, nil)
	return env, nil
}

// Finish checks the job's outcome after the engine has drained, aborting
// any still-parked ranks. It is idempotent.
func (e *Env) Finish() error {
	var firstErr error
	for _, r := range e.ranks {
		if r.err != nil && firstErr == nil {
			firstErr = r.err
		}
	}
	if firstErr != nil {
		e.abortAll()
		return firstErr
	}
	if e.nDone < len(e.ranks) {
		blocked := 0
		for _, r := range e.ranks {
			if !r.finished && !r.aborted {
				blocked++
			}
		}
		e.abortAll()
		if blocked > 0 {
			return fmt.Errorf("ampi: deadlock: %d of %d ranks still blocked at idle", blocked, len(e.ranks))
		}
	}
	return nil
}

func (e *Env) abortAll() {
	for _, r := range e.ranks {
		if r.finished || r.aborted {
			continue
		}
		if r.blocked != notBlocked || !r.started {
			// Parked on a blocking call (or never started): unpark with
			// an abort so the goroutine exits. Mark aborted before the
			// send so the write is ordered before the rank goroutine's
			// own r.aborted store after it wakes.
			r.aborted = true
			r.resume <- wake{kind: wAbort}
		}
	}
}

// Array exposes the backing chare array (for checkpoint tooling and tests).
func (e *Env) Array() *charm.Array { return e.arr }

// ---- scheduler-side handlers ----

func (e *Env) rankOf(obj charm.Chare) *Rank { return e.ranks[obj.(*rankChare).ID] }

// segment runs the rank until it blocks again, within ctx's execution.
func (e *Env) segment(ctx *charm.Ctx, r *Rank, w wake) {
	//charmvet:retain (cleared below before segment returns; the rank goroutine only touches it while parked inside this same delivery)
	r.ctx = ctx
	r.blocked = notBlocked
	r.resume <- w
	yk := <-r.yield
	r.ctx = nil
	if yk == yFinished {
		r.finished = true
		e.nDone++
	}
}

func (e *Env) onStart(obj charm.Chare, ctx *charm.Ctx, msg any) {
	r := e.rankOf(obj)
	r.started = true
	e.segment(ctx, r, wake{kind: wStart})
}

func (e *Env) onMsg(obj charm.Chare, ctx *charm.Ctx, msg any) {
	r := e.rankOf(obj)
	m := msg.(mail)
	r.mailbox = append(r.mailbox, m)
	if r.blocked == onRecv && matches(m, r.recvSrc, r.recvTag) {
		e.segment(ctx, r, wake{kind: wMsg})
	}
}

func (e *Env) onColl(obj charm.Chare, ctx *charm.Ctx, msg any) {
	r := e.rankOf(obj)
	if r.blocked != onColl {
		panic(fmt.Sprintf("ampi: rank %d got collective result while not in a collective", r.id))
	}
	e.segment(ctx, r, wake{kind: wColl, data: msg})
}

func (e *Env) onResume(obj charm.Chare, ctx *charm.Ctx, msg any) {
	r := e.rankOf(obj)
	if r.blocked == onMigrate {
		e.segment(ctx, r, wake{kind: wResumed})
	}
}

func matches(m mail, src, tag int) bool {
	return (src == AnySource || m.src == src) && (tag == AnyTag || m.tag == tag)
}

// ---- rank-side API ----

func (r *Rank) main(fn func(*Rank)) {
	defer func() {
		rec := recover()
		if r.aborted {
			return // parked scheduler is gone; just exit the goroutine
		}
		if rec != nil {
			r.err = fmt.Errorf("ampi: rank %d panicked: %v", r.id, rec)
		}
		r.yield <- yFinished
	}()
	w := <-r.resume
	if w.kind == wAbort {
		r.aborted = true
		return
	}
	fn(r)
}

// block parks the rank until the scheduler wakes it.
func (r *Rank) block(why blockReason) wake {
	r.blocked = why
	r.yield <- yBlocked
	w := <-r.resume
	if w.kind == wAbort {
		r.aborted = true
		panic(abortSentinel)
	}
	return w
}

func (r *Rank) overhead() {
	if r.env.opts.PerOpOverhead > 0 {
		r.ctx.Charge(r.env.opts.PerOpOverhead)
	}
}

// ID returns the rank number (MPI_Comm_rank).
func (r *Rank) ID() int { return r.id }

// Size returns the number of ranks (MPI_Comm_size).
func (r *Rank) Size() int { return len(r.env.ranks) }

// PE returns the PE currently hosting this rank.
func (r *Rank) PE() int { return r.env.arr.PEOf(charm.Idx1(r.id)) }

// Wtime returns the rank's current virtual time (MPI_Wtime).
func (r *Rank) Wtime() float64 { return float64(r.ctx.Now()) }

// Charge accounts work seconds of computation at base frequency.
func (r *Rank) Charge(work float64) { r.ctx.Charge(work) }

// ChargeCache accounts computation whose working set is ws bytes, shared
// with the other virtual ranks on the node (the Fig 14 cache model).
func (r *Rank) ChargeCache(work float64, ws int64, nodeSharers int) {
	r.ctx.ChargeWithCache(work, ws, nodeSharers)
}

// Send posts an asynchronous (eager/buffered) message (MPI_Send).
func (r *Rank) Send(dst, tag int, data any, bytes int) {
	if dst < 0 || dst >= len(r.env.ranks) {
		panic(fmt.Sprintf("ampi: send to rank %d of %d", dst, len(r.env.ranks)))
	}
	r.overhead()
	r.ctx.SendOpt(r.env.arr, charm.Idx1(dst), epMsg,
		mail{src: r.id, tag: tag, data: data, bytes: bytes},
		&charm.SendOpts{Bytes: bytes + 32})
}

// Recv blocks until a matching message arrives and returns its payload and
// source rank (MPI_Recv). Use AnySource/AnyTag as wildcards.
func (r *Rank) Recv(src, tag int) (any, int) {
	r.overhead()
	for {
		for i, m := range r.mailbox {
			if matches(m, src, tag) {
				r.mailbox = append(r.mailbox[:i], r.mailbox[i+1:]...)
				return m.data, m.src
			}
		}
		r.recvSrc, r.recvTag = src, tag
		r.block(onRecv)
	}
}

// Sendrecv exchanges messages with two peers in one call.
func (r *Rank) Sendrecv(dst, sendTag int, data any, bytes int, src, recvTag int) (any, int) {
	r.Send(dst, sendTag, data, bytes)
	return r.Recv(src, recvTag)
}

// Barrier synchronizes all ranks (MPI_Barrier).
func (r *Rank) Barrier() {
	r.overhead()
	r.ctx.Contribute(int64(1), charm.SumI64, charm.CallbackBcast(r.env.arr, epColl))
	r.block(onColl)
}

// AllreduceF combines one float64 across all ranks (MPI_Allreduce).
func (r *Rank) AllreduceF(val float64, op charm.Reducer) float64 {
	r.overhead()
	r.ctx.Contribute(val, op, charm.CallbackBcast(r.env.arr, epColl))
	w := r.block(onColl)
	return w.data.(float64)
}

// AllreduceI combines one int64 across all ranks.
func (r *Rank) AllreduceI(val int64, op charm.Reducer) int64 {
	r.overhead()
	r.ctx.Contribute(val, op, charm.CallbackBcast(r.env.arr, epColl))
	w := r.block(onColl)
	return w.data.(int64)
}

// AllreduceVec sums a vector elementwise across all ranks (histogram
// reductions); every rank must contribute the same length.
func (r *Rank) AllreduceVec(vals []float64) []float64 {
	r.overhead()
	r.ctx.Contribute(vals, charm.SumVecF64, charm.CallbackBcast(r.env.arr, epColl))
	w := r.block(onColl)
	return w.data.([]float64)
}

// AllreduceMin returns the global minimum (the hydro dt reduction).
func (r *Rank) AllreduceMin(val float64) float64 { return r.AllreduceF(val, charm.MinF64) }

// AllreduceSum returns the global sum.
func (r *Rank) AllreduceSum(val float64) float64 { return r.AllreduceF(val, charm.SumF64) }

// CharmCtx exposes the charm execution context of the rank's current
// segment — the interoperation hook (§III-G): rank code uses it to invoke
// entry methods of Charm-side library modules (the CharmLibInit pattern),
// then typically blocks in Recv until the library delivers its result via
// Env.SendToRank.
func (r *Rank) CharmCtx() *charm.Ctx { return r.ctx }

// SendToRank delivers a message into a rank's MPI mailbox from Charm-side
// code (a library module's completion path). The receiving rank sees it as
// an ordinary Recv with source = src.
func (e *Env) SendToRank(ctx *charm.Ctx, dst, src, tag int, data any, bytes int) {
	ctx.SendOpt(e.arr, charm.Idx1(dst), epMsg,
		mail{src: src, tag: tag, data: data, bytes: bytes},
		&charm.SendOpts{Bytes: bytes + 32})
}

// Migrate is MPI_Migrate: the AtSync load-balancing point. All ranks must
// call it collectively; the runtime's balancer may move rank-chares before
// resuming. A no-op for jobs started without Migratable.
func (r *Rank) Migrate() {
	if !r.env.opts.Migratable {
		return
	}
	r.overhead()
	r.ctx.AtSync()
	r.block(onMigrate)
}
