package ampi

import (
	"testing"

	"charmgo/internal/pup/puptest"
)

// TestPupRoundTrip covers the rank chare, whose Pup models the iso-malloc
// rank memory with a virtual payload: the restored chare must agree on the
// declared state size so migration costs stay faithful.
func TestPupRoundTrip(t *testing.T) {
	puptest.CheckEqual(t, &rankChare{ID: 6, StateBytes: 4096})
}
