package ampi

import (
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/machine"
)

func TestBcast(t *testing.T) {
	for _, n := range []int{1, 2, 5, 8, 13} {
		for _, root := range []int{0, n - 1} {
			rt := charm.New(machine.New(machine.Testbed(4)))
			got := make([]int, n)
			err := Run(rt, n, func(r *Rank) {
				var payload any
				if r.ID() == root {
					payload = 4321
				}
				got[r.ID()] = r.Bcast(root, payload, 64).(int)
			}, Options{})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			for i, v := range got {
				if v != 4321 {
					t.Fatalf("n=%d root=%d: rank %d got %d", n, root, i, v)
				}
			}
		}
	}
}

func TestBcastIsLogDepth(t *testing.T) {
	// A binomial broadcast over 64 ranks should complete in O(log P)
	// message latencies, far faster than 63 serial sends from the root.
	elapsed := func(n int) float64 {
		rt := charm.New(machine.New(machine.Testbed(16)))
		if err := Run(rt, n, func(r *Rank) {
			r.Bcast(0, r.ID(), 1<<16) // 64KB payload
		}, Options{}); err != nil {
			t.Fatal(err)
		}
		return float64(rt.Now())
	}
	t8, t64 := elapsed(8), elapsed(64)
	// log2(64)/log2(8) = 2: the tree should grow ~2x, not 8x.
	if t64 > 4*t8 {
		t.Fatalf("bcast does not look logarithmic: 8 ranks %v, 64 ranks %v", t8, t64)
	}
}

func TestGatherScatter(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(4)))
	const n, root = 7, 3
	var gathered []any
	scattered := make([]int, n)
	err := Run(rt, n, func(r *Rank) {
		g := r.Gather(root, r.ID()*11, 32)
		if r.ID() == root {
			gathered = g
			out := make([]any, n)
			for i := range out {
				out[i] = i * 100
			}
			scattered[r.ID()] = r.Scatter(root, out, 32).(int)
		} else {
			if g != nil {
				t.Errorf("rank %d got a gather result", r.ID())
			}
			scattered[r.ID()] = r.Scatter(root, nil, 32).(int)
		}
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range gathered {
		if v.(int) != i*11 {
			t.Fatalf("gather[%d] = %v", i, v)
		}
	}
	for i, v := range scattered {
		if v != i*100 {
			t.Fatalf("scatter to rank %d = %d", i, v)
		}
	}
}

func TestAlltoall(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(4)))
	const n = 6
	results := make([][]any, n)
	err := Run(rt, n, func(r *Rank) {
		out := make([]any, n)
		for j := range out {
			out[j] = r.ID()*1000 + j // value encodes (src, dst)
		}
		results[r.ID()] = r.Alltoall(out, 32)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for me, res := range results {
		for src, v := range res {
			if v.(int) != src*1000+me {
				t.Fatalf("rank %d slot %d = %v, want %d", me, src, v, src*1000+me)
			}
		}
	}
}

func TestScatterSizeMismatchPanics(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(2)))
	err := Run(rt, 3, func(r *Rank) {
		if r.ID() == 0 {
			r.Scatter(0, make([]any, 2), 8)
			return
		}
		r.Scatter(0, nil, 8)
	}, Options{})
	if err == nil {
		t.Fatal("mismatched scatter should surface as a rank error")
	}
}

func TestNonblockingOverlap(t *testing.T) {
	// The classic Irecv/compute/Wait overlap: post receives up front,
	// compute, then wait — the compute and the wire overlap, so the
	// total time beats the blocking sequence.
	run := func(nonblocking bool) float64 {
		rt := charm.New(machine.New(machine.Testbed(4)))
		if err := Run(rt, 4, func(r *Rank) {
			peer := r.ID() ^ 1
			for it := 0; it < 10; it++ {
				if nonblocking {
					req := r.Irecv(peer, 5)
					r.Send(peer, 5, it, 1<<17) // 128 KB
					r.Charge(50e-6)            // overlapped compute
					r.Wait(req)
				} else {
					r.Send(peer, 5, it, 1<<17)
					r.Recv(peer, 5)
					r.Charge(50e-6)
				}
			}
		}, Options{}); err != nil {
			t.Fatal(err)
		}
		return float64(rt.Now())
	}
	blocking := run(false)
	overlap := run(true)
	if overlap >= blocking {
		t.Fatalf("nonblocking overlap did not help: %v vs %v", overlap, blocking)
	}
}

func TestTestAndWaitall(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(2)))
	err := Run(rt, 2, func(r *Rank) {
		peer := 1 - r.ID()
		reqs := []*Request{r.Irecv(peer, 1), r.Irecv(peer, 2)}
		if reqs[0].Test() {
			t.Error("Test passed before any send")
		}
		r.Send(peer, 2, 22, 8)
		r.Send(peer, 1, 11, 8)
		r.Waitall(reqs)
		if v, _ := r.Wait(reqs[0]); v.(int) != 11 {
			t.Errorf("req[0] = %v", v)
		}
		if v, _ := r.Wait(reqs[1]); v.(int) != 22 {
			t.Errorf("req[1] = %v", v)
		}
		// Isend completes immediately.
		if !r.Isend(peer, 9, 0, 8).Test() {
			t.Error("Isend request not complete")
		}
		r.Recv(peer, 9)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReduceToRoot(t *testing.T) {
	rt := charm.New(machine.New(machine.Testbed(4)))
	const n, root = 9, 4
	var got [n]float64
	err := Run(rt, n, func(r *Rank) {
		got[r.ID()] = r.Reduce(root, float64(r.ID()+1), charm.SumF64)
		// Non-roots continue immediately; a barrier proves no deadlock.
		r.Barrier()
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		want := 0.0
		if i == root {
			want = 45 // 1+2+...+9
		}
		if v != want {
			t.Fatalf("rank %d got %v, want %v", i, v, want)
		}
	}
}
