package ampi

import (
	"errors"
	"testing"

	"charmgo/internal/chaos"
	"charmgo/internal/charm"
	"charmgo/internal/ckpt"
	"charmgo/internal/machine"
)

// TestSinglePEFailureDetection injects one hard PE crash into a running
// AMPI job and verifies the failure-tolerance machinery's supported half:
// the virtual-time heartbeat detector notices the dead PE and recovery is
// attempted. Full rollback is then skipped with the reason on record —
// AMPI ranks execute on goroutine stacks, which the PUP layer cannot
// capture mid-blocking-call, so there is never a chare checkpoint to
// restore from. Until ranks get thread-level checkpointing (isomalloc in
// real AMPI), a crash is detected but not survivable, and this test keeps
// that gap visible.
func TestSinglePEFailureDetection(t *testing.T) {
	prog := func(r *Rank) {
		for i := 0; i < 120; i++ {
			r.Charge(40e-6)
			r.AllreduceSum(1)
		}
	}
	// Probe the failure-free span to place the crash mid-run.
	probe := charm.New(machine.New(machine.Testbed(4)))
	if err := Run(probe, 8, prog, Options{}); err != nil {
		t.Fatal(err)
	}
	mid := 0.5 * float64(probe.Now())

	rt := charm.New(machine.New(machine.Testbed(4)))
	plan := chaos.Plan{Seed: 1, Faults: []chaos.Fault{
		{Kind: chaos.FaultCrash, At: mid, PE: 2, SrcPE: -1},
	}}
	ctrl, err := chaos.Enable(rt, plan, chaos.Options{
		HeartbeatPeriod: 2e-4, HeartbeatTimeout: 1.5e-4,
	})
	if err != nil {
		t.Fatal(err)
	}
	Run(rt, 8, prog, Options{}) // stalls at the crash; Finish aborts parked ranks

	if got := rt.Metrics().Counter("chaos.detections").Value(); got == 0 {
		t.Fatal("heartbeat detector never noticed the crashed PE")
	}
	if ctrl.Err() == nil {
		t.Fatal("recovery unexpectedly proceeded without a checkpoint — if AMPI grew rank checkpointing, promote this test to a survivability assertion")
	}
	if !errors.Is(ctrl.Err(), ckpt.ErrNoCheckpoint) {
		t.Fatalf("want ErrNoCheckpoint (detection worked, nothing to restore), got %v", ctrl.Err())
	}
	t.Skipf("recovery unsupported: AMPI ranks hold state on goroutine stacks that PUP cannot capture mid-call; detection verified (crash at t=%.4fs detected, controller reported %v)", mid, ctrl.Err())
}
