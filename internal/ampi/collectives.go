package ampi

import (
	"fmt"

	"charmgo/internal/charm"
)

// Internal tags for the collective operations; applications must keep
// their own tags below this range (as with real MPI's reserved tags).
const (
	tagBcast   = 1<<30 + iota // root payload distribution
	tagGather                 // leaf-to-root collection
	tagScatter                // root-to-leaf distribution
	tagAlltoall
)

// Bcast distributes the root's payload to every rank (MPI_Bcast): the
// root passes its data, every other rank passes nil and receives the
// root's value.
func (r *Rank) Bcast(root int, data any, bytes int) any {
	if r.Size() == 1 {
		return data
	}
	if r.id == root {
		// Binomial tree: log2(P) rounds from the root's perspective;
		// relative rank 0 sends to 1, 2, 4, ...
		r.treeSend(root, data, bytes)
		return data
	}
	got, _ := r.Recv(AnySource, tagBcast)
	r.treeSend(root, got, bytes)
	return got
}

// treeSend forwards a broadcast payload down the binomial tree rooted at
// root: relative rank rel serves children rel+mask for each mask below
// rel's lowest set bit (the whole power-of-two range for the root).
func (r *Rank) treeSend(root int, data any, bytes int) {
	p := r.Size()
	rel := (r.id - root + p) % p
	mask := 1
	if rel == 0 {
		for mask < p {
			mask <<= 1
		}
	} else {
		for rel&mask == 0 {
			mask <<= 1
		}
	}
	for mask >>= 1; mask > 0; mask >>= 1 {
		if child := rel + mask; child < p {
			r.Send((child+root)%p, tagBcast, data, bytes)
		}
	}
}

// Gather collects every rank's payload at the root (MPI_Gather): the root
// returns a slice indexed by source rank; other ranks return nil.
func (r *Rank) Gather(root int, data any, bytes int) []any {
	if r.id != root {
		r.Send(root, tagGather, gatherMsg{Rank: r.id, Data: data}, bytes)
		return nil
	}
	out := make([]any, r.Size())
	out[r.id] = data
	for i := 0; i < r.Size()-1; i++ {
		m, _ := r.Recv(AnySource, tagGather)
		gm := m.(gatherMsg)
		out[gm.Rank] = gm.Data
	}
	return out
}

type gatherMsg struct {
	Rank int
	Data any
}

// Scatter distributes one payload per rank from the root (MPI_Scatter):
// the root passes a slice indexed by destination rank; every rank receives
// its element.
func (r *Rank) Scatter(root int, data []any, bytes int) any {
	if r.id == root {
		if len(data) != r.Size() {
			panic(fmt.Sprintf("ampi: scatter with %d payloads for %d ranks", len(data), r.Size()))
		}
		for dst := 0; dst < r.Size(); dst++ {
			if dst == r.id {
				continue
			}
			r.Send(dst, tagScatter, data[dst], bytes)
		}
		return data[r.id]
	}
	got, _ := r.Recv(root, tagScatter)
	return got
}

// Alltoall exchanges one payload with every rank (MPI_Alltoall): data[j]
// goes to rank j; the result is indexed by source rank.
func (r *Rank) Alltoall(data []any, bytes int) []any {
	if len(data) != r.Size() {
		panic(fmt.Sprintf("ampi: alltoall with %d payloads for %d ranks", len(data), r.Size()))
	}
	out := make([]any, r.Size())
	out[r.id] = data[r.id]
	for d := 1; d < r.Size(); d++ {
		dst := (r.id + d) % r.Size()
		r.Send(dst, tagAlltoall, gatherMsg{Rank: r.id, Data: data[dst]}, bytes)
	}
	for i := 0; i < r.Size()-1; i++ {
		m, _ := r.Recv(AnySource, tagAlltoall)
		gm := m.(gatherMsg)
		out[gm.Rank] = gm.Data
	}
	return out
}

// Reduce combines one float64 across all ranks, delivering the result only
// to the root (MPI_Reduce); other ranks return 0 without blocking.
func (r *Rank) Reduce(root int, val float64, op charm.Reducer) float64 {
	r.overhead()
	if r.id == root {
		r.ctx.Contribute(val, op, charm.CallbackSend(r.env.arr, charm.Idx1(root), epColl))
		w := r.block(onColl)
		return w.data.(float64)
	}
	r.ctx.Contribute(val, op, charm.CallbackSend(r.env.arr, charm.Idx1(root), epColl))
	return 0
}
