package ampi

// Request is a nonblocking-operation handle (MPI_Request). Sends complete
// eagerly in this model; receives complete when Wait matches a message.
type Request struct {
	rank *Rank
	recv bool
	src  int
	tag  int
	done bool
	data any
	from int
}

// Isend posts a nonblocking send (MPI_Isend). Sends are eager/buffered, so
// the returned request is already complete; it exists so ported code can
// keep its Isend/Wait structure.
func (r *Rank) Isend(dst, tag int, data any, bytes int) *Request {
	r.Send(dst, tag, data, bytes)
	return &Request{rank: r, done: true}
}

// Irecv posts a nonblocking receive (MPI_Irecv): the match is deferred to
// Wait/Waitall, letting the rank compute while messages arrive.
func (r *Rank) Irecv(src, tag int) *Request {
	return &Request{rank: r, recv: true, src: src, tag: tag}
}

// Test reports whether the request would complete without blocking, and
// completes it if so (MPI_Test).
func (req *Request) Test() bool {
	if req.done {
		return true
	}
	r := req.rank
	for i, m := range r.mailbox {
		if matches(m, req.src, req.tag) {
			r.mailbox = append(r.mailbox[:i], r.mailbox[i+1:]...)
			req.data, req.from = m.data, m.src
			req.done = true
			return true
		}
	}
	return false
}

// Wait blocks until the request completes, returning the payload and
// source for receives (MPI_Wait).
func (r *Rank) Wait(req *Request) (any, int) {
	if req.done {
		return req.data, req.from
	}
	req.data, req.from = r.Recv(req.src, req.tag)
	req.done = true
	return req.data, req.from
}

// Waitall completes every request (MPI_Waitall).
func (r *Rank) Waitall(reqs []*Request) {
	for _, req := range reqs {
		r.Wait(req)
	}
}
