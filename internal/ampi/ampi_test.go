package ampi

import (
	"strings"
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/lb"
	"charmgo/internal/machine"
)

func newRT(pes int) *charm.Runtime {
	return charm.New(machine.New(machine.Testbed(pes)))
}

func TestRingPass(t *testing.T) {
	rt := newRT(4)
	const n = 8
	var sums [n]int
	err := Run(rt, n, func(r *Rank) {
		if r.ID() == 0 {
			r.Send(1, 7, 1, 8)
			v, src := r.Recv(n-1, 7)
			sums[0] = v.(int)
			if src != n-1 {
				t.Errorf("rank 0 got message from %d", src)
			}
			return
		}
		v, _ := r.Recv(r.ID()-1, 7)
		sums[r.ID()] = v.(int)
		r.Send((r.ID()+1)%n, 7, v.(int)+1, 8)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < n; i++ {
		if sums[i] != i {
			t.Fatalf("rank %d saw %d, want %d", i, sums[i], i)
		}
	}
	if sums[0] != n {
		t.Fatalf("ring did not complete: %d", sums[0])
	}
}

func TestVirtualizationPlacement(t *testing.T) {
	rt := newRT(4)
	var pes [8]int
	err := Run(rt, 8, func(r *Rank) {
		pes[r.ID()] = r.PE()
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Block mapping: ranks 2k and 2k+1 share PE k.
	for i := 0; i < 8; i++ {
		if pes[i] != i/2 {
			t.Fatalf("rank %d on PE %d, want %d", i, pes[i], i/2)
		}
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	rt := newRT(4)
	var order []int
	err := Run(rt, 4, func(r *Rank) {
		// Stagger arrival: rank i computes i*10ms first.
		r.Charge(float64(r.ID()) * 0.01)
		r.Barrier()
		order = append(order, r.ID())
		after := r.Wtime()
		if after < 0.03 {
			t.Errorf("rank %d passed barrier at %v, before the slowest arrived", r.ID(), after)
		}
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(order) != 4 {
		t.Fatalf("only %d ranks passed the barrier", len(order))
	}
}

func TestAllreduce(t *testing.T) {
	rt := newRT(4)
	var got [6]float64
	err := Run(rt, 6, func(r *Rank) {
		got[r.ID()] = r.AllreduceSum(float64(r.ID() + 1))
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range got {
		if v != 21 {
			t.Fatalf("rank %d allreduce sum = %v, want 21", i, v)
		}
	}
	rt2 := newRT(4)
	var mins [5]float64
	if err := Run(rt2, 5, func(r *Rank) {
		mins[r.ID()] = r.AllreduceMin(float64(10 - r.ID()))
	}, Options{}); err != nil {
		t.Fatal(err)
	}
	if mins[2] != 6 {
		t.Fatalf("allreduce min = %v, want 6", mins[2])
	}
}

func TestWildcardRecv(t *testing.T) {
	rt := newRT(2)
	var got []int
	err := Run(rt, 3, func(r *Rank) {
		if r.ID() == 0 {
			for i := 0; i < 2; i++ {
				v, _ := r.Recv(AnySource, AnyTag)
				got = append(got, v.(int))
			}
			return
		}
		r.Charge(float64(r.ID()) * 1e-3)
		r.Send(0, r.ID()*10, r.ID()*100, 8)
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0]+got[1] != 300 {
		t.Fatalf("wildcard recv got %v", got)
	}
}

func TestDeadlockDetected(t *testing.T) {
	rt := newRT(2)
	err := Run(rt, 2, func(r *Rank) {
		r.Recv(AnySource, AnyTag) // nobody sends
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("want deadlock error, got %v", err)
	}
}

func TestRankPanicReported(t *testing.T) {
	rt := newRT(2)
	err := Run(rt, 2, func(r *Rank) {
		if r.ID() == 1 {
			panic("boom")
		}
	}, Options{})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("want rank panic surfaced, got %v", err)
	}
}

func TestMigrateBalancesLoad(t *testing.T) {
	rt := newRT(4)
	rt.SetBalancer(lb.Greedy{})
	const n = 8
	var before, after [n]int
	err := Run(rt, n, func(r *Rank) {
		// Ranks 0..3 are heavy; all start block-mapped so PEs 0,1 are
		// overloaded relative to 2,3... actually blocks are 2 ranks/PE;
		// make ranks on PE 0-1 heavy.
		before[r.ID()] = r.PE()
		for it := 0; it < 3; it++ {
			if r.ID() < 4 {
				r.Charge(0.1)
			} else {
				r.Charge(0.001)
			}
			r.Migrate()
		}
		after[r.ID()] = r.PE()
	}, Options{Migratable: true, StateBytes: 1 << 16})
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := range after {
		if after[i] != before[i] {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("load balancing never migrated a rank")
	}
	// Heavy ranks should no longer share PEs pairwise.
	heavyPEs := map[int]int{}
	for i := 0; i < 4; i++ {
		heavyPEs[after[i]]++
	}
	maxHeavy := 0
	for _, c := range heavyPEs {
		if c > maxHeavy {
			maxHeavy = c
		}
	}
	if maxHeavy > 2 {
		t.Fatalf("after LB a PE still hosts %d heavy ranks: %v", maxHeavy, after)
	}
}

func TestMigrationSpeedsUpImbalancedJob(t *testing.T) {
	run := func(migratable bool) float64 {
		rt := newRT(4)
		rt.SetBalancer(lb.Greedy{})
		const n = 8
		err := Run(rt, n, func(r *Rank) {
			for it := 0; it < 10; it++ {
				if r.ID() < 2 { // two heavy ranks start on PE 0
					r.Charge(0.05)
				} else {
					r.Charge(0.005)
				}
				r.Migrate()
				r.Barrier()
			}
		}, Options{Migratable: migratable})
		if err != nil {
			t.Fatal(err)
		}
		return float64(rt.Now())
	}
	noLB := run(false)
	withLB := run(true)
	if withLB >= noLB*0.85 {
		t.Fatalf("migration did not help: %v vs %v", withLB, noLB)
	}
}

func TestSendrecv(t *testing.T) {
	rt := newRT(2)
	ok := make([]bool, 2)
	err := Run(rt, 2, func(r *Rank) {
		peer := 1 - r.ID()
		v, src := r.Sendrecv(peer, 1, r.ID()*11, 8, peer, 1)
		ok[r.ID()] = v.(int) == peer*11 && src == peer
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !ok[0] || !ok[1] {
		t.Fatal("sendrecv exchange failed")
	}
}

func TestPerOpOverheadSlowsJob(t *testing.T) {
	run := func(ov float64) float64 {
		rt := newRT(2)
		if err := Run(rt, 4, func(r *Rank) {
			for i := 0; i < 50; i++ {
				r.Barrier()
			}
		}, Options{PerOpOverhead: ov}); err != nil {
			t.Fatal(err)
		}
		return float64(rt.Now())
	}
	if native, virt := run(0), run(5e-6); virt <= native {
		t.Fatalf("AMPI overhead not modeled: %v vs %v", virt, native)
	}
}

func TestDeterministicTiming(t *testing.T) {
	run := func() float64 {
		rt := newRT(4)
		if err := Run(rt, 8, func(r *Rank) {
			for i := 0; i < 5; i++ {
				r.Charge(1e-3 * float64(r.ID()%3))
				r.Send((r.ID()+1)%8, 0, i, 64)
				r.Recv(AnySource, 0)
				r.Barrier()
			}
		}, Options{}); err != nil {
			t.Fatal(err)
		}
		return float64(rt.Now())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic AMPI timing: %v vs %v", a, b)
	}
}
