package projections

import (
	"bytes"
	"strings"
	"testing"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/machine"
	"charmgo/internal/pup"
)

func testRuntime(t *testing.T, pes int) *charm.Runtime {
	t.Helper()
	return charm.New(machine.New(machine.Testbed(pes)))
}

// echoChare is a stateless test chare.
type echoChare struct{}

func (e *echoChare) Pup(p *pup.Pup) {}

// echo app: element 0 pings element 1 n times; each ping costs fixed
// virtual compute.
func runEcho(rt *charm.Runtime, n int) {
	const epPing = 0
	var arr *charm.Array
	arr = rt.DeclareArray("echo", func() charm.Chare { return &echoChare{} },
		[]charm.Handler{func(obj charm.Chare, ctx *charm.Ctx, msg any) {
			left := msg.(int)
			ctx.Charge(1e-6)
			if left <= 0 {
				ctx.Exit()
				return
			}
			dst := charm.Idx1(1 - ctx.Index().I())
			ctx.Send(arr, dst, epPing, left-1)
		}},
		charm.ArrayOpts{EntryNames: []string{"ping"}})
	arr.InsertOn(charm.Idx1(0), &echoChare{}, 0)
	arr.InsertOn(charm.Idx1(1), &echoChare{}, rt.NumPEs()-1)
	rt.Boot(func(ctx *charm.Ctx) { ctx.Send(arr, charm.Idx1(0), epPing, n) })
	rt.Run()
}

func TestTracerRecordsEcho(t *testing.T) {
	rt := testRuntime(t, 2)
	tr := Attach(rt, Options{})
	runEcho(rt, 10)

	events := tr.Events()
	if len(events) == 0 {
		t.Fatal("no events recorded")
	}
	// IDs are dense and ordered.
	for i, e := range events {
		if e.ID != uint64(i+1) {
			t.Fatalf("event %d has ID %d, want %d", i, e.ID, i+1)
		}
	}
	counts := map[Kind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	// 11 pings (driver send + 10 forwards) => 11 sends, recvs, executions.
	if counts[KMsgSend] != 11 || counts[KMsgRecv] != 11 {
		t.Errorf("send/recv = %d/%d, want 11/11", counts[KMsgSend], counts[KMsgRecv])
	}
	if counts[KEntryBegin] != 11 || counts[KEntryEnd] != 11 {
		t.Errorf("begin/end = %d/%d, want 11/11", counts[KEntryBegin], counts[KEntryEnd])
	}
	if tr.Dropped() != 0 {
		t.Errorf("dropped %d events with ample ring space", tr.Dropped())
	}

	// Causality: every recv references an earlier send; every caused
	// begin references a send.
	at := map[uint64]Kind{}
	for _, e := range events {
		at[e.ID] = e.Kind
	}
	for _, e := range events {
		if e.Kind == KMsgRecv && at[e.Ref] != KMsgSend {
			t.Fatalf("recv #%d references %d (kind %v), want a send", e.ID, e.Ref, at[e.Ref])
		}
		if e.Kind == KEntryBegin && e.Ref != 0 && at[e.Ref] != KMsgSend {
			t.Fatalf("begin #%d references %d (kind %v), want a send", e.ID, e.Ref, at[e.Ref])
		}
	}
}

func TestRingOverflowDropsOldest(t *testing.T) {
	rt := testRuntime(t, 2)
	tr := Attach(rt, Options{RingCap: 8})
	runEcho(rt, 50)

	if tr.Dropped() == 0 {
		t.Fatal("expected drops with an 8-event ring")
	}
	events := tr.Events()
	// Order must survive eviction.
	for i := 1; i < len(events); i++ {
		if events[i].ID <= events[i-1].ID {
			t.Fatalf("events out of order after eviction: %d then %d", events[i-1].ID, events[i].ID)
		}
	}
	if tr.Recorded() != events[len(events)-1].ID {
		t.Errorf("Recorded()=%d, last ID %d", tr.Recorded(), events[len(events)-1].ID)
	}
}

func TestWriteReadLogRoundTrip(t *testing.T) {
	rt := testRuntime(t, 2)
	tr := Attach(rt, Options{})
	runEcho(rt, 5)

	var buf bytes.Buffer
	if err := WriteLog(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	orig := tr.Events()
	if len(back) != len(orig) {
		t.Fatalf("round trip: %d events, want %d", len(back), len(orig))
	}
	for i := range back {
		if back[i] != orig[i] {
			t.Fatalf("event %d differs after round trip:\n  %+v\n  %+v", i, back[i], orig[i])
		}
	}
}

func TestDetachStopsRecording(t *testing.T) {
	rt := testRuntime(t, 2)
	tr := Attach(rt, Options{})
	tr.Detach()
	runEcho(rt, 5)
	if n := tr.Recorded(); n != 0 {
		t.Fatalf("recorded %d events after Detach", n)
	}
}

func TestSummaryMentionsProfileAndPath(t *testing.T) {
	rt := testRuntime(t, 2)
	tr := Attach(rt, Options{})
	runEcho(rt, 10)

	var b strings.Builder
	if err := tr.WriteSummary(&b, 5); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"usage profile", "echo.ping", "critical path", "message latency", "metrics", "rts.msgs_sent"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestEngineEventsRecorded(t *testing.T) {
	rt := testRuntime(t, 2)
	tr := Attach(rt, Options{EngineEvents: true})
	runEcho(rt, 10)

	var phases int
	for _, e := range tr.Events() {
		if e.Kind == KPhaseStart {
			phases++
		}
	}
	if phases == 0 {
		t.Fatal("EngineEvents recorded no phase events on the sequential engine")
	}
	if pb := ComputePhaseParallelism(tr.Events(), 1e-3); len(pb) == 0 {
		t.Fatal("no phase-parallelism buckets")
	}
}

// The zero-tracer fast path: a runtime without hooks must not record and
// must run identically (digest covered by the determinism suite; here we
// assert the nil-path doesn't panic and metrics still work).
func TestUntracedRuntimeMetricsOnly(t *testing.T) {
	rt := testRuntime(t, 2)
	runEcho(rt, 5)
	snap := rt.Metrics().Snapshot()
	if len(snap) == 0 {
		t.Fatal("metrics registry empty")
	}
	found := false
	for _, s := range snap {
		if s.Name == "rts.msgs_delivered" && s.Value > 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("rts.msgs_delivered missing or zero")
	}
	var _ des.Time // keep the des import honest if asserts change
}
