package projections

import (
	"fmt"
	"io"
	"sort"

	"charmgo/internal/des"
)

// EntryStat is one row of the usage profile (Projections' "usage
// profile"): aggregate time and call count per entry method.
type EntryStat struct {
	Name  string   // "array.entry", or the PE-handler name
	Calls int
	Time  des.Time // total virtual execution time
	Max   des.Time // longest single execution
}

// Profile aggregates entry-method executions per entry name, sorted by
// total time (heaviest first; ties by name).
func Profile(events []Event) []EntryStat {
	names := []string{}
	stats := map[string]*EntryStat{}
	// Per-PE stack of open begins: an EntryEnd closes its PE's innermost
	// open execution. Executions on one PE never interleave.
	open := map[int][]Event{}
	for _, e := range events {
		switch e.Kind {
		case KEntryBegin:
			open[e.PE] = append(open[e.PE], e)
		case KEntryEnd:
			st := open[e.PE]
			if len(st) == 0 {
				continue
			}
			b := st[len(st)-1]
			open[e.PE] = st[:len(st)-1]
			name := b.Name()
			s, ok := stats[name]
			if !ok {
				s = &EntryStat{Name: name}
				stats[name] = s
				names = append(names, name)
			}
			d := e.At - b.At
			s.Calls++
			s.Time += d
			if d > s.Max {
				s.Max = d
			}
		}
	}
	out := make([]EntryStat, 0, len(names))
	for _, n := range names {
		out = append(out, *stats[n])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// LatencyHist is a log-scale histogram of message latencies (send stamp to
// scheduler-queue arrival).
type LatencyHist struct {
	Count   int
	Mean    des.Time
	Max     des.Time
	Buckets []LatBucket
}

// LatBucket counts messages with latency < Upper (the last bucket is
// unbounded).
type LatBucket struct {
	Upper des.Time // exclusive; des.Forever for the overflow bucket
	Count int
}

var latBounds = []des.Time{1e-6, 10e-6, 100e-6, 1e-3, 10e-3, des.Forever}

// MessageLatency builds the latency histogram over all send/recv pairs.
// A message forwarded by the location manager counts once per arrival,
// with the latency measured from the original send.
func MessageLatency(events []Event) LatencyHist {
	h := LatencyHist{Buckets: make([]LatBucket, len(latBounds))}
	for i, b := range latBounds {
		h.Buckets[i].Upper = b
	}
	sendAt := map[uint64]des.Time{}
	var total des.Time
	for _, e := range events {
		switch e.Kind {
		case KMsgSend:
			sendAt[e.ID] = e.At
		case KMsgRecv:
			t0, ok := sendAt[e.Ref]
			if !ok {
				continue // send dropped from its ring
			}
			lat := e.At - t0
			h.Count++
			total += lat
			if lat > h.Max {
				h.Max = lat
			}
			for i := range h.Buckets {
				if lat < h.Buckets[i].Upper {
					h.Buckets[i].Count++
					break
				}
			}
		}
	}
	if h.Count > 0 {
		h.Mean = total / des.Time(h.Count)
	}
	return h
}

// CriticalPath is the heaviest chain of causally ordered computation: each
// link is "entry execution → message it sent → execution that message
// triggered". Work counts virtual compute along the chain (queueing and
// network time are excluded — this is Projections' computational critical
// path, the lower bound no amount of added parallelism can beat).
type CriticalPath struct {
	Work    des.Time // summed virtual compute along the path
	Span    des.Time // virtual time from the path's first begin to its last end
	Hops    int      // executions on the path
	Entries []string // entry names along the path, root first (capped)
}

// maxPathEntries caps the rendered path.
const maxPathEntries = 64

// ComputeCriticalPath extracts the critical path from a trace. Events must
// be in ID order (as returned by Tracer.Events and ReadLog).
func ComputeCriticalPath(events []Event) CriticalPath {
	type exec struct {
		begin, end des.Time
		cause      uint64 // send that triggered it (0 for roots)
		name       string
	}
	// all collects executions in trace order (the deterministic tie-break);
	// bySend indexes the non-root ones by their triggering send — one
	// message triggers at most one execution.
	var all []*exec
	bySend := map[uint64]*exec{}
	open := map[int][]*exec{}
	// best[s] = heaviest work accumulated strictly before send s was
	// stamped; parent[s] backlinks the chain. Send IDs only grow along a
	// causal chain (Ref < ID), so one pass in ID order is a valid DP.
	best := map[uint64]des.Time{}
	parent := map[uint64]uint64{}

	for _, e := range events {
		switch e.Kind {
		case KEntryBegin:
			x := &exec{begin: e.At, end: -1, cause: e.Ref, name: e.Name()}
			all = append(all, x)
			open[e.PE] = append(open[e.PE], x)
			if e.Ref != 0 {
				bySend[e.Ref] = x
			}
		case KEntryEnd:
			st := open[e.PE]
			if len(st) == 0 {
				continue
			}
			st[len(st)-1].end = e.At
			open[e.PE] = st[:len(st)-1]
		case KMsgSend:
			// Work before this send = work up the chain + compute spent
			// inside the emitting execution before the send was stamped.
			w := best[e.Ref]
			if x, ok := bySend[e.Ref]; ok && e.At > x.begin {
				w += e.At - x.begin
			}
			best[e.ID] = w
			parent[e.ID] = e.Ref
		}
	}

	// The path ends at the execution with the heaviest total; first such
	// execution in trace order wins ties.
	var cp CriticalPath
	var tailExec *exec
	for _, x := range all {
		if x.end < x.begin {
			continue // never closed (trace truncated)
		}
		total := best[x.cause] + (x.end - x.begin)
		if tailExec == nil || total > cp.Work {
			cp.Work = total
			tailExec = x
		}
	}
	if tailExec == nil {
		return cp
	}
	// Walk the send backlinks to the root, collecting entry names. The
	// execution that emitted send s is the one triggered by s's own cause
	// (parent[s]); a parent of 0 means the sender was the driver or a root
	// execution, where the chain ends.
	names := []string{tailExec.name}
	first := tailExec.begin
	cp.Hops = 1
	for s := tailExec.cause; s != 0; {
		ps := parent[s]
		if ps == 0 {
			break
		}
		x, ok := bySend[ps]
		if !ok {
			break
		}
		names = append(names, x.name)
		first = x.begin
		cp.Hops++
		s = ps
	}
	cp.Span = tailExec.end - first
	// Reverse to root-first and cap.
	for i, j := 0, len(names)-1; i < j; i, j = i+1, j-1 {
		names[i], names[j] = names[j], names[i]
	}
	if len(names) > maxPathEntries {
		names = names[len(names)-maxPathEntries:]
	}
	cp.Entries = names
	return cp
}

// PhaseBucket is one window of the phase-parallelism timeline.
type PhaseBucket struct {
	T0     des.Time // window start
	Events int      // sharded events popped in the window
	Shards int      // distinct shards among them
}

// ComputePhaseParallelism buckets the engine's phase-start events into
// fixed windows and counts distinct shards per window — a timeline of how
// much shard-level concurrency the run exposed to the parallel backend.
// Requires a trace recorded with Options.EngineEvents.
func ComputePhaseParallelism(events []Event, window des.Time) []PhaseBucket {
	if window <= 0 {
		window = 1e-3
	}
	var out []PhaseBucket
	var cur *PhaseBucket
	seen := map[int]bool{}
	for _, e := range events {
		if e.Kind != KPhaseStart {
			continue
		}
		t0 := des.Time(int64(float64(e.At)/float64(window))) * window
		if cur == nil || t0 > cur.T0 {
			out = append(out, PhaseBucket{T0: t0})
			cur = &out[len(out)-1]
			seen = map[int]bool{}
		}
		cur.Events++
		if !seen[e.PE] {
			seen[e.PE] = true
			cur.Shards++
		}
	}
	return out
}

// WriteSummary renders the Projections text report: run header, usage
// profile, latency histogram, critical path, phase parallelism, and the
// metrics snapshot.
func (t *Tracer) WriteSummary(w io.Writer, topK int) error {
	events := t.Events()
	return writeSummary(w, events, t.Recorded(), t.Dropped(), topK, t)
}

// WriteSummaryEvents renders the same report from a loaded trace file.
func WriteSummaryEvents(w io.Writer, events []Event, topK int) error {
	return writeSummary(w, events, uint64(len(events)), 0, topK, nil)
}

func writeSummary(w io.Writer, events []Event, recorded, dropped uint64, topK int, t *Tracer) error {
	if topK <= 0 {
		topK = 10
	}
	var last des.Time
	for _, e := range events {
		if e.At > last {
			last = e.At
		}
	}
	fmt.Fprintf(w, "=== projections summary ===\n")
	fmt.Fprintf(w, "events: %d recorded, %d dropped, horizon %.6fs\n", recorded, dropped, float64(last))

	prof := Profile(events)
	fmt.Fprintf(w, "\n--- usage profile (top %d of %d entries) ---\n", min(topK, len(prof)), len(prof))
	fmt.Fprintf(w, "%-36s %10s %14s %14s %14s\n", "entry", "calls", "total(s)", "mean(s)", "max(s)")
	for i, s := range prof {
		if i >= topK {
			break
		}
		mean := des.Time(0)
		if s.Calls > 0 {
			mean = s.Time / des.Time(s.Calls)
		}
		fmt.Fprintf(w, "%-36s %10d %14.9f %14.9f %14.9f\n",
			s.Name, s.Calls, float64(s.Time), float64(mean), float64(s.Max))
	}

	lat := MessageLatency(events)
	fmt.Fprintf(w, "\n--- message latency (%d messages, mean %.9fs, max %.9fs) ---\n",
		lat.Count, float64(lat.Mean), float64(lat.Max))
	for _, b := range lat.Buckets {
		label := fmt.Sprintf("< %gs", float64(b.Upper))
		if b.Upper == des.Forever {
			label = ">= last bound"
		}
		fmt.Fprintf(w, "%-16s %d\n", label, b.Count)
	}

	cp := ComputeCriticalPath(events)
	fmt.Fprintf(w, "\n--- critical path ---\n")
	fmt.Fprintf(w, "work %.9fs over %d executions (span %.9fs)\n",
		float64(cp.Work), cp.Hops, float64(cp.Span))
	if len(cp.Entries) > 0 {
		fmt.Fprintf(w, "path:")
		for _, n := range cp.Entries {
			fmt.Fprintf(w, " %s", n)
		}
		fmt.Fprintf(w, "\n")
	}

	if pb := ComputePhaseParallelism(events, 0); len(pb) > 0 {
		maxShards, sum := 0, 0
		for _, b := range pb {
			if b.Shards > maxShards {
				maxShards = b.Shards
			}
			sum += b.Shards
		}
		fmt.Fprintf(w, "\n--- phase parallelism (%d windows, peak %d shards, mean %.2f) ---\n",
			len(pb), maxShards, float64(sum)/float64(len(pb)))
	}

	if t != nil {
		fmt.Fprintf(w, "\n--- metrics ---\n")
		if err := t.Metrics().WriteText(w); err != nil {
			return err
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
