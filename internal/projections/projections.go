package projections

import (
	"sort"

	"charmgo/internal/charm"
	"charmgo/internal/des"
	"charmgo/internal/projections/metrics"
)

// Options configures a Tracer.
type Options struct {
	// RingCap bounds each per-PE event ring; the oldest events are
	// dropped when a ring overflows (the drop count is reported by
	// Dropped). Default 1<<15 events per ring.
	RingCap int
	// EngineEvents also records the engine's phase-start/commit pipeline
	// events (needed for the phase-parallelism timeline). Off by default:
	// they roughly double the event volume.
	EngineEvents bool
	// SpecEvents also records the optimistic engine's speculation
	// lifecycle (launch/commit/rollback per shard). Off by default: spec
	// events exist only on the optimistic backend, so recording them
	// breaks the byte-identity of a trace against the other backends —
	// they are for studying the Time Warp engine itself. Requires
	// EngineEvents (the sink installation is shared). Within one backend
	// the launch/rollback decisions are driver-deterministic, so traces
	// remain bit-reproducible run to run.
	SpecEvents bool
}

// ring is a bounded circular event buffer.
type ring struct {
	buf     []Event
	next    int // write cursor
	full    bool
	dropped uint64
}

func (r *ring) add(e Event) {
	if len(r.buf) < cap(r.buf) {
		r.buf = append(r.buf, e)
		return
	}
	// Overwrite the oldest event.
	r.full = true
	r.dropped++
	r.buf[r.next] = e
	r.next = (r.next + 1) % len(r.buf)
}

// events returns the ring's contents oldest-first.
func (r *ring) events() []Event {
	if !r.full {
		return r.buf
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// Tracer records runtime and engine events into per-PE rings. It
// implements charm.TraceHooks and des.TraceSink; the runtime calls every
// hook from driver or commit context, so the tracer needs no locks and a
// single monotone ID counter is deterministic.
type Tracer struct {
	rt     *charm.Runtime
	rings  []ring // one per physical PE, plus one driver ring at the end
	nextID uint64
	opts   Options
}

// Attach installs a tracer on a runtime (and, with EngineEvents, on its
// engine). Attach before Run.
func Attach(rt *charm.Runtime, opts Options) *Tracer {
	if opts.RingCap == 0 {
		opts.RingCap = 1 << 15
	}
	t := &Tracer{rt: rt, opts: opts}
	t.rings = make([]ring, rt.MaxPEs()+1)
	for i := range t.rings {
		t.rings[i].buf = make([]Event, 0, opts.RingCap)
	}
	rt.SetTraceHooks(t)
	if opts.EngineEvents {
		if ss, ok := rt.Engine().(des.SinkSetter); ok {
			ss.SetTraceSink(t)
		}
	}
	return t
}

// Detach removes the tracer's hooks from the runtime and engine; the
// recorded events remain readable.
func (t *Tracer) Detach() {
	t.rt.SetTraceHooks(nil)
	if ss, ok := t.rt.Engine().(des.SinkSetter); ok {
		ss.SetTraceSink(nil)
	}
}

// Runtime returns the traced runtime.
func (t *Tracer) Runtime() *charm.Runtime { return t.rt }

// driverRing indexes the ring for events with no PE affinity.
func (t *Tracer) driverRing() int { return len(t.rings) - 1 }

func (t *Tracer) record(ringIdx int, e Event) uint64 {
	t.nextID++
	e.ID = t.nextID
	t.rings[ringIdx].add(e)
	return e.ID
}

// Events returns every recorded event in global emission order (by ID).
func (t *Tracer) Events() []Event {
	var out []Event
	for i := range t.rings {
		out = append(out, t.rings[i].events()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Dropped returns how many events ring overflow discarded.
func (t *Tracer) Dropped() uint64 {
	var n uint64
	for i := range t.rings {
		n += t.rings[i].dropped
	}
	return n
}

// Recorded returns how many events were assigned IDs (kept + dropped).
func (t *Tracer) Recorded() uint64 { return t.nextID }

// Metrics returns the traced runtime's registry.
func (t *Tracer) Metrics() *metrics.Registry { return t.rt.Metrics() }

// ---- charm.TraceHooks ----

// MsgSend records a send and returns its event ID for causal linking.
func (t *Tracer) MsgSend(at des.Time, srcPE, dstPE, size int, cause uint64) uint64 {
	return t.record(srcPE, Event{
		Kind: KMsgSend, At: at, PE: srcPE, Ref: cause,
		A: int64(dstPE), B: int64(size),
	})
}

// MsgRecv records a traced message entering a PE's scheduler queue.
func (t *Tracer) MsgRecv(at des.Time, pe int, sendID uint64, hops int) {
	t.record(pe, Event{Kind: KMsgRecv, At: at, PE: pe, Ref: sendID, A: int64(hops)})
}

// EntryBegin records the start of an entry-method execution.
func (t *Tracer) EntryBegin(at des.Time, pe int, array, entry string, idx charm.Index, cause uint64) {
	t.record(pe, Event{
		Kind: KEntryBegin, At: at, PE: pe, Ref: cause,
		Arr: array, Entry: entry, Idx: idxString(array, idx),
	})
}

// EntryEnd records the completion of an entry-method execution.
func (t *Tracer) EntryEnd(at des.Time, pe int, array, entry string, idx charm.Index, cause uint64) {
	t.record(pe, Event{
		Kind: KEntryEnd, At: at, PE: pe, Ref: cause,
		Arr: array, Entry: entry, Idx: idxString(array, idx),
	})
}

// Migration records one element move.
func (t *Tracer) Migration(at des.Time, array string, idx charm.Index, fromPE, toPE int) {
	t.record(fromPE, Event{
		Kind: KMigration, At: at, PE: fromPE,
		Arr: array, Idx: idx.String(), A: int64(fromPE), B: int64(toPE),
	})
}

// LBStart records the start of a load-balancing round.
func (t *Tracer) LBStart(at des.Time, round, numObjs int) {
	t.record(t.driverRing(), Event{
		Kind: KLBStart, At: at, PE: -1, A: int64(round), B: int64(numObjs),
	})
}

// LBDecision records the strategy's verdict.
func (t *Tracer) LBDecision(at des.Time, strategy string, numMigrations int) {
	t.record(t.driverRing(), Event{
		Kind: KLBDecision, At: at, PE: -1, Entry: strategy, A: int64(numMigrations),
	})
}

// LBDone records the completion of a load-balancing round.
func (t *Tracer) LBDone(at des.Time, round, moved int, duration des.Time) {
	t.record(t.driverRing(), Event{
		Kind: KLBDone, At: at, PE: -1, A: int64(round), B: int64(moved), Dur: duration,
	})
}

// Checkpoint records a checkpoint capture or restore.
func (t *Tracer) Checkpoint(at des.Time, kind string, bytes int) {
	t.record(t.driverRing(), Event{
		Kind: KCheckpoint, At: at, PE: -1, Entry: kind, A: int64(bytes),
	})
}

// TramBuffer records an item buffered by TRAM.
func (t *Tracer) TramBuffer(at des.Time, pe, depth int) {
	t.record(pe, Event{Kind: KTramBuffer, At: at, PE: pe, A: int64(depth)})
}

// Fault records one fault-injection or recovery event.
func (t *Tracer) Fault(at des.Time, kind string, pe int) {
	ringIdx := t.driverRing()
	if pe >= 0 && pe < len(t.rings)-1 {
		ringIdx = pe
	}
	t.record(ringIdx, Event{Kind: KFault, At: at, PE: pe, Entry: kind})
}

// TramFlush records an aggregated batch leaving a PE.
func (t *Tracer) TramFlush(at des.Time, pe, items int, timed bool) {
	e := Event{Kind: KTramFlush, At: at, PE: pe, A: int64(items)}
	if timed {
		e.B = 1
	}
	t.record(pe, e)
}

// ---- des.TraceSink ----

// PhaseStart records the pop of a sharded engine event.
func (t *Tracer) PhaseStart(shard int, at des.Time) {
	t.record(t.shardRing(shard), Event{Kind: KPhaseStart, At: at, PE: shard})
}

// PhaseDone records the completion of a sharded event's commit.
func (t *Tracer) PhaseDone(shard int, at des.Time) {
	t.record(t.shardRing(shard), Event{Kind: KPhaseCommit, At: at, PE: shard})
}

// shardRing stores a shard's pipeline events alongside the PEs; shard ids
// never exceed the PE count (a shard is a node).
func (t *Tracer) shardRing(shard int) int {
	if shard >= 0 && shard < len(t.rings)-1 {
		return shard
	}
	return t.driverRing()
}

// ---- des.SpecSink (optimistic backend; gated by Options.SpecEvents) ----

// SpecLaunch records a shard starting to execute an event speculatively.
func (t *Tracer) SpecLaunch(shard int, at des.Time) {
	if !t.opts.SpecEvents {
		return
	}
	t.record(t.shardRing(shard), Event{Kind: KSpecLaunch, At: at, PE: shard})
}

// SpecCommit records a speculation surviving to its pop and committing.
func (t *Tracer) SpecCommit(shard int, at des.Time) {
	if !t.opts.SpecEvents {
		return
	}
	t.record(t.shardRing(shard), Event{Kind: KSpecCommit, At: at, PE: shard})
}

// SpecRollback records a straggler squashing a shard's speculation.
func (t *Tracer) SpecRollback(shard int, at des.Time) {
	if !t.opts.SpecEvents {
		return
	}
	t.record(t.shardRing(shard), Event{Kind: KSpecRollback, At: at, PE: shard})
}

// idxString renders an element index, empty for PE handlers (array "").
func idxString(array string, idx charm.Index) string {
	if array == "" {
		return ""
	}
	return idx.String()
}
