// Package projections implements the Projections-style tracing and
// analysis layer: a deterministic event log of everything the RTS does —
// entry-method executions, message sends and receives linked by causal
// event IDs, migrations, load-balancing rounds, checkpoints, TRAM
// aggregation, and the parallel engine's phase pipeline — plus the
// analyses (usage profile, message-latency histogram, critical path,
// phase-parallelism timeline) and exporters (Chrome trace-event JSON for
// Perfetto, text summary, CCS live queries) built on it.
//
// All timestamps are virtual (des.Time); the recorder never consults the
// wall clock or iterates a map, so a traced run is bit-for-bit
// reproducible and the log of a sequential run is byte-identical to the
// log of the same run on the parallel backend.
package projections

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"charmgo/internal/des"
)

// Kind classifies one trace event.
type Kind uint8

const (
	// KMsgSend: PE = source, A = destination PE, B = bytes, Ref = cause.
	KMsgSend Kind = iota + 1
	// KMsgRecv: PE = destination, Ref = the send's ID, A = hops.
	KMsgRecv
	// KEntryBegin / KEntryEnd bracket one entry-method execution:
	// Arr/Entry/Idx name it, Ref is the triggering send's ID.
	KEntryBegin
	KEntryEnd
	// KMigration: Arr/Idx name the element, A = from PE, B = to PE.
	KMigration
	// KLBStart: A = round, B = objects. KLBDecision: Entry = strategy,
	// A = proposed migrations. KLBDone: A = round, B = moved, Dur = span.
	KLBStart
	KLBDecision
	KLBDone
	// KCheckpoint: Entry = kind ("capture", "restore"), A = bytes.
	KCheckpoint
	// KTramBuffer: A = buffer depth after the append.
	// KTramFlush: A = items in the batch, B = 1 for a timed flush.
	KTramBuffer
	KTramFlush
	// KPhaseStart / KPhaseCommit are engine pipeline events: PE = shard.
	KPhaseStart
	KPhaseCommit
	// KFault: Entry = fault kind ("crash", "drop", "delay", "straggler",
	// "detect", "rollback", "recover"), PE = affected PE (-1 machine-wide).
	KFault
	// KSpecLaunch / KSpecCommit / KSpecRollback are Time Warp speculation
	// lifecycle events from the optimistic engine: PE = shard, At = the
	// speculated event's timestamp. Recorded only with Options.SpecEvents
	// (they exist on no other backend, so they are excluded from the
	// cross-backend byte-identity contract).
	KSpecLaunch
	KSpecCommit
	KSpecRollback
)

var kindNames = [...]string{
	KMsgSend:    "send",
	KMsgRecv:    "recv",
	KEntryBegin: "begin",
	KEntryEnd:   "end",
	KMigration:  "migrate",
	KLBStart:    "lb-start",
	KLBDecision: "lb-decision",
	KLBDone:     "lb-done",
	KCheckpoint: "checkpoint",
	KTramBuffer: "tram-buffer",
	KTramFlush:  "tram-flush",
	KPhaseStart:   "phase-start",
	KPhaseCommit:  "phase-commit",
	KFault:        "fault",
	KSpecLaunch:   "spec-launch",
	KSpecCommit:   "spec-commit",
	KSpecRollback: "spec-rollback",
}

// String returns the kind's log token.
func (k Kind) String() string {
	if int(k) < len(kindNames) && kindNames[k] != "" {
		return kindNames[k]
	}
	return fmt.Sprintf("kind%d", k)
}

// Event is one record of the trace. IDs are assigned from a single
// monotone counter in emission order, so sorting a trace by ID
// reconstructs the exact global order of the run.
type Event struct {
	ID    uint64   `json:"id"`
	Kind  Kind     `json:"k"`
	At    des.Time `json:"t"`
	PE    int      `json:"pe"`              // -1 for driver-context events
	Ref   uint64   `json:"ref,omitempty"`   // causal link (see Kind docs)
	Arr   string   `json:"arr,omitempty"`   // chare array name
	Entry string   `json:"ep,omitempty"`    // entry/handler/strategy name
	Idx   string   `json:"idx,omitempty"`   // element index, rendered
	A     int64    `json:"a,omitempty"`     // kind-specific
	B     int64    `json:"b,omitempty"`     // kind-specific
	Dur   des.Time `json:"dur,omitempty"`   // kind-specific span
}

// Name renders the event's subject: "array.entry" for entry events, the
// bare entry/kind token otherwise.
func (e Event) Name() string {
	if e.Arr != "" {
		return e.Arr + "." + e.Entry
	}
	if e.Entry != "" {
		return e.Entry
	}
	return e.Kind.String()
}

// WriteLog writes events as JSON lines — the trace's canonical on-disk
// form. Two runs are equivalent exactly when their WriteLog bytes match.
func WriteLog(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range events {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadLog parses a JSON-lines trace written by WriteLog.
func ReadLog(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(line, &e); err != nil {
			return nil, fmt.Errorf("projections: bad trace line %q: %w", line, err)
		}
		out = append(out, e)
	}
	return out, sc.Err()
}
