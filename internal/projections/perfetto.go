package projections

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"charmgo/internal/des"
)

// The Chrome trace-event format (Perfetto's legacy JSON input): a
// traceEvents array of phase records. We emit one process per event
// domain — pid 0 holds one thread ("track") per virtual PE with complete
// ("X") spans for entry executions and instant ("i") markers for
// migrations and TRAM activity; pid 1 holds the driver's LB/checkpoint
// markers; pid 2 holds one track per engine shard with phase pipeline
// markers. Timestamps are virtual microseconds.

const (
	pidPEs    = 0
	pidDriver = 1
	pidEngine = 2
)

// traceEvent is one Chrome trace-event record.
type traceEvent struct {
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Name string         `json:"name"`
	S    string         `json:"s,omitempty"` // instant scope
	Args map[string]any `json:"args,omitempty"`
}

func us(t des.Time) float64 { return float64(t) * 1e6 }

// WritePerfetto renders a trace as Chrome trace-event JSON loadable in
// Perfetto (ui.perfetto.dev) or chrome://tracing.
func WritePerfetto(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	if _, err := bw.WriteString("{\"traceEvents\":[\n"); err != nil {
		return err
	}
	first := true
	emit := func(te traceEvent) error {
		if !first {
			if _, err := bw.WriteString(","); err != nil {
				return err
			}
		}
		first = false
		return enc.Encode(te) // Encode appends the newline separator
	}

	// Metadata: name the processes and the PE/shard tracks that appear.
	if err := emit(traceEvent{Ph: "M", Pid: pidPEs, Name: "process_name",
		Args: map[string]any{"name": "virtual PEs"}}); err != nil {
		return err
	}
	if err := emit(traceEvent{Ph: "M", Pid: pidDriver, Name: "process_name",
		Args: map[string]any{"name": "RTS driver"}}); err != nil {
		return err
	}
	seenPE := map[int]bool{}
	seenShard := map[int]bool{}
	namedEngine := false
	for _, e := range events {
		switch e.Kind {
		case KPhaseStart, KPhaseCommit:
			if !namedEngine {
				namedEngine = true
				if err := emit(traceEvent{Ph: "M", Pid: pidEngine, Name: "process_name",
					Args: map[string]any{"name": "engine shards"}}); err != nil {
					return err
				}
			}
			if !seenShard[e.PE] {
				seenShard[e.PE] = true
				if err := emit(traceEvent{Ph: "M", Pid: pidEngine, Tid: e.PE, Name: "thread_name",
					Args: map[string]any{"name": fmt.Sprintf("shard %d", e.PE)}}); err != nil {
					return err
				}
			}
		default:
			if e.PE >= 0 && !seenPE[e.PE] {
				seenPE[e.PE] = true
				if err := emit(traceEvent{Ph: "M", Pid: pidPEs, Tid: e.PE, Name: "thread_name",
					Args: map[string]any{"name": fmt.Sprintf("PE %d", e.PE)}}); err != nil {
					return err
				}
			}
		}
	}

	// Body: pair begins with ends per PE, render the rest directly.
	open := map[int][]Event{}
	for _, e := range events {
		var te traceEvent
		switch e.Kind {
		case KEntryBegin:
			open[e.PE] = append(open[e.PE], e)
			continue
		case KEntryEnd:
			st := open[e.PE]
			if len(st) == 0 {
				continue
			}
			b := st[len(st)-1]
			open[e.PE] = st[:len(st)-1]
			dur := us(e.At - b.At)
			te = traceEvent{Ph: "X", Pid: pidPEs, Tid: e.PE, Ts: us(b.At), Dur: &dur,
				Name: b.Name(), Args: map[string]any{"cause": b.Ref}}
			if b.Idx != "" {
				te.Args["idx"] = b.Idx
			}
		case KMigration:
			te = traceEvent{Ph: "i", Pid: pidPEs, Tid: e.PE, Ts: us(e.At), S: "p",
				Name: fmt.Sprintf("migrate %s%s -> PE %d", e.Arr, e.Idx, e.B)}
		case KTramFlush:
			kind := "full"
			if e.B != 0 {
				kind = "timed"
			}
			te = traceEvent{Ph: "i", Pid: pidPEs, Tid: e.PE, Ts: us(e.At), S: "t",
				Name: fmt.Sprintf("tram flush (%d items, %s)", e.A, kind)}
		case KLBStart:
			te = traceEvent{Ph: "i", Pid: pidDriver, Ts: us(e.At), S: "g",
				Name: fmt.Sprintf("LB round %d start (%d objs)", e.A, e.B)}
		case KLBDecision:
			te = traceEvent{Ph: "i", Pid: pidDriver, Ts: us(e.At), S: "g",
				Name: fmt.Sprintf("LB decision %s (%d migrations)", e.Entry, e.A)}
		case KLBDone:
			te = traceEvent{Ph: "i", Pid: pidDriver, Ts: us(e.At), S: "g",
				Name: fmt.Sprintf("LB round %d done (%d moved)", e.A, e.B)}
		case KCheckpoint:
			te = traceEvent{Ph: "i", Pid: pidDriver, Ts: us(e.At), S: "g",
				Name: fmt.Sprintf("checkpoint %s (%d bytes)", e.Entry, e.A)}
		case KFault:
			if e.PE >= 0 {
				te = traceEvent{Ph: "i", Pid: pidPEs, Tid: e.PE, Ts: us(e.At), S: "p",
					Name: fmt.Sprintf("fault: %s PE %d", e.Entry, e.PE)}
			} else {
				te = traceEvent{Ph: "i", Pid: pidDriver, Ts: us(e.At), S: "g",
					Name: "fault: " + e.Entry}
			}
		case KPhaseStart:
			te = traceEvent{Ph: "i", Pid: pidEngine, Tid: e.PE, Ts: us(e.At), S: "t",
				Name: "phase"}
		default:
			// Sends, receives, buffer appends, and phase commits add bulk
			// without adding a visual; causality is in the span args.
			continue
		}
		if err := emit(te); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]}\n"); err != nil {
		return err
	}
	return bw.Flush()
}
