package projections

import (
	"math"
	"testing"

	"charmgo/internal/des"
)

// synthetic trace: two PEs, a causal chain a.x -> a.y across PEs, with a
// concurrent unrelated execution on PE 0.
//
//	#1 send   pe0 t=0           (driver-caused, ref=0)
//	#2 recv   pe0 t=0    ref=1
//	#3 begin  pe0 t=0    a.x    ref=1
//	#4 send   pe0 t=6µs  ref=1  (stamped 6µs into a.x)
//	#5 end    pe0 t=10µs a.x
//	#6 recv   pe1 t=12µs ref=4  (6µs in flight)
//	#7 begin  pe1 t=12µs a.y    ref=4
//	#8 end    pe1 t=20µs a.y
//	#9 begin  pe0 t=1µs  b.z    ref=0 (uncaused, concurrent)
//	#10 end   pe0 t=3µs  b.z
func synthetic() []Event {
	us := func(n float64) des.Time { return des.Time(n * 1e-6) }
	return []Event{
		{ID: 1, Kind: KMsgSend, At: 0, PE: 0, A: 0, B: 64},
		{ID: 2, Kind: KMsgRecv, At: 0, PE: 0, Ref: 1},
		{ID: 3, Kind: KEntryBegin, At: 0, PE: 0, Arr: "a", Entry: "x", Ref: 1},
		{ID: 4, Kind: KMsgSend, At: us(6), PE: 0, A: 1, B: 64, Ref: 1},
		{ID: 5, Kind: KEntryEnd, At: us(10), PE: 0, Arr: "a", Entry: "x", Ref: 1},
		{ID: 6, Kind: KMsgRecv, At: us(12), PE: 1, Ref: 4},
		{ID: 7, Kind: KEntryBegin, At: us(12), PE: 1, Arr: "a", Entry: "y", Ref: 4},
		{ID: 8, Kind: KEntryEnd, At: us(20), PE: 1, Arr: "a", Entry: "y", Ref: 4},
		{ID: 9, Kind: KEntryBegin, At: us(1), PE: 0, Arr: "b", Entry: "z"},
		{ID: 10, Kind: KEntryEnd, At: us(3), PE: 0, Arr: "b", Entry: "z"},
	}
}

func approx(a, b des.Time) bool {
	return math.Abs(float64(a)-float64(b)) < 1e-12
}

func TestProfile(t *testing.T) {
	prof := Profile(synthetic())
	if len(prof) != 3 {
		t.Fatalf("got %d profile rows, want 3: %+v", len(prof), prof)
	}
	// Sorted by total time desc: a.x (10µs), a.y (8µs), b.z (2µs).
	want := []struct {
		name string
		time des.Time
	}{
		{"a.x", 10e-6}, {"a.y", 8e-6}, {"b.z", 2e-6},
	}
	for i, w := range want {
		if prof[i].Name != w.name || !approx(prof[i].Time, w.time) || prof[i].Calls != 1 {
			t.Errorf("row %d = %+v, want name=%s time=%v calls=1", i, prof[i], w.name, w.time)
		}
	}
}

func TestProfileNestedPEHandlers(t *testing.T) {
	// b.z runs nested inside a.x on the same PE (LIFO pairing).
	us := func(n float64) des.Time { return des.Time(n * 1e-6) }
	events := []Event{
		{ID: 1, Kind: KEntryBegin, At: 0, PE: 0, Entry: "outer"},
		{ID: 2, Kind: KEntryBegin, At: us(2), PE: 0, Entry: "inner"},
		{ID: 3, Kind: KEntryEnd, At: us(4), PE: 0, Entry: "inner"},
		{ID: 4, Kind: KEntryEnd, At: us(10), PE: 0, Entry: "outer"},
	}
	prof := Profile(events)
	if len(prof) != 2 {
		t.Fatalf("got %d rows, want 2", len(prof))
	}
	if prof[0].Name != "outer" || !approx(prof[0].Time, 10e-6) {
		t.Errorf("outer: %+v", prof[0])
	}
	if prof[1].Name != "inner" || !approx(prof[1].Time, 2e-6) {
		t.Errorf("inner: %+v", prof[1])
	}
}

func TestMessageLatency(t *testing.T) {
	h := MessageLatency(synthetic())
	if h.Count != 2 {
		t.Fatalf("count = %d, want 2 (send #1 -> recv #2, send #4 -> recv #6)", h.Count)
	}
	// Latencies: 0s and 6µs -> mean 3µs, max 6µs.
	if !approx(h.Mean, 3e-6) || !approx(h.Max, 6e-6) {
		t.Errorf("mean=%v max=%v, want 3µs / 6µs", h.Mean, h.Max)
	}
	var total int
	for _, b := range h.Buckets {
		total += b.Count
	}
	if total != 2 {
		t.Errorf("bucket counts sum to %d, want 2", total)
	}
}

func TestComputeCriticalPath(t *testing.T) {
	cp := ComputeCriticalPath(synthetic())
	// Work before send #4 = 6µs spent inside a.x; the chain through a.y
	// therefore carries 6µs + a.y's 8µs = 14µs, which beats the 10µs chain
	// ending at a.x and the 2µs root b.z. Queueing/network time (the 6µs of
	// flight) is excluded from Work but inside Span.
	if !approx(cp.Work, 14e-6) {
		t.Errorf("work = %v, want 14µs", cp.Work)
	}
	if cp.Hops != 2 {
		t.Errorf("hops = %d, want 2 executions (a.x -> a.y)", cp.Hops)
	}
	if !approx(cp.Span, 20e-6) {
		t.Errorf("span = %v, want 20µs (a.x begin to a.y end)", cp.Span)
	}
	want := []string{"a.x", "a.y"}
	if len(cp.Entries) != 2 || cp.Entries[0] != want[0] || cp.Entries[1] != want[1] {
		t.Errorf("path entries = %v, want %v", cp.Entries, want)
	}
}

func TestComputePhaseParallelism(t *testing.T) {
	us := func(n float64) des.Time { return des.Time(n * 1e-6) }
	events := []Event{
		{ID: 1, Kind: KPhaseStart, At: us(100), PE: 0},
		{ID: 2, Kind: KPhaseStart, At: us(200), PE: 1},
		{ID: 3, Kind: KPhaseStart, At: us(300), PE: 0},
		{ID: 4, Kind: KPhaseStart, At: des.Time(2.5e-3), PE: 2},
	}
	buckets := ComputePhaseParallelism(events, 1e-3)
	if len(buckets) != 2 {
		t.Fatalf("got %d buckets, want 2: %+v", len(buckets), buckets)
	}
	if buckets[0].Events != 3 || buckets[0].Shards != 2 {
		t.Errorf("bucket 0 = %+v, want 3 events on 2 shards", buckets[0])
	}
	if buckets[1].Events != 1 || buckets[1].Shards != 1 {
		t.Errorf("bucket 1 = %+v, want 1 event on 1 shard", buckets[1])
	}
}

func TestAnalyzeEmptyTrace(t *testing.T) {
	if p := Profile(nil); len(p) != 0 {
		t.Errorf("Profile(nil) = %+v", p)
	}
	if h := MessageLatency(nil); h.Count != 0 {
		t.Errorf("MessageLatency(nil) = %+v", h)
	}
	cp := ComputeCriticalPath(nil)
	if cp.Hops != 0 || cp.Work != 0 {
		t.Errorf("ComputeCriticalPath(nil) = %+v", cp)
	}
	if b := ComputePhaseParallelism(nil, 0); len(b) != 0 {
		t.Errorf("ComputePhaseParallelism(nil) = %+v", b)
	}
}
