package projections

import (
	"fmt"
	"strconv"
	"strings"

	"charmgo/internal/ccs"
)

// InstallCCS registers a "trace" handler on a CCS server for live queries
// against a running traced job:
//
//	{"handler":"trace","args":"summary"}      full text report
//	{"handler":"trace","args":"profile 5"}    top-5 usage profile
//	{"handler":"trace","args":"critical"}     critical path
//	{"handler":"trace","args":"metrics"}      metrics snapshot
//	{"handler":"trace","args":"events 20"}    last 20 events, rendered
//
// CCS handlers run on the simulation goroutine, so reads are consistent.
func InstallCCS(s *ccs.Server, t *Tracer) {
	s.Register("trace", func(args string) (string, error) {
		fields := strings.Fields(args)
		cmd := "summary"
		if len(fields) > 0 {
			cmd = fields[0]
		}
		n := 10
		if len(fields) > 1 {
			v, err := strconv.Atoi(fields[1])
			if err != nil || v <= 0 {
				return "", fmt.Errorf("trace: bad count %q", fields[1])
			}
			n = v
		}
		var b strings.Builder
		switch cmd {
		case "summary":
			if err := t.WriteSummary(&b, n); err != nil {
				return "", err
			}
		case "profile":
			prof := Profile(t.Events())
			for i, s := range prof {
				if i >= n {
					break
				}
				fmt.Fprintf(&b, "%s calls=%d total=%.9fs max=%.9fs\n",
					s.Name, s.Calls, float64(s.Time), float64(s.Max))
			}
		case "critical":
			cp := ComputeCriticalPath(t.Events())
			fmt.Fprintf(&b, "work=%.9fs hops=%d span=%.9fs\n",
				float64(cp.Work), cp.Hops, float64(cp.Span))
		case "metrics":
			if err := t.Metrics().WriteText(&b); err != nil {
				return "", err
			}
		case "events":
			events := t.Events()
			if len(events) > n {
				events = events[len(events)-n:]
			}
			for _, e := range events {
				fmt.Fprintf(&b, "#%d t=%.9fs pe=%d %s %s ref=%d\n",
					e.ID, float64(e.At), e.PE, e.Kind, e.Name(), e.Ref)
			}
		default:
			return "", fmt.Errorf("trace: unknown query %q (want summary|profile|critical|metrics|events)", cmd)
		}
		return b.String(), nil
	})
}
