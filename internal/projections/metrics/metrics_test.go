package metrics

import (
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("a.gauge")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	if r.Gauge("a.gauge") != g {
		t.Fatal("Gauge is not get-or-create")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(3)
	r.Gauge("m.mid").Set(7)
	r.GaugeFunc("a.first", func() float64 { return 1 })
	snap := r.Snapshot()
	if len(snap) != 3 || r.Len() != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap))
	}
	names := []string{snap[0].Name, snap[1].Name, snap[2].Name}
	if names[0] != "a.first" || names[1] != "m.mid" || names[2] != "z.last" {
		t.Fatalf("snapshot not sorted: %v", names)
	}
	if snap[0].Value != 1 || snap[1].Value != 7 || snap[2].Value != 3 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
}

func TestGaugeFuncLastWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("x", func() float64 { return 1 })
	r.GaugeFunc("x", func() float64 { return 2 })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 2 {
		t.Fatalf("last registration should win: %+v", snap)
	}
}

func TestTimer(t *testing.T) {
	r := NewRegistry()
	tm := r.Timer("wall.phase")
	tm.ObserveNs(100)
	tm.ObserveNs(300)
	tm.ObserveNs(200)
	if tm.Count() != 3 || tm.SumNs() != 600 || tm.MaxNs() != 300 {
		t.Fatalf("timer = count %d sum %d max %d, want 3/600/300", tm.Count(), tm.SumNs(), tm.MaxNs())
	}
	if r.Timer("wall.phase") != tm {
		t.Fatal("Timer is not get-or-create")
	}
	snap := r.Snapshot()
	want := map[string]float64{"wall.phase.count": 3, "wall.phase.sum_ns": 600, "wall.phase.max_ns": 300}
	for _, s := range snap {
		if v, ok := want[s.Name]; !ok || v != s.Value {
			t.Fatalf("unexpected sample %+v", s)
		}
		delete(want, s.Name)
	}
	if len(want) != 0 {
		t.Fatalf("missing samples: %v", want)
	}
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat")
	for _, v := range []uint64{0, 1, 1, 5, 1000} {
		h.Observe(v)
	}
	if h.Count() != 5 || h.Sum() != 1007 {
		t.Fatalf("hist = count %d sum %d, want 5/1007", h.Count(), h.Sum())
	}
	var m Metric
	for _, em := range r.Export() {
		if em.Name == "lat" {
			m = em
		}
	}
	if m.Kind != KindHistogram || len(m.Buckets) == 0 {
		t.Fatalf("histogram export missing buckets: %+v", m)
	}
	last := m.Buckets[len(m.Buckets)-1]
	if last.Count != 5 {
		t.Fatalf("final cumulative bucket = %d, want 5", last.Count)
	}
	for i := 1; i < len(m.Buckets); i++ {
		if m.Buckets[i].Count < m.Buckets[i-1].Count || m.Buckets[i].Le <= m.Buckets[i-1].Le {
			t.Fatalf("buckets not cumulative/increasing: %+v", m.Buckets)
		}
	}
}

func TestExportDeterministicOrder(t *testing.T) {
	r := NewRegistry()
	r.Counter("c.z").Inc()
	r.Gauge("b.g").Set(1)
	r.Timer("a.t").ObserveNs(1)
	r.Histogram("d.h").Observe(1)
	r.GaugeFunc("e.f", func() float64 { return 9 })
	first := r.Export()
	for i := 0; i < 10; i++ {
		again := r.Export()
		if len(again) != len(first) {
			t.Fatalf("export length changed: %d vs %d", len(again), len(first))
		}
		for j := range again {
			if again[j].Name != first[j].Name {
				t.Fatalf("export order changed at %d: %q vs %q", j, again[j].Name, first[j].Name)
			}
		}
	}
	for i := 1; i < len(first); i++ {
		if first[i].Name <= first[i-1].Name {
			t.Fatalf("export not sorted: %q before %q", first[i-1].Name, first[i].Name)
		}
	}
}

// TestConcurrentHammer drives every metric type, including get-or-create
// map resolution, from parallel workers; run under -race it proves the
// registry is safe for side-band (telemetry) mutation.
func TestConcurrentHammer(t *testing.T) {
	r := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				r.Counter("hammer.count").Inc()
				r.Gauge("hammer.gauge").Set(float64(i))
				r.Timer("hammer.timer").ObserveNs(int64(i))
				r.Histogram("hammer.hist").Observe(uint64(i))
				if i%100 == 0 {
					r.Snapshot()
					r.Export()
				}
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("hammer.count").Value(); got != workers*perWorker {
		t.Fatalf("counter = %d, want %d", got, workers*perWorker)
	}
	if got := r.Timer("hammer.timer").Count(); got != workers*perWorker {
		t.Fatalf("timer count = %d, want %d", got, workers*perWorker)
	}
	if got := r.Timer("hammer.timer").MaxNs(); got != perWorker-1 {
		t.Fatalf("timer max = %d, want %d", got, perWorker-1)
	}
	if got := r.Histogram("hammer.hist").Count(); got != workers*perWorker {
		t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("rts.msgs_sent").Add(7)
	r.Gauge("optsim.gvt").Set(1.5)
	r.Timer("wall.phase").ObserveNs(2e9)
	r.Histogram("wall.lat").Observe(3)
	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE rts_msgs_sent counter", "rts_msgs_sent 7",
		"# TYPE optsim_gvt gauge", "optsim_gvt 1.5",
		"wall_phase_seconds_count 1", "wall_phase_seconds_sum 2",
		"# TYPE wall_lat histogram", `wall_lat_bucket{le="+Inf"} 1`, "wall_lat_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}

func TestWriteJSON(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(2)
	r.Histogram("h").Observe(10)
	var b strings.Builder
	if err := r.WriteJSON(&b); err != nil {
		t.Fatal(err)
	}
	var ms []Metric
	if err := json.Unmarshal([]byte(b.String()), &ms); err != nil {
		t.Fatalf("JSON export does not parse: %v\n%s", err, b.String())
	}
	if len(ms) != 2 || ms[0].Name != "a" || ms[0].Kind != KindCounter || ms[1].Kind != KindHistogram {
		t.Fatalf("unexpected JSON export: %+v", ms)
	}
}

func TestGaugeNegativeAndInf(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(-3.25)
	if g.Value() != -3.25 {
		t.Fatalf("gauge = %v, want -3.25", g.Value())
	}
	g.Set(math.Inf(1))
	if !math.IsInf(g.Value(), 1) {
		t.Fatalf("gauge = %v, want +Inf", g.Value())
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs").Add(10)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "msgs") || !strings.Contains(b.String(), "10") {
		t.Fatalf("text render missing data:\n%s", b.String())
	}
}
