package metrics

import (
	"strings"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("a.count")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("a.count") != c {
		t.Fatal("Counter is not get-or-create")
	}
	g := r.Gauge("a.gauge")
	g.Set(2.5)
	if g.Value() != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", g.Value())
	}
	if r.Gauge("a.gauge") != g {
		t.Fatal("Gauge is not get-or-create")
	}
}

func TestSnapshotSortedAndComplete(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(3)
	r.Gauge("m.mid").Set(7)
	r.GaugeFunc("a.first", func() float64 { return 1 })
	snap := r.Snapshot()
	if len(snap) != 3 || r.Len() != 3 {
		t.Fatalf("snapshot has %d samples, want 3", len(snap))
	}
	names := []string{snap[0].Name, snap[1].Name, snap[2].Name}
	if names[0] != "a.first" || names[1] != "m.mid" || names[2] != "z.last" {
		t.Fatalf("snapshot not sorted: %v", names)
	}
	if snap[0].Value != 1 || snap[1].Value != 7 || snap[2].Value != 3 {
		t.Fatalf("snapshot values wrong: %+v", snap)
	}
}

func TestGaugeFuncLastWins(t *testing.T) {
	r := NewRegistry()
	r.GaugeFunc("x", func() float64 { return 1 })
	r.GaugeFunc("x", func() float64 { return 2 })
	snap := r.Snapshot()
	if len(snap) != 1 || snap[0].Value != 2 {
		t.Fatalf("last registration should win: %+v", snap)
	}
}

func TestWriteText(t *testing.T) {
	r := NewRegistry()
	r.Counter("msgs").Add(10)
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "msgs") || !strings.Contains(b.String(), "10") {
		t.Fatalf("text render missing data:\n%s", b.String())
	}
}
