// Package metrics implements the runtime's named-metric registry: counters
// and gauges that subsystems (the charm RTS, TRAM, the checkpoint layer,
// load balancing, the parsim engine, and applications) register into and
// that exporters — the projections tracer, the text summary, the CCS
// "trace" handler — read uniformly. It replaces ad-hoc growth of
// charm.RuntimeStats with a flat, sorted, name-addressed table.
//
// The package is deliberately dependency-free so every layer of the system
// (including internal/parsim, which internal/charm imports) can use it
// without cycles.
//
// Concurrency discipline: metrics follow the same rule as every other
// piece of global simulation state — mutate them only from driver or
// commit context (or via Ctx.Defer from an entry method), never from a
// concurrently executing handler phase. In exchange they need no atomics
// and stay deterministic.
package metrics

import (
	"fmt"
	"io"
	"sort"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v++ }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Gauge is a settable float64 metric.
type Gauge struct{ v float64 }

// Set stores x.
func (g *Gauge) Set(x float64) { g.v = x }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return g.v }

// Sample is one (name, value) pair of a registry snapshot.
type Sample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Registry is a flat name → metric table. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	counters map[string]*Counter
	gauges   map[string]*Gauge
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		funcs:    map[string]func() float64{},
	}
}

// Counter returns the named counter, creating it on first use. The
// get-or-create contract lets call sites increment without a registration
// step: reg.Counter("ckpt.captures").Inc().
func (r *Registry) Counter(name string) *Counter {
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers a derived gauge computed at snapshot time; the last
// registration under a name wins. Subsystems use it to expose existing
// stat structs without mirroring writes.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.funcs[name] = fn
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	return len(r.counters) + len(r.gauges) + len(r.funcs)
}

// Snapshot evaluates every metric and returns the samples sorted by name,
// so exports are deterministic regardless of registration order.
func (r *Registry) Snapshot() []Sample {
	out := make([]Sample, 0, r.Len())
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Value: float64(c.v)})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Value: g.v})
	}
	for name, fn := range r.funcs {
		out = append(out, Sample{Name: name, Value: fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders the snapshot as a two-column table.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%-40s %g\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}
