// Package metrics implements the runtime's named-metric registry: counters,
// gauges, wall-clock timers, and bounded log-scale histograms that
// subsystems (the charm RTS, TRAM, the checkpoint layer, load balancing,
// the engines, the telemetry layer, and applications) register into and
// that exporters — the projections tracer, the text summary, the CCS
// "trace" handler, the telemetry HTTP server — read uniformly. It replaces
// ad-hoc growth of charm.RuntimeStats with a flat, sorted, name-addressed
// table.
//
// The package is deliberately dependency-free so every layer of the system
// (including internal/parsim, which internal/charm imports) can use it
// without cycles.
//
// Concurrency discipline: every metric type is individually atomic, and the
// registry's get-or-create maps are lock-protected, so metrics may be
// mutated from any goroutine — the telemetry layer updates timers from
// engine probes while an HTTP server reads published snapshots. Metrics
// that feed *simulation-visible* output (figure tables, digests) must still
// be mutated only from driver or commit context, like all global simulation
// state; the atomics buy race-freedom, not ordering. GaugeFuncs typically
// read non-atomic runtime state, so Snapshot and Export — which evaluate
// them — must be called from driver, commit, or post-run context only.
package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/bits"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable float64 metric.
type Gauge struct{ bits atomic.Uint64 }

// Set stores x.
func (g *Gauge) Set(x float64) { g.bits.Store(math.Float64bits(x)) }

// Value returns the stored value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Timer accumulates wall-clock durations in nanoseconds: count, total, and
// max. Callers read the clock themselves (the telemetry layer owns every
// wall-clock read in the tree) and feed the measured interval in.
type Timer struct {
	count atomic.Uint64
	sumNs atomic.Int64
	maxNs atomic.Int64
}

// ObserveNs records one interval of ns nanoseconds.
func (t *Timer) ObserveNs(ns int64) {
	t.count.Add(1)
	t.sumNs.Add(ns)
	for {
		m := t.maxNs.Load()
		if ns <= m || t.maxNs.CompareAndSwap(m, ns) {
			return
		}
	}
}

// Count returns the number of recorded intervals.
func (t *Timer) Count() uint64 { return t.count.Load() }

// SumNs returns the total recorded nanoseconds.
func (t *Timer) SumNs() int64 { return t.sumNs.Load() }

// MaxNs returns the largest recorded interval.
func (t *Timer) MaxNs() int64 { return t.maxNs.Load() }

// histBuckets bounds a Histogram: bucket i counts observations v with
// bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i). 65 buckets cover the full
// uint64 range, so the memory cost is fixed regardless of value spread.
const histBuckets = 65

// Histogram is a bounded log2-scale histogram of uint64 observations
// (typically nanoseconds or bytes). The zero value is ready to use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64
	buckets [histBuckets]atomic.Uint64
}

// Observe records one value.
func (h *Histogram) Observe(v uint64) {
	h.count.Add(1)
	h.sum.Add(v)
	h.buckets[bits.Len64(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Sample is one (name, value) pair of a registry snapshot.
type Sample struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
}

// Kind classifies an exported metric.
type Kind string

// Metric kinds.
const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindTimer     Kind = "timer"
	KindHistogram Kind = "histogram"
)

// Bucket is one cumulative histogram bucket: Count observations were <= Le.
type Bucket struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// Metric is one exported metric with its full typed shape, the unit the
// Prometheus and JSON exporters work from. Scalar kinds carry Value;
// timers carry Count/Sum/Max (nanoseconds); histograms carry Count/Sum and
// cumulative Buckets.
type Metric struct {
	Name    string   `json:"name"`
	Kind    Kind     `json:"kind"`
	Value   float64  `json:"value,omitempty"`
	Count   uint64   `json:"count,omitempty"`
	Sum     float64  `json:"sum,omitempty"`
	Max     float64  `json:"max,omitempty"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Registry is a flat name → metric table. The zero value is not usable;
// call NewRegistry.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	timers   map[string]*Timer
	hists    map[string]*Histogram
	funcs    map[string]func() float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		timers:   map[string]*Timer{},
		hists:    map[string]*Histogram{},
		funcs:    map[string]func() float64{},
	}
}

// Counter returns the named counter, creating it on first use. The
// get-or-create contract lets call sites increment without a registration
// step: reg.Counter("ckpt.captures").Inc(). Hot paths should hold the
// returned pointer rather than re-resolving the name per event.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c, ok := r.counters[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok = r.counters[name]; !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g, ok := r.gauges[name]
	r.mu.RUnlock()
	if ok {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok = r.gauges[name]; !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Timer returns the named timer, creating it on first use.
func (r *Registry) Timer(name string) *Timer {
	r.mu.RLock()
	t, ok := r.timers[name]
	r.mu.RUnlock()
	if ok {
		return t
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if t, ok = r.timers[name]; !ok {
		t = &Timer{}
		r.timers[name] = t
	}
	return t
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.RLock()
	h, ok := r.hists[name]
	r.mu.RUnlock()
	if ok {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok = r.hists[name]; !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// GaugeFunc registers a derived gauge computed at snapshot time; the last
// registration under a name wins. Subsystems use it to expose existing
// stat structs without mirroring writes.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	r.funcs[name] = fn
	r.mu.Unlock()
}

// Len returns the number of registered metrics.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.counters) + len(r.gauges) + len(r.timers) + len(r.hists) + len(r.funcs)
}

// Export evaluates every metric into its typed form, sorted by name, so
// exports are deterministic regardless of registration order. Like
// Snapshot it evaluates GaugeFuncs, so call it from driver, commit, or
// post-run context.
func (r *Registry) Export() []Metric {
	r.mu.RLock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.timers)+len(r.hists)+len(r.funcs))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: KindCounter, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: g.Value()})
	}
	for name, fn := range r.funcs {
		out = append(out, Metric{Name: name, Kind: KindGauge, Value: fn()})
	}
	for name, t := range r.timers {
		out = append(out, Metric{Name: name, Kind: KindTimer,
			Count: t.Count(), Sum: float64(t.SumNs()), Max: float64(t.MaxNs())})
	}
	for name, h := range r.hists {
		out = append(out, Metric{Name: name, Kind: KindHistogram,
			Count: h.Count(), Sum: float64(h.Sum()), Buckets: h.cumulative()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// cumulative renders the histogram's non-empty prefix as cumulative
// (le, count) buckets, Prometheus-style.
func (h *Histogram) cumulative() []Bucket {
	top := 0
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			top = i
			break
		}
	}
	var cum uint64
	out := make([]Bucket, 0, top+1)
	for i := 0; i <= top; i++ {
		cum += h.buckets[i].Load()
		// Bucket i holds values with bit length i: v <= 2^i - 1.
		le := math.MaxFloat64
		if i < 63 {
			le = float64(uint64(1)<<uint(i)) - 1
		}
		out = append(out, Bucket{Le: le, Count: cum})
	}
	return out
}

// Snapshot evaluates every metric and returns flat samples sorted by name.
// Timers flatten to .count/.sum_ns/.max_ns samples and histograms to
// .count/.sum, so scalar consumers (the text summary, figure tables) need
// no bucket awareness.
func (r *Registry) Snapshot() []Sample {
	r.mu.RLock()
	out := make([]Sample, 0, len(r.counters)+len(r.gauges)+len(r.funcs)+3*len(r.timers)+2*len(r.hists))
	for name, c := range r.counters {
		out = append(out, Sample{Name: name, Value: float64(c.Value())})
	}
	for name, g := range r.gauges {
		out = append(out, Sample{Name: name, Value: g.Value()})
	}
	for name, fn := range r.funcs {
		out = append(out, Sample{Name: name, Value: fn()})
	}
	for name, t := range r.timers {
		out = append(out, Sample{Name: name + ".count", Value: float64(t.Count())})
		out = append(out, Sample{Name: name + ".sum_ns", Value: float64(t.SumNs())})
		out = append(out, Sample{Name: name + ".max_ns", Value: float64(t.MaxNs())})
	}
	for name, h := range r.hists {
		out = append(out, Sample{Name: name + ".count", Value: float64(h.Count())})
		out = append(out, Sample{Name: name + ".sum", Value: float64(h.Sum())})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// WriteText renders the snapshot as a two-column table.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%-40s %g\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}

// WritePrometheus renders the registry in the Prometheus text exposition
// format (metric names sanitized to the Prometheus charset, timers as
// count/sum/max with sums converted to seconds, histograms with cumulative
// le-labeled buckets).
func (r *Registry) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, r.Export())
}

// WriteJSON renders the registry's typed export as a JSON array.
func (r *Registry) WriteJSON(w io.Writer) error {
	return WriteJSON(w, r.Export())
}

// promName maps a registry name to the Prometheus charset
// [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	for i, c := range name {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteRune(c)
		case c >= '0' && c <= '9' && i > 0:
			b.WriteRune(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WritePrometheus renders an exported metric set (as produced by
// Registry.Export, already sorted) in the Prometheus text format.
func WritePrometheus(w io.Writer, ms []Metric) error {
	for _, m := range ms {
		name := promName(m.Name)
		var err error
		switch m.Kind {
		case KindCounter:
			_, err = fmt.Fprintf(w, "# TYPE %s counter\n%s %g\n", name, name, m.Value)
		case KindGauge:
			_, err = fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, m.Value)
		case KindTimer:
			// Summary-shaped: count, sum in seconds, plus max as a gauge.
			_, err = fmt.Fprintf(w, "# TYPE %s_seconds summary\n%s_seconds_count %d\n%s_seconds_sum %g\n# TYPE %s_seconds_max gauge\n%s_seconds_max %g\n",
				name, name, m.Count, name, m.Sum/1e9, name, name, m.Max/1e9)
		case KindHistogram:
			if _, err = fmt.Fprintf(w, "# TYPE %s histogram\n", name); err != nil {
				return err
			}
			for _, b := range m.Buckets {
				le := "+Inf"
				if b.Le != math.MaxFloat64 {
					le = fmt.Sprintf("%g", b.Le)
				}
				if _, err = fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, b.Count); err != nil {
					return err
				}
			}
			_, err = fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %g\n%s_count %d\n",
				name, m.Count, name, m.Sum, name, m.Count)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON renders an exported metric set as an indented JSON array.
func WriteJSON(w io.Writer, ms []Metric) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ms)
}
