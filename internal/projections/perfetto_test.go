package projections

import (
	"bytes"
	"encoding/json"
	"testing"
)

// The schema-shape gate for the Chrome trace-event export: the output must
// be a single JSON object with a traceEvents array whose records carry a
// valid ph, numeric ts, and pid/tid/name as Perfetto's legacy JSON
// importer expects.
func TestPerfettoSchemaShape(t *testing.T) {
	rt := testRuntime(t, 2)
	tr := Attach(rt, Options{EngineEvents: true})
	runEcho(rt, 10)

	var buf bytes.Buffer
	if err := WritePerfetto(&buf, tr.Events()); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty traceEvents array")
	}

	validPh := map[string]bool{"X": true, "i": true, "M": true}
	var spans, instants, meta int
	for i, te := range doc.TraceEvents {
		ph, ok := te["ph"].(string)
		if !ok || !validPh[ph] {
			t.Fatalf("record %d: bad ph %v", i, te["ph"])
		}
		name, ok := te["name"].(string)
		if !ok || name == "" {
			t.Fatalf("record %d: missing name", i)
		}
		if _, ok := te["pid"].(float64); !ok {
			t.Fatalf("record %d: missing numeric pid", i)
		}
		if _, ok := te["tid"].(float64); !ok {
			t.Fatalf("record %d: missing numeric tid", i)
		}
		switch ph {
		case "M":
			meta++
			if name != "process_name" && name != "thread_name" {
				t.Fatalf("record %d: unknown metadata %q", i, name)
			}
		case "X":
			spans++
			ts, ok := te["ts"].(float64)
			if !ok || ts < 0 {
				t.Fatalf("record %d: span with bad ts %v", i, te["ts"])
			}
			if d, ok := te["dur"].(float64); !ok || d < 0 {
				t.Fatalf("record %d: span with bad dur %v", i, te["dur"])
			}
		case "i":
			instants++
			if _, ok := te["ts"].(float64); !ok {
				t.Fatalf("record %d: instant with bad ts %v", i, te["ts"])
			}
			if s, ok := te["s"].(string); !ok || (s != "g" && s != "p" && s != "t") {
				t.Fatalf("record %d: instant with bad scope %v", i, te["s"])
			}
		}
	}
	if meta == 0 || spans == 0 || instants == 0 {
		t.Fatalf("want metadata+spans+instants, got %d/%d/%d", meta, spans, instants)
	}
	// 11 entry executions -> 11 X spans.
	if spans != 11 {
		t.Errorf("got %d spans, want 11 (one per entry execution)", spans)
	}
	// Spans must be named array.entry.
	for _, te := range doc.TraceEvents {
		if te["ph"] == "X" && te["name"] != "echo.ping" {
			t.Errorf("span named %v, want echo.ping", te["name"])
		}
	}
}
